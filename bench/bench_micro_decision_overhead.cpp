// Micro-benchmarks (google-benchmark) for the decision hot paths.
//
// Section 5.5/6.8: the paper reports CAVA's total runtime overhead at ~56 ms
// for a 10-minute video (~300 decisions), i.e. ~190 us per decision in
// JavaScript. These benchmarks measure our C++ decision costs per scheme,
// plus the substrate operations (encode, classify, trace integration).
#include <benchmark/benchmark.h>

#include <memory>

#include "abr/bola.h"
#include "abr/mpc.h"
#include "abr/panda_cq.h"
#include "common.h"
#include "core/complexity_classifier.h"
#include "net/bandwidth_estimator.h"
#include "sim/session.h"
#include "video/encoder.h"
#include "video/scene_model.h"

namespace {

using namespace vbr;

const video::Video& ed() {
  static const video::Video v = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  return v;
}

abr::StreamContext mid_context() {
  abr::StreamContext ctx;
  ctx.video = &ed();
  ctx.next_chunk = ed().num_chunks() / 2;
  ctx.buffer_s = 42.0;
  ctx.est_bandwidth_bps = 2.1e6;
  ctx.prev_track = 3;
  ctx.now_s = 300.0;
  return ctx;
}

void BM_CavaDecision(benchmark::State& state) {
  auto cava = core::make_cava_p123();
  const abr::StreamContext ctx = mid_context();
  (void)cava->decide(ctx);  // bind video/classifier once
  for (auto _ : state) {
    benchmark::DoNotOptimize(cava->decide(ctx));
  }
}
BENCHMARK(BM_CavaDecision);

void BM_MpcDecision(benchmark::State& state) {
  abr::Mpc mpc(abr::mpc_config());
  const abr::StreamContext ctx = mid_context();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpc.decide(ctx));
  }
}
BENCHMARK(BM_MpcDecision);

void BM_PandaCqDecision(benchmark::State& state) {
  abr::PandaCq panda;
  const abr::StreamContext ctx = mid_context();
  for (auto _ : state) {
    benchmark::DoNotOptimize(panda.decide(ctx));
  }
}
BENCHMARK(BM_PandaCqDecision);

void BM_BolaDecision(benchmark::State& state) {
  abr::Bola bola;
  const abr::StreamContext ctx = mid_context();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bola.decide(ctx));
  }
}
BENCHMARK(BM_BolaDecision);

void BM_ClassifierConstruction(benchmark::State& state) {
  for (auto _ : state) {
    core::ComplexityClassifier c(ed());
    benchmark::DoNotOptimize(c.classes().data());
  }
}
BENCHMARK(BM_ClassifierConstruction);

void BM_EncodeTrack480p(benchmark::State& state) {
  const auto scene =
      video::generate_scene_trace(video::Genre::kAnimation, 300, 1);
  video::EncoderConfig cfg;
  cfg.resolution = video::kLadder480p;
  for (auto _ : state) {
    benchmark::DoNotOptimize(video::encode_track(scene, 3, cfg));
  }
}
BENCHMARK(BM_EncodeTrack480p);

void BM_TraceDownloadIntegration(benchmark::State& state) {
  const net::Trace t = net::generate_lte_trace(1);
  double start = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.download_duration_s(start, 2e6));
    start += 1.0;
    if (start > 1000.0) {
      start = 0.0;
    }
  }
}
BENCHMARK(BM_TraceDownloadIntegration);

void BM_FullCavaSession(benchmark::State& state) {
  const net::Trace t = net::generate_lte_trace(1);
  for (auto _ : state) {
    auto cava = core::make_cava_p123();
    net::HarmonicMeanEstimator est(5);
    benchmark::DoNotOptimize(sim::run_session(ed(), t, *cava, est));
  }
}
BENCHMARK(BM_FullCavaSession)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
