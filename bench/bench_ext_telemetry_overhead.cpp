// Telemetry overhead micro-benchmarks (google-benchmark).
//
// Quantifies what the observability layer (src/obs) costs per session and
// per chunk across the sink spectrum:
//
//   - none:     SessionConfig.trace/metrics null — the zero-cost path the
//               overhead regression ctest guards (one branch per chunk);
//   - null_obj: an attached NullTraceSink — pays event construction and the
//               virtual dispatch, discards the result;
//   - memory:   MemoryTraceSink + MetricsRegistry — the full in-process
//               telemetry the experiment harness uses per trace;
//   - jsonl:    JsonlTraceSink into a discarded stream + registry — adds
//               canonical serialization, the --trace-jsonl cost.
//
// Run: ./bench_micro_telemetry (any google-benchmark flags apply).
#include <benchmark/benchmark.h>

#include <sstream>

#include "common.h"
#include "core/cava.h"
#include "net/bandwidth_estimator.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "sim/session.h"

namespace {

using namespace vbr;

const video::Video& ed() {
  static const video::Video v = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  return v;
}

const net::Trace& lte() {
  static const net::Trace t = net::generate_lte_trace(bench::kLteSeed);
  return t;
}

void run_once(benchmark::State& state, const sim::SessionConfig& cfg) {
  for (auto _ : state) {
    auto cava = core::make_cava_p123();
    net::HarmonicMeanEstimator est(5);
    sim::SessionResult r = sim::run_session(ed(), lte(), *cava, est, cfg);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ed().num_chunks()));
}

void BM_Session_NoTelemetry(benchmark::State& state) {
  run_once(state, sim::SessionConfig{});
}
BENCHMARK(BM_Session_NoTelemetry);

void BM_Session_NullObjectSink(benchmark::State& state) {
  obs::NullTraceSink sink;
  sim::SessionConfig cfg;
  cfg.trace = &sink;
  run_once(state, cfg);
}
BENCHMARK(BM_Session_NullObjectSink);

void BM_Session_MemorySinkAndRegistry(benchmark::State& state) {
  for (auto _ : state) {
    obs::MemoryTraceSink sink;
    obs::MetricsRegistry reg;
    sim::SessionConfig cfg;
    cfg.trace = &sink;
    cfg.metrics = &reg;
    auto cava = core::make_cava_p123();
    net::HarmonicMeanEstimator est(5);
    sim::SessionResult r = sim::run_session(ed(), lte(), *cava, est, cfg);
    benchmark::DoNotOptimize(r);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ed().num_chunks()));
}
BENCHMARK(BM_Session_MemorySinkAndRegistry);

void BM_Session_JsonlSinkAndRegistry(benchmark::State& state) {
  for (auto _ : state) {
    std::ostringstream out;
    obs::JsonlTraceSink sink(out);
    obs::MetricsRegistry reg;
    sim::SessionConfig cfg;
    cfg.trace = &sink;
    cfg.metrics = &reg;
    auto cava = core::make_cava_p123();
    net::HarmonicMeanEstimator est(5);
    sim::SessionResult r = sim::run_session(ed(), lte(), *cava, est, cfg);
    benchmark::DoNotOptimize(r);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ed().num_chunks()));
}
BENCHMARK(BM_Session_JsonlSinkAndRegistry);

// The serializer in isolation: cost of one canonical JSONL line.
void BM_EventToJsonl(benchmark::State& state) {
  obs::DecisionEvent ev;
  ev.session_id = 1;
  ev.seq = 42;
  ev.chunk_index = 42;
  ev.decision_now_s = 123.456789;
  ev.sim_now_s = 124.0001;
  ev.scheme = "CAVA";
  ev.size_mode = "exact";
  ev.track = 3;
  ev.buffer_before_s = 41.87;
  ev.buffer_after_s = 43.87;
  ev.est_bandwidth_bps = 2.34e6;
  ev.size_bits = 4.2e6;
  ev.download_s = 1.795;
  obs::ControllerInternals c;
  c.target_buffer_s = 60.0;
  c.u = 1.23;
  c.error_s = 18.13;
  c.integral = 44.7;
  c.alpha = 0.8;
  c.complexity_class = 2;
  ev.controller = c;
  for (auto _ : state) {
    std::string line = obs::to_jsonl(ev);
    benchmark::DoNotOptimize(line);
  }
}
BENCHMARK(BM_EventToJsonl);

// One registry bump set, as on_chunk performs per chunk.
void BM_MetricsPerChunkUpdate(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Counter& chunks = reg.counter("chunks_total");
  obs::Counter& bits = reg.counter("bits_downloaded");
  obs::Histogram& dl =
      reg.histogram("download_seconds", obs::download_seconds_bounds());
  for (auto _ : state) {
    chunks.increment();
    bits.add(4.2e6);
    dl.record(1.795);
    benchmark::DoNotOptimize(reg);
  }
}
BENCHMARK(BM_MetricsPerChunkUpdate);

}  // namespace

BENCHMARK_MAIN();
