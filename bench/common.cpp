#include "common.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "abr/bba.h"
#include "abr/bola.h"
#include "abr/mpc.h"
#include "abr/panda_cq.h"
#include "abr/rba.h"
#include "metrics/stats.h"

namespace bench {

std::vector<vbr::net::Trace> lte_traces(std::size_t count) {
  return vbr::net::make_lte_trace_set(count, kLteSeed);
}

std::vector<vbr::net::Trace> fcc_traces(std::size_t count) {
  return vbr::net::make_fcc_trace_set(count, kFccSeed);
}

vbr::sim::SchemeFactory scheme_factory(const std::string& name,
                                       vbr::video::QualityMetric metric) {
  using namespace vbr;
  if (name == "CAVA") {
    return [] { return core::make_cava_p123(); };
  }
  if (name == "CAVA-p1") {
    return [] { return core::make_cava_p1(); };
  }
  if (name == "CAVA-p12") {
    return [] { return core::make_cava_p12(); };
  }
  if (name == "MPC") {
    return [] { return std::make_unique<abr::Mpc>(abr::mpc_config()); };
  }
  if (name == "RobustMPC") {
    return [] { return std::make_unique<abr::Mpc>(abr::robust_mpc_config()); };
  }
  // Exhaustive-enumeration oracles for the pruned engines (DESIGN.md §10):
  // same decisions, no pruning — for differential and perf comparisons.
  if (name == "MPC-reference") {
    return [] { return std::make_unique<abr::ReferenceMpc>(abr::mpc_config()); };
  }
  if (name == "RobustMPC-reference") {
    return [] {
      return std::make_unique<abr::ReferenceMpc>(abr::robust_mpc_config());
    };
  }
  if (name == "PANDA/CQ max-sum") {
    return [metric] {
      abr::PandaCqConfig c;
      c.criterion = abr::PandaCriterion::kMaxSum;
      c.metric = metric;
      return std::make_unique<abr::PandaCq>(c);
    };
  }
  if (name == "PANDA/CQ max-min") {
    return [metric] {
      abr::PandaCqConfig c;
      c.criterion = abr::PandaCriterion::kMaxMin;
      c.metric = metric;
      return std::make_unique<abr::PandaCq>(c);
    };
  }
  if (name == "BBA-1") {
    return [] { return std::make_unique<abr::Bba>(); };
  }
  if (name == "RBA") {
    return [] { return std::make_unique<abr::Rba>(); };
  }
  if (name == "BOLA-E (peak)") {
    return [] {
      abr::BolaConfig c;
      c.size_view = abr::BolaSizeView::kPeak;
      return std::make_unique<abr::Bola>(c);
    };
  }
  if (name == "BOLA-E (avg)") {
    return [] {
      abr::BolaConfig c;
      c.size_view = abr::BolaSizeView::kAvg;
      return std::make_unique<abr::Bola>(c);
    };
  }
  if (name == "BOLA-E (seg)") {
    return [] {
      abr::BolaConfig c;
      c.size_view = abr::BolaSizeView::kSegment;
      return std::make_unique<abr::Bola>(c);
    };
  }
  throw std::invalid_argument("scheme_factory: unknown scheme " + name);
}

void print_cdf(const std::string& title, std::span<const double> samples) {
  print_cdfs(title, {"F(x)"},
             {std::vector<double>(samples.begin(), samples.end())});
}

void print_cdfs(const std::string& title,
                const std::vector<std::string>& names,
                const std::vector<std::vector<double>>& series,
                std::size_t points) {
  if (names.size() != series.size() || series.empty()) {
    throw std::invalid_argument("print_cdfs: names/series mismatch");
  }
  std::printf("\n== %s ==\n", title.c_str());
  double lo = 1e300;
  double hi = -1e300;
  std::vector<vbr::stats::EmpiricalCdf> cdfs;
  cdfs.reserve(series.size());
  for (const std::vector<double>& s : series) {
    cdfs.emplace_back(s);
    lo = std::min(lo, cdfs.back().sorted_samples().front());
    hi = std::max(hi, cdfs.back().sorted_samples().back());
  }
  std::printf("%10s", "x");
  for (const std::string& n : names) {
    std::printf("  %18s", n.c_str());
  }
  if (cdfs.size() == 1) {
    std::printf("  %s", "F(x) bar");
  }
  std::printf("\n");
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(points - 1);
    std::printf("%10.2f", x);
    for (const vbr::stats::EmpiricalCdf& c : cdfs) {
      std::printf("  %18.3f", c.at(x));
    }
    if (cdfs.size() == 1) {
      // Inline bar rendering for single-series CDFs.
      const int width = static_cast<int>(cdfs[0].at(x) * 40.0 + 0.5);
      std::printf("  %s", std::string(static_cast<std::size_t>(width), '#')
                              .c_str());
    }
    std::printf("\n");
  }
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: wrong cell count");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(const std::string& title) const {
  std::printf("\n== %s ==\n", title.c_str());
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : width) {
    total += w + 2;
  }
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string pct_delta(double cava, double baseline) {
  if (baseline == 0.0) {
    return cava == 0.0 ? "0%" : "n/a";
  }
  const double pct = 100.0 * (cava - baseline) / baseline;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.0f%%", pct);
  return buf;
}

}  // namespace bench
