// Section 6.6 — streaming the 4x-capped encode (higher bitrate
// variability): the same trends hold. Paper: CAVA's Q4 quality 65 under LTE
// (+8 vs RobustMPC, +7 vs PANDA max-min); quality change -42%/-68%;
// rebuffering -90%/-89%; low-quality chunks -39%/-57%.
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 100;
  const auto traces = bench::lte_traces(num_traces);
  const video::Video v4 = video::make_4x_capped_video();

  bench::Table table({"scheme", "Q4 qual", "low-qual %", "rebuf (s)",
                      "qual change", "data (MB)"});
  sim::ExperimentResult cava;
  sim::ExperimentResult rmpc;
  sim::ExperimentResult panda;
  for (const std::string& s :
       {std::string("CAVA"), std::string("RobustMPC"),
        std::string("PANDA/CQ max-min")}) {
    sim::ExperimentSpec spec;
    spec.video = &v4;
    spec.traces = traces;
    spec.make_scheme = bench::scheme_factory(s);
    const sim::ExperimentResult r = sim::run_experiment(spec);
    table.add_row({s, bench::fmt(r.mean_q4_quality, 1),
                   bench::fmt(r.mean_low_quality_pct, 1),
                   bench::fmt(r.mean_rebuffer_s, 2),
                   bench::fmt(r.mean_quality_change, 2),
                   bench::fmt(r.mean_data_usage_mb, 1)});
    if (s == "CAVA") {
      cava = r;
    } else if (s == "RobustMPC") {
      rmpc = r;
    } else {
      panda = r;
    }
  }
  table.print("Section 6.6: 4x-capped Elephant Dream over " +
              std::to_string(num_traces) + " LTE traces");

  std::printf("\nCAVA vs RobustMPC / PANDA max-min (paper values in "
              "parentheses):\n");
  std::printf("  Q4 quality delta: %+.1f (+8) / %+.1f (+7)\n",
              cava.mean_q4_quality - rmpc.mean_q4_quality,
              cava.mean_q4_quality - panda.mean_q4_quality);
  std::printf("  quality change:   %s (-42%%) / %s (-68%%)\n",
              bench::pct_delta(cava.mean_quality_change,
                               rmpc.mean_quality_change)
                  .c_str(),
              bench::pct_delta(cava.mean_quality_change,
                               panda.mean_quality_change)
                  .c_str());
  std::printf("  rebuffering:      %s (-90%%) / %s (-89%%)\n",
              bench::pct_delta(cava.mean_rebuffer_s, rmpc.mean_rebuffer_s)
                  .c_str(),
              bench::pct_delta(cava.mean_rebuffer_s, panda.mean_rebuffer_s)
                  .c_str());
  std::printf("  low-qual chunks:  %s (-39%%) / %s (-57%%)\n",
              bench::pct_delta(cava.mean_low_quality_pct,
                               rmpc.mean_low_quality_pct)
                  .c_str(),
              bench::pct_delta(cava.mean_low_quality_pct,
                               panda.mean_low_quality_pct)
                  .c_str());
  return 0;
}
