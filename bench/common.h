// Shared helpers for the reproduction benchmarks: canonical corpus/trace
// construction (fixed seeds so every binary sees the same data), scheme
// factories matching the paper's comparison set, and plain-text rendering of
// CDFs and tables.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/cava.h"
#include "net/trace_gen.h"
#include "sim/experiment.h"
#include "video/dataset.h"

namespace bench {

/// Canonical dataset seeds (shared across all binaries).
inline constexpr std::uint64_t kCorpusSeed = 42;
inline constexpr std::uint64_t kLteSeed = 7;
inline constexpr std::uint64_t kFccSeed = 11;

/// Number of traces per set. The paper uses 200; benches default lower where
/// runtime would be excessive, and say so in their output.
[[nodiscard]] std::vector<vbr::net::Trace> lte_traces(std::size_t count);
[[nodiscard]] std::vector<vbr::net::Trace> fcc_traces(std::size_t count);

/// Named scheme factory for the paper's comparison set. Valid names:
/// "CAVA", "CAVA-p1", "CAVA-p12", "MPC", "RobustMPC",
/// "PANDA/CQ max-sum", "PANDA/CQ max-min", "BBA-1", "RBA",
/// "BOLA-E (peak)", "BOLA-E (avg)", "BOLA-E (seg)".
/// `metric` configures quality-aware schemes (PANDA/CQ).
[[nodiscard]] vbr::sim::SchemeFactory scheme_factory(
    const std::string& name,
    vbr::video::QualityMetric metric = vbr::video::QualityMetric::kVmafPhone);

/// Prints a CDF as "x f(x)" rows under a header, 21 evaluation points.
void print_cdf(const std::string& title, std::span<const double> samples);

/// Prints several CDFs side by side (common x-grid), one column per series.
void print_cdfs(const std::string& title,
                const std::vector<std::string>& names,
                const std::vector<std::vector<double>>& series,
                std::size_t points = 21);

/// Simple fixed-width table renderer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` digits after the point.
[[nodiscard]] std::string fmt(double v, int prec = 1);

/// Formats "CAVA minus baseline" as a signed percentage of the baseline.
[[nodiscard]] std::string pct_delta(double cava, double baseline);

}  // namespace bench
