// Ablation — classifier choice (Section 3.1.1): the deployable chunk-size
// classifier vs ground-truth content analysis (SI/TI). Reports (a) per-video
// agreement between the two classifications, and (b) CAVA's end-to-end QoE
// when driven by each — quantifying what the cheap proxy costs (paper's
// claim: chunk size identifies relative scene complexity "with high
// accuracy", so the cost should be negligible).
#include <cstdio>
#include <memory>

#include "common.h"
#include "core/complexity_classifier.h"
#include "core/si_ti_classifier.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 60;

  // (a) Agreement across the corpus.
  bench::Table agreement({"video", "class agreement (%)",
                          "Q4 membership agreement (%)"});
  const std::vector<video::Video> corpus = video::make_full_corpus();
  for (const video::Video& v : corpus) {
    const core::ComplexityClassifier size(v);
    const core::SiTiClassifier content(v);
    std::size_t q4_same = 0;
    for (std::size_t i = 0; i < v.num_chunks(); ++i) {
      q4_same += size.is_complex(i) == content.is_complex(i) ? 1 : 0;
    }
    agreement.add_row(
        {v.name(), bench::fmt(100.0 * content.agreement(size.classes()), 1),
         bench::fmt(100.0 * static_cast<double>(q4_same) /
                        static_cast<double>(v.num_chunks()),
                    1)});
  }
  agreement.print("Classifier agreement: chunk-size quartiles vs SI/TI "
                  "content analysis");

  // (b) End-to-end CAVA QoE under each classifier.
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  const auto traces = bench::lte_traces(num_traces);
  bench::Table qoe({"classifier", "Q4 qual", "Q13 qual", "low-qual %",
                    "rebuf (s)", "data (MB)"});
  for (const bool content : {false, true}) {
    sim::ExperimentSpec spec;
    spec.video = &ed;
    spec.traces = traces;
    spec.make_scheme = [content] {
      core::CavaConfig cfg;
      cfg.use_content_classifier = content;
      return std::make_unique<core::Cava>(cfg);
    };
    const sim::ExperimentResult r = sim::run_experiment(spec);
    qoe.add_row({content ? "SI/TI (content)" : "chunk size (deployable)",
                 bench::fmt(r.mean_q4_quality, 1),
                 bench::fmt(r.mean_q13_quality, 1),
                 bench::fmt(r.mean_low_quality_pct, 1),
                 bench::fmt(r.mean_rebuffer_s, 2),
                 bench::fmt(r.mean_data_usage_mb, 1)});
  }
  qoe.print("CAVA QoE under each classifier (" +
            std::to_string(num_traces) + " LTE traces)");
  std::printf("\nShape check: the two rows should be nearly identical — "
              "the deployable size proxy loses almost nothing.\n");
  return 0;
}
