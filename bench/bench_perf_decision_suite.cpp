// Decision hot-path performance suite with a machine-readable report.
//
// Measures ns/decision for the ABR schemes on the canonical ED title —
// including both MPC engines, so the pruned-search speedup is recorded
// next to the numbers it came from — plus end-to-end fleet throughput
// (sessions/sec) for the batched fleet driver. Results go to
// BENCH_PERF.json (see EXPERIMENTS.md for the recipe).
//
// Flags:
//   --quick        ~10x fewer iterations (CI smoke-gate budget)
//   --check        exit non-zero unless the pruned MPC engines match the
//                  reference decisions AND the RobustMPC horizon-5 speedup
//                  clears a deliberately generous 2x floor (the recorded
//                  number is the real claim; the gate only catches a
//                  regression back to enumeration)
//   --out FILE     report path (default BENCH_PERF.json)
//
// Timing methodology: one steady_clock read per scheme around a loop of
// decide() calls over a deterministic sweep of contexts (chunk index,
// buffer level, and previous track all vary), so the measured mix includes
// early-chunk, mid-stream, and deep-buffer decisions rather than one
// flattering point. The context sweep is identical for every scheme.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "abr/bola.h"
#include "abr/mpc.h"
#include "common.h"
#include "core/cava.h"
#include "fleet/fleet.h"
#include "learn/learned_scheme.h"
#include "learn/trainer.h"
#include "net/bandwidth_estimator.h"
#include "net/trace_gen.h"
#include "obs/json_util.h"
#include "sim/session.h"
#include "video/dataset.h"

namespace {

using namespace vbr;

const video::Video& ed() {
  static const video::Video v = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  return v;
}

/// Deterministic context sweep: chunk, buffer, and previous track all vary
/// with the iteration counter so every scheme sees the same representative
/// mix of decision points.
abr::StreamContext sweep_context(std::size_t i) {
  const video::Video& v = ed();
  abr::StreamContext ctx;
  ctx.video = &v;
  ctx.next_chunk = (i * 17) % v.num_chunks();
  ctx.buffer_s = 4.0 + static_cast<double>(i % 29);
  ctx.est_bandwidth_bps = 1.2e6 + 3.0e5 * static_cast<double>(i % 7);
  ctx.prev_track = static_cast<int>(i % v.num_tracks());
  ctx.now_s = 2.0 * static_cast<double>(i);
  return ctx;
}

struct Measured {
  double ns_per_decision = 0.0;
  std::uint64_t track_checksum = 0;  ///< Defeats dead-code elimination.
};

Measured measure_scheme(abr::AbrScheme& scheme, std::size_t iters) {
  scheme.reset();
  // Warm-up pass: fault in code/data and let RobustMPC variants build an
  // error window, so the timed loop measures steady state.
  for (std::size_t i = 0; i < 16; ++i) {
    const abr::StreamContext ctx = sweep_context(i);
    (void)scheme.decide(ctx);
    scheme.on_chunk_downloaded(ctx, 2, 0.8);
  }
  Measured m;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    m.track_checksum += scheme.decide(sweep_context(i)).track;
  }
  const auto t1 = std::chrono::steady_clock::now();
  m.ns_per_decision =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()) /
      static_cast<double>(iters);
  return m;
}

/// Differential spot-check: pruned vs reference engine must agree on the
/// chosen track AND the searched QoE at every sweep point (both engines fed
/// the same download observations so robust discounts stay in lockstep).
bool engines_agree(const abr::MpcConfig& cfg, std::size_t iters,
                   std::string& why) {
  abr::Mpc pruned(cfg);
  abr::ReferenceMpc reference(cfg);
  for (std::size_t i = 0; i < iters; ++i) {
    const abr::StreamContext ctx = sweep_context(i);
    const abr::Decision dp = pruned.decide(ctx);
    const abr::Decision dr = reference.decide(ctx);
    if (dp.track != dr.track ||
        pruned.last_best_qoe() != reference.last_best_qoe()) {
      why = "engine mismatch at sweep point " + std::to_string(i);
      return false;
    }
    pruned.on_chunk_downloaded(ctx, dp.track, 0.9);
    reference.on_chunk_downloaded(ctx, dr.track, 0.9);
  }
  return true;
}

struct FleetThroughput {
  std::size_t sessions = 0;
  double wall_s = 0.0;
  double sessions_per_sec = 0.0;
};

FleetThroughput measure_fleet(std::size_t max_sessions) {
  std::vector<net::Trace> traces = bench::lte_traces(8);
  fleet::FleetSpec spec;
  spec.catalog.num_titles = 8;
  spec.catalog.title_duration_s = 60.0;
  spec.arrivals.rate_per_s = 1.0;
  spec.arrivals.horizon_s = 1e9;  // session cap is the binding limit
  spec.arrivals.max_sessions = max_sessions;
  spec.classes.resize(2);
  spec.classes[0].label = "cava";
  spec.classes[0].make_scheme = bench::scheme_factory("CAVA");
  spec.classes[1].label = "robust-mpc";
  spec.classes[1].make_scheme = bench::scheme_factory("RobustMPC");
  spec.traces = traces;
  spec.cache.capacity_bits = 2e9;
  spec.session.startup_latency_s = 4.0;
  spec.threads = 0;  // hardware concurrency: throughput, not determinism

  FleetThroughput ft;
  const auto t0 = std::chrono::steady_clock::now();
  const fleet::FleetResult result = fleet::run_fleet(spec);
  const auto t1 = std::chrono::steady_clock::now();
  ft.sessions = result.sessions.size();
  ft.wall_s = std::chrono::duration<double>(t1 - t0).count();
  ft.sessions_per_sec =
      ft.wall_s > 0.0 ? static_cast<double>(ft.sessions) / ft.wall_s : 0.0;
  return ft;
}

/// Engine throughput comparison on an UNCOUPLED workload (no shared cache
/// or CDN, private traces): the same fleet is run once under the
/// per-session stepper and once under the shared-virtual-time event engine
/// (DESIGN.md section 15). Uncoupled is the fair arena — both engines can
/// use every core, and the event engine's heap + batch machinery is pure
/// overhead it must amortize, so `event >= stepped` here is the honest
/// floor for the refactor.
FleetThroughput measure_engine_fleet(fleet::FleetEngine engine,
                                     std::size_t max_sessions) {
  std::vector<net::Trace> traces = bench::lte_traces(8);
  fleet::FleetSpec spec;
  spec.catalog.num_titles = 8;
  spec.catalog.title_duration_s = 60.0;
  spec.arrivals.rate_per_s = 1.0;
  spec.arrivals.horizon_s = 1e9;  // session cap is the binding limit
  spec.arrivals.max_sessions = max_sessions;
  spec.classes.resize(2);
  spec.classes[0].label = "cava";
  spec.classes[0].make_scheme = bench::scheme_factory("CAVA");
  spec.classes[1].label = "robust-mpc";
  spec.classes[1].make_scheme = bench::scheme_factory("RobustMPC");
  spec.traces = traces;
  spec.use_cache = false;  // uncoupled: no cross-session state
  spec.session.startup_latency_s = 4.0;
  spec.threads = 0;  // hardware concurrency: throughput, not determinism
  spec.engine = engine;

  FleetThroughput ft;
  const auto t0 = std::chrono::steady_clock::now();
  const fleet::FleetResult result = fleet::run_fleet(spec);
  const auto t1 = std::chrono::steady_clock::now();
  ft.sessions = result.sessions.size();
  ft.wall_s = std::chrono::duration<double>(t1 - t0).count();
  ft.sessions_per_sec =
      ft.wall_s > 0.0 ? static_cast<double>(ft.sessions) / ft.wall_s : 0.0;
  return ft;
}

/// The 100k-concurrency row: an uncoupled burst fleet (every session
/// overlaps every other) run under the event engine's constant-memory
/// streaming aggregator — the acceptance workload for the shared-timeline
/// refactor. One title and a cheap scheme keep the row about engine
/// throughput, not decision cost.
FleetThroughput measure_stream_fleet(std::size_t max_sessions) {
  std::vector<net::Trace> traces = bench::lte_traces(4);
  fleet::FleetSpec spec;
  spec.use_cache = false;  // uncoupled: all sessions admitted up front
  spec.catalog.num_titles = 1;
  spec.catalog.title_duration_s = 8.0;
  spec.catalog.chunk_duration_s = 2.0;
  spec.arrivals.rate_per_s = 8.0 * static_cast<double>(max_sessions);
  spec.arrivals.horizon_s = 30.0;
  spec.arrivals.max_sessions = max_sessions;
  spec.classes.resize(1);
  spec.classes[0].label = "cava";
  spec.classes[0].make_scheme = bench::scheme_factory("CAVA");
  spec.traces = traces;
  spec.watch.full_watch_prob = 1.0;
  spec.session.startup_latency_s = 2.0;
  spec.threads = 0;
  spec.engine = fleet::FleetEngine::kEvent;
  spec.stream_aggregation = true;

  FleetThroughput ft;
  const auto t0 = std::chrono::steady_clock::now();
  const fleet::FleetResult result = fleet::run_fleet(spec);
  const auto t1 = std::chrono::steady_clock::now();
  ft.sessions = result.total_sessions;  // streaming: no per-session table
  ft.wall_s = std::chrono::duration<double>(t1 - t0).count();
  ft.sessions_per_sec =
      ft.wall_s > 0.0 ? static_cast<double>(ft.sessions) / ft.wall_s : 0.0;
  return ft;
}

struct SchemeRow {
  std::string name;
  Measured m;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  std::string out_path = "BENCH_PERF.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--out" && a + 1 < argc) {
      out_path = argv[++a];
    } else {
      std::cerr << "usage: bench_perf_decision_suite [--quick] [--check] "
                   "[--out FILE]\n";
      return 2;
    }
  }

  const std::size_t iters = quick ? 300 : 3000;
  const std::size_t agree_iters = quick ? 64 : 256;

  // Correctness first: a fast wrong answer is not a benchmark result.
  std::string why;
  bool ok = true;
  for (const bool robust : {false, true}) {
    abr::MpcConfig cfg = robust ? abr::robust_mpc_config() : abr::mpc_config();
    if (!engines_agree(cfg, agree_iters, why)) {
      std::cerr << (robust ? "RobustMPC" : "MPC") << ": " << why << "\n";
      ok = false;
    }
  }

  std::vector<SchemeRow> rows;
  const auto run = [&](const std::string& name,
                       std::unique_ptr<abr::AbrScheme> scheme) {
    rows.push_back({name, measure_scheme(*scheme, iters)});
    std::printf("%-24s %10.0f ns/decision\n", name.c_str(),
                rows.back().m.ns_per_decision);
  };
  run("MPC", std::make_unique<abr::Mpc>(abr::mpc_config()));
  run("MPC-reference",
      std::make_unique<abr::ReferenceMpc>(abr::mpc_config()));
  run("RobustMPC", std::make_unique<abr::Mpc>(abr::robust_mpc_config()));
  run("RobustMPC-reference",
      std::make_unique<abr::ReferenceMpc>(abr::robust_mpc_config()));
  run("CAVA", core::make_cava_p123());
  run("BOLA-E", std::make_unique<abr::Bola>());

  // Learned backends on rule-seeded policies: the hot path (table walk /
  // fixed-topology MLP forward pass) is identical to a trained policy's, so
  // no rollout corpus is needed to measure it.
  learn::FeatureConfig lcfg;
  lcfg.num_tracks = ed().num_tracks();
  run("learned-tabular",
      std::make_unique<learn::LearnedScheme>(
          std::make_shared<const learn::Policy>(
              learn::make_rate_rule_tabular(lcfg, "bench-rule", 1))));
  run("learned-mlp",
      std::make_unique<learn::LearnedScheme>(
          std::make_shared<const learn::Policy>(
              learn::make_random_mlp(lcfg, 16, 7, "bench-rand", 1))));

  const auto ns_of = [&](const std::string& name) {
    for (const SchemeRow& r : rows) {
      if (r.name == name) {
        return r.m.ns_per_decision;
      }
    }
    return 0.0;
  };
  const double mpc_speedup = ns_of("MPC") > 0.0
                                 ? ns_of("MPC-reference") / ns_of("MPC")
                                 : 0.0;
  const double robust_speedup =
      ns_of("RobustMPC") > 0.0
          ? ns_of("RobustMPC-reference") / ns_of("RobustMPC")
          : 0.0;
  std::printf("speedup: MPC %.1fx, RobustMPC %.1fx (horizon 5)\n",
              mpc_speedup, robust_speedup);

  const FleetThroughput ft = measure_fleet(quick ? 48 : 200);
  std::printf("fleet: %zu sessions in %.2f s (%.1f sessions/sec)\n",
              ft.sessions, ft.wall_s, ft.sessions_per_sec);

  // The gated comparison runs a FIXED smoke-sized workload (both modes)
  // and pairs the engines back-to-back inside each repetition: these runs
  // are short enough that scheduler noise on a loaded CI box swings any
  // single shot by ±20%, but a real hot-loop regression drags EVERY
  // pair's ratio down, so the best paired ratio is the stable signal.
  const std::size_t engine_sessions = 96;
  FleetThroughput ft_stepped;
  FleetThroughput ft_event;
  double engine_ratio = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const FleetThroughput s =
        measure_engine_fleet(fleet::FleetEngine::kStepped, engine_sessions);
    const FleetThroughput e =
        measure_engine_fleet(fleet::FleetEngine::kEvent, engine_sessions);
    if (s.sessions_per_sec > ft_stepped.sessions_per_sec) {
      ft_stepped = s;
    }
    if (e.sessions_per_sec > ft_event.sessions_per_sec) {
      ft_event = e;
    }
    if (s.sessions_per_sec > 0.0) {
      engine_ratio =
          std::max(engine_ratio, e.sessions_per_sec / s.sessions_per_sec);
    }
  }
  std::printf(
      "engine (uncoupled, %zu sessions): stepped %.1f/s, event %.1f/s "
      "(%.2fx)\n",
      engine_sessions, ft_stepped.sessions_per_sec,
      ft_event.sessions_per_sec, engine_ratio);

  // The headline concurrency row: 100k sessions in flight at once (20k in
  // quick mode), event engine + streaming aggregation.
  const FleetThroughput ft_stream =
      measure_stream_fleet(quick ? 20000 : 100000);
  std::printf(
      "engine stream: %zu concurrent sessions in %.2f s (%.0f "
      "sessions/sec)\n",
      ft_stream.sessions, ft_stream.wall_s, ft_stream.sessions_per_sec);

  // Machine-readable report (canonical round-trip doubles, stable key
  // order) — the artifact CI uploads and EXPERIMENTS.md documents.
  std::string json;
  json += "{\"suite\":\"decision-hot-path\",\"quick\":";
  json += quick ? "true" : "false";
  json += ",\"iterations\":";
  obs::detail::append_uint(json, iters);
  json += ",\"schemes\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) {
      json += ',';
    }
    json += "{\"name\":";
    obs::detail::append_json_string(json, rows[i].name);
    json += ",\"ns_per_decision\":";
    obs::detail::append_double(json, rows[i].m.ns_per_decision);
    json += ",\"track_checksum\":";
    obs::detail::append_uint(json, rows[i].m.track_checksum);
    json += '}';
  }
  json += "],\"learned\":{\"tabular_ns_per_decision\":";
  obs::detail::append_double(json, ns_of("learned-tabular"));
  json += ",\"mlp_ns_per_decision\":";
  obs::detail::append_double(json, ns_of("learned-mlp"));
  json += "},\"speedup\":{\"mpc_horizon5\":";
  obs::detail::append_double(json, mpc_speedup);
  json += ",\"robust_mpc_horizon5\":";
  obs::detail::append_double(json, robust_speedup);
  json += "},\"fleet\":{\"sessions\":";
  obs::detail::append_uint(json, ft.sessions);
  json += ",\"wall_s\":";
  obs::detail::append_double(json, ft.wall_s);
  json += ",\"sessions_per_sec\":";
  obs::detail::append_double(json, ft.sessions_per_sec);
  json += ",\"threads\":\"hardware\"},\"fleet_engine\":{\"sessions\":";
  obs::detail::append_uint(json, engine_sessions);
  json += ",\"workload\":\"uncoupled\",\"stepped_sessions_per_sec\":";
  obs::detail::append_double(json, ft_stepped.sessions_per_sec);
  json += ",\"event_sessions_per_sec\":";
  obs::detail::append_double(json, ft_event.sessions_per_sec);
  json += ",\"event_over_stepped\":";
  obs::detail::append_double(json, engine_ratio);
  json += ",\"stream\":{\"sessions\":";
  obs::detail::append_uint(json, ft_stream.sessions);
  json += ",\"wall_s\":";
  obs::detail::append_double(json, ft_stream.wall_s);
  json += ",\"sessions_per_sec\":";
  obs::detail::append_double(json, ft_stream.sessions_per_sec);
  json += "},\"threads\":\"hardware\"},\"engines_agree\":";
  json += ok ? "true" : "false";
  json += "}\n";

  std::ofstream out(out_path);
  out << json;
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (check) {
    if (!ok) {
      std::cerr << "FAIL: pruned engine diverged from the reference\n";
      return 1;
    }
    // Generous floor: the recorded speedup is the honest number; this gate
    // exists only to catch the hot path regressing back to enumeration.
    if (robust_speedup < 2.0) {
      std::cerr << "FAIL: RobustMPC horizon-5 speedup " << robust_speedup
                << "x below the 2x regression floor\n";
      return 1;
    }
    // The learned backends exist to be cheap: either regressing past 1 us
    // per decision means the table walk / forward pass picked up real work
    // (allocation, locking, search) that does not belong on the hot path.
    for (const char* name : {"learned-tabular", "learned-mlp"}) {
      if (ns_of(name) >= 1000.0) {
        std::cerr << "FAIL: " << name << " " << ns_of(name)
                  << " ns/decision breaches the 1 us hot-path ceiling\n";
        return 1;
      }
    }
    // Engine floor: on the uncoupled workload the event engine must keep
    // pace with the stepper — its heap and batch machinery are supposed to
    // amortize to noise there. The 0.9 margin covers the one irreducible
    // cost of shared-timeline interleaving on low-core machines: each step
    // lands on a cache-cold session, where the stepper replays one hot
    // session to completion (measured ~0.96x single-core, at or above 1x
    // with real parallelism). Falling below means the per-event hot loop
    // picked up real work.
    if (engine_ratio < 0.9) {
      std::cerr << "FAIL: event engine at " << engine_ratio
                << "x of stepper throughput on the uncoupled workload "
                   "(floor 0.9)\n";
      return 1;
    }
  }
  return 0;
}
