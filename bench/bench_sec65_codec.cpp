// Section 6.5 — codec impact: under H.265, every scheme improves (the same
// ladder costs ~62% of the H.264 bits), and CAVA still outperforms the
// baselines. Paper: vs RobustMPC / PANDA max-min, CAVA's Q4 quality is
// +7..12, low-quality chunks -51..-82%, rebuffering -52..-91%, quality
// change -27..-72%, with similar data usage.
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 100;
  const auto traces = bench::lte_traces(num_traces);

  const std::vector<std::string> schemes = {"CAVA", "RobustMPC",
                                            "PANDA/CQ max-min"};
  bench::Table table({"codec", "scheme", "Q4 qual", "low-qual %",
                      "rebuf (s)", "qual change", "data (MB)"});

  sim::ExperimentResult h264_cava;
  sim::ExperimentResult h265_cava;
  for (const video::Codec codec :
       {video::Codec::kH264, video::Codec::kH265}) {
    const video::Video ed = video::make_video(
        codec == video::Codec::kH264 ? "ED-ffmpeg-h264" : "ED-ffmpeg-h265",
        video::Genre::kAnimation, codec, 2.0, 2.0, bench::kCorpusSeed + 0x11,
        600.0);
    for (const std::string& s : schemes) {
      sim::ExperimentSpec spec;
      spec.video = &ed;
      spec.traces = traces;
      spec.make_scheme = bench::scheme_factory(s);
      const sim::ExperimentResult r = sim::run_experiment(spec);
      table.add_row({to_string(codec), s, bench::fmt(r.mean_q4_quality, 1),
                     bench::fmt(r.mean_low_quality_pct, 1),
                     bench::fmt(r.mean_rebuffer_s, 2),
                     bench::fmt(r.mean_quality_change, 2),
                     bench::fmt(r.mean_data_usage_mb, 1)});
      if (s == "CAVA") {
        (codec == video::Codec::kH264 ? h264_cava : h265_cava) = r;
      }
    }
  }
  table.print("Section 6.5: codec impact (ED, " +
              std::to_string(num_traces) + " LTE traces)");
  std::printf("\nShape checks: every scheme improves under H.265 (lower "
              "bitrate requirement); CAVA stays ahead under both codecs.\n");
  std::printf("CAVA rebuffering: H.264 %.2f s -> H.265 %.2f s; data usage "
              "%.1f MB -> %.1f MB\n",
              h264_cava.mean_rebuffer_s, h265_cava.mean_rebuffer_s,
              h264_cava.mean_data_usage_mb, h265_cava.mean_data_usage_mb);
  return 0;
}
