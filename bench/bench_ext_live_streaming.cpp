// Extension — live VBR streaming (the paper's Section 8 future work). Every
// scheme's look-ahead is fenced at the live edge; CAVA's preview control has
// only a few chunks of future to work with. Compares CAVA, its P1-only
// variant, PIA (CBR-design PID), and BOLA-E (seg) on live sessions over LTE
// traces, reporting the usual QoE metrics plus live latency.
#include <cstdio>
#include <memory>

#include "common.h"
#include "core/complexity_classifier.h"
#include "core/pia.h"
#include "metrics/stats.h"
#include "sim/live_session.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 60;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  const auto traces = bench::lte_traces(num_traces);
  const core::ComplexityClassifier cls(ed);

  struct Row {
    std::string name;
    sim::SchemeFactory factory;
  };
  const std::vector<Row> schemes = {
      {"CAVA", bench::scheme_factory("CAVA")},
      {"CAVA-p1", bench::scheme_factory("CAVA-p1")},
      {"PIA", [] { return std::make_unique<core::Pia>(); }},
      {"BOLA-E (seg)", bench::scheme_factory("BOLA-E (seg)")},
  };

  bench::Table table({"scheme", "Q4 qual", "low-qual %", "rebuf (s)",
                      "mean latency (s)", "p90 latency (s)", "data (MB)"});
  for (const Row& row : schemes) {
    std::vector<double> q4;
    std::vector<double> low;
    std::vector<double> rebuf;
    std::vector<double> lat;
    std::vector<double> maxlat;
    std::vector<double> mb;
    for (const net::Trace& t : traces) {
      const auto scheme = row.factory();
      net::HarmonicMeanEstimator est(5);
      const sim::LiveSessionResult r =
          sim::run_live_session(ed, t, *scheme, est);
      double q4_sum = 0.0;
      std::size_t q4_n = 0;
      std::size_t low_n = 0;
      for (const auto& c : r.session.chunks) {
        if (cls.is_complex(c.index)) {
          q4_sum += c.quality.vmaf_phone;
          ++q4_n;
        }
        low_n += c.quality.vmaf_phone < 40.0 ? 1 : 0;
      }
      q4.push_back(q4_sum / static_cast<double>(q4_n));
      low.push_back(100.0 * static_cast<double>(low_n) /
                    static_cast<double>(r.session.chunks.size()));
      rebuf.push_back(r.session.total_rebuffer_s);
      lat.push_back(r.mean_latency_s);
      maxlat.push_back(r.max_latency_s);
      mb.push_back(r.session.total_bits / 8e6);
    }
    table.add_row({row.name, bench::fmt(stats::mean(q4), 1),
                   bench::fmt(stats::mean(low), 1),
                   bench::fmt(stats::mean(rebuf), 2),
                   bench::fmt(stats::mean(lat), 1),
                   bench::fmt(stats::percentile(lat, 90.0), 1),
                   bench::fmt(stats::mean(mb), 1)});
  }
  table.print("Live VBR streaming (join latency 30 s, " +
              std::to_string(num_traces) + " LTE traces)");
  std::printf("\nShape check: the VBR-aware controller keeps its Q4 and "
              "stall advantages with only edge-limited look-ahead — the "
              "paper's future-work conjecture, tested.\n");
  return 0;
}
