// Extension: the in-situ A/B experimentation harness end to end
// (DESIGN.md section 13).
//
// One 300-session flash-crowd fleet, three arms assigned by stratified
// permuted-block randomization (trace class x popularity decile):
//
//   CAVA vs RobustMPC vs BOLA-E, sharing the delivery path (edge cache),
//
// then the full analysis: per-arm means for every pluggable QoE model and
// fixed outcome, seeded BCa bootstrap CIs, pairwise Welch + Mann-Whitney
// tests under one Benjamini-Hochberg family, and the per-stratum
// breakdown. Reported: the per-arm table, every significant pair after BH,
// and the wall-clock split between simulation and analysis (the analysis
// must stay a rounding error next to the fleet itself).
//
// Run: ./bench_ext_ab_experiment
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common.h"
#include "exp/ab.h"
#include "fleet/fleet.h"

namespace {

using namespace vbr;

fleet::FleetSpec ab_spec(const std::vector<net::Trace>& traces) {
  fleet::FleetSpec spec;
  spec.catalog.num_titles = 24;
  spec.catalog.title_duration_s = 120.0;
  spec.catalog.zipf_alpha = 0.8;
  spec.arrivals.kind = fleet::ArrivalKind::kFlashCrowd;
  spec.arrivals.rate_per_s = 0.5;
  spec.arrivals.horizon_s = 600.0;
  spec.arrivals.max_sessions = 300;
  spec.arrivals.burst_start_s = 120.0;
  spec.arrivals.burst_duration_s = 60.0;
  spec.arrivals.burst_multiplier = 8.0;
  for (const char* name : {"CAVA", "RobustMPC", "BOLA-E (peak)"}) {
    fleet::FleetClientClass arm;
    arm.label = name;
    arm.make_scheme = bench::scheme_factory(name);
    spec.experiment.arms.push_back(std::move(arm));
  }
  spec.traces = traces;
  spec.cache.capacity_bits = 2e9;
  return spec;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const std::vector<net::Trace> traces = bench::lte_traces(20);
  fleet::FleetSpec spec = ab_spec(traces);
  spec.threads = std::max(2u, std::thread::hardware_concurrency());

  std::printf("== 3-arm in-situ A/B over a 300-session flash crowd ==\n");
  const auto t_fleet = std::chrono::steady_clock::now();
  const fleet::FleetResult result = fleet::run_fleet(spec);
  const double fleet_s = seconds_since(t_fleet);

  exp::AbAnalysisConfig cfg;
  cfg.bootstrap.resamples = 2000;
  const auto t_ab = std::chrono::steady_clock::now();
  const exp::AbReport report = exp::analyze_ab(result, cfg);
  const double ab_s = seconds_since(t_ab);

  for (std::size_t a = 0; a < result.per_class.size(); ++a) {
    const fleet::FleetSchemeReport& c = result.per_class[a];
    std::printf("%-10s n=%-4zu qual %5.1f  rebuf %6.2fs  startup %5.2fs  "
                "%6.1f MB |",
                c.label.c_str(), c.sessions, c.mean_all_quality,
                c.mean_rebuffer_s, c.mean_startup_delay_s,
                c.mean_data_usage_mb);
    for (std::size_t m = 0; m < c.mean_qoe_scores.size(); ++m) {
      std::printf(" %s %.1f", result.qoe_model_names[m].c_str(),
                  c.mean_qoe_scores[m]);
    }
    std::printf("\n");
  }

  std::printf("\n%zu hypotheses (%zu metrics x %zu pairs x 2 tests), "
              "BH alpha %.2f, %zu strata\n",
              report.hypotheses, report.metric_names.size(),
              report.metrics.empty() ? 0 : report.metrics[0].pairs.size(),
              report.alpha, report.strata.size());
  std::size_t significant = 0;
  for (const exp::AbMetricReport& m : report.metrics) {
    for (const exp::AbPairTest& p : m.pairs) {
      if (!p.significant) {
        continue;
      }
      ++significant;
      std::printf("  %-22s %-10s vs %-10s diff %+9.3f [%9.3f, %9.3f]  "
                  "welch p_adj %.2e  mwu p_adj %.2e\n",
                  m.metric.c_str(), report.arm_labels[p.arm_a].c_str(),
                  report.arm_labels[p.arm_b].c_str(), p.diff.point, p.diff.lo,
                  p.diff.hi, p.welch_p_adj, p.mwu_p_adj);
    }
  }
  if (significant == 0) {
    std::printf("  no significant pairs after BH correction\n");
  }

  std::printf("\nfleet %.2fs, analysis %.3fs (%.1f%% of total; %zu bootstrap "
              "resamples per CI)\n",
              fleet_s, ab_s, 100.0 * ab_s / (fleet_s + ab_s),
              cfg.bootstrap.resamples);
  return 0;
}
