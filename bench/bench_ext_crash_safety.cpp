// Extension: the cost of crash safety.
//
// Three measurements over the fleet driver (src/fleet + fleet/checkpoint):
//
//   1. Checkpoint overhead: sessions/s for the same fleet with
//      checkpointing off, every 64 sessions, and every 8 sessions — the
//      price of the session-boundary barrier plus the atomic fsync'd
//      write.
//   2. Checkpoint I/O: bytes on disk, save and load wall time as the
//      captured run grows (kill at 25% / 50% / 75% of the fleet).
//   3. Durable telemetry: events/s through the plain JSONL sink vs the
//      checksummed + fsync'd DurableJsonlTraceSink.
//
// Run: ./bench_ext_crash_safety
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "fleet/checkpoint.h"
#include "fleet/fleet.h"
#include "obs/jsonl_io.h"
#include "obs/trace_sink.h"

namespace {

using namespace vbr;
using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

fleet::FleetSpec base_spec(const std::vector<net::Trace>& traces,
                           std::size_t sessions) {
  fleet::FleetSpec spec;
  spec.catalog.num_titles = 24;
  spec.catalog.title_duration_s = 120.0;
  spec.arrivals.rate_per_s = 1.0;
  spec.arrivals.horizon_s = 1e9;  // session-count limited
  spec.arrivals.max_sessions = sessions;
  spec.classes.resize(2);
  spec.classes[0].label = "CAVA";
  spec.classes[0].make_scheme = bench::scheme_factory("CAVA");
  spec.classes[1].label = "BBA-1";
  spec.classes[1].make_scheme = bench::scheme_factory("BBA-1");
  spec.traces = traces;
  spec.cache.capacity_bits = 16e9;
  spec.threads = 4;
  return spec;
}

std::string tmp_path(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

}  // namespace

int main() {
  const std::vector<net::Trace> traces = bench::lte_traces(20);
  constexpr std::size_t kSessions = 300;

  std::printf("== checkpoint overhead: sessions/s vs cadence ==\n");
  std::printf("%16s %10s %12s\n", "checkpointing", "wall(s)", "sessions/s");
  double base_wall = 0.0;
  for (const std::uint64_t every : {std::uint64_t{0}, std::uint64_t{64},
                                    std::uint64_t{8}}) {
    fleet::FleetSpec spec = base_spec(traces, kSessions);
    if (every > 0) {
      spec.checkpoint_path = tmp_path("bench_crash_safety.ckpt");
      spec.checkpoint_every = every;
    }
    const auto t0 = Clock::now();
    const fleet::FleetResult r = fleet::run_fleet(spec);
    const double wall = secs_since(t0);
    if (every == 0) {
      base_wall = wall;
    }
    char label[32];
    std::snprintf(label, sizeof label,
                  every == 0 ? "off" : "every %llu",
                  static_cast<unsigned long long>(every));
    std::printf("%16s %10.3f %12.1f\n", label, wall,
                static_cast<double>(r.sessions.size()) / wall);
  }
  std::printf("(overhead is relative to the %0.3fs baseline)\n\n", base_wall);

  std::printf("== checkpoint size and save/load cost vs progress ==\n");
  std::printf("%10s %12s %10s %10s\n", "killed at", "bytes", "save(ms)",
              "load(ms)");
  for (const double frac : {0.25, 0.5, 0.75}) {
    fleet::FleetSpec spec = base_spec(traces, kSessions);
    spec.checkpoint_path = tmp_path("bench_crash_safety_kill.ckpt");
    spec.checkpoint_every = 0;  // only the final kill checkpoint
    spec.kill.after_sessions =
        static_cast<std::uint64_t>(frac * kSessions);
    try {
      (void)fleet::run_fleet(spec);
    } catch (const fleet::FleetKilled&) {
    }
    const auto t_load = Clock::now();
    const fleet::FleetCheckpoint ck =
        fleet::FleetCheckpoint::load(spec.checkpoint_path);
    const double load_ms = secs_since(t_load) * 1e3;
    const std::string copy = spec.checkpoint_path + ".resave";
    const auto t_save = Clock::now();
    ck.save(copy);
    const double save_ms = secs_since(t_save) * 1e3;
    std::FILE* f = std::fopen(spec.checkpoint_path.c_str(), "rb");
    long bytes = 0;
    if (f != nullptr) {
      std::fseek(f, 0, SEEK_END);
      bytes = std::ftell(f);
      std::fclose(f);
    }
    std::printf("%9.0f%% %12ld %10.2f %10.2f\n", frac * 100.0, bytes,
                save_ms, load_ms);
    std::remove(spec.checkpoint_path.c_str());
    std::remove(copy.c_str());
  }
  std::printf("\n");

  std::printf("== durable vs plain JSONL sink: events/s ==\n");
  obs::DecisionEvent ev;
  ev.scheme = "CAVA";
  ev.size_bits = 1.5e6;
  constexpr std::uint64_t kEvents = 200000;
  {
    const std::string path = tmp_path("bench_plain.jsonl");
    obs::JsonlTraceSink sink(path);
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      ev.seq = i;
      sink.on_decision(ev);
    }
    sink.flush();
    std::printf("%16s %12.0f events/s\n", "plain",
                static_cast<double>(kEvents) / secs_since(t0));
    std::remove(path.c_str());
  }
  {
    const std::string path = tmp_path("bench_durable.jsonl");
    obs::DurableJsonlTraceSink sink(path);
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      ev.seq = i;
      sink.on_decision(ev);
    }
    sink.flush();
    std::printf("%16s %12.0f events/s (checksummed + fsync)\n", "durable",
                static_cast<double>(kEvents) / secs_since(t0));
    std::remove(path.c_str());
  }
  return 0;
}
