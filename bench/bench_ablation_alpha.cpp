// Ablation — the differential-treatment factors (Section 5.3): the paper
// varied alpha for complex scenes over [1.1, 1.5] and for simple scenes over
// [0.6, 0.9] and reports a quality/stall tradeoff. This bench sweeps both
// factors for CAVA and prints the tradeoff surface.
#include <cstdio>
#include <memory>

#include "common.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 60;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  const auto traces = bench::lte_traces(num_traces);

  bench::Table table({"alpha+ (Q4)", "alpha- (Q1-3)", "Q4 qual",
                      "Q13 qual", "low-qual %", "rebuf (s)", "data (MB)"});
  for (const double ac : {1.0, 1.1, 1.2, 1.3, 1.4, 1.5}) {
    for (const double as : {0.6, 0.7, 0.8, 0.9, 1.0}) {
      sim::ExperimentSpec spec;
      spec.video = &ed;
      spec.traces = traces;
      spec.make_scheme = [ac, as] {
        core::CavaConfig cfg;
        cfg.alpha_complex = ac;
        cfg.alpha_simple = as;
        return std::make_unique<core::Cava>(cfg);
      };
      const sim::ExperimentResult r = sim::run_experiment(spec);
      table.add_row({bench::fmt(ac, 1), bench::fmt(as, 1),
                     bench::fmt(r.mean_q4_quality, 1),
                     bench::fmt(r.mean_q13_quality, 1),
                     bench::fmt(r.mean_low_quality_pct, 1),
                     bench::fmt(r.mean_rebuffer_s, 2),
                     bench::fmt(r.mean_data_usage_mb, 1)});
    }
  }
  table.print("Ablation: differential-treatment factors (" +
              std::to_string(num_traces) + " LTE traces)");
  std::printf("\nShape check: larger alpha+ lifts Q4 quality at some stall "
              "risk; smaller alpha- saves bandwidth at some Q1-Q3 cost "
              "(Section 5.3's stated tradeoff). This build uses "
              "alpha+ = %.1f, alpha- = %.1f.\n",
              core::CavaConfig{}.alpha_complex,
              core::CavaConfig{}.alpha_simple);
  return 0;
}
