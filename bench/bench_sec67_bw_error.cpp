// Section 6.7 — sensitivity to bandwidth prediction error: the prediction
// is an oracle perturbed uniformly within (1 +/- err), err in {0, 25%, 50%}.
// Paper: CAVA is insensitive (control-theoretic feedback corrects the
// error); MPC rebuffers and uses much more data at err = 50%; PANDA/CQ
// max-min rebuffers noticeably more.
#include <cstdio>
#include <memory>

#include "common.h"
#include "net/error_model.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 100;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  const auto traces = bench::lte_traces(num_traces);

  bench::Table table({"scheme", "err", "Q4 qual", "low-qual %", "rebuf (s)",
                      "data (MB)"});
  for (const std::string& s :
       {std::string("CAVA"), std::string("MPC"),
        std::string("PANDA/CQ max-min")}) {
    for (const double err : {0.0, 0.25, 0.50}) {
      sim::ExperimentSpec spec;
      spec.video = &ed;
      spec.traces = traces;
      spec.make_scheme = bench::scheme_factory(s);
      spec.make_estimator = [err](const net::Trace& t) {
        return std::make_unique<net::NoisyOracleEstimator>(
            t, err, /*seed=*/0xE44);
      };
      const sim::ExperimentResult r = sim::run_experiment(spec);
      table.add_row({s, bench::fmt(100.0 * err, 0) + "%",
                     bench::fmt(r.mean_q4_quality, 1),
                     bench::fmt(r.mean_low_quality_pct, 1),
                     bench::fmt(r.mean_rebuffer_s, 2),
                     bench::fmt(r.mean_data_usage_mb, 1)});
    }
  }
  table.print("Section 6.7: bandwidth prediction error sweep (" +
              std::to_string(num_traces) + " LTE traces, noisy oracle)");
  std::printf("\nShape check: CAVA's rows barely move from err=0%% to 50%% "
              "(feedback absorbs the error); MPC and PANDA degrade "
              "with err.\n");
  return 0;
}
