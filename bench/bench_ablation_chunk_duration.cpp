// Ablation — chunk duration (Section 2/6: the dataset spans 2 s and 5 s
// chunks "allowing us to investigate the impact of chunk duration").
// Encodes the same content at 2 s and 5 s chunking and compares CAVA and
// RobustMPC on both.
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 60;
  const auto traces = bench::lte_traces(num_traces);

  bench::Table table({"chunk dur", "scheme", "Q4 qual", "low-qual %",
                      "rebuf (s)", "qual change", "data (MB)",
                      "startup (s)"});
  for (const double dur : {2.0, 5.0}) {
    const video::Video ed = video::make_video(
        "ED-" + bench::fmt(dur, 0) + "s", video::Genre::kAnimation,
        video::Codec::kH264, dur, 2.0, bench::kCorpusSeed + 0x11, 600.0);
    for (const std::string& s : {std::string("CAVA"),
                                 std::string("RobustMPC")}) {
      sim::ExperimentSpec spec;
      spec.video = &ed;
      spec.traces = traces;
      spec.make_scheme = bench::scheme_factory(s);
      const sim::ExperimentResult r = sim::run_experiment(spec);
      double startup = 0.0;
      for (const auto& pt : r.per_trace) {
        startup += pt.startup_delay_s;
      }
      startup /= static_cast<double>(r.per_trace.size());
      table.add_row({bench::fmt(dur, 0) + " s", s,
                     bench::fmt(r.mean_q4_quality, 1),
                     bench::fmt(r.mean_low_quality_pct, 1),
                     bench::fmt(r.mean_rebuffer_s, 2),
                     bench::fmt(r.mean_quality_change, 2),
                     bench::fmt(r.mean_data_usage_mb, 1),
                     bench::fmt(startup, 2)});
    }
  }
  table.print("Ablation: chunk duration 2 s vs 5 s (" +
              std::to_string(num_traces) + " LTE traces)");
  std::printf("\nShape check: CAVA's advantages hold at both chunk "
              "durations (its windows are specified in seconds, so W/W' "
              "adapt to the chunking); longer chunks react more slowly.\n");
  return 0;
}
