// Extension: fleet-scale workload throughput and the edge-cache effect.
//
// Two sweeps over the fleet driver (src/fleet):
//
//   1. Scale: wall-clock and sessions/s for growing fleets at 1, 2, and
//      hardware-concurrency worker threads — the sharded-by-title design
//      should scale near-linearly while staying byte-deterministic.
//   2. Cache arms: the same 300-session fleet with the edge cache on vs the
//      origin-only control arm, reporting hit ratio, edge vs origin bytes,
//      and the per-class QoE shift from hit latency / origin-rate haircuts.
//
// Run: ./bench_ext_fleet_scale
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common.h"
#include "fleet/fleet.h"

namespace {

using namespace vbr;

fleet::FleetSpec base_spec(const std::vector<net::Trace>& traces,
                           std::size_t sessions) {
  fleet::FleetSpec spec;
  spec.catalog.num_titles = 24;
  spec.catalog.title_duration_s = 120.0;
  spec.catalog.zipf_alpha = 0.8;
  spec.arrivals.rate_per_s = 1.0;
  spec.arrivals.horizon_s = 1e9;  // session-count limited
  spec.arrivals.max_sessions = sessions;
  spec.classes.resize(2);
  spec.classes[0].label = "CAVA";
  spec.classes[0].make_scheme = bench::scheme_factory("CAVA");
  spec.classes[1].label = "BBA-1";
  spec.classes[1].make_scheme = bench::scheme_factory("BBA-1");
  spec.traces = traces;
  spec.cache.capacity_bits = 16e9;
  return spec;
}

double run_timed(const fleet::FleetSpec& spec, double* wall_s) {
  const auto t0 = std::chrono::steady_clock::now();
  const fleet::FleetResult r = fleet::run_fleet(spec);
  const auto t1 = std::chrono::steady_clock::now();
  *wall_s = std::chrono::duration<double>(t1 - t0).count();
  return r.cache.hit_ratio();
}

}  // namespace

int main() {
  const std::vector<net::Trace> traces = bench::lte_traces(20);
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());

  std::printf("== fleet scale: wall clock vs sessions and threads ==\n");
  std::printf("%10s %8s %12s %12s\n", "sessions", "threads", "wall(s)",
              "sessions/s");
  for (const std::size_t sessions : {100, 300, 600}) {
    for (const unsigned threads : {1u, 2u, hw}) {
      fleet::FleetSpec spec = base_spec(traces, sessions);
      spec.threads = threads;
      double wall = 0.0;
      (void)run_timed(spec, &wall);
      std::printf("%10zu %8u %12.2f %12.1f\n", sessions, threads, wall,
                  static_cast<double>(sessions) / wall);
    }
  }

  std::printf("\n== cache arms (300 sessions, 24 titles, zipf 0.8) ==\n");
  for (const bool cached : {true, false}) {
    fleet::FleetSpec spec = base_spec(traces, 300);
    spec.use_cache = cached;
    spec.threads = hw;
    const fleet::FleetResult r = fleet::run_fleet(spec);
    std::printf("cache %-3s | hit ratio %.3f (byte %.3f) | edge %.0f MB, "
                "origin %.0f MB\n",
                cached ? "on" : "off", r.cache.hit_ratio(),
                r.cache.byte_hit_ratio(), r.edge_hit_bits / 8e6,
                r.origin_bits / 8e6);
    for (const fleet::FleetSchemeReport& c : r.per_class) {
      std::printf("  %-8s n=%-4zu qual %5.1f  low%% %5.1f  rebuf %6.2fs  "
                  "startup %5.2fs  %6.1f MB\n",
                  c.label.c_str(), c.sessions, c.mean_all_quality,
                  c.mean_low_quality_pct, c.mean_rebuffer_s,
                  c.mean_startup_delay_s, c.mean_data_usage_mb);
    }
  }
  return 0;
}
