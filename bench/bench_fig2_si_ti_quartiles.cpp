// Fig. 2 — Chunk SI/TI by size quartile (Elephant Dream, track 3), for both
// H.264 and H.265. Reproduces the paper's scatter as per-quartile SI/TI
// statistics plus the headline percentages: ~78% (H.264) / ~75% (H.265) of
// Q4 chunks exceed SI > 25 and TI > 7, versus ~5-14% of Q1/Q2 chunks.
#include <cstdio>

#include "common.h"
#include "core/complexity_classifier.h"
#include "metrics/stats.h"

namespace {

void analyze(const vbr::video::Video& v) {
  using namespace vbr;
  // Classify by the paper's Fig. 2 setting: track 3 as the reference.
  const core::ComplexityClassifier cls(v, 3, 4);

  std::printf("\n%s (reference track 3, SI/TI from the source footage)\n",
              v.name().c_str());
  std::printf("%-5s %6s %8s %8s %8s %8s %18s\n", "class", "count", "med SI",
              "med TI", "p90 SI", "p90 TI", "SI>25 & TI>7 (%)");
  for (std::size_t q = 0; q < 4; ++q) {
    std::vector<double> si;
    std::vector<double> ti;
    std::size_t above = 0;
    for (std::size_t i = 0; i < v.num_chunks(); ++i) {
      if (cls.class_of(i) != q) {
        continue;
      }
      si.push_back(v.scene_info(i).si);
      ti.push_back(v.scene_info(i).ti);
      if (v.scene_info(i).si > 25.0 && v.scene_info(i).ti > 7.0) {
        ++above;
      }
    }
    std::printf("Q%-4zu %6zu %8.1f %8.1f %8.1f %8.1f %18.1f\n", q + 1,
                si.size(), stats::median(si), stats::median(ti),
                stats::percentile(si, 90.0), stats::percentile(ti, 90.0),
                100.0 * static_cast<double>(above) /
                    static_cast<double>(si.size()));
  }
}

}  // namespace

int main() {
  using namespace vbr;
  std::printf("Fig. 2: scene complexity (SI/TI) vs chunk-size quartile\n");
  std::printf("Paper: Q4 chunks concentrate at high SI/TI; Q1/Q2 rarely "
              "exceed SI>25, TI>7.\n");
  for (const video::Codec codec : {video::Codec::kH264,
                                   video::Codec::kH265}) {
    const video::Video ed = video::make_video(
        codec == video::Codec::kH264 ? "ED-ffmpeg-h264" : "ED-ffmpeg-h265",
        video::Genre::kAnimation, codec, 2.0, 2.0,
        bench::kCorpusSeed + 0x11, 600.0);
    analyze(ed);
  }
  return 0;
}
