// Extension — segment abandonment (dash.js AbandonRequestsRule): aborting a
// hopeless in-flight fetch and refetching the bottom track trades wasted
// bytes for less rebuffering. Measures its effect on the aggressive
// horizon schemes and on CAVA (which should rarely need it).
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 60;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  const auto traces = bench::lte_traces(num_traces);

  bench::Table table({"scheme", "abandon", "Q4 qual", "low-qual %",
                      "rebuf (s)", "data (MB)"});
  for (const std::string& s :
       {std::string("CAVA"), std::string("MPC"),
        std::string("PANDA/CQ max-min")}) {
    for (const bool abandon : {false, true}) {
      sim::ExperimentSpec spec;
      spec.video = &ed;
      spec.traces = traces;
      spec.make_scheme = bench::scheme_factory(s);
      spec.session.enable_abandonment = abandon;
      const sim::ExperimentResult r = sim::run_experiment(spec);
      table.add_row({s, abandon ? "on" : "off",
                     bench::fmt(r.mean_q4_quality, 1),
                     bench::fmt(r.mean_low_quality_pct, 1),
                     bench::fmt(r.mean_rebuffer_s, 2),
                     bench::fmt(r.mean_data_usage_mb, 1)});
    }
  }
  table.print("Segment abandonment on/off (" + std::to_string(num_traces) +
              " LTE traces)");
  std::printf("\nShape check: abandonment rescues the horizon schemes from "
              "much of their cliff-stalling (at a quality/data cost); CAVA "
              "barely changes — its control loop rarely starts a hopeless "
              "fetch in the first place.\n");
  return 0;
}
