// Fig. 10 — design-principle ablation (Elephant Dream, FFmpeg-style,
// H.264, LTE): (a) Q4 chunk quality of CAVA-p12 and CAVA-p123 relative to
// CAVA-p1 (differential treatment lifts ~40% of Q4 chunks, hurts ~5%);
// (b) total rebuffering of CAVA-p123 relative to CAVA-p12 on the traces
// where either variant rebuffers (proactive principle cuts rebuffering in
// ~55% of those traces).
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "metrics/stats.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 200;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  const auto traces = bench::lte_traces(num_traces);

  auto run = [&](const std::string& scheme) {
    sim::ExperimentSpec spec;
    spec.video = &ed;
    spec.traces = traces;
    spec.make_scheme = bench::scheme_factory(scheme);
    return sim::run_experiment(spec);
  };
  const auto p1 = run("CAVA-p1");
  const auto p12 = run("CAVA-p12");
  const auto p123 = run("CAVA");

  std::printf("Fig. 10: CAVA design-principle ablation over %zu LTE "
              "traces\n",
              traces.size());

  // (a) Per-chunk Q4 quality deltas relative to CAVA-p1 (pooled across
  // traces, index-aligned).
  const auto q4_p1 = p1.pooled_q4_qualities();
  auto delta_series = [&](const sim::ExperimentResult& r) {
    const auto q4 = r.pooled_q4_qualities();
    std::vector<double> d(q4.size());
    for (std::size_t i = 0; i < q4.size(); ++i) {
      d[i] = q4[i] - q4_p1[i];
    }
    return d;
  };
  const auto d12 = delta_series(p12);
  const auto d123 = delta_series(p123);
  bench::print_cdfs("(a) Q4 chunk quality relative to CAVA-p1",
                    {"CAVA-p12", "CAVA-p123"}, {d12, d123});
  auto frac = [](const std::vector<double>& xs, double lo, double hi) {
    std::size_t n = 0;
    for (const double x : xs) {
      n += (x > lo && x <= hi) ? 1 : 0;
    }
    return 100.0 * static_cast<double>(n) / static_cast<double>(xs.size());
  };
  std::printf("CAVA-p12 : %.0f%% of Q4 chunks improved, %.0f%% degraded "
              "(paper: ~40%% / ~5%%)\n",
              frac(d12, 0.5, 1e9), frac(d12, -1e9, -0.5));
  std::printf("CAVA-p123: %.0f%% of Q4 chunks improved, %.0f%% degraded\n",
              frac(d123, 0.5, 1e9), frac(d123, -1e9, -0.5));

  // (b) Rebuffering of p123 relative to p12 on traces where either stalls.
  std::vector<double> rel;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const double a = p12.per_trace[i].rebuffer_s;
    const double b = p123.per_trace[i].rebuffer_s;
    if (a > 0.0 || b > 0.0) {
      rel.push_back(b - a);
    }
  }
  if (rel.empty()) {
    std::printf("\n(b) no trace rebuffered under either variant.\n");
  } else {
    bench::print_cdf("(b) total rebuffering of CAVA-p123 minus CAVA-p12, "
                     "s (traces with any rebuffering: " +
                         std::to_string(rel.size()) + ")",
                     rel);
    std::size_t lower = 0;
    for (const double x : rel) {
      lower += x < 0.0 ? 1 : 0;
    }
    std::printf("CAVA-p123 rebuffers less than CAVA-p12 in %.0f%% of those "
                "traces (paper: 55%%), max reduction %.1f s (paper: up to "
                "20 s)\n",
                100.0 * static_cast<double>(lower) /
                    static_cast<double>(rel.size()),
                -*std::min_element(rel.begin(), rel.end()));
  }

  std::printf("\nMeans: %-9s Q4 %.1f, rebuf %.2f s\n", "CAVA-p1:",
              p1.mean_q4_quality, p1.mean_rebuffer_s);
  std::printf("       %-9s Q4 %.1f, rebuf %.2f s\n", "CAVA-p12:",
              p12.mean_q4_quality, p12.mean_rebuffer_s);
  std::printf("       %-9s Q4 %.1f, rebuf %.2f s\n", "CAVA-p123:",
              p123.mean_q4_quality, p123.mean_rebuffer_s);
  return 0;
}
