// Extension — the full scheme zoo on one table: every baseline implemented
// in this repository (the paper's comparison set plus the extra rate-based
// and buffer-based families) under identical conditions.
#include <cstdio>
#include <memory>

#include "abr/bba.h"
#include "abr/festive.h"
#include "abr/throughput_rule.h"
#include "common.h"
#include "core/pia.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 60;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  const auto traces = bench::lte_traces(num_traces);

  struct Row {
    std::string name;
    sim::SchemeFactory factory;
  };
  const std::vector<Row> schemes = {
      {"CAVA", bench::scheme_factory("CAVA")},
      {"MPC", bench::scheme_factory("MPC")},
      {"RobustMPC", bench::scheme_factory("RobustMPC")},
      {"PANDA/CQ max-min", bench::scheme_factory("PANDA/CQ max-min")},
      {"PANDA/CQ max-sum", bench::scheme_factory("PANDA/CQ max-sum")},
      {"BOLA-E (seg)", bench::scheme_factory("BOLA-E (seg)")},
      {"BOLA-E (avg)", bench::scheme_factory("BOLA-E (avg)")},
      {"BOLA-E (peak)", bench::scheme_factory("BOLA-E (peak)")},
      {"BBA-1", bench::scheme_factory("BBA-1")},
      {"BBA-0", [] { return std::make_unique<abr::Bba0>(); }},
      {"RBA", bench::scheme_factory("RBA")},
      {"FESTIVE", [] { return std::make_unique<abr::Festive>(); }},
      {"ThroughputRule",
       [] { return std::make_unique<abr::ThroughputRule>(); }},
      {"DYNAMIC", [] { return std::make_unique<abr::DynamicRule>(); }},
      {"PIA", [] { return std::make_unique<core::Pia>(); }},
  };

  bench::Table table({"scheme", "Q4 qual", "Q13 qual", "low-qual %",
                      "rebuf (s)", "qual change", "data (MB)"});
  for (const Row& row : schemes) {
    sim::ExperimentSpec spec;
    spec.video = &ed;
    spec.traces = traces;
    spec.make_scheme = row.factory;
    const sim::ExperimentResult r = sim::run_experiment(spec);
    table.add_row({row.name, bench::fmt(r.mean_q4_quality, 1),
                   bench::fmt(r.mean_q13_quality, 1),
                   bench::fmt(r.mean_low_quality_pct, 1),
                   bench::fmt(r.mean_rebuffer_s, 2),
                   bench::fmt(r.mean_quality_change, 2),
                   bench::fmt(r.mean_data_usage_mb, 1)});
    std::printf("  ran %s\n", row.name.c_str());
  }
  table.print("All implemented schemes, ED-ffmpeg-h264 over " +
              std::to_string(num_traces) + " LTE traces (VMAF phone)");
  std::printf("\nShape check: CAVA leads the multi-dimensional tradeoff; "
              "rate-based schemes churn, buffer-based schemes are smooth "
              "but Q4-blind, horizon schemes stall on cliffs.\n");
  return 0;
}
