// Ablation — PID gain robustness (Section 6.1: "we varied Kp and Ki, and
// confirmed that ... a wide range of Kp and Ki values lead to good
// performance"). Sweeps the gains over an order of magnitude each and
// reports the QoE surface.
#include <cstdio>
#include <memory>

#include "common.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 60;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  const auto traces = bench::lte_traces(num_traces);

  bench::Table table({"Kp", "Ki", "Q4 qual", "low-qual %", "rebuf (s)",
                      "qual change", "data (MB)"});
  for (const double kp : {0.0025, 0.005, 0.01, 0.02, 0.04}) {
    for (const double ki : {0.00005, 0.0002, 0.0008}) {
      sim::ExperimentSpec spec;
      spec.video = &ed;
      spec.traces = traces;
      spec.make_scheme = [kp, ki] {
        core::CavaConfig cfg;
        cfg.kp = kp;
        cfg.ki = ki;
        return std::make_unique<core::Cava>(cfg);
      };
      const sim::ExperimentResult r = sim::run_experiment(spec);
      table.add_row({bench::fmt(kp, 4), bench::fmt(ki, 5),
                     bench::fmt(r.mean_q4_quality, 1),
                     bench::fmt(r.mean_low_quality_pct, 1),
                     bench::fmt(r.mean_rebuffer_s, 2),
                     bench::fmt(r.mean_quality_change, 2),
                     bench::fmt(r.mean_data_usage_mb, 1)});
    }
  }
  table.print("Ablation: PID gain sweep (" + std::to_string(num_traces) +
              " LTE traces)");
  std::printf("\nShape check: the QoE columns move little across an order "
              "of magnitude in either gain — the controller is robust, as "
              "the paper reports. Defaults: Kp = %.3f, Ki = %.4f.\n",
              core::CavaConfig{}.kp, core::CavaConfig{}.ki);
  return 0;
}
