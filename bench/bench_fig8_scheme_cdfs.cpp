// Fig. 8 — per-metric CDFs across LTE traces for one FFmpeg-style video
// (Elephant Dream, H.264): (a) quality of Q4 chunks, (b) percentage of
// low-quality chunks, (c) total rebuffering, (d) average quality change per
// chunk, (e) data usage relative to CAVA. Schemes: CAVA, MPC, RobustMPC,
// PANDA/CQ max-sum, PANDA/CQ max-min.
#include <cstdio>

#include "common.h"
#include "metrics/stats.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 100;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  const auto traces = bench::lte_traces(num_traces);

  const std::vector<std::string> names = {"CAVA", "MPC", "RobustMPC",
                                          "PANDA/CQ max-sum",
                                          "PANDA/CQ max-min"};
  std::printf("Fig. 8: scheme comparison CDFs, %s over %zu LTE traces "
              "(VMAF phone model)\n",
              ed.name().c_str(), traces.size());

  std::vector<sim::ExperimentResult> results;
  for (const std::string& n : names) {
    sim::ExperimentSpec spec;
    spec.video = &ed;
    spec.traces = traces;
    spec.make_scheme = bench::scheme_factory(n);
    results.push_back(sim::run_experiment(spec));
    std::printf("  ran %s\n", n.c_str());
  }

  auto series_of = [&](auto getter) {
    std::vector<std::vector<double>> out;
    for (const auto& r : results) {
      out.push_back(getter(r));
    }
    return out;
  };

  bench::print_cdfs("(a) quality of Q4 chunks (pooled per-chunk)", names,
                    series_of([](const sim::ExperimentResult& r) {
                      return r.pooled_q4_qualities();
                    }));
  bench::print_cdfs("(b) percentage of low-quality chunks (per trace)",
                    names, series_of([](const sim::ExperimentResult& r) {
                      return r.low_quality_pct_values();
                    }));
  bench::print_cdfs("(c) total rebuffering, s (per trace)", names,
                    series_of([](const sim::ExperimentResult& r) {
                      return r.rebuffer_values();
                    }));
  bench::print_cdfs("(d) avg quality change per chunk (per trace)", names,
                    series_of([](const sim::ExperimentResult& r) {
                      return r.quality_change_values();
                    }));
  // (e) data usage relative to CAVA, per trace (the paper plots relative
  // usage in MB).
  {
    std::vector<std::vector<double>> rel;
    const auto cava_usage = results[0].data_usage_values();
    for (const auto& r : results) {
      const auto usage = r.data_usage_values();
      std::vector<double> d;
      for (std::size_t i = 0; i < usage.size(); ++i) {
        d.push_back(usage[i] - cava_usage[i]);
      }
      rel.push_back(std::move(d));
    }
    bench::print_cdfs("(e) data usage relative to CAVA, MB (per trace)",
                      names, rel);
  }

  // Headline statistics the paper quotes for this figure.
  const auto& cava = results[0];
  const auto& rmpc = results[2];
  const auto& pmin = results[4];
  auto frac_above = [](const std::vector<double>& xs, double thr) {
    std::size_t n = 0;
    for (const double x : xs) {
      n += x > thr ? 1 : 0;
    }
    return 100.0 * static_cast<double>(n) / static_cast<double>(xs.size());
  };
  auto frac_zero = [](const std::vector<double>& xs) {
    std::size_t n = 0;
    for (const double x : xs) {
      n += x <= 1e-9 ? 1 : 0;
    }
    return 100.0 * static_cast<double>(n) / static_cast<double>(xs.size());
  };
  std::printf("\nHeadlines (paper values in parentheses):\n");
  std::printf("  Q4 chunks above VMAF 60: CAVA %.0f%% (79%%), RobustMPC "
              "%.0f%% (59%%), PANDA max-min %.0f%% (57%%)\n",
              frac_above(cava.pooled_q4_qualities(), 60.0),
              frac_above(rmpc.pooled_q4_qualities(), 60.0),
              frac_above(pmin.pooled_q4_qualities(), 60.0));
  std::printf("  median Q4 VMAF: CAVA %.0f (78), RobustMPC %.0f (67), "
              "PANDA max-min %.0f (66)\n",
              stats::median(cava.pooled_q4_qualities()),
              stats::median(rmpc.pooled_q4_qualities()),
              stats::median(pmin.pooled_q4_qualities()));
  std::printf("  traces with zero rebuffering: CAVA %.0f%% (85%%), "
              "RobustMPC %.0f%% (20%%), PANDA max-min %.0f%% (68%%)\n",
              frac_zero(cava.rebuffer_values()),
              frac_zero(rmpc.rebuffer_values()),
              frac_zero(pmin.rebuffer_values()));
  return 0;
}
