// Extension — degraded chunk-size knowledge sweep: how much of each
// scheme's QoE rests on the exact segment size table the paper's
// LoadSegmentSize extension provides?
//
// Every size-aware scheme is run under a ladder of knowledge modes, from
// the oracle table (today's behaviour, the reproduction baseline) down to
// the declared-average-rate view a plain MPD gives, with noisy and holed
// tables in between and an online-corrected variant on top. The network
// always moves the true bytes — only the schemes' size beliefs degrade —
// so any QoE delta is attributable to planning on wrong sizes, not to a
// different channel.
//
// Expected shape: oracle == the fault-free baseline bit for bit; noise
// perturbs decisions mildly and smoothly; the declared-rate view
// systematically underestimates complex chunks (the paper's Section 4
// argument), so schemes over-pick tracks on exactly the Q4 chunks and pay
// for it in rebuffering; online correction claws back most of that
// rebuffering penalty.
//
//   bench_ext_size_knowledge [num_traces]   (default 40)
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "video/size_provider.h"

namespace {

using namespace vbr;

constexpr std::uint64_t kKnowledgeSeed = 0x51CE;

struct Mode {
  std::string label;
  video::SizeKnowledgeConfig config;
};

std::vector<Mode> knowledge_modes() {
  std::vector<Mode> modes;
  {
    Mode m{"oracle", {}};
    modes.push_back(m);
  }
  {
    Mode m{"noisy 25%", {}};
    m.config.mode = video::SizeKnowledge::kNoisy;
    m.config.noise_err = 0.25;
    modes.push_back(m);
  }
  {
    Mode m{"noisy 50%", {}};
    m.config.mode = video::SizeKnowledge::kNoisy;
    m.config.noise_err = 0.50;
    modes.push_back(m);
  }
  {
    Mode m{"partial 25%", {}};
    m.config.mode = video::SizeKnowledge::kPartial;
    m.config.miss_rate = 0.25;
    modes.push_back(m);
  }
  {
    Mode m{"declared", {}};
    m.config.mode = video::SizeKnowledge::kDeclared;
    modes.push_back(m);
  }
  {
    Mode m{"declared+corr", {}};
    m.config.mode = video::SizeKnowledge::kDeclared;
    m.config.online_correction = true;
    modes.push_back(m);
  }
  for (Mode& m : modes) {
    m.config.seed = kKnowledgeSeed;
  }
  return modes;
}

sim::ExperimentResult run(const video::Video& v,
                          std::span<const net::Trace> traces,
                          const std::string& scheme,
                          const video::SizeKnowledgeConfig& config) {
  sim::ExperimentSpec spec;
  spec.video = &v;
  spec.traces = traces;
  spec.make_scheme = bench::scheme_factory(scheme);
  spec.make_size_provider = [&config] {
    return video::make_size_provider(config);
  };
  return sim::run_experiment(spec);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 40;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  const auto traces = bench::lte_traces(num_traces);

  const std::vector<std::string> schemes = {
      "CAVA", "MPC", "RobustMPC", "BOLA-E (seg)", "BBA-1",
      "PANDA/CQ max-min"};
  const std::vector<Mode> modes = knowledge_modes();

  bench::Table table({"scheme", "knowledge", "Q4 qual", "all qual",
                      "low-qual %", "rebuf (s)", "change", "data (MB)"});
  for (const std::string& s : schemes) {
    double base_q4 = 0.0;
    for (const Mode& m : modes) {
      const sim::ExperimentResult r = run(ed, traces, s, m.config);
      if (m.label == "oracle") {
        base_q4 = r.mean_q4_quality;
      }
      table.add_row(
          {s, m.label,
           bench::fmt(r.mean_q4_quality, 1) +
               (m.label == "oracle"
                    ? ""
                    : " (" + bench::pct_delta(r.mean_q4_quality, base_q4) +
                          ")"),
           bench::fmt(r.mean_all_quality, 1),
           bench::fmt(r.mean_low_quality_pct, 1),
           bench::fmt(r.mean_rebuffer_s, 2),
           bench::fmt(r.mean_quality_change, 2),
           bench::fmt(r.mean_data_usage_mb, 1)});
    }
  }
  table.print("QoE vs chunk-size knowledge (" + std::to_string(num_traces) +
              " LTE traces, knowledge seed 0x51CE, network unchanged)");

  std::printf(
      "\nShape check: 'oracle' reproduces the exact-table baseline bit for "
      "bit (golden-tested). The plain-MPD 'declared' view underestimates "
      "complex chunks, so schemes over-pick tracks on Q4 content and pay in "
      "rebuffering; 'declared+corr' recovers most of that rebuffering "
      "without touching the network.\n");
  return 0;
}
