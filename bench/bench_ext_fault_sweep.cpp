// Extension — fault-injection sweep: QoE degradation curves under
// per-request failure rates of 0/1/5/10% (split evenly across hard
// connect failures, mid-transfer drops, and response timeouts), with the
// resilient download loop (3 attempts, exponential backoff, downgrade on
// repeated failure) recovering what it can.
//
// The headline robustness artifact: which schemes degrade gracefully? A
// well-behaved scheme should lose quality roughly in proportion to the
// failure rate, keep skips near zero, and contain the stall growth; a
// brittle one converts faults into rebuffering cliffs. A second table
// shows the resilience knobs themselves (retries vs no retries vs resume)
// at a fixed 10% failure rate.
//
//   bench_ext_fault_sweep [num_traces]   (default 40)
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"

namespace {

using namespace vbr;

sim::ExperimentResult run(const video::Video& v,
                          std::span<const net::Trace> traces,
                          const std::string& scheme, double fail_rate,
                          const sim::RetryPolicy& retry) {
  sim::ExperimentSpec spec;
  spec.video = &v;
  spec.traces = traces;
  spec.make_scheme = bench::scheme_factory(scheme);
  spec.session.fault.connect_failure_prob = fail_rate / 3.0;
  spec.session.fault.mid_drop_prob = fail_rate / 3.0;
  spec.session.fault.timeout_prob = fail_rate / 3.0;
  spec.session.fault.seed = 0xFA017;
  spec.session.retry = retry;
  return sim::run_experiment(spec);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 40;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  const auto traces = bench::lte_traces(num_traces);

  const std::vector<std::string> schemes = {
      "CAVA", "RobustMPC", "PANDA/CQ max-min", "BBA-1", "BOLA-E (avg)",
      "RBA"};
  const std::vector<double> rates = {0.0, 0.01, 0.05, 0.10};

  bench::Table table({"scheme", "fail%", "Q4 qual", "low-qual %",
                      "rebuf (s)", "skip %", "att/chunk", "data (MB)"});
  for (const std::string& s : schemes) {
    double base_q4 = 0.0;
    for (const double rate : rates) {
      const sim::ExperimentResult r =
          run(ed, traces, s, rate, sim::RetryPolicy{});
      if (rate == 0.0) {
        base_q4 = r.mean_q4_quality;
      }
      table.add_row({s, bench::fmt(100.0 * rate, 0),
                     bench::fmt(r.mean_q4_quality, 1) +
                         (rate == 0.0
                              ? ""
                              : " (" + bench::pct_delta(r.mean_q4_quality,
                                                        base_q4) +
                                    ")"),
                     bench::fmt(r.mean_low_quality_pct, 1),
                     bench::fmt(r.mean_rebuffer_s, 2),
                     bench::fmt(r.mean_skipped_pct, 2),
                     bench::fmt(r.mean_attempts_per_chunk, 2),
                     bench::fmt(r.mean_data_usage_mb, 1)});
    }
  }
  table.print("QoE vs per-request failure rate (" +
              std::to_string(num_traces) +
              " LTE traces, retries=3, backoff 0.5 s x2, downgrade on)");

  // Resilience knobs at a fixed 10% failure rate.
  sim::RetryPolicy no_retry;
  no_retry.max_attempts = 1;
  sim::RetryPolicy defaults;
  sim::RetryPolicy resume = defaults;
  resume.resume_partial = true;
  sim::RetryPolicy no_downgrade = defaults;
  no_downgrade.downgrade_on_failure = false;

  bench::Table knobs({"scheme", "policy", "Q4 qual", "rebuf (s)", "skip %",
                      "wasted (MB)", "data (MB)"});
  for (const std::string& s :
       {std::string("CAVA"), std::string("RobustMPC")}) {
    const std::vector<std::pair<std::string, sim::RetryPolicy>> policies = {
        {"no retry", no_retry},
        {"retry", defaults},
        {"retry+resume", resume},
        {"retry, no downgrade", no_downgrade}};
    for (const auto& [label, policy] : policies) {
      const sim::ExperimentResult r = run(ed, traces, s, 0.10, policy);
      double wasted_mb = 0.0;
      for (const metrics::FaultSummary& f : r.per_trace_faults) {
        wasted_mb += f.wasted_mb;
      }
      wasted_mb /= static_cast<double>(r.per_trace_faults.size());
      knobs.add_row({s, label, bench::fmt(r.mean_q4_quality, 1),
                     bench::fmt(r.mean_rebuffer_s, 2),
                     bench::fmt(r.mean_skipped_pct, 2),
                     bench::fmt(wasted_mb, 1),
                     bench::fmt(r.mean_data_usage_mb, 1)});
    }
  }
  knobs.print("Resilience knobs at 10% failure rate");

  std::printf(
      "\nShape check: every session completes (skips instead of aborts); "
      "retries cut skip rates to near zero at the cost of backoff stalls, "
      "resume trims wasted bytes, and buffer-led schemes (CAVA, BBA) "
      "degrade more gracefully than horizon schemes that re-plan around "
      "corrupted throughput samples.\n");
  return 0;
}
