// Section 6.2 (outer controller window size) — sweep W': rebuffering
// decreases as W' grows (more proactive), and can tick back up when W' is
// so large that the future-window average converges to the track average
// (Eq. 5's increment vanishes). The paper picks W' = 200 s.
#include <cstdio>
#include <memory>

#include "common.h"
#include "metrics/stats.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 60;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  const auto traces = bench::lte_traces(num_traces);

  std::printf("Section 6.2: outer controller window size sweep (%zu LTE "
              "traces)\n\n",
              traces.size());
  std::printf("%-8s %12s %12s %12s %12s\n", "W' (s)", "rebuf mean",
              "rebuf p90", "Q4 mean", "target>base (%)");

  for (const double w : {20.0, 60.0, 120.0, 200.0, 320.0, 480.0}) {
    sim::ExperimentSpec spec;
    spec.video = &ed;
    spec.traces = traces;
    spec.make_scheme = [w] {
      core::CavaConfig cfg;
      cfg.outer_window_s = w;
      return std::make_unique<core::Cava>(cfg);
    };
    const sim::ExperimentResult r = sim::run_experiment(spec);

    // How often the preview raises the target above the base for this W'.
    core::CavaConfig cfg;
    cfg.outer_window_s = w;
    const core::OuterController outer(cfg);
    std::size_t raised = 0;
    for (std::size_t i = 0; i < ed.num_chunks(); ++i) {
      if (outer.target_buffer_s(ed, ed.middle_track(), i) >
          cfg.base_target_buffer_s + 0.5) {
        ++raised;
      }
    }
    const auto rebuf = r.rebuffer_values();
    std::printf("%-8.0f %12.2f %12.2f %12.1f %12.1f\n", w,
                stats::mean(rebuf), stats::percentile(rebuf, 90.0),
                r.mean_q4_quality,
                100.0 * static_cast<double>(raised) /
                    static_cast<double>(ed.num_chunks()));
  }
  std::printf("\nPaper shape check: rebuffering falls as W' grows; with "
              "very large W' the preview term flattens (last column "
              "shrinks) and the benefit saturates or reverses.\n");
  return 0;
}
