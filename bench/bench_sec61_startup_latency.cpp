// Section 6.1 — startup latency: the paper explored a range of practical
// settings, reported results for 10 s, and notes others "were similar".
// This bench sweeps the startup latency and verifies the insensitivity.
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 60;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  const auto traces = bench::lte_traces(num_traces);

  bench::Table table({"startup (s)", "scheme", "Q4 qual", "low-qual %",
                      "rebuf (s)", "data (MB)"});
  for (const double startup : {4.0, 10.0, 20.0, 30.0}) {
    for (const std::string& s :
         {std::string("CAVA"), std::string("RobustMPC")}) {
      sim::ExperimentSpec spec;
      spec.video = &ed;
      spec.traces = traces;
      spec.make_scheme = bench::scheme_factory(s);
      spec.session.startup_latency_s = startup;
      const sim::ExperimentResult r = sim::run_experiment(spec);
      table.add_row({bench::fmt(startup, 0), s,
                     bench::fmt(r.mean_q4_quality, 1),
                     bench::fmt(r.mean_low_quality_pct, 1),
                     bench::fmt(r.mean_rebuffer_s, 2),
                     bench::fmt(r.mean_data_usage_mb, 1)});
    }
  }
  table.print("Section 6.1: startup latency sweep (" +
              std::to_string(num_traces) + " LTE traces)");
  std::printf("\nShape check: results barely move across practical startup "
              "settings, and CAVA leads at every one — matching the "
              "paper's 'results for other settings were similar'.\n");
  return 0;
}
