// Section 3.3 — VBR with a larger (4x) cap: Q4 chunks remain significantly
// lower quality than Q1-Q3 even when the cap is relaxed. The paper reports,
// for the 480p track under the VMAF phone model: Q4 median 79 vs 88/88/85
// for Q1-Q3.
#include <cstdio>

#include "common.h"
#include "core/complexity_classifier.h"
#include "metrics/stats.h"

namespace {

void report(const vbr::video::Video& v, const char* label) {
  using namespace vbr;
  const core::ComplexityClassifier cls(v);
  const video::Track& mid = v.track(v.middle_track());
  std::vector<std::vector<double>> per_class(4);
  for (std::size_t i = 0; i < v.num_chunks(); ++i) {
    per_class[cls.class_of(i)].push_back(mid.chunk(i).quality.vmaf_phone);
  }
  std::printf("%-10s 480p VMAF-phone medians: Q1 %.0f | Q2 %.0f | Q3 %.0f | "
              "Q4 %.0f   (top-track peak/avg %.2fx)\n",
              label, stats::median(per_class[0]),
              stats::median(per_class[1]), stats::median(per_class[2]),
              stats::median(per_class[3]),
              v.track(v.num_tracks() - 1).peak_to_average());
}

}  // namespace

int main() {
  using namespace vbr;
  std::printf("Section 3.3: quality per quartile under 2x vs 4x bitrate "
              "caps (Elephant Dream, FFmpeg-style, H.264)\n");
  std::printf("Paper (4x): Q4 median 79 vs Q1-Q3 88/88/85 — the gap "
              "persists at larger caps.\n\n");

  const video::Video v2 = video::make_video(
      "ED-2x", video::Genre::kAnimation, video::Codec::kH264, 2.0, 2.0,
      bench::kCorpusSeed + 0x11, 600.0);
  const video::Video v4 = video::make_video(
      "ED-4x", video::Genre::kAnimation, video::Codec::kH264, 2.0, 4.0,
      bench::kCorpusSeed + 0x11, 600.0);
  report(v2, "2x cap:");
  report(v4, "4x cap:");

  std::printf("\nShape check: Q4 well below Q1-Q3 under both caps; the 4x "
              "encode shows higher peak/avg variability.\n");
  return 0;
}
