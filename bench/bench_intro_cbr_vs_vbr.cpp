// Introduction — the CBR vs VBR contrast that motivates the paper: at the
// same average bitrate, CBR gives simple and complex scenes the same bit
// budget (variable quality), while VBR shifts bits toward complex scenes
// (more consistent, higher floor). We encode the same content both ways and
// compare per-chunk quality, then stream both with CAVA.
#include <cstdio>

#include "common.h"
#include "core/complexity_classifier.h"
#include "metrics/stats.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 60;

  const video::Video vbr_enc = video::make_video(
      "ED-vbr", video::Genre::kAnimation, video::Codec::kH264, 2.0, 2.0,
      bench::kCorpusSeed + 0x11, 600.0);
  const video::Video cbr_enc = video::make_cbr_video(
      "ED-cbr", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      bench::kCorpusSeed + 0x11, 600.0);

  // (a) Encoding-level comparison on the middle track.
  const std::size_t mid = vbr_enc.middle_track();
  std::vector<double> q_vbr;
  std::vector<double> q_cbr;
  for (std::size_t i = 0; i < vbr_enc.num_chunks(); ++i) {
    q_vbr.push_back(vbr_enc.track(mid).chunk(i).quality.vmaf_phone);
    q_cbr.push_back(cbr_enc.track(mid).chunk(i).quality.vmaf_phone);
  }
  std::printf("Intro: CBR vs VBR at the same average bitrate (480p track, "
              "%.2f vs %.2f Mbps)\n",
              cbr_enc.track(mid).average_bitrate_bps() / 1e6,
              vbr_enc.track(mid).average_bitrate_bps() / 1e6);
  bench::print_cdfs("(a) per-chunk VMAF-phone, 480p track", {"CBR", "VBR"},
                    {q_cbr, q_vbr});
  std::printf("mean: CBR %.1f, VBR %.1f | p10 (quality floor): CBR %.1f, "
              "VBR %.1f | stddev: CBR %.1f, VBR %.1f\n",
              stats::mean(q_cbr), stats::mean(q_vbr),
              stats::percentile(q_cbr, 10.0),
              stats::percentile(q_vbr, 10.0), stats::stddev(q_cbr),
              stats::stddev(q_vbr));

  // (b) Streaming-level comparison: CAVA on each encode.
  const auto traces = bench::lte_traces(num_traces);
  bench::Table table({"encode", "Q4 qual", "all qual", "low-qual %",
                      "rebuf (s)", "qual change", "data (MB)"});
  for (const video::Video* v : {&cbr_enc, &vbr_enc}) {
    sim::ExperimentSpec spec;
    spec.video = v;
    spec.traces = traces;
    spec.make_scheme = bench::scheme_factory("CAVA");
    const sim::ExperimentResult r = sim::run_experiment(spec);
    table.add_row({v->name(), bench::fmt(r.mean_q4_quality, 1),
                   bench::fmt(r.mean_all_quality, 1),
                   bench::fmt(r.mean_low_quality_pct, 1),
                   bench::fmt(r.mean_rebuffer_s, 2),
                   bench::fmt(r.mean_quality_change, 2),
                   bench::fmt(r.mean_data_usage_mb, 1)});
  }
  table.print("(b) CAVA streaming QoE on each encode (" +
              std::to_string(num_traces) + " LTE traces)");
  std::printf("\nShape check: VBR raises the quality floor (p10) and the "
              "complex-scene quality for the same bits — the premise of "
              "the whole paper.\n");
  return 0;
}
