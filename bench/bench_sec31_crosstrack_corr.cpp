// Section 3.1.1 — cross-track consistency of chunk-size categories: for
// every video, the per-chunk size-quartile sequences of any two tracks
// correlate near 1, which is what licenses classifying from a single
// reference track.
#include <cstdio>

#include "common.h"
#include "core/complexity_classifier.h"
#include "metrics/stats.h"

int main() {
  using namespace vbr;
  const std::vector<video::Video> corpus = video::make_full_corpus();

  bench::Table table({"video", "min pairwise corr", "min category corr",
                      "class agreement vs mid (%)"});
  for (const video::Video& v : corpus) {
    // Pairwise Spearman correlation of raw sizes between all track pairs.
    double min_size_corr = 1.0;
    for (std::size_t a = 0; a < v.num_tracks(); ++a) {
      for (std::size_t b = a + 1; b < v.num_tracks(); ++b) {
        min_size_corr = std::min(
            min_size_corr, stats::spearman(v.track(a).chunk_sizes_bits(),
                                           v.track(b).chunk_sizes_bits()));
      }
    }
    // Pearson correlation of the *category sequences* (the paper's c_{l,i})
    // between all track pairs, classifying each track by its own quartiles.
    std::vector<std::vector<double>> cats(v.num_tracks());
    for (std::size_t l = 0; l < v.num_tracks(); ++l) {
      const core::ComplexityClassifier c(v, l, 4);
      for (std::size_t i = 0; i < v.num_chunks(); ++i) {
        cats[l].push_back(static_cast<double>(c.class_of(i)) + 1.0);
      }
    }
    double min_cat_corr = 1.0;
    for (std::size_t a = 0; a < v.num_tracks(); ++a) {
      for (std::size_t b = a + 1; b < v.num_tracks(); ++b) {
        min_cat_corr = std::min(min_cat_corr,
                                stats::pearson(cats[a], cats[b]));
      }
    }
    // Exact agreement with the middle-track classification.
    const core::ComplexityClassifier mid(v);
    double worst_agree = 100.0;
    for (std::size_t l = 0; l < v.num_tracks(); ++l) {
      const core::ComplexityClassifier c(v, l, 4);
      std::size_t agree = 0;
      for (std::size_t i = 0; i < v.num_chunks(); ++i) {
        agree += c.class_of(i) == mid.class_of(i) ? 1 : 0;
      }
      worst_agree = std::min(worst_agree,
                             100.0 * static_cast<double>(agree) /
                                 static_cast<double>(v.num_chunks()));
    }
    table.add_row({v.name(), bench::fmt(min_size_corr, 3),
                   bench::fmt(min_cat_corr, 3), bench::fmt(worst_agree, 1)});
  }
  table.print(
      "Section 3.1.1: cross-track chunk-size category consistency "
      "(paper: all correlations close to 1)");
  return 0;
}
