// Table 1 — CAVA vs RobustMPC and PANDA/CQ max-min across the 8
// YouTube-style videos under LTE traces, and the 4 open titles under FCC
// traces. Each cell shows CAVA's change relative to the baseline:
// Q4 quality as a VMAF delta; the other four metrics as percentages.
// Paper: Q4 +8..18 (vs RobustMPC) / +3..9 (vs PANDA); low-quality
// -4..-87%; stalls -62..-95%; quality changes -25..-48%; data -1..-11%.
#include <cstdio>

#include "common.h"

namespace {

using namespace vbr;

struct Cell {
  double q4_delta;
  std::string low, stall, change, data;
};

Cell compare(const sim::ExperimentResult& cava,
             const sim::ExperimentResult& base) {
  return Cell{
      cava.mean_q4_quality - base.mean_q4_quality,
      bench::pct_delta(cava.mean_low_quality_pct, base.mean_low_quality_pct),
      bench::pct_delta(cava.mean_rebuffer_s, base.mean_rebuffer_s),
      bench::pct_delta(cava.mean_quality_change, base.mean_quality_change),
      bench::pct_delta(cava.mean_data_usage_mb, base.mean_data_usage_mb)};
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 100;
  const auto lte = bench::lte_traces(num_traces);
  const auto fcc = bench::fcc_traces(num_traces);

  std::printf("Table 1: CAVA relative to RobustMPC / PANDA-CQ-max-min "
              "(%zu traces per set)\n",
              num_traces);
  std::printf("Cells: first value vs RobustMPC, second vs PANDA max-min.\n");

  bench::Table table({"set", "video", "Q4 qual (VMAF delta)",
                      "low-qual chunks", "stall dur", "quality changes",
                      "data usage"});

  struct Block {
    const char* label;
    std::vector<std::string> videos;
    std::span<const vbr::net::Trace> traces;
    vbr::video::QualityMetric metric;
  };
  const std::vector<vbr::video::Video> yt = vbr::video::make_youtube_corpus();
  const Block blocks[] = {
      {"LTE",
       {"BBB-yt", "ED-yt", "Sintel-yt", "ToS-yt", "Animal-yt", "Nature-yt",
        "Sports-yt", "Action-yt"},
       lte,
       vbr::video::QualityMetric::kVmafPhone},
      {"FCC",
       {"BBB-yt", "ED-yt", "Sintel-yt", "ToS-yt"},
       fcc,
       vbr::video::QualityMetric::kVmafTv},
  };

  for (const Block& block : blocks) {
    for (const std::string& name : block.videos) {
      const vbr::video::Video& v = vbr::video::find_video(yt, name);
      auto run = [&](const std::string& scheme) {
        vbr::sim::ExperimentSpec spec;
        spec.video = &v;
        spec.traces = block.traces;
        spec.make_scheme = bench::scheme_factory(scheme, block.metric);
        spec.metric = block.metric;
        return vbr::sim::run_experiment(spec);
      };
      const auto cava = run("CAVA");
      const auto rmpc = run("RobustMPC");
      const auto panda = run("PANDA/CQ max-min");
      const Cell a = compare(cava, rmpc);
      const Cell b = compare(cava, panda);
      auto updown = [](double d) {
        return (d >= 0 ? std::string("+") : std::string("")) +
               bench::fmt(d, 1);
      };
      table.add_row({block.label, name,
                     updown(a.q4_delta) + ", " + updown(b.q4_delta),
                     a.low + ", " + b.low, a.stall + ", " + b.stall,
                     a.change + ", " + b.change, a.data + ", " + b.data});
      std::printf("  done %s/%s\n", block.label, name.c_str());
    }
  }
  table.print("Table 1 (higher Q4 delta better; negative %% better "
              "elsewhere)");
  return 0;
}
