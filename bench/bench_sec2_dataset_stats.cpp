// Section 2 — dataset characterization table: per-video, per-track average
// bitrate, coefficient of variation (paper: 0.3-0.6), and peak-to-average
// ratio (paper: 1.1-2.3x YouTube, 1.4-2.4x FFmpeg; lowest two tracks least
// variable).
#include <cstdio>

#include "common.h"
#include "metrics/stats.h"

int main() {
  using namespace vbr;
  const std::vector<video::Video> corpus = video::make_full_corpus();

  bench::Table table({"video", "codec", "chunk", "track", "res", "avg Mbps",
                      "CoV", "peak/avg"});
  for (const video::Video& v : corpus) {
    for (const video::Track& t : v.tracks()) {
      table.add_row({v.name(), to_string(v.codec()),
                     bench::fmt(v.chunk_duration_s(), 0) + "s",
                     std::to_string(t.level()), t.resolution().label(),
                     bench::fmt(t.average_bitrate_bps() / 1e6, 2),
                     bench::fmt(stats::coefficient_of_variation(
                                    t.chunk_bitrates_bps()),
                                2),
                     bench::fmt(t.peak_to_average(), 2)});
    }
  }
  table.print("Section 2: VBR dataset statistics (16 videos x 6 tracks)");

  // Aggregate ranges, mirroring the paper's prose.
  double cov_lo = 1e9;
  double cov_hi = 0.0;
  double pa_lo = 1e9;
  double pa_hi = 0.0;
  std::size_t lowest_least_variable = 0;
  for (const video::Video& v : corpus) {
    std::vector<double> covs;
    for (const video::Track& t : v.tracks()) {
      const double cov =
          stats::coefficient_of_variation(t.chunk_bitrates_bps());
      covs.push_back(cov);
      cov_lo = std::min(cov_lo, cov);
      cov_hi = std::max(cov_hi, cov);
      pa_lo = std::min(pa_lo, t.peak_to_average());
      pa_hi = std::max(pa_hi, t.peak_to_average());
    }
    if (covs[0] <= covs.back() && covs[1] <= covs.back()) {
      ++lowest_least_variable;
    }
  }
  std::printf("\nCoV range across all tracks:        %.2f - %.2f  (paper: "
              "0.3 - 0.6)\n",
              cov_lo, cov_hi);
  std::printf("peak/average range across all tracks: %.2f - %.2f (paper: "
              "1.1 - 2.4)\n",
              pa_lo, pa_hi);
  std::printf("videos where the two lowest tracks are least variable: "
              "%zu / %zu (paper: all)\n",
              lowest_least_variable, corpus.size());
  return 0;
}
