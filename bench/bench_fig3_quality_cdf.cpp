// Fig. 3 — CDF of chunk quality per size quartile (Elephant Dream,
// YouTube-style encode, H.264, 480p track) under all four metrics: PSNR,
// SSIM, VMAF-TV, VMAF-phone. Paper shape: Q1..Q4 have increasing sizes but
// decreasing quality, with a particularly large gap between Q4 and Q1-Q3.
#include <cstdio>

#include "common.h"
#include "core/complexity_classifier.h"
#include "metrics/stats.h"

int main() {
  using namespace vbr;
  const video::Video ed = video::make_video(
      "ED-yt", video::Genre::kAnimation, video::Codec::kH264, 5.0, 2.0,
      bench::kCorpusSeed + 0x11, 600.0);
  const core::ComplexityClassifier cls(ed);
  const video::Track& mid = ed.track(ed.middle_track());

  std::printf("Fig. 3: per-quartile chunk quality CDFs (%s, 480p track)\n",
              ed.name().c_str());

  const struct {
    const char* name;
    video::QualityMetric metric;
  } metrics[] = {
      {"PSNR (dB)", video::QualityMetric::kPsnr},
      {"SSIM", video::QualityMetric::kSsim},
      {"VMAF-TV", video::QualityMetric::kVmafTv},
      {"VMAF-Phone", video::QualityMetric::kVmafPhone},
  };

  for (const auto& m : metrics) {
    std::vector<std::vector<double>> per_class(4);
    for (std::size_t i = 0; i < ed.num_chunks(); ++i) {
      per_class[cls.class_of(i)].push_back(
          mid.chunk(i).quality.get(m.metric));
    }
    bench::print_cdfs(std::string("CDF of ") + m.name,
                      {"Q1", "Q2", "Q3", "Q4"}, per_class);
    std::printf("medians: Q1 %.2f | Q2 %.2f | Q3 %.2f | Q4 %.2f\n",
                stats::median(per_class[0]), stats::median(per_class[1]),
                stats::median(per_class[2]), stats::median(per_class[3]));
  }
  std::printf("\nPaper shape check: quality decreases from Q1 to Q4 under "
              "every metric; Q4 gap largest.\n");
  return 0;
}
