// Fig. 11 + Table 2 — the dash.js study reproduced in simulation: CAVA vs
// the three BOLA-E variants (peak / avg / seg declared sizes) with dash.js
// default buffer parameters.
//
// Fig. 11 (Big Buck Bunny, YouTube-style, LTE): 6 CDFs — Q4 quality, Q1-Q3
// quality, low-quality %, rebuffering, quality change, total data usage.
// Table 2 (BBB, ED, Sports, ToS): CAVA vs BOLA-E (seg) — paper: Q4 +10..21,
// low-quality -73..-87%, stalls -15..-65%, quality changes -24..-45%, data
// usage +25..+56% (BOLA-E's pausing saves data at the cost of quality).
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 100;
  const auto traces = bench::lte_traces(num_traces);
  const std::vector<video::Video> yt = video::make_youtube_corpus();

  auto run = [&](const video::Video& v, const std::string& scheme) {
    sim::ExperimentSpec spec;
    spec.video = &v;
    spec.traces = traces;
    spec.make_scheme = bench::scheme_factory(scheme);
    return sim::run_experiment(spec);
  };

  // ---- Fig. 11: BBB CDFs --------------------------------------------
  const video::Video& bbb = video::find_video(yt, "BBB-yt");
  const std::vector<std::string> names = {"CAVA", "BOLA-E (avg)",
                                          "BOLA-E (peak)", "BOLA-E (seg)"};
  std::printf("Fig. 11: CAVA vs BOLA-E variants, %s over %zu LTE traces "
              "(dash.js default BOLA buffer parameters)\n",
              bbb.name().c_str(), traces.size());
  std::vector<sim::ExperimentResult> results;
  for (const std::string& n : names) {
    results.push_back(run(bbb, n));
    std::printf("  ran %s\n", n.c_str());
  }
  auto series = [&](auto getter) {
    std::vector<std::vector<double>> out;
    for (const auto& r : results) {
      out.push_back(getter(r));
    }
    return out;
  };
  bench::print_cdfs("(a) quality of Q4 chunks", names,
                    series([](const sim::ExperimentResult& r) {
                      return r.pooled_q4_qualities();
                    }));
  bench::print_cdfs("(b) quality of Q1-Q3 chunks", names,
                    series([](const sim::ExperimentResult& r) {
                      return r.pooled_q13_qualities();
                    }));
  bench::print_cdfs("(c) pct of low-quality chunks (per trace)", names,
                    series([](const sim::ExperimentResult& r) {
                      return r.low_quality_pct_values();
                    }));
  bench::print_cdfs("(d) total rebuffering, s (per trace)", names,
                    series([](const sim::ExperimentResult& r) {
                      return r.rebuffer_values();
                    }));
  bench::print_cdfs("(e) avg quality change per chunk (per trace)", names,
                    series([](const sim::ExperimentResult& r) {
                      return r.quality_change_values();
                    }));
  bench::print_cdfs("(f) total data usage, MB (per trace)", names,
                    series([](const sim::ExperimentResult& r) {
                      return r.data_usage_values();
                    }));

  // ---- Table 2: CAVA vs BOLA-E (seg) on four videos ------------------
  bench::Table table({"video", "Q4 qual (delta)", "low-qual chunks",
                      "stall dur", "quality changes", "data usage"});
  for (const char* name : {"BBB-yt", "ED-yt", "Sports-yt", "ToS-yt"}) {
    const video::Video& v = video::find_video(yt, name);
    const auto cava = run(v, "CAVA");
    const auto seg = run(v, "BOLA-E (seg)");
    table.add_row(
        {name,
         (cava.mean_q4_quality >= seg.mean_q4_quality ? "+" : "") +
             bench::fmt(cava.mean_q4_quality - seg.mean_q4_quality, 1),
         bench::pct_delta(cava.mean_low_quality_pct,
                          seg.mean_low_quality_pct),
         bench::pct_delta(cava.mean_rebuffer_s, seg.mean_rebuffer_s),
         bench::pct_delta(cava.mean_quality_change,
                          seg.mean_quality_change),
         bench::pct_delta(cava.mean_data_usage_mb,
                          seg.mean_data_usage_mb)});
    std::printf("  table row done: %s\n", name);
  }
  table.print("Table 2: CAVA relative to BOLA-E (seg) — paper: Q4 +10..21, "
              "low-qual -73..-87%, stalls -15..-65%, changes -24..-45%, "
              "data +25..+56%");
  return 0;
}
