// Extension — multi-client fairness at a shared bottleneck (the dimension
// FESTIVE-style related work studies): do CAVA clients share capacity and
// quality fairly with each other, and how do mixed CAVA/PANDA and
// CAVA/BOLA populations split the link?
#include <cstdio>
#include <memory>

#include "common.h"
#include "metrics/stats.h"
#include "net/bandwidth_estimator.h"
#include "sim/multi_client.h"

namespace {

using namespace vbr;

sim::ClientSpec client(const video::Video& v, const std::string& scheme) {
  sim::ClientSpec spec;
  spec.video = &v;
  spec.scheme = bench::scheme_factory(scheme)();
  spec.estimator = std::make_unique<net::HarmonicMeanEstimator>(5);
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 40;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  // Scale the bottleneck up: it now carries three players.
  net::LteTraceParams params;
  params.trace_scale_sigma = 0.2;
  std::vector<net::Trace> traces;
  for (std::size_t i = 0; i < num_traces; ++i) {
    const net::Trace base =
        net::generate_lte_trace(bench::kLteSeed * 1000003ULL + i, params);
    std::vector<double> scaled;
    scaled.reserve(base.num_samples());
    for (const double s : base.samples_bps()) {
      scaled.push_back(3.0 * s);
    }
    traces.emplace_back(base.name() + "-x3", base.sample_period_s(),
                        std::move(scaled));
  }

  struct Mix {
    const char* label;
    std::vector<std::string> schemes;
  };
  const std::vector<Mix> mixes = {
      {"3x CAVA", {"CAVA", "CAVA", "CAVA"}},
      {"3x PANDA max-min",
       {"PANDA/CQ max-min", "PANDA/CQ max-min", "PANDA/CQ max-min"}},
      {"2x CAVA + PANDA", {"CAVA", "CAVA", "PANDA/CQ max-min"}},
      {"2x CAVA + BOLA-E", {"CAVA", "CAVA", "BOLA-E (seg)"}},
  };

  bench::Table table({"population", "Jain(bits)", "Jain(quality)",
                      "mean qual", "mean rebuf (s)", "client-0 MB",
                      "client-2 MB"});
  for (const Mix& mix : mixes) {
    std::vector<double> jain_bits;
    std::vector<double> jain_qual;
    std::vector<double> qual;
    std::vector<double> rebuf;
    std::vector<double> mb0;
    std::vector<double> mb2;
    for (const net::Trace& t : traces) {
      std::vector<sim::ClientSpec> clients;
      for (const std::string& s : mix.schemes) {
        clients.push_back(client(ed, s));
      }
      const sim::MultiClientResult r =
          sim::run_multi_client(t, std::move(clients));
      jain_bits.push_back(
          sim::MultiClientResult::jain_index(r.total_bits()));
      const auto q = r.mean_qualities(video::QualityMetric::kVmafPhone);
      jain_qual.push_back(sim::MultiClientResult::jain_index(q));
      qual.push_back(stats::mean(q));
      double rb = 0.0;
      for (const auto& s : r.sessions) {
        rb += s.total_rebuffer_s;
      }
      rebuf.push_back(rb / static_cast<double>(r.sessions.size()));
      mb0.push_back(r.sessions[0].total_bits / 8e6);
      mb2.push_back(r.sessions[2].total_bits / 8e6);
    }
    table.add_row({mix.label, bench::fmt(stats::mean(jain_bits), 3),
                   bench::fmt(stats::mean(jain_qual), 3),
                   bench::fmt(stats::mean(qual), 1),
                   bench::fmt(stats::mean(rebuf), 2),
                   bench::fmt(stats::mean(mb0), 1),
                   bench::fmt(stats::mean(mb2), 1)});
  }
  table.print("Shared-bottleneck fairness, 3 clients per 3x-scaled LTE "
              "trace (" + std::to_string(num_traces) + " traces)");
  std::printf("\nShape check: homogeneous CAVA populations share near-"
              "perfectly (Jain ~1); in mixed populations CAVA's deflation "
              "yields some capacity to the greedier scheme without "
              "collapsing its own quality.\n");
  return 0;
}
