// Learned-ABR lifecycle benchmark: what the imitation pipeline costs at
// each stage (DESIGN.md section 14).
//
//   - teacher rollout + dataset build (events/sec through the feature layer)
//   - training throughput for both backends (examples/sec)
//   - policy file save/load time (the fleet-restart path)
//   - per-decision latency: learned-tabular / learned-mlp next to the CAVA
//     and MPC baselines on the same context sweep
//
// Results go to BENCH_LEARNED.json; the per-decision numbers also appear in
// BENCH_PERF.json via bench_perf_decision_suite, which gates them under
// 1 us in the perf-smoke ctest.
//
// Flags:
//   --quick        smaller fleet + fewer iterations (CI budget)
//   --out FILE     report path (default BENCH_LEARNED.json)
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "abr/mpc.h"
#include "common.h"
#include "core/cava.h"
#include "fleet/catalog.h"
#include "fleet/fleet.h"
#include "learn/learned_scheme.h"
#include "learn/trainer.h"
#include "obs/json_util.h"
#include "obs/trace_sink.h"

namespace {

using namespace vbr;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Deterministic context sweep over the first catalog title (same shape as
/// bench_perf_decision_suite's sweep).
abr::StreamContext sweep_context(const video::Video& v, std::size_t i) {
  abr::StreamContext ctx;
  ctx.video = &v;
  ctx.next_chunk = (i * 17) % v.num_chunks();
  ctx.buffer_s = 4.0 + static_cast<double>(i % 29);
  ctx.est_bandwidth_bps = 1.2e6 + 3.0e5 * static_cast<double>(i % 7);
  ctx.prev_track = static_cast<int>(i % v.num_tracks());
  ctx.now_s = 2.0 * static_cast<double>(i);
  return ctx;
}

double measure_decide(abr::AbrScheme& scheme, const video::Video& v,
                      std::size_t iters) {
  scheme.reset();
  std::uint64_t sink = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    sink += scheme.decide(sweep_context(v, i)).track;
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    sink += scheme.decide(sweep_context(v, i)).track;
  }
  const double ns = seconds_since(t0) * 1e9 / static_cast<double>(iters);
  if (sink == 0xdeadbeef) {  // defeat dead-code elimination
    std::printf("impossible\n");
  }
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_LEARNED.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && a + 1 < argc) {
      out_path = argv[++a];
    } else {
      std::cerr << "usage: bench_ext_learned_abr [--quick] [--out FILE]\n";
      return 2;
    }
  }

  // Stage 1: teacher rollout through the fleet driver (in memory).
  const std::vector<net::Trace> traces = bench::fcc_traces(quick ? 20 : 60);
  fleet::FleetSpec spec;
  spec.arrivals.rate_per_s = 0.5;
  spec.arrivals.horizon_s = quick ? 400.0 : 1600.0;
  spec.arrivals.max_sessions = quick ? 200 : 800;
  fleet::FleetClientClass teacher;
  teacher.label = "MPC";
  teacher.make_scheme = bench::scheme_factory("MPC");
  spec.classes.push_back(teacher);
  spec.traces = traces;
  obs::MemoryTraceSink sink;
  spec.trace = &sink;
  auto t0 = std::chrono::steady_clock::now();
  const fleet::FleetResult fr = fleet::run_fleet(spec);
  const double rollout_s = seconds_since(t0);
  const std::vector<obs::DecisionEvent> events(sink.events().begin(),
                                               sink.events().end());
  std::printf("rollout: %zu sessions, %zu events in %.2f s\n",
              fr.sessions.size(), events.size(), rollout_s);

  // Stage 2: dataset build through the shared feature layer.
  const fleet::Catalog catalog(spec.catalog);
  learn::FeatureConfig cfg;
  cfg.num_tracks = catalog.title(0).num_tracks();
  const learn::VideoLookup lookup =
      [&catalog](const obs::DecisionEvent& ev) -> const video::Video* {
    if (!ev.edge.has_value() || ev.edge->title >= catalog.num_titles()) {
      return nullptr;
    }
    return &catalog.title(static_cast<std::size_t>(ev.edge->title));
  };
  t0 = std::chrono::steady_clock::now();
  const learn::Dataset dataset = learn::build_dataset(events, cfg, lookup);
  const double build_s = seconds_since(t0);
  const double build_events_per_s =
      build_s > 0.0 ? static_cast<double>(events.size()) / build_s : 0.0;
  std::printf("dataset: %zu examples in %.3f s (%.0f events/sec)\n",
              dataset.examples.size(), build_s, build_events_per_s);

  // Stage 3: training throughput.
  learn::TrainerConfig tc;
  tc.epochs = quick ? 10 : 40;
  t0 = std::chrono::steady_clock::now();
  const learn::Policy tabular =
      learn::train_tabular(dataset, cfg, tc, "bench-imitate", 1);
  const double tab_train_s = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  const learn::Policy mlp =
      learn::train_mlp(dataset, cfg, tc, "bench-imitate", 1);
  const double mlp_train_s = seconds_since(t0);
  const double n = static_cast<double>(dataset.examples.size());
  std::printf("train: tabular %.3f s (%.0f ex/s), mlp %.3f s (%.0f ex/s)\n",
              tab_train_s, n / tab_train_s, mlp_train_s,
              (n * static_cast<double>(tc.epochs)) / mlp_train_s);

  // Stage 4: policy save + load round trip.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "bench_ext_learned_abr";
  std::filesystem::create_directories(dir);
  const std::string tab_path = (dir / "tabular.vbrp").string();
  const std::string mlp_path = (dir / "mlp.vbrp").string();
  learn::save_policy_file(tab_path, tabular);
  learn::save_policy_file(mlp_path, mlp);
  const std::size_t loads = quick ? 5 : 20;
  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < loads; ++i) {
    (void)learn::load_policy_file(tab_path);
  }
  const double tab_load_ms = seconds_since(t0) * 1e3 / loads;
  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < loads; ++i) {
    (void)learn::load_policy_file(mlp_path);
  }
  const double mlp_load_ms = seconds_since(t0) * 1e3 / loads;
  std::printf("load: tabular %.2f ms (%zu states), mlp %.3f ms\n",
              tab_load_ms, tabular.tabular.table.size(), mlp_load_ms);

  // Stage 5: decision latency against the baselines, on trained policies.
  const video::Video& v = catalog.title(0);
  const std::size_t iters = quick ? 3000 : 30000;
  learn::LearnedScheme tab_scheme(
      std::make_shared<const learn::Policy>(tabular));
  learn::LearnedScheme mlp_scheme(std::make_shared<const learn::Policy>(mlp));
  const auto cava = core::make_cava_p123();
  abr::Mpc mpc(abr::mpc_config());
  const double tab_ns = measure_decide(tab_scheme, v, iters);
  const double mlp_ns = measure_decide(mlp_scheme, v, iters);
  const double cava_ns = measure_decide(*cava, v, iters);
  const double mpc_ns = measure_decide(mpc, v, quick ? 300 : 3000);
  std::printf("decide: learned-tabular %.0f ns, learned-mlp %.0f ns, "
              "CAVA %.0f ns, MPC %.0f ns\n",
              tab_ns, mlp_ns, cava_ns, mpc_ns);

  std::string json;
  json += "{\"suite\":\"learned-abr-lifecycle\",\"quick\":";
  json += quick ? "true" : "false";
  json += ",\"rollout\":{\"sessions\":";
  obs::detail::append_uint(json, fr.sessions.size());
  json += ",\"events\":";
  obs::detail::append_uint(json, events.size());
  json += ",\"wall_s\":";
  obs::detail::append_double(json, rollout_s);
  json += "},\"dataset\":{\"examples\":";
  obs::detail::append_uint(json, dataset.examples.size());
  json += ",\"events_per_sec\":";
  obs::detail::append_double(json, build_events_per_s);
  json += "},\"train\":{\"tabular_examples_per_sec\":";
  obs::detail::append_double(json, n / tab_train_s);
  json += ",\"mlp_examples_per_sec\":";
  obs::detail::append_double(
      json, (n * static_cast<double>(tc.epochs)) / mlp_train_s);
  json += "},\"load_ms\":{\"tabular\":";
  obs::detail::append_double(json, tab_load_ms);
  json += ",\"mlp\":";
  obs::detail::append_double(json, mlp_load_ms);
  json += "},\"decide_ns\":{\"learned_tabular\":";
  obs::detail::append_double(json, tab_ns);
  json += ",\"learned_mlp\":";
  obs::detail::append_double(json, mlp_ns);
  json += ",\"cava\":";
  obs::detail::append_double(json, cava_ns);
  json += ",\"mpc\":";
  obs::detail::append_double(json, mpc_ns);
  json += "}}\n";
  std::ofstream out(out_path);
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
