// Fig. 1 — Bitrate of the chunks of a VBR video (Elephant Dream, H.264,
// YouTube-style encode). Prints the per-chunk bitrate series of all six
// tracks plus each track's average (the dashed lines in the paper's figure).
#include <cstdio>

#include "common.h"

int main() {
  using namespace vbr;
  const video::Video ed = video::make_video(
      "ED-yt", video::Genre::kAnimation, video::Codec::kH264,
      /*chunk_duration_s=*/5.0, /*cap_factor=*/2.0, bench::kCorpusSeed + 0x11,
      600.0);

  std::printf("Fig. 1: per-chunk bitrate (Mbps) of %s, %zu tracks, %zu "
              "chunks\n\n",
              ed.name().c_str(), ed.num_tracks(), ed.num_chunks());

  std::printf("%-6s", "chunk");
  for (const video::Track& t : ed.tracks()) {
    std::printf(" %8s", t.resolution().label().c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < ed.num_chunks(); ++i) {
    std::printf("%-6zu", i + 1);
    for (const video::Track& t : ed.tracks()) {
      std::printf(" %8.3f", t.chunk(i).bitrate_bps() / 1e6);
    }
    std::printf("\n");
  }

  std::printf("\n%-6s", "avg");
  for (const video::Track& t : ed.tracks()) {
    std::printf(" %8.3f", t.average_bitrate_bps() / 1e6);
  }
  std::printf("\n%-6s", "peak");
  for (const video::Track& t : ed.tracks()) {
    std::printf(" %8.3f", t.peak_bitrate_bps() / 1e6);
  }
  std::printf("\n%-6s", "p/a");
  for (const video::Track& t : ed.tracks()) {
    std::printf(" %8.2f", t.peak_to_average());
  }
  std::printf("\n\nPaper shape check: six well-separated tracks, visible "
              "chunk-to-chunk variability,\npeak/average between ~1.1x and "
              "~2.4x per track.\n");
  return 0;
}
