// Fig. 9 — quality CDFs of the Q1-Q3 chunks and of all chunks for the same
// setting as Fig. 8. Paper shape: CAVA's Q1-Q3 quality is neither the
// highest nor low — it trades a little Q1-Q3 headroom for better Q4 quality
// and far fewer low-quality chunks overall.
#include <cstdio>

#include "common.h"
#include "metrics/stats.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 100;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  const auto traces = bench::lte_traces(num_traces);

  const std::vector<std::string> names = {"CAVA", "MPC", "RobustMPC",
                                          "PANDA/CQ max-sum",
                                          "PANDA/CQ max-min"};
  std::printf("Fig. 9: Q1-Q3 and all-chunk quality CDFs, %s over %zu LTE "
              "traces\n",
              ed.name().c_str(), traces.size());

  std::vector<std::vector<double>> q13;
  std::vector<std::vector<double>> all;
  for (const std::string& n : names) {
    sim::ExperimentSpec spec;
    spec.video = &ed;
    spec.traces = traces;
    spec.make_scheme = bench::scheme_factory(n);
    const sim::ExperimentResult r = sim::run_experiment(spec);
    q13.push_back(r.pooled_q13_qualities());
    all.push_back(r.pooled_all_qualities());
    std::printf("  %-18s median Q1-Q3 %.1f | median all %.1f\n", n.c_str(),
                stats::median(q13.back()), stats::median(all.back()));
  }
  bench::print_cdfs("(a) quality of Q1-Q3 chunks", names, q13);
  bench::print_cdfs("(b) quality of all chunks", names, all);
  std::printf("\nPaper shape check: CAVA is not the top curve for Q1-Q3 "
              "(differential treatment spends there) but avoids the "
              "low-quality region for all chunks.\n");
  return 0;
}
