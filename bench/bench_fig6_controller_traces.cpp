// Fig. 6 — the paper's illustration of the two controllers at work:
// (a) track selection around a complex (Q4) cluster under inflated/deflated
//     assumed bandwidth and the short-term filter;
// (b) the target buffer level rising *ahead of* a cluster of large chunks
//     (preview control).
// This bench renders both as per-chunk traces from CAVA's diagnostics on a
// constant-bandwidth link, where every movement is attributable to the
// video's chunk-size profile rather than network noise.
#include <cstdio>

#include "common.h"
#include "core/complexity_classifier.h"
#include "net/bandwidth_estimator.h"
#include "sim/session.h"

int main() {
  using namespace vbr;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  const core::ComplexityClassifier cls(ed);
  const core::OuterController outer{core::CavaConfig{}};

  // Flat 1.5 Mbps: between track 3 (0.87) and track 4 (1.66) averages, so
  // selections hinge on the VBR machinery.
  const net::Trace t("flat-1500k", 1.0, std::vector<double>(1800, 1.5e6));
  core::Cava cava;
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r = sim::run_session(ed, t, cava, est);

  std::printf("Fig. 6: controller traces on a flat 1.5 Mbps link "
              "(%s)\n\n",
              ed.name().c_str());
  std::printf("%-6s %-3s %8s %9s %11s %11s %8s\n", "chunk", "Q4", "track",
              "buffer", "target x_r", "ref bitrate", "VMAF");
  for (std::size_t i = 0; i < ed.num_chunks(); ++i) {
    const double target =
        outer.target_buffer_s(ed, ed.middle_track(), i);
    std::printf("%-6zu %-3s %8zu %9.1f %11.1f %11.2f %8.1f\n", i,
                cls.is_complex(i) ? "*" : "",
                r.chunks[i].track, r.chunks[i].buffer_after_s, target,
                ed.track(ed.middle_track()).chunk(i).bitrate_bps() / 1e6,
                r.chunks[i].quality.vmaf_phone);
  }

  // Quantify the preview behaviour: the target must be higher, on average,
  // in the W' window *before* Q4 clusters than far away from them.
  double before_q4 = 0.0;
  std::size_t n_before = 0;
  double elsewhere = 0.0;
  std::size_t n_else = 0;
  for (std::size_t i = 0; i + 1 < ed.num_chunks(); ++i) {
    bool q4_ahead = false;
    for (std::size_t k = i; k < std::min(i + 25, ed.num_chunks()); ++k) {
      q4_ahead |= cls.is_complex(k);
    }
    const double target = outer.target_buffer_s(ed, ed.middle_track(), i);
    if (q4_ahead) {
      before_q4 += target;
      ++n_before;
    } else {
      elsewhere += target;
      ++n_else;
    }
  }
  std::printf("\nmean target buffer with a Q4 chunk within 50 s ahead: "
              "%.1f s; without: %.1f s\n",
              before_q4 / static_cast<double>(n_before),
              n_else > 0 ? elsewhere / static_cast<double>(n_else) : 0.0);
  std::printf("Paper shape check: the target rises before large-chunk "
              "clusters (Fig. 6b) and Q4 chunks get equal-or-higher tracks "
              "than their simple neighbours despite their size (Fig. 6a).\n");
  return 0;
}
