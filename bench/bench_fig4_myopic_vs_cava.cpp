// Fig. 4 — per-chunk quality timeline of the two myopic schemes (BBA-1,
// RBA) vs CAVA on one LTE trace, with Q4 playback positions marked. Paper
// numbers for its example: Q4 average VMAF 49 (BBA-1), 52 (RBA), 65 (CAVA);
// rebuffering 6 s, 4 s, 0 s.
#include <cstdio>
#include <memory>

#include "abr/bba.h"
#include "abr/rba.h"
#include "common.h"
#include "core/complexity_classifier.h"
#include "net/bandwidth_estimator.h"
#include "sim/session.h"

namespace {

struct Run {
  const char* name;
  vbr::sim::SessionResult result;
};

}  // namespace

int main() {
  using namespace vbr;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0, 2.0,
      bench::kCorpusSeed + 0x11, 600.0);
  const core::ComplexityClassifier cls(ed);

  // Pick the illustrative trace (as the paper's Fig. 4 does): the one where
  // the myopic schemes' Q4 starvation is clearest while CAVA streams
  // smoothly.
  const auto traces = bench::lte_traces(30);
  auto q4_mean = [&](const sim::SessionResult& r) {
    double q = 0.0;
    std::size_t n = 0;
    for (const auto& c : r.chunks) {
      if (cls.is_complex(c.index)) {
        q += c.quality.vmaf_phone;
        ++n;
      }
    }
    return q / static_cast<double>(n);
  };
  auto run_on = [&](abr::AbrScheme& s, const net::Trace& t) {
    net::HarmonicMeanEstimator est(5);
    return sim::run_session(ed, t, s, est);
  };
  const net::Trace* trace = &traces[0];
  double best_gap = -1e9;
  for (const net::Trace& t : traces) {
    // The pathology shows when the ladder is contested: mid-range traces.
    const double mean = t.average_bandwidth_bps();
    if (mean < 6e5 || mean > 2.5e6) {
      continue;
    }
    abr::Bba bba;
    abr::Rba rba;
    auto cava = core::make_cava_p123();
    const auto rb = run_on(bba, t);
    const auto rr = run_on(rba, t);
    const auto rc = run_on(*cava, t);
    const double gap = q4_mean(rc) -
                       std::max(q4_mean(rb), q4_mean(rr)) -
                       3.0 * rc.total_rebuffer_s;
    if (gap > best_gap) {
      best_gap = gap;
      trace = &t;
    }
  }

  abr::Bba bba;
  abr::Rba rba;
  auto cava = core::make_cava_p123();
  const Run runs[] = {{"BBA-1", run_on(bba, *trace)},
                      {"RBA", run_on(rba, *trace)},
                      {"CAVA", run_on(*cava, *trace)}};

  std::printf("Fig. 4: per-chunk VMAF-phone timeline on trace %s "
              "(mean %.2f Mbps). Q4 positions marked '*'.\n\n",
              trace->name().c_str(), trace->average_bandwidth_bps() / 1e6);
  std::printf("%-6s %-3s %10s %10s %10s\n", "chunk", "Q4", "BBA-1", "RBA",
              "CAVA");
  for (std::size_t i = 0; i < ed.num_chunks(); ++i) {
    std::printf("%-6zu %-3s %10.1f %10.1f %10.1f\n", i + 1,
                cls.is_complex(i) ? "*" : "",
                runs[0].result.chunks[i].quality.vmaf_phone,
                runs[1].result.chunks[i].quality.vmaf_phone,
                runs[2].result.chunks[i].quality.vmaf_phone);
  }

  std::printf("\n%-8s %16s %16s\n", "scheme", "avg Q4 quality",
              "rebuffering (s)");
  for (const Run& r : runs) {
    double q4 = 0.0;
    std::size_t n = 0;
    for (const auto& c : r.result.chunks) {
      if (cls.is_complex(c.index)) {
        q4 += c.quality.vmaf_phone;
        ++n;
      }
    }
    std::printf("%-8s %16.1f %16.1f\n", r.name,
                q4 / static_cast<double>(n), r.result.total_rebuffer_s);
  }
  std::printf("\nPaper shape check: the myopic schemes dip exactly at the "
              "'*' (Q4) positions; CAVA holds Q4 quality with no "
              "rebuffering.\n");
  return 0;
}
