// Ablation — what VBR-awareness adds to PID control: PIA (the CBR-design
// PID scheme CAVA builds on; fixed buffer target, per-track average
// bitrates only) vs the CAVA variants, on the same control core.
#include <cstdio>
#include <memory>

#include "common.h"
#include "core/pia.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 60;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  const auto traces = bench::lte_traces(num_traces);

  struct Row {
    std::string name;
    sim::SchemeFactory factory;
  };
  const std::vector<Row> schemes = {
      {"PIA (CBR-design PID)",
       [] { return std::make_unique<core::Pia>(); }},
      {"CAVA-p1 (+ non-myopic)", bench::scheme_factory("CAVA-p1")},
      {"CAVA-p12 (+ differential)", bench::scheme_factory("CAVA-p12")},
      {"CAVA-p123 (+ proactive)", bench::scheme_factory("CAVA")},
  };

  bench::Table table({"scheme", "Q4 qual", "Q13 qual", "low-qual %",
                      "rebuf (s)", "qual change", "data (MB)"});
  for (const Row& row : schemes) {
    sim::ExperimentSpec spec;
    spec.video = &ed;
    spec.traces = traces;
    spec.make_scheme = row.factory;
    const sim::ExperimentResult r = sim::run_experiment(spec);
    table.add_row({row.name, bench::fmt(r.mean_q4_quality, 1),
                   bench::fmt(r.mean_q13_quality, 1),
                   bench::fmt(r.mean_low_quality_pct, 1),
                   bench::fmt(r.mean_rebuffer_s, 2),
                   bench::fmt(r.mean_quality_change, 2),
                   bench::fmt(r.mean_data_usage_mb, 1)});
  }
  table.print("Ablation: from CBR-design PID (PIA) to full CAVA (" +
              std::to_string(num_traces) + " LTE traces)");
  std::printf("\nShape check: each added principle should pay — P1 tames "
              "VBR burstiness, P2 lifts Q4 quality, P3 trims the remaining "
              "stalls (Section 6.4 narrative, extended down to the CBR "
              "baseline).\n");
  return 0;
}
