// Extensions — (a) request-RTT sensitivity: the trace-replay methodology
// idealizes away per-request latency; this bench adds an HTTP RTT to every
// chunk fetch and checks that the scheme ordering survives. (b) Oboe-style
// offline parameter tuning (Akhtar et al., SIGCOMM 2018, from the paper's
// related work): per-network-state CAVA configurations vs the fixed default.
#include <cstdio>
#include <memory>

#include "common.h"
#include "tune/autotune.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 60;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  const auto traces = bench::lte_traces(num_traces);

  // ---- (a) RTT sweep -------------------------------------------------
  bench::Table rtt_table({"RTT (ms)", "scheme", "Q4 qual", "low-qual %",
                          "rebuf (s)", "data (MB)"});
  for (const double rtt : {0.0, 0.05, 0.15}) {
    for (const std::string& s :
         {std::string("CAVA"), std::string("RobustMPC")}) {
      sim::ExperimentSpec spec;
      spec.video = &ed;
      spec.traces = traces;
      spec.make_scheme = bench::scheme_factory(s);
      spec.session.request_rtt_s = rtt;
      const sim::ExperimentResult r = sim::run_experiment(spec);
      rtt_table.add_row({bench::fmt(rtt * 1000.0, 0), s,
                         bench::fmt(r.mean_q4_quality, 1),
                         bench::fmt(r.mean_low_quality_pct, 1),
                         bench::fmt(r.mean_rebuffer_s, 2),
                         bench::fmt(r.mean_data_usage_mb, 1)});
    }
  }
  rtt_table.print("(a) per-request RTT sensitivity (" +
                  std::to_string(num_traces) + " LTE traces)");
  std::printf("Shape check: both schemes degrade mildly with RTT; CAVA "
              "stays ahead, so the idealized replay did not decide the "
              "comparison.\n");

  // ---- (b) Oboe-style tuning ----------------------------------------
  // Calibrate on a disjoint trace set, evaluate on the shared one.
  const auto calibration = net::make_lte_trace_set(40, 12345);
  tune::TuningTable table =
      tune::tune_offline(ed, calibration, tune::default_candidate_grid());
  std::size_t tuned_states = 0;
  for (std::size_t i = 0; i < table.states.size(); ++i) {
    if (table.configs[i].alpha_complex !=
            tune::default_candidate_grid().front().alpha_complex ||
        table.configs[i].base_target_buffer_s !=
            tune::default_candidate_grid().front().base_target_buffer_s) {
      ++tuned_states;
    }
  }
  std::printf("\noffline tuning: %zu network states, %zu with a non-first "
              "candidate selected\n",
              table.states.size(), tuned_states);

  bench::Table tune_table({"scheme", "Q4 qual", "low-qual %", "rebuf (s)",
                           "qual change", "data (MB)"});
  struct Row {
    std::string name;
    sim::SchemeFactory factory;
  };
  // Note: TuningTable is copied into each factory call via shared state.
  const auto shared = std::make_shared<tune::TuningTable>(std::move(table));
  const std::vector<Row> schemes = {
      {"CAVA (default)", bench::scheme_factory("CAVA")},
      {"CAVA-tuned",
       [shared] { return std::make_unique<tune::TunedCava>(*shared); }},
  };
  for (const Row& row : schemes) {
    sim::ExperimentSpec spec;
    spec.video = &ed;
    spec.traces = traces;
    spec.make_scheme = row.factory;
    const sim::ExperimentResult r = sim::run_experiment(spec);
    tune_table.add_row({row.name, bench::fmt(r.mean_q4_quality, 1),
                        bench::fmt(r.mean_low_quality_pct, 1),
                        bench::fmt(r.mean_rebuffer_s, 2),
                        bench::fmt(r.mean_quality_change, 2),
                        bench::fmt(r.mean_data_usage_mb, 1)});
  }
  tune_table.print("(b) Oboe-style per-network-state tuning (" +
                   std::to_string(num_traces) + " evaluation traces)");
  std::printf("Shape check: tuning helps at the margins (it can pick a "
              "bolder alpha+ on stable links and a deeper buffer on "
              "volatile ones) without hurting the default's strengths.\n");
  return 0;
}
