// Extension: multi-tier CDN under a flash crowd riding through an origin
// brownout (DESIGN.md section 12).
//
// Four arms of the same 300-session flash-crowd fleet:
//
//   1. flat        — the single-tier edge/origin baseline (CDN off);
//   2. cdn         — edge -> regional -> origin with coalescing, regional
//                    outages, and load shedding, but no brownout;
//   3. cdn+brown   — the same hierarchy with an origin brownout covering
//                    the burst window (the headline robustness scenario);
//   4. no-coalesce — arm 3 with request coalescing disabled, isolating how
//                    much of the origin protection coalescing provides.
//
// Reported per arm: tier request counts, coalesced/shed/failover volumes,
// the upstream fetch ratio (retry amplification), and the per-class QoE
// shift — overload protection is only worth its latency penalties if the
// viewer-facing numbers degrade gracefully.
//
// Run: ./bench_ext_cdn_brownout
#include <cstdio>
#include <thread>
#include <vector>

#include "common.h"
#include "fleet/fleet.h"

namespace {

using namespace vbr;

fleet::FleetSpec base_spec(const std::vector<net::Trace>& traces) {
  fleet::FleetSpec spec;
  spec.catalog.num_titles = 24;
  spec.catalog.title_duration_s = 120.0;
  spec.catalog.zipf_alpha = 0.8;
  spec.arrivals.kind = fleet::ArrivalKind::kFlashCrowd;
  spec.arrivals.rate_per_s = 0.5;
  spec.arrivals.horizon_s = 600.0;
  spec.arrivals.max_sessions = 300;
  spec.arrivals.burst_start_s = 120.0;
  spec.arrivals.burst_duration_s = 60.0;
  spec.arrivals.burst_multiplier = 8.0;
  spec.classes.resize(2);
  spec.classes[0].label = "CAVA";
  spec.classes[0].make_scheme = bench::scheme_factory("CAVA");
  spec.classes[1].label = "BBA-1";
  spec.classes[1].make_scheme = bench::scheme_factory("BBA-1");
  spec.traces = traces;
  spec.cache.capacity_bits = 2e9;  // eviction-prone: plenty goes upstream
  return spec;
}

void enable_cdn(fleet::FleetSpec* spec, bool brownout, bool coalesce) {
  spec->cdn.enabled = true;
  spec->cdn.coalesce = coalesce;
  spec->cdn.backhaul_bps = 10e6;
  spec->cdn.regional.nodes = 4;
  spec->cdn.regional.capacity_bits = 16e9;
  spec->cdn.regional.outages_per_node = 2;
  spec->cdn.regional.outage_duration_s = 30.0;
  spec->cdn.shed.capacity_sessions = 40.0;
  spec->cdn.shed.active_session_s = 60.0;
  if (brownout) {
    spec->cdn.brownout.start_s = 120.0;  // covers the burst
    spec->cdn.brownout.duration_s = 90.0;
    spec->cdn.brownout.rate_scale = 0.5;
    spec->cdn.brownout.extra_latency_s = 0.2;
    spec->cdn.brownout.capacity_scale = 0.5;
  }
}

void report_arm(const char* label, const fleet::FleetResult& r) {
  if (r.cdn_enabled) {
    std::printf("%-11s | edge %5llu reg %5llu origin %5llu of %5llu | "
                "coal %4llu shed %4llu fo %4llu brown %4llu | up-ratio %.3f\n",
                label,
                static_cast<unsigned long long>(r.cdn.edge_hits),
                static_cast<unsigned long long>(r.cdn.regional_hits),
                static_cast<unsigned long long>(r.cdn.origin_fetches),
                static_cast<unsigned long long>(r.cdn.client_requests),
                static_cast<unsigned long long>(r.cdn.coalesced),
                static_cast<unsigned long long>(r.cdn.shed),
                static_cast<unsigned long long>(r.cdn.failovers),
                static_cast<unsigned long long>(r.cdn.brownout_fetches),
                r.upstream_fetch_ratio);
  } else {
    std::printf("%-11s | hit ratio %.3f | edge %.0f MB, origin %.0f MB | "
                "up-ratio %.3f\n",
                label, r.cache.hit_ratio(), r.edge_hit_bits / 8e6,
                r.origin_bits / 8e6, r.upstream_fetch_ratio);
  }
  for (const fleet::FleetSchemeReport& c : r.per_class) {
    std::printf("  %-8s n=%-4zu qual %5.1f  low%% %5.1f  rebuf %6.2fs  "
                "startup %5.2fs  %6.1f MB\n",
                c.label.c_str(), c.sessions, c.mean_all_quality,
                c.mean_low_quality_pct, c.mean_rebuffer_s,
                c.mean_startup_delay_s, c.mean_data_usage_mb);
  }
}

}  // namespace

int main() {
  const std::vector<net::Trace> traces = bench::lte_traces(20);
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());

  std::printf("== flash crowd (300 sessions, 8x burst) through the CDN "
              "hierarchy ==\n");

  fleet::FleetSpec flat = base_spec(traces);
  flat.threads = hw;
  report_arm("flat", fleet::run_fleet(flat));

  fleet::FleetSpec cdn = base_spec(traces);
  cdn.threads = hw;
  enable_cdn(&cdn, /*brownout=*/false, /*coalesce=*/true);
  report_arm("cdn", fleet::run_fleet(cdn));

  fleet::FleetSpec brown = base_spec(traces);
  brown.threads = hw;
  enable_cdn(&brown, /*brownout=*/true, /*coalesce=*/true);
  const fleet::FleetResult rb = fleet::run_fleet(brown);
  report_arm("cdn+brown", rb);

  fleet::FleetSpec nocoal = base_spec(traces);
  nocoal.threads = hw;
  enable_cdn(&nocoal, /*brownout=*/true, /*coalesce=*/false);
  const fleet::FleetResult rn = fleet::run_fleet(nocoal);
  report_arm("no-coalesce", rn);

  std::printf("\ncoalescing saved %lld origin/regional fetches during the "
              "brownout run (%.1f%% of upstream demand)\n",
              static_cast<long long>(rn.cdn.regional_hits +
                                     rn.cdn.origin_fetches) -
                  static_cast<long long>(rb.cdn.regional_hits +
                                         rb.cdn.origin_fetches),
              100.0 * (rn.upstream_fetch_ratio - rb.upstream_fetch_ratio) /
                  (rn.upstream_fetch_ratio > 0.0 ? rn.upstream_fetch_ratio
                                                 : 1.0));
  return 0;
}
