// Fig. 7 — impact of the inner-controller window size W (Elephant Dream,
// FFmpeg-style, H.264, LTE traces): Q4-chunk quality rises then flattens
// with W; rebuffering grows slightly, then sharply at very large W. The
// paper picks W = 40 s.
#include <cstdio>
#include <memory>

#include "common.h"
#include "metrics/stats.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces = argc > 1 ? std::stoul(argv[1]) : 60;
  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, bench::kCorpusSeed + 0x11, 600.0);
  const auto traces = bench::lte_traces(num_traces);

  std::printf("Fig. 7: inner controller window size sweep (%zu LTE "
              "traces)\n\n",
              traces.size());
  std::printf("%-8s %10s %12s %12s %12s %12s %12s\n", "W (s)", "Q4 mean",
              "Q4 p10", "Q4 p90", "rebuf mean", "rebuf p10", "rebuf p90");

  for (const double w : {2.0, 10.0, 20.0, 40.0, 80.0, 120.0, 160.0}) {
    sim::ExperimentSpec spec;
    spec.video = &ed;
    spec.traces = traces;
    spec.make_scheme = [w] {
      core::CavaConfig cfg;
      cfg.inner_window_s = w;
      return std::make_unique<core::Cava>(cfg);
    };
    const sim::ExperimentResult r = sim::run_experiment(spec);

    std::vector<double> q4_means;
    for (const auto& s : r.per_trace) {
      q4_means.push_back(s.q4_quality_mean);
    }
    const auto rebuf = r.rebuffer_values();
    std::printf("%-8.0f %10.1f %12.1f %12.1f %12.2f %12.2f %12.2f\n", w,
                stats::mean(q4_means), stats::percentile(q4_means, 10.0),
                stats::percentile(q4_means, 90.0), stats::mean(rebuf),
                stats::percentile(rebuf, 10.0),
                stats::percentile(rebuf, 90.0));
  }
  std::printf("\nPaper shape check: Q4 quality improves then flattens as W "
              "grows; rebuffering increases with very large W. W = 40 s is "
              "the paper's operating point.\n");
  return 0;
}
