// Unit tests for the QoE metric layer (the paper's five Section 6.1 metrics).
#include "metrics/qoe.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace {

using vbr::metrics::PlayedChunk;
using vbr::metrics::QoeConfig;
using vbr::metrics::QoeSummary;
using vbr::metrics::compute_qoe;

PlayedChunk make(std::size_t idx, double quality, double bits,
                 std::size_t cls) {
  PlayedChunk p;
  p.index = idx;
  p.quality = quality;
  p.size_bits = bits;
  p.complexity_class = cls;
  return p;
}

TEST(Qoe, EmptyThrows) {
  EXPECT_THROW((void)compute_qoe({}, 0.0, 0.0), std::invalid_argument);
}

TEST(Qoe, SplitsQ4FromOthers) {
  const std::vector<PlayedChunk> played = {
      make(0, 80.0, 1e6, 0), make(1, 60.0, 2e6, 3), make(2, 90.0, 1e6, 1)};
  const QoeSummary s = compute_qoe(played, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(s.q4_quality_mean, 60.0);
  EXPECT_DOUBLE_EQ(s.q4_quality_median, 60.0);
  EXPECT_DOUBLE_EQ(s.q13_quality_mean, 85.0);
  EXPECT_DOUBLE_EQ(s.all_quality_mean, (80.0 + 60.0 + 90.0) / 3.0);
}

TEST(Qoe, LowQualityPercentUsesThreshold) {
  const std::vector<PlayedChunk> played = {
      make(0, 39.9, 1e6, 0), make(1, 40.0, 1e6, 0), make(2, 80.0, 1e6, 0),
      make(3, 10.0, 1e6, 3)};
  const QoeSummary s = compute_qoe(played, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(s.low_quality_pct, 50.0);  // 39.9 and 10.0
}

TEST(Qoe, CustomThreshold) {
  const std::vector<PlayedChunk> played = {make(0, 50.0, 1e6, 0),
                                           make(1, 70.0, 1e6, 0)};
  QoeConfig cfg;
  cfg.low_quality_threshold = 60.0;
  const QoeSummary s = compute_qoe(played, 0.0, 0.0, cfg);
  EXPECT_DOUBLE_EQ(s.low_quality_pct, 50.0);
}

TEST(Qoe, QualityChangeAveragesAbsoluteDeltas) {
  const std::vector<PlayedChunk> played = {
      make(0, 50.0, 1e6, 0), make(1, 70.0, 1e6, 0), make(2, 60.0, 1e6, 0)};
  const QoeSummary s = compute_qoe(played, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(s.avg_quality_change, (20.0 + 10.0) / 2.0);
}

TEST(Qoe, SingleChunkHasZeroChange) {
  const std::vector<PlayedChunk> played = {make(0, 50.0, 1e6, 0)};
  const QoeSummary s = compute_qoe(played, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(s.avg_quality_change, 0.0);
}

TEST(Qoe, DataUsageInMegabytes) {
  const std::vector<PlayedChunk> played = {make(0, 50.0, 8e6, 0),
                                           make(1, 50.0, 16e6, 0)};
  const QoeSummary s = compute_qoe(played, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(s.data_usage_mb, 3.0);  // 24e6 bits = 3 MB
}

TEST(Qoe, PassesThroughRebufferAndStartup) {
  const std::vector<PlayedChunk> played = {make(0, 50.0, 1e6, 0)};
  const QoeSummary s = compute_qoe(played, 12.5, 3.25);
  EXPECT_DOUBLE_EQ(s.rebuffer_s, 12.5);
  EXPECT_DOUBLE_EQ(s.startup_delay_s, 3.25);
}

TEST(Qoe, NoQ4ChunksLeavesQ4AtZero) {
  const std::vector<PlayedChunk> played = {make(0, 50.0, 1e6, 0),
                                           make(1, 60.0, 1e6, 1)};
  const QoeSummary s = compute_qoe(played, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(s.q4_quality_mean, 0.0);
  EXPECT_TRUE(s.q4_qualities.empty());
  EXPECT_EQ(s.q13_qualities.size(), 2u);
}

TEST(Qoe, AllQ4Chunks) {
  const std::vector<PlayedChunk> played = {make(0, 50.0, 1e6, 3),
                                           make(1, 60.0, 1e6, 3)};
  const QoeSummary s = compute_qoe(played, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(s.q4_quality_mean, 55.0);
  EXPECT_TRUE(s.q13_qualities.empty());
  EXPECT_DOUBLE_EQ(s.q13_quality_mean, 0.0);
}

TEST(Qoe, TopClassConfigurable) {
  // With 5 classes, class 4 is the complex one.
  const std::vector<PlayedChunk> played = {make(0, 50.0, 1e6, 3),
                                           make(1, 60.0, 1e6, 4)};
  QoeConfig cfg;
  cfg.top_class = 4;
  const QoeSummary s = compute_qoe(played, 0.0, 0.0, cfg);
  EXPECT_DOUBLE_EQ(s.q4_quality_mean, 60.0);
  EXPECT_DOUBLE_EQ(s.q13_quality_mean, 50.0);
}

}  // namespace
