// Tests for BOLA-E and its three declared-size views.
#include "abr/bola.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_util.h"

namespace {

using namespace vbr;
using testutil::default_flat_video;
using testutil::make_context;
using testutil::make_flat_video;

abr::Bola make_bola(abr::BolaSizeView view,
                    bool cap_upswitch = true) {
  abr::BolaConfig cfg;
  cfg.size_view = view;
  cfg.cap_upswitch = cap_upswitch;
  return abr::Bola(cfg);
}

TEST(Bola, BadConfigThrows) {
  abr::BolaConfig cfg;
  cfg.reservoir_s = 0.0;
  EXPECT_THROW(abr::Bola{cfg}, std::invalid_argument);
  cfg = {};
  cfg.target_buffer_s = cfg.reservoir_s;  // target must exceed reservoir
  EXPECT_THROW(abr::Bola{cfg}, std::invalid_argument);
}

TEST(Bola, Names) {
  EXPECT_EQ(make_bola(abr::BolaSizeView::kPeak).name(), "BOLA-E (peak)");
  EXPECT_EQ(make_bola(abr::BolaSizeView::kAvg).name(), "BOLA-E (avg)");
  EXPECT_EQ(make_bola(abr::BolaSizeView::kSegment).name(), "BOLA-E (seg)");
}

TEST(Bola, EmptyBufferPicksLowestTrack) {
  const video::Video v = default_flat_video(20);
  auto bola = make_bola(abr::BolaSizeView::kSegment);
  const abr::Decision d = bola.decide(make_context(v, 0, 0.0, 1e6));
  EXPECT_EQ(d.track, 0u);
  EXPECT_DOUBLE_EQ(d.wait_s, 0.0);
}

TEST(Bola, TrackRisesWithBuffer) {
  const video::Video v = default_flat_video(20);
  auto bola = make_bola(abr::BolaSizeView::kSegment, /*cap_upswitch=*/false);
  std::size_t prev = 0;
  for (const double buf : {0.0, 6.0, 12.0, 18.0, 24.0, 29.0}) {
    const abr::Decision d = bola.decide(make_context(v, 0, buf, 1e6));
    EXPECT_GE(d.track, prev) << "buffer " << buf;
    prev = d.track;
  }
  EXPECT_EQ(prev, v.num_tracks() - 1);  // near the target: top track
}

TEST(Bola, PausesAboveBufferTarget) {
  const video::Video v = default_flat_video(20);
  auto bola = make_bola(abr::BolaSizeView::kSegment);
  const abr::Decision d = bola.decide(make_context(v, 0, 60.0, 1e6));
  EXPECT_GT(d.wait_s, 0.0);  // dash.js-style idle: buffer is beyond target
  EXPECT_EQ(d.track, v.num_tracks() - 1);
}

TEST(Bola, WaitShrinksTowardTarget) {
  const video::Video v = default_flat_video(20);
  auto bola = make_bola(abr::BolaSizeView::kSegment);
  const abr::Decision far = bola.decide(make_context(v, 0, 80.0, 1e6));
  const abr::Decision near = bola.decide(make_context(v, 0, 40.0, 1e6));
  EXPECT_GT(far.wait_s, near.wait_s);
}

TEST(Bola, PeakViewMostConservative) {
  // On a spiked-chunk video the three views order as the paper describes:
  // peak <= seg <= avg in aggressiveness (here: chosen track at the same
  // state, on a chunk whose actual size is below the peak).
  const video::Video v = make_flat_video(
      {2e5, 4e5, 8e5, 1.6e6, 3.2e6, 6.4e6}, 20, 2.0, {{10, 2.0}});
  auto peak = make_bola(abr::BolaSizeView::kPeak, false);
  auto avg = make_bola(abr::BolaSizeView::kAvg, false);
  auto seg = make_bola(abr::BolaSizeView::kSegment, false);
  const auto ctx = make_context(v, 5, 15.0, 2e6);
  const std::size_t tp = peak.decide(ctx).track;
  const std::size_t ta = avg.decide(ctx).track;
  const std::size_t ts = seg.decide(ctx).track;
  EXPECT_LE(tp, ts);
  EXPECT_LE(ts, ta);
}

TEST(Bola, ScoreScaleInvariantUnderUniformSpikes) {
  // BOLA's score ordering is invariant when every track's chunk scales by
  // the same factor (numerators unchanged, denominators scale equally), so
  // a uniformly spiked chunk does not change the selection.
  const video::Video v = make_flat_video(
      {2e5, 4e5, 8e5, 1.6e6, 3.2e6, 6.4e6}, 20, 2.0, {{10, 2.5}});
  auto seg = make_bola(abr::BolaSizeView::kSegment, false);
  const std::size_t flat_track =
      seg.decide(make_context(v, 5, 15.0, 2e6)).track;
  const std::size_t spike_track =
      seg.decide(make_context(v, 10, 15.0, 2e6)).track;
  EXPECT_EQ(spike_track, flat_track);
}

TEST(Bola, SegmentViewReactsToNonUniformSpikes) {
  // Real VBR ladders spike non-uniformly: low rungs are damped (Section 2).
  // When only the upper tracks carry the spike, the seg view must drop
  // relative to the same state on a flat chunk.
  std::vector<video::Track> tracks;
  const std::size_t n = 20;
  const std::vector<double> rates = {2e5, 4e5, 8e5, 1.6e6, 3.2e6, 6.4e6};
  for (std::size_t l = 0; l < rates.size(); ++l) {
    std::vector<video::Chunk> chunks(n);
    for (std::size_t i = 0; i < n; ++i) {
      double rate = rates[l];
      if (i == 10 && l >= 3) {
        rate *= 3.0;  // spike only on the upper rungs
      }
      chunks[i].size_bits = rate * 2.0;
      chunks[i].duration_s = 2.0;
      chunks[i].quality.vmaf_phone = 20.0 + 14.0 * static_cast<double>(l);
    }
    tracks.emplace_back(static_cast<int>(l), video::standard_ladder()[l],
                        video::Codec::kH264, std::move(chunks));
  }
  const video::Video v("nonuniform", video::Genre::kAction,
                       std::move(tracks), std::vector<video::SceneInfo>(n));
  auto seg = make_bola(abr::BolaSizeView::kSegment, false);
  const std::size_t flat_track =
      seg.decide(make_context(v, 5, 15.0, 2e6)).track;
  const std::size_t spike_track =
      seg.decide(make_context(v, 10, 15.0, 2e6)).track;
  EXPECT_LT(spike_track, flat_track);
}

TEST(Bola, UpswitchCappedToOneLevel) {
  const video::Video v = default_flat_video(20);
  auto bola = make_bola(abr::BolaSizeView::kSegment, /*cap_upswitch=*/true);
  const abr::Decision d = bola.decide(make_context(v, 0, 25.0, 1e6, 0));
  EXPECT_LE(d.track, 1u);
}

TEST(Bola, DownswitchNotCapped) {
  const video::Video v = default_flat_video(20);
  auto bola = make_bola(abr::BolaSizeView::kSegment, /*cap_upswitch=*/true);
  const abr::Decision d = bola.decide(make_context(v, 0, 0.5, 1e6, 5));
  EXPECT_EQ(d.track, 0u);
}

TEST(Bola, InsufficientBufferRuleLimitsToThroughput) {
  const video::Video v = default_flat_video(20);
  abr::BolaConfig cfg;
  cfg.size_view = abr::BolaSizeView::kSegment;
  cfg.cap_upswitch = false;
  cfg.insufficient_buffer_chunks = 4;  // thin-buffer regime below 8 s
  abr::Bola bola(cfg);
  // Buffer 6 s (3 chunks) is inside the thin regime; estimate affords only
  // track 2 (0.8 Mbps).
  const abr::Decision d = bola.decide(make_context(v, 0, 6.0, 9e5));
  EXPECT_LE(d.track, 2u);
}

}  // namespace
