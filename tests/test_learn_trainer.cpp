// Offline imitation trainer (learn/trainer.h): dataset construction
// semantics (label hygiene, per-session prev-track threading), the
// deterministic holdout split, majority tie-breaking, byte-identical
// retraining for both backends, the rule-seeded policies, and the
// headline acceptance pin — a tabular policy cloned from an oracle-size
// MPC teacher over a synthetic FCC fleet reaches >= 90% held-out teacher
// agreement.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "abr/mpc.h"
#include "fleet/catalog.h"
#include "fleet/fleet.h"
#include "learn/trainer.h"
#include "net/trace_gen.h"
#include "obs/trace_sink.h"
#include "test_util.h"

namespace vbr {
namespace {

learn::FeatureConfig flat_config() {
  learn::FeatureConfig cfg;
  cfg.num_tracks = 6;
  return cfg;
}

/// An event shaped like a fleet rollout line: delivered track `track` for
/// chunk `chunk` of catalog title 0.
obs::DecisionEvent rollout_event(std::uint64_t session, std::size_t chunk,
                                 std::size_t track) {
  obs::DecisionEvent e;
  e.session_id = session;
  e.seq = chunk;
  e.chunk_index = chunk;
  e.track = track;
  e.buffer_before_s = 8.0;
  e.est_bandwidth_bps = 2.0e6;
  e.attempts = 1;
  obs::DecisionEvent::EdgeInfo edge;
  edge.title = 0;
  e.edge = edge;
  return e;
}

TEST(LearnDataset, DropsNonTeacherLabelsButTracksPrev) {
  const video::Video v = testutil::default_flat_video(40);
  const learn::FeatureConfig cfg = flat_config();
  const learn::VideoLookup lookup =
      [&v](const obs::DecisionEvent&) { return &v; };

  std::vector<obs::DecisionEvent> events;
  events.push_back(rollout_event(1, 0, 3));  // usable
  obs::DecisionEvent skipped = rollout_event(1, 1, 0);
  skipped.skipped = true;  // cache-skip: dropped AND prev stays 3
  events.push_back(skipped);
  obs::DecisionEvent downgraded = rollout_event(1, 2, 1);
  downgraded.downgraded = true;  // fault downgrade: dropped, prev becomes 1
  events.push_back(downgraded);
  obs::DecisionEvent retried = rollout_event(1, 3, 2);
  retried.attempts = 3;  // retries shift timing: dropped, prev becomes 2
  events.push_back(retried);
  obs::DecisionEvent abandoned = rollout_event(1, 4, 0);
  abandoned.abandoned_higher = true;
  events.push_back(abandoned);
  events.push_back(rollout_event(1, 5, 4));  // usable, prev == 0 by now
  events.push_back(rollout_event(2, 0, 2));  // new session starts at prev -1

  const learn::Dataset ds = learn::build_dataset(events, cfg, lookup);
  ASSERT_EQ(ds.examples.size(), 3u);
  EXPECT_EQ(ds.dropped_events, 4u);
  EXPECT_EQ(ds.examples[0].label, 3u);
  EXPECT_EQ(ds.examples[1].label, 4u);
  EXPECT_EQ(ds.examples[2].label, 2u);

  // The prev-track axis must mirror the session loop: event 0 sees -1,
  // event 5 sees 0 (the abandoned event still delivered track 0, and the
  // skip before it did NOT advance prev), session 2 restarts at -1.
  learn::Signals sig;
  learn::signals_from_event(events[0], v, -1, cfg, sig);
  EXPECT_EQ(ds.examples[0].state, learn::state_id(sig, cfg));
  learn::signals_from_event(events[5], v, 0, cfg, sig);
  EXPECT_EQ(ds.examples[1].state, learn::state_id(sig, cfg));
  learn::signals_from_event(events[6], v, -1, cfg, sig);
  EXPECT_EQ(ds.examples[2].state, learn::state_id(sig, cfg));
}

TEST(LearnDataset, DropsForeignLaddersAndMissingManifests) {
  const video::Video v = testutil::default_flat_video(40);
  const learn::FeatureConfig cfg = flat_config();
  std::vector<obs::DecisionEvent> events;
  events.push_back(rollout_event(1, 0, 3));
  events.push_back(rollout_event(1, 99, 3));  // chunk beyond the manifest
  const learn::Dataset none = learn::build_dataset(
      events, cfg, [](const obs::DecisionEvent&) { return nullptr; });
  EXPECT_TRUE(none.examples.empty());
  EXPECT_EQ(none.dropped_events, 2u);

  const learn::Dataset some = learn::build_dataset(
      events, cfg, [&v](const obs::DecisionEvent&) { return &v; });
  EXPECT_EQ(some.examples.size(), 1u);
  EXPECT_EQ(some.dropped_events, 1u);

  // A 3-track manifest cannot label a 6-track policy.
  const video::Video short_ladder =
      testutil::make_flat_video({2e5, 4e5, 8e5}, 40);
  const learn::Dataset foreign = learn::build_dataset(
      events, cfg,
      [&short_ladder](const obs::DecisionEvent&) { return &short_ladder; });
  EXPECT_TRUE(foreign.examples.empty());
}

TEST(LearnDataset, SplitIsDeterministicBySessionId) {
  learn::Dataset ds;
  for (std::uint64_t session = 0; session < 10; ++session) {
    learn::TrainExample ex;
    ex.session_id = session;
    ex.label = 1;
    ds.examples.push_back(ex);
  }
  ds.dropped_events = 7;
  const learn::DatasetSplit split = learn::split_dataset(ds, 5);
  EXPECT_EQ(split.holdout.examples.size(), 2u);  // sessions 0 and 5
  EXPECT_EQ(split.train.examples.size(), 8u);
  EXPECT_EQ(split.train.dropped_events, 7u);
  for (const learn::TrainExample& ex : split.holdout.examples) {
    EXPECT_EQ(ex.session_id % 5, 0u);
  }
  const learn::DatasetSplit all = learn::split_dataset(ds, 0);
  EXPECT_EQ(all.train.examples.size(), 10u);
  EXPECT_TRUE(all.holdout.examples.empty());
}

TEST(LearnTrainer, TabularMajorityTieBreaksToLowestTrack) {
  const learn::FeatureConfig cfg = flat_config();
  learn::Dataset ds;
  const auto add = [&ds](std::uint32_t state, std::uint16_t label) {
    learn::TrainExample ex;
    ex.state = state;
    ex.label = label;
    ds.examples.push_back(ex);
  };
  add(100, 4);
  add(100, 2);  // tie at state 100: labels {2, 4} -> the lower wins
  add(200, 5);
  add(200, 5);
  add(200, 1);  // majority at state 200: 5
  const learn::Policy p =
      learn::train_tabular(ds, cfg, learn::TrainerConfig{}, "tie", 1);
  EXPECT_EQ(p.tabular.table[100], 2u);
  EXPECT_EQ(p.tabular.table[200], 5u);
  EXPECT_EQ(p.tabular.table[300], learn::kUnseen);
  // Global default: the overall majority label (5 appears twice).
  EXPECT_EQ(p.tabular.default_track, 5u);
}

TEST(LearnTrainer, RateRulePolicyAnswersTheSustainableAxis) {
  learn::FeatureConfig cfg = flat_config();
  cfg.buffer_bins = 4;  // keep the sweep fast
  const learn::Policy p = learn::make_rate_rule_tabular(cfg, "rule", 1);
  ASSERT_EQ(p.tabular.table.size(), cfg.num_states());
  for (std::uint32_t s = 0; s < cfg.num_states(); ++s) {
    const std::size_t u = learn::sustainable_from_state(s, cfg);
    ASSERT_EQ(p.tabular.table[s], u == 0 ? 0u : u - 1u) << "state " << s;
  }
  EXPECT_NO_THROW(p.validate());
}

/// A small in-process teacher rollout through the fleet driver: `sessions`
/// MPC sessions over synthetic FCC traces, telemetry into memory.
std::vector<obs::DecisionEvent> fleet_rollout(
    std::size_t sessions, double horizon_s, std::size_t trace_count,
    const std::vector<net::Trace>& traces, fleet::FleetSpec& spec_out) {
  (void)trace_count;
  fleet::FleetSpec spec;
  spec.arrivals.horizon_s = horizon_s;
  spec.arrivals.max_sessions = sessions;
  // Mirror the abrtrain CLI defaults the recipe documents: 1000 MB edge
  // cache, 60% full-watch sessions.
  spec.cache.capacity_bits = 1000.0 * 8e6;
  spec.watch.full_watch_prob = 0.6;
  fleet::FleetClientClass teacher;
  teacher.label = "MPC";
  teacher.make_scheme = [] {
    return std::make_unique<abr::Mpc>(abr::mpc_config());
  };
  spec.classes.push_back(teacher);
  spec.traces = traces;
  obs::MemoryTraceSink sink;
  spec.trace = &sink;
  (void)fleet::run_fleet(spec);
  spec_out = spec;
  spec_out.trace = nullptr;
  return {sink.events().begin(), sink.events().end()};
}

learn::VideoLookup catalog_lookup(const fleet::Catalog& catalog) {
  return [&catalog](const obs::DecisionEvent& ev) -> const video::Video* {
    if (!ev.edge.has_value() || ev.edge->title >= catalog.num_titles()) {
      return nullptr;
    }
    return &catalog.title(static_cast<std::size_t>(ev.edge->title));
  };
}

TEST(LearnTrainer, RetrainingIsByteIdenticalAndSeedSensitive) {
  const std::vector<net::Trace> traces = net::make_fcc_trace_set(20, 11);
  fleet::FleetSpec spec;
  const std::vector<obs::DecisionEvent> events =
      fleet_rollout(60, 150.0, 20, traces, spec);
  ASSERT_GT(events.size(), 500u);
  const fleet::Catalog catalog(spec.catalog);
  learn::FeatureConfig cfg;
  cfg.num_tracks = catalog.title(0).num_tracks();
  const learn::Dataset ds =
      learn::build_dataset(events, cfg, catalog_lookup(catalog));
  ASSERT_GT(ds.examples.size(), 300u);

  learn::TrainerConfig tc;
  tc.epochs = 3;
  const std::string tab1 = learn::serialize_policy(
      learn::train_tabular(ds, cfg, tc, "retrain", 1));
  const std::string tab2 = learn::serialize_policy(
      learn::train_tabular(ds, cfg, tc, "retrain", 1));
  EXPECT_EQ(tab1, tab2);  // byte-identical, not merely equivalent

  const std::string mlp1 =
      learn::serialize_policy(learn::train_mlp(ds, cfg, tc, "retrain", 1));
  const std::string mlp2 =
      learn::serialize_policy(learn::train_mlp(ds, cfg, tc, "retrain", 1));
  EXPECT_EQ(mlp1, mlp2);

  // A different seed must actually change the MLP (the determinism is
  // keyed, not accidental constancy).
  tc.seed = 2;
  const std::string mlp_seed2 =
      learn::serialize_policy(learn::train_mlp(ds, cfg, tc, "retrain", 1));
  EXPECT_NE(mlp1, mlp_seed2);
}

TEST(LearnTrainer, ClonesMpcTeacherAboveNinetyPercentHeldOut) {
  // The acceptance pin (ISSUE: teacher-agreement >= 90% on held-out
  // traces). The documented recipe: oracle-size MPC over 1000 sessions of
  // synthetic FCC bandwidth (100 traces), default feature grid, session
  // holdout id % 5 == 0. Everything below is counter-deterministic, so
  // this asserts a reproducible number, not a sampling experiment.
  const std::vector<net::Trace> traces = net::make_fcc_trace_set(100, 11);
  fleet::FleetSpec spec;
  const std::vector<obs::DecisionEvent> events =
      fleet_rollout(1000, 2100.0, 100, traces, spec);
  ASSERT_GT(events.size(), 20000u);
  const fleet::Catalog catalog(spec.catalog);
  learn::FeatureConfig cfg;
  cfg.num_tracks = catalog.title(0).num_tracks();
  const learn::Dataset ds =
      learn::build_dataset(events, cfg, catalog_lookup(catalog));
  const learn::DatasetSplit split = learn::split_dataset(ds, 5);
  ASSERT_GT(split.holdout.examples.size(), 2000u);

  learn::TrainerConfig tc;
  const learn::Policy tabular =
      learn::train_tabular(split.train, cfg, tc, "mpc-imitate", 1);
  const double tab_holdout =
      learn::evaluate_agreement(tabular, split.holdout);
  EXPECT_GE(tab_holdout, 0.90) << "tabular held-out agreement regressed";
  // Train-side agreement sits in the same band (majority vote per state is
  // not a memorizer, so train and holdout can cross within noise).
  EXPECT_GE(learn::evaluate_agreement(tabular, split.train), 0.90);

  // The MLP distills the same teacher through 14 floats; it lands close
  // behind the table (measured ~0.91 tabular / ~0.90 MLP).
  const learn::Policy mlp =
      learn::train_mlp(split.train, cfg, tc, "mpc-imitate", 1);
  EXPECT_GE(learn::evaluate_agreement(mlp, split.holdout), 0.87);
}

}  // namespace
}  // namespace vbr
