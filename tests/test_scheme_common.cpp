// Tests for the AbrScheme interface helpers.
#include "abr/scheme.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_util.h"

namespace {

using namespace vbr;
using testutil::default_flat_video;
using testutil::make_context;

TEST(SchemeCommon, FixedTrackReturnsItsTrack) {
  const video::Video v = default_flat_video(4);
  abr::FixedTrackScheme s(3);
  const abr::Decision d = s.decide(make_context(v, 0, 0.0, 1e6));
  EXPECT_EQ(d.track, 3u);
  EXPECT_DOUBLE_EQ(d.wait_s, 0.0);
  EXPECT_EQ(s.name(), "fixed-3");
}

TEST(SchemeCommon, FixedTrackOutOfRangeThrows) {
  const video::Video v = default_flat_video(4);
  abr::FixedTrackScheme s(9);
  EXPECT_THROW((void)s.decide(make_context(v, 0, 0.0, 1e6)),
               std::out_of_range);
}

TEST(SchemeCommon, HighestTrackBelowBudget) {
  const video::Video v = default_flat_video(4);
  // Ladder: 0.2, 0.4, 0.8, 1.6, 3.2, 6.4 Mbps.
  EXPECT_EQ(abr::highest_track_below(v, 1e5), 0u);   // below the bottom rung
  EXPECT_EQ(abr::highest_track_below(v, 4e5), 1u);
  EXPECT_EQ(abr::highest_track_below(v, 1e6), 2u);
  EXPECT_EQ(abr::highest_track_below(v, 1e9), 5u);
}

TEST(SchemeCommon, ValidateContextChecks) {
  const video::Video v = default_flat_video(4);
  abr::StreamContext ctx = make_context(v, 0, 0.0, 1e6);
  EXPECT_NO_THROW(abr::validate_context(ctx));
  ctx.video = nullptr;
  EXPECT_THROW(abr::validate_context(ctx), std::invalid_argument);
  ctx = make_context(v, 4, 0.0, 1e6);  // index == num_chunks
  EXPECT_THROW(abr::validate_context(ctx), std::invalid_argument);
  ctx = make_context(v, 0, -1.0, 1e6);
  EXPECT_THROW(abr::validate_context(ctx), std::invalid_argument);
}

}  // namespace
