// Workload-layer tests: Zipf catalog sampling and the arrival processes.
// Both are counter-based, so the key properties are (a) seeded determinism
// and (b) empirical agreement with the analytic law they claim to follow.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "abr/bba.h"
#include "abr/mpc.h"
#include "abr/scheme.h"
#include "fleet/arrivals.h"
#include "fleet/catalog.h"
#include "fleet/fleet.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "test_util.h"

namespace vbr {
namespace {

TEST(ZipfSampler, DeterministicInSeedAndCounter) {
  const fleet::ZipfSampler a(32, 0.9, 7);
  const fleet::ZipfSampler b(32, 0.9, 7);
  const fleet::ZipfSampler c(32, 0.9, 8);
  bool any_differs = false;
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(a.sample(i), b.sample(i));
    any_differs |= a.sample(i) != c.sample(i);
  }
  EXPECT_TRUE(any_differs);  // the seed actually matters
}

TEST(ZipfSampler, EmpiricalFrequenciesMatchAnalyticPmf) {
  const std::size_t n = 16;
  const fleet::ZipfSampler zipf(n, 1.0, 42);
  const std::size_t draws = 40000;
  std::vector<double> freq(n, 0.0);
  for (std::uint64_t i = 0; i < draws; ++i) {
    freq[zipf.sample(i)] += 1.0 / static_cast<double>(draws);
  }
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(freq[k], zipf.pmf(k), 0.01) << "rank " << k;
  }
  // Popularity is rank-ordered: the head dominates the tail.
  EXPECT_GT(freq[0], freq[n - 1] * 4.0);
}

TEST(ZipfSampler, AlphaZeroIsUniform) {
  const std::size_t n = 10;
  const fleet::ZipfSampler zipf(n, 0.0, 3);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(zipf.pmf(k), 1.0 / static_cast<double>(n), 1e-12);
  }
}

TEST(ZipfSampler, Validation) {
  EXPECT_THROW(fleet::ZipfSampler(0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(fleet::ZipfSampler(4, -0.5, 1), std::invalid_argument);
  const fleet::ZipfSampler z(4, 1.0, 1);
  EXPECT_THROW((void)z.pmf(4), std::out_of_range);
}

TEST(Catalog, DeterministicPerTitleSeeds) {
  fleet::CatalogConfig cfg;
  cfg.num_titles = 4;
  cfg.title_duration_s = 30.0;
  const fleet::Catalog a(cfg);
  const fleet::Catalog b(cfg);
  ASSERT_EQ(a.num_titles(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    ASSERT_EQ(a.title(k).num_chunks(), b.title(k).num_chunks());
    for (std::size_t i = 0; i < a.title(k).num_chunks(); ++i) {
      EXPECT_DOUBLE_EQ(a.title(k).chunk_size_bits(2, i),
                       b.title(k).chunk_size_bits(2, i));
    }
  }
  // Distinct titles really are distinct content.
  EXPECT_NE(a.title(0).chunk_size_bits(2, 0), a.title(1).chunk_size_bits(2, 0));
  EXPECT_GT(a.title_bits(0), 0.0);
}

TEST(Catalog, PopularityDecilesSpanTheCatalog) {
  fleet::CatalogConfig cfg;
  cfg.num_titles = 20;
  cfg.title_duration_s = 10.0;
  const fleet::Catalog cat(cfg);
  EXPECT_EQ(cat.popularity_decile(0), 0u);
  EXPECT_EQ(cat.popularity_decile(19), 9u);
  for (std::size_t k = 1; k < 20; ++k) {
    EXPECT_GE(cat.popularity_decile(k), cat.popularity_decile(k - 1));
  }
}

TEST(Arrivals, DeterministicAndStrictlyIncreasing) {
  fleet::ArrivalConfig cfg;
  cfg.rate_per_s = 1.0;
  cfg.horizon_s = 200.0;
  const std::vector<double> a = fleet::generate_arrivals(cfg);
  const std::vector<double> b = fleet::generate_arrivals(cfg);
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GT(a[i], a[i - 1]);
  }
  EXPECT_GE(a.front(), 0.0);
  EXPECT_LT(a.back(), cfg.horizon_s);
  cfg.seed = 2;
  EXPECT_NE(fleet::generate_arrivals(cfg), a);
}

TEST(Arrivals, PoissonCountMatchesRateTimesHorizon) {
  fleet::ArrivalConfig cfg;
  cfg.rate_per_s = 2.0;
  cfg.horizon_s = 2000.0;
  const std::vector<double> times = fleet::generate_arrivals(cfg);
  // Mean 4000, stddev ~63: a 5-sigma band is a stable test.
  EXPECT_NEAR(static_cast<double>(times.size()), 4000.0, 320.0);
}

TEST(Arrivals, FlashCrowdConcentratesInsideBurstWindow) {
  fleet::ArrivalConfig cfg;
  cfg.kind = fleet::ArrivalKind::kFlashCrowd;
  cfg.rate_per_s = 0.5;
  cfg.horizon_s = 600.0;
  cfg.burst_start_s = 200.0;
  cfg.burst_duration_s = 100.0;
  cfg.burst_multiplier = 6.0;
  const std::vector<double> times = fleet::generate_arrivals(cfg);
  double inside = 0.0;
  double outside = 0.0;
  for (const double t : times) {
    (t >= 200.0 && t < 300.0 ? inside : outside) += 1.0;
  }
  // Inside density ~3/s over 100 s vs ~0.5/s over 500 s outside: the
  // per-second density inside should dwarf the outside density.
  EXPECT_GT(inside / 100.0, 3.0 * (outside / 500.0));
}

TEST(Arrivals, MaxSessionsCapsTheCount) {
  fleet::ArrivalConfig cfg;
  cfg.rate_per_s = 5.0;
  cfg.horizon_s = 1000.0;
  cfg.max_sessions = 17;
  EXPECT_EQ(fleet::generate_arrivals(cfg).size(), 17u);
}

TEST(Arrivals, Validation) {
  fleet::ArrivalConfig cfg;
  cfg.rate_per_s = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.horizon_s = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.kind = fleet::ArrivalKind::kFlashCrowd;
  cfg.burst_start_s = 290.0;
  cfg.burst_duration_s = 20.0;  // spills past the 300 s horizon
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.kind = fleet::ArrivalKind::kFlashCrowd;
  cfg.burst_multiplier = 0.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}


/// A compact mixed-scheme fleet for the batched-stepping regressions.
fleet::FleetSpec batching_spec(const std::vector<net::Trace>& traces) {
  fleet::FleetSpec spec;
  spec.catalog.num_titles = 7;
  spec.catalog.title_duration_s = 30.0;
  spec.arrivals.rate_per_s = 0.4;
  spec.arrivals.horizon_s = 120.0;
  spec.arrivals.max_sessions = 36;
  spec.classes.resize(2);
  spec.classes[0].label = "bba";
  spec.classes[0].make_scheme = [] { return std::make_unique<abr::Bba>(); };
  spec.classes[1].label = "robust-mpc";
  spec.classes[1].make_scheme = [] {
    return std::make_unique<abr::Mpc>(abr::robust_mpc_config());
  };
  spec.traces = traces;
  spec.cache.capacity_bits = 8e8;
  spec.watch.full_watch_prob = 0.5;
  spec.watch.mean_partial_s = 15.0;
  spec.session.startup_latency_s = 4.0;
  return spec;
}

/// Full serialized observation of one fleet run: merged JSONL telemetry,
/// metrics fingerprint, report JSON, and the per-session outcome table.
std::string fleet_fingerprint(fleet::FleetSpec spec, unsigned threads,
                              std::size_t title_batch) {
  obs::MemoryTraceSink sink;
  obs::MetricsRegistry registry;
  spec.trace = &sink;
  spec.metrics = &registry;
  spec.threads = threads;
  spec.title_batch = title_batch;
  const fleet::FleetResult result = fleet::run_fleet(spec);
  std::ostringstream out;
  out.precision(17);
  for (const obs::DecisionEvent& ev : sink.events()) {
    out << obs::to_jsonl(ev) << '\n';
  }
  out << registry.deterministic_fingerprint() << '\n';
  result.write_json(out);
  for (const fleet::FleetSessionRecord& r : result.sessions) {
    out << r.session_id << ' ' << r.arrival_s << ' ' << r.title << ' '
        << r.class_index << ' ' << r.trace_index << ' ' << r.chunks << ' '
        << r.edge_hits << ' ' << r.edge_hit_bits << ' ' << r.origin_bits
        << ' ' << r.qoe.data_usage_mb << ' ' << r.qoe.rebuffer_s << '\n';
  }
  return out.str();
}

TEST(FleetBatching, BatchedSteppingByteIdenticalAcrossThreadCounts) {
  std::vector<net::Trace> traces;
  traces.push_back(testutil::flat_trace(3.5e6, 600.0));
  traces.push_back(testutil::flat_trace(1.2e6, 600.0));
  const fleet::FleetSpec spec = batching_spec(traces);
  const std::string one = fleet_fingerprint(spec, 1, 4);
  const std::string two = fleet_fingerprint(spec, 2, 4);
  const std::string eight = fleet_fingerprint(spec, 8, 4);
  EXPECT_GT(one.size(), 1000u);  // the run actually produced telemetry
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(FleetBatching, BatchSizeCannotInfluenceAnyResultByte) {
  std::vector<net::Trace> traces;
  traces.push_back(testutil::flat_trace(3.5e6, 600.0));
  traces.push_back(testutil::flat_trace(1.2e6, 600.0));
  const fleet::FleetSpec spec = batching_spec(traces);
  // Unbatched (1 title per claim) vs batched vs one-claim-takes-all, at a
  // thread count that forces real work interleaving.
  const std::string unbatched = fleet_fingerprint(spec, 4, 1);
  const std::string batched = fleet_fingerprint(spec, 4, 3);
  const std::string all_at_once = fleet_fingerprint(spec, 4, 64);
  EXPECT_EQ(unbatched, batched);
  EXPECT_EQ(unbatched, all_at_once);
}

TEST(FleetBatching, RandomizedSpecsBatchedMatchesUnbatched) {
  // Randomized-spec smoke: vary catalog size, skew, arrivals, cache size,
  // and seeds; batched and unbatched stepping must serialize identically.
  std::mt19937_64 rng(2024);
  std::vector<net::Trace> traces;
  traces.push_back(testutil::flat_trace(4e6, 600.0));
  traces.push_back(testutil::flat_trace(9e5, 600.0));
  for (int round = 0; round < 4; ++round) {
    fleet::FleetSpec spec = batching_spec(traces);
    spec.catalog.num_titles = 3 + rng() % 10;
    spec.catalog.zipf_alpha = 0.2 * static_cast<double>(rng() % 8);
    spec.catalog.seed = rng();
    spec.arrivals.max_sessions = 12 + rng() % 20;
    spec.seed = rng();
    spec.use_cache = (rng() % 4) != 0;
    if (spec.use_cache) {
      spec.cache.capacity_bits = 2e8 + static_cast<double>(rng() % 8) * 2e8;
    }
    const std::string unbatched = fleet_fingerprint(spec, 3, 1);
    const std::string batched =
        fleet_fingerprint(spec, 3, 2 + rng() % 6);
    EXPECT_EQ(unbatched, batched) << "round " << round;
  }
}

}  // namespace
}  // namespace vbr
