// Workload-layer tests: Zipf catalog sampling and the arrival processes.
// Both are counter-based, so the key properties are (a) seeded determinism
// and (b) empirical agreement with the analytic law they claim to follow.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "fleet/arrivals.h"
#include "fleet/catalog.h"

namespace vbr {
namespace {

TEST(ZipfSampler, DeterministicInSeedAndCounter) {
  const fleet::ZipfSampler a(32, 0.9, 7);
  const fleet::ZipfSampler b(32, 0.9, 7);
  const fleet::ZipfSampler c(32, 0.9, 8);
  bool any_differs = false;
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(a.sample(i), b.sample(i));
    any_differs |= a.sample(i) != c.sample(i);
  }
  EXPECT_TRUE(any_differs);  // the seed actually matters
}

TEST(ZipfSampler, EmpiricalFrequenciesMatchAnalyticPmf) {
  const std::size_t n = 16;
  const fleet::ZipfSampler zipf(n, 1.0, 42);
  const std::size_t draws = 40000;
  std::vector<double> freq(n, 0.0);
  for (std::uint64_t i = 0; i < draws; ++i) {
    freq[zipf.sample(i)] += 1.0 / static_cast<double>(draws);
  }
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(freq[k], zipf.pmf(k), 0.01) << "rank " << k;
  }
  // Popularity is rank-ordered: the head dominates the tail.
  EXPECT_GT(freq[0], freq[n - 1] * 4.0);
}

TEST(ZipfSampler, AlphaZeroIsUniform) {
  const std::size_t n = 10;
  const fleet::ZipfSampler zipf(n, 0.0, 3);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(zipf.pmf(k), 1.0 / static_cast<double>(n), 1e-12);
  }
}

TEST(ZipfSampler, Validation) {
  EXPECT_THROW(fleet::ZipfSampler(0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(fleet::ZipfSampler(4, -0.5, 1), std::invalid_argument);
  const fleet::ZipfSampler z(4, 1.0, 1);
  EXPECT_THROW((void)z.pmf(4), std::out_of_range);
}

TEST(Catalog, DeterministicPerTitleSeeds) {
  fleet::CatalogConfig cfg;
  cfg.num_titles = 4;
  cfg.title_duration_s = 30.0;
  const fleet::Catalog a(cfg);
  const fleet::Catalog b(cfg);
  ASSERT_EQ(a.num_titles(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    ASSERT_EQ(a.title(k).num_chunks(), b.title(k).num_chunks());
    for (std::size_t i = 0; i < a.title(k).num_chunks(); ++i) {
      EXPECT_DOUBLE_EQ(a.title(k).chunk_size_bits(2, i),
                       b.title(k).chunk_size_bits(2, i));
    }
  }
  // Distinct titles really are distinct content.
  EXPECT_NE(a.title(0).chunk_size_bits(2, 0), a.title(1).chunk_size_bits(2, 0));
  EXPECT_GT(a.title_bits(0), 0.0);
}

TEST(Catalog, PopularityDecilesSpanTheCatalog) {
  fleet::CatalogConfig cfg;
  cfg.num_titles = 20;
  cfg.title_duration_s = 10.0;
  const fleet::Catalog cat(cfg);
  EXPECT_EQ(cat.popularity_decile(0), 0u);
  EXPECT_EQ(cat.popularity_decile(19), 9u);
  for (std::size_t k = 1; k < 20; ++k) {
    EXPECT_GE(cat.popularity_decile(k), cat.popularity_decile(k - 1));
  }
}

TEST(Arrivals, DeterministicAndStrictlyIncreasing) {
  fleet::ArrivalConfig cfg;
  cfg.rate_per_s = 1.0;
  cfg.horizon_s = 200.0;
  const std::vector<double> a = fleet::generate_arrivals(cfg);
  const std::vector<double> b = fleet::generate_arrivals(cfg);
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GT(a[i], a[i - 1]);
  }
  EXPECT_GE(a.front(), 0.0);
  EXPECT_LT(a.back(), cfg.horizon_s);
  cfg.seed = 2;
  EXPECT_NE(fleet::generate_arrivals(cfg), a);
}

TEST(Arrivals, PoissonCountMatchesRateTimesHorizon) {
  fleet::ArrivalConfig cfg;
  cfg.rate_per_s = 2.0;
  cfg.horizon_s = 2000.0;
  const std::vector<double> times = fleet::generate_arrivals(cfg);
  // Mean 4000, stddev ~63: a 5-sigma band is a stable test.
  EXPECT_NEAR(static_cast<double>(times.size()), 4000.0, 320.0);
}

TEST(Arrivals, FlashCrowdConcentratesInsideBurstWindow) {
  fleet::ArrivalConfig cfg;
  cfg.kind = fleet::ArrivalKind::kFlashCrowd;
  cfg.rate_per_s = 0.5;
  cfg.horizon_s = 600.0;
  cfg.burst_start_s = 200.0;
  cfg.burst_duration_s = 100.0;
  cfg.burst_multiplier = 6.0;
  const std::vector<double> times = fleet::generate_arrivals(cfg);
  double inside = 0.0;
  double outside = 0.0;
  for (const double t : times) {
    (t >= 200.0 && t < 300.0 ? inside : outside) += 1.0;
  }
  // Inside density ~3/s over 100 s vs ~0.5/s over 500 s outside: the
  // per-second density inside should dwarf the outside density.
  EXPECT_GT(inside / 100.0, 3.0 * (outside / 500.0));
}

TEST(Arrivals, MaxSessionsCapsTheCount) {
  fleet::ArrivalConfig cfg;
  cfg.rate_per_s = 5.0;
  cfg.horizon_s = 1000.0;
  cfg.max_sessions = 17;
  EXPECT_EQ(fleet::generate_arrivals(cfg).size(), 17u);
}

TEST(Arrivals, Validation) {
  fleet::ArrivalConfig cfg;
  cfg.rate_per_s = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.horizon_s = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.kind = fleet::ArrivalKind::kFlashCrowd;
  cfg.burst_start_s = 290.0;
  cfg.burst_duration_s = 20.0;  // spills past the 300 s horizon
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.kind = fleet::ArrivalKind::kFlashCrowd;
  cfg.burst_multiplier = 0.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace vbr
