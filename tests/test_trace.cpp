// Tests for bandwidth trace replay.
#include "net/trace.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using vbr::net::Trace;

TEST(Trace, ConstructorValidation) {
  EXPECT_THROW(Trace("x", 1.0, {}), std::invalid_argument);
  EXPECT_THROW(Trace("x", 0.0, {1e6}), std::invalid_argument);
  EXPECT_THROW(Trace("x", 1.0, {-1.0}), std::invalid_argument);
  EXPECT_THROW(Trace("x", 1.0, {0.0, 0.0}), std::invalid_argument);
}

TEST(Trace, BasicAccessors) {
  const Trace t("t", 2.0, {1e6, 3e6});
  EXPECT_EQ(t.num_samples(), 2u);
  EXPECT_DOUBLE_EQ(t.duration_s(), 4.0);
  EXPECT_DOUBLE_EQ(t.average_bandwidth_bps(), 2e6);
}

TEST(Trace, BandwidthAtSampleBoundaries) {
  const Trace t("t", 1.0, {1e6, 2e6, 3e6});
  EXPECT_DOUBLE_EQ(t.bandwidth_at(0.0), 1e6);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(0.99), 1e6);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(1.0), 2e6);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(2.5), 3e6);
}

TEST(Trace, BandwidthLoopsPastEnd) {
  const Trace t("t", 1.0, {1e6, 2e6});
  EXPECT_DOUBLE_EQ(t.bandwidth_at(2.0), 1e6);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(3.5), 2e6);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(7.25), 2e6);
}

TEST(Trace, NegativeTimeThrows) {
  const Trace t("t", 1.0, {1e6});
  EXPECT_THROW((void)t.bandwidth_at(-0.1), std::invalid_argument);
}

TEST(Trace, DownloadWithinOneSample) {
  const Trace t("t", 10.0, {1e6});
  EXPECT_DOUBLE_EQ(t.download_duration_s(0.0, 5e5), 0.5);
}

TEST(Trace, DownloadSpansSamples) {
  // 1 Mbps for 1 s, then 4 Mbps: downloading 3 Mb starting at t=0 takes
  // 1 s (1 Mb) + 0.5 s (2 Mb) = 1.5 s.
  const Trace t("t", 1.0, {1e6, 4e6});
  EXPECT_DOUBLE_EQ(t.download_duration_s(0.0, 3e6), 1.5);
}

TEST(Trace, DownloadStartsMidSample) {
  const Trace t("t", 1.0, {1e6, 4e6});
  // Starting at t=0.5: 0.5 s at 1 Mbps (0.5 Mb) + 0.625 s at 4 Mbps.
  EXPECT_DOUBLE_EQ(t.download_duration_s(0.5, 3e6), 0.5 + 2.5e6 / 4e6);
}

TEST(Trace, DownloadThroughZeroBandwidth) {
  // An outage sample just elapses.
  const Trace t("t", 1.0, {1e6, 0.0, 1e6});
  EXPECT_DOUBLE_EQ(t.download_duration_s(0.0, 2e6), 3.0);
}

TEST(Trace, DownloadAcrossLoop) {
  const Trace t("t", 1.0, {1e6, 2e6});
  // Start at t=1.5: 0.5 s at 2 Mbps (1 Mb), loop to 1 Mbps for 1 s (1 Mb),
  // then 0.5 Mb at 2 Mbps (0.25 s): total 1.75 s for 2.5 Mb.
  EXPECT_DOUBLE_EQ(t.download_duration_s(1.5, 2.5e6), 1.75);
}

TEST(Trace, DownloadValidation) {
  const Trace t("t", 1.0, {1e6});
  EXPECT_THROW((void)t.download_duration_s(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)t.download_duration_s(-1.0, 1.0),
               std::invalid_argument);
}

TEST(Trace, WindowAverage) {
  const Trace t("t", 1.0, {1e6, 3e6});
  EXPECT_DOUBLE_EQ(t.average_bandwidth_bps(0.0, 2.0), 2e6);
  EXPECT_DOUBLE_EQ(t.average_bandwidth_bps(0.0, 1.0), 1e6);
  EXPECT_DOUBLE_EQ(t.average_bandwidth_bps(0.5, 1.0), 2e6);
}

TEST(Trace, WindowAverageAcrossLoop) {
  const Trace t("t", 1.0, {1e6, 3e6});
  EXPECT_DOUBLE_EQ(t.average_bandwidth_bps(1.5, 1.0), 2e6);
}

TEST(Trace, WindowAverageValidation) {
  const Trace t("t", 1.0, {1e6});
  EXPECT_THROW((void)t.average_bandwidth_bps(0.0, 0.0),
               std::invalid_argument);
}

TEST(Trace, DownloadConsistentWithBandwidthIntegral) {
  // Property: bits downloaded in the returned duration equal the request.
  const Trace t("t", 1.0, {5e5, 2e6, 1e5, 8e6, 3e6});
  for (const double start : {0.0, 0.3, 1.7, 4.9}) {
    for (const double bits : {1e5, 1e6, 7e6}) {
      const double d = t.download_duration_s(start, bits);
      const double integrated = t.average_bandwidth_bps(start, d) * d;
      EXPECT_NEAR(integrated, bits, 1.0);
    }
  }
}

}  // namespace
