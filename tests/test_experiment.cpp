// Tests for the experiment harness.
#include "sim/experiment.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "abr/mpc.h"
#include "net/trace_gen.h"
#include "test_util.h"
#include "video/dataset.h"
#include "video/size_provider.h"

namespace {

using namespace vbr;

video::Video small_video() {
  return video::make_video("ED", video::Genre::kAnimation,
                           video::Codec::kH264, 2.0, 2.0, 42, 120.0);
}

sim::ExperimentSpec base_spec(const video::Video& v,
                              std::span<const net::Trace> traces) {
  sim::ExperimentSpec spec;
  spec.video = &v;
  spec.traces = traces;
  spec.make_scheme = [] {
    return std::make_unique<abr::FixedTrackScheme>(2);
  };
  return spec;
}

TEST(Experiment, RunsOneSummaryPerTrace) {
  const video::Video v = small_video();
  const auto traces = net::make_lte_trace_set(6, 3);
  const sim::ExperimentResult r = sim::run_experiment(base_spec(v, traces));
  EXPECT_EQ(r.per_trace.size(), 6u);
  EXPECT_EQ(r.scheme_name, "fixed-2");
}

TEST(Experiment, MalformedSpecThrows) {
  const video::Video v = small_video();
  const auto traces = net::make_lte_trace_set(2, 3);
  sim::ExperimentSpec spec;  // all empty
  EXPECT_THROW((void)sim::run_experiment(spec), std::invalid_argument);
  spec = base_spec(v, traces);
  spec.make_scheme = nullptr;
  EXPECT_THROW((void)sim::run_experiment(spec), std::invalid_argument);
}

TEST(Experiment, MeansAggregateAcrossTraces) {
  const video::Video v = small_video();
  const auto traces = net::make_lte_trace_set(4, 3);
  const sim::ExperimentResult r = sim::run_experiment(base_spec(v, traces));
  double sum = 0.0;
  for (const auto& s : r.per_trace) {
    sum += s.rebuffer_s;
  }
  EXPECT_NEAR(r.mean_rebuffer_s, sum / 4.0, 1e-9);
}

TEST(Experiment, DeterministicAcrossThreadCounts) {
  // Parallelism must not change results (each trace is independent).
  const video::Video v = small_video();
  const auto traces = net::make_lte_trace_set(8, 3);
  sim::ExperimentSpec spec1 = base_spec(v, traces);
  spec1.threads = 1;
  sim::ExperimentSpec spec8 = base_spec(v, traces);
  spec8.threads = 8;
  const sim::ExperimentResult a = sim::run_experiment(spec1);
  const sim::ExperimentResult b = sim::run_experiment(spec8);
  ASSERT_EQ(a.per_trace.size(), b.per_trace.size());
  for (std::size_t i = 0; i < a.per_trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.per_trace[i].rebuffer_s, b.per_trace[i].rebuffer_s);
    EXPECT_DOUBLE_EQ(a.per_trace[i].all_quality_mean,
                     b.per_trace[i].all_quality_mean);
    EXPECT_DOUBLE_EQ(a.per_trace[i].data_usage_mb,
                     b.per_trace[i].data_usage_mb);
  }
}

TEST(Experiment, MetricSelectsVmafModel) {
  const video::Video v = small_video();
  const auto traces = net::make_lte_trace_set(2, 3);
  sim::ExperimentSpec phone = base_spec(v, traces);
  phone.metric = video::QualityMetric::kVmafPhone;
  sim::ExperimentSpec tv = base_spec(v, traces);
  tv.metric = video::QualityMetric::kVmafTv;
  const auto rp = sim::run_experiment(phone);
  const auto rt = sim::run_experiment(tv);
  // Phone model is more forgiving at sub-1080p rungs.
  EXPECT_GT(rp.mean_all_quality, rt.mean_all_quality);
}

TEST(Experiment, CustomEstimatorFactoryIsUsed) {
  const video::Video v = small_video();
  const auto traces = net::make_lte_trace_set(2, 3);
  sim::ExperimentSpec spec = base_spec(v, traces);
  int calls = 0;
  spec.make_estimator = [&calls](const net::Trace&) {
    ++calls;
    return net::make_default_estimator();
  };
  (void)sim::run_experiment(spec);
  EXPECT_EQ(calls, 2);
}

TEST(Experiment, CollectorsMatchPerTraceValues) {
  const video::Video v = small_video();
  const auto traces = net::make_lte_trace_set(3, 3);
  const sim::ExperimentResult r = sim::run_experiment(base_spec(v, traces));
  const auto rebuf = r.rebuffer_values();
  ASSERT_EQ(rebuf.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(rebuf[i], r.per_trace[i].rebuffer_s);
  }
  const auto pooled = r.pooled_all_qualities();
  EXPECT_EQ(pooled.size(), 3u * v.num_chunks());
}


/// Serializes the per-trace summaries with full precision so experiment
/// results can be compared byte-for-byte.
std::string serialize_per_trace(const sim::ExperimentResult& r) {
  std::ostringstream out;
  out.precision(17);
  for (const metrics::QoeSummary& s : r.per_trace) {
    out << s.q4_quality_mean << ' ' << s.q13_quality_mean << ' '
        << s.all_quality_mean << ' ' << s.low_quality_pct << ' '
        << s.rebuffer_s << ' ' << s.startup_delay_s << ' '
        << s.avg_quality_change << ' ' << s.data_usage_mb << '\n';
  }
  return out.str();
}

TEST(Experiment, WorkerSchemeReuseMatchesFreshPerTraceRuns) {
  // Workers build ONE scheme (and size provider) per thread and reuse them
  // across sessions; run_session's reset preamble is the only state
  // barrier. A single-threaded multi-trace run (maximum reuse: one Mpc
  // instance serves every trace) must match running each trace through its
  // own one-trace experiment (a fresh instance every time), byte-for-byte.
  const video::Video v = small_video();
  const auto traces = net::make_lte_trace_set(5, 3);
  sim::ExperimentSpec spec = base_spec(v, traces);
  spec.make_scheme = [] {
    return std::make_unique<abr::Mpc>(abr::robust_mpc_config());
  };
  spec.make_size_provider = [] {
    return std::make_unique<video::NoisySizeProvider>(0.2, 19);
  };
  spec.threads = 1;
  const std::string reused = serialize_per_trace(sim::run_experiment(spec));
  std::string fresh;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    sim::ExperimentSpec one = spec;
    one.traces = std::span<const net::Trace>(&traces[i], 1);
    fresh += serialize_per_trace(sim::run_experiment(one));
  }
  EXPECT_EQ(reused, fresh);
}

}  // namespace
