// Tests for MPC / RobustMPC.
#include "abr/mpc.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_util.h"

namespace {

using namespace vbr;
using testutil::default_flat_video;
using testutil::make_context;
using testutil::make_flat_video;

TEST(Mpc, BadConfigThrows) {
  abr::MpcConfig cfg;
  cfg.horizon = 0;
  EXPECT_THROW(abr::Mpc{cfg}, std::invalid_argument);
  cfg = {};
  cfg.lambda = -1.0;
  EXPECT_THROW(abr::Mpc{cfg}, std::invalid_argument);
}

TEST(Mpc, NonPositiveBandwidthThrows) {
  const video::Video v = default_flat_video(10);
  abr::Mpc mpc;
  EXPECT_THROW((void)mpc.decide(make_context(v, 0, 10.0, 0.0)),
               std::invalid_argument);
}

TEST(Mpc, PicksTopTrackWithAmpleBandwidthAndBuffer) {
  const video::Video v = default_flat_video(20);
  abr::Mpc mpc;
  const abr::Decision d = mpc.decide(make_context(v, 0, 50.0, 50e6));
  EXPECT_EQ(d.track, v.num_tracks() - 1);
}

TEST(Mpc, PicksLowTrackWhenStarved) {
  const video::Video v = default_flat_video(20);
  abr::Mpc mpc;
  const abr::Decision d = mpc.decide(make_context(v, 0, 2.0, 3e5));
  EXPECT_LE(d.track, 1u);
}

TEST(Mpc, QualityScalesWithBandwidth) {
  const video::Video v = default_flat_video(20);
  abr::Mpc mpc;
  std::size_t prev = 0;
  for (const double bw : {5e5, 1e6, 2e6, 4e6, 8e6, 16e6}) {
    const abr::Decision d = mpc.decide(make_context(v, 0, 20.0, bw));
    EXPECT_GE(d.track, prev);
    prev = d.track;
  }
}

TEST(Mpc, RebufferPenaltyAvoidsStalls) {
  // Thin buffer, bandwidth at half the top track's bitrate: top-track
  // downloads (4 s for 2 s of content) would stall playback within the
  // horizon, so the rebuffer penalty must push the choice down.
  const video::Video v = default_flat_video(20);
  abr::Mpc mpc;
  const abr::Decision d = mpc.decide(make_context(v, 0, 2.5, 3.2e6));
  EXPECT_LT(d.track, 5u);
}

TEST(Mpc, SmoothnessPenaltyDampsSwitching) {
  // From track 1 with moderate bandwidth, a high lambda keeps the choice
  // near the previous track.
  const video::Video v = default_flat_video(20);
  abr::MpcConfig smooth;
  smooth.lambda = 50.0;
  abr::Mpc mpc(smooth);
  const abr::Decision d = mpc.decide(make_context(v, 1, 40.0, 13e6, 1));
  EXPECT_LE(d.track, 2u);
}

TEST(Mpc, NamesDistinguishVariants) {
  EXPECT_EQ(abr::Mpc(abr::mpc_config()).name(), "MPC");
  EXPECT_EQ(abr::Mpc(abr::robust_mpc_config()).name(), "RobustMPC");
}

TEST(RobustMpc, DiscountsAfterPredictionError) {
  const video::Video v = default_flat_video(20);
  abr::Mpc robust(abr::robust_mpc_config());

  // First decision at estimate 8 Mbps with a modest buffer: aggressive.
  abr::StreamContext ctx = make_context(v, 0, 4.0, 8e6);
  const abr::Decision first = robust.decide(ctx);

  // The downloaded chunk reveals a much slower link: 8x prediction error.
  const double size = v.chunk_size_bits(first.track, 0);
  robust.on_chunk_downloaded(ctx, first.track, size / 1e6);

  // Same estimate again: the robust discount must lower the choice.
  ctx = make_context(v, 1, 4.0, 8e6, static_cast<int>(first.track));
  const abr::Decision second = robust.decide(ctx);
  EXPECT_LT(second.track, first.track);
}

TEST(RobustMpc, NoErrorNoDiscount) {
  const video::Video v = default_flat_video(20);
  abr::Mpc robust(abr::robust_mpc_config());
  abr::Mpc plain(abr::mpc_config());

  abr::StreamContext ctx = make_context(v, 0, 30.0, 4e6);
  const abr::Decision r = robust.decide(ctx);
  const abr::Decision p = plain.decide(ctx);
  EXPECT_EQ(r.track, p.track);

  // Perfect prediction: observed throughput equals the estimate.
  const double size = v.chunk_size_bits(r.track, 0);
  robust.on_chunk_downloaded(ctx, r.track, size / 4e6);
  ctx = make_context(v, 1, 30.0, 4e6, static_cast<int>(r.track));
  EXPECT_EQ(robust.decide(ctx).track, plain.decide(ctx).track);
}

TEST(RobustMpc, ResetClearsErrorHistory) {
  const video::Video v = default_flat_video(20);
  abr::Mpc robust(abr::robust_mpc_config());
  abr::StreamContext ctx = make_context(v, 0, 30.0, 8e6);
  const abr::Decision first = robust.decide(ctx);
  robust.on_chunk_downloaded(ctx, first.track,
                             v.chunk_size_bits(first.track, 0) / 1e6);
  robust.reset();
  ctx = make_context(v, 0, 30.0, 8e6);
  EXPECT_EQ(robust.decide(ctx).track, first.track);
}

TEST(Mpc, UsesActualChunkSizesNotAverages) {
  // A spiked chunk must force a more conservative choice at a thin buffer
  // than its flat neighbour, since MPC simulates the actual download.
  const video::Video v = make_flat_video(
      {2e5, 4e5, 8e5, 1.6e6, 3.2e6, 6.4e6}, 20, 2.0, {{10, 3.0}});
  abr::Mpc mpc;
  const abr::Decision flat = mpc.decide(make_context(v, 5, 4.0, 3.2e6));
  const abr::Decision spiked = mpc.decide(make_context(v, 10, 4.0, 3.2e6));
  EXPECT_LT(spiked.track, flat.track);
}

TEST(Mpc, HorizonTruncatesAtVideoEnd) {
  const video::Video v = default_flat_video(3);
  abr::Mpc mpc;
  // Deciding the last chunk: horizon window of 5 exceeds the remaining
  // chunks; must not crash and must return a valid track.
  const abr::Decision d = mpc.decide(make_context(v, 2, 20.0, 4e6));
  EXPECT_LT(d.track, v.num_tracks());
}

}  // namespace
