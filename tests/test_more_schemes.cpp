// Tests for the additional baselines: FESTIVE, ThroughputRule, DYNAMIC,
// BBA-0, and the Oboe-style tuned CAVA.
#include <gtest/gtest.h>

#include <stdexcept>

#include "abr/bba.h"
#include "abr/festive.h"
#include "abr/throughput_rule.h"
#include "net/bandwidth_estimator.h"
#include "net/trace_gen.h"
#include "sim/session.h"
#include "test_util.h"
#include "tune/autotune.h"
#include "video/dataset.h"

namespace {

using namespace vbr;
using testutil::default_flat_video;
using testutil::flat_trace;
using testutil::make_context;

// ------------------------------------------------------------- FESTIVE --

TEST(Festive, BadConfigThrows) {
  abr::FestiveConfig cfg;
  cfg.bandwidth_safety = 0.0;
  EXPECT_THROW(abr::Festive{cfg}, std::invalid_argument);
  cfg = {};
  cfg.up_patience = 0;
  EXPECT_THROW(abr::Festive{cfg}, std::invalid_argument);
}

TEST(Festive, FirstChunkJumpsToTarget) {
  const video::Video v = default_flat_video(20);
  abr::Festive f;
  // 0.85 * 4 Mbps = 3.4 -> track 4 (3.2).
  EXPECT_EQ(f.decide(make_context(v, 0, 20.0, 4e6)).track, 4u);
}

TEST(Festive, UpSwitchNeedsPatience) {
  const video::Video v = default_flat_video(20);
  abr::Festive f;
  // Start at track 2 (est 1 Mbps), then the estimate jumps.
  abr::StreamContext ctx = make_context(v, 0, 20.0, 1e6);
  EXPECT_EQ(f.decide(ctx).track, 2u);
  std::size_t track = 2;
  int ups = 0;
  for (std::size_t i = 1; i <= 4; ++i) {
    ctx = make_context(v, i, 20.0, 8e6, static_cast<int>(track));
    const std::size_t next = f.decide(ctx).track;
    EXPECT_LE(next, track + 1);  // never jumps more than one level
    ups += next > track ? 1 : 0;
    track = next;
  }
  EXPECT_GE(ups, 1);      // eventually moves up
  EXPECT_LE(track, 4u);   // but gradually
}

TEST(Festive, DownSwitchImmediate) {
  const video::Video v = default_flat_video(20);
  abr::Festive f;
  abr::StreamContext ctx = make_context(v, 0, 20.0, 8e6);
  const std::size_t high = f.decide(ctx).track;
  ctx = make_context(v, 1, 20.0, 3e5, static_cast<int>(high));
  const std::size_t low = f.decide(ctx).track;
  EXPECT_LT(low, high);
}

TEST(Festive, StableUnderConstantBandwidth) {
  const video::Video v = default_flat_video(60);
  const net::Trace t = flat_trace(2e6);
  abr::Festive f;
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r = sim::run_session(v, t, f, est);
  int switches = 0;
  for (std::size_t i = 1; i < r.chunks.size(); ++i) {
    switches += r.chunks[i].track != r.chunks[i - 1].track ? 1 : 0;
  }
  EXPECT_LE(switches, 4);
}

// ----------------------------------------------- ThroughputRule/DYNAMIC --

TEST(ThroughputRule, FollowsDiscountedEstimate) {
  const video::Video v = default_flat_video(10);
  abr::ThroughputRule r;
  // 0.9 * 1 Mbps = 0.9 -> track 2 (0.8).
  EXPECT_EQ(r.decide(make_context(v, 0, 0.0, 1e6)).track, 2u);
  EXPECT_EQ(r.decide(make_context(v, 0, 99.0, 1e6)).track, 2u);  // buffer-blind
}

TEST(ThroughputRule, Validation) {
  abr::ThroughputRuleConfig cfg;
  cfg.bandwidth_safety = -1.0;
  EXPECT_THROW(abr::ThroughputRule{cfg}, std::invalid_argument);
  const video::Video v = default_flat_video(10);
  abr::ThroughputRule r;
  EXPECT_THROW((void)r.decide(make_context(v, 0, 0.0, 0.0)),
               std::invalid_argument);
}

TEST(Dynamic, SwitchesRuleAtBufferThreshold) {
  const video::Video v = default_flat_video(20);
  abr::DynamicRule d;
  // Thin buffer: throughput rule (estimate-driven).
  const abr::Decision thin_fast = d.decide(make_context(v, 0, 2.0, 8e6));
  const abr::Decision thin_slow = d.decide(make_context(v, 0, 2.0, 4e5));
  EXPECT_GT(thin_fast.track, thin_slow.track);
  // Healthy buffer: BOLA (buffer-driven, estimate mostly ignored).
  const abr::Decision fat_fast = d.decide(make_context(v, 0, 25.0, 8e6));
  const abr::Decision fat_slow = d.decide(make_context(v, 0, 25.0, 4e5));
  EXPECT_EQ(fat_fast.track, fat_slow.track);
}

// ---------------------------------------------------------------- BBA-0 --

TEST(Bba0, MapsBufferToLadder) {
  const video::Video v = default_flat_video(20);
  abr::Bba0 b;
  EXPECT_EQ(b.decide(make_context(v, 0, 5.0, 1e6)).track, 0u);
  EXPECT_EQ(b.decide(make_context(v, 0, 95.0, 1e6)).track,
            v.num_tracks() - 1);
  const std::size_t mid = b.decide(make_context(v, 0, 50.0, 1e6)).track;
  EXPECT_GT(mid, 0u);
  EXPECT_LT(mid, v.num_tracks() - 1);
}

TEST(Bba0, IgnoresChunkSizes) {
  const video::Video v = testutil::make_flat_video(
      {2e5, 4e5, 8e5, 1.6e6, 3.2e6, 6.4e6}, 20, 2.0, {{10, 3.0}});
  abr::Bba0 b;
  EXPECT_EQ(b.decide(make_context(v, 5, 50.0, 1e6)).track,
            b.decide(make_context(v, 10, 50.0, 1e6)).track);
}

// ------------------------------------------------------------ AutoTune --

video::Video tune_video() {
  return video::make_video("ED", video::Genre::kAnimation,
                           video::Codec::kH264, 2.0, 2.0, 42, 200.0);
}

TEST(AutoTune, OfflineTableCoversStates) {
  const video::Video v = tune_video();
  const auto traces = net::make_lte_trace_set(6, 3);
  const tune::TuningTable table = tune::tune_offline(
      v, traces, tune::default_candidate_grid());
  EXPECT_EQ(table.states.size(), table.configs.size());
  EXPECT_FALSE(table.states.empty());
}

TEST(AutoTune, EmptyInputsThrow) {
  const video::Video v = tune_video();
  const auto traces = net::make_lte_trace_set(2, 3);
  EXPECT_THROW((void)tune::tune_offline(v, {}, tune::default_candidate_grid()),
               std::invalid_argument);
  EXPECT_THROW((void)tune::tune_offline(v, traces, {}),
               std::invalid_argument);
}

TEST(AutoTune, LookupFallsBackOutsideStates) {
  tune::TuningTable table;
  table.fallback.alpha_complex = 1.42;
  EXPECT_DOUBLE_EQ(table.lookup(1e6, 0.5).alpha_complex, 1.42);
}

TEST(AutoTune, TunedCavaRunsAndSwitchesConfigs) {
  const video::Video v = tune_video();
  const auto traces = net::make_lte_trace_set(6, 3);
  tune::TuningTable table =
      tune::tune_offline(v, traces, tune::default_candidate_grid());
  tune::TunedCava tuned(std::move(table));
  net::HarmonicMeanEstimator est(5);
  const net::Trace t = net::generate_lte_trace(99);
  const sim::SessionResult r = sim::run_session(v, t, tuned, est);
  EXPECT_EQ(r.chunks.size(), v.num_chunks());
}

TEST(AutoTune, TunedCavaCompetitiveWithDefault) {
  const video::Video v = tune_video();
  const auto calibration = net::make_lte_trace_set(12, 3);
  tune::TuningTable table =
      tune::tune_offline(v, calibration, tune::default_candidate_grid());

  const auto eval = net::make_lte_trace_set(8, 21);
  auto score = [&](abr::AbrScheme& s) {
    double total = 0.0;
    for (const net::Trace& t : eval) {
      net::HarmonicMeanEstimator est(5);
      const sim::SessionResult r = sim::run_session(v, t, s, est);
      double q = 0.0;
      for (const auto& c : r.chunks) {
        q += c.quality.vmaf_phone;
      }
      total += q / static_cast<double>(r.chunks.size()) -
               3.0 * r.total_rebuffer_s;
    }
    return total;
  };
  tune::TunedCava tuned(std::move(table));
  core::Cava plain;
  // The tuned variant must not be materially worse than the default.
  EXPECT_GT(score(tuned), score(plain) - 0.05 * std::abs(score(plain)));
}

// ----------------------------------------------------------- RTT model --

TEST(SessionRtt, RttSlowsSmallChunksProportionallyMore) {
  const video::Video v = default_flat_video(20);
  const net::Trace t = flat_trace(10e6);
  abr::FixedTrackScheme low(0);
  abr::FixedTrackScheme high(5);
  net::HarmonicMeanEstimator e1(5);
  net::HarmonicMeanEstimator e2(5);
  sim::SessionConfig cfg;
  cfg.request_rtt_s = 0.1;
  const auto r_low = sim::run_session(v, t, low, e1, cfg);
  const auto r_high = sim::run_session(v, t, high, e2, cfg);
  // Effective throughput = size / (rtt + transfer); relative loss is much
  // larger for the small chunks.
  const double tput_low =
      r_low.chunks[5].size_bits / r_low.chunks[5].download_s;
  const double tput_high =
      r_high.chunks[5].size_bits / r_high.chunks[5].download_s;
  EXPECT_LT(tput_low, 0.5 * tput_high);
}

TEST(SessionRtt, NegativeRttThrows) {
  const video::Video v = default_flat_video(5);
  const net::Trace t = flat_trace(1e6);
  abr::FixedTrackScheme s(0);
  net::HarmonicMeanEstimator est(5);
  sim::SessionConfig cfg;
  cfg.request_rtt_s = -0.1;
  EXPECT_THROW((void)sim::run_session(v, t, s, est, cfg),
               std::invalid_argument);
}

}  // namespace
