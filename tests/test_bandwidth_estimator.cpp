// Tests for the application-level bandwidth estimators.
#include "net/bandwidth_estimator.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using namespace vbr::net;

TEST(HarmonicMean, InitialEstimateBeforeSamples) {
  const HarmonicMeanEstimator e(5, 2e6);
  EXPECT_DOUBLE_EQ(e.estimate_bps(0.0), 2e6);
}

TEST(HarmonicMean, SingleSample) {
  HarmonicMeanEstimator e(5);
  e.on_chunk_downloaded(4e6, 2.0, 2.0);  // 2 Mbps
  EXPECT_DOUBLE_EQ(e.estimate_bps(2.0), 2e6);
}

TEST(HarmonicMean, HarmonicOfKnownValues) {
  HarmonicMeanEstimator e(5);
  e.on_chunk_downloaded(1e6, 1.0, 1.0);  // 1 Mbps
  e.on_chunk_downloaded(2e6, 1.0, 2.0);  // 2 Mbps
  e.on_chunk_downloaded(4e6, 1.0, 3.0);  // 4 Mbps
  EXPECT_DOUBLE_EQ(e.estimate_bps(3.0), 3.0 / (1.0 + 0.5 + 0.25) * 1e6);
}

TEST(HarmonicMean, WindowEviction) {
  HarmonicMeanEstimator e(2);
  e.on_chunk_downloaded(1e6, 1.0, 1.0);
  e.on_chunk_downloaded(2e6, 1.0, 2.0);
  e.on_chunk_downloaded(2e6, 1.0, 3.0);  // evicts the 1 Mbps sample
  EXPECT_DOUBLE_EQ(e.estimate_bps(3.0), 2e6);
  EXPECT_EQ(e.samples().size(), 2u);
}

TEST(HarmonicMean, RobustToOutlierSpike) {
  HarmonicMeanEstimator e(5);
  for (int i = 0; i < 4; ++i) {
    e.on_chunk_downloaded(1e6, 1.0, i);
  }
  e.on_chunk_downloaded(100e6, 1.0, 5.0);  // transient spike
  EXPECT_LT(e.estimate_bps(5.0), 1.3e6);
}

TEST(HarmonicMean, ResetClearsHistory) {
  HarmonicMeanEstimator e(5, 7e5);
  e.on_chunk_downloaded(4e6, 1.0, 1.0);
  e.reset();
  EXPECT_DOUBLE_EQ(e.estimate_bps(0.0), 7e5);
}

TEST(HarmonicMean, InvalidInputsThrow) {
  EXPECT_THROW(HarmonicMeanEstimator(0), std::invalid_argument);
  EXPECT_THROW(HarmonicMeanEstimator(5, 0.0), std::invalid_argument);
  HarmonicMeanEstimator e(5);
  EXPECT_THROW(e.on_chunk_downloaded(0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(e.on_chunk_downloaded(1e6, 0.0, 1.0), std::invalid_argument);
}

TEST(Ewma, ConvergesTowardRecentThroughput) {
  EwmaEstimator e(0.5);
  e.on_chunk_downloaded(1e6, 1.0, 1.0);
  for (int i = 0; i < 20; ++i) {
    e.on_chunk_downloaded(4e6, 1.0, 2.0 + i);
  }
  EXPECT_NEAR(e.estimate_bps(25.0), 4e6, 1e4);
}

TEST(Ewma, FirstSampleSeedsDirectly) {
  EwmaEstimator e(0.1);
  e.on_chunk_downloaded(3e6, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(e.estimate_bps(1.0), 3e6);
}

TEST(Ewma, InvalidAlphaThrows) {
  EXPECT_THROW(EwmaEstimator(0.0), std::invalid_argument);
  EXPECT_THROW(EwmaEstimator(1.5), std::invalid_argument);
}

TEST(Ewma, ResetRestoresInitial) {
  EwmaEstimator e(0.3, 9e5);
  e.on_chunk_downloaded(3e6, 1.0, 1.0);
  e.reset();
  EXPECT_DOUBLE_EQ(e.estimate_bps(0.0), 9e5);
}

TEST(SlidingMean, ArithmeticMeanOfWindow) {
  SlidingMeanEstimator e(3);
  e.on_chunk_downloaded(1e6, 1.0, 1.0);
  e.on_chunk_downloaded(2e6, 1.0, 2.0);
  e.on_chunk_downloaded(3e6, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(e.estimate_bps(3.0), 2e6);
  e.on_chunk_downloaded(6e6, 1.0, 4.0);  // evicts 1 Mbps
  EXPECT_NEAR(e.estimate_bps(4.0), 11e6 / 3.0, 1.0);
}

TEST(SlidingMean, LessRobustThanHarmonic) {
  SlidingMeanEstimator sm(5);
  HarmonicMeanEstimator hm(5);
  for (int i = 0; i < 4; ++i) {
    sm.on_chunk_downloaded(1e6, 1.0, i);
    hm.on_chunk_downloaded(1e6, 1.0, i);
  }
  sm.on_chunk_downloaded(100e6, 1.0, 5.0);
  hm.on_chunk_downloaded(100e6, 1.0, 5.0);
  EXPECT_GT(sm.estimate_bps(5.0), 5.0 * hm.estimate_bps(5.0));
}

TEST(Factory, DefaultIsHarmonicMeanOf5) {
  const auto e = make_default_estimator();
  EXPECT_EQ(e->name(), "harmonic-mean");
}

}  // namespace
