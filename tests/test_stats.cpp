// Unit tests for vbr::stats.
#include "metrics/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

namespace {

using namespace vbr::stats;

TEST(Stats, MeanBasic) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, MeanSingleElement) {
  const std::vector<double> v = {7.0};
  EXPECT_DOUBLE_EQ(mean(v), 7.0);
}

TEST(Stats, MeanEmptyThrows) {
  const std::vector<double> v;
  EXPECT_THROW((void)mean(v), std::invalid_argument);
}

TEST(Stats, StddevConstantIsZero) {
  const std::vector<double> v = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(stddev(v), 0.0);
}

TEST(Stats, StddevKnownValue) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);  // classic example
}

TEST(Stats, CoefficientOfVariation) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(v), 2.0 / 5.0);
}

TEST(Stats, CoefficientOfVariationZeroMeanThrows) {
  const std::vector<double> v = {-1.0, 1.0};
  EXPECT_THROW((void)coefficient_of_variation(v), std::invalid_argument);
}

TEST(Stats, HarmonicMeanBasic) {
  const std::vector<double> v = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(harmonic_mean(v), 3.0 / (1.0 + 0.5 + 0.25));
}

TEST(Stats, HarmonicMeanDominatedBySmall) {
  // The harmonic mean is robust against single large outliers — the reason
  // the paper uses it for bandwidth estimation.
  const std::vector<double> v = {1.0, 1.0, 1.0, 1.0, 1000.0};
  EXPECT_LT(harmonic_mean(v), 1.3);
}

TEST(Stats, HarmonicMeanNonPositiveThrows) {
  const std::vector<double> v = {1.0, 0.0};
  EXPECT_THROW((void)harmonic_mean(v), std::invalid_argument);
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> v = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 20.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Stats, PercentileOutOfRangeThrows) {
  const std::vector<double> v = {1.0};
  EXPECT_THROW((void)percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(v, 101.0), std::invalid_argument);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectAnticorrelation) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Stats, PearsonSizeMismatchThrows) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0};
  EXPECT_THROW((void)pearson(x, y), std::invalid_argument);
}

TEST(Stats, PearsonZeroVarianceThrows) {
  const std::vector<double> x = {1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW((void)pearson(x, y), std::invalid_argument);
}

TEST(Stats, RanksWithTies) {
  const std::vector<double> x = {10.0, 20.0, 20.0, 30.0};
  const std::vector<double> r = ranks(x);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, SpearmanMonotonicTransformIsOne) {
  // Spearman is invariant under monotone transforms; Pearson is not.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.5 * i));
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Stats, QuartilesOfUniformGrid) {
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) {
    v.push_back(i);
  }
  const Quartiles q = quartiles(v);
  EXPECT_DOUBLE_EQ(q.q25, 25.0);
  EXPECT_DOUBLE_EQ(q.q50, 50.0);
  EXPECT_DOUBLE_EQ(q.q75, 75.0);
}

TEST(EmpiricalCdf, BasicEvaluation) {
  const EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
}

TEST(EmpiricalCdf, QuantileInverse) {
  const EmpiricalCdf cdf({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0 / 3.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
}

TEST(EmpiricalCdf, QuantileOutOfRangeThrows) {
  const EmpiricalCdf cdf({1.0});
  EXPECT_THROW((void)cdf.quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)cdf.quantile(1.5), std::invalid_argument);
}

TEST(EmpiricalCdf, EmptyThrows) {
  EXPECT_THROW(EmpiricalCdf(std::vector<double>{}), std::invalid_argument);
}

TEST(EmpiricalCdf, CurveIsMonotone) {
  std::mt19937_64 rng(1);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) {
    v.push_back(g(rng));
  }
  const EmpiricalCdf cdf(std::move(v));
  const auto curve = cdf.curve(40);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Stats, JainIndexEqualSharesIsOne) {
  const std::vector<double> v = {3.0, 3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(jain_index(v), 1.0);
}

TEST(Stats, JainIndexSingleUserDominates) {
  // One user with everything out of n: index = 1/n.
  const std::vector<double> v = {10.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(v), 0.25);
}

TEST(Stats, JainIndexKnownValue) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  // (6^2) / (3 * 14) = 36/42.
  EXPECT_DOUBLE_EQ(jain_index(v), 36.0 / 42.0);
}

TEST(Stats, JainIndexAllZeroIsOne) {
  // Degenerate but perfectly fair: nobody got anything.
  const std::vector<double> v = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(v), 1.0);
}

TEST(Stats, JainIndexEmptyThrows) {
  const std::vector<double> v;
  EXPECT_THROW((void)jain_index(v), std::invalid_argument);
}

// Property: percentile(v, p) is monotone in p for random samples.
class PercentileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotoneTest, MonotoneInP) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> u(-100.0, 100.0);
  std::vector<double> v;
  for (int i = 0; i < 64; ++i) {
    v.push_back(u(rng));
  }
  double prev = percentile(v, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = percentile(v, p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
