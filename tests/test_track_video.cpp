// Unit tests for the Track and Video data model.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "video/track.h"
#include "video/video.h"

namespace {

using namespace vbr::video;

std::vector<Chunk> uniform_chunks(std::size_t n, double size_bits,
                                  double duration_s = 2.0) {
  std::vector<Chunk> v(n);
  for (Chunk& c : v) {
    c.size_bits = size_bits;
    c.duration_s = duration_s;
  }
  return v;
}

TEST(Track, AverageAndPeakBitrate) {
  std::vector<Chunk> chunks = uniform_chunks(3, 2e6);
  chunks[1].size_bits = 6e6;  // one 3 Mbps chunk among 1 Mbps chunks
  const Track t(0, kLadder480p, Codec::kH264, chunks);
  EXPECT_DOUBLE_EQ(t.average_bitrate_bps(), 10e6 / 6.0);
  EXPECT_DOUBLE_EQ(t.peak_bitrate_bps(), 3e6);
  EXPECT_DOUBLE_EQ(t.peak_to_average(), 3e6 / (10e6 / 6.0));
}

TEST(Track, DurationAndTotals) {
  const Track t(2, kLadder720p, Codec::kH265, uniform_chunks(5, 1e6, 4.0));
  EXPECT_DOUBLE_EQ(t.duration_s(), 20.0);
  EXPECT_DOUBLE_EQ(t.total_bits(), 5e6);
  EXPECT_EQ(t.num_chunks(), 5u);
  EXPECT_EQ(t.level(), 2);
  EXPECT_EQ(t.codec(), Codec::kH265);
}

TEST(Track, EmptyChunksThrows) {
  EXPECT_THROW(Track(0, kLadder144p, Codec::kH264, {}),
               std::invalid_argument);
}

TEST(Track, NonPositiveSizeThrows) {
  std::vector<Chunk> chunks = uniform_chunks(2, 1e6);
  chunks[1].size_bits = 0.0;
  EXPECT_THROW(Track(0, kLadder144p, Codec::kH264, chunks),
               std::invalid_argument);
}

TEST(Track, NegativeLevelThrows) {
  EXPECT_THROW(Track(-1, kLadder144p, Codec::kH264, uniform_chunks(1, 1e6)),
               std::invalid_argument);
}

TEST(Track, ChunkBitratesVector) {
  std::vector<Chunk> chunks = uniform_chunks(2, 2e6);
  chunks[1].size_bits = 4e6;
  const Track t(0, kLadder360p, Codec::kH264, chunks);
  const std::vector<double> rates = t.chunk_bitrates_bps();
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 1e6);
  EXPECT_DOUBLE_EQ(rates[1], 2e6);
}

TEST(Resolution, LabelsAndPixels) {
  EXPECT_EQ(kLadder1080p.label(), "1080p");
  EXPECT_EQ(kLadder144p.label(), "144p");
  EXPECT_EQ(kLadder1080p.pixels(), 1920LL * 1080LL);
}

TEST(Resolution, StandardLadderIsAscending) {
  const auto ladder = standard_ladder();
  ASSERT_EQ(ladder.size(), 6u);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i].pixels(), ladder[i - 1].pixels());
  }
}

TEST(Codec, ToString) {
  EXPECT_EQ(to_string(Codec::kH264), "H.264");
  EXPECT_EQ(to_string(Codec::kH265), "H.265");
}

Video two_track_video(std::size_t n = 4) {
  std::vector<Track> tracks;
  tracks.emplace_back(0, kLadder144p, Codec::kH264, uniform_chunks(n, 1e6));
  tracks.emplace_back(1, kLadder240p, Codec::kH264, uniform_chunks(n, 2e6));
  return Video("test", Genre::kAnimation, std::move(tracks),
               std::vector<SceneInfo>(n));
}

TEST(Video, BasicAccessors) {
  const Video v = two_track_video();
  EXPECT_EQ(v.num_tracks(), 2u);
  EXPECT_EQ(v.num_chunks(), 4u);
  EXPECT_DOUBLE_EQ(v.chunk_duration_s(), 2.0);
  EXPECT_DOUBLE_EQ(v.duration_s(), 8.0);
  EXPECT_EQ(v.middle_track(), 1u);
  EXPECT_DOUBLE_EQ(v.chunk_size_bits(1, 0), 2e6);
}

TEST(Video, NoTracksThrows) {
  EXPECT_THROW(Video("x", Genre::kAction, {}, {}), std::invalid_argument);
}

TEST(Video, ChunkCountMismatchThrows) {
  std::vector<Track> tracks;
  tracks.emplace_back(0, kLadder144p, Codec::kH264, uniform_chunks(4, 1e6));
  tracks.emplace_back(1, kLadder240p, Codec::kH264, uniform_chunks(5, 2e6));
  EXPECT_THROW(Video("x", Genre::kAction, std::move(tracks),
                     std::vector<SceneInfo>(4)),
               std::invalid_argument);
}

TEST(Video, NonAscendingBitrateThrows) {
  std::vector<Track> tracks;
  tracks.emplace_back(0, kLadder144p, Codec::kH264, uniform_chunks(4, 2e6));
  tracks.emplace_back(1, kLadder240p, Codec::kH264, uniform_chunks(4, 1e6));
  EXPECT_THROW(Video("x", Genre::kAction, std::move(tracks),
                     std::vector<SceneInfo>(4)),
               std::invalid_argument);
}

TEST(Video, SceneInfoSizeMismatchThrows) {
  std::vector<Track> tracks;
  tracks.emplace_back(0, kLadder144p, Codec::kH264, uniform_chunks(4, 1e6));
  EXPECT_THROW(Video("x", Genre::kAction, std::move(tracks),
                     std::vector<SceneInfo>(3)),
               std::invalid_argument);
}

TEST(Video, GenreToString) {
  EXPECT_EQ(to_string(Genre::kAnimation), "animation");
  EXPECT_EQ(to_string(Genre::kSciFi), "scifi");
  EXPECT_EQ(to_string(Genre::kSports), "sports");
  EXPECT_EQ(to_string(Genre::kAnimal), "animal");
  EXPECT_EQ(to_string(Genre::kNature), "nature");
  EXPECT_EQ(to_string(Genre::kAction), "action");
}

TEST(ChunkQuality, MetricGetter) {
  ChunkQuality q;
  q.psnr_db = 40.0;
  q.ssim = 0.9;
  q.vmaf_tv = 70.0;
  q.vmaf_phone = 80.0;
  EXPECT_DOUBLE_EQ(q.get(QualityMetric::kPsnr), 40.0);
  EXPECT_DOUBLE_EQ(q.get(QualityMetric::kSsim), 0.9);
  EXPECT_DOUBLE_EQ(q.get(QualityMetric::kVmafTv), 70.0);
  EXPECT_DOUBLE_EQ(q.get(QualityMetric::kVmafPhone), 80.0);
}

TEST(Chunk, BitrateFromSizeAndDuration) {
  Chunk c;
  c.size_bits = 5e6;
  c.duration_s = 2.5;
  EXPECT_DOUBLE_EQ(c.bitrate_bps(), 2e6);
}

}  // namespace
