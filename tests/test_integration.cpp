// Integration tests: full pipeline (corpus -> traces -> schemes -> sessions
// -> QoE), checking the paper's headline qualitative results end to end.
#include <gtest/gtest.h>

#include <memory>

#include "abr/bba.h"
#include "abr/bola.h"
#include "abr/mpc.h"
#include "abr/panda_cq.h"
#include "abr/rba.h"
#include "core/cava.h"
#include "net/trace_gen.h"
#include "sim/experiment.h"
#include "video/dataset.h"
#include "video/manifest.h"

namespace {

using namespace vbr;

const video::Video& test_video() {
  static const video::Video v = video::make_video(
      "ED", video::Genre::kAnimation, video::Codec::kH264, 2.0, 2.0, 42,
      600.0);
  return v;
}

std::vector<net::Trace> lte(std::size_t n) {
  return net::make_lte_trace_set(n, 7);
}

sim::ExperimentResult run(const sim::SchemeFactory& f, std::size_t traces) {
  sim::ExperimentSpec spec;
  spec.video = &test_video();
  spec.traces = std::span<const net::Trace>();
  static std::vector<net::Trace> trace_store;
  trace_store = lte(traces);
  spec.traces = trace_store;
  spec.make_scheme = f;
  return sim::run_experiment(spec);
}

TEST(Integration, EverySchemeCompletesEverySession) {
  const std::vector<sim::SchemeFactory> factories = {
      [] { return core::make_cava_p123(); },
      [] { return std::make_unique<abr::Mpc>(abr::mpc_config()); },
      [] { return std::make_unique<abr::Mpc>(abr::robust_mpc_config()); },
      [] { return std::make_unique<abr::PandaCq>(); },
      [] { return std::make_unique<abr::Bola>(); },
      [] { return std::make_unique<abr::Bba>(); },
      [] { return std::make_unique<abr::Rba>(); },
  };
  for (const auto& f : factories) {
    const sim::ExperimentResult r = run(f, 4);
    EXPECT_EQ(r.per_trace.size(), 4u) << r.scheme_name;
    for (const auto& s : r.per_trace) {
      EXPECT_EQ(s.all_qualities.size(), test_video().num_chunks())
          << r.scheme_name;
      EXPECT_GE(s.rebuffer_s, 0.0);
      EXPECT_GT(s.data_usage_mb, 0.0);
    }
  }
}

TEST(Integration, CavaBeatsMyopicSchemesOnQ4Quality) {
  // Fig. 4 / Section 4: myopic schemes starve Q4 chunks.
  const auto cava = run([] { return core::make_cava_p123(); }, 12);
  const auto bba = run([] { return std::make_unique<abr::Bba>(); }, 12);
  const auto rba = run([] { return std::make_unique<abr::Rba>(); }, 12);
  EXPECT_GT(cava.mean_q4_quality, bba.mean_q4_quality);
  EXPECT_GT(cava.mean_q4_quality, rba.mean_q4_quality);
}

TEST(Integration, CavaRebuffersFarLessThanPredictiveSchemes) {
  // Section 6.3 (iii): CAVA cuts rebuffering by a large factor vs
  // RobustMPC and PANDA/CQ.
  const auto cava = run([] { return core::make_cava_p123(); }, 12);
  const auto rmpc =
      run([] { return std::make_unique<abr::Mpc>(abr::robust_mpc_config()); },
          12);
  const auto panda = run([] { return std::make_unique<abr::PandaCq>(); }, 12);
  EXPECT_LT(cava.mean_rebuffer_s, 0.5 * rmpc.mean_rebuffer_s);
  EXPECT_LT(cava.mean_rebuffer_s, 0.5 * panda.mean_rebuffer_s);
}

TEST(Integration, CavaQualityChangeLowest) {
  const auto cava = run([] { return core::make_cava_p123(); }, 12);
  const auto rmpc =
      run([] { return std::make_unique<abr::Mpc>(abr::robust_mpc_config()); },
          12);
  EXPECT_LT(cava.mean_quality_change, rmpc.mean_quality_change);
}

TEST(Integration, CavaDataUsageInSameBallpark) {
  // Section 6.3 (v): CAVA's data usage is comparable or slightly lower.
  const auto cava = run([] { return core::make_cava_p123(); }, 12);
  const auto rmpc =
      run([] { return std::make_unique<abr::Mpc>(abr::robust_mpc_config()); },
          12);
  EXPECT_LT(cava.mean_data_usage_mb, 1.05 * rmpc.mean_data_usage_mb);
  EXPECT_GT(cava.mean_data_usage_mb, 0.5 * rmpc.mean_data_usage_mb);
}

TEST(Integration, MpcRebuffersMoreThanRobustMpc) {
  // Section 6.3: RobustMPC trades quality for much less rebuffering.
  const auto mpc =
      run([] { return std::make_unique<abr::Mpc>(abr::mpc_config()); }, 12);
  const auto rmpc =
      run([] { return std::make_unique<abr::Mpc>(abr::robust_mpc_config()); },
          12);
  EXPECT_GT(mpc.mean_rebuffer_s, rmpc.mean_rebuffer_s);
}

TEST(Integration, ManifestRoundTripPreservesSessionBehavior) {
  // Streaming from a parsed manifest must reproduce the original decisions.
  const video::Video& v = test_video();
  const video::Video parsed =
      video::from_manifest_string(video::to_manifest_string(v));
  const auto traces = lte(2);

  for (const net::Trace& t : traces) {
    core::Cava cava1;
    core::Cava cava2;
    net::HarmonicMeanEstimator e1(5);
    net::HarmonicMeanEstimator e2(5);
    const auto a = sim::run_session(v, t, cava1, e1);
    const auto b = sim::run_session(parsed, t, cava2, e2);
    ASSERT_EQ(a.chunks.size(), b.chunks.size());
    for (std::size_t i = 0; i < a.chunks.size(); ++i) {
      EXPECT_EQ(a.chunks[i].track, b.chunks[i].track) << "chunk " << i;
    }
  }
}

TEST(Integration, AblationOrdering) {
  // Section 6.4: P2 lifts Q4 quality; P3 cuts rebuffering (weak ordering on
  // means over a small trace sample — the bench reproduces the full CDFs).
  const auto p1 = run([] { return core::make_cava_p1(); }, 16);
  const auto p12 = run([] { return core::make_cava_p12(); }, 16);
  const auto p123 = run([] { return core::make_cava_p123(); }, 16);
  EXPECT_GT(p12.mean_q4_quality, p1.mean_q4_quality);
  EXPECT_GT(p123.mean_q4_quality, p1.mean_q4_quality);
  EXPECT_LE(p123.mean_rebuffer_s, p12.mean_rebuffer_s + 0.5);
}

TEST(Integration, FccTracesRebufferLessThanLte) {
  // Section 6.3: smoother broadband profiles cut rebuffering for everyone.
  const video::Video& v = test_video();
  const auto lte_traces = net::make_lte_trace_set(10, 7);
  const auto fcc_traces = net::make_fcc_trace_set(10, 11);
  auto run_on = [&](std::span<const net::Trace> traces) {
    sim::ExperimentSpec spec;
    spec.video = &v;
    spec.traces = traces;
    spec.make_scheme = [] {
      return std::make_unique<abr::Mpc>(abr::robust_mpc_config());
    };
    spec.metric = video::QualityMetric::kVmafTv;
    return sim::run_experiment(spec);
  };
  EXPECT_LT(run_on(fcc_traces).mean_rebuffer_s,
            run_on(lte_traces).mean_rebuffer_s);
}

}  // namespace
