// Tests for the extension modules: the PIA (CBR-design) baseline, the
// content-based SI/TI classifier, CBR encoding, and the live-streaming
// session with fenced look-ahead.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/cava.h"
#include "core/complexity_classifier.h"
#include "core/pia.h"
#include "core/si_ti_classifier.h"
#include "net/bandwidth_estimator.h"
#include "net/trace_gen.h"
#include "sim/live_session.h"
#include "test_util.h"
#include "video/dataset.h"
#include "video/encoder.h"

namespace {

using namespace vbr;
using testutil::flat_trace;
using testutil::make_context;

video::Video corpus_video(double duration_s = 300.0) {
  return video::make_video("ED", video::Genre::kAnimation,
                           video::Codec::kH264, 2.0, 2.0, 42, duration_s);
}

// ---------------------------------------------------------------- PIA --

TEST(Pia, PicksTrackMatchingBudget) {
  const video::Video v = testutil::default_flat_video(20);
  core::Pia pia;
  // On target (buffer == 60): u = 1, budget = estimate.
  const abr::Decision d = pia.decide(make_context(v, 0, 60.0, 1e6));
  EXPECT_EQ(d.track, 2u);  // ladder 0.2/0.4/0.8/1.6/... -> 0.8 fits 1.0
}

TEST(Pia, BufferDeficitLowersTrack) {
  const video::Video v = testutil::default_flat_video(20);
  core::Pia pia;
  const abr::Decision low = pia.decide(make_context(v, 0, 10.0, 1.6e6));
  core::Pia pia2;
  const abr::Decision high = pia2.decide(make_context(v, 0, 60.0, 1.6e6));
  EXPECT_LT(low.track, high.track);
}

TEST(Pia, IgnoresPerChunkSizes) {
  // PIA is CBR-blind: a spiked chunk gets the same track as a flat one.
  const video::Video v = testutil::make_flat_video(
      {2e5, 4e5, 8e5, 1.6e6, 3.2e6, 6.4e6}, 20, 2.0, {{10, 3.0}});
  core::Pia a;
  core::Pia b;
  EXPECT_EQ(a.decide(make_context(v, 5, 60.0, 2e6)).track,
            b.decide(make_context(v, 10, 60.0, 2e6)).track);
}

TEST(Pia, CavaBeatsPiaOnQ4Quality) {
  // The point of the VBR-aware machinery: same control core, better Q4.
  const video::Video v = corpus_video(600.0);
  const auto traces = net::make_lte_trace_set(10, 7);
  auto q4_of = [&](abr::AbrScheme& s) {
    const core::ComplexityClassifier cls(v);
    double sum = 0.0;
    std::size_t n = 0;
    for (const net::Trace& t : traces) {
      net::HarmonicMeanEstimator est(5);
      const auto r = sim::run_session(v, t, s, est);
      for (const auto& c : r.chunks) {
        if (cls.is_complex(c.index)) {
          sum += c.quality.vmaf_phone;
          ++n;
        }
      }
    }
    return sum / static_cast<double>(n);
  };
  core::Pia pia;
  auto cava = core::make_cava_p123();
  EXPECT_GT(q4_of(*cava), q4_of(pia) + 1.0);
}

// ------------------------------------------------------ SiTiClassifier --

TEST(SiTi, AgreesBroadlyWithSizeClassifier) {
  // Section 3.1.1's claim, quantified: size quartiles recover complexity
  // quartiles with high accuracy.
  const video::Video v = corpus_video();
  const core::SiTiClassifier content(v);
  const core::ComplexityClassifier size(v);
  EXPECT_GT(content.agreement(size.classes()), 0.6);
  // Exact Q4 membership agrees even more often than full class labels.
  std::size_t q4_agree = 0;
  for (std::size_t i = 0; i < v.num_chunks(); ++i) {
    q4_agree += content.is_complex(i) == size.is_complex(i) ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(q4_agree) / v.num_chunks(), 0.85);
}

TEST(SiTi, InvalidArgumentsThrow) {
  const video::Video v = corpus_video();
  EXPECT_THROW(core::SiTiClassifier(v, 1), std::invalid_argument);
  const core::SiTiClassifier c(v);
  EXPECT_THROW((void)c.agreement({1, 2, 3}), std::invalid_argument);
}

TEST(SiTi, ClassesCoverRange) {
  const video::Video v = corpus_video();
  const core::SiTiClassifier c(v, 5);
  std::vector<std::size_t> seen(5, 0);
  for (std::size_t i = 0; i < v.num_chunks(); ++i) {
    ASSERT_LT(c.class_of(i), 5u);
    seen[c.class_of(i)]++;
  }
  for (const std::size_t n : seen) {
    EXPECT_GT(n, 0u);
  }
}

// ------------------------------------------------------------- CBR mode --

TEST(Cbr, ConstantChunkSizes) {
  const video::Video cbr = video::make_cbr_video(
      "ED-cbr", video::Genre::kAnimation, video::Codec::kH264, 2.0, 42,
      300.0);
  for (const video::Track& t : cbr.tracks()) {
    EXPECT_LT(t.peak_to_average(), 1.1) << t.level();
  }
}

TEST(Cbr, SameAverageBitrateAsVbr) {
  const video::Video cbr = video::make_cbr_video(
      "ED-cbr", video::Genre::kAnimation, video::Codec::kH264, 2.0, 42,
      300.0);
  const video::Video vbr = corpus_video();
  for (std::size_t l = 0; l < cbr.num_tracks(); ++l) {
    EXPECT_NEAR(cbr.track(l).average_bitrate_bps(),
                vbr.track(l).average_bitrate_bps(),
                0.02 * vbr.track(l).average_bitrate_bps());
  }
}

TEST(Cbr, VbrHasBetterWorstCaseQualityAtSameBits) {
  // The intro's motivation: at the same average bitrate, VBR lifts the
  // quality floor (complex scenes) relative to CBR.
  const video::Video cbr = video::make_cbr_video(
      "ED-cbr", video::Genre::kAnimation, video::Codec::kH264, 2.0, 42,
      300.0);
  const video::Video vbr = corpus_video();
  const std::size_t mid = vbr.middle_track();
  double cbr_min = 100.0;
  double vbr_min = 100.0;
  for (std::size_t i = 0; i < vbr.num_chunks(); ++i) {
    cbr_min = std::min(cbr_min, cbr.track(mid).chunk(i).quality.vmaf_phone);
    vbr_min = std::min(vbr_min, vbr.track(mid).chunk(i).quality.vmaf_phone);
  }
  EXPECT_GT(vbr_min, cbr_min + 3.0);
}

// ------------------------------------------------------- Live sessions --

TEST(Live, ConfigValidation) {
  const video::Video v = corpus_video();
  const net::Trace t = flat_trace(3e6);
  auto cava = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  sim::LiveSessionConfig cfg;
  cfg.join_latency_s = 1.0;  // below chunk + encoder delay
  EXPECT_THROW((void)sim::run_live_session(v, t, *cava, est, cfg),
               std::invalid_argument);
  cfg = {};
  cfg.encoder_delay_s = -1.0;
  EXPECT_THROW((void)sim::run_live_session(v, t, *cava, est, cfg),
               std::invalid_argument);
}

TEST(Live, DownloadsRespectProductionTimes) {
  const video::Video v = corpus_video();
  const net::Trace t = flat_trace(50e6);
  auto cava = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  const sim::LiveSessionConfig cfg;
  const auto r = sim::run_live_session(v, t, *cava, est, cfg);
  ASSERT_EQ(r.session.chunks.size(), v.num_chunks());
  for (const auto& c : r.session.chunks) {
    const double produced =
        static_cast<double>(c.index + 1) * v.chunk_duration_s() +
        cfg.encoder_delay_s;
    EXPECT_GE(c.download_start_s + 1e-9, produced) << c.index;
  }
}

TEST(Live, FastLinkRidesTheEdge) {
  // With a fast link the player drains its join latency and then waits for
  // production: substantial edge wait, bounded buffer.
  const video::Video v = corpus_video();
  const net::Trace t = flat_trace(50e6);
  auto cava = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  const auto r = sim::run_live_session(v, t, *cava, est);
  EXPECT_GT(r.edge_wait_s, 100.0);
  for (const auto& c : r.session.chunks) {
    EXPECT_LE(c.buffer_after_s, sim::LiveSessionConfig{}.join_latency_s + 1.0);
  }
}

TEST(Live, LatencyBoundedOnGoodLink) {
  const video::Video v = corpus_video();
  const net::Trace t = flat_trace(20e6);
  auto cava = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  const sim::LiveSessionConfig cfg;
  const auto r = sim::run_live_session(v, t, *cava, est, cfg);
  EXPECT_GT(r.mean_latency_s, 0.0);
  // Without stalls, latency stays near join latency + startup.
  EXPECT_LT(r.mean_latency_s,
            cfg.join_latency_s + cfg.startup_latency_s + 10.0);
  EXPECT_LE(r.mean_latency_s, r.max_latency_s);
}

TEST(Live, StallsIncreaseLatency) {
  const video::Video v = corpus_video();
  auto cava1 = core::make_cava_p123();
  auto cava2 = core::make_cava_p123();
  net::HarmonicMeanEstimator e1(5);
  net::HarmonicMeanEstimator e2(5);
  const auto good =
      sim::run_live_session(v, flat_trace(20e6), *cava1, e1);
  // Slower than even the lowest track's average bitrate: stalls are
  // unavoidable and the playhead drifts behind the live edge.
  const auto bad =
      sim::run_live_session(v, flat_trace(1.0e5), *cava2, e2);
  EXPECT_GT(bad.session.total_rebuffer_s, good.session.total_rebuffer_s);
  EXPECT_GT(bad.max_latency_s, good.max_latency_s);
}

TEST(Live, SchemesSeeTruncatedManifest) {
  // A probe scheme records the visibility fence it was given.
  class Probe final : public abr::AbrScheme {
   public:
    [[nodiscard]] abr::Decision decide(
        const abr::StreamContext& ctx) override {
      max_visible = std::max(max_visible, ctx.lookahead_limit());
      min_margin = std::min(
          min_margin, ctx.lookahead_limit() - (ctx.next_chunk + 1));
      return abr::Decision{.track = 0};
    }
    [[nodiscard]] std::string name() const override { return "probe"; }
    std::size_t max_visible = 0;
    std::size_t min_margin = SIZE_MAX;
  };
  const video::Video v = corpus_video();
  const net::Trace t = flat_trace(5e6);
  Probe probe;
  net::HarmonicMeanEstimator est(5);
  const sim::LiveSessionConfig cfg;
  (void)sim::run_live_session(v, t, probe, est, cfg);
  // The fence never exceeds the video and, at the live edge, shrinks to a
  // handful of chunks (around join latency worth).
  EXPECT_LE(probe.max_visible, v.num_chunks());
  EXPECT_LE(probe.min_margin,
            static_cast<std::size_t>(cfg.join_latency_s /
                                     v.chunk_duration_s()) +
                2);
}

TEST(Live, VodContextSeesWholeVideo) {
  const video::Video v = corpus_video();
  abr::StreamContext ctx;
  ctx.video = &v;
  EXPECT_EQ(ctx.lookahead_limit(), v.num_chunks());
  ctx.visible_chunks = 10;
  EXPECT_EQ(ctx.lookahead_limit(), 10u);
}

}  // namespace
