// Fault-injection layer: FaultModel determinism, retry/backoff/downgrade/
// resume semantics, graceful degradation (skips instead of aborts), and the
// acceptance criteria of the robustness milestone — the zero-fault path is
// a strict no-op, and identical seeds reproduce identical sessions.
#include <gtest/gtest.h>

#include <stdexcept>

#include "abr/scheme.h"
#include "core/cava.h"
#include "net/bandwidth_estimator.h"
#include "net/fault_model.h"
#include "sim/experiment.h"
#include "sim/live_session.h"
#include "sim/multi_client.h"
#include "sim/session.h"
#include "test_util.h"

namespace {

using namespace vbr;
using testutil::default_flat_video;
using testutil::flat_trace;

sim::SessionConfig quick_config() {
  sim::SessionConfig cfg;
  cfg.startup_latency_s = 4.0;
  cfg.max_buffer_s = 30.0;
  return cfg;
}

net::FaultConfig all_kinds(double per_kind, std::uint64_t seed = 99) {
  net::FaultConfig fc;
  fc.connect_failure_prob = per_kind;
  fc.mid_drop_prob = per_kind;
  fc.timeout_prob = per_kind;
  fc.seed = seed;
  return fc;
}

// ---------------------------------------------------------------- FaultModel

TEST(FaultModel, DisabledByDefault) {
  const net::FaultModel m;
  EXPECT_FALSE(m.enabled());
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(m.outcome(i, 0).kind, net::FaultKind::kNone);
  }
}

TEST(FaultModel, ValidatesConfig) {
  net::FaultConfig fc;
  fc.connect_failure_prob = -0.1;
  EXPECT_THROW(net::FaultModel{fc}, std::invalid_argument);
  fc = net::FaultConfig{};
  fc.mid_drop_prob = 1.5;
  EXPECT_THROW(net::FaultModel{fc}, std::invalid_argument);
  fc = net::FaultConfig{};
  fc.connect_failure_prob = 0.6;
  fc.timeout_prob = 0.6;
  EXPECT_THROW(net::FaultModel{fc}, std::invalid_argument);
  fc = all_kinds(0.1);
  fc.timeout_s = 0.0;
  EXPECT_THROW(net::FaultModel{fc}, std::invalid_argument);
}

TEST(FaultModel, DeterministicAndOrderIndependent) {
  const net::FaultModel a(all_kinds(0.1, 7));
  const net::FaultModel b(all_kinds(0.1, 7));
  // Query b in reverse order: outcomes are keyed, not sequential.
  for (std::size_t i = 0; i < 200; ++i) {
    const std::size_t j = 199 - i;
    const net::FaultOutcome oa = a.outcome(j, 1);
    const net::FaultOutcome ob = b.outcome(j, 1);
    EXPECT_EQ(oa.kind, ob.kind);
    EXPECT_DOUBLE_EQ(oa.drop_fraction, ob.drop_fraction);
  }
}

TEST(FaultModel, SeedAndStreamDecorrelate) {
  const net::FaultModel a(all_kinds(0.2, 7));
  const net::FaultModel b(all_kinds(0.2, 8));
  const net::FaultModel c(all_kinds(0.2, 7), /*stream=*/1);
  int differ_seed = 0;
  int differ_stream = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    differ_seed += a.outcome(i, 0).kind != b.outcome(i, 0).kind;
    differ_stream += a.outcome(i, 0).kind != c.outcome(i, 0).kind;
  }
  EXPECT_GT(differ_seed, 0);
  EXPECT_GT(differ_stream, 0);
}

TEST(FaultModel, RatesApproximatelyMatchConfig) {
  const net::FaultModel m(all_kinds(0.1, 3));
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    switch (m.outcome(static_cast<std::size_t>(i), 0).kind) {
      case net::FaultKind::kConnectFail: ++counts[0]; break;
      case net::FaultKind::kMidDrop: ++counts[1]; break;
      case net::FaultKind::kTimeout: ++counts[2]; break;
      case net::FaultKind::kNone: break;
    }
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(FaultModel, DropFractionStaysInsideOpenUnitInterval) {
  net::FaultConfig fc;
  fc.mid_drop_prob = 1.0;
  const net::FaultModel m(fc);
  for (std::size_t i = 0; i < 1000; ++i) {
    const net::FaultOutcome o = m.outcome(i, 0);
    ASSERT_EQ(o.kind, net::FaultKind::kMidDrop);
    EXPECT_GT(o.drop_fraction, 0.0);
    EXPECT_LT(o.drop_fraction, 1.0);
  }
}

TEST(FaultModel, JitterMultiplierBoundedAndDeterministic) {
  const net::FaultModel m(all_kinds(0.1, 5));
  for (std::size_t i = 0; i < 100; ++i) {
    const double j = m.jitter_multiplier(i, 0, 0.25);
    EXPECT_GE(j, 0.75);
    EXPECT_LE(j, 1.25);
    EXPECT_DOUBLE_EQ(j, m.jitter_multiplier(i, 0, 0.25));
  }
  EXPECT_DOUBLE_EQ(m.jitter_multiplier(3, 0, 0.0), 1.0);
}

// ------------------------------------------------------- zero-fault no-op

TEST(FaultInjection, ZeroFaultPathIsBitIdentical) {
  const video::Video v = default_flat_video(40);
  const net::Trace t = flat_trace(3e6);
  auto cava = core::make_cava_p123();

  net::HarmonicMeanEstimator e1(5);
  const sim::SessionResult base =
      sim::run_session(v, t, *cava, e1, quick_config());

  // Same run with fault probabilities all 0 but every retry knob set to
  // non-default values: the retry machinery must never engage.
  sim::SessionConfig cfg = quick_config();
  cfg.retry.max_attempts = 7;
  cfg.retry.backoff_base_s = 3.0;
  cfg.retry.resume_partial = true;
  cfg.fault.seed = 12345;
  net::HarmonicMeanEstimator e2(5);
  const sim::SessionResult same = sim::run_session(v, t, *cava, e2, cfg);

  ASSERT_EQ(base.chunks.size(), same.chunks.size());
  EXPECT_EQ(base.total_rebuffer_s, same.total_rebuffer_s);
  EXPECT_EQ(base.total_bits, same.total_bits);
  EXPECT_EQ(base.startup_delay_s, same.startup_delay_s);
  EXPECT_EQ(base.end_time_s, same.end_time_s);
  for (std::size_t i = 0; i < base.chunks.size(); ++i) {
    EXPECT_EQ(base.chunks[i].track, same.chunks[i].track);
    EXPECT_EQ(base.chunks[i].download_s, same.chunks[i].download_s);
    EXPECT_EQ(base.chunks[i].stall_s, same.chunks[i].stall_s);
    EXPECT_EQ(base.chunks[i].buffer_after_s, same.chunks[i].buffer_after_s);
    EXPECT_EQ(same.chunks[i].attempts, 1u);
    EXPECT_FALSE(same.chunks[i].skipped);
  }
}

// ---------------------------------------------------------- determinism

TEST(FaultInjection, IdenticalSeedsReproduceIdenticalSessions) {
  const video::Video v = default_flat_video(50);
  const net::Trace t = flat_trace(2e6);
  sim::SessionConfig cfg = quick_config();
  cfg.fault = all_kinds(0.05, 2024);
  cfg.retry.resume_partial = true;

  auto run_once = [&] {
    auto cava = core::make_cava_p123();
    net::HarmonicMeanEstimator est(5);
    return sim::run_session(v, t, *cava, est, cfg);
  };
  const sim::SessionResult a = run_once();
  const sim::SessionResult b = run_once();

  ASSERT_EQ(a.chunks.size(), b.chunks.size());
  EXPECT_EQ(a.total_rebuffer_s, b.total_rebuffer_s);
  EXPECT_EQ(a.total_bits, b.total_bits);
  EXPECT_EQ(a.end_time_s, b.end_time_s);
  for (std::size_t i = 0; i < a.chunks.size(); ++i) {
    EXPECT_EQ(a.chunks[i].track, b.chunks[i].track);
    EXPECT_EQ(a.chunks[i].attempts, b.chunks[i].attempts);
    EXPECT_EQ(a.chunks[i].skipped, b.chunks[i].skipped);
    EXPECT_EQ(a.chunks[i].download_s, b.chunks[i].download_s);
    EXPECT_EQ(a.chunks[i].backoff_wait_s, b.chunks[i].backoff_wait_s);
    EXPECT_EQ(a.chunks[i].wasted_bits, b.chunks[i].wasted_bits);
    EXPECT_EQ(a.chunks[i].resumed_bits, b.chunks[i].resumed_bits);
  }

  // A different seed must produce a different fault pattern somewhere.
  cfg.fault.seed = 2025;
  const sim::SessionResult c = run_once();
  bool any_diff = c.total_rebuffer_s != a.total_rebuffer_s ||
                  c.total_bits != a.total_bits;
  for (std::size_t i = 0; !any_diff && i < a.chunks.size(); ++i) {
    any_diff = a.chunks[i].attempts != c.chunks[i].attempts;
  }
  EXPECT_TRUE(any_diff);
}

// ------------------------------------------------- degradation semantics

TEST(FaultInjection, RetryExhaustionSkipsInsteadOfAborting) {
  const video::Video v = default_flat_video(10);
  const net::Trace t = flat_trace(5e6);
  sim::SessionConfig cfg = quick_config();
  cfg.fault.connect_failure_prob = 1.0;  // every attempt hard-fails
  cfg.retry.max_attempts = 2;
  abr::FixedTrackScheme scheme(2);
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r = sim::run_session(v, t, scheme, est, cfg);

  ASSERT_EQ(r.chunks.size(), 10u);
  for (const sim::ChunkRecord& c : r.chunks) {
    EXPECT_TRUE(c.skipped);
    EXPECT_EQ(c.attempts, 2u);
    EXPECT_EQ(c.connect_failures, 2u);
    EXPECT_DOUBLE_EQ(c.size_bits, 0.0);
    EXPECT_GT(c.backoff_wait_s, 0.0);
  }
  EXPECT_DOUBLE_EQ(r.total_bits, 0.0);
  // Each chunk burns 2 connect delays (1 s each) plus one backoff.
  EXPECT_GT(r.end_time_s, 10 * 2.0);
  // Nothing was ever played, so nothing reaches the QoE layer.
  EXPECT_TRUE(r.to_played_chunks(video::QualityMetric::kVmafPhone,
                                 std::vector<std::size_t>(10, 0))
                  .empty());
}

TEST(FaultInjection, TimeoutChargesPlayerTimeoutAndDrainsBuffer) {
  const video::Video v = default_flat_video(6);
  const net::Trace t = flat_trace(5e6);
  sim::SessionConfig cfg = quick_config();
  cfg.fault.timeout_prob = 1.0;
  cfg.retry.max_attempts = 1;  // no retries, no backoff
  cfg.retry.request_timeout_s = 2.5;
  abr::FixedTrackScheme scheme(0);
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r = sim::run_session(v, t, scheme, est, cfg);
  for (const sim::ChunkRecord& c : r.chunks) {
    EXPECT_TRUE(c.skipped);
    EXPECT_EQ(c.timeouts, 1u);
  }
  // 6 chunks x 2.5 s timeout each, nothing else.
  EXPECT_NEAR(r.end_time_s, 6 * 2.5, 1e-9);
}

TEST(FaultInjection, MidDropWastesBytesWithoutResume) {
  const video::Video v = default_flat_video(8);
  const net::Trace t = flat_trace(5e6);
  sim::SessionConfig cfg = quick_config();
  cfg.fault.mid_drop_prob = 0.5;
  cfg.fault.seed = 11;
  cfg.retry.max_attempts = 4;
  cfg.retry.downgrade_on_failure = false;
  abr::FixedTrackScheme scheme(2);
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r = sim::run_session(v, t, scheme, est, cfg);

  const metrics::FaultSummary fs = r.fault_summary();
  ASSERT_GT(fs.mid_drops, 0u);
  EXPECT_GT(fs.wasted_mb, 0.0);
  EXPECT_DOUBLE_EQ(fs.resumed_mb, 0.0);
  // Wasted bytes count toward data usage: total_bits exceeds the delivered
  // chunk bytes alone.
  double delivered = 0.0;
  for (const sim::ChunkRecord& c : r.chunks) {
    delivered += c.size_bits;
  }
  EXPECT_GT(r.total_bits, delivered);
}

TEST(FaultInjection, ResumeSalvagesPartialBytes) {
  const video::Video v = default_flat_video(8);
  const net::Trace t = flat_trace(5e6);
  sim::SessionConfig cfg = quick_config();
  cfg.fault.mid_drop_prob = 0.5;
  cfg.fault.seed = 11;
  cfg.retry.max_attempts = 4;
  cfg.retry.downgrade_on_failure = false;
  abr::FixedTrackScheme scheme(2);

  net::HarmonicMeanEstimator e1(5);
  const sim::SessionResult waste = sim::run_session(v, t, scheme, e1, cfg);
  cfg.retry.resume_partial = true;
  net::HarmonicMeanEstimator e2(5);
  const sim::SessionResult resume = sim::run_session(v, t, scheme, e2, cfg);

  EXPECT_GT(resume.fault_summary().resumed_mb, 0.0);
  // Same fault pattern, but resumed bytes are not re-downloaded.
  EXPECT_LT(resume.total_bits, waste.total_bits);
}

TEST(FaultInjection, RepeatedFailureDowngradesToLowestTrack) {
  const video::Video v = default_flat_video(12);
  const net::Trace t = flat_trace(5e6);
  sim::SessionConfig cfg = quick_config();
  cfg.fault.connect_failure_prob = 0.6;
  cfg.fault.seed = 4;
  cfg.retry.max_attempts = 6;
  cfg.retry.downgrade_after = 2;
  abr::FixedTrackScheme scheme(4);
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r = sim::run_session(v, t, scheme, est, cfg);

  bool any_downgraded = false;
  for (const sim::ChunkRecord& c : r.chunks) {
    if (c.downgraded) {
      any_downgraded = true;
      EXPECT_EQ(c.track, 0u);
      EXPECT_GE(c.attempts, 3u);  // two failures before the downgrade
    }
  }
  EXPECT_TRUE(any_downgraded);
}

TEST(FaultInjection, RetriesDrainBufferAndChargeRebuffering) {
  const video::Video v = default_flat_video(30);
  const net::Trace t = flat_trace(8e6);
  abr::FixedTrackScheme scheme(1);

  net::HarmonicMeanEstimator e1(5);
  const sim::SessionResult clean =
      sim::run_session(v, t, scheme, e1, quick_config());
  EXPECT_DOUBLE_EQ(clean.total_rebuffer_s, 0.0);

  sim::SessionConfig cfg = quick_config();
  cfg.fault = all_kinds(0.15, 21);
  net::HarmonicMeanEstimator e2(5);
  const sim::SessionResult faulty = sim::run_session(v, t, scheme, e2, cfg);
  // Fault time (connect delays, timeouts, backoff) shows up as wall-clock
  // and, once the buffer runs dry, as rebuffering.
  EXPECT_GT(faulty.end_time_s, clean.end_time_s);
  EXPECT_GE(faulty.total_rebuffer_s, clean.total_rebuffer_s);
}

TEST(FaultInjection, FaultSummaryMatchesChunkRecords) {
  const video::Video v = default_flat_video(25);
  const net::Trace t = flat_trace(3e6);
  sim::SessionConfig cfg = quick_config();
  cfg.fault = all_kinds(0.1, 77);
  auto cava = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r = sim::run_session(v, t, *cava, est, cfg);

  const metrics::FaultSummary fs = r.fault_summary();
  EXPECT_EQ(fs.chunks, 25u);
  std::size_t attempts = 0;
  std::size_t faults = 0;
  for (const sim::ChunkRecord& c : r.chunks) {
    attempts += c.attempts;
    faults += c.connect_failures + c.mid_drops + c.timeouts;
  }
  EXPECT_EQ(fs.attempts, attempts);
  EXPECT_EQ(fs.connect_failures + fs.mid_drops + fs.timeouts, faults);
  EXPECT_GE(fs.attempts, fs.chunks - fs.skipped);
  const std::string csv = metrics::fault_csv_string("CAVA", {&fs, 1});
  EXPECT_NE(csv.find("label,trace_index,chunks,skipped"), std::string::npos);
  EXPECT_NE(csv.find("CAVA,0,25,"), std::string::npos);
}

// ------------------------------------------------------- other harnesses

TEST(FaultInjection, MultiClientSurvivesFaultsAndStaysDeterministic) {
  const video::Video v = default_flat_video(20);
  const net::Trace t = flat_trace(6e6);
  sim::SessionConfig cfg;
  cfg.startup_latency_s = 4.0;
  cfg.fault = all_kinds(0.08, 5);

  auto make_clients = [&] {
    std::vector<sim::ClientSpec> clients;
    for (int i = 0; i < 3; ++i) {
      sim::ClientSpec spec;
      spec.video = &v;
      spec.scheme = std::make_unique<abr::FixedTrackScheme>(2);
      spec.estimator = std::make_unique<net::HarmonicMeanEstimator>(5);
      clients.push_back(std::move(spec));
    }
    return clients;
  };
  const sim::MultiClientResult a =
      sim::run_multi_client(t, make_clients(), cfg);
  const sim::MultiClientResult b =
      sim::run_multi_client(t, make_clients(), cfg);

  ASSERT_EQ(a.sessions.size(), 3u);
  std::size_t total_faults = 0;
  for (std::size_t ci = 0; ci < 3; ++ci) {
    const sim::SessionResult& sa = a.sessions[ci];
    ASSERT_EQ(sa.chunks.size(), 20u);
    const metrics::FaultSummary fs = sa.fault_summary();
    total_faults += fs.connect_failures + fs.mid_drops + fs.timeouts;
    // Deterministic replay.
    EXPECT_EQ(sa.total_bits, b.sessions[ci].total_bits);
    EXPECT_EQ(sa.total_rebuffer_s, b.sessions[ci].total_rebuffer_s);
    // Per-client fault streams differ: at least sessions complete with
    // consistent accounting.
    for (const sim::ChunkRecord& c : sa.chunks) {
      if (!c.skipped) {
        EXPECT_GT(c.size_bits, 0.0);
      }
    }
  }
  EXPECT_GT(total_faults, 0u);
}

TEST(FaultInjection, MultiClientZeroFaultMatchesSingleSession) {
  const video::Video v = default_flat_video(15);
  const net::Trace t = flat_trace(4e6);
  sim::SessionConfig cfg;
  cfg.startup_latency_s = 4.0;
  cfg.retry.max_attempts = 9;  // must be ignored with faults off

  std::vector<sim::ClientSpec> clients;
  sim::ClientSpec spec;
  spec.video = &v;
  spec.scheme = std::make_unique<abr::FixedTrackScheme>(3);
  spec.estimator = std::make_unique<net::HarmonicMeanEstimator>(5);
  clients.push_back(std::move(spec));
  const sim::MultiClientResult mc =
      sim::run_multi_client(t, std::move(clients), cfg);

  abr::FixedTrackScheme scheme(3);
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult single = sim::run_session(v, t, scheme, est, cfg);

  ASSERT_EQ(mc.sessions[0].chunks.size(), single.chunks.size());
  EXPECT_NEAR(mc.sessions[0].total_bits, single.total_bits, 1.0);
  EXPECT_NEAR(mc.sessions[0].total_rebuffer_s, single.total_rebuffer_s,
              1e-3);
}

TEST(FaultInjection, LiveSessionSurvivesFaults) {
  const video::Video v = default_flat_video(40);
  const net::Trace t = flat_trace(6e6);
  sim::LiveSessionConfig cfg;
  cfg.startup_latency_s = 4.0;
  cfg.fault = all_kinds(0.1, 13);
  cfg.retry.max_attempts = 2;
  auto cava = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  const sim::LiveSessionResult r =
      sim::run_live_session(v, t, *cava, est, cfg);

  ASSERT_EQ(r.session.chunks.size(), 40u);
  const metrics::FaultSummary fs = r.session.fault_summary();
  EXPECT_GT(fs.connect_failures + fs.mid_drops + fs.timeouts, 0u);
  EXPECT_GE(r.mean_latency_s, 0.0);
  EXPECT_GE(r.max_latency_s, r.mean_latency_s - 1e-9);
}

// ------------------------------------------------------------- experiment

TEST(FaultInjection, ExperimentAggregatesFaultStats) {
  const video::Video v = default_flat_video(20);
  const std::vector<net::Trace> traces = {flat_trace(3e6), flat_trace(5e6)};
  sim::ExperimentSpec spec;
  spec.video = &v;
  spec.traces = traces;
  spec.make_scheme = [] {
    return std::make_unique<abr::FixedTrackScheme>(2);
  };
  spec.session.startup_latency_s = 4.0;
  spec.session.fault = all_kinds(0.1, 31);
  const sim::ExperimentResult r = sim::run_experiment(spec);

  ASSERT_EQ(r.per_trace_faults.size(), 2u);
  EXPECT_GT(r.mean_attempts_per_chunk, 1.0);
  EXPECT_GE(r.mean_skipped_pct, 0.0);

  // Fault injection off: attempts collapse to exactly one per chunk.
  spec.session.fault = net::FaultConfig{};
  const sim::ExperimentResult clean = sim::run_experiment(spec);
  EXPECT_DOUBLE_EQ(clean.mean_attempts_per_chunk, 1.0);
  EXPECT_DOUBLE_EQ(clean.mean_skipped_pct, 0.0);
}

TEST(FaultInjection, ExperimentSurvivesTotalSkip) {
  const video::Video v = default_flat_video(10);
  const std::vector<net::Trace> traces = {flat_trace(3e6)};
  sim::ExperimentSpec spec;
  spec.video = &v;
  spec.traces = traces;
  spec.make_scheme = [] {
    return std::make_unique<abr::FixedTrackScheme>(0);
  };
  spec.session.startup_latency_s = 4.0;
  spec.session.fault.connect_failure_prob = 1.0;
  spec.session.retry.max_attempts = 2;
  const sim::ExperimentResult r = sim::run_experiment(spec);
  EXPECT_DOUBLE_EQ(r.mean_skipped_pct, 100.0);
  EXPECT_DOUBLE_EQ(r.per_trace[0].low_quality_pct, 100.0);
}

// ------------------------------------------------------------ validation

TEST(FaultInjection, RetryPolicyValidation) {
  const video::Video v = default_flat_video(4);
  const net::Trace t = flat_trace(5e6);
  abr::FixedTrackScheme scheme(0);
  net::HarmonicMeanEstimator est(5);
  sim::SessionConfig cfg = quick_config();
  cfg.fault.timeout_prob = 0.1;
  cfg.retry.max_attempts = 0;
  EXPECT_THROW((void)sim::run_session(v, t, scheme, est, cfg),
               std::invalid_argument);
  cfg.retry = sim::RetryPolicy{};
  cfg.retry.backoff_jitter = 1.0;
  EXPECT_THROW((void)sim::run_session(v, t, scheme, est, cfg),
               std::invalid_argument);
  cfg.retry = sim::RetryPolicy{};
  cfg.retry.backoff_factor = 0.5;
  EXPECT_THROW((void)sim::run_session(v, t, scheme, est, cfg),
               std::invalid_argument);
  // With faults disabled the same bad retry policy is never consulted.
  cfg.fault = net::FaultConfig{};
  EXPECT_NO_THROW((void)sim::run_session(v, t, scheme, est, cfg));
}

}  // namespace
