// Tests for the playout buffer dynamics.
#include "sim/buffer.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using vbr::sim::PlayoutBuffer;

TEST(Buffer, StartsEmptyNotPlaying) {
  const PlayoutBuffer b(100.0);
  EXPECT_DOUBLE_EQ(b.level_s(), 0.0);
  EXPECT_FALSE(b.playing());
  EXPECT_DOUBLE_EQ(b.capacity_s(), 100.0);
}

TEST(Buffer, InvalidCapacityThrows) {
  EXPECT_THROW(PlayoutBuffer(0.0), std::invalid_argument);
  EXPECT_THROW(PlayoutBuffer(-5.0), std::invalid_argument);
}

TEST(Buffer, NoDrainBeforePlayback) {
  PlayoutBuffer b(100.0);
  b.add_chunk(4.0);
  EXPECT_DOUBLE_EQ(b.elapse(10.0), 0.0);  // no stall before playback
  EXPECT_DOUBLE_EQ(b.level_s(), 4.0);     // nothing drained
}

TEST(Buffer, DrainsWhilePlaying) {
  PlayoutBuffer b(100.0);
  b.add_chunk(4.0);
  b.start_playback();
  EXPECT_DOUBLE_EQ(b.elapse(3.0), 0.0);
  EXPECT_DOUBLE_EQ(b.level_s(), 1.0);
}

TEST(Buffer, StallWhenEmpty) {
  PlayoutBuffer b(100.0);
  b.add_chunk(2.0);
  b.start_playback();
  EXPECT_DOUBLE_EQ(b.elapse(5.0), 3.0);  // 2 s played, 3 s stalled
  EXPECT_DOUBLE_EQ(b.level_s(), 0.0);
}

TEST(Buffer, ExactDrainNoStall) {
  PlayoutBuffer b(100.0);
  b.add_chunk(5.0);
  b.start_playback();
  EXPECT_DOUBLE_EQ(b.elapse(5.0), 0.0);
  EXPECT_DOUBLE_EQ(b.level_s(), 0.0);
}

TEST(Buffer, NegativeElapseThrows) {
  PlayoutBuffer b(10.0);
  EXPECT_THROW((void)b.elapse(-1.0), std::invalid_argument);
}

TEST(Buffer, AddChunkValidation) {
  PlayoutBuffer b(10.0);
  EXPECT_THROW(b.add_chunk(0.0), std::invalid_argument);
  EXPECT_THROW(b.add_chunk(-2.0), std::invalid_argument);
}

TEST(Buffer, OverflowThrows) {
  PlayoutBuffer b(10.0);
  b.add_chunk(6.0);
  EXPECT_THROW(b.add_chunk(6.0), std::logic_error);
}

TEST(Buffer, TimeUntilRoom) {
  PlayoutBuffer b(10.0);
  b.add_chunk(8.0);
  EXPECT_DOUBLE_EQ(b.time_until_room_for(2.0), 0.0);
  EXPECT_DOUBLE_EQ(b.time_until_room_for(4.0), 2.0);
}

TEST(Buffer, FillDrainCycle) {
  PlayoutBuffer b(10.0);
  b.start_playback();
  b.add_chunk(2.0);
  b.add_chunk(2.0);
  EXPECT_DOUBLE_EQ(b.elapse(1.0), 0.0);
  b.add_chunk(2.0);
  EXPECT_DOUBLE_EQ(b.level_s(), 5.0);
  EXPECT_DOUBLE_EQ(b.elapse(7.0), 2.0);  // 5 s content, 2 s stall
}

}  // namespace
