// Tests for the rate-distortion quality model.
#include "video/quality_model.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using namespace vbr::video;

TEST(QualityModel, RateScoreMonotoneInAllocation) {
  double prev = 0.0;
  for (double w = 0.1; w < 4.0; w += 0.1) {
    const double s = rate_score(w, 1.0);
    EXPECT_GT(s, prev);
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
    prev = s;
  }
}

TEST(QualityModel, RateScoreMonotoneDecreasingInNeed) {
  double prev = 1.0;
  for (double n = 0.2; n < 4.0; n += 0.2) {
    const double s = rate_score(1.0, n);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST(QualityModel, RateScoreInvalidInputsThrow) {
  EXPECT_THROW((void)rate_score(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rate_score(1.0, -1.0), std::invalid_argument);
}

TEST(QualityModel, CrfWeightMonotone) {
  double prev = 0.0;
  for (double c = 0.05; c <= 1.0; c += 0.05) {
    const double w = crf_weight(c);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST(QualityModel, NeedWeightGrowsFasterThanCrfWeight) {
  // The core Section 3.1.2 mechanism: the allocation/need ratio falls with
  // complexity, so complex chunks are relatively under-provisioned.
  const double ratio_simple = crf_weight(0.2) / need_weight(0.2);
  const double ratio_complex = crf_weight(0.9) / need_weight(0.9);
  EXPECT_GT(ratio_simple, 1.0);
  EXPECT_LT(ratio_complex, ratio_simple);
}

TEST(QualityModel, ComplexityOutOfRangeThrows) {
  EXPECT_THROW((void)crf_weight(0.0), std::invalid_argument);
  EXPECT_THROW((void)crf_weight(1.5), std::invalid_argument);
  EXPECT_THROW((void)need_weight(-0.1), std::invalid_argument);
}

TEST(QualityModel, VmafCapsIncreaseWithResolution) {
  const auto ladder = standard_ladder();
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(vmaf_cap_tv(ladder[i]), vmaf_cap_tv(ladder[i - 1]));
    EXPECT_GT(vmaf_cap_phone(ladder[i]), vmaf_cap_phone(ladder[i - 1]));
  }
}

TEST(QualityModel, PhoneModelMoreForgivingThanTv) {
  // Small screens mask upscaling artifacts (except at the top rung where
  // both approach the maximum).
  for (const Resolution& r : standard_ladder()) {
    EXPECT_GE(vmaf_cap_phone(r), vmaf_cap_tv(r));
  }
  EXPECT_GT(vmaf_cap_phone(kLadder480p) - vmaf_cap_tv(kLadder480p), 5.0);
}

TEST(QualityModel, ScoreChunkAllMetricsInRange) {
  const ChunkQuality q = score_chunk(1.0, 1.0, 0.5, kLadder480p);
  EXPECT_GT(q.vmaf_tv, 0.0);
  EXPECT_LE(q.vmaf_tv, 100.0);
  EXPECT_GT(q.vmaf_phone, 0.0);
  EXPECT_LE(q.vmaf_phone, 100.0);
  EXPECT_GE(q.psnr_db, 20.0);
  EXPECT_LE(q.psnr_db, 55.0);
  EXPECT_GT(q.ssim, 0.0);
  EXPECT_LE(q.ssim, 1.0);
}

TEST(QualityModel, AllMetricsAgreeOnOrdering) {
  // Well-provisioned simple content must outscore starved complex content
  // under every metric (the paper verifies its finding across PSNR, SSIM,
  // and both VMAF models).
  const ChunkQuality good = score_chunk(1.2, 0.8, 0.3, kLadder480p);
  const ChunkQuality bad = score_chunk(0.8, 1.6, 0.9, kLadder480p);
  EXPECT_GT(good.vmaf_tv, bad.vmaf_tv);
  EXPECT_GT(good.vmaf_phone, bad.vmaf_phone);
  EXPECT_GT(good.psnr_db, bad.psnr_db);
  EXPECT_GT(good.ssim, bad.ssim);
}

TEST(QualityModel, NoiseShiftsScores) {
  const ChunkQuality a = score_chunk(1.0, 1.0, 0.5, kLadder480p, 0.0);
  const ChunkQuality b = score_chunk(1.0, 1.0, 0.5, kLadder480p, 3.0);
  EXPECT_NEAR(b.vmaf_tv - a.vmaf_tv, 3.0, 1e-9);
  EXPECT_NEAR(b.vmaf_phone - a.vmaf_phone, 3.0, 1e-9);
}

TEST(QualityModel, NoiseClampedToValidRange) {
  const ChunkQuality q = score_chunk(4.0, 0.5, 0.1, kLadder1080p, 500.0);
  EXPECT_LE(q.vmaf_tv, 100.0);
  EXPECT_LE(q.vmaf_phone, 100.0);
  const ChunkQuality q2 = score_chunk(0.2, 3.0, 0.9, kLadder144p, -500.0);
  EXPECT_GE(q2.vmaf_tv, 0.0);
  EXPECT_GE(q2.vmaf_phone, 0.0);
}

TEST(QualityModel, HigherResolutionHigherQualityAtSameRatio) {
  const ChunkQuality low = score_chunk(1.0, 1.0, 0.5, kLadder240p);
  const ChunkQuality high = score_chunk(1.0, 1.0, 0.5, kLadder720p);
  EXPECT_GT(high.vmaf_tv, low.vmaf_tv);
  EXPECT_GT(high.vmaf_phone, low.vmaf_phone);
}

// Property sweep: VMAF is monotone in the allocation at every complexity.
class VmafMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(VmafMonotoneTest, MonotoneInAllocation) {
  const double c = GetParam();
  const double need = need_weight(c);
  double prev = -1.0;
  for (double w = 0.2; w <= 3.0; w += 0.2) {
    const ChunkQuality q = score_chunk(w, need, c, kLadder480p);
    EXPECT_GE(q.vmaf_phone, prev);
    prev = q.vmaf_phone;
  }
}

INSTANTIATE_TEST_SUITE_P(Complexities, VmafMonotoneTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
