// Pluggable QoE models (metrics/qoe_model.h): closed-form anchors for the
// linear model, position-aware stall weighting (a late stall hurts more than
// an early one), the memory effect (recent bad quality dominates), device
// classes, and the standard suite's stable ordering.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "metrics/qoe_model.h"
#include "net/bandwidth_estimator.h"
#include "sim/session.h"
#include "test_util.h"
#include "video/dataset.h"

namespace vbr {
namespace {

metrics::QoeSessionView flat_view(std::size_t n, double quality,
                                  double stall_each = 0.0) {
  metrics::QoeSessionView v;
  v.quality.assign(n, quality);
  v.stall_s.assign(n, stall_each);
  v.chunk_duration_s = 2.0;
  return v;
}

TEST(QoeModel, LinearClosedForm) {
  const metrics::QoeModelParams p;
  const metrics::LinearQoe model(p);
  // Constant quality, no stalls, no startup: score == mean quality.
  EXPECT_DOUBLE_EQ(model.score(flat_view(10, 80.0)), 80.0);
  // Startup charges startup_penalty per second.
  metrics::QoeSessionView v = flat_view(10, 80.0);
  v.startup_delay_s = 3.0;
  EXPECT_DOUBLE_EQ(model.score(v), 80.0 - p.startup_penalty * 3.0);
  // One 2 s stall over 10 chunks: rebuffer_penalty * mean stall.
  metrics::QoeSessionView s = flat_view(10, 80.0);
  s.stall_s[4] = 2.0;
  EXPECT_DOUBLE_EQ(model.score(s), 80.0 - p.rebuffer_penalty * 2.0 / 10.0);
  // Quality switches: one step of 20 points across 10 chunks -> mean |dq|
  // = 20 / 9 (n - 1 transitions).
  metrics::QoeSessionView q = flat_view(10, 80.0);
  for (std::size_t i = 5; i < 10; ++i) {
    q.quality[i] = 60.0;
  }
  EXPECT_DOUBLE_EQ(model.score(q),
                   70.0 - p.switch_penalty * 20.0 / 9.0);
  // Empty session: only the startup term.
  metrics::QoeSessionView empty;
  empty.startup_delay_s = 4.0;
  EXPECT_DOUBLE_EQ(model.score(empty), -p.startup_penalty * 4.0);
}

TEST(QoeModel, LateStallWorseThanEarlyUnderPositionAwareModel) {
  const metrics::QoeModelParams p;
  const metrics::RebufferPositionQoe pos(p);
  const metrics::LinearQoe linear(p);

  metrics::QoeSessionView early = flat_view(20, 70.0);
  early.stall_s[1] = 3.0;
  metrics::QoeSessionView late = flat_view(20, 70.0);
  late.stall_s[18] = 3.0;

  // The linear model cannot tell them apart; the position-aware model must.
  EXPECT_DOUBLE_EQ(linear.score(early), linear.score(late));
  EXPECT_LT(pos.score(late), pos.score(early));

  // Closed form: stall at position i is weighted
  // wmin + (wmax - wmin) * i / (n - 1).
  const double w18 = p.position_weight_min +
                     (p.position_weight_max - p.position_weight_min) *
                         (18.0 / 19.0);
  EXPECT_NEAR(pos.score(late),
              70.0 - p.rebuffer_penalty * (3.0 * w18) / 20.0, 1e-12);
}

TEST(QoeModel, RecentBadQualityWorseUnderMemoryModel) {
  const metrics::QoeModelParams p;
  const metrics::MemoryEffectQoe mem(p);
  const metrics::LinearQoe linear(p);

  // Same multiset of qualities: bad start vs bad ending.
  metrics::QoeSessionView bad_start = flat_view(24, 80.0);
  for (std::size_t i = 0; i < 6; ++i) {
    bad_start.quality[i] = 30.0;
  }
  metrics::QoeSessionView bad_end = flat_view(24, 80.0);
  for (std::size_t i = 18; i < 24; ++i) {
    bad_end.quality[i] = 30.0;
  }
  EXPECT_NEAR(linear.score(bad_start), linear.score(bad_end), 1e-12);
  EXPECT_LT(mem.score(bad_end), mem.score(bad_start));

  // A constant-quality session still scores its quality exactly (weights
  // normalize out).
  EXPECT_NEAR(mem.score(flat_view(16, 65.0)), 65.0, 1e-12);

  // Startup fades with session length: a long session forgives startup
  // delay more than a short one.
  metrics::QoeSessionView short_s = flat_view(4, 70.0);
  short_s.startup_delay_s = 5.0;
  metrics::QoeSessionView long_s = flat_view(60, 70.0);
  long_s.startup_delay_s = 5.0;
  EXPECT_GT(mem.score(long_s), mem.score(short_s));
}

TEST(QoeModel, StandardSuiteOrderAndDeviceClasses) {
  const metrics::QoeModelSuite suite = metrics::QoeModelSuite::standard();
  const std::vector<std::string> names = suite.names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "linear_tv");
  EXPECT_EQ(names[1], "linear_phone");
  EXPECT_EQ(names[2], "pos_rebuffer_phone");
  EXPECT_EQ(names[3], "memory_phone");
  EXPECT_EQ(suite.at(0).metric, video::QualityMetric::kVmafTv);
  EXPECT_EQ(suite.at(1).metric, video::QualityMetric::kVmafPhone);
}

TEST(QoeModel, SessionViewSeamProjectsPlayedChunks) {
  // Run a real session and check the seam: view sizes match resolved
  // minus skipped chunks, and the two device metrics give different
  // quality vectors for the same session.
  // A synthesized catalog video: its TV and phone VMAF curves differ, which
  // the flat test fixture's do not.
  const video::Video v =
      video::make_video("qoe", video::Genre::kSports, video::Codec::kH264,
                        2.0, 2.0, 9, 120.0);
  const net::Trace t = testutil::flat_trace(3e6, 600.0);
  abr::FixedTrackScheme scheme(1);
  net::HarmonicMeanEstimator est;
  sim::SessionConfig cfg;
  cfg.startup_latency_s = 4.0;
  const sim::SessionResult r = sim::run_session(v, t, scheme, est, cfg);
  ASSERT_GT(r.chunks.size(), 0u);

  const metrics::QoeSessionView phone =
      sim::qoe_session_view(r, video::QualityMetric::kVmafPhone, 2.0);
  const metrics::QoeSessionView tv =
      sim::qoe_session_view(r, video::QualityMetric::kVmafTv, 2.0);
  std::size_t played = 0;
  for (const sim::ChunkRecord& c : r.chunks) {
    if (!c.skipped) {
      ++played;
    }
  }
  EXPECT_EQ(phone.quality.size(), played);
  EXPECT_EQ(phone.stall_s.size(), played);
  EXPECT_EQ(phone.startup_delay_s, r.startup_delay_s);
  EXPECT_EQ(phone.chunk_duration_s, 2.0);
  // Phone and TV VMAF differ for the same delivered chunks.
  ASSERT_EQ(tv.quality.size(), phone.quality.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < phone.quality.size(); ++i) {
    if (phone.quality[i] != tv.quality[i]) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace vbr
