// Fleet-driver integration tests: thread-count byte-determinism, cache
// behaviour as a function of popularity skew and catalog size, edge/origin
// byte separation, watch-duration truncation, and spec validation.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "abr/bba.h"
#include "abr/scheme.h"
#include "fleet/fleet.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "test_util.h"

namespace vbr {
namespace {

/// A small mixed-scheme fleet: ~40 sessions over 6 short titles, two
/// client classes, two flat traces, a cache sized to force real eviction.
fleet::FleetSpec small_spec(const std::vector<net::Trace>& traces) {
  fleet::FleetSpec spec;
  spec.catalog.num_titles = 6;
  spec.catalog.title_duration_s = 40.0;
  spec.catalog.chunk_duration_s = 2.0;
  spec.arrivals.rate_per_s = 0.3;
  spec.arrivals.horizon_s = 150.0;
  spec.arrivals.max_sessions = 40;
  spec.classes.resize(2);
  spec.classes[0].label = "bba";
  spec.classes[0].make_scheme = [] { return std::make_unique<abr::Bba>(); };
  spec.classes[1].label = "fixed1";
  spec.classes[1].make_scheme = [] {
    return std::make_unique<abr::FixedTrackScheme>(1);
  };
  spec.traces = traces;
  spec.cache.capacity_bits = 1.2e9;
  spec.watch.full_watch_prob = 0.5;
  spec.watch.mean_partial_s = 20.0;
  spec.watch.min_watch_s = 4.0;
  spec.session.startup_latency_s = 4.0;
  return spec;
}

std::vector<net::Trace> two_traces() {
  std::vector<net::Trace> traces;
  traces.push_back(testutil::flat_trace(4e6, 600.0));
  traces.push_back(testutil::flat_trace(1.5e6, 600.0));
  return traces;
}

/// Full serialized observation of one run: merged JSONL events, metrics
/// fingerprint, report JSON, and the per-session outcome table.
std::string run_and_serialize(fleet::FleetSpec spec, unsigned threads) {
  obs::MemoryTraceSink sink;
  obs::MetricsRegistry registry;
  spec.trace = &sink;
  spec.metrics = &registry;
  spec.threads = threads;
  const fleet::FleetResult result = fleet::run_fleet(spec);

  std::ostringstream out;
  for (const obs::DecisionEvent& ev : sink.events()) {
    out << obs::to_jsonl(ev) << '\n';
  }
  out << registry.deterministic_fingerprint() << '\n';
  result.write_json(out);
  for (const fleet::FleetSessionRecord& r : result.sessions) {
    out << r.session_id << ' ' << r.arrival_s << ' ' << r.title << ' '
        << r.class_index << ' ' << r.trace_index << ' ' << r.chunks << ' '
        << r.edge_hits << ' ' << r.qoe.data_usage_mb << '\n';
  }
  return out.str();
}

TEST(Fleet, ByteDeterministicAcrossWorkerThreadCounts) {
  const std::vector<net::Trace> traces = two_traces();
  const std::string one = run_and_serialize(small_spec(traces), 1);
  const std::string two = run_and_serialize(small_spec(traces), 2);
  const std::string eight = run_and_serialize(small_spec(traces), 8);
  EXPECT_GT(one.size(), 1000u);  // the run actually produced telemetry
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(Fleet, HitRatioIncreasesWithZipfAlpha) {
  const std::vector<net::Trace> traces = two_traces();
  fleet::FleetSpec uniform = small_spec(traces);
  uniform.catalog.zipf_alpha = 0.0;
  fleet::FleetSpec skewed = small_spec(traces);
  skewed.catalog.zipf_alpha = 1.4;
  const fleet::FleetResult ru = fleet::run_fleet(uniform);
  const fleet::FleetResult rs = fleet::run_fleet(skewed);
  ASSERT_GT(ru.cache.lookups, 0u);
  ASSERT_GT(rs.cache.lookups, 0u);
  // Skewed popularity concentrates requests on few titles: more reuse.
  EXPECT_GT(rs.cache.hit_ratio(), ru.cache.hit_ratio());
}

TEST(Fleet, HitRatioDecreasesWithCatalogSize) {
  const std::vector<net::Trace> traces = two_traces();
  fleet::FleetSpec small_cat = small_spec(traces);
  small_cat.catalog.num_titles = 3;
  fleet::FleetSpec large_cat = small_spec(traces);
  large_cat.catalog.num_titles = 24;
  const fleet::FleetResult rs = fleet::run_fleet(small_cat);
  const fleet::FleetResult rl = fleet::run_fleet(large_cat);
  // Same total capacity spread over 8x the titles: colder shards.
  EXPECT_LT(rl.cache.hit_ratio(), rs.cache.hit_ratio());
}

TEST(Fleet, SeparatesEdgeFromOriginBytes) {
  const std::vector<net::Trace> traces = two_traces();
  const fleet::FleetResult r = fleet::run_fleet(small_spec(traces));
  EXPECT_TRUE(r.cache_enabled);
  EXPECT_GT(r.edge_hit_bits, 0.0);
  EXPECT_GT(r.origin_bits, 0.0);
  double per_session_edge = 0.0;
  double per_session_origin = 0.0;
  for (const fleet::FleetSessionRecord& rec : r.sessions) {
    per_session_edge += rec.edge_hit_bits;
    per_session_origin += rec.origin_bits;
  }
  EXPECT_DOUBLE_EQ(r.edge_hit_bits, per_session_edge);
  EXPECT_DOUBLE_EQ(r.origin_bits, per_session_origin);

  std::ostringstream json;
  r.write_json(json);
  EXPECT_NE(json.str().find("\"edge_hit_bits\":"), std::string::npos);
  EXPECT_NE(json.str().find("\"origin_bits\":"), std::string::npos);

  // Control arm: no cache model at all means every byte is origin-served.
  fleet::FleetSpec no_cache = small_spec(traces);
  no_cache.use_cache = false;
  const fleet::FleetResult rn = fleet::run_fleet(no_cache);
  EXPECT_FALSE(rn.cache_enabled);
  EXPECT_EQ(rn.cache.lookups, 0u);
  EXPECT_DOUBLE_EQ(rn.edge_hit_bits, 0.0);
  EXPECT_GT(rn.origin_bits, 0.0);
}

TEST(Fleet, HotTitlesHitMoreThanColdOnes) {
  const std::vector<net::Trace> traces = two_traces();
  fleet::FleetSpec spec = small_spec(traces);
  spec.catalog.num_titles = 10;
  spec.catalog.zipf_alpha = 1.2;
  spec.arrivals.max_sessions = 60;
  spec.arrivals.horizon_s = 250.0;
  const fleet::FleetResult r = fleet::run_fleet(spec);
  ASSERT_EQ(r.hit_ratio_by_popularity_decile.size(), 10u);
  // The hottest decile sees the most reuse.
  for (std::size_t d = 1; d < 10; ++d) {
    EXPECT_GE(r.hit_ratio_by_popularity_decile[0],
              r.hit_ratio_by_popularity_decile[d])
        << "decile " << d;
  }
}

TEST(Fleet, WatchDurationTruncatesSessions) {
  const std::vector<net::Trace> traces = two_traces();
  fleet::FleetSpec spec = small_spec(traces);
  spec.watch.full_watch_prob = 0.3;  // most viewers leave early
  const fleet::FleetResult r = fleet::run_fleet(spec);
  const fleet::Catalog cat(spec.catalog);
  bool any_truncated = false;
  for (const fleet::FleetSessionRecord& rec : r.sessions) {
    const std::size_t expected =
        sim::effective_chunk_count(cat.title(rec.title), rec.watch_duration_s);
    EXPECT_EQ(rec.chunks, expected) << "session " << rec.session_id;
    any_truncated |= rec.watch_duration_s > 0.0 &&
                     expected < cat.title(rec.title).num_chunks();
  }
  EXPECT_TRUE(any_truncated);
}

TEST(Fleet, PerClassReportCoversEverySession) {
  const std::vector<net::Trace> traces = two_traces();
  const fleet::FleetResult r = fleet::run_fleet(small_spec(traces));
  ASSERT_EQ(r.per_class.size(), 2u);
  EXPECT_EQ(r.per_class[0].label, "bba");
  EXPECT_EQ(r.per_class[1].label, "fixed1");
  EXPECT_EQ(r.per_class[0].sessions + r.per_class[1].sessions,
            r.sessions.size());
  EXPECT_GT(r.jain_quality, 0.0);
  EXPECT_LE(r.jain_quality, 1.0 + 1e-12);
  EXPECT_GT(r.jain_bits, 0.0);
}

TEST(Fleet, Validation) {
  const std::vector<net::Trace> traces = two_traces();
  {
    fleet::FleetSpec spec = small_spec(traces);
    spec.classes.clear();
    EXPECT_THROW((void)fleet::run_fleet(spec), std::invalid_argument);
  }
  {
    fleet::FleetSpec spec = small_spec(traces);
    spec.classes[0].weight = 0.0;
    EXPECT_THROW((void)fleet::run_fleet(spec), std::invalid_argument);
  }
  {
    fleet::FleetSpec spec = small_spec(traces);
    spec.classes[0].make_scheme = nullptr;
    EXPECT_THROW((void)fleet::run_fleet(spec), std::invalid_argument);
  }
  {
    fleet::FleetSpec spec = small_spec(traces);
    spec.traces = {};
    EXPECT_THROW((void)fleet::run_fleet(spec), std::invalid_argument);
  }
  {
    fleet::FleetSpec spec = small_spec(traces);
    obs::MemoryTraceSink sink;
    spec.session.trace = &sink;  // sinks go through FleetSpec, not session
    EXPECT_THROW((void)fleet::run_fleet(spec), std::invalid_argument);
  }
  {
    fleet::FleetSpec spec = small_spec(traces);
    spec.threads = sim::kMaxThreads + 1;
    EXPECT_THROW((void)fleet::run_fleet(spec), std::invalid_argument);
  }
  {
    // An arrival horizon too short for the rate yields zero sessions.
    fleet::FleetSpec spec = small_spec(traces);
    spec.arrivals.rate_per_s = 1e-9;
    spec.arrivals.horizon_s = 0.01;
    EXPECT_THROW((void)fleet::run_fleet(spec), std::invalid_argument);
  }
}

TEST(Fleet, SessionLevelHookConfigIsRejectedEverywhere) {
  // The delivery model is fleet-owned: both the fleet (session base config)
  // and the other multi-session drivers refuse a user-supplied hook.
  class NullHook final : public sim::DownloadPathHook {
   public:
    sim::FetchPlan on_chunk_request(const video::Video&, std::size_t,
                                    std::size_t, double, double) override {
      return {};
    }
  };
  NullHook hook;
  const std::vector<net::Trace> traces = two_traces();
  {
    fleet::FleetSpec spec = small_spec(traces);
    spec.session.download_hook = &hook;
    EXPECT_THROW((void)fleet::run_fleet(spec), std::invalid_argument);
  }
  {
    const video::Video v = testutil::default_flat_video(10);
    sim::ExperimentSpec spec;
    spec.video = &v;
    spec.traces = traces;
    spec.make_scheme = [] { return std::make_unique<abr::Bba>(); };
    spec.session.download_hook = &hook;
    EXPECT_THROW((void)sim::run_experiment(spec), std::invalid_argument);
  }
}

}  // namespace
}  // namespace vbr
