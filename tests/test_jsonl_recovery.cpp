// Crash-safe JSONL layer (obs/jsonl_io.h): per-line checksums, the exact
// parse_jsonl inverse of to_jsonl, the torn-tail recovery scanner run over
// an on-disk corpus (tests/data/telemetry/), and the durable sink's
// errno-carrying failure paths (disk full, unwritable directory).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "obs/event.h"
#include "obs/jsonl_io.h"
#include "obs/trace_sink.h"

namespace vbr {
namespace {

const std::string kCorpus = std::string(VBR_TEST_DATA_DIR) + "/telemetry/";

/// A DecisionEvent exercising every serialized field, including the
/// optional controller and edge blocks and awkward doubles (negative,
/// subnormal-ish, many digits).
obs::DecisionEvent full_event() {
  obs::DecisionEvent e;
  e.session_id = 17;
  e.seq = 123456789;
  e.chunk_index = 42;
  e.decision_now_s = 3.0000000000000004;
  e.sim_now_s = 7.25;
  e.scheme = "CAVA \"quoted\"\t\n";
  e.size_mode = "noisy";
  e.track = 3;
  e.in_startup = true;
  e.buffer_before_s = 12.000000000000002;
  e.buffer_after_s = 13.5;
  e.est_bandwidth_bps = 4.37e6;
  e.size_bits = 1048576.0;
  e.wait_s = 0.1;
  e.download_s = 0.30000000000000004;
  e.stall_s = 0.0;
  e.cum_rebuffer_s = 2.9999999999999996;
  e.attempts = 3;
  e.connect_failures = 1;
  e.mid_drops = 1;
  e.timeouts = 0;
  e.backoff_wait_s = 0.5;
  e.resumed_bits = 1000.0;
  e.wasted_bits = 250.0;
  e.downgraded = true;
  e.skipped = false;
  e.abandoned_higher = true;
  obs::ControllerInternals ci;
  ci.target_buffer_s = 14.0;
  ci.u = -0.37;
  ci.error_s = 2.0;
  ci.integral = -1.5e-7;
  ci.alpha = 0.85;
  ci.complexity_class = 2;
  ci.complex_chunk = true;
  e.controller = ci;
  obs::DecisionEvent::EdgeInfo edge;
  edge.arrival_s = 99.125;
  edge.title = 7;
  edge.edge_hit = true;
  edge.edge_latency_s = 0.02;
  e.edge = edge;
  e.policy = obs::DecisionEvent::PolicyInfo{.id = "mpc-imitate", .version = 3};
  return e;
}

TEST(JsonlChecksum, RoundTripsAndRejectsDamage) {
  const std::string payload = R"({"session":0,"seq":1})";
  const std::string line = obs::checksummed_line(payload);
  // TAB splits payload from an 8-hex-char checksum.
  ASSERT_EQ(line.size(), payload.size() + 1 + 8);
  EXPECT_EQ(line[payload.size()], '\t');

  std::string_view got;
  ASSERT_TRUE(obs::verify_checksummed_line(line, got));
  EXPECT_EQ(got, payload);

  // Any single-character damage to payload or checksum is caught.
  for (const std::size_t pos : {std::size_t{3}, line.size() - 1}) {
    std::string damaged = line;
    damaged[pos] = damaged[pos] == 'x' ? 'y' : 'x';
    std::string_view ignored;
    EXPECT_FALSE(obs::verify_checksummed_line(damaged, ignored));
  }
  std::string_view ignored;
  EXPECT_FALSE(obs::verify_checksummed_line(payload, ignored));  // no TAB
  EXPECT_FALSE(obs::verify_checksummed_line(payload + "\t12zz5678", ignored));
}

TEST(JsonlParse, InvertsToJsonlBitExactly) {
  // Canonical doubles are shortest-round-trip, so serialize → parse →
  // serialize must reproduce the same bytes, optional blocks included.
  obs::DecisionEvent plain = full_event();
  plain.controller.reset();
  plain.edge.reset();
  for (const obs::DecisionEvent& e : {full_event(), plain}) {
    const std::string line = obs::to_jsonl(e);
    const obs::DecisionEvent back = obs::parse_jsonl(line);
    EXPECT_EQ(obs::to_jsonl(back), line);
  }
}

TEST(JsonlParse, FuzzRoundTripsOptionalFieldCombinations) {
  // Seeded structural fuzz: every combination of the optional blocks
  // (controller, edge with CDN tier/coalesced/shed, experiment arm) with
  // pseudo-random awkward values must survive serialize -> parse ->
  // serialize bit-exactly. The arm field interacts with the edge block in
  // the serializer (it is emitted after it), so the combinations matter.
  std::uint64_t state = 0x5eedf022u;
  const auto next = [&state] {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  const auto u01 = [&next] {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  };
  for (int i = 0; i < 256; ++i) {
    obs::DecisionEvent e = full_event();
    e.seq = next();
    e.est_bandwidth_bps = u01() * 1e8;
    e.download_s = u01() * 3.0;
    e.cum_rebuffer_s = u01() < 0.3 ? 0.0 : u01() * 40.0;
    if ((i & 1) == 0) {
      e.controller.reset();
    }
    if ((i & 2) == 0) {
      e.edge.reset();
    } else {
      e.edge->tier = static_cast<std::uint32_t>(next() % 3);
      e.edge->coalesced = (next() & 1) != 0;
      e.edge->shed = (next() & 1) != 0;
      e.edge->edge_latency_s = u01() * 0.2;
    }
    if ((i & 4) != 0) {
      e.arm = static_cast<std::uint32_t>(next() % 64);
    }
    if ((i & 8) == 0) {
      // Pre-learn streams carry no policy block at all.
      e.policy.reset();
    } else {
      // Learned-policy annotation: awkward-but-legal id tokens (the
      // serializer must escape nothing, the parser must accept dots,
      // dashes, underscores) and the full version range.
      e.policy->id = (next() & 1) != 0 ? "mpc-imitate_v2.1" : "a-B.c_d-0";
      e.policy->version = static_cast<std::uint32_t>(next());
    }
    const std::string line = obs::to_jsonl(e);
    const obs::DecisionEvent back = obs::parse_jsonl(line);
    ASSERT_EQ(obs::to_jsonl(back), line) << "fuzz case " << i;
    ASSERT_EQ(back.arm.has_value(), e.arm.has_value()) << "fuzz case " << i;
    if (e.edge.has_value()) {
      ASSERT_EQ(back.edge->tier, e.edge->tier) << "fuzz case " << i;
      ASSERT_EQ(back.edge->coalesced, e.edge->coalesced) << "fuzz case " << i;
      ASSERT_EQ(back.edge->shed, e.edge->shed) << "fuzz case " << i;
    }
    ASSERT_EQ(back.policy.has_value(), e.policy.has_value())
        << "fuzz case " << i;
    if (e.policy.has_value()) {
      ASSERT_EQ(back.policy->id, e.policy->id) << "fuzz case " << i;
      ASSERT_EQ(back.policy->version, e.policy->version) << "fuzz case " << i;
    }
  }
}

TEST(JsonlParse, PolicyBlockEmittedOnlyWhenPresent) {
  // The byte-stability contract: events without a policy annotation must
  // serialize to the exact same bytes as before the learn subsystem
  // existed — no "policy" key at all — and annotated events append the
  // block after "arm".
  obs::DecisionEvent plain = full_event();
  plain.policy.reset();
  const std::string without = obs::to_jsonl(plain);
  EXPECT_EQ(without.find("\"policy\""), std::string::npos);

  const std::string with = obs::to_jsonl(full_event());
  EXPECT_NE(with.find("\"policy\":{\"id\":\"mpc-imitate\",\"ver\":3}"),
            std::string::npos);
  EXPECT_EQ(with.rfind("}"), with.size() - 1);
}

TEST(JsonlScan, LearnedCorpusIsCleanAndCarriesPolicyProvenance) {
  // On-disk corpus of a learned-arm A/B rollout: checksummed lines whose
  // payloads carry the policy id/version (plus arm), one pre-learn line
  // without the block mixed in — the scanner and parser accept both.
  const std::string path = kCorpus + "clean_learned.jsonl";
  const obs::JsonlScanReport rep = obs::scan_checksummed_jsonl(path);
  EXPECT_TRUE(rep.clean());
  ASSERT_EQ(rep.valid_lines, 3u);

  std::ifstream in(path);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    std::string_view payload;
    ASSERT_TRUE(obs::verify_checksummed_line(line, payload));
    const obs::DecisionEvent e = obs::parse_jsonl(payload);
    if (line_no == 2) {
      EXPECT_FALSE(e.policy.has_value());  // the pre-learn line
    } else {
      ASSERT_TRUE(e.policy.has_value());
      EXPECT_EQ(e.policy->id, "mpc-imitate");
      EXPECT_EQ(e.policy->version, 1u + static_cast<std::uint32_t>(line_no));
      ASSERT_TRUE(e.arm.has_value());
    }
    ++line_no;
  }
  EXPECT_EQ(line_no, 3u);
}

TEST(JsonlParse, RejectsNonCanonicalLines) {
  const std::string good = obs::to_jsonl(full_event());
  EXPECT_THROW((void)obs::parse_jsonl(""), std::invalid_argument);
  EXPECT_THROW((void)obs::parse_jsonl("{}"), std::invalid_argument);
  EXPECT_THROW((void)obs::parse_jsonl(good.substr(0, good.size() / 2)),
               std::invalid_argument);
  EXPECT_THROW((void)obs::parse_jsonl(good + "x"), std::invalid_argument);
}

TEST(JsonlScan, CleanAndEmptyFiles) {
  const obs::JsonlScanReport clean =
      obs::scan_checksummed_jsonl(kCorpus + "clean.jsonl");
  EXPECT_EQ(clean.total_lines, 3u);
  EXPECT_EQ(clean.valid_lines, 3u);
  EXPECT_TRUE(clean.clean());

  const obs::JsonlScanReport empty =
      obs::scan_checksummed_jsonl(kCorpus + "empty.jsonl");
  EXPECT_EQ(empty.total_lines, 0u);
  EXPECT_TRUE(empty.clean());

  EXPECT_THROW((void)obs::scan_checksummed_jsonl(kCorpus + "no_such.jsonl"),
               std::system_error);
}

TEST(JsonlScan, AbCdnCorpusIsCleanAndPayloadsParse) {
  // Corpus lines carrying the experiment arm plus the CDN tier /
  // coalesced / shed outcomes: the scanner accepts them and every payload
  // parses back with those fields intact (one line per tier).
  const std::string path = kCorpus + "clean_ab_cdn.jsonl";
  const obs::JsonlScanReport rep = obs::scan_checksummed_jsonl(path);
  EXPECT_TRUE(rep.clean());
  ASSERT_EQ(rep.valid_lines, 3u);

  std::ifstream in(path);
  std::string line;
  std::uint32_t expect_arm = 0;
  while (std::getline(in, line)) {
    std::string_view payload;
    ASSERT_TRUE(obs::verify_checksummed_line(line, payload));
    const obs::DecisionEvent e = obs::parse_jsonl(payload);
    ASSERT_TRUE(e.arm.has_value());
    EXPECT_EQ(*e.arm, expect_arm);
    ASSERT_TRUE(e.edge.has_value());
    EXPECT_EQ(e.edge->tier, expect_arm);  // corpus pairs tier with arm
    EXPECT_EQ(e.edge->coalesced, expect_arm == 1);
    EXPECT_EQ(e.edge->shed, expect_arm == 2);
    ++expect_arm;
  }
  EXPECT_EQ(expect_arm, 3u);
}

TEST(JsonlScan, DetectsTornTails) {
  // The two crash signatures: an unterminated final line, and a terminated
  // final line whose checksum fails.
  for (const char* name : {"torn_unterminated.jsonl", "torn_bad_crc.jsonl"}) {
    const obs::JsonlScanReport rep =
        obs::scan_checksummed_jsonl(kCorpus + name);
    EXPECT_EQ(rep.total_lines, 3u) << name;
    EXPECT_EQ(rep.valid_lines, 2u) << name;
    EXPECT_TRUE(rep.torn_tail) << name;
    EXPECT_TRUE(rep.corrupt_interior_lines.empty()) << name;
    EXPECT_FALSE(rep.clean()) << name;
  }
}

TEST(JsonlScan, SurfacesInteriorCorruptionLoudly) {
  // A checksum-mismatching line that is NOT the tail is real damage, not a
  // crash artifact: it must be reported by line number, never dropped.
  const obs::JsonlScanReport rep =
      obs::scan_checksummed_jsonl(kCorpus + "corrupt_interior.jsonl");
  EXPECT_EQ(rep.total_lines, 4u);
  EXPECT_EQ(rep.valid_lines, 3u);
  EXPECT_FALSE(rep.torn_tail);
  ASSERT_EQ(rep.corrupt_interior_lines.size(), 1u);
  EXPECT_EQ(rep.corrupt_interior_lines[0], 2u);  // 1-based
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void copy_file(const std::string& from, const std::string& to) {
  std::ofstream(to, std::ios::binary) << read_file(from);
}

TEST(JsonlRecover, TruncatesTornLearnedTailKeepingPolicyLines) {
  // Crash mid-write of a learned-policy line: the torn tail is detected
  // and truncated, the surviving annotated lines stay intact.
  const std::string tmp = testing::TempDir() + "recover_learned.jsonl";
  copy_file(kCorpus + "torn_learned_tail.jsonl", tmp);
  const obs::JsonlScanReport rep = obs::recover_checksummed_jsonl(tmp);
  EXPECT_TRUE(rep.torn_tail);
  const obs::JsonlScanReport again = obs::scan_checksummed_jsonl(tmp);
  EXPECT_TRUE(again.clean());
  ASSERT_EQ(again.valid_lines, 2u);
  std::ifstream in(tmp);
  std::string line;
  while (std::getline(in, line)) {
    std::string_view payload;
    ASSERT_TRUE(obs::verify_checksummed_line(line, payload));
    const obs::DecisionEvent e = obs::parse_jsonl(payload);
    ASSERT_TRUE(e.policy.has_value());
    EXPECT_EQ(e.policy->id, "mpc-imitate");
  }
  std::remove(tmp.c_str());
}

TEST(JsonlRecover, TruncatesTornTailOnly) {
  const std::string tmp = testing::TempDir() + "recover_torn.jsonl";
  copy_file(kCorpus + "torn_unterminated.jsonl", tmp);
  const obs::JsonlScanReport rep = obs::recover_checksummed_jsonl(tmp);
  EXPECT_TRUE(rep.torn_tail);
  // The recovered file is the valid prefix, and a rescan is clean.
  EXPECT_EQ(read_file(tmp).size(), rep.keep_bytes);
  const obs::JsonlScanReport again = obs::scan_checksummed_jsonl(tmp);
  EXPECT_TRUE(again.clean());
  EXPECT_EQ(again.valid_lines, 2u);
  std::remove(tmp.c_str());
}

TEST(JsonlRecover, TruncatesTornAbTailKeepingArmLines) {
  // A mid-write crash in an A/B fleet run: the torn tail goes, the two
  // surviving lines still carry their arm + CDN fields.
  const std::string tmp = testing::TempDir() + "recover_ab.jsonl";
  copy_file(kCorpus + "torn_ab_tail.jsonl", tmp);
  const obs::JsonlScanReport rep = obs::recover_checksummed_jsonl(tmp);
  EXPECT_TRUE(rep.torn_tail);
  EXPECT_TRUE(rep.corrupt_interior_lines.empty());
  const obs::JsonlScanReport again = obs::scan_checksummed_jsonl(tmp);
  EXPECT_TRUE(again.clean());
  ASSERT_EQ(again.valid_lines, 2u);
  std::ifstream in(tmp);
  std::string line;
  while (std::getline(in, line)) {
    std::string_view payload;
    ASSERT_TRUE(obs::verify_checksummed_line(line, payload));
    EXPECT_TRUE(obs::parse_jsonl(payload).arm.has_value());
  }
  std::remove(tmp.c_str());
}

TEST(JsonlRecover, NeverDropsInteriorLines) {
  // keep_bytes-based truncation must not excise interior damage: recovery
  // of a file with a corrupt middle line leaves every byte in place.
  const std::string tmp = testing::TempDir() + "recover_interior.jsonl";
  copy_file(kCorpus + "corrupt_interior.jsonl", tmp);
  const std::string before = read_file(tmp);
  const obs::JsonlScanReport rep = obs::recover_checksummed_jsonl(tmp);
  EXPECT_FALSE(rep.torn_tail);
  ASSERT_EQ(rep.corrupt_interior_lines.size(), 1u);
  EXPECT_EQ(read_file(tmp), before);
  std::remove(tmp.c_str());
}

TEST(DurableSink, WritesChecksummedRecoverableLines) {
  const std::string path = testing::TempDir() + "durable_sink.jsonl";
  {
    obs::DurableJsonlTraceSink sink(path);
    obs::DecisionEvent e = full_event();
    for (std::uint64_t i = 0; i < 100; ++i) {
      e.seq = i;
      sink.on_decision(e);
    }
    sink.flush();
    EXPECT_EQ(sink.lines_written(), 100u);
  }
  const obs::JsonlScanReport rep = obs::scan_checksummed_jsonl(path);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.valid_lines, 100u);
  // Each payload parses back to the event that produced it.
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  std::string_view payload;
  ASSERT_TRUE(obs::verify_checksummed_line(line, payload));
  const obs::DecisionEvent back = obs::parse_jsonl(payload);
  EXPECT_EQ(back.seq, 0u);
  EXPECT_EQ(back.scheme, full_event().scheme);
  std::remove(path.c_str());
}

TEST(DurableSink, SurfacesErrnoOnUnopenablePath) {
  // A path routed *through* a regular file fails with ENOTDIR regardless
  // of privileges (tests may run as root, where unwritable-mode tricks
  // don't bite).
  const std::string blocker = testing::TempDir() + "not_a_dir";
  std::ofstream(blocker) << "x";
  try {
    obs::DurableJsonlTraceSink sink(blocker + "/trace.jsonl");
    FAIL() << "expected std::system_error";
  } catch (const std::system_error& e) {
    EXPECT_EQ(e.code().value(), ENOTDIR);
  }
  std::remove(blocker.c_str());
}

TEST(DurableSink, SurfacesDiskFullAsSystemError) {
  // /dev/full: every write(2) fails with ENOSPC — the portable-enough
  // Linux stand-in for a full disk. Skip elsewhere.
  std::ifstream probe("/dev/full");
  if (!probe.good()) {
    GTEST_SKIP() << "/dev/full not available";
  }
  obs::DurableJsonlTraceSink sink("/dev/full");
  obs::DecisionEvent e = full_event();
  try {
    // The sink buffers ~64 KiB before hitting the kernel, so pump events
    // through flush() to force the failing write immediately.
    sink.on_decision(e);
    sink.flush();
    FAIL() << "expected std::system_error(ENOSPC)";
  } catch (const std::system_error& err) {
    EXPECT_EQ(err.code().value(), ENOSPC);
  }
}

}  // namespace
}  // namespace vbr
