// Shared fixtures for the test suite: tiny hand-built videos with known
// chunk sizes, flat traces, and convenience wrappers.
#pragma once

#include <vector>

#include "abr/scheme.h"
#include "net/trace.h"
#include "video/video.h"

namespace vbr::testutil {

/// A video whose track `l` has every chunk at `bitrates_bps[l]` except where
/// `spikes` boosts specific chunk indices by a multiplicative factor
/// (applied to every track, preserving cross-track consistency).
/// Quality is synthesized as a simple increasing function of the track.
inline video::Video make_flat_video(
    std::vector<double> bitrates_bps, std::size_t num_chunks,
    double chunk_duration_s = 2.0,
    const std::vector<std::pair<std::size_t, double>>& spikes = {}) {
  std::vector<video::Track> tracks;
  for (std::size_t l = 0; l < bitrates_bps.size(); ++l) {
    std::vector<video::Chunk> chunks(num_chunks);
    for (std::size_t i = 0; i < num_chunks; ++i) {
      double rate = bitrates_bps[l];
      for (const auto& [idx, factor] : spikes) {
        if (idx == i) {
          rate *= factor;
        }
      }
      chunks[i].size_bits = rate * chunk_duration_s;
      chunks[i].duration_s = chunk_duration_s;
      const double q = 20.0 + 14.0 * static_cast<double>(l);
      chunks[i].quality = video::ChunkQuality{
          .psnr_db = 25.0 + 4.0 * static_cast<double>(l),
          .ssim = 0.7 + 0.05 * static_cast<double>(l),
          .vmaf_tv = q,
          .vmaf_phone = q,
      };
    }
    tracks.emplace_back(static_cast<int>(l),
                        video::standard_ladder()[l % 6], video::Codec::kH264,
                        std::move(chunks));
  }
  return video::Video("flat", video::Genre::kAnimation, std::move(tracks),
                      std::vector<video::SceneInfo>(num_chunks));
}

/// The default six-rung flat video used across scheme tests.
inline video::Video default_flat_video(std::size_t num_chunks = 60) {
  return make_flat_video({2e5, 4e5, 8e5, 1.6e6, 3.2e6, 6.4e6}, num_chunks);
}

/// A constant-bandwidth trace.
inline net::Trace flat_trace(double bps, double duration_s = 1800.0) {
  const std::size_t n = static_cast<std::size_t>(duration_s);
  return net::Trace("flat", 1.0, std::vector<double>(n, bps));
}

/// A StreamContext with sensible defaults for unit-testing decide().
inline abr::StreamContext make_context(const video::Video& v,
                                       std::size_t next_chunk,
                                       double buffer_s, double est_bps,
                                       int prev_track = -1,
                                       double now_s = 0.0) {
  abr::StreamContext ctx;
  ctx.video = &v;
  ctx.next_chunk = next_chunk;
  ctx.buffer_s = buffer_s;
  ctx.est_bandwidth_bps = est_bps;
  ctx.prev_track = prev_track;
  ctx.now_s = now_s;
  return ctx;
}

}  // namespace vbr::testutil
