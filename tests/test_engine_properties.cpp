// Event-engine invariant properties: the session-id reorder drain
// (obs::OrderedDrain), per-session virtual-time monotonicity of the
// resumable SessionStepper, event/chunk conservation and no-starvation on
// real fleets, uncoupled 100k-session concurrency, and the
// constant-memory streaming-aggregation smoke.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "abr/bba.h"
#include "abr/scheme.h"
#include "fleet/fleet.h"
#include "net/bandwidth_estimator.h"
#include "obs/fold.h"
#include "sim/session.h"
#include "sim/stepper.h"
#include "test_util.h"

namespace vbr {
namespace {

// ---------------------------------------------------------------------
// OrderedDrain: the streaming reorder buffer between out-of-order
// completions and the strict session-id fold order.
// ---------------------------------------------------------------------

TEST(OrderedDrain, ReleasesItemsInStrictKeyOrder) {
  obs::OrderedDrain<int> drain;
  // Keys arrive completion-shuffled; pops must come out 0,1,2,...
  drain.put(2, 20);
  drain.put(0, 0);
  EXPECT_EQ(drain.pop().value(), 0);   // 0 is next
  EXPECT_FALSE(drain.pop().has_value());  // 1 still missing; 2 is held
  drain.put(3, 30);
  drain.put(1, 10);
  EXPECT_EQ(drain.pop().value(), 10);
  EXPECT_EQ(drain.pop().value(), 20);
  EXPECT_EQ(drain.pop().value(), 30);
  EXPECT_FALSE(drain.pop().has_value());
  EXPECT_EQ(drain.pending(), 0u);
}

TEST(OrderedDrain, TracksPeakResidency) {
  obs::OrderedDrain<int> drain;
  // Hold keys 1..4 while 0 is missing: residency climbs to 4.
  for (std::size_t k = 4; k >= 1; --k) {
    drain.put(k, static_cast<int>(k));
  }
  EXPECT_EQ(drain.pending(), 4u);
  drain.put(0, 0);
  while (drain.pop()) {
  }
  EXPECT_EQ(drain.pending(), 0u);
  EXPECT_EQ(drain.peak_pending(), 5u);  // 0..4 resident together
}

TEST(OrderedDrain, RejectsDuplicateAndDrainedKeys) {
  obs::OrderedDrain<int> drain;
  drain.put(0, 0);
  EXPECT_THROW(drain.put(0, 1), std::logic_error);  // duplicate pending
  ASSERT_TRUE(drain.pop().has_value());
  EXPECT_THROW(drain.put(0, 2), std::logic_error);  // already drained
  EXPECT_EQ(drain.next(), 1u);
}

// ---------------------------------------------------------------------
// SessionStepper: per-session virtual time and chunk conservation. The
// engine's event keys are arrival_s + now_s(), so now_s() never moving
// backwards IS per-session timeline monotonicity.
// ---------------------------------------------------------------------

TEST(SessionStepper, VirtualTimeIsMonotoneAcrossSteps) {
  const video::Video video = testutil::default_flat_video(20);
  const net::Trace trace = testutil::flat_trace(3e6, 600.0);
  abr::Bba scheme;
  const std::unique_ptr<net::BandwidthEstimator> estimator =
      sim::default_estimator_factory()(trace);
  sim::SessionConfig config;
  config.startup_latency_s = 2.0;
  sim::SessionStepper stepper(video, trace, scheme, *estimator, config);

  EXPECT_EQ(stepper.total_chunks(), 20u);
  double last = stepper.now_s();
  std::size_t steps = 0;
  bool more = true;
  while (more) {
    more = stepper.step();
    ++steps;
    EXPECT_GE(stepper.now_s(), last);
    last = stepper.now_s();
    ASSERT_LE(steps, 20u);  // no starvation / livelock
  }
  EXPECT_TRUE(stepper.done());
  EXPECT_EQ(steps, 20u);  // one event per chunk, exactly
  const sim::SessionResult result = stepper.finish();
  EXPECT_EQ(result.chunks.size(), 20u);
  EXPECT_DOUBLE_EQ(result.end_time_s, last);
}

// ---------------------------------------------------------------------
// Whole-fleet conservation and concurrency properties.
// ---------------------------------------------------------------------

/// Uncoupled fleet whose arrivals all land inside one second, so every
/// session overlaps every other on the virtual timeline.
fleet::FleetSpec burst_spec(std::size_t sessions,
                            const std::vector<net::Trace>& traces) {
  fleet::FleetSpec spec;
  spec.use_cache = false;  // uncoupled: all sessions admitted up front
  spec.catalog.num_titles = 4;
  spec.catalog.title_duration_s = 8.0;
  spec.catalog.chunk_duration_s = 2.0;
  // Arrivals compressed into a fraction of the shortest possible session
  // span, so every session overlaps every other.
  spec.arrivals.rate_per_s = 8.0 * static_cast<double>(sessions);
  spec.arrivals.horizon_s = 30.0;
  spec.arrivals.max_sessions = sessions;
  spec.classes.resize(1);
  spec.classes[0].label = "bba";
  spec.classes[0].make_scheme = [] { return std::make_unique<abr::Bba>(); };
  spec.traces = traces;
  spec.watch.full_watch_prob = 1.0;  // fixed-length sessions
  spec.session.startup_latency_s = 2.0;
  return spec;
}

TEST(EngineProperties, ConservesEventsAndStarvesNoSession) {
  std::vector<net::Trace> traces;
  traces.push_back(testutil::flat_trace(2e6, 600.0));
  fleet::FleetSpec spec = burst_spec(200, traces);
  spec.engine = fleet::FleetEngine::kEvent;
  spec.threads = 4;
  const fleet::FleetResult result = fleet::run_fleet(spec);

  ASSERT_EQ(result.sessions.size(), 200u);
  std::size_t chunks = 0;
  for (const fleet::FleetSessionRecord& rec : result.sessions) {
    EXPECT_GT(rec.chunks, 0u);  // every admitted session made progress
    chunks += rec.chunks;
  }
  // One event per resolved chunk (no watchdog in this spec): the timeline
  // neither drops nor duplicates work.
  EXPECT_EQ(result.engine_stats.events_processed, chunks);
  EXPECT_EQ(result.watchdog_aborted_sessions, 0u);
  // Burst arrivals + longer-than-burst sessions: everyone overlaps. The
  // run completing at all also certifies the engine's internal
  // global-virtual-time floor check (it throws on any rewind).
  EXPECT_EQ(result.engine_stats.peak_in_flight, 200u);
  EXPECT_LE(result.engine_stats.max_heap_size, 200u);
  EXPECT_EQ(result.engine_stats.peak_resident_records, 0u);  // not streaming
}

TEST(EngineProperties, WatchdogAbortsConsumeOneExtraEvent) {
  std::vector<net::Trace> traces;
  traces.push_back(testutil::flat_trace(2e6, 600.0));
  fleet::FleetSpec spec = burst_spec(60, traces);
  spec.session.watchdog_max_decisions = 2;  // every 4-chunk session trips
  spec.engine = fleet::FleetEngine::kEvent;
  spec.threads = 2;
  const fleet::FleetResult result = fleet::run_fleet(spec);
  ASSERT_EQ(result.watchdog_aborted_sessions, 60u);
  std::size_t chunks = 0;
  for (const fleet::FleetSessionRecord& rec : result.sessions) {
    chunks += rec.chunks;
  }
  // The aborting step resolves no chunk but still consumed an event.
  EXPECT_EQ(result.engine_stats.events_processed,
            chunks + result.watchdog_aborted_sessions);
}

TEST(EngineProperties, StreamingSmoke100kSessionsConstantMemory) {
  std::vector<net::Trace> traces;
  traces.push_back(testutil::flat_trace(2e6, 600.0));
  const std::size_t n = 100000;
  fleet::FleetSpec spec = burst_spec(n, traces);
  spec.arrivals.horizon_s = 300.0;
  // One title: the reorder drain's residency is completion skew, and with
  // every session in flight at once the only skew source left is per-title
  // span differences — a single title retires completions in arrival
  // order, so residency measures the engine's own overhead, not the
  // workload's heterogeneity.
  spec.catalog.num_titles = 1;
  spec.engine = fleet::FleetEngine::kEvent;
  spec.stream_aggregation = true;
  const fleet::FleetResult result = fleet::run_fleet(spec);

  // The whole fleet really ran...
  EXPECT_EQ(result.total_sessions, n);
  EXPECT_EQ(result.engine_stats.peak_in_flight, n);  // all concurrent
  // ...but no per-session record archive was kept: aggregates only, plus
  // a reorder buffer that stays far below the fleet size (its residency
  // is bounded by completion skew, not by n).
  EXPECT_TRUE(result.sessions.empty());
  EXPECT_GT(result.engine_stats.peak_resident_records, 0u);
  EXPECT_LT(result.engine_stats.peak_resident_records, n / 10);
  // Aggregates are present and sane.
  ASSERT_EQ(result.per_class.size(), 1u);
  EXPECT_EQ(result.per_class[0].sessions, n);
  EXPECT_GT(result.per_class[0].mean_all_quality, 0.0);
  EXPECT_GT(result.jain_quality, 0.0);
  EXPECT_LE(result.jain_quality, 1.0);
}

}  // namespace
}  // namespace vbr
