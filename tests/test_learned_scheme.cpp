// LearnedScheme serving tests (learn/learned_scheme.h): policy binding
// and validation at construction, table-lookup decisions with the
// fallback chain, telemetry provenance stamping, byte-identical fleet
// decisions at 1/2/8 worker threads, and the fleet-scale A/B acceptance
// pin — an MPC-imitation policy significantly beats a baseline on at
// least one QoE model under a flash-crowd workload.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "abr/mpc.h"
#include "core/cava.h"
#include "exp/ab.h"
#include "fleet/catalog.h"
#include "fleet/fleet.h"
#include "learn/learned_scheme.h"
#include "learn/trainer.h"
#include "net/trace_gen.h"
#include "obs/trace_sink.h"
#include "test_util.h"

namespace vbr {
namespace {

learn::FeatureConfig flat_config() {
  learn::FeatureConfig cfg;
  cfg.num_tracks = 6;
  return cfg;
}

std::shared_ptr<const learn::Policy> rule_policy(
    const learn::FeatureConfig& cfg) {
  return std::make_shared<const learn::Policy>(
      learn::make_rate_rule_tabular(cfg, "test-rule", 7));
}

TEST(LearnedScheme, RejectsNullAndInvalidPolicies) {
  EXPECT_THROW(learn::LearnedScheme(nullptr), std::invalid_argument);
  auto broken = std::make_shared<learn::Policy>(
      learn::make_rate_rule_tabular(flat_config(), "broken", 1));
  broken->tabular.table[0] = 9;  // track out of the 6-rung ladder
  EXPECT_THROW(
      learn::LearnedScheme(std::shared_ptr<const learn::Policy>(broken)),
      std::invalid_argument);
}

TEST(LearnedScheme, DecidesByTableLookup) {
  const video::Video v = testutil::default_flat_video(60);
  const learn::FeatureConfig cfg = flat_config();
  auto policy = std::make_shared<learn::Policy>(
      learn::make_rate_rule_tabular(cfg, "crafted", 1));

  // Pin one specific state to a recognizable answer.
  const abr::StreamContext ctx = testutil::make_context(v, 10, 6.0, 2.0e6, 3);
  learn::Signals sig;
  learn::signals_from_context(ctx, cfg, sig);
  const std::uint32_t state = learn::state_id(sig, cfg);
  policy->tabular.table[state] = 5;
  learn::LearnedScheme scheme(policy);
  EXPECT_EQ(scheme.decide(ctx).track, 5u);
  EXPECT_EQ(scheme.name(), "learned-tabular");

  // An unseen state falls through to the coarse projection, then default.
  policy->tabular.table[state] = learn::kUnseen;
  policy->tabular.coarse[learn::coarse_from_state(state, cfg)] = 2;
  learn::LearnedScheme coarse_scheme(policy);
  EXPECT_EQ(coarse_scheme.decide(ctx).track, 2u);

  policy->tabular.coarse[learn::coarse_from_state(state, cfg)] =
      learn::kUnseen;
  policy->tabular.default_track = 1;
  learn::LearnedScheme default_scheme(policy);
  EXPECT_EQ(default_scheme.decide(ctx).track, 1u);
}

TEST(LearnedScheme, MlpDecisionsMatchPolicySelect) {
  const video::Video v = testutil::default_flat_video(60);
  const learn::FeatureConfig cfg = flat_config();
  auto policy = std::make_shared<const learn::Policy>(
      learn::make_random_mlp(cfg, 8, 3, "mlp-test", 1));
  learn::LearnedScheme scheme(policy);
  EXPECT_EQ(scheme.name(), "learned-mlp");
  std::vector<double> fv;
  std::vector<double> scratch;
  for (std::size_t chunk : {0u, 9u, 30u}) {
    const abr::StreamContext ctx =
        testutil::make_context(v, chunk, 5.0 + static_cast<double>(chunk),
                               1.1e6 * static_cast<double>(chunk + 1), 2);
    learn::Signals sig;
    learn::signals_from_context(ctx, cfg, sig);
    learn::feature_vector(sig, cfg, fv);
    EXPECT_EQ(scheme.decide(ctx).track,
              learn::policy_select(*policy, 0, fv, scratch));
  }
}

TEST(LearnedScheme, ThrowsOnLadderMismatch) {
  learn::FeatureConfig narrow = flat_config();
  narrow.num_tracks = 3;
  learn::LearnedScheme scheme(rule_policy(narrow));
  const video::Video v = testutil::default_flat_video(60);  // 6 rungs
  const abr::StreamContext ctx = testutil::make_context(v, 0, 5.0, 1e6);
  try {
    (void)scheme.decide(ctx);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("policy trained for 3 tracks"),
              std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(LearnedScheme, AnnotateStampsPolicyProvenance) {
  learn::LearnedScheme scheme(rule_policy(flat_config()));
  obs::DecisionEvent event;
  ASSERT_FALSE(event.policy.has_value());
  scheme.annotate_event(event);
  ASSERT_TRUE(event.policy.has_value());
  EXPECT_EQ(event.policy->id, "test-rule");
  EXPECT_EQ(event.policy->version, 7u);
}

/// Serialized observation of a learned-scheme fleet run: the full decision
/// event stream (JSONL bytes, policy provenance included) plus the result
/// JSON. Thread-schedule dependence shows up as a byte difference.
std::string run_learned_fleet(std::shared_ptr<const learn::Policy> policy,
                              const std::vector<net::Trace>& traces,
                              unsigned threads) {
  fleet::FleetSpec spec;
  spec.catalog.num_titles = 8;
  spec.catalog.title_duration_s = 60.0;
  spec.arrivals.horizon_s = 240.0;
  spec.arrivals.max_sessions = 80;
  spec.threads = threads;
  fleet::FleetClientClass learned;
  learned.label = "learned";
  learned.make_scheme = [policy] {
    return std::make_unique<learn::LearnedScheme>(policy);
  };
  spec.classes.push_back(learned);
  spec.traces = traces;
  obs::MemoryTraceSink sink;
  spec.trace = &sink;
  const fleet::FleetResult result = fleet::run_fleet(spec);
  std::ostringstream out;
  for (const obs::DecisionEvent& e : sink.events()) {
    out << obs::to_jsonl(e) << '\n';
  }
  result.write_json(out);
  return out.str();
}

TEST(LearnedScheme, FleetDecisionsByteIdenticalAcrossThreads) {
  const std::vector<net::Trace> traces = net::make_fcc_trace_set(12, 11);
  const auto policy = rule_policy(flat_config());
  const std::string one = run_learned_fleet(policy, traces, 1);
  EXPECT_GT(one.size(), 10000u);
  // The policy provenance must actually be in the recorded stream.
  EXPECT_NE(one.find("\"policy\":{\"id\":\"test-rule\",\"ver\":7}"),
            std::string::npos);
  EXPECT_EQ(one, run_learned_fleet(policy, traces, 2));
  EXPECT_EQ(one, run_learned_fleet(policy, traces, 8));
}

TEST(LearnedScheme, AbFlashCrowdLearnedBeatsABaseline) {
  // The fleet-scale acceptance pin: train an MPC-imitation tabular policy
  // on an FCC rollout, then A/B it against CAVA and live MPC under a
  // flash-crowd arrival process. After BH correction across the whole
  // report (one family), the learned arm must significantly beat at least
  // one baseline on at least one pluggable QoE model, with the difference
  // pointing in the learned arm's favor. Counter-deterministic, so this is
  // a stable pin.
  const std::vector<net::Trace> traces = net::make_fcc_trace_set(50, 11);

  // Teacher rollout + imitation (same shape as the abrtrain recipe, sized
  // for a test).
  fleet::FleetSpec roll;
  roll.arrivals.horizon_s = 840.0;
  roll.arrivals.max_sessions = 400;
  roll.cache.capacity_bits = 1000.0 * 8e6;
  roll.watch.full_watch_prob = 0.6;
  fleet::FleetClientClass teacher;
  teacher.label = "MPC";
  teacher.make_scheme = [] {
    return std::make_unique<abr::Mpc>(abr::mpc_config());
  };
  roll.classes.push_back(teacher);
  roll.traces = traces;
  obs::MemoryTraceSink sink;
  roll.trace = &sink;
  (void)fleet::run_fleet(roll);
  const std::vector<obs::DecisionEvent> events(sink.events().begin(),
                                               sink.events().end());
  const fleet::Catalog catalog(roll.catalog);
  learn::FeatureConfig cfg;
  cfg.num_tracks = catalog.title(0).num_tracks();
  const learn::Dataset ds = learn::build_dataset(
      events, cfg,
      [&catalog](const obs::DecisionEvent& ev) -> const video::Video* {
        if (!ev.edge.has_value() || ev.edge->title >= catalog.num_titles()) {
          return nullptr;
        }
        return &catalog.title(static_cast<std::size_t>(ev.edge->title));
      });
  ASSERT_GT(ds.examples.size(), 5000u);
  const auto policy = std::make_shared<const learn::Policy>(
      learn::train_tabular(ds, cfg, learn::TrainerConfig{}, "mpc-imitate", 1));

  // Flash-crowd A/B: learned vs CAVA vs MPC on the same catalog shape.
  fleet::FleetSpec ab;
  ab.cache.capacity_bits = 1000.0 * 8e6;
  ab.watch.full_watch_prob = 0.6;
  ab.arrivals.kind = fleet::ArrivalKind::kFlashCrowd;
  ab.arrivals.rate_per_s = 0.5;
  ab.arrivals.horizon_s = 900.0;
  ab.arrivals.burst_start_s = 240.0;
  ab.arrivals.burst_duration_s = 120.0;
  ab.arrivals.burst_multiplier = 8.0;
  ab.arrivals.max_sessions = 800;
  ab.traces = traces;
  fleet::FleetClientClass learned_arm;
  learned_arm.label = "learned";
  learned_arm.make_scheme = [policy] {
    return std::make_unique<learn::LearnedScheme>(policy);
  };
  fleet::FleetClientClass cava_arm;
  cava_arm.label = "cava";
  cava_arm.make_scheme = [] { return core::make_cava_p123(); };
  fleet::FleetClientClass mpc_arm;
  mpc_arm.label = "mpc";
  mpc_arm.make_scheme = [] {
    return std::make_unique<abr::Mpc>(abr::mpc_config());
  };
  ab.experiment.arms.push_back(learned_arm);
  ab.experiment.arms.push_back(cava_arm);
  ab.experiment.arms.push_back(mpc_arm);
  const fleet::FleetResult result = fleet::run_fleet(ab);
  ASSERT_TRUE(result.experiment_enabled);

  exp::AbAnalysisConfig acfg;
  acfg.bootstrap.resamples = 300;
  const exp::AbReport report = exp::analyze_ab(result, acfg);
  ASSERT_EQ(report.arm_labels.size(), 3u);
  ASSERT_EQ(report.arm_labels[0], "learned");

  // Scan the QoE-model metrics (they lead the metric list) for a
  // significant pair involving arm 0 where the learned mean is higher.
  bool learned_wins = false;
  std::ostringstream table;
  for (std::size_t m = 0; m < result.qoe_model_names.size(); ++m) {
    const exp::AbMetricReport& metric = report.metrics[m];
    for (const exp::AbPairTest& pair : metric.pairs) {
      if (pair.arm_a != 0) {
        continue;  // only learned-vs-baseline pairs
      }
      table << metric.metric << " vs " << report.arm_labels[pair.arm_b]
            << ": diff=" << pair.diff.point
            << " significant=" << pair.significant << '\n';
      // diff = mean(learned) - mean(baseline); QoE models score up-is-good.
      if (pair.significant && pair.diff.point > 0.0) {
        learned_wins = true;
      }
    }
  }
  EXPECT_TRUE(learned_wins)
      << "learned arm never significantly beat a baseline on any QoE model:\n"
      << table.str();
}

}  // namespace
}  // namespace vbr
