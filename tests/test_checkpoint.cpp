// Crash-safe fleet checkpoints (fleet/checkpoint.h): kill-at-any-point
// resume-to-byte-identical-output across thread counts, save/load
// exactness, stale/corrupt checkpoint rejection with named errors, and
// errno-carrying save failures.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "abr/bba.h"
#include "abr/scheme.h"
#include "exp/ab.h"
#include "fleet/checkpoint.h"
#include "fleet/fleet.h"
#include "obs/jsonl_io.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "test_util.h"

namespace vbr {
namespace {

std::vector<net::Trace> two_traces() {
  std::vector<net::Trace> traces;
  traces.push_back(testutil::flat_trace(4e6, 600.0));
  traces.push_back(testutil::flat_trace(1.5e6, 600.0));
  return traces;
}

/// The checkpoint test fleet: ~40 mixed-scheme sessions over 6 titles with
/// an eviction-prone cache, telemetry on, periodic checkpoints every 8
/// sessions.
fleet::FleetSpec ck_spec(const std::vector<net::Trace>& traces,
                         const std::string& checkpoint_path) {
  fleet::FleetSpec spec;
  spec.catalog.num_titles = 6;
  spec.catalog.title_duration_s = 40.0;
  spec.arrivals.rate_per_s = 0.3;
  spec.arrivals.horizon_s = 150.0;
  spec.arrivals.max_sessions = 40;
  spec.classes.resize(2);
  spec.classes[0].label = "bba";
  spec.classes[0].make_scheme = [] { return std::make_unique<abr::Bba>(); };
  spec.classes[1].label = "fixed1";
  spec.classes[1].make_scheme = [] {
    return std::make_unique<abr::FixedTrackScheme>(1);
  };
  spec.traces = traces;
  spec.cache.capacity_bits = 1.2e9;
  spec.watch.full_watch_prob = 0.5;
  spec.watch.mean_partial_s = 20.0;
  spec.watch.min_watch_s = 4.0;
  spec.session.startup_latency_s = 4.0;
  spec.checkpoint_path = checkpoint_path;
  spec.checkpoint_every = 8;
  return spec;
}

/// Full serialized observation of one completed run: merged events,
/// deterministic metrics fingerprint, report JSON, per-session table.
std::string run_and_serialize(fleet::FleetSpec spec, unsigned threads) {
  obs::MemoryTraceSink sink;
  obs::MetricsRegistry registry;
  spec.trace = &sink;
  spec.metrics = &registry;
  spec.threads = threads;
  const fleet::FleetResult result = fleet::run_fleet(spec);

  std::ostringstream out;
  for (const obs::DecisionEvent& ev : sink.events()) {
    out << obs::to_jsonl(ev) << '\n';
  }
  out << registry.deterministic_fingerprint() << '\n';
  result.write_json(out);
  for (const fleet::FleetSessionRecord& r : result.sessions) {
    out << r.session_id << ' ' << r.arrival_s << ' ' << r.title << ' '
        << r.class_index << ' ' << r.chunks << ' ' << r.edge_hits << ' '
        << r.qoe.data_usage_mb << '\n';
  }
  return out.str();
}

/// Runs until the kill schedule fires; the final checkpoint lands on disk.
void run_until_killed(fleet::FleetSpec spec, unsigned threads,
                      std::uint64_t kill_after) {
  obs::MemoryTraceSink sink;
  obs::MetricsRegistry registry;
  spec.trace = &sink;
  spec.metrics = &registry;
  spec.threads = threads;
  spec.kill.after_sessions = kill_after;
  try {
    (void)fleet::run_fleet(spec);
    FAIL() << "expected FleetKilled (kill_after=" << kill_after << ")";
  } catch (const fleet::FleetKilled& k) {
    EXPECT_GE(k.sessions_completed(), kill_after);
    EXPECT_EQ(k.checkpoint_path(), spec.checkpoint_path);
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream(path, std::ios::binary) << bytes;
}

/// Appends the canonical "end <8hex>\n" trailer (the checksum covers the
/// payload plus the "end " prefix, mirroring FleetCheckpoint::save).
std::string with_trailer(std::string body) {
  body += "end ";
  const std::uint32_t crc = obs::line_checksum(body);
  char hex[9];
  std::snprintf(hex, sizeof hex, "%08x", crc);
  body += hex;
  body += '\n';
  return body;
}

TEST(Checkpoint, KillAndResumeIsByteIdenticalAtAnyPointAndThreadCount) {
  const std::vector<net::Trace> traces = two_traces();
  const std::string golden =
      run_and_serialize(ck_spec(traces, ""), 1);  // uninterrupted, no ckpt
  ASSERT_GT(golden.size(), 1000u);

  int case_id = 0;
  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const std::uint64_t kill_after : {std::uint64_t{1},
                                           std::uint64_t{9},
                                           std::uint64_t{25}}) {
      const std::string path = testing::TempDir() + "ck_case_" +
                               std::to_string(case_id++) + ".ckpt";
      std::remove(path.c_str());
      run_until_killed(ck_spec(traces, path), threads, kill_after);
      fleet::FleetSpec resume = ck_spec(traces, path);
      resume.resume = true;
      EXPECT_EQ(run_and_serialize(resume, threads), golden)
          << "threads=" << threads << " kill_after=" << kill_after;
      std::remove(path.c_str());
    }
  }
}

TEST(Checkpoint, RepeatedKillsChainToTheSameGolden) {
  // The soak pattern: kill, resume, kill again further in, resume again —
  // each leg picks up from the last checkpoint and the final output still
  // matches an uninterrupted run byte for byte.
  const std::vector<net::Trace> traces = two_traces();
  const std::string golden = run_and_serialize(ck_spec(traces, ""), 2);
  const std::string path = testing::TempDir() + "ck_chain.ckpt";
  std::remove(path.c_str());

  run_until_killed(ck_spec(traces, path), 2, 4);
  fleet::FleetSpec mid = ck_spec(traces, path);
  mid.resume = true;
  run_until_killed(mid, 8, 17);
  fleet::FleetSpec last = ck_spec(traces, path);
  last.resume = true;
  run_until_killed(last, 1, 29);

  fleet::FleetSpec fin = ck_spec(traces, path);
  fin.resume = true;
  EXPECT_EQ(run_and_serialize(fin, 2), golden);
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumeWithAbsentFileIsAFreshRun) {
  // One flag serves every iteration of a kill/resume loop: when the
  // checkpoint file does not exist yet, --resume is a plain fresh run.
  const std::vector<net::Trace> traces = two_traces();
  const std::string path = testing::TempDir() + "ck_absent.ckpt";
  std::remove(path.c_str());
  fleet::FleetSpec spec = ck_spec(traces, path);
  spec.resume = true;
  const std::string out = run_and_serialize(spec, 2);
  EXPECT_EQ(out, run_and_serialize(ck_spec(traces, ""), 2));
  std::remove(path.c_str());
}

TEST(Checkpoint, SaveLoadSaveIsByteExact) {
  // load() is an exact inverse of save(): re-serializing a loaded
  // checkpoint reproduces the file byte for byte (doubles are shortest
  // round-trip, telemetry lines are canonical).
  const std::vector<net::Trace> traces = two_traces();
  const std::string path = testing::TempDir() + "ck_roundtrip.ckpt";
  std::remove(path.c_str());
  run_until_killed(ck_spec(traces, path), 2, 13);

  const fleet::FleetCheckpoint ck = fleet::FleetCheckpoint::load(path);
  EXPECT_GT(ck.num_sessions, 13u);  // rate x horizon yields ~37 arrivals
  EXPECT_GE(ck.sessions_done, 13u);
  EXPECT_EQ(ck.sessions.size(), ck.sessions_done);

  const std::string copy = path + ".copy";
  ck.save(copy);
  EXPECT_EQ(read_file(copy), read_file(path));
  std::remove(path.c_str());
  std::remove(copy.c_str());
}

TEST(Checkpoint, StaleCheckpointFromDifferentWorkloadRejected) {
  const std::vector<net::Trace> traces = two_traces();
  const std::string path = testing::TempDir() + "ck_stale.ckpt";
  std::remove(path.c_str());
  run_until_killed(ck_spec(traces, path), 2, 10);

  // Same file, different workload: seed, class mix weight, and arrival cap
  // each change the fingerprint (or geometry) and must be rejected.
  {
    fleet::FleetSpec other = ck_spec(traces, path);
    other.resume = true;
    other.seed = 8;
    EXPECT_THROW((void)fleet::run_fleet(other), fleet::CheckpointError);
  }
  {
    fleet::FleetSpec other = ck_spec(traces, path);
    other.resume = true;
    other.classes[0].weight = 2.0;
    EXPECT_THROW((void)fleet::run_fleet(other), fleet::CheckpointError);
  }
  {
    fleet::FleetSpec other = ck_spec(traces, path);
    other.resume = true;
    other.arrivals.max_sessions = 39;
    EXPECT_THROW((void)fleet::run_fleet(other), fleet::CheckpointError);
  }
  // ... while execution knobs are fingerprint-exempt: a different thread
  // count / batch size resumes fine (proved byte-identical above).
  {
    fleet::FleetSpec same = ck_spec(traces, path);
    same.resume = true;
    same.threads = 3;
    same.title_batch = 1;
    obs::MemoryTraceSink sink;
    obs::MetricsRegistry registry;
    same.trace = &sink;
    same.metrics = &registry;
    EXPECT_NO_THROW((void)fleet::run_fleet(same));
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptFilesRejectedWithNamedErrors) {
  const std::vector<net::Trace> traces = two_traces();
  const std::string path = testing::TempDir() + "ck_corrupt.ckpt";
  std::remove(path.c_str());
  run_until_killed(ck_spec(traces, path), 2, 10);
  const std::string good = read_file(path);
  ASSERT_GT(good.size(), 200u);

  const auto expect_rejected = [&](const std::string& bytes,
                                   const char* what) {
    write_file(path, bytes);
    EXPECT_THROW((void)fleet::FleetCheckpoint::load(path),
                 fleet::CheckpointError)
        << what;
  };
  expect_rejected("", "empty file");
  expect_rejected(good.substr(0, good.size() / 2), "truncated file");
  {
    std::string flipped = good;
    flipped[good.size() / 2] ^= 0x20;  // damage one interior byte
    expect_rejected(flipped, "interior bit flip (trailer mismatch)");
  }
  expect_rejected(with_trailer("NOTACKPT 1\nmeta 0 0 0 0 0\n"),
                  "bad magic");
  expect_rejected(with_trailer("VBRFLEETCKPT 99\nmeta 0 0 0 0 0\n"),
                  "unsupported version");
  {
    // Valid trailer, garbage body: the field parser must name the problem,
    // not crash.
    expect_rejected(with_trailer("VBRFLEETCKPT 3\nmeta not-a-number\n"),
                    "malformed meta line");
  }
  // A pre-experiment (v2) checkpoint has no experiment fingerprint slot:
  // the version gate rejects it rather than guessing.
  expect_rejected(with_trailer("VBRFLEETCKPT 2\nmeta 0 0 0 0 0\n"),
                  "pre-experiment checkpoint version");

  // And the full resume path surfaces the same rejection.
  write_file(path, good.substr(0, good.size() - 3));
  fleet::FleetSpec resume = ck_spec(traces, path);
  resume.resume = true;
  obs::MemoryTraceSink sink;
  obs::MetricsRegistry registry;
  resume.trace = &sink;
  resume.metrics = &registry;
  EXPECT_THROW((void)fleet::run_fleet(resume), fleet::CheckpointError);
  std::remove(path.c_str());
}

TEST(Checkpoint, SaveFailuresCarryErrno) {
  // A checkpoint routed through a regular file fails with ENOTDIR (robust
  // under root, unlike permission-bit tricks) — first from save() itself,
  // then surfaced out of run_fleet's checkpoint barrier.
  const std::string blocker = testing::TempDir() + "ck_not_a_dir";
  write_file(blocker, "x");
  const std::string bad_path = blocker + "/fleet.ckpt";

  fleet::FleetCheckpoint ck;
  try {
    ck.save(bad_path);
    FAIL() << "expected std::system_error";
  } catch (const std::system_error& e) {
    EXPECT_EQ(e.code().value(), ENOTDIR);
  }

  const std::vector<net::Trace> traces = two_traces();
  fleet::FleetSpec spec = ck_spec(traces, bad_path);
  spec.threads = 2;
  try {
    (void)fleet::run_fleet(spec);
    FAIL() << "expected std::system_error from the checkpoint barrier";
  } catch (const std::system_error& e) {
    EXPECT_EQ(e.code().value(), ENOTDIR);
  }
  std::remove(blocker.c_str());
}

TEST(Checkpoint, KillWithoutCheckpointPathStillStopsCleanly) {
  const std::vector<net::Trace> traces = two_traces();
  fleet::FleetSpec spec = ck_spec(traces, "");
  spec.threads = 2;
  spec.kill.after_sessions = 5;
  try {
    (void)fleet::run_fleet(spec);
    FAIL() << "expected FleetKilled";
  } catch (const fleet::FleetKilled& k) {
    EXPECT_GE(k.sessions_completed(), 5u);
    EXPECT_TRUE(k.checkpoint_path().empty());
  }
}

TEST(Checkpoint, RandomKillScheduleIsSeededAndInRange) {
  const fleet::KillSchedule a = fleet::KillSchedule::random(7, 0, 100);
  const fleet::KillSchedule b = fleet::KillSchedule::random(7, 0, 100);
  EXPECT_EQ(a.after_sessions, b.after_sessions);  // same draw, same point
  EXPECT_GE(a.after_sessions, 1u);
  EXPECT_LE(a.after_sessions, 100u);
  // Different rounds move the kill point (with overwhelming likelihood
  // over 64 rounds of a 100-wide range).
  bool moved = false;
  for (std::uint64_t round = 1; round <= 64 && !moved; ++round) {
    moved = fleet::KillSchedule::random(7, round, 100).after_sessions !=
            a.after_sessions;
  }
  EXPECT_TRUE(moved);
  EXPECT_EQ(fleet::KillSchedule::random(3, 5, 1).after_sessions, 1u);
}

/// ck_spec with the two classes moved into experiment arms (a 2-arm A/B
/// run over the same workload), checkpointing every 8 sessions.
fleet::FleetSpec ab_ck_spec(const std::vector<net::Trace>& traces,
                            const std::string& checkpoint_path) {
  fleet::FleetSpec spec = ck_spec(traces, checkpoint_path);
  spec.experiment.arms = std::move(spec.classes);
  spec.classes.clear();
  return spec;
}

/// run_and_serialize plus the experiment outputs: stratum and per-model
/// scores per session, and the full ab_report.json.
std::string run_and_serialize_ab(fleet::FleetSpec spec, unsigned threads) {
  obs::MemoryTraceSink sink;
  obs::MetricsRegistry registry;
  spec.trace = &sink;
  spec.metrics = &registry;
  spec.threads = threads;
  const fleet::FleetResult result = fleet::run_fleet(spec);

  std::ostringstream out;
  for (const obs::DecisionEvent& ev : sink.events()) {
    out << obs::to_jsonl(ev) << '\n';
  }
  out << registry.deterministic_fingerprint() << '\n';
  result.write_json(out);
  for (const fleet::FleetSessionRecord& r : result.sessions) {
    out << r.session_id << ' ' << r.class_index << ' ' << r.stratum;
    for (const double s : r.qoe_scores) {
      out << ' ' << s;
    }
    out << '\n';
  }
  exp::AbAnalysisConfig cfg;
  cfg.bootstrap.resamples = 200;
  exp::analyze_ab(result, cfg).write_json(out);
  return out.str();
}

TEST(Checkpoint, KillAndResumeMidExperimentIsByteIdentical) {
  // The golden test for satellite (c): a crash in the middle of an A/B run
  // must resume to the same assignment table, session scores, and analysis
  // report, byte for byte, at any thread count.
  const std::vector<net::Trace> traces = two_traces();
  const std::string golden = run_and_serialize_ab(ab_ck_spec(traces, ""), 1);
  ASSERT_GT(golden.size(), 1000u);
  ASSERT_NE(golden.find("\"experiment\""), std::string::npos);

  int case_id = 0;
  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const std::uint64_t kill_after :
         {std::uint64_t{3}, std::uint64_t{21}}) {
      const std::string path = testing::TempDir() + "ck_ab_case_" +
                               std::to_string(case_id++) + ".ckpt";
      std::remove(path.c_str());
      run_until_killed(ab_ck_spec(traces, path), threads, kill_after);
      fleet::FleetSpec resume = ab_ck_spec(traces, path);
      resume.resume = true;
      EXPECT_EQ(run_and_serialize_ab(resume, threads), golden)
          << "threads=" << threads << " kill_after=" << kill_after;
      std::remove(path.c_str());
    }
  }
}

TEST(Checkpoint, ResumeWithChangedExperimentNamesTheField) {
  // Resuming under a different arm table would silently mix assignment
  // schedules; the rejection must name FleetSpec.experiment, not fall back
  // to the generic fingerprint mismatch.
  const std::vector<net::Trace> traces = two_traces();
  const std::string path = testing::TempDir() + "ck_ab_stale.ckpt";
  std::remove(path.c_str());
  run_until_killed(ab_ck_spec(traces, path), 2, 10);

  const auto expect_experiment_rejection = [&](fleet::FleetSpec spec) {
    spec.resume = true;
    obs::MemoryTraceSink sink;
    obs::MetricsRegistry registry;
    spec.trace = &sink;
    spec.metrics = &registry;
    try {
      (void)fleet::run_fleet(spec);
      FAIL() << "expected CheckpointError naming FleetSpec.experiment";
    } catch (const fleet::CheckpointError& e) {
      EXPECT_NE(std::string(e.what()).find("FleetSpec.experiment"),
                std::string::npos)
          << "actual message: " << e.what();
    }
  };
  {  // re-randomized assignment seed
    fleet::FleetSpec spec = ab_ck_spec(traces, path);
    spec.experiment.seed = 999;
    expect_experiment_rejection(spec);
  }
  {  // renamed arm
    fleet::FleetSpec spec = ab_ck_spec(traces, path);
    spec.experiment.arms[1].label = "renamed";
    expect_experiment_rejection(spec);
  }
  {  // different stratification
    fleet::FleetSpec spec = ab_ck_spec(traces, path);
    spec.experiment.trace_strata = 2;
    expect_experiment_rejection(spec);
  }
  {  // scoring toggled off
    fleet::FleetSpec spec = ab_ck_spec(traces, path);
    spec.experiment.score_qoe_models = false;
    expect_experiment_rejection(spec);
  }
  // An experiment checkpoint resumed by a non-experiment spec with the
  // same shape is also an experiment change.
  {
    fleet::FleetSpec spec = ck_spec(traces, path);
    expect_experiment_rejection(spec);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, ExperimentFingerprintCoversTheWholeBlock) {
  const std::vector<net::Trace> traces = two_traces();
  const fleet::FleetSpec base = ab_ck_spec(traces, "");
  const std::uint64_t fp = fleet::fleet_experiment_fingerprint(base);
  EXPECT_EQ(fleet::fleet_experiment_fingerprint(ab_ck_spec(traces, "")), fp);

  fleet::FleetSpec seed = ab_ck_spec(traces, "");
  seed.experiment.seed = 2;
  EXPECT_NE(fleet::fleet_experiment_fingerprint(seed), fp);
  fleet::FleetSpec strata = ab_ck_spec(traces, "");
  strata.experiment.trace_strata = 8;
  EXPECT_NE(fleet::fleet_experiment_fingerprint(strata), fp);
  fleet::FleetSpec label = ab_ck_spec(traces, "");
  label.experiment.arms[0].label = "other";
  EXPECT_NE(fleet::fleet_experiment_fingerprint(label), fp);
  fleet::FleetSpec scoring = ab_ck_spec(traces, "");
  scoring.experiment.score_qoe_models = false;
  EXPECT_NE(fleet::fleet_experiment_fingerprint(scoring), fp);
  fleet::FleetSpec off = ck_spec(traces, "");
  EXPECT_NE(fleet::fleet_experiment_fingerprint(off), fp);

  // The experiment fingerprint folds into the whole-spec fingerprint too.
  EXPECT_NE(fleet::fleet_spec_fingerprint(seed),
            fleet::fleet_spec_fingerprint(base));
}

TEST(Checkpoint, FleetSpecValidateNamesTheField) {
  const std::vector<net::Trace> traces = two_traces();
  const auto message_of = [&](fleet::FleetSpec spec) {
    try {
      spec.validate();
      return std::string("(no error)");
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
  };
  {
    fleet::FleetSpec spec = ck_spec(traces, "");
    spec.classes.clear();
    EXPECT_NE(message_of(spec).find("FleetSpec.classes"), std::string::npos);
  }
  {
    fleet::FleetSpec spec = ck_spec(traces, "");
    spec.classes[1].weight = -0.5;
    EXPECT_NE(message_of(spec).find("FleetSpec.classes[1].weight"),
              std::string::npos);
  }
  {
    fleet::FleetSpec spec = ck_spec(traces, "");
    spec.title_batch = 0;
    EXPECT_NE(message_of(spec).find("FleetSpec.title_batch"),
              std::string::npos);
  }
  {
    fleet::FleetSpec spec = ck_spec(traces, "");
    spec.traces = {};
    EXPECT_NE(message_of(spec).find("FleetSpec.traces"), std::string::npos);
  }
  {
    fleet::FleetSpec spec = ck_spec(traces, "");
    spec.resume = true;
    spec.checkpoint_path.clear();
    EXPECT_NE(message_of(spec).find("FleetSpec.resume"), std::string::npos);
  }
}

// -----------------------------------------------------------------------
// Event-engine crash safety: the shared-virtual-time engine writes
// "VBRFLEETCKPT 4" (one extra "engine <events_done>" line), resumes to
// byte-identical output, and neither engine can resume the other's files.
// -----------------------------------------------------------------------

/// ck_spec running under the event engine, checkpointing every 8 EVENTS
/// (the engine's checkpoint_every unit is processed chunk decisions).
fleet::FleetSpec event_ck_spec(const std::vector<net::Trace>& traces,
                               const std::string& checkpoint_path) {
  fleet::FleetSpec spec = ck_spec(traces, checkpoint_path);
  spec.engine = fleet::FleetEngine::kEvent;
  return spec;
}

TEST(Checkpoint, EventEngineKillAndResumeIsByteIdentical) {
  const std::vector<net::Trace> traces = two_traces();
  // The reference is the uninterrupted STEPPER run: a killed-and-resumed
  // event-engine run must land on the cross-engine golden, not merely on
  // its own replay.
  const std::string golden = run_and_serialize(ck_spec(traces, ""), 1);
  ASSERT_GT(golden.size(), 1000u);

  int case_id = 0;
  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const std::uint64_t kill_after : {std::uint64_t{1},
                                           std::uint64_t{9},
                                           std::uint64_t{25}}) {
      const std::string path = testing::TempDir() + "ck_event_" +
                               std::to_string(case_id++) + ".ckpt";
      std::remove(path.c_str());
      run_until_killed(event_ck_spec(traces, path), threads, kill_after);
      fleet::FleetSpec resume = event_ck_spec(traces, path);
      resume.resume = true;
      EXPECT_EQ(run_and_serialize(resume, threads), golden)
          << "threads=" << threads << " kill_after=" << kill_after;
      std::remove(path.c_str());
    }
  }
}

TEST(Checkpoint, EventEngineRepeatedKillsChainToTheSameGolden) {
  const std::vector<net::Trace> traces = two_traces();
  const std::string golden = run_and_serialize(ck_spec(traces, ""), 2);
  const std::string path = testing::TempDir() + "ck_event_chain.ckpt";
  std::remove(path.c_str());

  run_until_killed(event_ck_spec(traces, path), 2, 4);
  fleet::FleetSpec mid = event_ck_spec(traces, path);
  mid.resume = true;
  run_until_killed(mid, 8, 17);
  fleet::FleetSpec last = event_ck_spec(traces, path);
  last.resume = true;
  run_until_killed(last, 1, 29);

  fleet::FleetSpec fin = event_ck_spec(traces, path);
  fin.resume = true;
  EXPECT_EQ(run_and_serialize(fin, 2), golden);
  std::remove(path.c_str());
}

TEST(Checkpoint, EventEngineWritesV4AndRoundTripsByteExact) {
  const std::vector<net::Trace> traces = two_traces();
  const std::string path = testing::TempDir() + "ck_event_v4.ckpt";
  std::remove(path.c_str());
  run_until_killed(event_ck_spec(traces, path), 2, 13);

  const std::string bytes = read_file(path);
  EXPECT_EQ(bytes.rfind("VBRFLEETCKPT 4\n", 0), 0u) << "v4 header";
  EXPECT_NE(bytes.find("\nengine "), std::string::npos)
      << "event-progress line";

  const fleet::FleetCheckpoint ck = fleet::FleetCheckpoint::load(path);
  EXPECT_EQ(ck.version, fleet::FleetCheckpoint::kEventVersion);
  EXPECT_GT(ck.events_done, 0u);
  EXPECT_GE(ck.sessions_done, 13u);
  EXPECT_EQ(ck.sessions.size(), ck.sessions_done);

  const std::string copy = path + ".copy";
  ck.save(copy);
  EXPECT_EQ(read_file(copy), read_file(path));
  std::remove(path.c_str());
  std::remove(copy.c_str());
}

TEST(Checkpoint, CrossEngineResumeRejectedBothWays) {
  const std::vector<net::Trace> traces = two_traces();
  const auto resume_error = [&](fleet::FleetSpec spec) {
    spec.resume = true;
    // Telemetry collection is fingerprint-defining; match the killed runs
    // (which collected both streams) so the CROSS-MODE rejection is what
    // fires, not a workload mismatch.
    obs::MemoryTraceSink sink;
    obs::MetricsRegistry registry;
    spec.trace = &sink;
    spec.metrics = &registry;
    try {
      (void)fleet::run_fleet(spec);
      return std::string("(no error)");
    } catch (const fleet::CheckpointError& e) {
      return std::string(e.what());
    }
  };

  // A stepper (v3) file under the event engine...
  const std::string v3_path = testing::TempDir() + "ck_cross_v3.ckpt";
  std::remove(v3_path.c_str());
  run_until_killed(ck_spec(traces, v3_path), 2, 10);
  const std::string ev_msg = resume_error(event_ck_spec(traces, v3_path));
  EXPECT_NE(ev_msg.find("event engine cannot resume"), std::string::npos)
      << ev_msg;
  EXPECT_NE(ev_msg.find("FleetSpec.engine"), std::string::npos) << ev_msg;

  // ...and an event-engine (v4) file under the stepper: both named.
  const std::string v4_path = testing::TempDir() + "ck_cross_v4.ckpt";
  std::remove(v4_path.c_str());
  run_until_killed(event_ck_spec(traces, v4_path), 2, 10);
  const std::string st_msg = resume_error(ck_spec(traces, v4_path));
  EXPECT_NE(st_msg.find("stepper cannot resume"), std::string::npos)
      << st_msg;
  EXPECT_NE(st_msg.find("FleetSpec.engine"), std::string::npos) << st_msg;

  // The fingerprint stays engine-invariant: a v3 file still resumes under
  // the stepper even when the event engine exists (no format coupling).
  fleet::FleetSpec same = ck_spec(traces, v3_path);
  same.resume = true;
  obs::MemoryTraceSink sink;
  obs::MetricsRegistry registry;
  same.trace = &sink;
  same.metrics = &registry;
  EXPECT_NO_THROW((void)fleet::run_fleet(same));
  std::remove(v3_path.c_str());
  std::remove(v4_path.c_str());
}

TEST(Checkpoint, EventCheckpointMutationMatrixRejected) {
  const std::vector<net::Trace> traces = two_traces();
  const std::string path = testing::TempDir() + "ck_event_mut.ckpt";
  std::remove(path.c_str());
  run_until_killed(event_ck_spec(traces, path), 2, 10);
  const std::string good = read_file(path);
  ASSERT_GT(good.size(), 200u);

  // Strip the "end <8hex>\n" trailer so mutations re-seal with a VALID
  // checksum: these rejections must come from the parser, not the CRC.
  const std::size_t trailer = good.rfind("end ");
  ASSERT_NE(trailer, std::string::npos);
  const std::string body = good.substr(0, trailer);

  const auto expect_rejected = [&](const std::string& mutated,
                                   const char* what) {
    write_file(path, with_trailer(mutated));
    EXPECT_THROW((void)fleet::FleetCheckpoint::load(path),
                 fleet::CheckpointError)
        << what;
  };

  {
    // Version says 3 but the engine line is still present: a v3 parser
    // reads "engine ..." where "titles ..." must be.
    std::string m = body;
    m.replace(0, std::string("VBRFLEETCKPT 4").size(), "VBRFLEETCKPT 3");
    expect_rejected(m, "v3 header with an engine line");
  }
  {
    // Version says 4 but the engine line was cut out.
    std::string m = body;
    const std::size_t at = m.find("\nengine ");
    ASSERT_NE(at, std::string::npos);
    const std::size_t eol = m.find('\n', at + 1);
    m.erase(at, eol - at);
    expect_rejected(m, "v4 header without an engine line");
  }
  {
    // Garbage event count.
    std::string m = body;
    const std::size_t at = m.find("\nengine ");
    ASSERT_NE(at, std::string::npos);
    const std::size_t eol = m.find('\n', at + 1);
    m.replace(at, eol - at, "\nengine not-a-number");
    expect_rejected(m, "malformed engine line");
  }

  // The version gate's error names the accepted range.
  write_file(path, with_trailer("VBRFLEETCKPT 99\nmeta 0 0 0 0 0\n"));
  try {
    (void)fleet::FleetCheckpoint::load(path);
    FAIL() << "expected CheckpointError";
  } catch (const fleet::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("expected 3 or 4"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vbr
