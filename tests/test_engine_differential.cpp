// Differential gate between run_fleet's two execution engines: the
// shared-virtual-time event engine must produce BYTE-identical output to
// the per-session stepper — merged JSONL telemetry, metrics fingerprint,
// report JSON, and the per-session outcome table — across a matrix of
// workload variants (scheme mixes, faults + retries, the full CDN
// hierarchy, in-situ A/B experiments, watchdogs, uncoupled fleets) and at
// 1 / 2 / 8 worker threads each. Streaming aggregation must match the
// materializing path's aggregates exactly.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "abr/bba.h"
#include "abr/mpc.h"
#include "abr/rba.h"
#include "abr/scheme.h"
#include "fleet/fleet.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "test_util.h"

namespace vbr {
namespace {

std::vector<net::Trace> diff_traces() {
  std::vector<net::Trace> traces;
  traces.push_back(testutil::flat_trace(5e6, 600.0));
  traces.push_back(testutil::flat_trace(2.5e6, 600.0));
  traces.push_back(testutil::flat_trace(1.2e6, 600.0));
  return traces;
}

/// Base fleet shared by every variant: ~50 sessions over 6 short titles,
/// a cache sized to force eviction, partial watches.
fleet::FleetSpec base_spec(const std::vector<net::Trace>& traces) {
  fleet::FleetSpec spec;
  spec.catalog.num_titles = 6;
  spec.catalog.title_duration_s = 40.0;
  spec.catalog.chunk_duration_s = 2.0;
  spec.catalog.zipf_alpha = 0.9;
  spec.arrivals.rate_per_s = 0.4;
  spec.arrivals.horizon_s = 200.0;
  spec.arrivals.max_sessions = 50;
  spec.classes.resize(2);
  spec.classes[0].label = "bba";
  spec.classes[0].make_scheme = [] { return std::make_unique<abr::Bba>(); };
  spec.classes[1].label = "rba";
  spec.classes[1].make_scheme = [] { return std::make_unique<abr::Rba>(); };
  spec.traces = traces;
  spec.cache.capacity_bits = 1.2e9;
  spec.watch.full_watch_prob = 0.5;
  spec.watch.mean_partial_s = 20.0;
  spec.watch.min_watch_s = 4.0;
  spec.session.startup_latency_s = 4.0;
  return spec;
}

/// One workload variant per index; each perturbs the seed so the variants
/// draw genuinely different arrivals / titles / watch times.
fleet::FleetSpec variant_spec(int v, const std::vector<net::Trace>& traces) {
  fleet::FleetSpec spec = base_spec(traces);
  spec.seed = 101 + 97 * static_cast<std::uint64_t>(v);
  switch (v) {
    case 0:
      // Plain cached fleet, mixed BBA / RBA classes.
      break;
    case 1:
      // Uncoupled fleet (no shared delivery state): the engine interleaves
      // all sessions on one timeline instead of chaining titles.
      spec.use_cache = false;
      spec.classes[1].label = "mpc";
      spec.classes[1].make_scheme = [] {
        return std::make_unique<abr::Mpc>();
      };
      break;
    case 2:
      // Faults + retry on one class; the other rides clean.
      spec.classes[0].fault.connect_failure_prob = 0.05;
      spec.classes[0].fault.mid_drop_prob = 0.04;
      spec.classes[0].fault.timeout_prob = 0.03;
      spec.classes[0].retry.max_attempts = 3;
      spec.classes[0].retry.backoff_base_s = 0.25;
      break;
    case 3:
      // Full CDN hierarchy: slow backhaul (real coalescing windows),
      // outages, a brownout, and load shedding.
      spec.cdn.enabled = true;
      spec.cdn.backhaul_bps = 1e6;
      spec.cdn.regional.nodes = 2;
      spec.cdn.regional.capacity_bits = 4e9;
      spec.cdn.regional.outages_per_node = 2;
      spec.cdn.regional.outage_duration_s = 25.0;
      spec.cdn.brownout.start_s = 40.0;
      spec.cdn.brownout.duration_s = 40.0;
      spec.cdn.brownout.rate_scale = 0.5;
      spec.cdn.brownout.extra_latency_s = 0.2;
      spec.cdn.brownout.capacity_scale = 0.5;
      spec.cdn.shed.capacity_sessions = 6.0;
      spec.cdn.shed.active_session_s = 30.0;
      spec.cdn.shed.threshold = 0.5;
      spec.cdn.shed.max_shed_prob = 0.8;
      break;
    case 4: {
      // In-situ A/B experiment: three arms, stratified assignment.
      spec.classes.clear();
      spec.experiment.trace_strata = 3;
      spec.experiment.seed = 4242;
      fleet::FleetClientClass bba;
      bba.label = "bba";
      bba.make_scheme = [] { return std::make_unique<abr::Bba>(); };
      fleet::FleetClientClass lo;
      lo.label = "fixed-lo";
      lo.make_scheme = [] {
        return std::make_unique<abr::FixedTrackScheme>(0);
      };
      fleet::FleetClientClass rba;
      rba.label = "rba";
      rba.make_scheme = [] { return std::make_unique<abr::Rba>(); };
      spec.experiment.arms.push_back(std::move(bba));
      spec.experiment.arms.push_back(std::move(lo));
      spec.experiment.arms.push_back(std::move(rba));
      break;
    }
    case 5:
      // CDN + faults + a tight decision watchdog, all at once.
      spec.cdn.enabled = true;
      spec.cdn.backhaul_bps = 2e6;
      spec.cdn.shed.capacity_sessions = 5.0;
      spec.cdn.shed.threshold = 0.4;
      spec.cdn.shed.max_shed_prob = 0.7;
      spec.classes[1].fault.mid_drop_prob = 0.06;
      spec.classes[1].retry.max_attempts = 2;
      spec.session.watchdog_max_decisions = 12;
      break;
    default:
      ADD_FAILURE() << "unknown variant " << v;
      break;
  }
  return spec;
}

/// Full serialized observation of one run, mirroring test_fleet.cpp:
/// merged JSONL events, metrics fingerprint, report JSON, per-session
/// outcome table.
std::string run_and_serialize(fleet::FleetSpec spec, unsigned threads,
                              fleet::FleetEngine engine) {
  obs::MemoryTraceSink sink;
  obs::MetricsRegistry registry;
  spec.trace = &sink;
  spec.metrics = &registry;
  spec.threads = threads;
  spec.engine = engine;
  const fleet::FleetResult result = fleet::run_fleet(spec);

  std::ostringstream out;
  for (const obs::DecisionEvent& ev : sink.events()) {
    out << obs::to_jsonl(ev) << '\n';
  }
  out << registry.deterministic_fingerprint() << '\n';
  result.write_json(out);
  out << '\n';
  for (const fleet::FleetSessionRecord& r : result.sessions) {
    out << r.session_id << ' ' << r.arrival_s << ' ' << r.title << ' '
        << r.class_index << ' ' << r.trace_index << ' ' << r.chunks << ' '
        << r.edge_hits << ' ' << r.qoe.rebuffer_s << ' '
        << r.qoe.data_usage_mb << ' ' << r.watchdog_aborted << '\n';
  }
  return out.str();
}

class EngineDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineDifferentialTest, EventEngineMatchesStepperByteForByte) {
  const std::vector<net::Trace> traces = diff_traces();
  const int v = GetParam();
  const std::string golden =
      run_and_serialize(variant_spec(v, traces), 1, fleet::FleetEngine::kStepped);
  ASSERT_GT(golden.size(), 1000u);  // the run actually produced telemetry
  // The stepper is already pinned thread-invariant by test_fleet.cpp; here
  // it is the reference the event engine must reproduce at every
  // parallelism, including its own.
  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(golden, run_and_serialize(variant_spec(v, traces), threads,
                                        fleet::FleetEngine::kEvent));
  }
  EXPECT_EQ(golden, run_and_serialize(variant_spec(v, traces), 8,
                                      fleet::FleetEngine::kStepped));
}

INSTANTIATE_TEST_SUITE_P(Variants, EngineDifferentialTest,
                         ::testing::Range(0, 6));

TEST(EngineDifferential, StreamingAggregatesMatchMaterialized) {
  const std::vector<net::Trace> traces = diff_traces();
  // Uncoupled workload — the streaming mode's home turf.
  fleet::FleetSpec materialized = variant_spec(1, traces);
  materialized.engine = fleet::FleetEngine::kEvent;

  fleet::FleetSpec streaming = variant_spec(1, traces);
  streaming.engine = fleet::FleetEngine::kEvent;
  streaming.stream_aggregation = true;

  const auto serialize = [&](fleet::FleetSpec spec) {
    obs::MemoryTraceSink sink;
    obs::MetricsRegistry registry;
    spec.trace = &sink;
    spec.metrics = &registry;
    spec.threads = 4;
    const fleet::FleetResult result = fleet::run_fleet(spec);
    std::ostringstream out;
    for (const obs::DecisionEvent& ev : sink.events()) {
      out << obs::to_jsonl(ev) << '\n';
    }
    out << registry.deterministic_fingerprint() << '\n';
    result.write_json(out);
    return std::make_pair(out.str(), result.sessions.size());
  };

  const auto [mat_bytes, mat_n] = serialize(materialized);
  const auto [stream_bytes, stream_n] = serialize(streaming);
  EXPECT_GT(mat_n, 0u);          // materialized keeps the records...
  EXPECT_EQ(stream_n, 0u);       // ...streaming drops them...
  EXPECT_EQ(mat_bytes, stream_bytes);  // ...and every aggregate byte agrees.
}

TEST(EngineDifferential, StreamingRequiresEventEngine) {
  const std::vector<net::Trace> traces = diff_traces();
  fleet::FleetSpec spec = variant_spec(1, traces);
  spec.stream_aggregation = true;
  spec.engine = fleet::FleetEngine::kStepped;
  EXPECT_THROW(
      {
        try {
          fleet::run_fleet(spec);
        } catch (const std::invalid_argument& e) {
          EXPECT_NE(std::string(e.what()).find(
                        "FleetSpec.stream_aggregation"),
                    std::string::npos)
              << e.what();
          throw;
        }
      },
      std::invalid_argument);

  fleet::FleetSpec ck = variant_spec(1, traces);
  ck.engine = fleet::FleetEngine::kEvent;
  ck.stream_aggregation = true;
  ck.checkpoint_path = "unused.ckpt";
  EXPECT_THROW(fleet::run_fleet(ck), std::invalid_argument);
}

}  // namespace
}  // namespace vbr
