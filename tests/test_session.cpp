// Tests for the trace-driven session simulator.
#include "sim/session.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "net/bandwidth_estimator.h"
#include "test_util.h"

namespace {

using namespace vbr;
using testutil::default_flat_video;
using testutil::flat_trace;
using testutil::make_flat_video;

sim::SessionConfig quick_config() {
  sim::SessionConfig cfg;
  cfg.startup_latency_s = 4.0;  // two 2-second chunks
  cfg.max_buffer_s = 30.0;
  return cfg;
}

TEST(Session, DownloadsEveryChunkInOrder) {
  const video::Video v = default_flat_video(20);
  const net::Trace t = flat_trace(5e6);
  abr::FixedTrackScheme scheme(2);
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r =
      sim::run_session(v, t, scheme, est, quick_config());
  ASSERT_EQ(r.chunks.size(), 20u);
  for (std::size_t i = 0; i < r.chunks.size(); ++i) {
    EXPECT_EQ(r.chunks[i].index, i);
    EXPECT_EQ(r.chunks[i].track, 2u);
  }
}

TEST(Session, DownloadTimesMatchTrace) {
  // Track 2 = 0.8 Mbps, chunks of 1.6 Mb; at 5 Mbps each takes 0.32 s.
  const video::Video v = default_flat_video(5);
  const net::Trace t = flat_trace(5e6);
  abr::FixedTrackScheme scheme(2);
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r =
      sim::run_session(v, t, scheme, est, quick_config());
  for (const sim::ChunkRecord& c : r.chunks) {
    EXPECT_NEAR(c.download_s, 1.6e6 / 5e6, 1e-9);
  }
  EXPECT_NEAR(r.total_bits, 5 * 1.6e6, 1.0);
}

TEST(Session, StartupDelayAtConfiguredLatency) {
  // Downloads at 5 Mbps; with a 4 s startup latency, playback starts after
  // the 2nd chunk lands: 2 * 0.32 s = 0.64 s of wall clock.
  const video::Video v = default_flat_video(10);
  const net::Trace t = flat_trace(5e6);
  abr::FixedTrackScheme scheme(2);
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r =
      sim::run_session(v, t, scheme, est, quick_config());
  EXPECT_NEAR(r.startup_delay_s, 2.0 * 0.32, 1e-9);
}

TEST(Session, NoRebufferWhenBandwidthAmple) {
  const video::Video v = default_flat_video(30);
  const net::Trace t = flat_trace(10e6);
  abr::FixedTrackScheme scheme(4);
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r =
      sim::run_session(v, t, scheme, est, quick_config());
  EXPECT_DOUBLE_EQ(r.total_rebuffer_s, 0.0);
}

TEST(Session, RebufferWhenTrackExceedsBandwidth) {
  // Track 5 = 6.4 Mbps over a 1 Mbps link: playback cannot keep up.
  const video::Video v = default_flat_video(10);
  const net::Trace t = flat_trace(1e6);
  abr::FixedTrackScheme scheme(5);
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r =
      sim::run_session(v, t, scheme, est, quick_config());
  EXPECT_GT(r.total_rebuffer_s, 10.0);
}

TEST(Session, RebufferMatchesDeficitArithmetic) {
  // Chunk downloads take 12.8 s each (6.4 Mbps track over 1 Mbps link) and
  // deliver 2 s of content. After startup (2 chunks buffered = 4 s), each of
  // the remaining 8 chunks stalls 12.8 - buffer. Steady state: buffer is 2 s
  // when a download starts (the chunk that just landed), so each stalls
  // 10.8 s.
  const video::Video v = default_flat_video(10);
  const net::Trace t = flat_trace(1e6);
  abr::FixedTrackScheme scheme(5);
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r =
      sim::run_session(v, t, scheme, est, quick_config());
  // First post-startup download sees 4 s of buffer (stall 8.8), the other
  // seven see 2 s (stall 10.8 each).
  EXPECT_NEAR(r.total_rebuffer_s, 8.8 + 7 * 10.8, 1e-6);
}

TEST(Session, BufferCapGatesDownloads) {
  const video::Video v = default_flat_video(40);
  const net::Trace t = flat_trace(50e6);  // near-instant downloads
  abr::FixedTrackScheme scheme(0);
  net::HarmonicMeanEstimator est(5);
  sim::SessionConfig cfg = quick_config();
  cfg.max_buffer_s = 10.0;
  const sim::SessionResult r = sim::run_session(v, t, scheme, est, cfg);
  for (const sim::ChunkRecord& c : r.chunks) {
    EXPECT_LE(c.buffer_after_s, 10.0 + 1e-9);
  }
  // The session must take at least as long as the content minus the cap.
  EXPECT_GT(r.end_time_s, 40 * 2.0 - 10.0 - 1.0);
}

TEST(Session, EstimatorSeesChunkThroughput) {
  const video::Video v = default_flat_video(8);
  const net::Trace t = flat_trace(4e6);
  abr::FixedTrackScheme scheme(3);
  net::HarmonicMeanEstimator est(5);
  (void)sim::run_session(v, t, scheme, est, quick_config());
  EXPECT_NEAR(est.estimate_bps(0.0), 4e6, 1e3);
}

TEST(Session, QualityRecordedFromChosenTrack) {
  const video::Video v = default_flat_video(5);
  const net::Trace t = flat_trace(5e6);
  abr::FixedTrackScheme scheme(4);
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r =
      sim::run_session(v, t, scheme, est, quick_config());
  for (const sim::ChunkRecord& c : r.chunks) {
    EXPECT_DOUBLE_EQ(c.quality.vmaf_phone, 20.0 + 14.0 * 4.0);
  }
}

TEST(Session, ToPlayedChunksMapsClassesAndMetric) {
  const video::Video v = default_flat_video(4);
  const net::Trace t = flat_trace(5e6);
  abr::FixedTrackScheme scheme(1);
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r =
      sim::run_session(v, t, scheme, est, quick_config());
  const std::vector<std::size_t> classes = {0, 3, 1, 3};
  const auto played =
      r.to_played_chunks(video::QualityMetric::kVmafPhone, classes);
  ASSERT_EQ(played.size(), 4u);
  EXPECT_EQ(played[1].complexity_class, 3u);
  EXPECT_DOUBLE_EQ(played[0].quality, 34.0);
}

TEST(Session, InvalidStartupConfigThrows) {
  const video::Video v = default_flat_video(4);
  const net::Trace t = flat_trace(5e6);
  abr::FixedTrackScheme scheme(0);
  net::HarmonicMeanEstimator est(5);
  sim::SessionConfig cfg;
  cfg.startup_latency_s = 0.0;
  EXPECT_THROW((void)sim::run_session(v, t, scheme, est, cfg),
               std::invalid_argument);
  cfg.startup_latency_s = 200.0;
  cfg.max_buffer_s = 100.0;
  EXPECT_THROW((void)sim::run_session(v, t, scheme, est, cfg),
               std::invalid_argument);
}

TEST(Session, ConfigValidationRejectsBadKnobs) {
  const video::Video v = default_flat_video(4);
  const net::Trace t = flat_trace(5e6);
  abr::FixedTrackScheme scheme(0);
  net::HarmonicMeanEstimator est(5);

  sim::SessionConfig cfg = quick_config();
  cfg.request_rtt_s = -0.01;
  EXPECT_THROW((void)sim::run_session(v, t, scheme, est, cfg),
               std::invalid_argument);

  cfg = quick_config();
  cfg.max_buffer_s = 0.0;
  EXPECT_THROW((void)sim::run_session(v, t, scheme, est, cfg),
               std::invalid_argument);
  cfg.max_buffer_s = -5.0;
  EXPECT_THROW((void)sim::run_session(v, t, scheme, est, cfg),
               std::invalid_argument);

  cfg = quick_config();
  cfg.enable_abandonment = true;
  cfg.abandon_check_fraction = 0.0;
  EXPECT_THROW((void)sim::run_session(v, t, scheme, est, cfg),
               std::invalid_argument);
  cfg.abandon_check_fraction = 1.5;
  EXPECT_THROW((void)sim::run_session(v, t, scheme, est, cfg),
               std::invalid_argument);
  cfg.abandon_check_fraction = 1.0;  // inclusive upper bound is legal
  EXPECT_NO_THROW((void)sim::run_session(v, t, scheme, est, cfg));

  // validate_session_config is also callable directly and tags the caller.
  cfg = quick_config();
  cfg.request_rtt_s = -1.0;
  try {
    sim::validate_session_config(cfg, "unit_test");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unit_test"), std::string::npos);
  }
}

namespace schemes {

/// Scheme that asks for an out-of-range track (session must reject).
class BadTrackScheme final : public abr::AbrScheme {
 public:
  [[nodiscard]] abr::Decision decide(const abr::StreamContext& ctx) override {
    return abr::Decision{.track = ctx.video->num_tracks()};
  }
  [[nodiscard]] std::string name() const override { return "bad"; }
};

/// Scheme that always asks to wait 1 s before each download.
class WaitingScheme final : public abr::AbrScheme {
 public:
  [[nodiscard]] abr::Decision decide(const abr::StreamContext&) override {
    return abr::Decision{.track = 0, .wait_s = 1.0};
  }
  [[nodiscard]] std::string name() const override { return "waiting"; }
};

}  // namespace schemes

TEST(Session, RejectsInvalidTrackFromScheme) {
  const video::Video v = default_flat_video(4);
  const net::Trace t = flat_trace(5e6);
  schemes::BadTrackScheme scheme;
  net::HarmonicMeanEstimator est(5);
  EXPECT_THROW((void)sim::run_session(v, t, scheme, est, quick_config()),
               std::logic_error);
}

TEST(Session, SchemeWaitDelaysDownloads) {
  const video::Video v = default_flat_video(10);
  const net::Trace t = flat_trace(50e6);
  schemes::WaitingScheme scheme;
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r =
      sim::run_session(v, t, scheme, est, quick_config());
  EXPECT_GT(r.end_time_s, 9.9);  // ten 1 s waits dominate
  for (const sim::ChunkRecord& c : r.chunks) {
    EXPECT_GE(c.wait_s, 1.0);
  }
}

TEST(Session, SpikedChunksTakeLonger) {
  const video::Video v =
      testutil::make_flat_video({1e6}, 10, 2.0, {{4, 3.0}});
  const net::Trace t = flat_trace(2e6);
  abr::FixedTrackScheme scheme(0);
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r =
      sim::run_session(v, t, scheme, est, quick_config());
  EXPECT_NEAR(r.chunks[4].download_s, 3.0 * r.chunks[3].download_s, 1e-9);
}

TEST(Session, EffectiveChunkCountArithmetic) {
  const video::Video v = default_flat_video(20);  // 2 s chunks, 40 s
  EXPECT_EQ(sim::effective_chunk_count(v, 0.0), 20u);   // 0 = full watch
  EXPECT_EQ(sim::effective_chunk_count(v, 40.0), 20u);
  EXPECT_EQ(sim::effective_chunk_count(v, 100.0), 20u);  // clamped
  EXPECT_EQ(sim::effective_chunk_count(v, 10.0), 5u);
  EXPECT_EQ(sim::effective_chunk_count(v, 10.1), 6u);    // partial chunk counts
  EXPECT_EQ(sim::effective_chunk_count(v, 0.5), 1u);     // floor of one chunk
}

TEST(Session, WatchDurationTruncatesTheSession) {
  const video::Video v = default_flat_video(20);
  const net::Trace t = flat_trace(5e6);
  abr::FixedTrackScheme scheme(2);
  net::HarmonicMeanEstimator est(5);
  sim::SessionConfig cfg = quick_config();
  cfg.watch_duration_s = 10.0;
  const sim::SessionResult r = sim::run_session(v, t, scheme, est, cfg);
  ASSERT_EQ(r.chunks.size(), 5u);
  EXPECT_NEAR(r.total_bits, 5 * 1.6e6, 1.0);
  cfg.watch_duration_s = -1.0;
  EXPECT_THROW((void)sim::run_session(v, t, scheme, est, cfg),
               std::invalid_argument);
}

namespace hooks {

/// Constant-plan hook for download-path arithmetic tests.
class FixedPlanHook final : public sim::DownloadPathHook {
 public:
  explicit FixedPlanHook(sim::FetchPlan plan) : plan_(plan) {}
  sim::FetchPlan on_chunk_request(const video::Video&, std::size_t,
                                  std::size_t, double, double) override {
    ++requests;
    return plan_;
  }
  void on_chunk_delivered(const video::Video&, std::size_t, std::size_t,
                          double, double) override {
    ++deliveries;
  }
  int requests = 0;
  int deliveries = 0;

 private:
  sim::FetchPlan plan_;
};

}  // namespace hooks

TEST(Session, IdentityDownloadHookIsExactlyANoOp) {
  // The null FetchPlan (latency 0, rate scale 1) must reproduce the
  // hook-free session bit for bit — the determinism contract the fleet
  // driver leans on.
  const video::Video v = default_flat_video(10);
  const net::Trace t = flat_trace(3e6);
  abr::FixedTrackScheme s1(2);
  net::HarmonicMeanEstimator e1(5);
  const sim::SessionResult base = sim::run_session(v, t, s1, e1, quick_config());

  hooks::FixedPlanHook hook(sim::FetchPlan{});
  sim::SessionConfig cfg = quick_config();
  cfg.download_hook = &hook;
  abr::FixedTrackScheme s2(2);
  net::HarmonicMeanEstimator e2(5);
  const sim::SessionResult hooked = sim::run_session(v, t, s2, e2, cfg);

  ASSERT_EQ(hooked.chunks.size(), base.chunks.size());
  for (std::size_t i = 0; i < base.chunks.size(); ++i) {
    EXPECT_EQ(hooked.chunks[i].track, base.chunks[i].track);
    EXPECT_EQ(hooked.chunks[i].download_s, base.chunks[i].download_s);
    EXPECT_EQ(hooked.chunks[i].download_start_s, base.chunks[i].download_start_s);
    EXPECT_FALSE(hooked.chunks[i].edge_hit);
  }
  EXPECT_EQ(hooked.total_rebuffer_s, base.total_rebuffer_s);
  EXPECT_EQ(hook.requests, 10);
  EXPECT_EQ(hook.deliveries, 10);
}

TEST(Session, DownloadHookLatencyAndRateScaleSlowDelivery) {
  // Track 2 = 1.6 Mb chunks at 5 Mbps: 0.32 s clean. With 0.1 s added
  // latency and a 0.5x origin haircut: 0.1 + 0.64 s on top of the RTT.
  const video::Video v = default_flat_video(5);
  const net::Trace t = flat_trace(5e6);
  abr::FixedTrackScheme scheme(2);
  net::HarmonicMeanEstimator est(5);
  hooks::FixedPlanHook hook(sim::FetchPlan{0.1, 0.5, false});
  sim::SessionConfig cfg = quick_config();
  cfg.download_hook = &hook;
  const sim::SessionResult r = sim::run_session(v, t, scheme, est, cfg);
  for (const sim::ChunkRecord& c : r.chunks) {
    EXPECT_NEAR(c.download_s, 0.1 + 1.6e6 / 5e6 / 0.5, 1e-9);
    EXPECT_FALSE(c.edge_hit);
    EXPECT_DOUBLE_EQ(c.edge_latency_s, 0.1);
  }
  // Delivered bytes are accounted at face value, not divided by the haircut.
  EXPECT_NEAR(r.total_bits, 5 * 1.6e6, 1.0);
}

TEST(Session, DownloadHookInvalidPlanThrows) {
  const video::Video v = default_flat_video(5);
  const net::Trace t = flat_trace(5e6);
  abr::FixedTrackScheme scheme(2);
  net::HarmonicMeanEstimator est(5);
  sim::SessionConfig cfg = quick_config();
  hooks::FixedPlanHook zero_rate(sim::FetchPlan{0.0, 0.0, false});
  cfg.download_hook = &zero_rate;
  EXPECT_THROW((void)sim::run_session(v, t, scheme, est, cfg),
               std::logic_error);
  hooks::FixedPlanHook boost(sim::FetchPlan{0.0, 1.5, false});
  cfg.download_hook = &boost;
  EXPECT_THROW((void)sim::run_session(v, t, scheme, est, cfg),
               std::logic_error);
  hooks::FixedPlanHook negative(sim::FetchPlan{-0.1, 1.0, false});
  cfg.download_hook = &negative;
  EXPECT_THROW((void)sim::run_session(v, t, scheme, est, cfg),
               std::logic_error);
}

}  // namespace
