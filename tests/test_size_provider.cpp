// Chunk-size knowledge layer: provider estimates, determinism, online
// correction, config plumbing — and the golden guarantee that the oracle
// provider reproduces the exact-table simulator bit for bit.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "abr/bola.h"
#include "abr/mpc.h"
#include "core/cava.h"
#include "net/bandwidth_estimator.h"
#include "sim/experiment.h"
#include "sim/live_session.h"
#include "sim/multi_client.h"
#include "sim/session.h"
#include "test_util.h"
#include "video/dataset.h"
#include "video/size_provider.h"

namespace {

using namespace vbr;

TEST(OracleProvider, MatchesTableExactly) {
  const video::Video v =
      testutil::make_flat_video({3e5, 2e6}, 20, 2.0, {{5, 3.0}, {11, 2.0}});
  const video::OracleSizeProvider oracle;
  for (std::size_t l = 0; l < v.num_tracks(); ++l) {
    for (std::size_t i = 0; i < v.num_chunks(); ++i) {
      EXPECT_EQ(oracle.size_bits(v, l, i), v.chunk_size_bits(l, i));
    }
  }
}

TEST(DeclaredRateProvider, IsFlatAverageTimesDuration) {
  // Spiked chunks make per-chunk sizes differ from the average, so the
  // declared view must be the *same* value everywhere on a track.
  const video::Video v =
      testutil::make_flat_video({3e5, 2e6}, 20, 2.0, {{5, 4.0}});
  const video::DeclaredRateSizeProvider declared;
  for (std::size_t l = 0; l < v.num_tracks(); ++l) {
    const double expected =
        v.tracks()[l].average_bitrate_bps() * v.chunk_duration_s();
    for (std::size_t i = 0; i < v.num_chunks(); ++i) {
      EXPECT_DOUBLE_EQ(declared.size_bits(v, l, i), expected);
    }
    EXPECT_NE(declared.size_bits(v, l, 5), v.chunk_size_bits(l, 5));
  }
}

TEST(NoisyProvider, DeterministicBoundedAndSeedSensitive) {
  const video::Video v = testutil::default_flat_video(30);
  const video::NoisySizeProvider a(0.25, 7);
  const video::NoisySizeProvider b(0.25, 7);
  const video::NoisySizeProvider c(0.25, 8);
  bool some_entry_differs_across_seeds = false;
  for (std::size_t l = 0; l < v.num_tracks(); ++l) {
    for (std::size_t i = 0; i < v.num_chunks(); ++i) {
      const double truth = v.chunk_size_bits(l, i);
      const double est = a.size_bits(v, l, i);
      // Repeated queries and a twin instance agree exactly — look-ahead
      // searches hit the same entry many times and must see one value.
      EXPECT_EQ(est, a.size_bits(v, l, i));
      EXPECT_EQ(est, b.size_bits(v, l, i));
      EXPECT_GE(est, truth * 0.75);
      EXPECT_LE(est, truth * 1.25);
      some_entry_differs_across_seeds |= est != c.size_bits(v, l, i);
    }
  }
  EXPECT_TRUE(some_entry_differs_across_seeds);
}

TEST(NoisyProvider, RejectsOutOfRangeError) {
  EXPECT_THROW(video::NoisySizeProvider(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(video::NoisySizeProvider(1.0, 1), std::invalid_argument);
  EXPECT_THROW(
      video::NoisySizeProvider(std::numeric_limits<double>::quiet_NaN(), 1),
      std::invalid_argument);
  EXPECT_NO_THROW(video::NoisySizeProvider(0.0, 1));
}

TEST(PartialProvider, HolesFallBackToDeclaredRate) {
  const video::Video v =
      testutil::make_flat_video({3e5, 2e6}, 40, 2.0, {{7, 3.0}});
  const video::PartialSizeProvider partial(0.5, 11);
  const video::DeclaredRateSizeProvider declared;
  std::size_t holes = 0;
  for (std::size_t l = 0; l < v.num_tracks(); ++l) {
    for (std::size_t i = 0; i < v.num_chunks(); ++i) {
      if (partial.knows(l, i)) {
        EXPECT_EQ(partial.size_bits(v, l, i), v.chunk_size_bits(l, i));
      } else {
        ++holes;
        EXPECT_EQ(partial.size_bits(v, l, i), declared.size_bits(v, l, i));
      }
    }
  }
  // With miss_rate 0.5 over 80 entries, both outcomes must occur.
  EXPECT_GT(holes, 0u);
  EXPECT_LT(holes, v.num_tracks() * v.num_chunks());
}

TEST(PartialProvider, PrefixTruncationHidesTail) {
  const video::Video v = testutil::default_flat_video(30);
  const video::PartialSizeProvider partial(0.0, 1, 10);
  const video::DeclaredRateSizeProvider declared;
  for (std::size_t i = 0; i < v.num_chunks(); ++i) {
    if (i < 10) {
      EXPECT_TRUE(partial.knows(0, i));
      EXPECT_EQ(partial.size_bits(v, 0, i), v.chunk_size_bits(0, i));
    } else {
      EXPECT_FALSE(partial.knows(0, i));
      EXPECT_EQ(partial.size_bits(v, 0, i), declared.size_bits(v, 0, i));
    }
  }
}

TEST(PartialProvider, RejectsBadParameters) {
  EXPECT_THROW(video::PartialSizeProvider(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(video::PartialSizeProvider(1.5, 1), std::invalid_argument);
  // A zero-length prefix means the provider knows nothing at all — reject
  // it rather than silently behaving as DeclaredRateSizeProvider.
  EXPECT_THROW(video::PartialSizeProvider(0.0, 1, 0), std::invalid_argument);
}

TEST(OnlineCorrection, ConvergesTowardRealizedCost) {
  // Every chunk on track 0 is really twice the declared average: feeding
  // actual sizes must pull the correction ratio toward 2.
  const std::size_t n = 40;
  const video::Video v = testutil::default_flat_video(n);
  video::OnlineCorrectedSizeProvider corrected(
      std::make_unique<video::DeclaredRateSizeProvider>(), 0.3);
  const double declared = corrected.size_bits(v, 0, 0);
  EXPECT_DOUBLE_EQ(corrected.correction(0), 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    corrected.on_actual_size(v, 0, i, 2.0 * v.chunk_size_bits(0, i));
  }
  EXPECT_NEAR(corrected.correction(0), 2.0, 0.01);
  EXPECT_NEAR(corrected.size_bits(v, 0, 0), 2.0 * declared, declared * 0.02);
  // Other tracks never observed anything and stay uncorrected.
  EXPECT_DOUBLE_EQ(corrected.correction(1), 1.0);

  corrected.reset();
  EXPECT_DOUBLE_EQ(corrected.correction(0), 1.0);
  EXPECT_DOUBLE_EQ(corrected.size_bits(v, 0, 0), declared);
}

TEST(OnlineCorrection, ClampsAndIgnoresGarbageObservations) {
  const video::Video v = testutil::default_flat_video(10);
  video::OnlineCorrectedSizeProvider corrected(
      std::make_unique<video::DeclaredRateSizeProvider>(), 1.0);
  const double truth = v.chunk_size_bits(0, 0);
  // A wildly large observation is clamped, not believed verbatim.
  corrected.on_actual_size(v, 0, 0, truth * 1e6);
  EXPECT_DOUBLE_EQ(corrected.correction(0), 10.0);
  corrected.reset();
  corrected.on_actual_size(v, 0, 0, truth * 1e-6);
  EXPECT_DOUBLE_EQ(corrected.correction(0), 0.1);
  // Non-finite or non-positive observations are dropped on the floor.
  corrected.reset();
  corrected.on_actual_size(v, 0, 0,
                           std::numeric_limits<double>::quiet_NaN());
  corrected.on_actual_size(v, 0, 0, std::numeric_limits<double>::infinity());
  corrected.on_actual_size(v, 0, 0, -1.0);
  corrected.on_actual_size(v, 0, 0, 0.0);
  EXPECT_DOUBLE_EQ(corrected.correction(0), 1.0);
}

TEST(OnlineCorrection, RejectsBadAlpha) {
  EXPECT_THROW(video::OnlineCorrectedSizeProvider(
                   std::make_unique<video::OracleSizeProvider>(), 0.0),
               std::invalid_argument);
  EXPECT_THROW(video::OnlineCorrectedSizeProvider(
                   std::make_unique<video::OracleSizeProvider>(), 1.5),
               std::invalid_argument);
  EXPECT_THROW(video::OnlineCorrectedSizeProvider(nullptr, 0.3),
               std::invalid_argument);
}

TEST(SizeKnowledgeConfig, FactoryBuildsTheRequestedStack) {
  video::SizeKnowledgeConfig c;
  EXPECT_EQ(video::make_size_provider(c)->name(), "oracle");
  c.mode = video::SizeKnowledge::kDeclared;
  EXPECT_EQ(video::make_size_provider(c)->name(), "declared-rate");
  c.mode = video::SizeKnowledge::kNoisy;
  EXPECT_NE(video::make_size_provider(c)->name().find("noisy"),
            std::string::npos);
  c.mode = video::SizeKnowledge::kPartial;
  EXPECT_NE(video::make_size_provider(c)->name().find("partial"),
            std::string::npos);
  c.online_correction = true;
  EXPECT_NE(video::make_size_provider(c)->name().find("corrected"),
            std::string::npos);
}

TEST(SizeKnowledgeConfig, ValidateRejectsOutOfRangeParameters) {
  video::SizeKnowledgeConfig c;
  c.noise_err = 1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.miss_rate = -0.1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.correction_alpha = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  EXPECT_NO_THROW(c.validate());
}

TEST(SizeKnowledgeConfig, ModeNamesRoundTrip) {
  using video::SizeKnowledge;
  for (const SizeKnowledge k :
       {SizeKnowledge::kOracle, SizeKnowledge::kDeclared,
        SizeKnowledge::kNoisy, SizeKnowledge::kPartial}) {
    EXPECT_EQ(video::size_knowledge_from_string(video::to_string(k)), k);
  }
  EXPECT_THROW(video::size_knowledge_from_string("exact"),
               std::invalid_argument);
}

TEST(StreamContext, ChunkSizeHelperUsesProviderWhenSet) {
  const video::Video v = testutil::default_flat_video(10);
  abr::StreamContext ctx = testutil::make_context(v, 0, 5.0, 2e6);
  EXPECT_EQ(ctx.chunk_size_bits(2, 3), v.chunk_size_bits(2, 3));
  const video::DeclaredRateSizeProvider declared;
  ctx.sizes = &declared;
  EXPECT_EQ(ctx.chunk_size_bits(2, 3), declared.size_bits(v, 2, 3));
}

// ---------------------------------------------------------------------------
// Golden guarantee: a session run with OracleSizeProvider is bit-for-bit
// identical to one with no provider at all (the pre-existing exact-table
// path). This pins the whole degraded-metadata layer as a strict no-op at
// its default setting.
// ---------------------------------------------------------------------------

void expect_identical(const sim::SessionResult& a,
                      const sim::SessionResult& b) {
  EXPECT_EQ(a.startup_delay_s, b.startup_delay_s);
  EXPECT_EQ(a.total_rebuffer_s, b.total_rebuffer_s);
  EXPECT_EQ(a.total_bits, b.total_bits);
  EXPECT_EQ(a.end_time_s, b.end_time_s);
  ASSERT_EQ(a.chunks.size(), b.chunks.size());
  for (std::size_t i = 0; i < a.chunks.size(); ++i) {
    const sim::ChunkRecord& x = a.chunks[i];
    const sim::ChunkRecord& y = b.chunks[i];
    EXPECT_EQ(x.track, y.track) << "chunk " << i;
    EXPECT_EQ(x.size_bits, y.size_bits) << "chunk " << i;
    EXPECT_EQ(x.download_start_s, y.download_start_s) << "chunk " << i;
    EXPECT_EQ(x.download_s, y.download_s) << "chunk " << i;
    EXPECT_EQ(x.wait_s, y.wait_s) << "chunk " << i;
    EXPECT_EQ(x.stall_s, y.stall_s) << "chunk " << i;
    EXPECT_EQ(x.buffer_after_s, y.buffer_after_s) << "chunk " << i;
    EXPECT_EQ(x.wasted_bits, y.wasted_bits) << "chunk " << i;
  }
}

TEST(GoldenOracle, SessionIsBitForBitIdenticalToExactTable) {
  // A real VBR video (not a flat fixture): byte-identity must hold where
  // per-chunk sizes genuinely vary and horizon searches matter.
  const video::Video v = video::make_video(
      "golden", video::Genre::kAnimation, video::Codec::kH264, 2.0, 2.0, 99,
      120.0);
  const net::Trace t = testutil::flat_trace(2.5e6, 7200.0);

  const auto run_pair = [&](std::unique_ptr<abr::AbrScheme> s1,
                            std::unique_ptr<abr::AbrScheme> s2) {
    net::HarmonicMeanEstimator e1(5);
    net::HarmonicMeanEstimator e2(5);
    sim::SessionConfig plain;
    const sim::SessionResult base = sim::run_session(v, t, *s1, e1, plain);
    video::OracleSizeProvider oracle;
    sim::SessionConfig with_oracle;
    with_oracle.size_provider = &oracle;
    const sim::SessionResult oracled =
        sim::run_session(v, t, *s2, e2, with_oracle);
    expect_identical(base, oracled);
  };

  run_pair(core::make_cava_p123(), core::make_cava_p123());
  run_pair(std::make_unique<abr::Mpc>(abr::robust_mpc_config()),
           std::make_unique<abr::Mpc>(abr::robust_mpc_config()));
  run_pair(std::make_unique<abr::Bola>(), std::make_unique<abr::Bola>());
}

TEST(GoldenOracle, DeclaredRateEqualsOracleOnTrulyFlatVideo) {
  // On a constant-bitrate fixture the declared average IS the truth, so
  // even the least-informed provider must change nothing.
  const video::Video v = testutil::default_flat_video(40);
  const net::Trace t = testutil::flat_trace(2e6, 7200.0);
  auto s1 = core::make_cava_p123();
  auto s2 = core::make_cava_p123();
  net::HarmonicMeanEstimator e1(5);
  net::HarmonicMeanEstimator e2(5);
  const sim::SessionResult base = sim::run_session(v, t, *s1, e1, {});
  video::DeclaredRateSizeProvider declared;
  sim::SessionConfig cfg;
  cfg.size_provider = &declared;
  const sim::SessionResult degraded = sim::run_session(v, t, *s2, e2, cfg);
  expect_identical(base, degraded);
}

// ---------------------------------------------------------------------------
// Degraded sessions still complete; wiring smoke tests across harnesses.
// ---------------------------------------------------------------------------

TEST(DegradedSession, CompletesUnderEveryKnowledgeMode) {
  const video::Video v = video::make_video(
      "degraded", video::Genre::kSports, video::Codec::kH264, 2.0, 2.0, 7,
      120.0);
  const net::Trace t = testutil::flat_trace(1.5e6, 7200.0);
  using video::SizeKnowledge;
  for (const SizeKnowledge mode :
       {SizeKnowledge::kOracle, SizeKnowledge::kDeclared,
        SizeKnowledge::kNoisy, SizeKnowledge::kPartial}) {
    for (const bool correct : {false, true}) {
      video::SizeKnowledgeConfig kc;
      kc.mode = mode;
      kc.online_correction = correct;
      const auto provider = video::make_size_provider(kc);
      auto scheme = core::make_cava_p123();
      net::HarmonicMeanEstimator est(5);
      sim::SessionConfig cfg;
      cfg.size_provider = provider.get();
      const sim::SessionResult r = sim::run_session(v, t, *scheme, est, cfg);
      ASSERT_EQ(r.chunks.size(), v.num_chunks())
          << video::to_string(mode) << " correct=" << correct;
      for (const sim::ChunkRecord& c : r.chunks) {
        EXPECT_LT(c.track, v.num_tracks());
        // The network moved the TRUE bytes regardless of beliefs.
        EXPECT_EQ(c.size_bits, v.chunk_size_bits(c.track, c.index));
      }
    }
  }
}

TEST(DegradedSession, LiveSessionAcceptsProvider) {
  const video::Video v = testutil::default_flat_video(30);
  const net::Trace t = testutil::flat_trace(2e6, 7200.0);
  video::SizeKnowledgeConfig kc;
  kc.mode = video::SizeKnowledge::kDeclared;
  kc.online_correction = true;
  const auto provider = video::make_size_provider(kc);
  auto scheme = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  sim::LiveSessionConfig cfg;
  cfg.size_provider = provider.get();
  const sim::LiveSessionResult r =
      sim::run_live_session(v, t, *scheme, est, cfg);
  EXPECT_FALSE(r.session.chunks.empty());
}

TEST(DegradedSession, MultiClientUsesPerClientProviders) {
  const video::Video v = testutil::default_flat_video(20);
  const net::Trace t = testutil::flat_trace(4e6, 7200.0);
  std::vector<sim::ClientSpec> clients(2);
  for (sim::ClientSpec& c : clients) {
    c.video = &v;
    c.scheme = core::make_cava_p123();
    c.estimator = std::make_unique<net::HarmonicMeanEstimator>(5);
  }
  video::SizeKnowledgeConfig kc;
  kc.mode = video::SizeKnowledge::kDeclared;
  kc.online_correction = true;
  clients[0].size_provider = video::make_size_provider(kc);
  const sim::MultiClientResult r = sim::run_multi_client(t, std::move(clients));
  ASSERT_EQ(r.sessions.size(), 2u);
  for (const sim::SessionResult& s : r.sessions) {
    EXPECT_EQ(s.chunks.size(), v.num_chunks());
  }
}

TEST(DegradedSession, MultiClientRejectsSharedProvider) {
  const video::Video v = testutil::default_flat_video(5);
  const net::Trace t = testutil::flat_trace(4e6, 7200.0);
  std::vector<sim::ClientSpec> clients(1);
  clients[0].video = &v;
  clients[0].scheme = core::make_cava_p123();
  clients[0].estimator = std::make_unique<net::HarmonicMeanEstimator>(5);
  video::OracleSizeProvider shared;
  sim::SessionConfig cfg;
  cfg.size_provider = &shared;
  EXPECT_THROW((void)sim::run_multi_client(t, std::move(clients), cfg),
               std::invalid_argument);
}

TEST(DegradedSession, ExperimentFactoryBuildsPerWorkerProviders) {
  const video::Video v = testutil::default_flat_video(20);
  const std::vector<net::Trace> traces = {testutil::flat_trace(1e6, 7200.0),
                                          testutil::flat_trace(3e6, 7200.0),
                                          testutil::flat_trace(6e6, 7200.0)};
  video::SizeKnowledgeConfig kc;
  kc.mode = video::SizeKnowledge::kNoisy;
  kc.online_correction = true;
  sim::ExperimentSpec spec;
  spec.video = &v;
  spec.traces = traces;
  spec.make_scheme = [] { return core::make_cava_p123(); };
  spec.make_size_provider = [&kc] { return video::make_size_provider(kc); };
  const sim::ExperimentResult r = sim::run_experiment(spec);
  EXPECT_EQ(r.per_trace.size(), traces.size());
  // A flat fixture has no Q4 (top-complexity) chunks, so assert on the
  // all-chunk mean instead.
  EXPECT_GT(r.mean_all_quality, 0.0);
}

TEST(DegradedSession, ExperimentRejectsFactoryPlusSharedProvider) {
  const video::Video v = testutil::default_flat_video(5);
  const std::vector<net::Trace> traces = {testutil::flat_trace(1e6, 7200.0)};
  video::OracleSizeProvider shared;
  sim::ExperimentSpec spec;
  spec.video = &v;
  spec.traces = traces;
  spec.make_scheme = [] { return core::make_cava_p123(); };
  spec.make_size_provider = [] {
    return std::make_unique<video::OracleSizeProvider>();
  };
  spec.session.size_provider = &shared;
  EXPECT_THROW((void)sim::run_experiment(spec), std::invalid_argument);
}

}  // namespace
