// Tests for the composed CAVA scheme.
#include "core/cava.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "net/bandwidth_estimator.h"
#include "sim/session.h"
#include "test_util.h"
#include "video/dataset.h"

namespace {

using namespace vbr;
using core::Cava;
using core::CavaConfig;
using testutil::flat_trace;
using testutil::make_context;

video::Video corpus_video() {
  return video::make_video("ED", video::Genre::kAnimation,
                           video::Codec::kH264, 2.0, 2.0, 42, 300.0);
}

TEST(Cava, VariantNames) {
  EXPECT_EQ(core::make_cava_p1()->name(), "CAVA-p1");
  EXPECT_EQ(core::make_cava_p12()->name(), "CAVA-p12");
  EXPECT_EQ(core::make_cava_p123()->name(), "CAVA");
}

TEST(Cava, NonPositiveBandwidthThrows) {
  const video::Video v = corpus_video();
  Cava cava;
  EXPECT_THROW((void)cava.decide(make_context(v, 0, 10.0, 0.0)),
               std::invalid_argument);
}

TEST(Cava, DecisionIsValidTrack) {
  const video::Video v = corpus_video();
  Cava cava;
  for (const double est : {1e5, 5e5, 2e6, 8e6}) {
    const abr::Decision d = cava.decide(make_context(v, 0, 20.0, est));
    EXPECT_LT(d.track, v.num_tracks());
    EXPECT_DOUBLE_EQ(d.wait_s, 0.0);
    cava.reset();
  }
}

TEST(Cava, DiagnosticsPopulated) {
  const video::Video v = corpus_video();
  Cava cava;
  EXPECT_FALSE(cava.last_diagnostics().has_value());
  (void)cava.decide(make_context(v, 0, 30.0, 2e6));
  ASSERT_TRUE(cava.last_diagnostics().has_value());
  const auto& d = *cava.last_diagnostics();
  EXPECT_GT(d.u, 0.0);
  EXPECT_GE(d.target_buffer_s, CavaConfig{}.base_target_buffer_s);
}

TEST(Cava, AlphaReflectsChunkClass) {
  const video::Video v = corpus_video();
  const core::ComplexityClassifier cls(v);
  Cava cava;
  // Find one complex and one simple chunk.
  std::size_t complex_chunk = 0;
  std::size_t simple_chunk = 0;
  for (std::size_t i = 0; i < v.num_chunks(); ++i) {
    if (cls.is_complex(i)) {
      complex_chunk = i;
    } else {
      simple_chunk = i;
    }
  }
  (void)cava.decide(make_context(v, complex_chunk, 30.0, 2e6));
  EXPECT_TRUE(cava.last_diagnostics()->complex_chunk);
  EXPECT_DOUBLE_EQ(cava.last_diagnostics()->alpha,
                   CavaConfig{}.alpha_complex);
  (void)cava.decide(make_context(v, simple_chunk, 30.0, 2e6));
  EXPECT_FALSE(cava.last_diagnostics()->complex_chunk);
  EXPECT_DOUBLE_EQ(cava.last_diagnostics()->alpha,
                   CavaConfig{}.alpha_simple);
}

TEST(Cava, P1VariantUsesUnityAlpha) {
  const video::Video v = corpus_video();
  auto p1 = core::make_cava_p1();
  (void)p1->decide(make_context(v, 0, 30.0, 2e6));
  EXPECT_DOUBLE_EQ(p1->last_diagnostics()->alpha, 1.0);
}

TEST(Cava, RebindsToNewVideo) {
  const video::Video a = corpus_video();
  const video::Video b = video::make_video(
      "BBB", video::Genre::kAnimation, video::Codec::kH264, 2.0, 2.0, 7,
      100.0);
  Cava cava;
  (void)cava.decide(make_context(a, 0, 30.0, 2e6));
  // Switching videos mid-stream must not crash or read stale state.
  const abr::Decision d = cava.decide(make_context(b, 0, 30.0, 2e6));
  EXPECT_LT(d.track, b.num_tracks());
}

TEST(Cava, SteadyStateTracksBandwidth) {
  // On a flat 2 Mbps link, a full session should mostly select tracks whose
  // window bitrate is near 2 Mbps (track 3-4 of the corpus ladder), with no
  // rebuffering.
  const video::Video v = corpus_video();
  const net::Trace t = flat_trace(2e6);
  Cava cava;
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r = sim::run_session(v, t, cava, est);
  EXPECT_DOUBLE_EQ(r.total_rebuffer_s, 0.0);
  double mean_track = 0.0;
  for (const auto& c : r.chunks) {
    mean_track += static_cast<double>(c.track);
  }
  mean_track /= static_cast<double>(r.chunks.size());
  EXPECT_GT(mean_track, 2.0);
  EXPECT_LT(mean_track, 5.0);
}

TEST(Cava, BuffersTowardTargetOnFastLink) {
  // With bandwidth far above the ladder, the buffer should converge near
  // the (possibly preview-raised) target, not pin at the 100 s cap.
  const video::Video v = corpus_video();
  const net::Trace t = flat_trace(30e6);
  Cava cava;
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r = sim::run_session(v, t, cava, est);
  double late_buffer = 0.0;
  std::size_t n = 0;
  for (std::size_t i = r.chunks.size() / 2; i < r.chunks.size(); ++i) {
    late_buffer += r.chunks[i].buffer_after_s;
    ++n;
  }
  late_buffer /= static_cast<double>(n);
  const CavaConfig cfg;
  EXPECT_GT(late_buffer, 0.5 * cfg.base_target_buffer_s);
  EXPECT_LT(late_buffer,
            cfg.target_buffer_cap_factor * cfg.base_target_buffer_s + 10.0);
}

TEST(Cava, NoRebufferOnStepDownTrace) {
  // Bandwidth halves mid-session; the control loop must absorb it without
  // stalling (the banked target buffer is the cushion).
  const video::Video v = corpus_video();
  std::vector<double> samples(1800, 3e6);
  for (std::size_t i = 300; i < samples.size(); ++i) {
    samples[i] = 1e6;
  }
  const net::Trace t("step", 1.0, std::move(samples));
  Cava cava;
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r = sim::run_session(v, t, cava, est);
  EXPECT_LT(r.total_rebuffer_s, 1.0);
}

TEST(Cava, ResetGivesReproducibleSessions) {
  const video::Video v = corpus_video();
  const net::Trace t = flat_trace(1.5e6);
  Cava cava;
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult a = sim::run_session(v, t, cava, est);
  const sim::SessionResult b = sim::run_session(v, t, cava, est);
  ASSERT_EQ(a.chunks.size(), b.chunks.size());
  for (std::size_t i = 0; i < a.chunks.size(); ++i) {
    EXPECT_EQ(a.chunks[i].track, b.chunks[i].track);
  }
}

TEST(Cava, ConfigAccessibleAndHonored) {
  CavaConfig cfg;
  cfg.alpha_complex = 1.5;
  const Cava cava(cfg);
  EXPECT_DOUBLE_EQ(cava.config().alpha_complex, 1.5);
}

}  // namespace
