// Tests for the CLI flag parser.
#include "../tools/cli_args.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using vbr::tools::CliArgs;

const std::set<std::string> kKnown = {"scheme", "count", "abandon", "rtt"};

CliArgs parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v = {"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return CliArgs(static_cast<int>(v.size()), v.data(), kKnown);
}

TEST(CliArgs, KeyValuePairs) {
  const CliArgs a = parse({"--scheme", "CAVA", "--count", "50"});
  EXPECT_TRUE(a.has("scheme"));
  EXPECT_EQ(a.get("scheme", "x"), "CAVA");
  EXPECT_EQ(a.get_size("count", 0), 50u);
}

TEST(CliArgs, DefaultsWhenAbsent) {
  const CliArgs a = parse({});
  EXPECT_FALSE(a.has("scheme"));
  EXPECT_EQ(a.get("scheme", "CAVA"), "CAVA");
  EXPECT_DOUBLE_EQ(a.get_double("rtt", 0.25), 0.25);
}

TEST(CliArgs, BareBooleanFlag) {
  const CliArgs a = parse({"--abandon", "--count", "5"});
  EXPECT_TRUE(a.has("abandon"));
  EXPECT_EQ(a.get_size("count", 0), 5u);
}

TEST(CliArgs, BooleanBeforeAnotherFlag) {
  const CliArgs a = parse({"--abandon", "--scheme", "MPC"});
  EXPECT_TRUE(a.has("abandon"));
  EXPECT_EQ(a.get("scheme", ""), "MPC");
}

TEST(CliArgs, UnknownFlagThrows) {
  EXPECT_THROW(parse({"--bogus", "1"}), std::invalid_argument);
}

TEST(CliArgs, NonNumericValueThrows) {
  const CliArgs a = parse({"--rtt", "fast"});
  EXPECT_THROW((void)a.get_double("rtt", 0.0), std::invalid_argument);
}

TEST(CliArgs, NegativeSizeThrows) {
  const CliArgs a = parse({"--count", "-3"});
  EXPECT_THROW((void)a.get_size("count", 0), std::invalid_argument);
}

TEST(CliArgs, PositionalArguments) {
  const CliArgs a = parse({"input.trace", "--count", "2", "more"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "input.trace");
  EXPECT_EQ(a.positional()[1], "more");
}

}  // namespace
