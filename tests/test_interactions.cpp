// Interaction tests: combinations of player-level features (RTT +
// abandonment, live + large join latencies, tuning determinism) that the
// per-feature suites do not cross.
#include <gtest/gtest.h>

#include <memory>

#include "core/cava.h"
#include "net/bandwidth_estimator.h"
#include "net/trace_gen.h"
#include "sim/live_session.h"
#include "sim/session.h"
#include "test_util.h"
#include "tune/autotune.h"
#include "video/dataset.h"

namespace {

using namespace vbr;
using testutil::default_flat_video;
using testutil::flat_trace;

TEST(Interactions, RttPlusAbandonment) {
  // Both features enabled: sessions complete, abandonments still fire, and
  // every download pays at least the RTT.
  const video::Video v = default_flat_video(20);
  const net::Trace t = flat_trace(5e5);
  abr::FixedTrackScheme scheme(5);
  net::HarmonicMeanEstimator est(5);
  sim::SessionConfig cfg;
  cfg.startup_latency_s = 4.0;
  cfg.request_rtt_s = 0.05;
  cfg.enable_abandonment = true;
  const sim::SessionResult r = sim::run_session(v, t, scheme, est, cfg);
  ASSERT_EQ(r.chunks.size(), 20u);
  std::size_t abandoned = 0;
  for (const auto& c : r.chunks) {
    EXPECT_GE(c.download_s, cfg.request_rtt_s);
    abandoned += c.abandoned_higher ? 1 : 0;
  }
  EXPECT_GT(abandoned, 5u);
}

TEST(Interactions, LiveWithLargeJoinLatency) {
  // A join latency spanning half the video: lots of backlog to binge, then
  // edge-riding; all invariants hold.
  const video::Video v = video::make_video(
      "bigjoin", video::Genre::kAnimation, video::Codec::kH264, 2.0, 2.0,
      42, 200.0);
  const net::Trace t = flat_trace(20e6);
  auto cava = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  sim::LiveSessionConfig cfg;
  cfg.join_latency_s = 100.0;
  const auto r = sim::run_live_session(v, t, *cava, est, cfg);
  EXPECT_EQ(r.session.chunks.size(), v.num_chunks());
  EXPECT_LE(r.session.total_rebuffer_s, 0.5);
  EXPECT_GE(r.mean_latency_s, 0.9 * cfg.join_latency_s);
}

TEST(Interactions, LiveRttSessions) {
  const video::Video v = video::make_video(
      "livertt", video::Genre::kSciFi, video::Codec::kH264, 2.0, 2.0, 17,
      200.0);
  const net::Trace t = net::generate_lte_trace(40);
  auto cava = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  // Live sessions do not take a SessionConfig — verify the default path
  // works on a noisy trace (regression guard for the edge/wait math).
  const auto r = sim::run_live_session(v, t, *cava, est);
  EXPECT_EQ(r.session.chunks.size(), v.num_chunks());
  EXPECT_GE(r.max_latency_s, r.mean_latency_s);
}

TEST(Interactions, TuningIsDeterministic) {
  const video::Video v = video::make_video(
      "tune", video::Genre::kAnimation, video::Codec::kH264, 2.0, 2.0, 42,
      150.0);
  const auto traces = net::make_lte_trace_set(6, 3);
  const auto grid = tune::default_candidate_grid();
  const tune::TuningTable a = tune::tune_offline(v, traces, grid);
  const tune::TuningTable b = tune::tune_offline(v, traces, grid);
  ASSERT_EQ(a.configs.size(), b.configs.size());
  for (std::size_t i = 0; i < a.configs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.configs[i].alpha_complex, b.configs[i].alpha_complex);
    EXPECT_DOUBLE_EQ(a.configs[i].base_target_buffer_s,
                     b.configs[i].base_target_buffer_s);
  }
}

TEST(Interactions, AbandonmentDisabledInStartup) {
  // During startup nothing is playing, so even slow fetches have no stall
  // pressure; the rule uses the buffer which grows anyway. Verify the first
  // chunks are never falsely abandoned on a decent link.
  const video::Video v = default_flat_video(20);
  const net::Trace t = flat_trace(3e6);
  abr::FixedTrackScheme scheme(3);
  net::HarmonicMeanEstimator est(5);
  sim::SessionConfig cfg;
  cfg.startup_latency_s = 4.0;
  cfg.enable_abandonment = true;
  const auto r = sim::run_session(v, t, scheme, est, cfg);
  EXPECT_FALSE(r.chunks[0].abandoned_higher);
  EXPECT_FALSE(r.chunks[1].abandoned_higher);
}

}  // namespace
