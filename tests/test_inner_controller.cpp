// Tests for the inner controller's VBR-aware track selection (Section 5.3).
#include "core/inner_controller.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/complexity_classifier.h"
#include "test_util.h"
#include "video/dataset.h"

namespace {

using namespace vbr;
using core::CavaConfig;
using core::ComplexityClassifier;
using core::InnerController;

// A video with a Q4 cluster: chunks 20-27 spiked on every track.
video::Video spiky_video() {
  std::vector<std::pair<std::size_t, double>> spikes;
  for (std::size_t i = 20; i < 28; ++i) {
    spikes.emplace_back(i, 2.2);
  }
  return testutil::make_flat_video({2e5, 4e5, 8e5, 1.6e6, 3.2e6, 6.4e6}, 60,
                                   2.0, spikes);
}

InnerController::Inputs base_inputs(const video::Video& v,
                                    const ComplexityClassifier& c,
                                    std::size_t chunk, double u, double est,
                                    int prev = -1, double buffer = 60.0) {
  InnerController::Inputs in;
  in.video = &v;
  in.classifier = &c;
  in.next_chunk = chunk;
  in.u = u;
  in.est_bandwidth_bps = est;
  in.prev_track = prev;
  in.buffer_s = buffer;
  return in;
}

TEST(Inner, BadConfigThrows) {
  CavaConfig cfg;
  cfg.horizon_chunks = 0;
  EXPECT_THROW(InnerController{cfg}, std::invalid_argument);
  cfg = CavaConfig{};
  cfg.inner_window_s = 0.0;
  EXPECT_THROW(InnerController{cfg}, std::invalid_argument);
}

TEST(Inner, BadInputsThrow) {
  const video::Video v = spiky_video();
  const ComplexityClassifier c(v);
  const InnerController inner{CavaConfig{}};
  auto in = base_inputs(v, c, 0, 1.0, 1e6);
  in.video = nullptr;
  EXPECT_THROW((void)inner.select_track(in), std::invalid_argument);
  in = base_inputs(v, c, 0, 0.0, 1e6);
  EXPECT_THROW((void)inner.select_track(in), std::invalid_argument);
  in = base_inputs(v, c, 0, 1.0, -5.0);
  EXPECT_THROW((void)inner.select_track(in), std::invalid_argument);
}

TEST(Inner, SmoothedBitrateAveragesWindow) {
  const video::Video v = spiky_video();
  CavaConfig cfg;
  cfg.inner_window_s = 8.0;  // 4 chunks of 2 s
  const InnerController inner(cfg);
  // Window [18, 22): two flat chunks (3.2 Mbps) + two spiked (7.04 Mbps).
  const double rbar = inner.smoothed_bitrate_bps(v, 4, 18);
  EXPECT_NEAR(rbar, (2 * 3.2e6 + 2 * 3.2e6 * 2.2) / 4.0, 1.0);
}

TEST(Inner, SmoothedBitrateTruncatesAtEnd) {
  const video::Video v = spiky_video();
  CavaConfig cfg;
  cfg.inner_window_s = 40.0;
  const InnerController inner(cfg);
  // Near the end, the window truncates but must still return the flat rate.
  EXPECT_NEAR(inner.smoothed_bitrate_bps(v, 4, 58), 3.2e6, 1.0);
}

TEST(Inner, TrackScalesWithBandwidth) {
  const video::Video v = spiky_video();
  const ComplexityClassifier c(v);
  const InnerController inner{CavaConfig{}};
  std::size_t prev = 0;
  for (const double est : {2e5, 5e5, 1e6, 2e6, 4e6, 8e6}) {
    const std::size_t t =
        inner.select_track(base_inputs(v, c, 0, 1.0, est));
    EXPECT_GE(t, prev);
    prev = t;
  }
  EXPECT_GE(prev, 4u);
}

TEST(Inner, HigherULowersTrack) {
  const video::Video v = spiky_video();
  const ComplexityClassifier c(v);
  const InnerController inner{CavaConfig{}};
  const std::size_t relaxed =
      inner.select_track(base_inputs(v, c, 0, 0.7, 2e6));
  const std::size_t pressed =
      inner.select_track(base_inputs(v, c, 0, 1.8, 2e6));
  EXPECT_LT(pressed, relaxed);
}

TEST(Inner, DifferentialTreatmentLiftsComplexChunks) {
  const video::Video v = spiky_video();
  const ComplexityClassifier c(v);
  ASSERT_TRUE(c.is_complex(24));
  ASSERT_FALSE(c.is_complex(5));

  CavaConfig with;
  with.use_differential_treatment = true;
  CavaConfig without;
  without.use_differential_treatment = false;
  const InnerController inner_with(with);
  const InnerController inner_without(without);

  // On a complex chunk, the inflated bandwidth must never choose lower —
  // and across a bandwidth sweep it chooses strictly higher somewhere.
  bool strictly_higher = false;
  for (double est = 5e5; est <= 6e6; est += 2.5e5) {
    const std::size_t t_with =
        inner_with.select_track(base_inputs(v, c, 24, 1.0, est));
    const std::size_t t_without =
        inner_without.select_track(base_inputs(v, c, 24, 1.0, est));
    EXPECT_GE(t_with, t_without);
    strictly_higher |= t_with > t_without;
  }
  EXPECT_TRUE(strictly_higher);
}

TEST(Inner, DeflationSavesOnSimpleChunks) {
  const video::Video v = spiky_video();
  const ComplexityClassifier c(v);
  CavaConfig with;
  CavaConfig without;
  without.use_differential_treatment = false;
  const InnerController inner_with(with);
  const InnerController inner_without(without);
  // Low buffer so the no-deflate heuristic stays out of the way.
  bool strictly_lower = false;
  for (double est = 5e5; est <= 6e6; est += 2.5e5) {
    const std::size_t t_with =
        inner_with.select_track(base_inputs(v, c, 5, 1.0, est, -1, 5.0));
    const std::size_t t_without =
        inner_without.select_track(base_inputs(v, c, 5, 1.0, est, -1, 5.0));
    EXPECT_LE(t_with, t_without);
    strictly_lower |= t_with < t_without;
  }
  EXPECT_TRUE(strictly_lower);
}

TEST(Inner, SwitchPenaltyKeepsTrackWithinClass) {
  const video::Video v = spiky_video();
  const ComplexityClassifier c(v);
  CavaConfig cfg;
  cfg.eta_same_class = 50.0;  // heavy switch penalty
  cfg.use_differential_treatment = false;
  const InnerController inner(cfg);
  // Both chunk 5 and 6 are simple: prev track 2 should be sticky even when
  // bandwidth would afford a higher track.
  const std::size_t t = inner.select_track(base_inputs(v, c, 6, 1.0, 4e6, 2));
  EXPECT_EQ(t, 2u);
}

TEST(Inner, NoSwitchPenaltyAcrossClassBoundary) {
  const video::Video v = spiky_video();
  const ComplexityClassifier c(v);
  // Chunk 20 is complex, chunk 19 simple: eta = 0, so even a huge
  // eta_same_class cannot hold the track down across the boundary.
  CavaConfig cfg;
  cfg.eta_same_class = 50.0;
  cfg.use_differential_treatment = false;
  const InnerController inner(cfg);
  const std::size_t sticky =
      inner.select_track(base_inputs(v, c, 21, 1.0, 4e6, 1));
  const std::size_t boundary =
      inner.select_track(base_inputs(v, c, 20, 1.0, 4e6, 1));
  EXPECT_GT(boundary, sticky);
}

TEST(Inner, NoDeflateHeuristicAvoidsLowLevels) {
  const video::Video v = spiky_video();
  const ComplexityClassifier c(v);
  const InnerController inner{CavaConfig{}};
  // Bandwidth where deflation (x0.8) would land on track 1 but full
  // bandwidth affords track 2: with a comfortable buffer the heuristic must
  // take track 2 (or better).
  const std::size_t with_buffer =
      inner.select_track(base_inputs(v, c, 5, 1.0, 8e5, -1, 40.0));
  EXPECT_GE(with_buffer, 2u);
}

TEST(Inner, ObjectiveFiniteAndMinimizedAtSelection) {
  const video::Video v = spiky_video();
  const ComplexityClassifier c(v);
  const InnerController inner{CavaConfig{}};
  const auto in = base_inputs(v, c, 10, 1.1, 1.5e6, 3, 30.0);
  const std::size_t chosen = inner.select_track(in);
  // For a simple chunk with these settings alpha = 0.8 applies.
  const double q_chosen = inner.objective(in, chosen, 0.8);
  for (std::size_t l = 0; l < v.num_tracks(); ++l) {
    EXPECT_GE(inner.objective(in, l, 0.8) + 1e-9, q_chosen);
  }
}

}  // namespace
