// In-situ A/B experimentation harness: stratified permuted-block balance,
// thread/title_batch invariance of the assignment and the full ab_report
// JSON, the A/A invariance property (identical arms must not light up after
// BH correction), a real handicapped-arm detection, and spec / config / input
// validation with field-named errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "abr/bba.h"
#include "abr/scheme.h"
#include "exp/ab.h"
#include "fleet/fleet.h"
#include "test_util.h"

namespace vbr {
namespace {

fleet::FleetClientClass make_arm(const std::string& label,
                                 sim::SchemeFactory factory) {
  fleet::FleetClientClass c;
  c.label = label;
  c.make_scheme = std::move(factory);
  return c;
}

std::vector<net::Trace> ab_traces() {
  std::vector<net::Trace> traces;
  traces.push_back(testutil::flat_trace(5e6, 600.0));
  traces.push_back(testutil::flat_trace(2.5e6, 600.0));
  traces.push_back(testutil::flat_trace(1.2e6, 600.0));
  return traces;
}

/// A small experiment fleet: ~`sessions` arrivals over 6 short titles,
/// three traces spanning distinct bandwidth strata.
fleet::FleetSpec ab_spec(const std::vector<net::Trace>& traces,
                         std::size_t sessions = 90) {
  fleet::FleetSpec spec;
  spec.catalog.num_titles = 6;
  spec.catalog.title_duration_s = 40.0;
  spec.catalog.chunk_duration_s = 2.0;
  spec.arrivals.rate_per_s = 0.6;
  spec.arrivals.horizon_s = 400.0;
  spec.arrivals.max_sessions = sessions;
  spec.traces = traces;
  spec.cache.capacity_bits = 1.2e9;
  spec.watch.full_watch_prob = 0.7;
  spec.watch.mean_partial_s = 20.0;
  spec.watch.min_watch_s = 4.0;
  spec.session.startup_latency_s = 4.0;
  spec.experiment.trace_strata = 3;
  return spec;
}

void add_three_arms(fleet::FleetSpec& spec) {
  spec.experiment.arms.push_back(make_arm(
      "bba", [] { return std::make_unique<abr::Bba>(); }));
  spec.experiment.arms.push_back(make_arm(
      "fixed-lo", [] { return std::make_unique<abr::FixedTrackScheme>(0); }));
  spec.experiment.arms.push_back(make_arm(
      "fixed-hi", [] { return std::make_unique<abr::FixedTrackScheme>(2); }));
}

/// Full serialized observation of one experiment run: the per-session
/// assignment table (arm + stratum + per-model scores) plus the complete
/// ab_report.json. Any schedule- or batch-dependence shows up as a byte
/// difference.
std::string run_and_serialize_ab(fleet::FleetSpec spec, unsigned threads,
                                 std::size_t title_batch) {
  spec.threads = threads;
  spec.title_batch = title_batch;
  const fleet::FleetResult result = fleet::run_fleet(spec);
  exp::AbAnalysisConfig cfg;
  cfg.bootstrap.resamples = 300;
  const exp::AbReport report = exp::analyze_ab(result, cfg);
  std::ostringstream out;
  for (const fleet::FleetSessionRecord& r : result.sessions) {
    out << r.session_id << ' ' << r.class_index << ' ' << r.stratum;
    for (const double s : r.qoe_scores) {
      out << ' ' << s;
    }
    out << '\n';
  }
  result.write_json(out);
  out << '\n';
  report.write_json(out);
  return out.str();
}

TEST(AbExperiment, PerStratumArmCountsBalanced) {
  const std::vector<net::Trace> traces = ab_traces();
  fleet::FleetSpec spec = ab_spec(traces);
  add_three_arms(spec);
  const fleet::FleetResult result = fleet::run_fleet(spec);
  ASSERT_TRUE(result.experiment_enabled);
  ASSERT_EQ(result.per_class.size(), 3u);

  // Permuted blocks: within every stratum the arm counts differ by <= 1.
  std::map<std::uint32_t, std::vector<std::size_t>> counts;
  for (const fleet::FleetSessionRecord& r : result.sessions) {
    auto& c = counts[r.stratum];
    c.resize(3, 0);
    ASSERT_LT(r.class_index, 3u);
    ++c[r.class_index];
  }
  EXPECT_GT(counts.size(), 1u);  // the strata actually spread
  for (const auto& [stratum, c] : counts) {
    const std::size_t lo = std::min({c[0], c[1], c[2]});
    const std::size_t hi = std::max({c[0], c[1], c[2]});
    EXPECT_LE(hi - lo, 1u) << "stratum " << stratum << " unbalanced: "
                           << c[0] << '/' << c[1] << '/' << c[2];
  }
}

TEST(AbExperiment, AssignmentAndReportByteIdenticalAcrossSchedules) {
  const std::vector<net::Trace> traces = ab_traces();
  fleet::FleetSpec spec = ab_spec(traces, 60);
  add_three_arms(spec);
  const std::string base = run_and_serialize_ab(spec, 1, 4);
  EXPECT_GT(base.size(), 2000u);
  EXPECT_EQ(base, run_and_serialize_ab(spec, 2, 4));
  EXPECT_EQ(base, run_and_serialize_ab(spec, 8, 4));
  // title_batch is a work-claiming knob, never an assignment input.
  EXPECT_EQ(base, run_and_serialize_ab(spec, 8, 1));
  EXPECT_EQ(base, run_and_serialize_ab(spec, 2, 9));
}

TEST(AbExperiment, ReRandomizationMovesAssignmentOnly) {
  const std::vector<net::Trace> traces = ab_traces();
  fleet::FleetSpec spec = ab_spec(traces, 60);
  add_three_arms(spec);
  const fleet::FleetResult a = fleet::run_fleet(spec);
  spec.experiment.seed = 4242;
  const fleet::FleetResult b = fleet::run_fleet(spec);
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  bool any_moved = false;
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    // The workload draw (title, trace, stratum) is pinned by spec.seed and
    // must survive re-randomization; only the arm may move.
    EXPECT_EQ(a.sessions[i].title, b.sessions[i].title);
    EXPECT_EQ(a.sessions[i].trace_index, b.sessions[i].trace_index);
    EXPECT_EQ(a.sessions[i].stratum, b.sessions[i].stratum);
    any_moved |= a.sessions[i].class_index != b.sessions[i].class_index;
  }
  EXPECT_TRUE(any_moved);
}

TEST(AbExperiment, AaIdenticalArmsNeverSignificantAcrossSeeds) {
  // The A/A property: with byte-identical arms the outcome population is
  // fixed and the assignment is a balanced random split, so after BH
  // correction no (metric, pair) hypothesis may reach significance — for
  // every re-randomization seed. Everything is counter-based, so this is a
  // deterministic pin, not a flaky sampling test.
  const std::vector<net::Trace> traces = ab_traces();
  exp::AbAnalysisConfig cfg;
  cfg.bootstrap.resamples = 100;  // CIs are not under test here
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    fleet::FleetSpec spec = ab_spec(traces, 70);
    spec.experiment.arms.push_back(make_arm(
        "a", [] { return std::make_unique<abr::Bba>(); }));
    spec.experiment.arms.push_back(make_arm(
        "b", [] { return std::make_unique<abr::Bba>(); }));
    spec.experiment.seed = seed;
    const fleet::FleetResult result = fleet::run_fleet(spec);
    const exp::AbReport report = exp::analyze_ab(result, cfg);
    EXPECT_FALSE(report.any_significant())
        << "A/A run lit up at experiment seed " << seed;
  }
}

TEST(AbExperiment, ThreeArmReportStructure) {
  const std::vector<net::Trace> traces = ab_traces();
  fleet::FleetSpec spec = ab_spec(traces);
  add_three_arms(spec);
  const fleet::FleetResult result = fleet::run_fleet(spec);
  exp::AbAnalysisConfig cfg;
  cfg.bootstrap.resamples = 300;
  const exp::AbReport report = exp::analyze_ab(result, cfg);

  ASSERT_EQ(report.arm_labels.size(), 3u);
  EXPECT_EQ(report.arm_labels[0], "bba");
  // Metrics: the four pluggable QoE models first, then the fixed outcomes.
  ASSERT_EQ(result.qoe_model_names.size(), 4u);
  ASSERT_EQ(report.metric_names.size(), 8u);
  for (std::size_t m = 0; m < 4; ++m) {
    EXPECT_EQ(report.metric_names[m], result.qoe_model_names[m]);
  }
  EXPECT_EQ(report.metric_names[4], "rebuffer_s");
  EXPECT_EQ(report.hypotheses, 8u * 3u * 2u);  // metrics * pairs * 2 tests

  ASSERT_EQ(report.metrics.size(), 8u);
  for (const exp::AbMetricReport& m : report.metrics) {
    ASSERT_EQ(m.arms.size(), 3u);
    std::size_t total = 0;
    for (const exp::AbEstimate& e : m.arms) {
      EXPECT_GE(e.n, 2u);
      total += e.n;
      if (e.has_ci) {
        EXPECT_LE(e.lo, e.mean);
        EXPECT_GE(e.hi, e.mean);
      }
    }
    EXPECT_EQ(total, result.sessions.size());
    ASSERT_EQ(m.pairs.size(), 3u);  // (0,1), (0,2), (1,2)
    for (const exp::AbPairTest& p : m.pairs) {
      EXPECT_LT(p.arm_a, p.arm_b);
      EXPECT_GE(p.welch_p_adj, p.welch.p - 1e-15);  // BH only raises
      EXPECT_GE(p.mwu_p_adj, p.mwu.p - 1e-15);
      EXPECT_LE(p.diff.lo, p.diff.point);
      EXPECT_GE(p.diff.hi, p.diff.point);
    }
  }

  // Per-stratum breakdown exists, is sorted, and cells line up.
  ASSERT_FALSE(report.strata.empty());
  for (std::size_t i = 1; i < report.strata.size(); ++i) {
    EXPECT_LT(report.strata[i - 1].stratum, report.strata[i].stratum);
  }
  for (const exp::AbStratumReport& s : report.strata) {
    ASSERT_EQ(s.cells.size(), 8u);
    for (const auto& arms : s.cells) {
      EXPECT_EQ(arms.size(), 3u);
    }
  }

  // The serialized report carries the matrix and the per-stratum cells.
  std::ostringstream out;
  report.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"significant_matrix\""), std::string::npos);
  EXPECT_NE(json.find("\"strata\""), std::string::npos);
  EXPECT_NE(json.find("\"hypotheses\":48"), std::string::npos);
  EXPECT_NE(json.find("\"pos_rebuffer_phone\""), std::string::npos);
}

TEST(AbExperiment, HandicappedArmIsDetected) {
  // Lowest track vs highest track on mostly-comfortable bandwidth: the
  // quality gap is enormous and must survive BH correction.
  const std::vector<net::Trace> traces = ab_traces();
  fleet::FleetSpec spec = ab_spec(traces);
  spec.experiment.arms.push_back(make_arm(
      "floor", [] { return std::make_unique<abr::FixedTrackScheme>(0); }));
  spec.experiment.arms.push_back(make_arm(
      "ceiling", [] { return std::make_unique<abr::FixedTrackScheme>(2); }));
  const fleet::FleetResult result = fleet::run_fleet(spec);
  exp::AbAnalysisConfig cfg;
  cfg.bootstrap.resamples = 300;
  const exp::AbReport report = exp::analyze_ab(result, cfg);
  ASSERT_TRUE(report.any_significant());

  bool quality_significant = false;
  for (const exp::AbMetricReport& m : report.metrics) {
    if (m.metric != "all_quality_mean") {
      continue;
    }
    ASSERT_EQ(m.pairs.size(), 1u);
    quality_significant = m.pairs[0].significant;
    // diff = mean(floor) - mean(ceiling): the floor arm watches worse video.
    EXPECT_LT(m.pairs[0].diff.point, 0.0);
    EXPECT_LT(m.pairs[0].diff.hi, 0.0);  // the whole CI is below zero
  }
  EXPECT_TRUE(quality_significant);
}

TEST(AbExperiment, SpecValidationNamesTheField) {
  const std::vector<net::Trace> traces = ab_traces();
  const auto expect_validate_error = [&](fleet::FleetSpec& spec,
                                         const std::string& needle) {
    try {
      spec.validate();
      FAIL() << "expected invalid_argument mentioning '" << needle << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "actual message: " << e.what();
    }
  };

  {  // classes and arms are mutually exclusive
    fleet::FleetSpec spec = ab_spec(traces);
    add_three_arms(spec);
    spec.classes.push_back(make_arm(
        "extra", [] { return std::make_unique<abr::Bba>(); }));
    expect_validate_error(spec, "leave FleetSpec.classes empty");
  }
  {  // one arm is not an experiment
    fleet::FleetSpec spec = ab_spec(traces);
    spec.experiment.arms.push_back(make_arm(
        "only", [] { return std::make_unique<abr::Bba>(); }));
    expect_validate_error(spec, "at least two");
  }
  {  // arm cap
    fleet::FleetSpec spec = ab_spec(traces);
    for (int i = 0; i < 65; ++i) {
      spec.experiment.arms.push_back(make_arm(
          "arm" + std::to_string(i),
          [] { return std::make_unique<abr::Bba>(); }));
    }
    expect_validate_error(spec, "at most 64 arms");
  }
  {  // trace_strata range
    fleet::FleetSpec spec = ab_spec(traces);
    add_three_arms(spec);
    spec.experiment.trace_strata = 0;
    expect_validate_error(spec, "FleetSpec.experiment.trace_strata");
    spec.experiment.trace_strata = 65;
    expect_validate_error(spec, "FleetSpec.experiment.trace_strata");
  }
  {  // labels are mandatory and unique
    fleet::FleetSpec spec = ab_spec(traces);
    add_three_arms(spec);
    spec.experiment.arms[1].label.clear();
    expect_validate_error(spec, "arms[1].label");
    spec.experiment.arms[1].label = "bba";
    expect_validate_error(spec, "duplicate label 'bba'");
  }
}

TEST(AbExperiment, AnalyzeRejectsBadInput) {
  const std::vector<net::Trace> traces = ab_traces();

  // A plain (non-experiment) fleet result is not analyzable.
  fleet::FleetSpec plain = ab_spec(traces);
  plain.classes.push_back(make_arm(
      "bba", [] { return std::make_unique<abr::Bba>(); }));
  const fleet::FleetResult plain_result = fleet::run_fleet(plain);
  EXPECT_THROW((void)exp::analyze_ab(plain_result), std::invalid_argument);

  // An arm with fewer than two sessions cannot be tested: 3 sessions over
  // 2 arms always leaves one side with n <= 1.
  fleet::FleetSpec tiny = ab_spec(traces, 3);
  tiny.experiment.arms.push_back(make_arm(
      "a", [] { return std::make_unique<abr::Bba>(); }));
  tiny.experiment.arms.push_back(make_arm(
      "b", [] { return std::make_unique<abr::Bba>(); }));
  const fleet::FleetResult tiny_result = fleet::run_fleet(tiny);
  try {
    (void)exp::analyze_ab(tiny_result);
    FAIL() << "expected n < 2 rejection";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fewer than 2 sessions"),
              std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(AbExperiment, AnalysisConfigValidation) {
  const auto expect_cfg_error = [](exp::AbAnalysisConfig cfg,
                                   const std::string& needle) {
    try {
      cfg.validate();
      FAIL() << "expected invalid_argument mentioning '" << needle << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "actual message: " << e.what();
    }
  };
  exp::AbAnalysisConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.alpha = 0.0;
  expect_cfg_error(cfg, "AbAnalysisConfig.alpha");
  cfg.alpha = 1.0;
  expect_cfg_error(cfg, "AbAnalysisConfig.alpha");
  cfg = exp::AbAnalysisConfig();
  cfg.bootstrap.resamples = 0;
  expect_cfg_error(cfg, "AbAnalysisConfig.bootstrap.resamples");
  cfg = exp::AbAnalysisConfig();
  cfg.bootstrap.confidence = 1.0;
  expect_cfg_error(cfg, "AbAnalysisConfig.bootstrap.confidence");
  cfg = exp::AbAnalysisConfig();
  cfg.min_stratum_sessions = 1;
  expect_cfg_error(cfg, "AbAnalysisConfig.min_stratum_sessions");
}

}  // namespace
}  // namespace vbr
