// Tests for the shared-bottleneck multi-client simulator.
#include "sim/multi_client.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/cava.h"
#include "net/bandwidth_estimator.h"
#include "net/trace_gen.h"
#include "test_util.h"
#include "video/dataset.h"

namespace {

using namespace vbr;
using testutil::flat_trace;

sim::ClientSpec make_client(const video::Video& v, double offset = 0.0) {
  sim::ClientSpec spec;
  spec.video = &v;
  spec.scheme = core::make_cava_p123();
  spec.estimator = std::make_unique<net::HarmonicMeanEstimator>(5);
  spec.start_offset_s = offset;
  return spec;
}

TEST(MultiClient, Validation) {
  const video::Video v = testutil::default_flat_video(10);
  const net::Trace t = flat_trace(2e6);
  EXPECT_THROW((void)sim::run_multi_client(t, {}), std::invalid_argument);

  std::vector<sim::ClientSpec> bad;
  bad.push_back(make_client(v));
  bad[0].video = nullptr;
  EXPECT_THROW((void)sim::run_multi_client(t, std::move(bad)),
               std::invalid_argument);

  std::vector<sim::ClientSpec> abandon;
  abandon.push_back(make_client(v));
  sim::SessionConfig cfg;
  cfg.enable_abandonment = true;
  EXPECT_THROW((void)sim::run_multi_client(t, std::move(abandon), cfg),
               std::invalid_argument);
}

TEST(MultiClient, SingleClientMatchesRunSession) {
  // The anchor: with one client, the shared-bottleneck event loop must
  // reproduce run_session decision-for-decision.
  const video::Video v = video::make_video(
      "eq", video::Genre::kAnimation, video::Codec::kH264, 2.0, 2.0, 42,
      200.0);
  const net::Trace t = net::generate_lte_trace(5);

  core::Cava cava;
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult single = sim::run_session(v, t, cava, est);

  std::vector<sim::ClientSpec> clients;
  clients.push_back(make_client(v));
  const sim::MultiClientResult multi =
      sim::run_multi_client(t, std::move(clients));

  ASSERT_EQ(multi.sessions.size(), 1u);
  const sim::SessionResult& m = multi.sessions[0];
  ASSERT_EQ(m.chunks.size(), single.chunks.size());
  for (std::size_t i = 0; i < m.chunks.size(); ++i) {
    EXPECT_EQ(m.chunks[i].track, single.chunks[i].track) << "chunk " << i;
    EXPECT_NEAR(m.chunks[i].download_s, single.chunks[i].download_s, 1e-3);
  }
  EXPECT_NEAR(m.total_rebuffer_s, single.total_rebuffer_s, 1e-2);
  EXPECT_NEAR(m.total_bits, single.total_bits, 1.0);
}

TEST(MultiClient, SymmetricClientsShareFairly) {
  const video::Video v = video::make_video(
      "sym", video::Genre::kAnimation, video::Codec::kH264, 2.0, 2.0, 42,
      200.0);
  const net::Trace t = flat_trace(4e6);
  std::vector<sim::ClientSpec> clients;
  clients.push_back(make_client(v));
  clients.push_back(make_client(v));
  const sim::MultiClientResult r = sim::run_multi_client(t, std::move(clients));
  ASSERT_EQ(r.sessions.size(), 2u);
  const auto bits = r.total_bits();
  EXPECT_GT(sim::MultiClientResult::jain_index(bits), 0.99);
  const auto q = r.mean_qualities(video::QualityMetric::kVmafPhone);
  EXPECT_NEAR(q[0], q[1], 3.0);
}

TEST(MultiClient, ContentionLowersQuality) {
  const video::Video v = video::make_video(
      "cont", video::Genre::kAnimation, video::Codec::kH264, 2.0, 2.0, 42,
      200.0);
  const net::Trace t = flat_trace(3e6);
  auto run_n = [&](std::size_t n) {
    std::vector<sim::ClientSpec> clients;
    for (std::size_t i = 0; i < n; ++i) {
      clients.push_back(make_client(v));
    }
    const auto r = sim::run_multi_client(t, std::move(clients));
    double q = 0.0;
    for (const double x :
         r.mean_qualities(video::QualityMetric::kVmafPhone)) {
      q += x;
    }
    return q / static_cast<double>(n);
  };
  EXPECT_GT(run_n(1), run_n(3) + 2.0);
}

TEST(MultiClient, StaggeredJoinRespectsOffsets) {
  const video::Video v = testutil::default_flat_video(20);
  const net::Trace t = flat_trace(10e6);
  std::vector<sim::ClientSpec> clients;
  clients.push_back(make_client(v, 0.0));
  clients.push_back(make_client(v, 30.0));
  const auto r = sim::run_multi_client(t, std::move(clients));
  EXPECT_GE(r.sessions[1].chunks.front().download_start_s, 30.0);
  EXPECT_LT(r.sessions[0].chunks.front().download_start_s, 1.0);
}

TEST(MultiClient, JainIndexBasics) {
  EXPECT_DOUBLE_EQ(sim::MultiClientResult::jain_index({1.0, 1.0, 1.0}), 1.0);
  EXPECT_NEAR(sim::MultiClientResult::jain_index({1.0, 0.0}), 0.5, 1e-12);
  EXPECT_THROW((void)sim::MultiClientResult::jain_index({}),
               std::invalid_argument);
}

TEST(MultiClient, WatchDurationTruncatesOneClient) {
  // Abandonment proper is rejected (the fair-share event loop cannot rewind
  // already-shared capacity), but watch-duration truncation — the fleet's
  // early-leave model — composes fine: the leaver just stops fetching.
  const video::Video v = testutil::default_flat_video(20);  // 40 s of video
  const net::Trace t = flat_trace(10e6);
  std::vector<sim::ClientSpec> clients;
  clients.push_back(make_client(v));
  clients.push_back(make_client(v));
  clients[1].watch_duration_s = 10.0;  // leaves after 5 chunks
  const auto r = sim::run_multi_client(t, std::move(clients));
  ASSERT_EQ(r.sessions.size(), 2u);
  EXPECT_EQ(r.sessions[0].chunks.size(), 20u);
  EXPECT_EQ(r.sessions[1].chunks.size(), 5u);
  EXPECT_LT(r.sessions[1].total_bits, r.sessions[0].total_bits);
}

TEST(MultiClient, ConfigWatchDurationIsTheFallback) {
  // A per-client value of 0 inherits the shared config's truncation.
  const video::Video v = testutil::default_flat_video(20);
  const net::Trace t = flat_trace(10e6);
  std::vector<sim::ClientSpec> clients;
  clients.push_back(make_client(v));
  sim::SessionConfig cfg;
  cfg.watch_duration_s = 6.0;
  const auto r = sim::run_multi_client(t, std::move(clients), cfg);
  EXPECT_EQ(r.sessions[0].chunks.size(), 3u);
}

TEST(MultiClient, RejectsDownloadHookAndBadWatchDuration) {
  class NullHook final : public sim::DownloadPathHook {
   public:
    sim::FetchPlan on_chunk_request(const video::Video&, std::size_t,
                                    std::size_t, double, double) override {
      return {};
    }
  };
  NullHook hook;
  const video::Video v = testutil::default_flat_video(10);
  const net::Trace t = flat_trace(2e6);
  {
    std::vector<sim::ClientSpec> clients;
    clients.push_back(make_client(v));
    sim::SessionConfig cfg;
    cfg.download_hook = &hook;  // delivery models belong to run_fleet
    EXPECT_THROW((void)sim::run_multi_client(t, std::move(clients), cfg),
                 std::invalid_argument);
  }
  {
    std::vector<sim::ClientSpec> clients;
    clients.push_back(make_client(v));
    clients[0].watch_duration_s = -1.0;
    EXPECT_THROW((void)sim::run_multi_client(t, std::move(clients)),
                 std::invalid_argument);
  }
}

TEST(MultiClient, ThroughputConservation) {
  // Total delivered bits cannot exceed the bottleneck's capacity over the
  // busy interval.
  const video::Video v = testutil::default_flat_video(30);
  const net::Trace t = flat_trace(2e6);
  std::vector<sim::ClientSpec> clients;
  clients.push_back(make_client(v));
  clients.push_back(make_client(v));
  clients.push_back(make_client(v));
  const auto r = sim::run_multi_client(t, std::move(clients));
  double total = 0.0;
  double last_end = 0.0;
  for (const auto& s : r.sessions) {
    total += s.total_bits;
    last_end = std::max(last_end, s.end_time_s);
  }
  EXPECT_LE(total, 2e6 * last_end * 1.01);
}

}  // namespace
