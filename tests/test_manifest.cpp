// Tests for the DASH-like manifest round-trip.
#include "video/manifest.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "video/dataset.h"

namespace {

using namespace vbr::video;

Video sample_video() {
  return make_video("ED", Genre::kAnimation, Codec::kH264, 2.0, 2.0, 42,
                    60.0);
}

TEST(Manifest, RoundTripPreservesStructure) {
  const Video v = sample_video();
  const Video r = from_manifest_string(to_manifest_string(v));
  EXPECT_EQ(r.name(), v.name());
  EXPECT_EQ(r.genre(), v.genre());
  EXPECT_EQ(r.codec(), v.codec());
  EXPECT_EQ(r.num_tracks(), v.num_tracks());
  EXPECT_EQ(r.num_chunks(), v.num_chunks());
  EXPECT_DOUBLE_EQ(r.chunk_duration_s(), v.chunk_duration_s());
}

TEST(Manifest, RoundTripPreservesSizes) {
  const Video v = sample_video();
  const Video r = from_manifest_string(to_manifest_string(v));
  for (std::size_t l = 0; l < v.num_tracks(); ++l) {
    EXPECT_EQ(r.track(l).resolution(), v.track(l).resolution());
    for (std::size_t i = 0; i < v.num_chunks(); ++i) {
      EXPECT_NEAR(r.chunk_size_bits(l, i), v.chunk_size_bits(l, i),
                  1e-3 * v.chunk_size_bits(l, i));
    }
  }
}

TEST(Manifest, RoundTripPreservesQualityAndScene) {
  const Video v = sample_video();
  const Video r = from_manifest_string(to_manifest_string(v));
  for (std::size_t l = 0; l < v.num_tracks(); ++l) {
    for (std::size_t i = 0; i < v.num_chunks(); ++i) {
      const ChunkQuality& a = v.track(l).chunk(i).quality;
      const ChunkQuality& b = r.track(l).chunk(i).quality;
      EXPECT_NEAR(a.vmaf_tv, b.vmaf_tv, 1e-6);
      EXPECT_NEAR(a.vmaf_phone, b.vmaf_phone, 1e-6);
      EXPECT_NEAR(a.psnr_db, b.psnr_db, 1e-6);
      EXPECT_NEAR(a.ssim, b.ssim, 1e-9);
    }
  }
  for (std::size_t i = 0; i < v.num_chunks(); ++i) {
    EXPECT_NEAR(v.scene_info(i).si, r.scene_info(i).si, 1e-6);
    EXPECT_NEAR(v.scene_info(i).ti, r.scene_info(i).ti, 1e-6);
  }
}

TEST(Manifest, DerivedBitratesSurviveRoundTrip) {
  const Video v = sample_video();
  const Video r = from_manifest_string(to_manifest_string(v));
  for (std::size_t l = 0; l < v.num_tracks(); ++l) {
    EXPECT_NEAR(r.track(l).average_bitrate_bps(),
                v.track(l).average_bitrate_bps(),
                1e-3 * v.track(l).average_bitrate_bps());
  }
}

TEST(Manifest, BadMagicThrows) {
  std::istringstream iss("NOT-A-MANIFEST");
  EXPECT_THROW((void)read_manifest(iss), std::runtime_error);
}

TEST(Manifest, TruncatedInputThrows) {
  const std::string text = to_manifest_string(sample_video());
  const std::string truncated = text.substr(0, text.size() / 2);
  EXPECT_THROW((void)from_manifest_string(truncated), std::runtime_error);
}

TEST(Manifest, MissingSidecarThrows) {
  ManifestOptions opts;
  opts.include_sidecar = false;
  const std::string text = to_manifest_string(sample_video(), opts);
  EXPECT_THROW((void)from_manifest_string(text), std::runtime_error);
}

TEST(Manifest, GarbageGenreThrows) {
  std::string text = to_manifest_string(sample_video());
  const auto pos = text.find("animation");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 9, "badgenre1");
  EXPECT_THROW((void)from_manifest_string(text), std::runtime_error);
}

TEST(Manifest, AllCodecsAndChunkDurationsRoundTrip) {
  for (const Codec codec : {Codec::kH264, Codec::kH265}) {
    for (const double dur : {2.0, 5.0}) {
      const Video v =
          make_video("t", Genre::kSports, codec, dur, 2.0, 7, 60.0);
      const Video r = from_manifest_string(to_manifest_string(v));
      EXPECT_EQ(r.codec(), codec);
      EXPECT_DOUBLE_EQ(r.chunk_duration_s(), dur);
    }
  }
}

}  // namespace
