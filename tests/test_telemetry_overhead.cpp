// Overhead regression: attaching telemetry must not distort the simulator.
//
// Two guarantees are enforced, both with deliberately generous hard bounds
// (this is a regression tripwire for "telemetry accidentally became a
// per-chunk allocation festival", not a microbenchmark — CI machines are
// noisy and sanitizer builds are slow):
//
//   1. the null sink (no sink/registry attached) costs one branch per
//      chunk, so a plain run must stay within a small factor of itself and
//      of the pre-telemetry cost — measured as factor vs. best-of-K;
//   2. full telemetry (memory sink + registry) stays within a generous
//      multiple of the null-sink run.
//
// bench/bench_ext_telemetry_overhead.cpp gives the precise numbers; this
// test only fails when something is badly wrong.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <limits>

#include "core/cava.h"
#include "net/bandwidth_estimator.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "sim/session.h"
#include "test_util.h"

namespace {

using namespace vbr;
using testutil::default_flat_video;
using testutil::flat_trace;

double time_session_s(const video::Video& v, const net::Trace& t,
                      const sim::SessionConfig& cfg, int reps) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    auto cava = core::make_cava_p123();
    net::HarmonicMeanEstimator est(5);
    const auto start = std::chrono::steady_clock::now();
    const sim::SessionResult res = sim::run_session(v, t, *cava, est, cfg);
    const auto end = std::chrono::steady_clock::now();
    EXPECT_FALSE(res.chunks.empty());
    best = std::min(best, std::chrono::duration<double>(end - start).count());
  }
  return best;
}

TEST(TelemetryOverhead, NullSinkStaysNearBaselineAndFullStaysBounded) {
  const video::Video v = default_flat_video(500);
  const net::Trace t = flat_trace(1e7);
  constexpr int kReps = 5;

  sim::SessionConfig null_cfg;  // trace/metrics null: the zero-cost path
  const double null_s = time_session_s(v, t, null_cfg, kReps);

  obs::MemoryTraceSink sink;
  obs::MetricsRegistry reg;
  sim::SessionConfig full_cfg;
  full_cfg.trace = &sink;
  full_cfg.metrics = &reg;
  const double full_s = time_session_s(v, t, full_cfg, kReps);

  // Sanity: the instrumented runs actually recorded telemetry.
  EXPECT_GT(sink.total_received(), 0u);
  EXPECT_GT(reg.counter("chunks_total").value(), 0.0);

  // Generous hard bounds: an absolute floor keeps sub-millisecond timing
  // noise from ever deciding the verdict.
  constexpr double kSlackS = 0.05;
  constexpr double kFullFactor = 10.0;
  EXPECT_LT(full_s, kFullFactor * null_s + kSlackS)
      << "full telemetry run took " << full_s << " s vs null-sink " << null_s
      << " s — telemetry is no longer cheap";

  // The null path must not itself have grown pathological: 500 decisions
  // of pure simulation should never take a second even under sanitizers.
  EXPECT_LT(null_s, 1.0)
      << "null-sink session took " << null_s
      << " s for 500 chunks — the supposedly free path is doing work";
}

TEST(TelemetryOverhead, RecordedDecisionLatencyIsSane) {
  // The scoped-timer histogram itself is the second tripwire: per-decision
  // wall-clock latency has to stay far below anything that would matter at
  // streaming timescales (the paper measured ~190 us for its JS rule).
  const video::Video v = default_flat_video(200);
  const net::Trace t = flat_trace(1e7);
  auto cava = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  obs::MetricsRegistry reg;
  sim::SessionConfig cfg;
  cfg.metrics = &reg;
  (void)sim::run_session(v, t, *cava, est, cfg);
  const obs::Histogram& h = reg.histogram(
      "decision_latency_seconds", obs::decision_latency_bounds(), true);
  ASSERT_EQ(h.count(), 200u);
  EXPECT_GE(h.min(), 0.0);
  // Mean per-decision latency under 50 ms — a bound ~1000x above the
  // expected value, immune to CI noise, that still catches an accidental
  // O(n) or allocation storm inside decide()/telemetry.
  EXPECT_LT(h.sum() / static_cast<double>(h.count()), 0.05);
}

}  // namespace
