// Additional edge-case coverage across modules.
#include <gtest/gtest.h>

#include <memory>

#include "abr/bola.h"
#include "core/cava.h"
#include "core/complexity_classifier.h"
#include "core/inner_controller.h"
#include "net/bandwidth_estimator.h"
#include "net/trace_gen.h"
#include "sim/live_session.h"
#include "sim/session.h"
#include "test_util.h"
#include "video/dataset.h"
#include "video/encoder.h"

namespace {

using namespace vbr;

TEST(EdgeCases, InnerWindowConvertsSecondsToChunks) {
  // W = 40 s means 8 chunks at 5 s chunking and 20 chunks at 2 s chunking:
  // on a video with a single spike, the 5 s-chunk window dilutes the spike
  // by 1/8, the 2 s one by 1/20.
  const video::Video v5 =
      testutil::make_flat_video({1e6}, 40, 5.0, {{10, 3.0}});
  const video::Video v2 =
      testutil::make_flat_video({1e6}, 100, 2.0, {{10, 3.0}});
  core::CavaConfig cfg;
  const core::InnerController inner(cfg);
  const double base5 = inner.smoothed_bitrate_bps(v5, 0, 20);
  const double spiked5 = inner.smoothed_bitrate_bps(v5, 0, 10);
  const double base2 = inner.smoothed_bitrate_bps(v2, 0, 40);
  const double spiked2 = inner.smoothed_bitrate_bps(v2, 0, 10);
  EXPECT_NEAR((spiked5 - base5) / base5, 2.0 / 8.0, 1e-9);
  EXPECT_NEAR((spiked2 - base2) / base2, 2.0 / 20.0, 1e-9);
}

TEST(EdgeCases, CavaRunsOnCbrVideo) {
  // On a CBR encode the size quartiles are nearly degenerate; CAVA must
  // still stream correctly (differential treatment simply has nothing to
  // differentiate).
  const video::Video cbr = video::make_cbr_video(
      "cbr", video::Genre::kAnimation, video::Codec::kH264, 2.0, 42, 200.0);
  const net::Trace t = testutil::flat_trace(2e6);
  core::Cava cava;
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r = sim::run_session(cbr, t, cava, est);
  EXPECT_EQ(r.chunks.size(), cbr.num_chunks());
  EXPECT_DOUBLE_EQ(r.total_rebuffer_s, 0.0);
}

TEST(EdgeCases, CavaRunsOn4xCapVideo) {
  const video::Video v4 = [] {
    video::DatasetConfig cfg;
    cfg.duration_s = 200.0;
    return video::make_4x_capped_video(cfg);
  }();
  const net::Trace t = net::generate_lte_trace(5);
  core::Cava cava;
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r = sim::run_session(v4, t, cava, est);
  EXPECT_EQ(r.chunks.size(), v4.num_chunks());
}

TEST(EdgeCases, BolaWaitsAtLiveEdgeWithoutDeadlock) {
  // BOLA pauses above its buffer target; in live mode the production gate
  // also idles the player. The two must compose without deadlock or stall
  // accounting errors.
  const video::Video v = video::make_video(
      "live-bola", video::Genre::kAnimation, video::Codec::kH264, 2.0, 2.0,
      42, 200.0);
  const net::Trace t = testutil::flat_trace(20e6);
  abr::Bola bola;
  net::HarmonicMeanEstimator est(5);
  const sim::LiveSessionResult r = sim::run_live_session(v, t, bola, est);
  EXPECT_EQ(r.session.chunks.size(), v.num_chunks());
  EXPECT_LT(r.session.total_rebuffer_s, 1.0);
}

TEST(EdgeCases, EncoderBitrateMonotoneInCrf) {
  const auto scene =
      video::generate_scene_trace(video::Genre::kSciFi, 100, 3);
  double prev = 1e18;
  for (const double crf : {19.0, 22.0, 25.0, 28.0, 31.0}) {
    video::EncoderConfig cfg;
    cfg.resolution = video::kLadder480p;
    cfg.crf = crf;
    const video::Track t = video::encode_track(scene, 3, cfg);
    EXPECT_LT(t.average_bitrate_bps(), prev);
    prev = t.average_bitrate_bps();
  }
}

TEST(EdgeCases, EncoderQualityMonotoneInCrf) {
  const auto scene =
      video::generate_scene_trace(video::Genre::kSciFi, 100, 3);
  double prev_q = 1e18;
  for (const double crf : {19.0, 25.0, 31.0}) {
    video::EncoderConfig cfg;
    cfg.resolution = video::kLadder480p;
    cfg.crf = crf;
    cfg.noise_seed = 9;
    const video::Track t = video::encode_track(scene, 3, cfg);
    double q = 0.0;
    for (const video::Chunk& c : t.chunks()) {
      q += c.quality.vmaf_phone;
    }
    q /= static_cast<double>(t.num_chunks());
    EXPECT_LT(q, prev_q + 1e-9);
    prev_q = q;
  }
}

TEST(EdgeCases, FccSessionsSatisfyInvariants) {
  const video::Video v = video::make_video(
      "fcc-check", video::Genre::kNature, video::Codec::kH264, 5.0, 2.0, 8,
      300.0);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const net::Trace t = net::generate_fcc_trace(1000 + seed);
    core::Cava cava;
    net::HarmonicMeanEstimator est(5);
    const sim::SessionResult r = sim::run_session(v, t, cava, est);
    ASSERT_EQ(r.chunks.size(), v.num_chunks());
    double prev_end = 0.0;
    for (const auto& c : r.chunks) {
      EXPECT_GE(c.download_start_s + 1e-9, prev_end);
      prev_end = c.download_start_s + c.download_s;
    }
  }
}

TEST(EdgeCases, ClassifierCustomClassesValidate) {
  EXPECT_THROW(core::ComplexityClassifier({0, 1, 4}, 4),
               std::invalid_argument);
  EXPECT_THROW(core::ComplexityClassifier(std::vector<std::size_t>{}, 4),
               std::invalid_argument);
  EXPECT_THROW(core::ComplexityClassifier({0, 0}, 1), std::invalid_argument);
  const core::ComplexityClassifier c({0, 3, 1}, 4);
  EXPECT_TRUE(c.is_complex(1));
  EXPECT_FALSE(c.is_complex(2));
}

TEST(EdgeCases, ContentClassifierCavaMatchesSizeCavaOnSessions) {
  // End-to-end: the two classifier flavours give nearly identical sessions
  // (the Section 3.1.1 claim at the system level).
  const video::Video v = video::make_video(
      "cls", video::Genre::kSciFi, video::Codec::kH264, 2.0, 2.0, 11,
      300.0);
  const net::Trace t = net::generate_lte_trace(31);
  core::CavaConfig size_cfg;
  core::CavaConfig content_cfg;
  content_cfg.use_content_classifier = true;
  core::Cava size_cava(size_cfg);
  core::Cava content_cava(content_cfg);
  net::HarmonicMeanEstimator e1(5);
  net::HarmonicMeanEstimator e2(5);
  const auto a = sim::run_session(v, t, size_cava, e1);
  const auto b = sim::run_session(v, t, content_cava, e2);
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.chunks.size(); ++i) {
    same += a.chunks[i].track == b.chunks[i].track ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(same) / a.chunks.size(), 0.8);
}

TEST(EdgeCases, LiveWithFiveSecondChunks) {
  const video::Video v = video::make_video(
      "live5", video::Genre::kSports, video::Codec::kH264, 5.0, 2.0, 13,
      300.0);
  const net::Trace t = net::generate_lte_trace(77);
  auto cava = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  const sim::LiveSessionResult r = sim::run_live_session(v, t, *cava, est);
  EXPECT_EQ(r.session.chunks.size(), v.num_chunks());
  EXPECT_GT(r.mean_latency_s, 0.0);
}

}  // namespace
