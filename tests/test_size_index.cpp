// SizeIndex property tests: prefix sums must reproduce the naive
// left-to-right accumulation bit-for-bit, range queries must stay within
// one rounding of the naive loop, and every out-of-range query must throw
// std::out_of_range — the same error type the `.at()` table paths raise.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>
#include <stdexcept>
#include <vector>

#include "test_util.h"
#include "video/dataset.h"
#include "video/size_index.h"
#include "video/size_provider.h"

namespace vbr {
namespace {

/// Naive reference: the left-to-right loop the index replaces.
double naive_sum(const video::Video& v, std::size_t level, std::size_t begin,
                 std::size_t end) {
  double acc = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    acc += v.chunk_size_bits(level, i);
  }
  return acc;
}

double naive_min_sum(const video::Video& v, std::size_t begin,
                     std::size_t end) {
  double acc = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    double m = v.chunk_size_bits(0, i);
    for (std::size_t l = 1; l < v.num_tracks(); ++l) {
      m = std::min(m, v.chunk_size_bits(l, i));
    }
    acc += m;
  }
  return acc;
}

video::Video random_video(std::uint64_t seed) {
  return video::make_video("szidx-" + std::to_string(seed),
                           video::Genre::kAction, video::Codec::kH264, 2.0,
                           2.0, seed, 60.0 + 4.0 * static_cast<double>(
                                                      seed % 5));
}

TEST(SizeIndex, PrefixSumsBitIdenticalToNaiveAccumulation) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const video::Video v = random_video(seed);
    const video::SizeIndex idx(v);
    ASSERT_EQ(idx.num_tracks(), v.num_tracks());
    ASSERT_EQ(idx.num_chunks(), v.num_chunks());
    for (std::size_t l = 0; l < v.num_tracks(); ++l) {
      for (std::size_t end = 0; end <= v.num_chunks(); ++end) {
        // Exact equality: same additions in the same order.
        ASSERT_EQ(idx.prefix_bits(l, end), naive_sum(v, l, 0, end))
            << "seed " << seed << " track " << l << " end " << end;
      }
      ASSERT_EQ(idx.total_bits(l), naive_sum(v, l, 0, v.num_chunks()));
    }
  }
}

TEST(SizeIndex, MinTrackPrefixBitIdenticalToNaive) {
  const video::Video v = random_video(42);
  const video::SizeIndex idx(v);
  for (std::size_t end = 0; end <= v.num_chunks(); ++end) {
    ASSERT_EQ(idx.min_track_prefix_bits(end), naive_min_sum(v, 0, end));
  }
}

TEST(SizeIndex, InteriorRangesWithinOneRoundingOfNaiveLoop) {
  std::mt19937_64 rng(7);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const video::Video v = random_video(seed);
    const video::SizeIndex idx(v);
    for (int q = 0; q < 200; ++q) {
      const std::size_t a = rng() % (v.num_chunks() + 1);
      const std::size_t b = a + rng() % (v.num_chunks() + 1 - a);
      for (std::size_t l = 0; l < v.num_tracks(); ++l) {
        const double naive = naive_sum(v, l, a, b);
        const double indexed = idx.range_bits(l, a, b);
        // Subtraction of two prefixes: not bit-equal to the interior loop
        // in general, but within a tight relative tolerance of it.
        ASSERT_NEAR(indexed, naive, 1e-9 * std::max(1.0, naive))
            << "track " << l << " [" << a << ", " << b << ")";
      }
      ASSERT_NEAR(idx.min_track_range_bits(a, b), naive_min_sum(v, a, b),
                  1e-9 * std::max(1.0, naive_min_sum(v, a, b)));
    }
  }
}

TEST(SizeIndex, PrefixFromZeroRangeIsExact) {
  const video::Video v = random_video(9);
  const video::SizeIndex idx(v);
  for (std::size_t l = 0; l < v.num_tracks(); ++l) {
    for (std::size_t end = 0; end <= v.num_chunks(); ++end) {
      // [0, end) ranges subtract a zero prefix, so they stay bit-exact.
      ASSERT_EQ(idx.range_bits(l, 0, end), idx.prefix_bits(l, end));
    }
  }
}

TEST(SizeIndex, FlatVideoPrefixesAreLinear) {
  const video::Video v = testutil::make_flat_video({1e6, 2e6}, 10);
  const video::SizeIndex idx(v);
  // Flat 2 s chunks at 1 Mbps = 2e6 bits each; sums are exact in binary.
  EXPECT_EQ(idx.prefix_bits(0, 5), 5 * 2e6);
  EXPECT_EQ(idx.range_bits(0, 2, 7), 5 * 2e6);
  EXPECT_EQ(idx.min_track_prefix_bits(10), 10 * 2e6);
  EXPECT_EQ(idx.total_bits(1), 10 * 4e6);
}

TEST(SizeIndex, OutOfRangeQueriesThrowOutOfRange) {
  const video::Video v = testutil::default_flat_video(12);
  const video::SizeIndex idx(v);
  const std::size_t tracks = idx.num_tracks();
  const std::size_t chunks = idx.num_chunks();
  EXPECT_THROW((void)idx.prefix_bits(tracks, 0), std::out_of_range);
  EXPECT_THROW((void)idx.prefix_bits(0, chunks + 1), std::out_of_range);
  EXPECT_THROW((void)idx.range_bits(0, 5, 4), std::out_of_range);
  EXPECT_THROW((void)idx.range_bits(0, 0, chunks + 1), std::out_of_range);
  EXPECT_THROW((void)idx.range_bits(tracks, 0, 1), std::out_of_range);
  EXPECT_THROW((void)idx.min_track_prefix_bits(chunks + 1),
               std::out_of_range);
  EXPECT_THROW((void)idx.min_track_range_bits(3, 2), std::out_of_range);
  EXPECT_THROW((void)idx.total_bits(tracks), std::out_of_range);
  // In-range boundary queries do not throw.
  EXPECT_NO_THROW((void)idx.prefix_bits(tracks - 1, chunks));
  EXPECT_NO_THROW((void)idx.range_bits(0, chunks, chunks));
}

TEST(SizeIndex, BatchedProviderFillMatchesPerEntryQueries) {
  // The batch API the pruned MPC hot path uses must reproduce per-entry
  // values exactly, for every provider in the fallback ladder.
  const video::Video v = random_video(3);
  std::vector<std::unique_ptr<video::ChunkSizeProvider>> providers;
  providers.push_back(std::make_unique<video::OracleSizeProvider>());
  providers.push_back(std::make_unique<video::DeclaredRateSizeProvider>());
  providers.push_back(std::make_unique<video::NoisySizeProvider>(0.25, 5));
  providers.push_back(std::make_unique<video::PartialSizeProvider>(0.3, 9));
  for (const auto& p : providers) {
    for (std::size_t l = 0; l < v.num_tracks(); ++l) {
      std::vector<double> batch(v.num_chunks());
      p->fill_size_bits(v, l, 0, v.num_chunks(), batch.data());
      for (std::size_t i = 0; i < v.num_chunks(); ++i) {
        ASSERT_EQ(batch[i], p->size_bits(v, l, i))
            << p->name() << " track " << l << " chunk " << i;
      }
      // Interior window.
      std::vector<double> window(5);
      p->fill_size_bits(v, l, 3, 8, window.data());
      for (std::size_t i = 0; i < 5; ++i) {
        ASSERT_EQ(window[i], p->size_bits(v, l, 3 + i));
      }
    }
  }
}

}  // namespace
}  // namespace vbr
