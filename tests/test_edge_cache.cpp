// Edge-cache unit tests: LRU order, size-aware admission, the byte-capacity
// invariant, and the DownloadPathHook adapter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "fleet/edge_cache.h"
#include "fleet/rng.h"
#include "test_util.h"

namespace vbr {
namespace {

fleet::EdgeCacheConfig small_cache(double capacity_bits) {
  fleet::EdgeCacheConfig cfg;
  cfg.capacity_bits = capacity_bits;
  cfg.max_object_fraction = 0.5;
  return cfg;
}

fleet::ObjectKey key(std::uint64_t chunk, std::uint32_t track = 0) {
  return fleet::ObjectKey{0, track, chunk};
}

TEST(EdgeCache, MissThenHit) {
  fleet::EdgeCache cache(small_cache(1000.0));
  EXPECT_FALSE(cache.lookup(key(0), 100.0));
  cache.admit(key(0), 100.0);
  EXPECT_TRUE(cache.lookup(key(0), 100.0));
  EXPECT_EQ(cache.stats().lookups, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_bits, 100.0);
  EXPECT_DOUBLE_EQ(cache.stats().miss_bits, 100.0);
  EXPECT_DOUBLE_EQ(cache.stats().hit_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(cache.stats().byte_hit_ratio(), 0.5);
}

TEST(EdgeCache, EvictsLeastRecentlyUsedFirst) {
  // Three 100-bit objects fill a 300-bit cache; admitting a fourth must
  // evict the LRU object (0), not the most recent.
  fleet::EdgeCache cache(small_cache(300.0));
  cache.admit(key(0), 100.0);
  cache.admit(key(1), 100.0);
  cache.admit(key(2), 100.0);
  cache.admit(key(3), 100.0);
  EXPECT_FALSE(cache.contains(key(0)));
  EXPECT_TRUE(cache.contains(key(1)));
  EXPECT_TRUE(cache.contains(key(2)));
  EXPECT_TRUE(cache.contains(key(3)));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().evicted_bits, 100.0);
}

TEST(EdgeCache, LookupTouchRefreshesRecency) {
  fleet::EdgeCache cache(small_cache(300.0));
  cache.admit(key(0), 100.0);
  cache.admit(key(1), 100.0);
  cache.admit(key(2), 100.0);
  // Touch 0: it becomes MRU, so the next eviction takes 1.
  EXPECT_TRUE(cache.lookup(key(0), 100.0));
  cache.admit(key(3), 100.0);
  EXPECT_TRUE(cache.contains(key(0)));
  EXPECT_FALSE(cache.contains(key(1)));
}

TEST(EdgeCache, SizeAwareAdmissionRejectsOversized) {
  // max_object_fraction = 0.5 of 1000 bits: a 600-bit object is served but
  // never cached, and evicts nothing.
  fleet::EdgeCache cache(small_cache(1000.0));
  cache.admit(key(0), 400.0);
  cache.admit(key(1), 600.0);
  EXPECT_FALSE(cache.contains(key(1)));
  EXPECT_TRUE(cache.contains(key(0)));
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(EdgeCache, ReAdmitRefreshesWithoutDoubleCounting) {
  fleet::EdgeCache cache(small_cache(300.0));
  cache.admit(key(0), 100.0);
  cache.admit(key(1), 100.0);
  cache.admit(key(0), 100.0);  // refresh, not a second copy
  EXPECT_EQ(cache.num_objects(), 2u);
  EXPECT_DOUBLE_EQ(cache.used_bits(), 200.0);
  cache.admit(key(2), 100.0);
  cache.admit(key(3), 100.0);  // evicts LRU = 1 (0 was refreshed)
  EXPECT_TRUE(cache.contains(key(0)));
  EXPECT_FALSE(cache.contains(key(1)));
}

TEST(EdgeCache, CapacityInvariantHoldsUnderRandomOperations) {
  // Property: used_bits() <= capacity after every operation, for an
  // adversarial mix of sizes drawn deterministically.
  fleet::EdgeCache cache(small_cache(5000.0));
  for (std::uint64_t i = 0; i < 500; ++i) {
    const double u = fleet::detail::keyed_u01(99, i, 0, 0xcafe);
    const std::uint64_t which = fleet::detail::mix64(i) % 40;
    const double size = 50.0 + 2600.0 * u;  // some objects oversized
    if (fleet::detail::keyed_u01(99, i, 1, 0xcafe) < 0.5) {
      cache.lookup(key(which), size);
    } else {
      cache.admit(key(which, static_cast<std::uint32_t>(i % 3)), size);
    }
    ASSERT_LE(cache.used_bits(), 5000.0 + 1e-9);
  }
  EXPECT_GT(cache.stats().lookups, 0u);
}

TEST(EdgeCache, StatsConserveBytesUnderEvictionChurn) {
  // Accounting invariants across an adversarial churn of admits (unique
  // keys, so no refresh ambiguity) and lookups against recent admits:
  //   - every looked-up bit lands in exactly one of hit_bits/miss_bits,
  //   - every accepted admitted bit is either still resident or evicted,
  //   - the size gate accounts for every rejection.
  const double capacity = 4000.0;
  fleet::EdgeCache cache(small_cache(capacity));
  double lookup_bits = 0.0;
  double accepted_bits = 0.0;
  std::uint64_t lookups = 0;
  std::uint64_t rejected = 0;
  std::uint64_t admits = 0;
  for (std::uint64_t i = 0; i < 800; ++i) {
    // Integer sizes keep the double sums exact; the range straddles the
    // 2000-bit size gate (max_object_fraction 0.5 of 4000).
    const double size =
        50.0 + std::floor(2200.0 * fleet::detail::keyed_u01(7, i, 0, 0xbeef));
    if (fleet::detail::keyed_u01(7, i, 1, 0xbeef) < 0.4 && admits > 0) {
      // Look up one of the ~20 most recently admitted objects.
      const std::uint64_t back =
          fleet::detail::mix64(i) % std::min<std::uint64_t>(admits, 20);
      cache.lookup(key(1000 + admits - 1 - back), size);
      ++lookups;
      lookup_bits += size;
    } else {
      cache.admit(key(1000 + admits), size);
      ++admits;
      if (size > 0.5 * capacity) {
        ++rejected;
      } else {
        accepted_bits += size;
      }
    }
    ASSERT_LE(cache.used_bits(), capacity + 1e-9);
  }
  const fleet::EdgeCacheStats& st = cache.stats();
  EXPECT_EQ(st.lookups, lookups);
  EXPECT_GT(st.hits, 0u);
  EXPECT_LE(st.hits, st.lookups);
  EXPECT_DOUBLE_EQ(st.hit_bits + st.miss_bits, lookup_bits);
  EXPECT_EQ(st.rejected, rejected);
  EXPECT_GT(st.rejected, 0u);
  EXPECT_GT(st.evictions, 0u);
  EXPECT_DOUBLE_EQ(cache.used_bits() + st.evicted_bits, accepted_bits);
}

TEST(EdgeCache, ValidationRejectsBadConfigAndInputs) {
  fleet::EdgeCacheConfig cfg;
  cfg.capacity_bits = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.origin_rate_scale = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.origin_rate_scale = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.max_object_fraction = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.hit_latency_s = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  fleet::EdgeCache cache(small_cache(1000.0));
  EXPECT_THROW(cache.admit(key(0), 0.0), std::invalid_argument);
  // Packed-key range guards.
  EXPECT_THROW((void)cache.contains(fleet::ObjectKey{1u << 20, 0, 0}),
               std::invalid_argument);
  EXPECT_THROW((void)cache.contains(fleet::ObjectKey{0, 1u << 8, 0}),
               std::invalid_argument);
}

TEST(EdgeCachePath, HitAndMissPlansMatchConfig) {
  const video::Video v = testutil::default_flat_video(10);
  fleet::EdgeCacheConfig cfg = small_cache(1e9);
  cfg.hit_latency_s = 0.004;
  cfg.miss_latency_s = 0.1;
  cfg.origin_rate_scale = 0.5;
  fleet::EdgeCache cache(cfg);
  fleet::EdgeCachePath path(cache, 0);

  const sim::FetchPlan miss = path.on_chunk_request(v, 1, 0, 800.0, 0.0);
  EXPECT_FALSE(miss.edge_hit);
  EXPECT_DOUBLE_EQ(miss.added_latency_s, 0.1);
  EXPECT_DOUBLE_EQ(miss.rate_scale, 0.5);

  path.on_chunk_delivered(v, 1, 0, 800.0, 1.0);
  const sim::FetchPlan hit = path.on_chunk_request(v, 1, 0, 800.0, 2.0);
  EXPECT_TRUE(hit.edge_hit);
  EXPECT_DOUBLE_EQ(hit.added_latency_s, 0.004);
  EXPECT_DOUBLE_EQ(hit.rate_scale, 1.0);
  // A different track of the same chunk is a different object.
  EXPECT_FALSE(path.on_chunk_request(v, 2, 0, 800.0, 3.0).edge_hit);
}

}  // namespace
}  // namespace vbr
