// Unit tests for the observability layer (src/obs): sinks, the metrics
// registry, canonical JSONL serialization, and the golden-trace pin.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>

#include "core/cava.h"
#include "net/bandwidth_estimator.h"
#include "net/trace_gen.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "sim/session.h"
#include "test_util.h"
#include "video/dataset.h"

namespace {

using namespace vbr;
using testutil::default_flat_video;
using testutil::flat_trace;

// ---------------------------------------------------------------- sinks --

obs::DecisionEvent sample_event(std::uint64_t seq) {
  obs::DecisionEvent ev;
  ev.session_id = 3;
  ev.seq = seq;
  ev.chunk_index = seq;
  ev.scheme = "CAVA";
  ev.size_mode = "exact";
  ev.track = 2;
  ev.buffer_before_s = 12.5;
  ev.size_bits = 1.6e6;
  return ev;
}

TEST(TraceSink, MemorySinkStoresEverythingWhenUnbounded) {
  obs::MemoryTraceSink sink;
  for (std::uint64_t i = 0; i < 100; ++i) {
    sink.on_decision(sample_event(i));
  }
  EXPECT_EQ(sink.events().size(), 100u);
  EXPECT_EQ(sink.total_received(), 100u);
  EXPECT_EQ(sink.events().front().seq, 0u);
  EXPECT_EQ(sink.events().back().seq, 99u);
}

TEST(TraceSink, MemorySinkRingEvictsOldest) {
  obs::MemoryTraceSink sink(10);
  for (std::uint64_t i = 0; i < 25; ++i) {
    sink.on_decision(sample_event(i));
  }
  EXPECT_EQ(sink.events().size(), 10u);
  EXPECT_EQ(sink.total_received(), 25u);
  EXPECT_EQ(sink.events().front().seq, 15u);  // 15..24 retained
  EXPECT_EQ(sink.events().back().seq, 24u);
}

TEST(TraceSink, NullSinkDiscards) {
  obs::NullTraceSink sink;
  sink.on_decision(sample_event(0));  // must not crash; nothing observable
}

TEST(TraceSink, JsonlLinesAreValidAndStable) {
  const std::string a = obs::to_jsonl(sample_event(7));
  const std::string b = obs::to_jsonl(sample_event(7));
  EXPECT_EQ(a, b);  // serialization is a pure function
  EXPECT_EQ(a.front(), '{');
  EXPECT_EQ(a.back(), '}');
  EXPECT_NE(a.find("\"session\":3"), std::string::npos);
  EXPECT_NE(a.find("\"scheme\":\"CAVA\""), std::string::npos);
  EXPECT_NE(a.find("\"buffer_s\":12.5"), std::string::npos);
  // No controller block for a plain event.
  EXPECT_EQ(a.find("\"cava\""), std::string::npos);
}

TEST(TraceSink, JsonlEscapesStrings) {
  obs::DecisionEvent ev = sample_event(0);
  ev.scheme = "weird\"name\\with\nnewline";
  const std::string line = obs::to_jsonl(ev);
  EXPECT_NE(line.find("weird\\\"name\\\\with\\nnewline"), std::string::npos);
}

TEST(TraceSink, JsonlControllerBlockSerialized) {
  obs::DecisionEvent ev = sample_event(0);
  obs::ControllerInternals c;
  c.target_buffer_s = 42.5;
  c.u = 0.75;
  c.complexity_class = 3;
  c.complex_chunk = true;
  ev.controller = c;
  const std::string line = obs::to_jsonl(ev);
  EXPECT_NE(line.find("\"cava\":{\"target_s\":42.5"), std::string::npos);
  EXPECT_NE(line.find("\"class\":3"), std::string::npos);
  EXPECT_NE(line.find("\"complex\":true"), std::string::npos);
}

TEST(TraceSink, JsonlFileSinkWritesAndCounts) {
  const std::string path = ::testing::TempDir() + "telemetry_sink_test.jsonl";
  {
    obs::JsonlTraceSink sink(path);
    sink.on_decision(sample_event(0));
    sink.on_decision(sample_event(1));
    sink.flush();
    EXPECT_EQ(sink.lines_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

TEST(TraceSink, UnopenablePathSurfacesErrno) {
  try {
    obs::JsonlTraceSink sink("/nonexistent-dir-xyz/trace.jsonl");
    FAIL() << "expected std::system_error";
  } catch (const std::system_error& e) {
    EXPECT_NE(e.code().value(), 0);  // errno captured (ENOENT here)
    EXPECT_NE(std::string(e.what()).find("/nonexistent-dir-xyz"),
              std::string::npos);
  }
}

// -------------------------------------------------------------- metrics --

TEST(Metrics, CounterAndGaugeBasics) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("bits");
  c.add(10.0);
  c.increment();
  EXPECT_DOUBLE_EQ(reg.counter("bits").value(), 11.0);
  obs::Gauge& g = reg.gauge("buffer");
  EXPECT_FALSE(g.written());
  g.set(7.5);
  EXPECT_TRUE(g.written());
  EXPECT_DOUBLE_EQ(reg.gauge("buffer").value(), 7.5);
}

TEST(Metrics, NameKindCollisionThrows) {
  obs::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", obs::download_seconds_bounds()),
               std::invalid_argument);
}

TEST(Metrics, HistogramBucketsAndStats) {
  obs::MetricsRegistry reg;
  const double bounds[] = {1.0, 2.0, 4.0};
  obs::Histogram& h = reg.histogram("h", bounds);
  h.record(0.5);   // bucket 0 (<= 1)
  h.record(1.5);   // bucket 1
  h.record(2.0);   // bucket 1 (<= 2)
  h.record(100.0); // overflow bucket
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{1, 2, 0, 1}));
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Metrics, HistogramRejectsBadBounds) {
  obs::MetricsRegistry reg;
  const double bad[] = {2.0, 1.0};
  EXPECT_THROW(reg.histogram("h", bad), std::invalid_argument);
  const double bounds[] = {1.0, 2.0};
  reg.histogram("ok", bounds);
  const double other[] = {1.0, 3.0};
  EXPECT_THROW(reg.histogram("ok", other), std::invalid_argument);
}

TEST(Metrics, MergeSumsCountersAndHistograms) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("c").add(1.0);
  b.counter("c").add(2.0);
  b.counter("only_b").add(5.0);
  const double bounds[] = {1.0};
  a.histogram("h", bounds).record(0.5);
  b.histogram("h", bounds).record(2.0);
  b.gauge("g").set(9.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.counter("c").value(), 3.0);
  EXPECT_DOUBLE_EQ(a.counter("only_b").value(), 5.0);
  EXPECT_EQ(a.histogram("h", bounds).count(), 2u);
  EXPECT_EQ(a.histogram("h", bounds).counts(),
            (std::vector<std::uint64_t>{1, 1}));
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 9.0);
}

TEST(Metrics, JsonIsDeterministicAndSorted) {
  obs::MetricsRegistry reg;
  reg.counter("zeta").add(1.0);
  reg.counter("alpha").add(2.0);
  std::ostringstream a;
  std::ostringstream b;
  reg.write_json(a);
  reg.write_json(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_LT(a.str().find("alpha"), a.str().find("zeta"));
}

TEST(Metrics, FingerprintDropsWallClockSpreadButKeepsCount) {
  obs::MetricsRegistry reg;
  obs::Histogram& wall = reg.histogram(
      "latency", obs::decision_latency_bounds(), /*wall_clock=*/true);
  wall.record(1e-6);
  wall.record(2e-4);
  const std::string fp = reg.deterministic_fingerprint();
  EXPECT_NE(fp.find("\"count\":2"), std::string::npos);
  EXPECT_EQ(fp.find("\"sum\""), std::string::npos);
  EXPECT_EQ(fp.find("\"counts\""), std::string::npos);
  // The full JSON keeps everything.
  std::ostringstream full;
  reg.write_json(full);
  EXPECT_NE(full.str().find("\"sum\""), std::string::npos);
  EXPECT_NE(full.str().find("\"counts\""), std::string::npos);
  EXPECT_NE(full.str().find("\"wall_clock\":true"), std::string::npos);
}

TEST(Metrics, ScopedTimerRecordsOnlyWhenBound) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("t", obs::decision_latency_bounds(),
                                    /*wall_clock=*/true);
  {
    obs::ScopedTimer timer(&h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
  {
    obs::ScopedTimer inert(nullptr);  // must be a no-op
  }
  EXPECT_EQ(h.count(), 1u);
}

// --------------------------------------------------------- golden trace --

// The pinned-run configuration: the canonical 'ED' video, one synthetic LTE
// trace, CAVA with the oracle size provider implied by a null provider.
// Everything here is seed-determined; any behavioural drift in the session
// loop, CAVA's controllers, the encoder, or the trace generator shifts
// these bytes and fails the comparison loudly.
std::string golden_run_jsonl() {
  const video::Video v =
      video::make_video("ED", video::Genre::kAnimation, video::Codec::kH264,
                        2.0, 2.0, 42, 120.0);
  const net::Trace t = net::generate_lte_trace(7);
  auto cava = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  sim::SessionConfig cfg;
  cfg.trace = &sink;
  (void)sim::run_session(v, t, *cava, est, cfg);
  return out.str();
}

TEST(GoldenTrace, RepeatedRunsAreByteIdentical) {
  EXPECT_EQ(golden_run_jsonl(), golden_run_jsonl());
}

TEST(GoldenTrace, HeadMatchesPinnedFile) {
  const std::string got = golden_run_jsonl();
  std::ifstream golden(std::string(VBR_TEST_DATA_DIR) +
                       "/golden/telemetry_head.jsonl");
  ASSERT_TRUE(golden.is_open())
      << "golden file missing: tests/data/golden/telemetry_head.jsonl";
  std::istringstream got_lines(got);
  std::string want_line;
  std::string got_line;
  std::size_t n = 0;
  while (std::getline(golden, want_line)) {
    ASSERT_TRUE(std::getline(got_lines, got_line))
        << "trace shorter than golden head at line " << n;
    EXPECT_EQ(got_line, want_line) << "divergence at golden line " << n;
    ++n;
  }
  EXPECT_GE(n, 10u) << "golden head suspiciously short";
}

// ------------------------------------------------- session integration --

TEST(SessionTelemetry, NoSinkMeansNoChangeToResults) {
  const video::Video v = default_flat_video(30);
  const net::Trace t = flat_trace(3e6);
  net::HarmonicMeanEstimator est1(5);
  net::HarmonicMeanEstimator est2(5);
  auto cava1 = core::make_cava_p123();
  auto cava2 = core::make_cava_p123();
  sim::SessionConfig plain;
  const sim::SessionResult a = sim::run_session(v, t, *cava1, est1, plain);
  obs::MemoryTraceSink sink;
  obs::MetricsRegistry reg;
  sim::SessionConfig traced;
  traced.trace = &sink;
  traced.metrics = &reg;
  const sim::SessionResult b = sim::run_session(v, t, *cava2, est2, traced);
  ASSERT_EQ(a.chunks.size(), b.chunks.size());
  for (std::size_t i = 0; i < a.chunks.size(); ++i) {
    EXPECT_EQ(a.chunks[i].track, b.chunks[i].track);
    EXPECT_DOUBLE_EQ(a.chunks[i].download_s, b.chunks[i].download_s);
  }
  EXPECT_DOUBLE_EQ(a.total_rebuffer_s, b.total_rebuffer_s);
  EXPECT_DOUBLE_EQ(a.total_bits, b.total_bits);
}

TEST(SessionTelemetry, CavaEventsCarryControllerInternals) {
  const video::Video v = default_flat_video(20);
  const net::Trace t = flat_trace(3e6);
  auto cava = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  obs::MemoryTraceSink sink;
  sim::SessionConfig cfg;
  cfg.trace = &sink;
  cfg.session_id = 17;
  (void)sim::run_session(v, t, *cava, est, cfg);
  ASSERT_EQ(sink.events().size(), 20u);
  for (const obs::DecisionEvent& ev : sink.events()) {
    EXPECT_EQ(ev.session_id, 17u);
    EXPECT_EQ(ev.scheme, "CAVA");
    EXPECT_EQ(ev.size_mode, "exact");
    ASSERT_TRUE(ev.controller.has_value());
    EXPECT_GT(ev.controller->target_buffer_s, 0.0);
    EXPECT_LT(ev.controller->complexity_class, 4u);
  }
}

TEST(SessionTelemetry, PlainSchemeEventsHaveNoControllerBlock) {
  const video::Video v = default_flat_video(10);
  const net::Trace t = flat_trace(3e6);
  abr::FixedTrackScheme scheme(1);
  net::HarmonicMeanEstimator est(5);
  obs::MemoryTraceSink sink;
  sim::SessionConfig cfg;
  cfg.trace = &sink;
  (void)sim::run_session(v, t, scheme, est, cfg);
  ASSERT_EQ(sink.events().size(), 10u);
  for (const obs::DecisionEvent& ev : sink.events()) {
    EXPECT_FALSE(ev.controller.has_value());
    EXPECT_EQ(ev.scheme, "fixed-1");
  }
}

TEST(SessionTelemetry, MetricsCountersMatchSessionOutcome) {
  const video::Video v = default_flat_video(25);
  const net::Trace t = flat_trace(3e6);
  abr::FixedTrackScheme scheme(2);
  net::HarmonicMeanEstimator est(5);
  obs::MetricsRegistry reg;
  sim::SessionConfig cfg;
  cfg.metrics = &reg;
  const sim::SessionResult r = sim::run_session(v, t, scheme, est, cfg);
  EXPECT_DOUBLE_EQ(reg.counter("chunks_total").value(), 25.0);
  EXPECT_DOUBLE_EQ(reg.counter("chunks_downloaded").value(), 25.0);
  EXPECT_DOUBLE_EQ(reg.counter("chunks_skipped").value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.counter("bits_downloaded").value(), r.total_bits);
  EXPECT_DOUBLE_EQ(reg.counter("rebuffer_seconds").value(),
                   r.total_rebuffer_s);
  EXPECT_EQ(
      reg.histogram("download_seconds", obs::download_seconds_bounds())
          .count(),
      25u);
  EXPECT_EQ(reg.histogram("decision_latency_seconds",
                          obs::decision_latency_bounds(), true)
                .count(),
            25u);
}

}  // namespace
