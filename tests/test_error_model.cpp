// Tests for the Section 6.7 noisy-oracle estimator.
#include "net/error_model.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using namespace vbr::net;

Trace flat_trace() { return Trace("flat", 1.0, std::vector<double>(60, 2e6)); }

TEST(NoisyOracle, ZeroErrorIsExact) {
  const Trace t = flat_trace();
  const NoisyOracleEstimator e(t, 0.0, 1);
  EXPECT_DOUBLE_EQ(e.estimate_bps(5.0), 2e6);
}

TEST(NoisyOracle, TracksTraceValue) {
  const Trace t("steps", 1.0, {1e6, 4e6});
  const NoisyOracleEstimator e(t, 0.0, 1);
  EXPECT_DOUBLE_EQ(e.estimate_bps(0.5), 1e6);
  EXPECT_DOUBLE_EQ(e.estimate_bps(1.5), 4e6);
}

TEST(NoisyOracle, ErrorBounded) {
  const Trace t = flat_trace();
  const NoisyOracleEstimator e(t, 0.5, 7);
  for (int i = 0; i < 1000; ++i) {
    const double est = e.estimate_bps(10.0);
    EXPECT_GE(est, 2e6 * 0.5 - 1.0);
    EXPECT_LE(est, 2e6 * 1.5 + 1.0);
  }
}

TEST(NoisyOracle, ErrorCentered) {
  const Trace t = flat_trace();
  const NoisyOracleEstimator e(t, 0.5, 7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += e.estimate_bps(10.0);
  }
  EXPECT_NEAR(sum / n, 2e6, 2e4);  // uniform around the truth
}

TEST(NoisyOracle, ResetReproducesSequence) {
  const Trace t = flat_trace();
  NoisyOracleEstimator e(t, 0.25, 42);
  std::vector<double> first;
  for (int i = 0; i < 10; ++i) {
    first.push_back(e.estimate_bps(1.0));
  }
  e.reset();
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(e.estimate_bps(1.0), first[static_cast<std::size_t>(i)]);
  }
}

TEST(NoisyOracle, SameSeedGivesIdenticalSequenceAcrossInstances) {
  const Trace t = flat_trace();
  NoisyOracleEstimator a(t, 0.25, 42);
  NoisyOracleEstimator b(t, 0.25, 42);
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(a.estimate_bps(1.0), b.estimate_bps(1.0));
  }
}

TEST(NoisyOracle, DifferentSeedsGiveDifferentSequences) {
  const Trace t = flat_trace();
  NoisyOracleEstimator a(t, 0.25, 42);
  NoisyOracleEstimator b(t, 0.25, 43);
  int differ = 0;
  for (int i = 0; i < 200; ++i) {
    differ += a.estimate_bps(1.0) != b.estimate_bps(1.0);
  }
  EXPECT_GT(differ, 0);
}

TEST(NoisyOracle, InvalidErrThrows) {
  const Trace t = flat_trace();
  EXPECT_THROW(NoisyOracleEstimator(t, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(NoisyOracleEstimator(t, 1.0, 1), std::invalid_argument);
}

TEST(NoisyOracle, ObservationsAreIgnored) {
  const Trace t = flat_trace();
  NoisyOracleEstimator e(t, 0.0, 1);
  e.on_chunk_downloaded(1e6, 10.0, 10.0);  // 0.1 Mbps observed
  EXPECT_DOUBLE_EQ(e.estimate_bps(10.0), 2e6);  // still the oracle value
}

TEST(NoisyOracle, NameIncludesError) {
  const Trace t = flat_trace();
  const NoisyOracleEstimator e(t, 0.25, 1);
  EXPECT_NE(e.name().find("0.25"), std::string::npos);
}

}  // namespace
