// Tests for segment abandonment (dash.js AbandonRequestsRule model).
#include <gtest/gtest.h>

#include "abr/scheme.h"
#include "net/bandwidth_estimator.h"
#include "sim/session.h"
#include "test_util.h"

namespace {

using namespace vbr;
using testutil::default_flat_video;
using testutil::flat_trace;

sim::SessionConfig abandon_config() {
  sim::SessionConfig cfg;
  cfg.startup_latency_s = 4.0;
  cfg.enable_abandonment = true;
  return cfg;
}

TEST(Abandonment, TriggersOnHopelessDownloads) {
  // Fixed top track (6.4 Mbps) over a 0.5 Mbps link: every post-startup
  // fetch is hopeless and must be abandoned down to track 0.
  const video::Video v = default_flat_video(20);
  const net::Trace t = flat_trace(5e5);
  abr::FixedTrackScheme scheme(5);
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r =
      sim::run_session(v, t, scheme, est, abandon_config());
  std::size_t abandoned = 0;
  for (const auto& c : r.chunks) {
    if (c.abandoned_higher) {
      ++abandoned;
      EXPECT_EQ(c.track, 0u);
      EXPECT_GT(c.wasted_bits, 0.0);
    }
  }
  EXPECT_GT(abandoned, 10u);
}

TEST(Abandonment, ReducesRebufferingForAggressiveScheme) {
  const video::Video v = default_flat_video(30);
  const net::Trace t = flat_trace(5e5);
  abr::FixedTrackScheme s1(5);
  abr::FixedTrackScheme s2(5);
  net::HarmonicMeanEstimator e1(5);
  net::HarmonicMeanEstimator e2(5);
  sim::SessionConfig plain;
  plain.startup_latency_s = 4.0;
  const auto without = sim::run_session(v, t, s1, e1, plain);
  const auto with = sim::run_session(v, t, s2, e2, abandon_config());
  EXPECT_LT(with.total_rebuffer_s, 0.5 * without.total_rebuffer_s);
}

TEST(Abandonment, NeverTriggersWhenComfortable) {
  const video::Video v = default_flat_video(20);
  const net::Trace t = flat_trace(20e6);
  abr::FixedTrackScheme scheme(5);
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r =
      sim::run_session(v, t, scheme, est, abandon_config());
  for (const auto& c : r.chunks) {
    EXPECT_FALSE(c.abandoned_higher);
    EXPECT_DOUBLE_EQ(c.wasted_bits, 0.0);
  }
}

TEST(Abandonment, LowestTrackNeverAbandoned) {
  const video::Video v = default_flat_video(10);
  const net::Trace t = flat_trace(5e4);  // brutally slow
  abr::FixedTrackScheme scheme(0);
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r =
      sim::run_session(v, t, scheme, est, abandon_config());
  for (const auto& c : r.chunks) {
    EXPECT_FALSE(c.abandoned_higher);
  }
}

TEST(Abandonment, WastedBitsCountTowardDataUsage) {
  const video::Video v = default_flat_video(20);
  const net::Trace t = flat_trace(5e5);
  abr::FixedTrackScheme s1(5);
  net::HarmonicMeanEstimator e1(5);
  const auto r = sim::run_session(v, t, s1, e1, abandon_config());
  double chunk_bits = 0.0;
  double wasted = 0.0;
  for (const auto& c : r.chunks) {
    chunk_bits += c.size_bits;
    wasted += c.wasted_bits;
  }
  EXPECT_GT(wasted, 0.0);
  EXPECT_NEAR(r.total_bits, chunk_bits + wasted, 1.0);
}

}  // namespace
