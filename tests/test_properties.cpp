// Property-based tests: invariants that must hold across randomized
// parameter sweeps (seeds, bandwidths, videos, schemes).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "abr/bba.h"
#include "abr/bola.h"
#include "abr/mpc.h"
#include "abr/panda_cq.h"
#include "abr/rba.h"
#include "core/cava.h"
#include "core/complexity_classifier.h"
#include "net/bandwidth_estimator.h"
#include "net/trace_gen.h"
#include "sim/session.h"
#include "video/dataset.h"

namespace {

using namespace vbr;

// ---------------------------------------------------------------------
// Session invariants for every scheme on randomized (video, trace) pairs.
// ---------------------------------------------------------------------

using SchemeMaker = std::unique_ptr<abr::AbrScheme> (*)();

std::unique_ptr<abr::AbrScheme> mk_cava() { return core::make_cava_p123(); }
std::unique_ptr<abr::AbrScheme> mk_mpc() {
  return std::make_unique<abr::Mpc>(abr::mpc_config());
}
std::unique_ptr<abr::AbrScheme> mk_rmpc() {
  return std::make_unique<abr::Mpc>(abr::robust_mpc_config());
}
std::unique_ptr<abr::AbrScheme> mk_panda() {
  return std::make_unique<abr::PandaCq>();
}
std::unique_ptr<abr::AbrScheme> mk_bola() {
  return std::make_unique<abr::Bola>();
}
std::unique_ptr<abr::AbrScheme> mk_bba() {
  return std::make_unique<abr::Bba>();
}
std::unique_ptr<abr::AbrScheme> mk_rba() {
  return std::make_unique<abr::Rba>();
}

class SessionInvariants
    : public ::testing::TestWithParam<std::tuple<SchemeMaker, int>> {};

TEST_P(SessionInvariants, HoldForRandomizedRuns) {
  const auto [maker, seed] = GetParam();
  const video::Video v = video::make_video(
      "prop", seed % 2 == 0 ? video::Genre::kAction : video::Genre::kSciFi,
      video::Codec::kH264, seed % 3 == 0 ? 5.0 : 2.0, 2.0,
      static_cast<std::uint64_t>(seed), 240.0);
  const net::Trace t =
      net::generate_lte_trace(static_cast<std::uint64_t>(1000 + seed));
  const auto scheme = maker();
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r = sim::run_session(v, t, *scheme, est);

  // Invariant 1: every chunk downloaded exactly once, in order.
  ASSERT_EQ(r.chunks.size(), v.num_chunks());
  double total_bits = 0.0;
  double prev_start = -1.0;
  for (std::size_t i = 0; i < r.chunks.size(); ++i) {
    const sim::ChunkRecord& c = r.chunks[i];
    EXPECT_EQ(c.index, i);
    // Invariant 2: chosen track valid; recorded size matches the manifest.
    ASSERT_LT(c.track, v.num_tracks());
    EXPECT_DOUBLE_EQ(c.size_bits, v.chunk_size_bits(c.track, i));
    // Invariant 3: time moves forward; downloads take positive time.
    EXPECT_GT(c.download_start_s, prev_start);
    prev_start = c.download_start_s;
    EXPECT_GT(c.download_s, 0.0);
    // Invariant 4: the buffer respects the cap.
    EXPECT_LE(c.buffer_after_s, sim::SessionConfig{}.max_buffer_s + 1e-9);
    EXPECT_GE(c.stall_s, 0.0);
    total_bits += c.size_bits;
  }
  // Invariant 5: accounting is consistent.
  EXPECT_NEAR(total_bits, r.total_bits, 1.0);
  EXPECT_GE(r.total_rebuffer_s, 0.0);
  EXPECT_GT(r.startup_delay_s, 0.0);
  EXPECT_GE(r.end_time_s, r.startup_delay_s);
  // Invariant 6: data downloaded is bounded by the ladder extremes.
  EXPECT_GE(total_bits, v.track(0).total_bits() - 1.0);
  EXPECT_LE(total_bits, v.track(v.num_tracks() - 1).total_bits() + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesBySeeds, SessionInvariants,
    ::testing::Combine(::testing::Values(mk_cava, mk_mpc, mk_rmpc, mk_panda,
                                         mk_bola, mk_bba, mk_rba),
                       ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------
// Monotonicity: more bandwidth never hurts (statistically).
// ---------------------------------------------------------------------

class BandwidthMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(BandwidthMonotonicity, CavaQualityRisesWithFlatBandwidth) {
  const video::Video v = video::make_video(
      "mono", video::Genre::kAnimation, video::Codec::kH264, 2.0, 2.0,
      static_cast<std::uint64_t>(GetParam()), 200.0);
  double prev_quality = -1.0;
  for (const double bw : {4e5, 8e5, 1.6e6, 3.2e6, 6.4e6}) {
    const net::Trace t("flat", 1.0, std::vector<double>(1500, bw));
    core::Cava cava;
    net::HarmonicMeanEstimator est(5);
    const sim::SessionResult r = sim::run_session(v, t, cava, est);
    double q = 0.0;
    for (const auto& c : r.chunks) {
      q += c.quality.vmaf_phone;
    }
    q /= static_cast<double>(r.chunks.size());
    EXPECT_GT(q, prev_quality - 0.5) << "bw " << bw;  // allow tiny noise
    prev_quality = q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandwidthMonotonicity,
                         ::testing::Values(11, 22, 33));

// ---------------------------------------------------------------------
// Classifier properties across the corpus.
// ---------------------------------------------------------------------

class ClassifierProperties : public ::testing::TestWithParam<std::size_t> {
 protected:
  static const std::vector<video::Video>& corpus() {
    static const std::vector<video::Video> c = video::make_full_corpus();
    return c;
  }
};

TEST_P(ClassifierProperties, ClassesCoverVideoAndAreStable) {
  const video::Video& v = corpus()[GetParam()];
  const core::ComplexityClassifier a(v);
  const core::ComplexityClassifier b(v);
  ASSERT_EQ(a.classes().size(), v.num_chunks());
  for (std::size_t i = 0; i < v.num_chunks(); ++i) {
    EXPECT_LT(a.class_of(i), a.num_classes());
    EXPECT_EQ(a.class_of(i), b.class_of(i));  // deterministic
  }
  // Q4 population is between 15% and 35% of chunks (quartile-based, with
  // ties allowed to shift the split).
  const double frac = static_cast<double>(a.complex_chunks().size()) /
                      static_cast<double>(v.num_chunks());
  EXPECT_GT(frac, 0.15);
  EXPECT_LT(frac, 0.35);
}

INSTANTIATE_TEST_SUITE_P(All16, ClassifierProperties,
                         ::testing::Range<std::size_t>(0, 16));

// ---------------------------------------------------------------------
// Quality-model property: within any corpus track, Q4 chunks score below
// Q1 chunks (the paper's Section 3.1.2 finding, as an invariant).
// ---------------------------------------------------------------------

class QualityGapProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QualityGapProperty, Q4BelowQ1OnMiddleTrack) {
  const video::Video v = video::make_video(
      "gap", video::Genre::kSciFi, video::Codec::kH264, 2.0, 2.0,
      GetParam(), 400.0);
  const core::ComplexityClassifier cls(v);
  const video::Track& mid = v.track(v.middle_track());
  double q1_sum = 0.0;
  double q4_sum = 0.0;
  std::size_t q1_n = 0;
  std::size_t q4_n = 0;
  for (std::size_t i = 0; i < v.num_chunks(); ++i) {
    if (cls.class_of(i) == 0) {
      q1_sum += mid.chunk(i).quality.vmaf_phone;
      ++q1_n;
    } else if (cls.class_of(i) == 3) {
      q4_sum += mid.chunk(i).quality.vmaf_phone;
      ++q4_n;
    }
  }
  ASSERT_GT(q1_n, 0u);
  ASSERT_GT(q4_n, 0u);
  EXPECT_GT(q1_sum / q1_n, q4_sum / q4_n + 3.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QualityGapProperty,
                         ::testing::Values(1, 7, 42, 99, 1234));

}  // namespace
