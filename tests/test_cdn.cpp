// Multi-tier CDN unit tests (fleet/cdn.h): config validation with named
// fields, the seeded fault/overload model (brownouts, outages, shedding),
// coalescing fetch-window semantics, and the CdnPath tier routing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/cdn.h"
#include "fleet/edge_cache.h"
#include "test_util.h"

namespace vbr {
namespace {

fleet::EdgeCacheConfig edge_cfg() {
  fleet::EdgeCacheConfig cfg;
  cfg.capacity_bits = 1e6;
  cfg.hit_latency_s = 0.005;
  cfg.miss_latency_s = 0.080;
  cfg.origin_rate_scale = 0.7;
  return cfg;
}

fleet::CdnConfig cdn_cfg() {
  fleet::CdnConfig cfg;
  cfg.enabled = true;
  cfg.backhaul_bps = 1000.0;  // slow on purpose: long coalescing windows
  cfg.regional.capacity_bits = 1e7;
  return cfg;
}

std::vector<double> ramp_arrivals(std::size_t n, double step) {
  std::vector<double> a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<double>(i) * step;
  }
  return a;
}

/// Expects cfg.validate() to throw naming `field`.
void expect_field_error(const fleet::CdnConfig& cfg,
                        const std::string& field) {
  try {
    cfg.validate();
    FAIL() << "expected invalid_argument naming " << field;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << e.what();
  }
}

TEST(CdnConfig, ValidationNamesTheOffendingField) {
  {
    fleet::CdnConfig c = cdn_cfg();
    c.backhaul_bps = 0.0;
    expect_field_error(c, "CdnConfig.backhaul_bps");
  }
  {
    fleet::CdnConfig c = cdn_cfg();
    c.regional.nodes = 0;
    expect_field_error(c, "CdnConfig.regional.nodes");
  }
  {
    fleet::CdnConfig c = cdn_cfg();
    c.regional.rate_scale = 1.5;
    expect_field_error(c, "CdnConfig.regional.rate_scale");
  }
  {
    fleet::CdnConfig c = cdn_cfg();
    c.regional.outages_per_node = 2;
    c.regional.outage_duration_s = 0.0;
    expect_field_error(c, "CdnConfig.regional.outage_duration_s");
  }
  {
    fleet::CdnConfig c = cdn_cfg();
    c.brownout.rate_scale = 0.0;
    expect_field_error(c, "CdnConfig.brownout.rate_scale");
  }
  {
    fleet::CdnConfig c = cdn_cfg();
    c.brownout.capacity_scale = 2.0;
    expect_field_error(c, "CdnConfig.brownout.capacity_scale");
  }
  {
    fleet::CdnConfig c = cdn_cfg();
    c.shed.threshold = 0.0;
    expect_field_error(c, "CdnConfig.shed.threshold");
  }
  {
    fleet::CdnConfig c = cdn_cfg();
    c.shed.max_shed_prob = 1.5;
    expect_field_error(c, "CdnConfig.shed.max_shed_prob");
  }
  {
    fleet::CdnConfig c = cdn_cfg();
    c.shed.penalty_rate_scale = 0.0;
    expect_field_error(c, "CdnConfig.shed.penalty_rate_scale");
  }
}

TEST(CdnModel, BrownoutWindowIsHalfOpen) {
  fleet::CdnConfig cfg = cdn_cfg();
  cfg.brownout.start_s = 100.0;
  cfg.brownout.duration_s = 50.0;
  const fleet::CdnModel m(cfg, edge_cfg(), 4, ramp_arrivals(10, 10.0));
  EXPECT_FALSE(m.brownout_at(99.9));
  EXPECT_TRUE(m.brownout_at(100.0));
  EXPECT_TRUE(m.brownout_at(149.9));
  EXPECT_FALSE(m.brownout_at(150.0));
}

TEST(CdnModel, ZeroDurationMeansNoBrownout) {
  const fleet::CdnModel m(cdn_cfg(), edge_cfg(), 4, ramp_arrivals(10, 10.0));
  EXPECT_FALSE(m.brownout_at(0.0));
  EXPECT_FALSE(m.brownout_at(1e9));
}

TEST(CdnModel, OutageScheduleIsSeededAndDeterministic) {
  fleet::CdnConfig cfg = cdn_cfg();
  cfg.regional.nodes = 3;
  cfg.regional.outages_per_node = 4;
  cfg.regional.outage_duration_s = 20.0;
  const std::vector<double> arrivals = ramp_arrivals(100, 5.0);
  const fleet::CdnModel a(cfg, edge_cfg(), 6, arrivals);
  const fleet::CdnModel b(cfg, edge_cfg(), 6, arrivals);
  for (std::size_t node = 0; node < 3; ++node) {
    ASSERT_EQ(a.outages(node).size(), 4u);
    EXPECT_EQ(a.outages(node), b.outages(node));
    // Windows are sorted and node_down agrees with them (individual
    // windows may overlap, so "up" is only checkable past all of them).
    double prev = -1.0;
    double max_end = 0.0;
    for (const auto& [start, end] : a.outages(node)) {
      EXPECT_GE(start, prev);
      EXPECT_DOUBLE_EQ(end - start, 20.0);
      EXPECT_TRUE(a.node_down(node, start));
      EXPECT_TRUE(a.node_down(node, (start + end) / 2.0));
      prev = start;
      max_end = std::max(max_end, end);
    }
    EXPECT_FALSE(a.node_down(node, max_end));
  }
  // A different seed moves the schedule.
  fleet::CdnConfig reseeded = cfg;
  reseeded.seed = cfg.seed + 1;
  const fleet::CdnModel c(reseeded, edge_cfg(), 6, arrivals);
  EXPECT_NE(a.outages(0), c.outages(0));
}

TEST(CdnModel, TitlesMapOntoNodesRoundRobin) {
  fleet::CdnConfig cfg = cdn_cfg();
  cfg.regional.nodes = 3;
  const fleet::CdnModel m(cfg, edge_cfg(), 7, ramp_arrivals(5, 1.0));
  EXPECT_EQ(m.node_of(0), 0u);
  EXPECT_EQ(m.node_of(4), 1u);
  EXPECT_EQ(m.node_of(5), 2u);
}

TEST(CdnModel, UtilizationTracksTheArrivalWindow) {
  fleet::CdnConfig cfg = cdn_cfg();
  cfg.shed.capacity_sessions = 10.0;
  cfg.shed.active_session_s = 10.0;
  // 100 arrivals, one per second.
  const fleet::CdnModel m(cfg, edge_cfg(), 4, ramp_arrivals(100, 1.0));
  // At t=50 the window [40, 50] holds the 11 arrivals 40..50 inclusive.
  EXPECT_DOUBLE_EQ(m.origin_utilization(50.0), 1.1);
  // At t=0 only the t=0 arrival is in [-10, 0].
  EXPECT_DOUBLE_EQ(m.origin_utilization(0.0), 0.1);
  // Brownout halves capacity, doubling utilization.
  fleet::CdnConfig hot = cfg;
  hot.brownout.start_s = 40.0;
  hot.brownout.duration_s = 20.0;
  hot.brownout.capacity_scale = 0.5;
  const fleet::CdnModel mh(hot, edge_cfg(), 4, ramp_arrivals(100, 1.0));
  EXPECT_DOUBLE_EQ(mh.origin_utilization(50.0), 2.2);
}

TEST(CdnModel, ShedProbabilityRampsAboveThresholdAndIsCapped) {
  fleet::CdnConfig cfg = cdn_cfg();
  cfg.shed.capacity_sessions = 10.0;
  cfg.shed.active_session_s = 10.0;
  cfg.shed.threshold = 0.7;
  cfg.shed.max_shed_prob = 0.5;
  const fleet::CdnModel m(cfg, edge_cfg(), 4, ramp_arrivals(400, 0.25));
  // 4 arrivals/s * 10 s window / 10 capacity = utilization 4.0.
  const double t = 50.0;
  ASSERT_GT(m.origin_utilization(t), 3.5);
  const double expected = (m.origin_utilization(t) - 0.7) /
                          m.origin_utilization(t);
  EXPECT_DOUBLE_EQ(m.shed_probability(t),
                   expected > 0.5 ? 0.5 : expected);
  // Below threshold: no shedding at all.
  fleet::CdnConfig cold = cfg;
  cold.shed.capacity_sessions = 1000.0;
  const fleet::CdnModel mc(cold, edge_cfg(), 4, ramp_arrivals(400, 0.25));
  EXPECT_DOUBLE_EQ(mc.shed_probability(t), 0.0);
  // Shedding off entirely.
  fleet::CdnConfig off = cfg;
  off.shed.capacity_sessions = 0.0;
  const fleet::CdnModel mo(off, edge_cfg(), 4, ramp_arrivals(400, 0.25));
  EXPECT_DOUBLE_EQ(mo.origin_utilization(t), 0.0);
  EXPECT_DOUBLE_EQ(mo.shed_probability(t), 0.0);
}

TEST(CdnModel, ShedBackoffGrowsExponentiallyToTheCap) {
  sim::RetryPolicy policy;
  policy.backoff_base_s = 0.5;
  policy.backoff_factor = 2.0;
  policy.backoff_max_s = 3.0;
  EXPECT_DOUBLE_EQ(fleet::shed_backoff_s(policy, 0), 0.5);
  EXPECT_DOUBLE_EQ(fleet::shed_backoff_s(policy, 1), 1.0);
  EXPECT_DOUBLE_EQ(fleet::shed_backoff_s(policy, 2), 2.0);
  EXPECT_DOUBLE_EQ(fleet::shed_backoff_s(policy, 3), 3.0);
  EXPECT_DOUBLE_EQ(fleet::shed_backoff_s(policy, 50), 3.0);  // capped
}

TEST(CdnModel, RegionalSliceSplitsCapacityPerTitle) {
  fleet::CdnConfig cfg = cdn_cfg();
  cfg.regional.capacity_bits = 8e6;
  cfg.regional.hit_latency_s = 0.02;
  cfg.regional.rate_scale = 0.9;
  const fleet::CdnModel m(cfg, edge_cfg(), 4, ramp_arrivals(10, 1.0));
  EXPECT_DOUBLE_EQ(m.regional_shard_config().capacity_bits, 2e6);
  EXPECT_DOUBLE_EQ(m.regional_shard_config().hit_latency_s, 0.02);
  EXPECT_DOUBLE_EQ(m.regional_shard_config().origin_rate_scale, 0.9);
}

TEST(CdnModel, RejectsUnsortedArrivals) {
  EXPECT_THROW(fleet::CdnModel(cdn_cfg(), edge_cfg(), 4, {3.0, 1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(fleet::CdnModel(cdn_cfg(), edge_cfg(), 0, {1.0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CdnPath tier routing.

/// Harness: one title's path with a hand-driven clock. The edge cache is
/// tiny with a strict size gate so 600-bit objects are never admitted at
/// the edge — every request goes upstream, which makes coalescing windows
/// and regional behaviour directly observable.
struct PathHarness {
  explicit PathHarness(fleet::CdnConfig cfg,
                       double edge_capacity_bits = 1000.0)
      : video(testutil::default_flat_video(10)) {
    fleet::EdgeCacheConfig ec = edge_cfg();
    ec.capacity_bits = edge_capacity_bits;
    ec.max_object_fraction = 0.5;
    model = std::make_unique<fleet::CdnModel>(cfg, ec, 4,
                                              ramp_arrivals(100, 1.0));
    edge = std::make_unique<fleet::EdgeCache>(ec);
    path = std::make_unique<fleet::CdnPath>(*model, *edge, state, 0);
  }

  sim::FetchPlan request(double arrival_s, std::size_t chunk,
                         double size_bits = 600.0, double now_s = 0.0) {
    path->begin_session(arrival_s);
    return path->on_chunk_request(video, 0, chunk, size_bits, now_s);
  }

  void deliver(double arrival_s, std::size_t chunk, double size_bits = 600.0,
               double now_s = 0.0) {
    path->begin_session(arrival_s);
    path->on_chunk_delivered(video, 0, chunk, size_bits, now_s);
  }

  video::Video video;
  std::unique_ptr<fleet::CdnModel> model;
  std::unique_ptr<fleet::EdgeCache> edge;
  fleet::TitleCdnState state;
  std::unique_ptr<fleet::CdnPath> path;
};

TEST(CdnPath, RoutesMissesToOriginThenServesEdgeHits) {
  fleet::CdnConfig cfg = cdn_cfg();
  PathHarness h(cfg, /*edge_capacity_bits=*/1e6);  // roomy edge: admits
  const sim::FetchPlan miss = h.request(0.0, 0);
  EXPECT_EQ(miss.tier, 2u);
  EXPECT_FALSE(miss.edge_hit);
  EXPECT_DOUBLE_EQ(miss.added_latency_s, 0.080);
  EXPECT_DOUBLE_EQ(miss.rate_scale, 0.7);
  h.deliver(0.0, 0);
  const sim::FetchPlan hit = h.request(0.0, 0);
  EXPECT_EQ(hit.tier, 0u);
  EXPECT_TRUE(hit.edge_hit);
  EXPECT_DOUBLE_EQ(hit.added_latency_s, 0.005);
  EXPECT_EQ(h.state.stats.client_requests, 2u);
  EXPECT_EQ(h.state.stats.edge_hits, 1u);
  EXPECT_EQ(h.state.stats.origin_fetches, 1u);
}

TEST(CdnPath, ServesFromRegionalWhenEdgeCannotHold) {
  fleet::CdnConfig cfg = cdn_cfg();
  cfg.regional.hit_latency_s = 0.02;
  cfg.regional.rate_scale = 0.9;
  PathHarness h(cfg);  // 1000-bit edge rejects 600-bit objects (size gate)
  const sim::FetchPlan first = h.request(0.0, 0);
  EXPECT_EQ(first.tier, 2u);
  h.deliver(0.0, 0);  // admitted regionally, rejected at the edge
  EXPECT_EQ(h.edge->stats().rejected, 1u);
  // Outside the coalescing window the rerequest lands on the regional tier.
  const sim::FetchPlan second = h.request(50.0, 0);
  EXPECT_EQ(second.tier, 1u);
  EXPECT_FALSE(second.edge_hit);
  EXPECT_DOUBLE_EQ(second.added_latency_s, 0.02);
  EXPECT_DOUBLE_EQ(second.rate_scale, 0.9);
  EXPECT_EQ(h.state.stats.regional_hits, 1u);
}

TEST(CdnPath, CoalescesConcurrentMissesIntoOneOriginFetch) {
  // K requests for the same object inside its fetch window must produce
  // exactly one origin fetch. backhaul 1000 bps * 600 bits = 0.6 s window.
  PathHarness h(cdn_cfg());
  const sim::FetchPlan first = h.request(0.0, 0);
  EXPECT_EQ(first.tier, 2u);
  h.deliver(0.0, 0);
  constexpr int kConcurrent = 5;
  for (int i = 1; i <= kConcurrent; ++i) {
    const double arrival = 0.1 * i;  // all inside [0, ~0.68)
    const sim::FetchPlan p = h.request(arrival, 0);
    EXPECT_TRUE(p.coalesced) << "request " << i;
    EXPECT_EQ(p.tier, 2u);  // the shared fetch came from the origin
    EXPECT_DOUBLE_EQ(p.rate_scale, 1.0);
    // The joiner waits out the remaining window plus the edge hand-off.
    EXPECT_GT(p.added_latency_s, 0.0);
    h.deliver(arrival, 0);
  }
  EXPECT_EQ(h.state.stats.origin_fetches, 1u);
  EXPECT_EQ(h.state.stats.coalesced,
            static_cast<std::uint64_t>(kConcurrent));
  // Past the window the object must be re-fetched (regional this time:
  // delivery admitted it there).
  const sim::FetchPlan late = h.request(10.0, 0);
  EXPECT_FALSE(late.coalesced);
  EXPECT_EQ(late.tier, 1u);
}

TEST(CdnPath, CoalescingCanBeDisabled) {
  fleet::CdnConfig cfg = cdn_cfg();
  cfg.coalesce = false;
  cfg.regional.capacity_bits = 400.0;  // too small: regional rejects too
  PathHarness h(cfg);
  (void)h.request(0.0, 0);
  h.deliver(0.0, 0);
  const sim::FetchPlan p = h.request(0.1, 0);
  EXPECT_FALSE(p.coalesced);
  EXPECT_EQ(h.state.stats.origin_fetches, 2u);
}

TEST(CdnPath, FailsOverPastADownedNodeWithLatencyPenalty) {
  fleet::CdnConfig cfg = cdn_cfg();
  cfg.regional.nodes = 1;
  cfg.regional.outages_per_node = 1;
  cfg.regional.outage_duration_s = 30.0;
  cfg.regional.failover_latency_s = 0.05;
  PathHarness h(cfg);
  const auto& window = h.model->outages(0)[0];
  const double down_t = (window.first + window.second) / 2.0;
  ASSERT_TRUE(h.model->node_down(0, down_t));

  // Fetch + deliver while the node is down: origin with failover latency,
  // and the object must NOT be absorbed by the downed regional node.
  const sim::FetchPlan p = h.request(down_t, 0);
  EXPECT_EQ(p.tier, 2u);
  EXPECT_DOUBLE_EQ(p.added_latency_s, 0.080 + 0.05);
  EXPECT_EQ(h.state.stats.failovers, 1u);
  h.deliver(down_t, 0);
  EXPECT_EQ(h.state.regional->stats().lookups, 0u);

  // After recovery the same object misses regionally (it was never
  // admitted) and this time transits the healthy node.
  const double up_t = window.second + 100.0;
  const sim::FetchPlan q = h.request(up_t, 0);
  EXPECT_EQ(q.tier, 2u);
  EXPECT_DOUBLE_EQ(q.added_latency_s, 0.080);
  h.deliver(up_t, 0);
  const sim::FetchPlan r = h.request(up_t + 50.0, 0);
  EXPECT_EQ(r.tier, 1u);
}

TEST(CdnPath, BrownoutDegradesOriginFetches) {
  fleet::CdnConfig cfg = cdn_cfg();
  cfg.brownout.start_s = 10.0;
  cfg.brownout.duration_s = 10.0;
  cfg.brownout.rate_scale = 0.5;
  cfg.brownout.extra_latency_s = 0.2;
  PathHarness h(cfg);
  const sim::FetchPlan cool = h.request(0.0, 0);
  EXPECT_DOUBLE_EQ(cool.added_latency_s, 0.080);
  EXPECT_DOUBLE_EQ(cool.rate_scale, 0.7);
  const sim::FetchPlan hot = h.request(15.0, 1);
  EXPECT_DOUBLE_EQ(hot.added_latency_s, 0.080 + 0.2);
  EXPECT_DOUBLE_EQ(hot.rate_scale, 0.7 * 0.5);
  EXPECT_EQ(h.state.stats.brownout_fetches, 1u);
}

TEST(CdnPath, ShedsUnderOverloadWithEscalatingBackoff) {
  fleet::CdnConfig cfg = cdn_cfg();
  cfg.shed.capacity_sessions = 1.0;  // absurdly small: always overloaded
  cfg.shed.active_session_s = 100.0;
  cfg.shed.threshold = 0.1;
  cfg.shed.max_shed_prob = 1.0;
  cfg.shed.penalty_rate_scale = 0.4;
  cfg.retry.backoff_base_s = 0.5;
  cfg.retry.backoff_factor = 2.0;
  cfg.retry.backoff_max_s = 8.0;
  cfg.regional.capacity_bits = 400.0;  // regional rejects: all origin
  cfg.coalesce = false;
  PathHarness h(cfg);
  const double t = 90.0;
  ASSERT_GT(h.model->shed_probability(t), 0.95);
  std::uint64_t sheds = 0;
  double max_penalty = 0.0;
  for (std::size_t i = 0; i < 12; ++i) {
    const sim::FetchPlan p = h.request(t, i);
    if (p.shed) {
      ++sheds;
      EXPECT_DOUBLE_EQ(p.rate_scale, 0.7 * 0.4);
      max_penalty = std::max(max_penalty, p.added_latency_s - 0.080);
    }
    h.deliver(t, i);
  }
  EXPECT_EQ(sheds, h.state.stats.shed);
  EXPECT_GE(sheds, 8u);  // shed probability ~= 0.9-cap region
  // Consecutive sheds climbed the exponential ladder past the base delay.
  EXPECT_GT(max_penalty, 0.5);
  EXPECT_LE(max_penalty, 8.0);
  EXPECT_GT(h.state.stats.shed_wait_s, 0.0);
}

}  // namespace
}  // namespace vbr
