// Tests for the synthetic capped-VBR encoder.
#include "video/encoder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "metrics/stats.h"

namespace {

using namespace vbr::video;

std::vector<SceneChunk> scene(std::size_t n = 300, std::uint64_t seed = 1) {
  return generate_scene_trace(Genre::kAnimation, n, seed);
}

EncoderConfig config_480p() {
  EncoderConfig cfg;
  cfg.resolution = kLadder480p;
  return cfg;
}

TEST(Encoder, Deterministic) {
  const auto sc = scene();
  const Track a = encode_track(sc, 3, config_480p());
  const Track b = encode_track(sc, 3, config_480p());
  for (std::size_t i = 0; i < a.num_chunks(); ++i) {
    EXPECT_DOUBLE_EQ(a.chunk(i).size_bits, b.chunk(i).size_bits);
    EXPECT_DOUBLE_EQ(a.chunk(i).quality.vmaf_tv, b.chunk(i).quality.vmaf_tv);
  }
}

TEST(Encoder, EmptySceneThrows) {
  EXPECT_THROW((void)encode_track({}, 0, config_480p()),
               std::invalid_argument);
}

TEST(Encoder, BadConfigThrows) {
  EncoderConfig cfg = config_480p();
  cfg.chunk_duration_s = 0.0;
  EXPECT_THROW((void)encode_track(scene(10), 0, cfg), std::invalid_argument);
  cfg = config_480p();
  cfg.fps = -1.0;
  EXPECT_THROW((void)encode_track(scene(10), 0, cfg), std::invalid_argument);
  cfg = config_480p();
  cfg.resolution = Resolution{0, 0};
  EXPECT_THROW((void)encode_track(scene(10), 0, cfg), std::invalid_argument);
}

TEST(Encoder, RealisticAverageBitrates) {
  // The 480p rung of a 2x-capped H.264 encode should land in the high
  // hundreds of kbps to ~1.5 Mbps, 1080p in the 2.5-5.5 Mbps range.
  const auto sc = scene();
  EncoderConfig cfg = config_480p();
  const Track t480 = encode_track(sc, 3, cfg);
  EXPECT_GT(t480.average_bitrate_bps(), 5e5);
  EXPECT_LT(t480.average_bitrate_bps(), 1.5e6);
  cfg.resolution = kLadder1080p;
  const Track t1080 = encode_track(sc, 5, cfg);
  EXPECT_GT(t1080.average_bitrate_bps(), 2.5e6);
  EXPECT_LT(t1080.average_bitrate_bps(), 5.5e6);
}

TEST(Encoder, CapRoughlyEnforced) {
  // Peak/avg must exceed 1 and stay near the cap (slight overshoot allowed,
  // as the paper observes for -maxrate/-bufsize encodes).
  const Track t = encode_track(scene(), 3, config_480p());
  EXPECT_GT(t.peak_to_average(), 1.2);
  EXPECT_LT(t.peak_to_average(), 2.0 * 1.25);
}

TEST(Encoder, LargerCapAllowsMorePeak) {
  const auto sc = scene();
  EncoderConfig cfg2 = config_480p();
  EncoderConfig cfg4 = config_480p();
  cfg4.cap_factor = 4.0;
  const Track t2 = encode_track(sc, 3, cfg2);
  const Track t4 = encode_track(sc, 3, cfg4);
  EXPECT_GT(t4.peak_to_average(), t2.peak_to_average());
}

TEST(Encoder, BitrateVariabilityInPaperRange) {
  // Section 2: coefficient of variation of per-track bitrate 0.3-0.6 for
  // mid/upper rungs; the lowest rungs are less variable.
  const auto sc = scene();
  EncoderConfig cfg = config_480p();
  const Track t480 = encode_track(sc, 3, cfg);
  const double cov480 =
      vbr::stats::coefficient_of_variation(t480.chunk_bitrates_bps());
  EXPECT_GT(cov480, 0.3);
  EXPECT_LT(cov480, 0.7);

  cfg.resolution = kLadder144p;
  const Track t144 = encode_track(sc, 0, cfg);
  const double cov144 =
      vbr::stats::coefficient_of_variation(t144.chunk_bitrates_bps());
  EXPECT_LT(cov144, cov480);
}

TEST(Encoder, H265UsesFewerBitsSameQuality) {
  const auto sc = scene();
  EncoderConfig h264 = config_480p();
  EncoderConfig h265 = config_480p();
  h265.codec = Codec::kH265;
  const Track a = encode_track(sc, 3, h264);
  const Track b = encode_track(sc, 3, h265);
  EXPECT_NEAR(b.average_bitrate_bps() / a.average_bitrate_bps(),
              codec_efficiency(Codec::kH265), 0.01);
  // Quality at the same rung is unchanged (same allocation/need ratio).
  double diff = 0.0;
  for (std::size_t i = 0; i < a.num_chunks(); ++i) {
    diff += std::abs(a.chunk(i).quality.vmaf_phone -
                     b.chunk(i).quality.vmaf_phone);
  }
  EXPECT_LT(diff / static_cast<double>(a.num_chunks()), 1.0);
}

TEST(Encoder, HigherCrfMeansFewerBits) {
  const auto sc = scene();
  EncoderConfig crf25 = config_480p();
  EncoderConfig crf31 = config_480p();
  crf31.crf = 31.0;
  const Track a = encode_track(sc, 3, crf25);
  const Track b = encode_track(sc, 3, crf31);
  // +6 CRF halves the budget.
  EXPECT_NEAR(b.average_bitrate_bps() / a.average_bitrate_bps(), 0.5, 0.01);
  EXPECT_LT(b.chunk(0).quality.vmaf_phone + 1e-9,
            a.chunk(0).quality.vmaf_phone + 5.0);
}

TEST(Encoder, ComplexChunksGetMoreBits) {
  const auto sc = scene();
  const Track t = encode_track(sc, 3, config_480p());
  // Correlation between complexity and chunk size should be strongly
  // positive (VBR principle).
  std::vector<double> c;
  std::vector<double> bits;
  for (std::size_t i = 0; i < sc.size(); ++i) {
    c.push_back(sc[i].complexity);
    bits.push_back(t.chunk(i).size_bits);
  }
  EXPECT_GT(vbr::stats::pearson(c, bits), 0.9);
}

TEST(Encoder, ComplexChunksHaveLowerQuality) {
  // The paper's key finding: despite more bits, complex chunks score lower.
  const auto sc = scene();
  const Track t = encode_track(sc, 3, config_480p());
  std::vector<double> simple_q;
  std::vector<double> complex_q;
  for (std::size_t i = 0; i < sc.size(); ++i) {
    if (sc[i].complexity < 0.3) {
      simple_q.push_back(t.chunk(i).quality.vmaf_phone);
    } else if (sc[i].complexity > 0.7) {
      complex_q.push_back(t.chunk(i).quality.vmaf_phone);
    }
  }
  ASSERT_FALSE(simple_q.empty());
  ASSERT_FALSE(complex_q.empty());
  EXPECT_GT(vbr::stats::median(simple_q), vbr::stats::median(complex_q) + 5.0);
}

TEST(Encoder, RelativeAllocationMeanIsOne) {
  const auto sc = scene();
  const auto rel = relative_allocation(sc, 1e6, 2.0, {});
  EXPECT_NEAR(vbr::stats::mean(rel), 1.0, 1e-9);
}

TEST(Encoder, RelativeAllocationBadInputsThrow) {
  EXPECT_THROW((void)relative_allocation({}, 1e6, 2.0, {}),
               std::invalid_argument);
  EXPECT_THROW((void)relative_allocation(scene(10), 1e6, 1.0, {}),
               std::invalid_argument);
}

// Parameterized: every ladder rung encodes successfully with sane stats.
class LadderEncodeTest : public ::testing::TestWithParam<int> {};

TEST_P(LadderEncodeTest, RungProducesValidTrack) {
  const int rung = GetParam();
  const auto sc = scene(120, 3);
  EncoderConfig cfg;
  cfg.resolution = standard_ladder()[static_cast<std::size_t>(rung)];
  const Track t = encode_track(sc, rung, cfg);
  EXPECT_EQ(t.num_chunks(), 120u);
  EXPECT_GT(t.average_bitrate_bps(), 0.0);
  EXPECT_GT(t.peak_to_average(), 1.0);
  for (const Chunk& c : t.chunks()) {
    EXPECT_GT(c.size_bits, 0.0);
    EXPECT_GE(c.quality.vmaf_phone, 0.0);
    EXPECT_LE(c.quality.vmaf_phone, 100.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllRungs, LadderEncodeTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

}  // namespace
