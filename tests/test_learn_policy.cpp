// Deterministic policy file format (learn/policy.h): canonical
// serialize/parse identity for both backends, the tabular fallback chain,
// and the robustness matrix — truncation, checksum damage, wrong magic,
// unsupported format version, NaN weights, out-of-range tracks, count
// mismatches, trailing garbage — each rejected with a field-named
// PolicyError and no undefined behaviour (this suite runs under
// ASan/UBSan in CI).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "learn/policy.h"
#include "learn/trainer.h"
#include "obs/jsonl_io.h"

namespace vbr {
namespace {

learn::FeatureConfig tiny_config() {
  learn::FeatureConfig cfg;
  cfg.num_tracks = 3;
  cfg.buffer_bins = 4;
  cfg.margin_bins = 2;
  cfg.deficit_bins = 2;
  return cfg;
}

/// A fully populated tabular policy with a deterministic entry pattern
/// including unseen holes.
learn::Policy tiny_tabular() {
  const learn::FeatureConfig cfg = tiny_config();
  learn::Policy p;
  p.kind = learn::PolicyKind::kTabular;
  p.id = "test-policy_v1.0";
  p.version = 3;
  p.seed = 42;
  p.features = cfg;
  p.tabular.table.resize(cfg.num_states());
  for (std::size_t s = 0; s < p.tabular.table.size(); ++s) {
    p.tabular.table[s] = s % 5 == 0 ? learn::kUnseen
                                    : static_cast<std::uint16_t>(s % 3);
  }
  p.tabular.coarse.resize(cfg.num_coarse_states());
  for (std::size_t c = 0; c < p.tabular.coarse.size(); ++c) {
    p.tabular.coarse[c] = c % 7 == 0 ? learn::kUnseen
                                     : static_cast<std::uint16_t>(c % 3);
  }
  p.tabular.default_track = 1;
  return p;
}

learn::Policy tiny_mlp() {
  return learn::make_random_mlp(tiny_config(), 8, 5, "test-mlp", 2);
}

void expect_policy_error(const std::string& text, const std::string& needle) {
  try {
    (void)learn::parse_policy(text);
    FAIL() << "expected PolicyError mentioning '" << needle << "'";
  } catch (const learn::PolicyError& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.rfind("PolicyFile.", 0), 0u) << "not field-named: " << msg;
    EXPECT_NE(msg.find(needle), std::string::npos)
        << "actual message: " << msg;
  }
}

/// Re-seals a mutated policy body with a correct trailer, so the mutation
/// under test is reached instead of tripping the checksum first.
std::string reseal(std::string body) {
  const std::size_t end_line = body.rfind("end ");
  body.resize(end_line);
  char trailer[16];
  std::snprintf(trailer, sizeof(trailer), "end %08x",
                obs::line_checksum(body));
  body += trailer;
  body += '\n';
  return body;
}

TEST(LearnPolicy, TabularRoundTripsByteExactly) {
  const learn::Policy p = tiny_tabular();
  const std::string text = learn::serialize_policy(p);
  EXPECT_EQ(text.rfind("VBRPOLICY 1\n", 0), 0u);
  const learn::Policy back = learn::parse_policy(text);
  EXPECT_EQ(back.kind, learn::PolicyKind::kTabular);
  EXPECT_EQ(back.id, p.id);
  EXPECT_EQ(back.version, p.version);
  EXPECT_EQ(back.seed, p.seed);
  EXPECT_EQ(back.features, p.features);
  EXPECT_EQ(back.tabular.table, p.tabular.table);
  EXPECT_EQ(back.tabular.coarse, p.tabular.coarse);
  EXPECT_EQ(back.tabular.default_track, p.tabular.default_track);
  // Canonical form: serialize(parse(s)) == s byte-for-byte.
  EXPECT_EQ(learn::serialize_policy(back), text);
}

TEST(LearnPolicy, MlpRoundTripsByteExactly) {
  const learn::Policy p = tiny_mlp();
  const std::string text = learn::serialize_policy(p);
  const learn::Policy back = learn::parse_policy(text);
  EXPECT_EQ(back.kind, learn::PolicyKind::kMlp);
  EXPECT_EQ(back.mlp.in, p.mlp.in);
  EXPECT_EQ(back.mlp.hidden, p.mlp.hidden);
  EXPECT_EQ(back.mlp.out, p.mlp.out);
  EXPECT_EQ(back.mlp.w1, p.mlp.w1);  // exact doubles via shortest round-trip
  EXPECT_EQ(back.mlp.b1, p.mlp.b1);
  EXPECT_EQ(back.mlp.w2, p.mlp.w2);
  EXPECT_EQ(back.mlp.b2, p.mlp.b2);
  EXPECT_EQ(learn::serialize_policy(back), text);
}

TEST(LearnPolicy, TabularSelectFallsBackExactCoarseDefault) {
  learn::Policy p = tiny_tabular();
  const learn::FeatureConfig cfg = p.features;
  std::vector<double> scratch;
  const std::vector<double> no_features;

  // Pick a state whose exact entry is populated.
  std::uint32_t seen = 0;
  while (p.tabular.table[seen] == learn::kUnseen) {
    ++seen;
  }
  EXPECT_EQ(learn::policy_select(p, seen, no_features, scratch),
            p.tabular.table[seen]);

  // Hole in the exact table -> the coarse projection answers.
  std::uint32_t hole = 0;
  while (p.tabular.table[hole] != learn::kUnseen ||
         p.tabular.coarse[learn::coarse_from_state(hole, cfg)] ==
             learn::kUnseen) {
    ++hole;
  }
  EXPECT_EQ(learn::policy_select(p, hole, no_features, scratch),
            p.tabular.coarse[learn::coarse_from_state(hole, cfg)]);

  // Hole in both -> the global default.
  std::uint32_t deep = 0;
  while (p.tabular.table[deep] != learn::kUnseen ||
         p.tabular.coarse[learn::coarse_from_state(deep, cfg)] !=
             learn::kUnseen) {
    ++deep;
  }
  EXPECT_EQ(learn::policy_select(p, deep, no_features, scratch),
            p.tabular.default_track);
}

TEST(LearnPolicy, RejectsWrongMagicAndVersion) {
  std::string text = learn::serialize_policy(tiny_tabular());
  expect_policy_error("NOTAPOLICY 1\n" + text.substr(text.find('\n') + 1),
                      "magic");
  // An unsupported format version is named before any payload is touched.
  text.replace(0, text.find('\n'), "VBRPOLICY 2");
  expect_policy_error(text, "unsupported format version 2");
}

TEST(LearnPolicy, RejectsTruncation) {
  const std::string text = learn::serialize_policy(tiny_tabular());
  // Cut at several depths: inside the header, inside the table, just
  // before the trailer. All must fail loudly, never crash or accept.
  for (const std::size_t keep :
       {std::size_t{5}, text.size() / 4, text.size() / 2, text.size() - 3}) {
    expect_policy_error(text.substr(0, keep), "truncated");
  }
}

TEST(LearnPolicy, RejectsChecksumDamage) {
  const std::string text = learn::serialize_policy(tiny_tabular());
  // Flip one digit inside a table row (still parseable) -> the trailer
  // mismatch is detected and reported with both values.
  const std::size_t pos = text.find("\ntable 0 ") + 9;
  std::string damaged = text;
  damaged[pos] = damaged[pos] == '0' ? '1' : '0';
  expect_policy_error(damaged, "checksum");

  // Garbage after the trailer is its own named error.
  expect_policy_error(text + "junk\n", "trailing data after the 'end' line");
}

TEST(LearnPolicy, RejectsNaNWeightsByFieldName) {
  // std::from_chars happily parses "nan", so the parser accepts the token;
  // structural validation must still refuse to serve non-finite weights.
  const std::string text = learn::serialize_policy(tiny_mlp());
  const std::size_t b1 = text.find("\nb1 ");
  ASSERT_NE(b1, std::string::npos);
  const std::size_t val_start = b1 + 4;
  const std::size_t val_end = text.find(' ', val_start);
  std::string mutated = text;
  mutated.replace(val_start, val_end - val_start, "nan");
  expect_policy_error(reseal(std::move(mutated)), "b1");

  std::string inf_mutated = text;
  const std::size_t w1 = inf_mutated.find("\nw1 0 ");
  ASSERT_NE(w1, std::string::npos);
  const std::size_t w_start = w1 + 6;
  inf_mutated.replace(w_start, inf_mutated.find(' ', w_start) - w_start,
                      "inf");
  expect_policy_error(reseal(std::move(inf_mutated)), "w1");
}

TEST(LearnPolicy, RejectsOutOfRangeTracks) {
  // num_tracks = 3, so entry "7" is a ladder the policy cannot serve.
  const std::string text = learn::serialize_policy(tiny_tabular());
  const std::size_t row = text.find("\ntable 0 ");
  ASSERT_NE(row, std::string::npos);
  std::string mutated = text;
  mutated.replace(row + 9, 1, "7");
  expect_policy_error(reseal(std::move(mutated)), "track out of range");
}

TEST(LearnPolicy, RejectsEntryCountMismatch) {
  const std::string text = learn::serialize_policy(tiny_tabular());
  // The tabular header must agree with the features line it follows.
  const std::size_t states = text.find("tabular states=");
  ASSERT_NE(states, std::string::npos);
  std::string mutated = text;
  mutated.replace(states + 15, 3, "999");
  expect_policy_error(mutated, "disagrees with the features line");
}

TEST(LearnPolicy, RejectsInvalidFeatureGrid) {
  // A parsed FeatureConfig is validated with the same field-named errors
  // as a programmatic one.
  const std::string text = learn::serialize_policy(tiny_tabular());
  const std::size_t pos = text.find("margin_lo=1");
  ASSERT_NE(pos, std::string::npos);
  std::string mutated = text;
  mutated.replace(pos, 11, "margin_lo=0");
  expect_policy_error(reseal(std::move(mutated)),
                      "features: FeatureConfig.margin_lo");
}

TEST(LearnPolicy, SaveLoadRoundTripsAndNamesIoErrors) {
  const std::string path = testing::TempDir() + "learn_policy_test.vbrp";
  const learn::Policy p = tiny_tabular();
  learn::save_policy_file(path, p);
  const learn::Policy back = learn::load_policy_file(path);
  EXPECT_EQ(learn::serialize_policy(back), learn::serialize_policy(p));

  try {
    (void)learn::load_policy_file(testing::TempDir() + "no_such_policy.vbrp");
    FAIL() << "expected PolicyError";
  } catch (const learn::PolicyError& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }

  // An empty file is truncation at the magic line, not a crash.
  const std::string empty = testing::TempDir() + "empty_policy.vbrp";
  std::ofstream(empty).close();
  try {
    (void)learn::load_policy_file(empty);
    FAIL() << "expected PolicyError";
  } catch (const learn::PolicyError& e) {
    EXPECT_NE(std::string(e.what()).find("PolicyFile.magic"),
              std::string::npos);
  }
  std::remove(path.c_str());
  std::remove(empty.c_str());
}

TEST(LearnPolicy, ValidateNamesStructuralProblems) {
  const auto expect_invalid = [](learn::Policy p, const std::string& needle) {
    try {
      p.validate();
      FAIL() << "expected PolicyError mentioning '" << needle << "'";
    } catch (const learn::PolicyError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "actual message: " << e.what();
    }
  };
  learn::Policy p = tiny_tabular();
  p.id = "bad id with spaces";
  expect_invalid(p, "meta.id");

  p = tiny_tabular();
  p.tabular.table.pop_back();
  expect_invalid(p, "tabular.table");

  p = tiny_tabular();
  p.tabular.default_track = 9;
  expect_invalid(p, "tabular.default");

  learn::Policy m = tiny_mlp();
  m.mlp.w2.push_back(0.0);
  expect_invalid(m, "mlp.w2");

  m = tiny_mlp();
  m.mlp.in = 99;
  expect_invalid(m, "mlp.in");
}

}  // namespace
}  // namespace vbr
