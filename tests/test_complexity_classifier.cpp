// Tests for the chunk-size-based complexity classifier (Section 3.1.1).
#include "core/complexity_classifier.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "metrics/stats.h"
#include "test_util.h"
#include "video/dataset.h"

namespace {

using namespace vbr;
using core::ComplexityClassifier;

video::Video corpus_video() {
  return video::make_video("ED", video::Genre::kAnimation,
                           video::Codec::kH264, 2.0, 2.0, 42, 300.0);
}

TEST(Classifier, QuartilesAreRoughlyBalanced) {
  const video::Video v = corpus_video();
  const ComplexityClassifier c(v);
  std::array<std::size_t, 4> counts{};
  for (std::size_t i = 0; i < v.num_chunks(); ++i) {
    counts[c.class_of(i)]++;
  }
  for (const std::size_t n : counts) {
    EXPECT_GT(n, v.num_chunks() / 8);
    EXPECT_LT(n, v.num_chunks() / 2);
  }
}

TEST(Classifier, TopClassHasLargestChunks) {
  const video::Video v = corpus_video();
  const ComplexityClassifier c(v);
  const video::Track& ref = v.track(c.reference_track());
  double min_q4 = 1e18;
  double max_q1 = 0.0;
  for (std::size_t i = 0; i < v.num_chunks(); ++i) {
    if (c.class_of(i) == 3) {
      min_q4 = std::min(min_q4, ref.chunk(i).size_bits);
    }
    if (c.class_of(i) == 0) {
      max_q1 = std::max(max_q1, ref.chunk(i).size_bits);
    }
  }
  EXPECT_GT(min_q4, max_q1);
}

TEST(Classifier, MatchesSceneComplexityGroundTruth) {
  // The whole point of the classifier: size quartiles recover the relative
  // scene complexity with high accuracy. Q4 chunks should have much higher
  // SI/TI than Q1 chunks (cf. Fig. 2).
  const video::Video v = corpus_video();
  const ComplexityClassifier c(v);
  std::vector<double> q1_siti;
  std::vector<double> q4_siti;
  for (std::size_t i = 0; i < v.num_chunks(); ++i) {
    const double siti = v.scene_info(i).si + v.scene_info(i).ti;
    if (c.class_of(i) == 0) {
      q1_siti.push_back(siti);
    } else if (c.class_of(i) == 3) {
      q4_siti.push_back(siti);
    }
  }
  EXPECT_GT(stats::median(q4_siti), stats::median(q1_siti) + 10.0);
}

TEST(Classifier, ReferenceTrackChoiceBarelyMatters) {
  // Cross-track consistency (Section 3.1.1 property 2): classifying from
  // any reference track gives nearly the same classes.
  const video::Video v = corpus_video();
  const ComplexityClassifier mid(v, v.middle_track());
  const ComplexityClassifier top(v, v.num_tracks() - 1);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < v.num_chunks(); ++i) {
    agree += mid.class_of(i) == top.class_of(i) ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(agree) / v.num_chunks(), 0.9);
}

TEST(Classifier, IsComplexMatchesTopClass) {
  const video::Video v = corpus_video();
  const ComplexityClassifier c(v);
  for (std::size_t i = 0; i < v.num_chunks(); ++i) {
    EXPECT_EQ(c.is_complex(i), c.class_of(i) == 3);
  }
}

TEST(Classifier, ComplexChunksListsTopClass) {
  const video::Video v = corpus_video();
  const ComplexityClassifier c(v);
  const auto complex_idx = c.complex_chunks();
  EXPECT_FALSE(complex_idx.empty());
  for (const std::size_t i : complex_idx) {
    EXPECT_TRUE(c.is_complex(i));
  }
}

TEST(Classifier, ConfigurableClassCount) {
  const video::Video v = corpus_video();
  const ComplexityClassifier c(v, v.middle_track(), 5);
  EXPECT_EQ(c.num_classes(), 5u);
  std::size_t top = 0;
  for (std::size_t i = 0; i < v.num_chunks(); ++i) {
    EXPECT_LT(c.class_of(i), 5u);
    top += c.class_of(i) == 4 ? 1 : 0;
  }
  EXPECT_GT(top, 0u);
}

TEST(Classifier, InvalidArgumentsThrow) {
  const video::Video v = corpus_video();
  EXPECT_THROW(ComplexityClassifier(v, 99), std::invalid_argument);
  EXPECT_THROW(ComplexityClassifier(v, 0, 1), std::invalid_argument);
}

TEST(Classifier, FlatVideoPutsEverythingInOneBoundaryClass) {
  // Degenerate input: all chunks the same size. No chunk exceeds the
  // thresholds, so everything lands in the first class (and none in Q4).
  const video::Video v = testutil::default_flat_video(20);
  const ComplexityClassifier c(v);
  for (std::size_t i = 0; i < v.num_chunks(); ++i) {
    EXPECT_EQ(c.class_of(i), 0u);
    EXPECT_FALSE(c.is_complex(i));
  }
}

}  // namespace
