// Chaos-kill soak: SIGKILL a real `vbrsim --fleet` subprocess mid-run, then
// resume from its checkpoint until the fleet completes, and require the
// final report + durable telemetry to be byte-identical to an uninterrupted
// run. This is the end-to-end proof that the checkpoint protocol survives a
// hard process death (not just the cooperative in-process kill).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/jsonl_io.h"

namespace vbr {
namespace {

constexpr const char* kVbrsim = VBR_VBRSIM_PATH;

struct RunOutcome {
  int exit_code = -1;
  bool signaled = false;
};

/// Runs vbrsim with `args`; if `kill_after_ms >= 0` and the process is
/// still alive at that deadline, SIGKILLs it. Child stdout is discarded.
RunOutcome run_vbrsim(const std::vector<std::string>& args,
                      int kill_after_ms = -1) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    std::freopen("/dev/null", "w", stdout);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(kVbrsim));
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(kVbrsim, argv.data());
    ::_exit(127);
  }
  RunOutcome out;
  int status = 0;
  if (kill_after_ms >= 0) {
    for (int elapsed = 0; elapsed < kill_after_ms; elapsed += 5) {
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
        out.signaled = WIFSIGNALED(status);
        return out;
      }
      ::usleep(5000);
    }
    ::kill(pid, SIGKILL);
  }
  ::waitpid(pid, &status, 0);
  out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  out.signaled = WIFSIGNALED(status);
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The shared fleet workload. Every invocation passes --resume: with no
/// checkpoint file that is a fresh run, so one flag set serves the whole
/// kill/resume loop (and keeps the spec fingerprint identical across legs,
/// --resume being part of the retry policy).
std::vector<std::string> fleet_args(const std::string& dir,
                                    std::uint64_t throttle_us,
                                    const std::string& engine = "") {
  std::vector<std::string> args = {
      "--fleet",          "--fleet-sessions", "40",
      "--fleet-titles",   "6",                "--count",
      "4",                "--scheme",         "BBA-1",
      "--fleet-threads",  "2",                "--duration",
      "40",               "--fleet-title-duration", "40",
      "--checkpoint",     dir + "ck.ckpt",    "--checkpoint-every",
      "4",                "--resume",         "--fleet-report",
      dir + "report.json", "--trace-jsonl",   dir + "trace.jsonl",
      "--trace-durable"};
  if (throttle_us > 0) {
    args.push_back("--fleet-throttle-us");
    args.push_back(std::to_string(throttle_us));
  }
  if (!engine.empty()) {
    args.push_back("--fleet-engine");
    args.push_back(engine);
  }
  return args;
}

TEST(ChaosKill, SigkillResumeLoopConvergesToGoldenBytes) {
  // Golden: one uninterrupted run (no throttle, fresh directory). A
  // checkpoint left behind by an older binary (e.g. a previous format
  // version) must not leak into the golden leg.
  const std::string gold_dir = testing::TempDir() + "chaos_gold_";
  std::remove((gold_dir + "ck.ckpt").c_str());
  const RunOutcome gold = run_vbrsim(fleet_args(gold_dir, 0));
  ASSERT_FALSE(gold.signaled);
  ASSERT_EQ(gold.exit_code, 0);
  const std::string golden_report = read_file(gold_dir + "report.json");
  const std::string golden_trace = read_file(gold_dir + "trace.jsonl");
  ASSERT_GT(golden_report.size(), 100u);
  ASSERT_GT(golden_trace.size(), 1000u);

  // Chaos loop: SIGKILL the throttled run at staggered points until a leg
  // survives to completion. 40 sessions * 4 ms of throttle ≈ 160 ms of
  // wall time minimum, so the early deadlines land mid-run.
  const std::string dir = testing::TempDir() + "chaos_kill_";
  std::remove((dir + "ck.ckpt").c_str());
  int kills = 0;
  bool completed = false;
  for (int attempt = 0; attempt < 12 && !completed; ++attempt) {
    const int deadline_ms = 40 + 35 * attempt;
    const RunOutcome out =
        run_vbrsim(fleet_args(dir, 4000), deadline_ms);
    if (out.signaled) {
      ++kills;
      // A SIGKILL can tear the durable trace mid-line; the scanner must
      // classify the damage as a torn tail (or find the file clean/empty),
      // never as interior corruption.
      std::ifstream probe(dir + "trace.jsonl");
      if (probe.good()) {
        const obs::JsonlScanReport rep =
            obs::recover_checksummed_jsonl(dir + "trace.jsonl");
        EXPECT_TRUE(rep.corrupt_interior_lines.empty());
      }
    } else {
      ASSERT_EQ(out.exit_code, 0) << "resume leg failed";
      completed = true;
    }
  }
  if (!completed) {
    // Finish without a deadline — resume must converge regardless.
    const RunOutcome out = run_vbrsim(fleet_args(dir, 0));
    ASSERT_FALSE(out.signaled);
    ASSERT_EQ(out.exit_code, 0);
  }
  EXPECT_GE(kills, 1) << "no attempt was actually SIGKILLed mid-run";

  EXPECT_EQ(read_file(dir + "report.json"), golden_report);
  EXPECT_EQ(read_file(dir + "trace.jsonl"), golden_trace);
}

TEST(ChaosKill, CooperativeKillExitsThreeAndResumesToGolden) {
  // The CLI contract of the in-process kill: --fleet-kill-after N writes a
  // final checkpoint and exits with code 3; the identical command minus
  // the kill flag finishes the run to the golden bytes.
  const std::string gold_dir = testing::TempDir() + "coop_gold_";
  std::remove((gold_dir + "ck.ckpt").c_str());
  ASSERT_EQ(run_vbrsim(fleet_args(gold_dir, 0)).exit_code, 0);
  const std::string golden_report = read_file(gold_dir + "report.json");

  const std::string dir = testing::TempDir() + "coop_kill_";
  std::remove((dir + "ck.ckpt").c_str());
  std::vector<std::string> killed = fleet_args(dir, 0);
  killed.push_back("--fleet-kill-after");
  killed.push_back("13");
  EXPECT_EQ(run_vbrsim(killed).exit_code, 3);
  EXPECT_GT(read_file(dir + "ck.ckpt").size(), 100u);

  EXPECT_EQ(run_vbrsim(fleet_args(dir, 0)).exit_code, 0);
  EXPECT_EQ(read_file(dir + "report.json"), golden_report);
}

TEST(ChaosKill, EventEngineSigkillResumeLoopConvergesToStepperGolden) {
  // Same hard-death soak, but the chaos legs run the shared-virtual-time
  // event engine (--fleet-engine event, "VBRFLEETCKPT 4" checkpoints with
  // event-count cadence) while the golden stays on the default stepper —
  // so convergence proves SIGKILL-resume AND cross-engine byte equality
  // in one loop.
  const std::string gold_dir = testing::TempDir() + "chaos_ev_gold_";
  std::remove((gold_dir + "ck.ckpt").c_str());
  const RunOutcome gold = run_vbrsim(fleet_args(gold_dir, 0));
  ASSERT_FALSE(gold.signaled);
  ASSERT_EQ(gold.exit_code, 0);
  const std::string golden_report = read_file(gold_dir + "report.json");
  const std::string golden_trace = read_file(gold_dir + "trace.jsonl");
  ASSERT_GT(golden_report.size(), 100u);
  ASSERT_GT(golden_trace.size(), 1000u);

  const std::string dir = testing::TempDir() + "chaos_ev_kill_";
  std::remove((dir + "ck.ckpt").c_str());
  int kills = 0;
  bool completed = false;
  for (int attempt = 0; attempt < 12 && !completed; ++attempt) {
    const int deadline_ms = 40 + 35 * attempt;
    const RunOutcome out =
        run_vbrsim(fleet_args(dir, 4000, "event"), deadline_ms);
    if (out.signaled) {
      ++kills;
      std::ifstream probe(dir + "trace.jsonl");
      if (probe.good()) {
        const obs::JsonlScanReport rep =
            obs::recover_checksummed_jsonl(dir + "trace.jsonl");
        EXPECT_TRUE(rep.corrupt_interior_lines.empty());
      }
    } else {
      ASSERT_EQ(out.exit_code, 0) << "resume leg failed";
      completed = true;
    }
  }
  if (!completed) {
    const RunOutcome out = run_vbrsim(fleet_args(dir, 0, "event"));
    ASSERT_FALSE(out.signaled);
    ASSERT_EQ(out.exit_code, 0);
  }
  EXPECT_GE(kills, 1) << "no attempt was actually SIGKILLed mid-run";

  EXPECT_EQ(read_file(dir + "report.json"), golden_report);
  EXPECT_EQ(read_file(dir + "trace.jsonl"), golden_trace);
}

TEST(ChaosKill, EventEngineCooperativeKillExitsThreeAndResumes) {
  const std::string gold_dir = testing::TempDir() + "coop_ev_gold_";
  std::remove((gold_dir + "ck.ckpt").c_str());
  ASSERT_EQ(run_vbrsim(fleet_args(gold_dir, 0)).exit_code, 0);
  const std::string golden_report = read_file(gold_dir + "report.json");

  const std::string dir = testing::TempDir() + "coop_ev_kill_";
  std::remove((dir + "ck.ckpt").c_str());
  std::vector<std::string> killed = fleet_args(dir, 0, "event");
  killed.push_back("--fleet-kill-after");
  killed.push_back("13");
  EXPECT_EQ(run_vbrsim(killed).exit_code, 3);
  const std::string ck = read_file(dir + "ck.ckpt");
  EXPECT_EQ(ck.rfind("VBRFLEETCKPT 4\n", 0), 0u);  // the v4 format

  EXPECT_EQ(run_vbrsim(fleet_args(dir, 0, "event")).exit_code, 0);
  EXPECT_EQ(read_file(dir + "report.json"), golden_report);
}

}  // namespace
}  // namespace vbr
