// Tests for the PANDA/CQ quality-aware baselines.
#include "abr/panda_cq.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_util.h"

namespace {

using namespace vbr;
using testutil::default_flat_video;
using testutil::make_context;
using testutil::make_flat_video;

abr::PandaCq make_scheme(abr::PandaCriterion crit) {
  abr::PandaCqConfig cfg;
  cfg.criterion = crit;
  return abr::PandaCq(cfg);
}

TEST(PandaCq, BadConfigThrows) {
  abr::PandaCqConfig cfg;
  cfg.window = 0;
  EXPECT_THROW(abr::PandaCq{cfg}, std::invalid_argument);
  cfg = {};
  cfg.bandwidth_safety = 0.0;
  EXPECT_THROW(abr::PandaCq{cfg}, std::invalid_argument);
}

TEST(PandaCq, NonPositiveBandwidthThrows) {
  const video::Video v = default_flat_video(10);
  auto s = make_scheme(abr::PandaCriterion::kMaxMin);
  EXPECT_THROW((void)s.decide(make_context(v, 0, 10.0, -1.0)),
               std::invalid_argument);
}

TEST(PandaCq, Names) {
  EXPECT_EQ(make_scheme(abr::PandaCriterion::kMaxMin).name(),
            "PANDA/CQ max-min");
  EXPECT_EQ(make_scheme(abr::PandaCriterion::kMaxSum).name(),
            "PANDA/CQ max-sum");
}

TEST(PandaCq, AmpleResourcesPickTopQuality) {
  const video::Video v = default_flat_video(20);
  for (const auto crit :
       {abr::PandaCriterion::kMaxMin, abr::PandaCriterion::kMaxSum}) {
    auto s = make_scheme(crit);
    const abr::Decision d = s.decide(make_context(v, 0, 60.0, 50e6));
    EXPECT_EQ(d.track, v.num_tracks() - 1);
  }
}

TEST(PandaCq, InfeasibleFallsToDamageControl) {
  // Starved link and thin buffer: every sequence stalls; the scheme must
  // minimize the predicted stall, i.e. choose the lowest track.
  const video::Video v = default_flat_video(20);
  auto s = make_scheme(abr::PandaCriterion::kMaxMin);
  const abr::Decision d = s.decide(make_context(v, 0, 0.5, 1e5));
  EXPECT_EQ(d.track, 0u);
}

TEST(PandaCq, FeasibilityUsesActualChunkSizes) {
  const video::Video v = make_flat_video(
      {2e5, 4e5, 8e5, 1.6e6, 3.2e6, 6.4e6}, 20, 2.0, {{10, 3.0}});
  auto s = make_scheme(abr::PandaCriterion::kMaxMin);
  const abr::Decision flat = s.decide(make_context(v, 5, 4.0, 3.2e6));
  const abr::Decision spiked = s.decide(make_context(v, 10, 4.0, 3.2e6));
  EXPECT_LT(spiked.track, flat.track);
}

TEST(PandaCq, MaxMinLiftsTheWorstChunk) {
  // Build a video where the *quality* of the top track dips for one chunk:
  // max-min must protect that chunk; max-sum can ignore it.
  video::Video v = [&] {
    std::vector<video::Track> tracks;
    const std::size_t n = 8;
    for (std::size_t l = 0; l < 3; ++l) {
      std::vector<video::Chunk> chunks(n);
      for (std::size_t i = 0; i < n; ++i) {
        chunks[i].size_bits = 1e6 * static_cast<double>(l + 1);
        chunks[i].duration_s = 2.0;
        double q = 30.0 + 25.0 * static_cast<double>(l);
        chunks[i].quality.vmaf_phone = q;
        chunks[i].quality.vmaf_tv = q;
      }
      tracks.emplace_back(static_cast<int>(l), video::standard_ladder()[l],
                          video::Codec::kH264, std::move(chunks));
    }
    return video::Video("q", video::Genre::kAction, std::move(tracks),
                        std::vector<video::SceneInfo>(n));
  }();

  // Bandwidth affords track 1 sustainably (1 Mbps needed vs 1.3 available)
  // but track 2 only part-time. max-min raises the floor by mixing in
  // track 2 is impossible (quality per track is flat here), so both pick a
  // sustainable sequence; sanity: decisions are valid and identical.
  auto mm = make_scheme(abr::PandaCriterion::kMaxMin);
  auto ms = make_scheme(abr::PandaCriterion::kMaxSum);
  const abr::Decision dm = mm.decide(make_context(v, 0, 20.0, 1.3e6 / 2.0));
  const abr::Decision ds = ms.decide(make_context(v, 0, 20.0, 1.3e6 / 2.0));
  EXPECT_LT(dm.track, 3u);
  EXPECT_LT(ds.track, 3u);
}

TEST(PandaCq, QualityMetricConfigurable) {
  // A video where phone and TV scores favour different tracks (track 1 has
  // better TV score, track 0 better phone score at equal size cost).
  std::vector<video::Track> tracks;
  const std::size_t n = 6;
  for (std::size_t l = 0; l < 2; ++l) {
    std::vector<video::Chunk> chunks(n);
    for (std::size_t i = 0; i < n; ++i) {
      chunks[i].size_bits = 1e6 * static_cast<double>(l + 1);
      chunks[i].duration_s = 2.0;
      chunks[i].quality.vmaf_phone = l == 0 ? 90.0 : 50.0;
      chunks[i].quality.vmaf_tv = l == 0 ? 50.0 : 90.0;
    }
    tracks.emplace_back(static_cast<int>(l), video::standard_ladder()[l],
                        video::Codec::kH264, std::move(chunks));
  }
  const video::Video v("m", video::Genre::kAction, std::move(tracks),
                       std::vector<video::SceneInfo>(n));

  abr::PandaCqConfig cfg;
  cfg.metric = video::QualityMetric::kVmafPhone;
  abr::PandaCq phone(cfg);
  cfg.metric = video::QualityMetric::kVmafTv;
  abr::PandaCq tv(cfg);
  const auto ctx = make_context(v, 0, 30.0, 10e6);
  EXPECT_EQ(phone.decide(ctx).track, 0u);
  EXPECT_EQ(tv.decide(ctx).track, 1u);
}

TEST(PandaCq, WindowTruncatesAtVideoEnd) {
  const video::Video v = default_flat_video(3);
  auto s = make_scheme(abr::PandaCriterion::kMaxMin);
  const abr::Decision d = s.decide(make_context(v, 2, 20.0, 4e6));
  EXPECT_LT(d.track, v.num_tracks());
}

TEST(PandaCq, TieBreakPrefersFewerBits) {
  // Two tracks with identical quality: the cheaper one must win.
  std::vector<video::Track> tracks;
  const std::size_t n = 6;
  for (std::size_t l = 0; l < 2; ++l) {
    std::vector<video::Chunk> chunks(n);
    for (std::size_t i = 0; i < n; ++i) {
      chunks[i].size_bits = 1e6 * static_cast<double>(l + 1);
      chunks[i].duration_s = 2.0;
      chunks[i].quality.vmaf_phone = 80.0;
      chunks[i].quality.vmaf_tv = 80.0;
    }
    tracks.emplace_back(static_cast<int>(l), video::standard_ladder()[l],
                        video::Codec::kH264, std::move(chunks));
  }
  const video::Video v("tie", video::Genre::kAction, std::move(tracks),
                       std::vector<video::SceneInfo>(n));
  auto s = make_scheme(abr::PandaCriterion::kMaxSum);
  EXPECT_EQ(s.decide(make_context(v, 0, 30.0, 10e6)).track, 0u);
}

}  // namespace
