// Fleet-level CDN integration tests: a flash crowd riding through an
// origin brownout with regional outages and load shedding must stay
// byte-deterministic across worker thread counts and across kill/resume,
// coalescing must measurably cut origin fetches, the report JSON must
// carry the CDN block, and FleetSpec::validate must reject inconsistent
// cross-field configurations by name.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "abr/bba.h"
#include "abr/scheme.h"
#include "fleet/checkpoint.h"
#include "fleet/fleet.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "test_util.h"

namespace vbr {
namespace {

std::vector<net::Trace> two_traces() {
  std::vector<net::Trace> traces;
  traces.push_back(testutil::flat_trace(4e6, 600.0));
  traces.push_back(testutil::flat_trace(1.5e6, 600.0));
  return traces;
}

/// The CDN stress fleet: a flash crowd whose burst lands inside an origin
/// brownout, with one regional outage per node, aggressive shedding, and a
/// slow backhaul so coalescing windows actually overlap concurrent
/// arrivals. The edge cache is eviction-prone, so plenty of traffic goes
/// upstream.
fleet::FleetSpec cdn_spec(const std::vector<net::Trace>& traces,
                          const std::string& checkpoint_path = "") {
  fleet::FleetSpec spec;
  spec.catalog.num_titles = 6;
  spec.catalog.title_duration_s = 40.0;
  spec.arrivals.kind = fleet::ArrivalKind::kFlashCrowd;
  spec.arrivals.rate_per_s = 0.3;
  spec.arrivals.horizon_s = 150.0;
  spec.arrivals.max_sessions = 40;
  spec.arrivals.burst_start_s = 40.0;
  spec.arrivals.burst_duration_s = 30.0;
  spec.arrivals.burst_multiplier = 8.0;
  spec.classes.resize(2);
  spec.classes[0].label = "bba";
  spec.classes[0].make_scheme = [] { return std::make_unique<abr::Bba>(); };
  spec.classes[1].label = "fixed1";
  spec.classes[1].make_scheme = [] {
    return std::make_unique<abr::FixedTrackScheme>(1);
  };
  spec.traces = traces;
  // Deliberately tiny edge shards: a single session's content overflows
  // its title's slice, so re-requests miss the edge and land on the
  // regional tier or inside a still-open coalescing window.
  spec.cache.capacity_bits = 5e7;
  spec.watch.full_watch_prob = 0.5;
  spec.watch.mean_partial_s = 20.0;
  spec.watch.min_watch_s = 4.0;
  spec.session.startup_latency_s = 4.0;
  spec.checkpoint_path = checkpoint_path;
  spec.checkpoint_every = 8;

  spec.cdn.enabled = true;
  spec.cdn.backhaul_bps = 1e6;  // multi-second fetch windows per chunk
  spec.cdn.regional.nodes = 2;
  spec.cdn.regional.capacity_bits = 4e9;
  spec.cdn.regional.outages_per_node = 2;
  spec.cdn.regional.outage_duration_s = 25.0;
  spec.cdn.brownout.start_s = 40.0;  // the brownout covers the burst
  spec.cdn.brownout.duration_s = 40.0;
  spec.cdn.brownout.rate_scale = 0.5;
  spec.cdn.brownout.extra_latency_s = 0.2;
  spec.cdn.brownout.capacity_scale = 0.5;
  spec.cdn.shed.capacity_sessions = 6.0;
  spec.cdn.shed.active_session_s = 30.0;
  spec.cdn.shed.threshold = 0.5;
  spec.cdn.shed.max_shed_prob = 0.8;
  return spec;
}

/// Full serialized observation of one run: merged JSONL (which carries the
/// per-chunk tier/coalesced/shed fields), metrics fingerprint, report
/// JSON, and the per-session outcome table including the CDN columns.
std::string run_and_serialize(fleet::FleetSpec spec, unsigned threads) {
  obs::MemoryTraceSink sink;
  obs::MetricsRegistry registry;
  spec.trace = &sink;
  spec.metrics = &registry;
  spec.threads = threads;
  const fleet::FleetResult result = fleet::run_fleet(spec);

  std::ostringstream out;
  for (const obs::DecisionEvent& ev : sink.events()) {
    out << obs::to_jsonl(ev) << '\n';
  }
  out << registry.deterministic_fingerprint() << '\n';
  result.write_json(out);
  for (const fleet::FleetSessionRecord& r : result.sessions) {
    out << r.session_id << ' ' << r.arrival_s << ' ' << r.title << ' '
        << r.class_index << ' ' << r.chunks << ' ' << r.edge_hits << ' '
        << r.regional_hits << ' ' << r.coalesced_chunks << ' '
        << r.shed_chunks << ' ' << r.regional_bits << ' '
        << r.qoe.data_usage_mb << '\n';
  }
  return out.str();
}

void run_until_killed(fleet::FleetSpec spec, unsigned threads,
                      std::uint64_t kill_after) {
  obs::MemoryTraceSink sink;
  obs::MetricsRegistry registry;
  spec.trace = &sink;
  spec.metrics = &registry;
  spec.threads = threads;
  spec.kill.after_sessions = kill_after;
  try {
    (void)fleet::run_fleet(spec);
    FAIL() << "expected FleetKilled (kill_after=" << kill_after << ")";
  } catch (const fleet::FleetKilled& k) {
    EXPECT_GE(k.sessions_completed(), kill_after);
  }
}

TEST(FleetCdn, FlashCrowdBrownoutIsByteDeterministicAcrossThreads) {
  const std::vector<net::Trace> traces = two_traces();
  const std::string one = run_and_serialize(cdn_spec(traces), 1);
  const std::string two = run_and_serialize(cdn_spec(traces), 2);
  const std::string eight = run_and_serialize(cdn_spec(traces), 8);
  EXPECT_GT(one.size(), 1000u);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(FleetCdn, ExercisesEveryProtectionPathAndFoldsConsistently) {
  const std::vector<net::Trace> traces = two_traces();
  const fleet::FleetResult r = fleet::run_fleet(cdn_spec(traces));
  ASSERT_TRUE(r.cdn_enabled);
  // The stress spec must actually reach every tier and every protection
  // mechanism, or the determinism tests above prove nothing about them.
  EXPECT_GT(r.cdn.edge_hits, 0u);
  EXPECT_GT(r.cdn.regional_hits, 0u);
  EXPECT_GT(r.cdn.origin_fetches, 0u);
  EXPECT_GT(r.cdn.coalesced, 0u);
  EXPECT_GT(r.cdn.shed, 0u);
  EXPECT_GT(r.cdn.failovers, 0u);
  EXPECT_GT(r.cdn.brownout_fetches, 0u);
  EXPECT_GT(r.cdn.shed_wait_s, 0.0);
  // Every client request was served by exactly one of the four paths.
  EXPECT_EQ(r.cdn.client_requests, r.cdn.edge_hits + r.cdn.coalesced +
                                       r.cdn.regional_hits +
                                       r.cdn.origin_fetches);
  // Shed and brownout fetches are subsets of origin fetches.
  EXPECT_LE(r.cdn.shed, r.cdn.origin_fetches);
  EXPECT_LE(r.cdn.brownout_fetches, r.cdn.origin_fetches);
  EXPECT_DOUBLE_EQ(r.upstream_fetch_ratio, r.cdn.upstream_fetch_ratio());
  EXPECT_GT(r.upstream_fetch_ratio, 0.0);
  EXPECT_LT(r.upstream_fetch_ratio, 1.0);  // the edge absorbed something

  // The per-session records fold to the same totals as the title-order
  // CDN aggregates (each request maps to exactly one delivered chunk).
  std::size_t regional = 0;
  std::size_t coalesced = 0;
  std::size_t shed = 0;
  double regional_bits = 0.0;
  for (const fleet::FleetSessionRecord& rec : r.sessions) {
    regional += rec.regional_hits;
    coalesced += rec.coalesced_chunks;
    shed += rec.shed_chunks;
    regional_bits += rec.regional_bits;
  }
  EXPECT_EQ(regional, r.cdn.regional_hits);
  EXPECT_EQ(coalesced, r.cdn.coalesced);
  EXPECT_EQ(shed, r.cdn.shed);
  EXPECT_DOUBLE_EQ(regional_bits, r.cdn.regional_hit_bits);
  // The regional-tier cache saw the regional traffic.
  EXPECT_GT(r.regional.lookups, 0u);
  EXPECT_EQ(r.regional.hits, r.cdn.regional_hits);
}

TEST(FleetCdn, KillAndResumeMidBrownoutMatchesTheUninterruptedRun) {
  const std::vector<net::Trace> traces = two_traces();
  const std::string golden = run_and_serialize(cdn_spec(traces), 1);
  ASSERT_GT(golden.size(), 1000u);

  int case_id = 0;
  for (const unsigned threads : {1u, 2u, 8u}) {
    // kill_after 12 lands inside the burst/brownout window with live
    // coalescing state; 25 lands past it with shed counters accumulated.
    for (const std::uint64_t kill_after :
         {std::uint64_t{12}, std::uint64_t{25}}) {
      const std::string path = testing::TempDir() + "cdn_ck_" +
                               std::to_string(case_id++) + ".ckpt";
      std::remove(path.c_str());
      run_until_killed(cdn_spec(traces, path), threads, kill_after);
      fleet::FleetSpec resume = cdn_spec(traces, path);
      resume.resume = true;
      EXPECT_EQ(run_and_serialize(resume, threads), golden)
          << "threads=" << threads << " kill_after=" << kill_after;
      std::remove(path.c_str());
    }
  }
}

TEST(FleetCdn, CoalescingReducesOriginFetches) {
  const std::vector<net::Trace> traces = two_traces();
  const fleet::FleetResult with = fleet::run_fleet(cdn_spec(traces));
  fleet::FleetSpec off_spec = cdn_spec(traces);
  off_spec.cdn.coalesce = false;
  const fleet::FleetResult without = fleet::run_fleet(off_spec);
  ASSERT_GT(with.cdn.coalesced, 0u);
  EXPECT_EQ(without.cdn.coalesced, 0u);
  // The coalesced requests would otherwise have gone upstream: switching
  // coalescing off must cost extra regional/origin fetches.
  EXPECT_LT(with.cdn.origin_fetches + with.cdn.regional_hits,
            without.cdn.origin_fetches + without.cdn.regional_hits);
  EXPECT_LT(with.upstream_fetch_ratio, without.upstream_fetch_ratio);
}

TEST(FleetCdn, CoalescingJoinsAcrossSessionBoundariesUnderBothEngines) {
  // Regression gate on the fetch windows' time base: a fault-free serial
  // player never re-requests an object within one session, so EVERY
  // coalesced hit in this fleet is a session crossing a window some
  // EARLIER session of the title opened. That only works because windows
  // live in global fleet time (cdn.cpp keys them as arrival_s + session
  // clock); keying them session-locally would zero these joins — and the
  // event engine's chained execution must reproduce the stepper's counts
  // exactly.
  const std::vector<net::Trace> traces = {testutil::flat_trace(4e6, 600.0)};
  fleet::FleetSpec spec = cdn_spec(traces);
  // One title, one class, one trace: every session replays the identical
  // (track, index) request sequence, offset only by the ~3 s inter-arrival
  // gap — far inside the tens-of-seconds fetch windows the slow backhaul
  // opens, so later sessions MUST join earlier sessions' windows.
  spec.catalog.num_titles = 1;
  spec.classes.resize(1);
  spec.arrivals.max_sessions = 8;
  spec.cdn.backhaul_bps = 5e4;  // ~5-20 s windows vs 1-10 s arrival gaps
  // Collapsing to one title hands cdn_spec's whole edge budget to a single
  // shard — big enough to hold the entire title, which would turn every
  // re-request into an edge hit and starve the coalescer. Shrink it back to
  // roughly one chunk so later sessions fall through to the window check.
  spec.cache.capacity_bits = 4e6;

  spec.engine = fleet::FleetEngine::kStepped;
  const fleet::FleetResult stepped = fleet::run_fleet(spec);
  spec.engine = fleet::FleetEngine::kEvent;
  spec.threads = 4;
  const fleet::FleetResult event = fleet::run_fleet(spec);

  // K sessions racing the same cold object produce 1 upstream fetch and
  // K-1 window joins, so joins must show up at fleet scale...
  ASSERT_GT(stepped.cdn.coalesced, 0u);
  // ...and the two engines must agree on every counter of the hierarchy.
  EXPECT_EQ(event.cdn.coalesced, stepped.cdn.coalesced);
  EXPECT_EQ(event.cdn.origin_fetches, stepped.cdn.origin_fetches);
  EXPECT_EQ(event.cdn.regional_hits, stepped.cdn.regional_hits);
  EXPECT_EQ(event.cdn.edge_hits, stepped.cdn.edge_hits);
  EXPECT_EQ(event.cdn.client_requests, stepped.cdn.client_requests);
  EXPECT_EQ(event.cdn.shed, stepped.cdn.shed);
  EXPECT_EQ(event.cdn.failovers, stepped.cdn.failovers);
}

TEST(FleetCdn, ReportJsonCarriesTheCdnBlock) {
  const std::vector<net::Trace> traces = two_traces();
  const fleet::FleetResult r = fleet::run_fleet(cdn_spec(traces));
  std::ostringstream out;
  r.write_json(out);
  const std::string json = out.str();
  for (const char* needle :
       {"\"cdn\":{\"enabled\":true", "\"client_requests\":",
        "\"regional_hits\":", "\"origin_fetches\":", "\"coalesced\":",
        "\"shed\":", "\"failovers\":", "\"brownout_fetches\":",
        "\"shed_wait_s\":", "\"upstream_fetch_ratio\":",
        "\"regional_cache\":{"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }

  // Disabled CDN: the block says so and the flat ratio is reported.
  fleet::FleetSpec flat = cdn_spec(traces);
  flat.cdn = fleet::CdnConfig{};
  const fleet::FleetResult rf = fleet::run_fleet(flat);
  std::ostringstream out_flat;
  rf.write_json(out_flat);
  EXPECT_NE(out_flat.str().find("\"cdn\":{\"enabled\":false"),
            std::string::npos);
  EXPECT_FALSE(rf.cdn_enabled);
  EXPECT_EQ(rf.cdn.client_requests, 0u);
  ASSERT_GT(rf.cache.lookups, 0u);
  EXPECT_DOUBLE_EQ(
      rf.upstream_fetch_ratio,
      static_cast<double>(rf.cache.lookups - rf.cache.hits) /
          static_cast<double>(rf.cache.lookups));
}

/// Expects spec.validate() to throw an invalid_argument naming `field`.
void expect_spec_error(const fleet::FleetSpec& spec,
                       const std::string& field) {
  try {
    spec.validate();
    FAIL() << "expected invalid_argument naming " << field;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << e.what();
  }
}

TEST(FleetCdn, ValidateRejectsInconsistentCrossFieldConfigs) {
  const std::vector<net::Trace> traces = two_traces();
  {
    // Edge miss latency must exceed the hit latency or tiering is absurd.
    fleet::FleetSpec s = cdn_spec(traces);
    s.cache.miss_latency_s = s.cache.hit_latency_s;
    expect_spec_error(s, "FleetSpec.cache.miss_latency_s");
  }
  {
    // The CDN extends the edge cache; it cannot run without one.
    fleet::FleetSpec s = cdn_spec(traces);
    s.use_cache = false;
    expect_spec_error(s, "FleetSpec.cdn.enabled");
  }
  {
    // A regional tier smaller than the edge it backs can never help.
    fleet::FleetSpec s = cdn_spec(traces);
    s.cdn.regional.capacity_bits = s.cache.capacity_bits / 2.0;
    expect_spec_error(s, "FleetSpec.cdn.regional.capacity_bits");
  }
  {
    // Regional latency must sit strictly between edge hit and miss.
    fleet::FleetSpec s = cdn_spec(traces);
    s.cdn.regional.hit_latency_s = s.cache.hit_latency_s;
    expect_spec_error(s, "FleetSpec.cdn.regional.hit_latency_s");
  }
  {
    // Nested CdnConfig validation surfaces through FleetSpec::validate.
    fleet::FleetSpec s = cdn_spec(traces);
    s.cdn.backhaul_bps = 0.0;
    expect_spec_error(s, "CdnConfig.backhaul_bps");
  }
}

}  // namespace
}  // namespace vbr
