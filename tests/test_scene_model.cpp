// Tests for the synthetic scene-complexity model.
#include "video/scene_model.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "metrics/stats.h"

namespace {

using namespace vbr::video;

TEST(SceneModel, DeterministicInSeed) {
  const auto a = generate_scene_trace(Genre::kAction, 200, 9);
  const auto b = generate_scene_trace(Genre::kAction, 200, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].complexity, b[i].complexity);
    EXPECT_DOUBLE_EQ(a[i].info.si, b[i].info.si);
    EXPECT_DOUBLE_EQ(a[i].info.ti, b[i].info.ti);
  }
}

TEST(SceneModel, DifferentSeedsDiffer) {
  const auto a = generate_scene_trace(Genre::kAction, 50, 1);
  const auto b = generate_scene_trace(Genre::kAction, 50, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].complexity != b[i].complexity;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SceneModel, ExactLength) {
  EXPECT_EQ(generate_scene_trace(Genre::kNature, 1, 1).size(), 1u);
  EXPECT_EQ(generate_scene_trace(Genre::kNature, 137, 1).size(), 137u);
}

TEST(SceneModel, ZeroChunksThrows) {
  EXPECT_THROW((void)generate_scene_trace(Genre::kNature, 0, 1),
               std::invalid_argument);
}

TEST(SceneModel, BadProfileThrows) {
  GenreProfile p;
  p.mean_scene_len_chunks = 0.5;
  EXPECT_THROW((void)generate_scene_trace(p, 10, 1), std::invalid_argument);
}

TEST(SceneModel, ComplexityInRange) {
  for (const Genre g : {Genre::kAnimation, Genre::kSciFi, Genre::kSports,
                        Genre::kAnimal, Genre::kNature, Genre::kAction}) {
    const auto trace = generate_scene_trace(g, 500, 3);
    for (const SceneChunk& sc : trace) {
      EXPECT_GT(sc.complexity, 0.0);
      EXPECT_LE(sc.complexity, 1.0);
      EXPECT_GE(sc.info.si, 0.0);
      EXPECT_LE(sc.info.si, 100.0);
      EXPECT_GE(sc.info.ti, 0.0);
      EXPECT_LE(sc.info.ti, 60.0);
    }
  }
}

TEST(SceneModel, HighMotionGenresAreMoreComplex) {
  auto mean_complexity = [](Genre g) {
    const auto trace = generate_scene_trace(g, 2000, 5);
    double sum = 0.0;
    for (const SceneChunk& sc : trace) {
      sum += sc.complexity;
    }
    return sum / static_cast<double>(trace.size());
  };
  EXPECT_GT(mean_complexity(Genre::kSports), mean_complexity(Genre::kNature));
  EXPECT_GT(mean_complexity(Genre::kAction),
            mean_complexity(Genre::kAnimation));
}

TEST(SceneModel, ComplexityCorrelatesWithSiTi) {
  // SI+TI together encode the complexity (Section 3.1.1 property 1).
  const auto trace = generate_scene_trace(Genre::kSciFi, 1000, 7);
  std::vector<double> c;
  std::vector<double> siti;
  for (const SceneChunk& sc : trace) {
    c.push_back(sc.complexity);
    siti.push_back(sc.info.si / 100.0 + sc.info.ti / 60.0);
  }
  EXPECT_GT(vbr::stats::pearson(c, siti), 0.8);
}

TEST(SceneModel, WithinScenePersistence) {
  // Adjacent chunks should correlate far more than distant ones (scenes).
  const auto trace = generate_scene_trace(Genre::kAnimation, 2000, 11);
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> far;
  for (std::size_t i = 0; i + 20 < trace.size(); ++i) {
    a.push_back(trace[i].complexity);
    b.push_back(trace[i + 1].complexity);
    far.push_back(trace[i + 20].complexity);
  }
  const double adjacent = vbr::stats::pearson(a, b);
  const double distant = vbr::stats::pearson(a, far);
  EXPECT_GT(adjacent, 0.55);
  EXPECT_LT(distant, adjacent - 0.3);
}

class GenreProfileTest : public ::testing::TestWithParam<Genre> {};

TEST_P(GenreProfileTest, ProfilesAreSane) {
  const GenreProfile p = profile_for(GetParam());
  EXPECT_GE(p.mean_scene_len_chunks, 1.0);
  EXPECT_GT(p.complexity_mid, 0.0);
  EXPECT_LT(p.complexity_mid, 1.0);
  EXPECT_GT(p.complexity_spread, 0.0);
  EXPECT_GE(p.high_action_prob, 0.0);
  EXPECT_LE(p.high_action_prob, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllGenres, GenreProfileTest,
                         ::testing::Values(Genre::kAnimation, Genre::kSciFi,
                                           Genre::kSports, Genre::kAnimal,
                                           Genre::kNature, Genre::kAction));

}  // namespace
