// Tests for the outer controller's preview-control target buffer
// (Section 5.4, Eq. 5).
#include "core/outer_controller.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_util.h"

namespace {

using namespace vbr;
using core::CavaConfig;
using core::OuterController;

// Flat video with a cluster of large chunks at [30, 40).
video::Video cluster_video() {
  std::vector<std::pair<std::size_t, double>> spikes;
  for (std::size_t i = 30; i < 40; ++i) {
    spikes.emplace_back(i, 2.0);
  }
  return testutil::make_flat_video({2e5, 4e5, 8e5, 1.6e6, 3.2e6, 6.4e6}, 80,
                                   2.0, spikes);
}

TEST(Outer, BadConfigThrows) {
  CavaConfig cfg;
  cfg.base_target_buffer_s = 0.0;
  EXPECT_THROW(OuterController{cfg}, std::invalid_argument);
  cfg = CavaConfig{};
  cfg.outer_window_s = -1.0;
  EXPECT_THROW(OuterController{cfg}, std::invalid_argument);
  cfg = CavaConfig{};
  cfg.target_buffer_cap_factor = 0.5;
  EXPECT_THROW(OuterController{cfg}, std::invalid_argument);
}

TEST(Outer, BadReferenceTrackThrows) {
  const video::Video v = cluster_video();
  const OuterController outer{CavaConfig{}};
  EXPECT_THROW((void)outer.target_buffer_s(v, 99, 0), std::invalid_argument);
}

TEST(Outer, FlatFutureGivesBaseTarget) {
  const video::Video v = testutil::default_flat_video(80);
  const OuterController outer{CavaConfig{}};
  EXPECT_DOUBLE_EQ(outer.target_buffer_s(v, v.middle_track(), 0),
                   outer.base_target_s());
}

TEST(Outer, RaisesTargetAheadOfLargeChunkCluster) {
  const video::Video v = cluster_video();
  CavaConfig cfg;
  cfg.outer_window_s = 30.0;  // 15 chunks of look-ahead
  const OuterController outer(cfg);
  // Just before the cluster, the window [28, 43) is mostly spiked chunks:
  // the target must rise above the base.
  const double before = outer.target_buffer_s(v, v.middle_track(), 28);
  EXPECT_GT(before, outer.base_target_s() + 1.0);
  // Far from the cluster the target stays at the base.
  const double far = outer.target_buffer_s(v, v.middle_track(), 55);
  EXPECT_DOUBLE_EQ(far, outer.base_target_s());
}

TEST(Outer, TargetCappedAtFactorTimesBase) {
  const video::Video v = [] {
    // Extreme cluster to force the cap.
    std::vector<std::pair<std::size_t, double>> spikes;
    for (std::size_t i = 10; i < 60; ++i) {
      spikes.emplace_back(i, 6.0);
    }
    return testutil::make_flat_video({1e6}, 80, 2.0, spikes);
  }();
  CavaConfig cfg;
  const OuterController outer(cfg);
  const double target = outer.target_buffer_s(v, 0, 10);
  EXPECT_LE(target,
            cfg.target_buffer_cap_factor * cfg.base_target_buffer_s + 1e-9);
  EXPECT_GT(target, cfg.base_target_buffer_s);
}

TEST(Outer, ProactiveToggleDisablesAdjustment) {
  const video::Video v = cluster_video();
  CavaConfig cfg;
  cfg.use_proactive_target = false;
  const OuterController outer(cfg);
  EXPECT_DOUBLE_EQ(outer.target_buffer_s(v, v.middle_track(), 28),
                   cfg.base_target_buffer_s);
}

TEST(Outer, WindowTruncatesAtVideoEnd) {
  const video::Video v = cluster_video();
  const OuterController outer{CavaConfig{}};
  // Deciding the last chunk: window covers a single (flat) chunk.
  EXPECT_DOUBLE_EQ(outer.target_buffer_s(v, v.middle_track(), 79),
                   outer.base_target_s());
}

TEST(Outer, LargerWindowSmoothsAdjustment) {
  // Section 6.2: with a very large W', the future-window average approaches
  // the track average and the increment shrinks.
  const video::Video v = cluster_video();
  CavaConfig narrow;
  narrow.outer_window_s = 20.0;
  CavaConfig wide;
  wide.outer_window_s = 160.0;  // covers the whole video
  const double t_narrow = OuterController(narrow).target_buffer_s(
      v, v.middle_track(), 30);
  const double t_wide =
      OuterController(wide).target_buffer_s(v, v.middle_track(), 30);
  EXPECT_GT(t_narrow, t_wide);
}

}  // namespace
