// Tests for trace file I/O.
#include "net/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "net/trace_gen.h"

namespace {

using namespace vbr::net;

TEST(TraceIo, RoundTripString) {
  const Trace t("demo", 1.0, {1e6, 2.5e6, 3e5});
  const Trace r = from_trace_string(to_trace_string(t));
  EXPECT_EQ(r.name(), "demo");
  EXPECT_DOUBLE_EQ(r.sample_period_s(), 1.0);
  ASSERT_EQ(r.num_samples(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(r.samples_bps()[i], t.samples_bps()[i],
                1e-6 * t.samples_bps()[i]);
  }
}

TEST(TraceIo, RoundTripGeneratedTrace) {
  const Trace t = generate_lte_trace(77);
  const Trace r = from_trace_string(to_trace_string(t));
  EXPECT_EQ(r.num_samples(), t.num_samples());
  EXPECT_NEAR(r.average_bandwidth_bps(), t.average_bandwidth_bps(), 1.0);
}

TEST(TraceIo, CommentsAndBlankLinesSkipped) {
  const std::string text =
      "VBR-TRACE/1 c 5\n# a comment\n1000000\n\n2000000\n";
  const Trace t = from_trace_string(text);
  EXPECT_EQ(t.num_samples(), 2u);
  EXPECT_DOUBLE_EQ(t.sample_period_s(), 5.0);
}

TEST(TraceIo, BadMagicThrows) {
  EXPECT_THROW((void)from_trace_string("NOPE x 1\n1e6\n"),
               std::runtime_error);
}

TEST(TraceIo, BadSampleThrows) {
  EXPECT_THROW((void)from_trace_string("VBR-TRACE/1 x 1\nabc\n"),
               std::runtime_error);
}

TEST(TraceIo, EmptyTraceRejected) {
  EXPECT_THROW((void)from_trace_string("VBR-TRACE/1 x 1\n"),
               std::runtime_error);
}

TEST(TraceIo, FileRoundTripViaSet) {
  const std::vector<Trace> set = {generate_lte_trace(1),
                                  generate_fcc_trace(2)};
  const auto paths = write_trace_set(::testing::TempDir(), set);
  ASSERT_EQ(paths.size(), 2u);
  const std::vector<Trace> read = read_trace_files(paths);
  ASSERT_EQ(read.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(read[i].num_samples(), set[i].num_samples());
    EXPECT_NEAR(read[i].average_bandwidth_bps(),
                set[i].average_bandwidth_bps(), 1.0);
    std::remove(paths[i].c_str());
  }
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)read_trace_files({"/nonexistent/path.trace"}),
               std::runtime_error);
}

}  // namespace
