// Differential harness for the two MPC search engines (DESIGN.md §10).
//
// The pruned branch-and-bound engine must be *bit-exact* against the
// exhaustive reference enumerator: same chosen track AND the same searched
// QoE (compared with ==, no tolerance) at every decision point — across
// randomized VBR ladders, every horizon from 1 to 8, robust-mode error
// histories, degraded size knowledge, injected faults, and whole sessions
// serialized field by field. Any divergence, however small, is a bug in
// the pruning argument, not noise.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "abr/mpc.h"
#include "net/bandwidth_estimator.h"
#include "net/trace_gen.h"
#include "obs/trace_sink.h"
#include "sim/session.h"
#include "test_util.h"
#include "video/dataset.h"
#include "video/size_provider.h"

namespace vbr {
namespace {

/// A randomized flat-rate ladder with VBR spikes: track rates drawn
/// log-uniform and sorted, plus multiplicative per-chunk spikes so chunk
/// sizes vary within each track the way real VBR encodes do.
video::Video random_ladder(std::mt19937_64& rng, std::size_t tracks,
                           std::size_t chunks) {
  std::uniform_real_distribution<double> log_rate(5.0, 7.0);  // 100k..10M
  std::vector<double> rates(tracks);
  for (double& r : rates) {
    r = std::pow(10.0, log_rate(rng));
  }
  std::sort(rates.begin(), rates.end());
  std::uniform_int_distribution<std::size_t> spike_at(0, chunks - 1);
  std::uniform_real_distribution<double> spike_mult(0.3, 3.5);
  std::vector<std::pair<std::size_t, double>> spikes;
  const std::size_t num_spikes = chunks / 3;
  spikes.reserve(num_spikes);
  for (std::size_t s = 0; s < num_spikes; ++s) {
    spikes.emplace_back(spike_at(rng), spike_mult(rng));
  }
  return testutil::make_flat_video(rates, chunks, 2.0, spikes);
}

/// A synthetic paper-model title (real VBR size tables + quality curves).
const video::Video& synthetic_title() {
  static const video::Video v = video::make_video(
      "diff-h264", video::Genre::kSports, video::Codec::kH264, 2.0, 2.0,
      /*seed=*/0xd1ff, /*duration_s=*/120.0);
  return v;
}

/// Asserts both engines agree (track and searched QoE, exactly) on one
/// decision point. Returns the agreed track for session-style loops.
std::size_t expect_agree(abr::Mpc& pruned, abr::ReferenceMpc& reference,
                         const abr::StreamContext& ctx,
                         const std::string& where) {
  const abr::Decision dp = pruned.decide(ctx);
  const abr::Decision dr = reference.decide(ctx);
  EXPECT_EQ(dp.track, dr.track) << where;
  // Exact equality, deliberately: the pruned engine replicates the
  // reference's float expressions, so even the last ulp must match.
  EXPECT_EQ(pruned.last_best_qoe(), reference.last_best_qoe()) << where;
  return dp.track;
}

TEST(MpcDifferential, RandomLaddersAllHorizonsOneToSix) {
  std::mt19937_64 rng(1234);
  std::uniform_real_distribution<double> buf(0.0, 40.0);
  std::uniform_real_distribution<double> bw(2e5, 9e6);
  for (int video_seed = 0; video_seed < 6; ++video_seed) {
    const std::size_t tracks = 2 + static_cast<std::size_t>(rng() % 5);
    const std::size_t chunks = 10 + static_cast<std::size_t>(rng() % 30);
    const video::Video v = random_ladder(rng, tracks, chunks);
    for (std::size_t horizon = 1; horizon <= 6; ++horizon) {
      abr::MpcConfig cfg;
      cfg.horizon = horizon;
      abr::Mpc pruned(cfg);
      abr::ReferenceMpc reference(cfg);
      for (int point = 0; point < 25; ++point) {
        const std::size_t chunk =
            static_cast<std::size_t>(rng() % chunks);
        const int prev =
            static_cast<int>(rng() % (tracks + 1)) - 1;  // -1 = startup
        const abr::StreamContext ctx =
            testutil::make_context(v, chunk, buf(rng), bw(rng), prev);
        expect_agree(pruned, reference, ctx,
                     "ladder " + std::to_string(video_seed) + " h" +
                         std::to_string(horizon) + " p" +
                         std::to_string(point));
      }
    }
  }
}

TEST(MpcDifferential, DeepHorizonsOnNarrowLadders) {
  // Horizons 7-8 are reference-exponential (tracks^horizon leaves), so the
  // oracle side caps at 4 tracks to keep the suite fast under sanitizers.
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> buf(0.0, 30.0);
  std::uniform_real_distribution<double> bw(3e5, 6e6);
  for (const std::size_t tracks : {std::size_t{3}, std::size_t{4}}) {
    const video::Video v = random_ladder(rng, tracks, 24);
    for (const std::size_t horizon : {std::size_t{7}, std::size_t{8}}) {
      abr::MpcConfig cfg;
      cfg.horizon = horizon;
      abr::Mpc pruned(cfg);
      abr::ReferenceMpc reference(cfg);
      for (int point = 0; point < 10; ++point) {
        const abr::StreamContext ctx = testutil::make_context(
            v, static_cast<std::size_t>(rng() % 24), buf(rng), bw(rng),
            static_cast<int>(rng() % tracks));
        expect_agree(pruned, reference, ctx,
                     "tracks " + std::to_string(tracks) + " h" +
                         std::to_string(horizon));
      }
    }
  }
}

TEST(MpcDifferential, HorizonTruncationAtVideoEndAndVisibleLimit) {
  const video::Video v = testutil::default_flat_video(20);
  abr::MpcConfig cfg;
  cfg.horizon = 5;
  abr::Mpc pruned(cfg);
  abr::ReferenceMpc reference(cfg);
  // End-of-video truncation: windows of 4, 3, 2, 1, and 0 chunks.
  for (std::size_t chunk = 16; chunk <= 20; ++chunk) {
    const abr::StreamContext ctx =
        testutil::make_context(v, std::min<std::size_t>(chunk, 19), 12.0,
                               2e6, 2);
    expect_agree(pruned, reference, ctx, "tail " + std::to_string(chunk));
  }
  // Manifest-visibility truncation (live / degraded manifests).
  for (const std::size_t visible : {std::size_t{5}, std::size_t{8}}) {
    abr::StreamContext ctx = testutil::make_context(v, 4, 10.0, 1.5e6, 1);
    ctx.visible_chunks = visible;
    expect_agree(pruned, reference, ctx,
                 "visible " + std::to_string(visible));
  }
}

TEST(MpcDifferential, RobustModeSharesErrorHistoryInLockstep) {
  const video::Video& v = synthetic_title();
  abr::MpcConfig cfg = abr::robust_mpc_config();
  abr::Mpc pruned(cfg);
  abr::ReferenceMpc reference(cfg);
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> buf(2.0, 25.0);
  std::uniform_real_distribution<double> bw(4e5, 5e6);
  std::uniform_real_distribution<double> dl(0.2, 3.0);
  for (std::size_t i = 0; i + 1 < v.num_chunks(); ++i) {
    const abr::StreamContext ctx = testutil::make_context(
        v, i, buf(rng), bw(rng), i == 0 ? -1 : static_cast<int>(i % 3));
    const std::size_t track =
        expect_agree(pruned, reference, ctx, "robust step " +
                                                 std::to_string(i));
    // Identical observations keep both error windows — and therefore the
    // robust bandwidth discount — in lockstep.
    const double download_s = dl(rng);
    pruned.on_chunk_downloaded(ctx, track, download_s);
    reference.on_chunk_downloaded(ctx, track, download_s);
  }
}

TEST(MpcDifferential, AgreesUnderEverySizeKnowledgeMode) {
  const video::Video& v = synthetic_title();
  std::vector<std::unique_ptr<video::ChunkSizeProvider>> providers;
  providers.push_back(std::make_unique<video::OracleSizeProvider>());
  providers.push_back(std::make_unique<video::DeclaredRateSizeProvider>());
  providers.push_back(std::make_unique<video::NoisySizeProvider>(0.3, 11));
  providers.push_back(std::make_unique<video::PartialSizeProvider>(0.4, 13));
  providers.push_back(std::make_unique<video::PartialSizeProvider>(
      0.1, 17, /*known_prefix_chunks=*/20));
  providers.push_back(std::make_unique<video::OnlineCorrectedSizeProvider>(
      std::make_unique<video::DeclaredRateSizeProvider>(), 0.3));
  std::mt19937_64 rng(21);
  std::uniform_real_distribution<double> buf(0.0, 30.0);
  std::uniform_real_distribution<double> bw(3e5, 7e6);
  for (const std::unique_ptr<video::ChunkSizeProvider>& provider :
       providers) {
    abr::Mpc pruned(abr::mpc_config());
    abr::ReferenceMpc reference(abr::mpc_config());
    for (int point = 0; point < 30; ++point) {
      abr::StreamContext ctx = testutil::make_context(
          v, static_cast<std::size_t>(rng() % v.num_chunks()), buf(rng),
          bw(rng), static_cast<int>(rng() % v.num_tracks()));
      ctx.sizes = provider.get();
      const std::size_t track = expect_agree(
          pruned, reference, ctx, provider->name() + " p" +
                                      std::to_string(point));
      // Feed the correcting decorator so its EWMA state evolves (and stays
      // shared — both engines read the same provider instance).
      provider->on_actual_size(v, track, ctx.next_chunk,
                               v.chunk_size_bits(track, ctx.next_chunk));
    }
  }
}

/// Serializes every field of every ChunkRecord (plus session totals) so two
/// runs can be compared byte-for-byte.
std::string serialize_session(const sim::SessionResult& r) {
  std::ostringstream out;
  out.precision(17);
  for (const sim::ChunkRecord& c : r.chunks) {
    out << c.index << ' ' << c.track << ' ' << c.size_bits << ' '
        << c.download_s << ' ' << c.stall_s << ' ' << c.wait_s << ' '
        << c.buffer_after_s << ' ' << c.attempts << ' '
        << c.connect_failures << ' ' << c.mid_drops << ' ' << c.timeouts
        << ' ' << c.backoff_wait_s << ' ' << c.resumed_bits << ' '
        << c.wasted_bits << ' ' << c.downgraded << ' ' << c.skipped << ' '
        << c.abandoned_higher << ' ' << c.edge_hit << '\n';
  }
  out << r.total_rebuffer_s << ' ' << r.startup_delay_s << ' '
      << r.total_bits << ' ' << r.end_time_s << '\n';
  return out.str();
}

sim::SessionResult run_one(const video::Video& v, const net::Trace& trace,
                           abr::AbrScheme& scheme,
                           const sim::SessionConfig& config,
                           obs::MemoryTraceSink* sink) {
  net::HarmonicMeanEstimator estimator(5);
  sim::SessionConfig sc = config;
  sc.trace = sink;
  return sim::run_session(v, trace, scheme, estimator, sc);
}

TEST(MpcDifferential, FullSessionsByteIdenticalIncludingTelemetry) {
  const video::Video& v = synthetic_title();
  const std::vector<net::Trace> traces = {
      testutil::flat_trace(2.5e6),
      net::generate_lte_trace(3),
  };
  for (const bool robust : {false, true}) {
    for (const net::Trace& trace : traces) {
      abr::MpcConfig cfg =
          robust ? abr::robust_mpc_config() : abr::mpc_config();
      abr::Mpc pruned(cfg);
      abr::ReferenceMpc reference(cfg);
      sim::SessionConfig sc;
      obs::MemoryTraceSink sink_p;
      obs::MemoryTraceSink sink_r;
      const std::string a =
          serialize_session(run_one(v, trace, pruned, sc, &sink_p));
      const std::string b =
          serialize_session(run_one(v, trace, reference, sc, &sink_r));
      EXPECT_EQ(a, b) << (robust ? "RobustMPC " : "MPC ") << trace.name();
      // The decision stream — scheme name included — must also be
      // byte-identical, so dashboards can't tell the engines apart.
      ASSERT_EQ(sink_p.events().size(), sink_r.events().size());
      for (std::size_t i = 0; i < sink_p.events().size(); ++i) {
        EXPECT_EQ(obs::to_jsonl(sink_p.events()[i]),
                  obs::to_jsonl(sink_r.events()[i]));
      }
    }
  }
}

TEST(MpcDifferential, FaultySessionsByteIdentical) {
  const video::Video& v = synthetic_title();
  const net::Trace trace = net::generate_lte_trace(5);
  sim::SessionConfig sc;
  sc.fault.connect_failure_prob = 0.08;
  sc.fault.mid_drop_prob = 0.05;
  sc.fault.timeout_prob = 0.04;
  sc.fault.seed = 77;
  sc.retry.resume_partial = true;
  for (const bool robust : {false, true}) {
    abr::MpcConfig cfg =
        robust ? abr::robust_mpc_config() : abr::mpc_config();
    abr::Mpc pruned(cfg);
    abr::ReferenceMpc reference(cfg);
    const std::string a =
        serialize_session(run_one(v, trace, pruned, sc, nullptr));
    const std::string b =
        serialize_session(run_one(v, trace, reference, sc, nullptr));
    EXPECT_EQ(a, b) << (robust ? "RobustMPC" : "MPC");
  }
}

TEST(MpcDifferential, ScratchReuseDoesNotLeakAcrossBackToBackSessions) {
  // The pruned engine keeps arena scratch between decisions; run_session's
  // reset preamble must be the only state barrier a session needs. Running
  // two dissimilar sessions back-to-back on ONE instance must reproduce
  // fresh-instance runs byte-for-byte — on both engines, so the contract
  // holds regardless of which search is selected.
  const video::Video& v = synthetic_title();
  const video::Video small = testutil::default_flat_video(15);
  const net::Trace lte = net::generate_lte_trace(9);
  const net::Trace flat = testutil::flat_trace(1.8e6);
  sim::SessionConfig sc;
  for (const bool reference_engine : {false, true}) {
    abr::MpcConfig cfg = abr::robust_mpc_config();
    cfg.reference_search = reference_engine;
    abr::Mpc reused(cfg);
    // Dissimilar back-to-back sessions: different video (track/chunk
    // counts, so the scratch arenas get resized) and different trace.
    const std::string first_reused =
        serialize_session(run_one(v, lte, reused, sc, nullptr));
    const std::string second_reused =
        serialize_session(run_one(small, flat, reused, sc, nullptr));
    abr::Mpc fresh_a(cfg);
    abr::Mpc fresh_b(cfg);
    const std::string first_fresh =
        serialize_session(run_one(v, lte, fresh_a, sc, nullptr));
    const std::string second_fresh =
        serialize_session(run_one(small, flat, fresh_b, sc, nullptr));
    EXPECT_EQ(first_reused, first_fresh)
        << (reference_engine ? "reference" : "pruned");
    EXPECT_EQ(second_reused, second_fresh)
        << (reference_engine ? "reference" : "pruned");
  }
}

TEST(MpcDifferential, ScratchReuseSurvivesFaultySessionInBetween) {
  // A faulty session exercises retry paths and mid-session resets; the
  // session after it must still match a fresh instance exactly.
  const video::Video& v = synthetic_title();
  const net::Trace trace = net::generate_lte_trace(11);
  sim::SessionConfig faulty;
  faulty.fault.connect_failure_prob = 0.1;
  faulty.fault.mid_drop_prob = 0.06;
  faulty.fault.seed = 31;
  faulty.retry.resume_partial = true;
  sim::SessionConfig clean;
  abr::Mpc reused(abr::robust_mpc_config());
  (void)run_one(v, trace, reused, faulty, nullptr);
  const std::string after_faulty =
      serialize_session(run_one(v, trace, reused, clean, nullptr));
  abr::Mpc fresh(abr::robust_mpc_config());
  const std::string from_fresh =
      serialize_session(run_one(v, trace, fresh, clean, nullptr));
  EXPECT_EQ(after_faulty, from_fresh);
}

TEST(MpcDifferential, ReferenceFlagAndAccessorsExposed) {
  abr::Mpc pruned(abr::mpc_config());
  abr::ReferenceMpc reference(abr::robust_mpc_config());
  EXPECT_FALSE(pruned.config().reference_search);
  EXPECT_TRUE(reference.config().reference_search);
  // Same public name: the engine choice is invisible to telemetry.
  EXPECT_EQ(pruned.name(), "MPC");
  EXPECT_EQ(reference.name(), "RobustMPC");
  EXPECT_EQ(pruned.last_best_qoe(), 0.0);  // before any decision
}

}  // namespace
}  // namespace vbr
