// Tests for CSV reporting.
#include "metrics/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace vbr::metrics;

QoeSummary sample_summary() {
  QoeSummary s;
  s.q4_quality_mean = 70.5;
  s.q4_quality_median = 71.0;
  s.q13_quality_mean = 90.0;
  s.all_quality_mean = 85.0;
  s.low_quality_pct = 2.5;
  s.rebuffer_s = 1.25;
  s.startup_delay_s = 3.0;
  s.avg_quality_change = 4.2;
  s.data_usage_mb = 150.0;
  s.q4_qualities = {60.0, 81.0};
  s.q13_qualities = {88.0};
  return s;
}

TEST(Report, QoeCsvHeaderAndRows) {
  const std::vector<QoeSummary> rows = {sample_summary(), sample_summary()};
  const std::string csv = qoe_csv_string("CAVA", rows);
  std::istringstream iss(csv);
  std::string line;
  std::getline(iss, line);
  EXPECT_EQ(line,
            "label,trace_index,q4_mean,q4_median,q13_mean,all_mean,low_pct,"
            "rebuffer_s,startup_s,quality_change,data_mb");
  std::getline(iss, line);
  EXPECT_EQ(line, "CAVA,0,70.5,71,90,85,2.5,1.25,3,4.2,150");
  std::getline(iss, line);
  EXPECT_EQ(line.substr(0, 7), "CAVA,1,");
  EXPECT_FALSE(std::getline(iss, line));
}

TEST(Report, HeaderSuppressed) {
  const std::vector<QoeSummary> rows = {sample_summary()};
  std::ostringstream oss;
  write_qoe_csv(oss, "x", rows, /*include_header=*/false);
  EXPECT_EQ(oss.str().substr(0, 2), "x,");
}

TEST(Report, QualitySamples) {
  const std::vector<QoeSummary> rows = {sample_summary()};
  std::ostringstream oss;
  write_quality_samples_csv(oss, "s", rows);
  std::istringstream iss(oss.str());
  std::string line;
  std::getline(iss, line);
  EXPECT_EQ(line, "label,kind,quality");
  std::getline(iss, line);
  EXPECT_EQ(line, "s,q4,60");
  std::getline(iss, line);
  EXPECT_EQ(line, "s,q4,81");
  std::getline(iss, line);
  EXPECT_EQ(line, "s,q13,88");
}

TEST(Report, EmptyRowsGiveHeaderOnly) {
  std::ostringstream oss;
  write_qoe_csv(oss, "x", {});
  EXPECT_EQ(oss.str().find("\nx,"), std::string::npos);
  EXPECT_NE(oss.str().find("label,"), std::string::npos);
}

}  // namespace
