// Tests for the 16-video corpus factory (paper Section 2).
#include "video/dataset.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "metrics/stats.h"

namespace {

using namespace vbr::video;

DatasetConfig small_config() {
  DatasetConfig cfg;
  cfg.duration_s = 120.0;  // keep corpus tests fast
  return cfg;
}

TEST(Dataset, FullCorpusHas16Videos) {
  const auto corpus = make_full_corpus(small_config());
  EXPECT_EQ(corpus.size(), 16u);
}

TEST(Dataset, FfmpegCorpusComposition) {
  const auto corpus = make_ffmpeg_corpus(small_config());
  ASSERT_EQ(corpus.size(), 8u);
  std::size_t h264 = 0;
  std::size_t h265 = 0;
  for (const Video& v : corpus) {
    EXPECT_DOUBLE_EQ(v.chunk_duration_s(), 2.0);
    EXPECT_EQ(v.num_tracks(), 6u);
    (v.codec() == Codec::kH264 ? h264 : h265) += 1;
  }
  EXPECT_EQ(h264, 4u);
  EXPECT_EQ(h265, 4u);
}

TEST(Dataset, YoutubeCorpusComposition) {
  const auto corpus = make_youtube_corpus(small_config());
  ASSERT_EQ(corpus.size(), 8u);
  std::set<Genre> genres;
  for (const Video& v : corpus) {
    EXPECT_DOUBLE_EQ(v.chunk_duration_s(), 5.0);
    EXPECT_EQ(v.codec(), Codec::kH264);
    genres.insert(v.genre());
  }
  // All six genres appear across the YouTube set.
  EXPECT_EQ(genres.size(), 6u);
}

TEST(Dataset, NamesAreUnique) {
  const auto corpus = make_full_corpus(small_config());
  std::set<std::string> names;
  for (const Video& v : corpus) {
    names.insert(v.name());
  }
  EXPECT_EQ(names.size(), corpus.size());
}

TEST(Dataset, Deterministic) {
  const auto a = make_video("x", Genre::kSports, Codec::kH264, 2.0, 2.0, 99,
                            100.0);
  const auto b = make_video("x", Genre::kSports, Codec::kH264, 2.0, 2.0, 99,
                            100.0);
  for (std::size_t l = 0; l < a.num_tracks(); ++l) {
    for (std::size_t i = 0; i < a.num_chunks(); ++i) {
      EXPECT_DOUBLE_EQ(a.chunk_size_bits(l, i), b.chunk_size_bits(l, i));
    }
  }
}

TEST(Dataset, SameTitleDifferentCodecSharesSceneTrace) {
  // H.264 and H.265 encodes of the same title have identical source SI/TI.
  const auto corpus = make_ffmpeg_corpus(small_config());
  const Video& h264 = find_video(corpus, "ED-ffmpeg-h264");
  const Video& h265 = find_video(corpus, "ED-ffmpeg-h265");
  for (std::size_t i = 0; i < h264.num_chunks(); ++i) {
    EXPECT_DOUBLE_EQ(h264.scene_info(i).si, h265.scene_info(i).si);
    EXPECT_DOUBLE_EQ(h264.scene_info(i).ti, h265.scene_info(i).ti);
  }
}

TEST(Dataset, ChunkCountMatchesDuration) {
  const Video v =
      make_video("x", Genre::kNature, Codec::kH264, 2.0, 2.0, 1, 600.0);
  EXPECT_EQ(v.num_chunks(), 300u);
  const Video w =
      make_video("y", Genre::kNature, Codec::kH264, 5.0, 2.0, 1, 600.0);
  EXPECT_EQ(w.num_chunks(), 120u);
}

TEST(Dataset, BadDurationsThrow) {
  EXPECT_THROW(
      (void)make_video("x", Genre::kNature, Codec::kH264, 0.0, 2.0, 1),
      std::invalid_argument);
  EXPECT_THROW(
      (void)make_video("x", Genre::kNature, Codec::kH264, 5.0, 2.0, 1, 3.0),
      std::invalid_argument);
}

TEST(Dataset, FourXCappedVideoHasHigherPeaks) {
  DatasetConfig cfg = small_config();
  const Video v4 = make_4x_capped_video(cfg);
  const auto corpus = make_ffmpeg_corpus(cfg);
  const Video& v2 = find_video(corpus, "ED-ffmpeg-h264");
  const std::size_t top = v2.num_tracks() - 1;
  EXPECT_GT(v4.track(top).peak_to_average(), v2.track(top).peak_to_average());
}

TEST(Dataset, FindVideoThrowsOnMissing) {
  const auto corpus = make_ffmpeg_corpus(small_config());
  EXPECT_THROW((void)find_video(corpus, "nope"), std::out_of_range);
}

TEST(Dataset, CrossTrackSizeRankCorrelationNearOne) {
  // Section 3.1.1 property 2: relative chunk sizes are consistent across
  // tracks.
  const Video v = make_video("x", Genre::kSciFi, Codec::kH264, 2.0, 2.0, 5,
                             300.0);
  const auto mid = v.track(v.middle_track()).chunk_sizes_bits();
  for (std::size_t l = 0; l < v.num_tracks(); ++l) {
    const double corr =
        vbr::stats::spearman(v.track(l).chunk_sizes_bits(), mid);
    EXPECT_GT(corr, 0.95) << "track " << l;
  }
}

// Parameterized over the full corpus: paper Section 2 statistics hold for
// every video.
class CorpusStatsTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  static const std::vector<Video>& corpus() {
    static const std::vector<Video> c = make_full_corpus();
    return c;
  }
};

TEST_P(CorpusStatsTest, BitrateVariabilityAndLadder) {
  const Video& v = corpus()[GetParam()];
  for (std::size_t l = 1; l < v.num_tracks(); ++l) {
    EXPECT_GT(v.track(l).average_bitrate_bps(),
              v.track(l - 1).average_bitrate_bps());
  }
  // CoV of the upper tracks in (0.25, 0.75); peak/avg within (1.1, 2.5).
  for (std::size_t l = 2; l < v.num_tracks(); ++l) {
    const double cov = vbr::stats::coefficient_of_variation(
        v.track(l).chunk_bitrates_bps());
    EXPECT_GT(cov, 0.25) << v.name() << " track " << l;
    EXPECT_LT(cov, 0.75) << v.name() << " track " << l;
    EXPECT_GT(v.track(l).peak_to_average(), 1.1);
    EXPECT_LT(v.track(l).peak_to_average(), 2.5);
  }
  // The lowest track is the least variable (Section 2).
  const double cov0 = vbr::stats::coefficient_of_variation(
      v.track(0).chunk_bitrates_bps());
  const double cov_top = vbr::stats::coefficient_of_variation(
      v.track(v.num_tracks() - 1).chunk_bitrates_bps());
  EXPECT_LT(cov0, cov_top);
}

INSTANTIATE_TEST_SUITE_P(All16, CorpusStatsTest,
                         ::testing::Range<std::size_t>(0, 16));

}  // namespace
