// Robustness suite: degenerate and extreme inputs must not crash or break
// invariants for any scheme — 2-track and 10-track ladders, one-chunk
// videos, sub-second chunks, near-zero and enormous bandwidths.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <tuple>

#include "abr/bba.h"
#include "abr/bola.h"
#include "abr/festive.h"
#include "abr/mpc.h"
#include "abr/panda_cq.h"
#include "abr/rba.h"
#include "abr/throughput_rule.h"
#include "core/cava.h"
#include "core/pia.h"
#include "net/bandwidth_estimator.h"
#include "sim/session.h"
#include "test_util.h"

namespace {

using namespace vbr;

using SchemeMaker = std::unique_ptr<abr::AbrScheme> (*)();

std::unique_ptr<abr::AbrScheme> mk_cava() { return core::make_cava_p123(); }
std::unique_ptr<abr::AbrScheme> mk_pia() {
  return std::make_unique<core::Pia>();
}
std::unique_ptr<abr::AbrScheme> mk_mpc() {
  return std::make_unique<abr::Mpc>(abr::robust_mpc_config());
}
std::unique_ptr<abr::AbrScheme> mk_panda() {
  return std::make_unique<abr::PandaCq>();
}
std::unique_ptr<abr::AbrScheme> mk_bola() {
  return std::make_unique<abr::Bola>();
}
std::unique_ptr<abr::AbrScheme> mk_bba() {
  return std::make_unique<abr::Bba>();
}
std::unique_ptr<abr::AbrScheme> mk_bba0() {
  return std::make_unique<abr::Bba0>();
}
std::unique_ptr<abr::AbrScheme> mk_rba() {
  return std::make_unique<abr::Rba>();
}
std::unique_ptr<abr::AbrScheme> mk_festive() {
  return std::make_unique<abr::Festive>();
}
std::unique_ptr<abr::AbrScheme> mk_dynamic() {
  return std::make_unique<abr::DynamicRule>();
}

enum class Shape {
  kTwoTracks,
  kTenTracks,
  kSingleChunk,
  kSubSecondChunks,
  kHugeChunks,
};

video::Video make_shape(Shape shape) {
  switch (shape) {
    case Shape::kTwoTracks:
      return testutil::make_flat_video({3e5, 2e6}, 30);
    case Shape::kTenTracks: {
      std::vector<double> rates;
      double r = 1e5;
      for (int i = 0; i < 10; ++i) {
        rates.push_back(r);
        r *= 1.7;
      }
      return testutil::make_flat_video(rates, 30);
    }
    case Shape::kSingleChunk:
      return testutil::make_flat_video({3e5, 2e6}, 1);
    case Shape::kSubSecondChunks:
      return testutil::make_flat_video({3e5, 1e6, 3e6}, 100, 0.5);
    case Shape::kHugeChunks:
      return testutil::make_flat_video({3e5, 1e6, 3e6}, 20, 10.0);
  }
  return testutil::default_flat_video(10);
}

class RobustnessTest
    : public ::testing::TestWithParam<std::tuple<SchemeMaker, Shape>> {};

TEST_P(RobustnessTest, SessionCompletesWithInvariants) {
  const auto [maker, shape] = GetParam();
  const video::Video v = make_shape(shape);
  sim::SessionConfig cfg;
  cfg.startup_latency_s = std::min(4.0, v.duration_s());
  cfg.max_buffer_s = 100.0;

  for (const double bw : {2e4, 5e5, 5e6, 1e9}) {
    const net::Trace t = testutil::flat_trace(bw, 36000.0);
    const auto scheme = maker();
    net::HarmonicMeanEstimator est(5);
    const sim::SessionResult r = sim::run_session(v, t, *scheme, est, cfg);
    ASSERT_EQ(r.chunks.size(), v.num_chunks());
    for (const auto& c : r.chunks) {
      ASSERT_LT(c.track, v.num_tracks());
      EXPECT_GT(c.download_s, 0.0);
      EXPECT_LE(c.buffer_after_s, cfg.max_buffer_s + 1e-9);
    }
    EXPECT_GE(r.total_rebuffer_s, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAllShapes, RobustnessTest,
    ::testing::Combine(::testing::Values(mk_cava, mk_pia, mk_mpc, mk_panda,
                                         mk_bola, mk_bba, mk_bba0, mk_rba,
                                         mk_festive, mk_dynamic),
                       ::testing::Values(Shape::kTwoTracks,
                                         Shape::kTenTracks,
                                         Shape::kSingleChunk,
                                         Shape::kSubSecondChunks,
                                         Shape::kHugeChunks)));

// Fault matrix: every scheme must survive each injected fault kind — and
// the retry-exhaustion extreme where every attempt fails — while keeping
// the session invariants (all chunk positions accounted for, buffer cap
// respected, non-negative stalls, skips only after exhausting attempts).
enum class FaultMix { kHardFail, kMidDrop, kTimeout, kExhaustion };

net::FaultConfig make_fault(FaultMix mix) {
  net::FaultConfig fc;
  fc.seed = 0xF00D;
  switch (mix) {
    case FaultMix::kHardFail: fc.connect_failure_prob = 0.25; break;
    case FaultMix::kMidDrop: fc.mid_drop_prob = 0.25; break;
    case FaultMix::kTimeout: fc.timeout_prob = 0.25; break;
    case FaultMix::kExhaustion: fc.connect_failure_prob = 1.0; break;
  }
  return fc;
}

class FaultMatrixTest
    : public ::testing::TestWithParam<std::tuple<SchemeMaker, FaultMix>> {};

TEST_P(FaultMatrixTest, SessionSurvivesInjectedFaults) {
  const auto [maker, mix] = GetParam();
  const video::Video v = testutil::default_flat_video(40);
  const net::Trace t = testutil::flat_trace(4e6, 36000.0);
  sim::SessionConfig cfg;
  cfg.startup_latency_s = 4.0;
  cfg.max_buffer_s = 60.0;
  cfg.fault = make_fault(mix);
  cfg.retry.max_attempts = mix == FaultMix::kExhaustion ? 2 : 3;

  const auto scheme = maker();
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r = sim::run_session(v, t, *scheme, est, cfg);

  ASSERT_EQ(r.chunks.size(), v.num_chunks()) << scheme->name();
  for (const auto& c : r.chunks) {
    ASSERT_LT(c.track, v.num_tracks());
    EXPECT_LE(c.buffer_after_s, cfg.max_buffer_s + 1e-9);
    EXPECT_GE(c.stall_s, 0.0);
    EXPECT_GE(c.attempts, 1u);
    EXPECT_LE(c.attempts, cfg.retry.max_attempts);
    if (c.skipped) {
      EXPECT_EQ(c.attempts, cfg.retry.max_attempts);
      EXPECT_DOUBLE_EQ(c.size_bits, 0.0);
    } else {
      EXPECT_GT(c.size_bits, 0.0);
      EXPECT_GT(c.download_s, 0.0);
    }
  }
  EXPECT_GE(r.total_rebuffer_s, 0.0);
  if (mix == FaultMix::kExhaustion) {
    // Every attempt hard-fails: every chunk is skipped, none plays, and the
    // session still runs to completion instead of aborting.
    for (const auto& c : r.chunks) {
      EXPECT_TRUE(c.skipped);
    }
    EXPECT_DOUBLE_EQ(r.total_bits, 0.0);
  } else {
    const metrics::FaultSummary fs = r.fault_summary();
    EXPECT_GT(fs.connect_failures + fs.mid_drops + fs.timeouts, 0u)
        << scheme->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAllFaults, FaultMatrixTest,
    ::testing::Combine(::testing::Values(mk_cava, mk_pia, mk_mpc, mk_panda,
                                         mk_bola, mk_bba, mk_bba0, mk_rba,
                                         mk_festive, mk_dynamic),
                       ::testing::Values(FaultMix::kHardFail,
                                         FaultMix::kMidDrop,
                                         FaultMix::kTimeout,
                                         FaultMix::kExhaustion)));

// Outage-heavy trace: long zero-bandwidth stretches must elapse, not hang.
TEST(Robustness, ZeroBandwidthStretches) {
  const video::Video v = testutil::default_flat_video(10);
  std::vector<double> samples(600, 0.0);
  for (std::size_t i = 0; i < samples.size(); i += 10) {
    samples[i] = 2e6;  // one good second in ten
  }
  const net::Trace t("gappy", 1.0, std::move(samples));
  auto cava = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  const sim::SessionResult r = sim::run_session(v, t, *cava, est);
  EXPECT_EQ(r.chunks.size(), v.num_chunks());
  EXPECT_GT(r.end_time_s, 0.0);
}

// Defensive input guards: malformed context values must be rejected with a
// clear exception before any scheme arithmetic can propagate them. NaN is
// the treacherous case — it compares false against every threshold
// (NaN <= 0 is false), so only an explicit isnan/isfinite check stops it.
class InputValidationTest : public ::testing::TestWithParam<SchemeMaker> {};

TEST_P(InputValidationTest, NonFiniteBandwidthIsRejected) {
  const video::Video v = testutil::default_flat_video(10);
  for (const double bw : {std::numeric_limits<double>::quiet_NaN(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity()}) {
    const auto scheme = GetParam()();
    const abr::StreamContext ctx = testutil::make_context(v, 0, 5.0, bw);
    EXPECT_THROW((void)scheme->decide(ctx), std::invalid_argument)
        << scheme->name() << " accepted bandwidth " << bw;
  }
}

TEST_P(InputValidationTest, NonFiniteBufferOrClockIsRejected) {
  const video::Video v = testutil::default_flat_video(10);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const double buf : {nan, inf, -1.0}) {
    const auto scheme = GetParam()();
    const abr::StreamContext ctx = testutil::make_context(v, 0, buf, 2e6);
    EXPECT_THROW((void)scheme->decide(ctx), std::invalid_argument)
        << scheme->name() << " accepted buffer " << buf;
  }
  for (const double now : {nan, inf}) {
    const auto scheme = GetParam()();
    abr::StreamContext ctx = testutil::make_context(v, 0, 5.0, 2e6);
    ctx.now_s = now;
    EXPECT_THROW((void)scheme->decide(ctx), std::invalid_argument)
        << scheme->name() << " accepted clock " << now;
  }
}

TEST_P(InputValidationTest, ZeroOrTinyBandwidthNeverCrashes) {
  const video::Video v = testutil::default_flat_video(10);
  for (const double bw : {0.0, 1e-9}) {
    const auto scheme = GetParam()();
    const abr::StreamContext ctx = testutil::make_context(v, 0, 5.0, bw);
    try {
      const abr::Decision d = scheme->decide(ctx);
      EXPECT_LT(d.track, v.num_tracks()) << scheme->name();
    } catch (const std::invalid_argument&) {
      // Refusing a non-positive estimate outright is also acceptable —
      // what is not acceptable is UB or a nonsense track.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, InputValidationTest,
                         ::testing::Values(mk_cava, mk_pia, mk_mpc, mk_panda,
                                           mk_bola, mk_bba, mk_bba0, mk_rba,
                                           mk_festive, mk_dynamic));

TEST(InputValidation, EmptyLadderIsRejected) {
  EXPECT_THROW(video::Video("none", video::Genre::kAnimation, {}, {}),
               std::invalid_argument);
}

TEST(InputValidation, NonFiniteOrZeroChunkGeometryIsRejected) {
  std::vector<video::Chunk> good(3);
  for (video::Chunk& c : good) {
    c.size_bits = 1e6;
    c.duration_s = 2.0;
  }
  const auto expect_rejected = [&](std::size_t idx, double size_bits,
                                   double duration_s) {
    std::vector<video::Chunk> bad = good;
    bad[idx].size_bits = size_bits;
    bad[idx].duration_s = duration_s;
    EXPECT_THROW(video::Track(0, video::kLadder144p, video::Codec::kH264,
                              std::move(bad)),
                 std::invalid_argument)
        << "size=" << size_bits << " dur=" << duration_s;
  };
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  expect_rejected(1, 1e6, 0.0);    // zero-duration chunk
  expect_rejected(1, 1e6, -2.0);   // negative duration
  expect_rejected(1, 1e6, nan);    // NaN duration
  expect_rejected(2, 0.0, 2.0);    // zero-size chunk
  expect_rejected(2, -1e6, 2.0);   // negative size
  expect_rejected(2, nan, 2.0);    // NaN size
  expect_rejected(0, inf, 2.0);    // infinite size
}

// A scheme must behave when the bandwidth estimate is wildly wrong in both
// directions during one session.
TEST(Robustness, OscillatingBandwidth) {
  const video::Video v = testutil::default_flat_video(60);
  std::vector<double> samples;
  for (int i = 0; i < 1200; ++i) {
    samples.push_back(i % 20 < 10 ? 8e6 : 2e5);  // 10 s square wave
  }
  const net::Trace t("square", 1.0, std::move(samples));
  for (const SchemeMaker maker :
       {mk_cava, mk_mpc, mk_panda, mk_bola, mk_festive}) {
    const auto scheme = maker();
    net::HarmonicMeanEstimator est(5);
    const sim::SessionResult r = sim::run_session(v, t, *scheme, est);
    EXPECT_EQ(r.chunks.size(), v.num_chunks()) << scheme->name();
  }
}

}  // namespace
