// Per-session watchdog budgets: deterministic aborts of runaway sessions
// (decision-count and simulated-time caps), plus the fleet-level accounting
// that keeps aborted sessions visible in FleetResult and its report JSON.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "abr/scheme.h"
#include "fleet/fleet.h"
#include "net/bandwidth_estimator.h"
#include "sim/session.h"
#include "test_util.h"

namespace {

using namespace vbr;
using testutil::default_flat_video;
using testutil::flat_trace;

sim::SessionConfig quick_config() {
  sim::SessionConfig cfg;
  cfg.startup_latency_s = 4.0;
  cfg.max_buffer_s = 30.0;
  return cfg;
}

sim::SessionResult run(const sim::SessionConfig& cfg, std::size_t chunks = 20) {
  const video::Video v = default_flat_video(chunks);
  const net::Trace t = flat_trace(5e6);
  abr::FixedTrackScheme scheme(2);
  net::HarmonicMeanEstimator est(5);
  return sim::run_session(v, t, scheme, est, cfg);
}

TEST(Watchdog, OffByDefaultAndChangesNothing) {
  const sim::SessionResult base = run(quick_config());
  EXPECT_FALSE(base.watchdog_aborted);
  EXPECT_EQ(base.chunks.size(), 20u);

  // Generous budgets that never fire leave the run untouched.
  sim::SessionConfig cfg = quick_config();
  cfg.watchdog_max_decisions = 1000;
  cfg.watchdog_max_sim_s = 1e6;
  const sim::SessionResult guarded = run(cfg);
  EXPECT_FALSE(guarded.watchdog_aborted);
  EXPECT_EQ(guarded.chunks.size(), base.chunks.size());
  EXPECT_EQ(guarded.total_bits, base.total_bits);
}

TEST(Watchdog, DecisionBudgetAbortsDeterministically) {
  sim::SessionConfig cfg = quick_config();
  cfg.watchdog_max_decisions = 7;
  const sim::SessionResult r = run(cfg);
  EXPECT_TRUE(r.watchdog_aborted);
  EXPECT_EQ(r.chunks.size(), 7u);
  // The budget is a pure function of sim state: rerunning is identical.
  const sim::SessionResult again = run(cfg);
  EXPECT_EQ(again.chunks.size(), 7u);
  EXPECT_EQ(again.total_bits, r.total_bits);
}

TEST(Watchdog, SimTimeBudgetAborts) {
  // At 5 Mbps each 1.6 Mb chunk takes 0.32 s; a 1 s sim budget stops the
  // session after roughly three decisions rather than twenty.
  sim::SessionConfig cfg = quick_config();
  cfg.watchdog_max_sim_s = 1.0;
  const sim::SessionResult r = run(cfg);
  EXPECT_TRUE(r.watchdog_aborted);
  EXPECT_LT(r.chunks.size(), 20u);
  EXPECT_GE(r.chunks.size(), 1u);
}

TEST(Watchdog, NegativeSimBudgetRejected) {
  sim::SessionConfig cfg = quick_config();
  cfg.watchdog_max_sim_s = -1.0;
  EXPECT_THROW((void)run(cfg), std::invalid_argument);
}

TEST(Watchdog, FleetCountsAbortedSessionsAndReportsThem) {
  std::vector<net::Trace> traces;
  traces.push_back(flat_trace(4e6, 600.0));

  fleet::FleetSpec spec;
  spec.catalog.num_titles = 4;
  spec.catalog.title_duration_s = 40.0;
  spec.arrivals.rate_per_s = 0.3;
  spec.arrivals.horizon_s = 150.0;
  spec.arrivals.max_sessions = 20;
  spec.classes.resize(1);
  spec.classes[0].label = "fixed";
  spec.classes[0].make_scheme = [] {
    return std::make_unique<abr::FixedTrackScheme>(1);
  };
  spec.traces = traces;
  spec.watch.full_watch_prob = 1.0;  // everyone watches to the end
  spec.session.startup_latency_s = 4.0;
  spec.threads = 2;

  const fleet::FleetResult base = fleet::run_fleet(spec);
  EXPECT_EQ(base.watchdog_aborted_sessions, 0u);

  // A 2-decision budget trips every session (titles are 20 chunks).
  spec.session.watchdog_max_decisions = 2;
  const fleet::FleetResult capped = fleet::run_fleet(spec);
  EXPECT_EQ(capped.watchdog_aborted_sessions, capped.sessions.size());
  for (const fleet::FleetSessionRecord& rec : capped.sessions) {
    EXPECT_TRUE(rec.watchdog_aborted);
    EXPECT_LE(rec.chunks, 2u);
  }

  // Accounting is visible in the serialized report, not just the struct.
  std::ostringstream json;
  capped.write_json(json);
  EXPECT_NE(json.str().find("\"watchdog_aborted\":" +
                            std::to_string(capped.sessions.size())),
            std::string::npos);
  std::ostringstream base_json;
  base.write_json(base_json);
  EXPECT_NE(base_json.str().find("\"watchdog_aborted\":0"),
            std::string::npos);
}

}  // namespace
