// Replay-verified invariant tests: every DecisionEvent stream a session
// emits must satisfy the physical invariants of the simulator (buffer never
// negative, bits conserved, rebuffer accounting consistent with the QoE
// layer, monotone sim clock), across the fault-free path, fault injection
// with retry/resume, abandonment, the live session, and multi-client runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/cava.h"
#include "metrics/qoe.h"
#include "net/bandwidth_estimator.h"
#include "net/trace_gen.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "sim/live_session.h"
#include "sim/multi_client.h"
#include "sim/session.h"
#include "test_util.h"
#include "video/dataset.h"

namespace {

using namespace vbr;
using testutil::default_flat_video;
using testutil::flat_trace;

constexpr double kTol = 1e-9;

/// Checks the invariants every per-session event stream must satisfy.
/// `max_buffer_s` bounds buffer_after; a live session's latency budget can
/// bind tighter, so callers pass the looser cap they configured.
void check_stream_invariants(const std::deque<obs::DecisionEvent>& events,
                             double max_buffer_s) {
  double prev_sim_now = 0.0;
  double prev_cum_rebuffer = 0.0;
  std::vector<bool> seen;
  for (std::size_t k = 0; k < events.size(); ++k) {
    const obs::DecisionEvent& ev = events[k];
    SCOPED_TRACE("event seq " + std::to_string(ev.seq));

    // Sequence numbers are dense and ordered.
    EXPECT_EQ(ev.seq, k);

    // Sim clock: decisions happen at or before resolution, and resolution
    // times never run backwards.
    EXPECT_LE(ev.decision_now_s, ev.sim_now_s + kTol);
    EXPECT_GE(ev.sim_now_s, prev_sim_now - kTol);
    prev_sim_now = ev.sim_now_s;

    // Buffer: never negative, never past the configured cap.
    EXPECT_GE(ev.buffer_before_s, -kTol);
    EXPECT_GE(ev.buffer_after_s, -kTol);
    EXPECT_LE(ev.buffer_before_s, max_buffer_s + kTol);
    EXPECT_LE(ev.buffer_after_s, max_buffer_s + kTol);

    // Rebuffer: cumulative total is non-decreasing and grows at least by
    // this chunk's own stall.
    EXPECT_GE(ev.cum_rebuffer_s, prev_cum_rebuffer - kTol);
    EXPECT_GE(ev.cum_rebuffer_s - prev_cum_rebuffer, ev.stall_s - kTol);
    prev_cum_rebuffer = ev.cum_rebuffer_s;

    // Durations, sizes, and fault counters are non-negative; a skipped
    // chunk transferred nothing.
    EXPECT_GE(ev.wait_s, -kTol);
    EXPECT_GE(ev.download_s, -kTol);
    EXPECT_GE(ev.stall_s, -kTol);
    EXPECT_GE(ev.size_bits, -kTol);
    EXPECT_GE(ev.wasted_bits, -kTol);
    EXPECT_GE(ev.resumed_bits, -kTol);
    EXPECT_GE(ev.backoff_wait_s, -kTol);
    EXPECT_GE(ev.attempts, 1u);
    if (ev.skipped) {
      EXPECT_DOUBLE_EQ(ev.size_bits, 0.0);
      EXPECT_DOUBLE_EQ(ev.download_s, 0.0);
    }

    // Chunk indices: each position resolved exactly once, in order.
    if (ev.chunk_index >= seen.size()) {
      seen.resize(ev.chunk_index + 1, false);
    }
    EXPECT_FALSE(seen[ev.chunk_index]) << "chunk resolved twice";
    seen[ev.chunk_index] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }))
      << "a chunk index was never resolved";
}

/// Cross-checks the event stream against the SessionResult it narrates and
/// the QoE layer's view of the same session.
void check_stream_against_result(const std::deque<obs::DecisionEvent>& events,
                                 const sim::SessionResult& result,
                                 std::size_t num_chunks) {
  ASSERT_EQ(events.size(), result.chunks.size());
  ASSERT_EQ(events.size(), num_chunks);

  // Downloaded-bits conservation: everything the wire carried is either a
  // delivered chunk or explicitly accounted waste.
  double event_bits = 0.0;
  for (const obs::DecisionEvent& ev : events) {
    event_bits += ev.size_bits + ev.wasted_bits;
  }
  EXPECT_NEAR(event_bits, result.total_bits,
              1e-6 * std::max(1.0, result.total_bits));

  // Rebuffer: the stream's final cumulative total is the session total, and
  // the QoE summary reports exactly that number.
  EXPECT_NEAR(events.back().cum_rebuffer_s, result.total_rebuffer_s, kTol);
  const std::vector<std::size_t> classes(num_chunks, 0);
  const auto played =
      result.to_played_chunks(video::QualityMetric::kVmafPhone, classes);
  if (!played.empty()) {
    const metrics::QoeSummary qoe = metrics::compute_qoe(
        played, result.total_rebuffer_s, result.startup_delay_s);
    EXPECT_DOUBLE_EQ(qoe.rebuffer_s, events.back().cum_rebuffer_s);
  }

  // Per-event fields mirror the chunk records.
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].chunk_index, result.chunks[k].index);
    EXPECT_EQ(events[k].track, result.chunks[k].track);
    EXPECT_DOUBLE_EQ(events[k].download_s, result.chunks[k].download_s);
    EXPECT_DOUBLE_EQ(events[k].buffer_after_s,
                     result.chunks[k].buffer_after_s);
    EXPECT_EQ(events[k].skipped, result.chunks[k].skipped);
  }
}

/// Metrics registry totals must equal the aggregates recomputed from the
/// event stream — the registry is a projection of the trace, not a second
/// source of truth.
void check_metrics_against_stream(
    obs::MetricsRegistry& reg, const std::deque<obs::DecisionEvent>& events) {
  double attempts = 0.0;
  double connect = 0.0;
  double drops = 0.0;
  double timeouts = 0.0;
  double skipped = 0.0;
  double downloaded = 0.0;
  double bits = 0.0;
  double wasted = 0.0;
  for (const obs::DecisionEvent& ev : events) {
    attempts += static_cast<double>(ev.attempts);
    connect += static_cast<double>(ev.connect_failures);
    drops += static_cast<double>(ev.mid_drops);
    timeouts += static_cast<double>(ev.timeouts);
    skipped += ev.skipped ? 1.0 : 0.0;
    downloaded += ev.skipped ? 0.0 : 1.0;
    bits += ev.size_bits;
    wasted += ev.wasted_bits;
  }
  EXPECT_DOUBLE_EQ(reg.counter("chunks_total").value(),
                   static_cast<double>(events.size()));
  EXPECT_DOUBLE_EQ(reg.counter("chunks_downloaded").value(), downloaded);
  EXPECT_DOUBLE_EQ(reg.counter("chunks_skipped").value(), skipped);
  EXPECT_DOUBLE_EQ(reg.counter("retry_exhaustions").value(), skipped);
  EXPECT_DOUBLE_EQ(reg.counter("download_attempts").value(), attempts);
  EXPECT_DOUBLE_EQ(reg.counter("connect_failures").value(), connect);
  EXPECT_DOUBLE_EQ(reg.counter("mid_drops").value(), drops);
  EXPECT_DOUBLE_EQ(reg.counter("timeouts").value(), timeouts);
  EXPECT_DOUBLE_EQ(reg.counter("bits_downloaded").value(), bits);
  EXPECT_DOUBLE_EQ(reg.counter("bits_wasted").value(), wasted);
  EXPECT_NEAR(reg.counter("rebuffer_seconds").value(),
              events.empty() ? 0.0 : events.back().cum_rebuffer_s, kTol);
  EXPECT_EQ(
      reg.histogram("download_seconds", obs::download_seconds_bounds())
          .count(),
      static_cast<std::uint64_t>(downloaded));
}

TEST(TelemetryReplay, FaultFreeCavaOnRealisticTrace) {
  const video::Video v =
      video::make_video("ED", video::Genre::kAnimation, video::Codec::kH264,
                        2.0, 2.0, 42, 240.0);
  const net::Trace t = net::generate_lte_trace(3);
  auto cava = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  obs::MemoryTraceSink sink;
  obs::MetricsRegistry reg;
  sim::SessionConfig cfg;
  cfg.trace = &sink;
  cfg.metrics = &reg;
  const sim::SessionResult r = sim::run_session(v, t, *cava, est, cfg);
  check_stream_invariants(sink.events(), cfg.max_buffer_s);
  check_stream_against_result(sink.events(), r, v.num_chunks());
  check_metrics_against_stream(reg, sink.events());
}

TEST(TelemetryReplay, FaultsWithRetryAndResume) {
  const video::Video v = default_flat_video(80);
  const net::Trace t = flat_trace(2e6);
  auto cava = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  obs::MemoryTraceSink sink;
  obs::MetricsRegistry reg;
  sim::SessionConfig cfg;
  cfg.fault.connect_failure_prob = 0.15;
  cfg.fault.mid_drop_prob = 0.10;
  cfg.fault.timeout_prob = 0.05;
  cfg.fault.seed = 99;
  cfg.retry.resume_partial = true;
  cfg.trace = &sink;
  cfg.metrics = &reg;
  const sim::SessionResult r = sim::run_session(v, t, *cava, est, cfg);
  // The fault stream must actually have fired, or this test checks nothing.
  EXPECT_GT(reg.counter("connect_failures").value() +
                reg.counter("mid_drops").value() +
                reg.counter("timeouts").value(),
            0.0);
  check_stream_invariants(sink.events(), cfg.max_buffer_s);
  check_stream_against_result(sink.events(), r, v.num_chunks());
  check_metrics_against_stream(reg, sink.events());
}

TEST(TelemetryReplay, RetryExhaustionMarksSkips) {
  const video::Video v = default_flat_video(60);
  const net::Trace t = flat_trace(2e6);
  auto cava = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  obs::MemoryTraceSink sink;
  obs::MetricsRegistry reg;
  sim::SessionConfig cfg;
  cfg.fault.connect_failure_prob = 0.45;  // hostile: exhaustions guaranteed
  cfg.fault.seed = 7;
  cfg.retry.max_attempts = 2;
  cfg.retry.downgrade_on_failure = false;
  cfg.trace = &sink;
  cfg.metrics = &reg;
  const sim::SessionResult r = sim::run_session(v, t, *cava, est, cfg);
  EXPECT_GT(reg.counter("chunks_skipped").value(), 0.0);
  check_stream_invariants(sink.events(), cfg.max_buffer_s);
  check_stream_against_result(sink.events(), r, v.num_chunks());
  check_metrics_against_stream(reg, sink.events());
}

TEST(TelemetryReplay, AbandonmentAccountsWaste) {
  // Slow trace + high fixed track forces AbandonRequestsRule aborts.
  const video::Video v = default_flat_video(40);
  const net::Trace t = flat_trace(8e5);
  abr::FixedTrackScheme scheme(5);
  net::HarmonicMeanEstimator est(5);
  obs::MemoryTraceSink sink;
  obs::MetricsRegistry reg;
  sim::SessionConfig cfg;
  cfg.enable_abandonment = true;
  cfg.trace = &sink;
  cfg.metrics = &reg;
  const sim::SessionResult r = sim::run_session(v, t, scheme, est, cfg);
  EXPECT_GT(reg.counter("chunks_abandoned").value(), 0.0);
  EXPECT_GT(reg.counter("bits_wasted").value(), 0.0);
  check_stream_invariants(sink.events(), cfg.max_buffer_s);
  check_stream_against_result(sink.events(), r, v.num_chunks());
  check_metrics_against_stream(reg, sink.events());
}

TEST(TelemetryReplay, LiveSessionStreamHoldsInvariants) {
  const video::Video v =
      video::make_video("TS", video::Genre::kSports, video::Codec::kH264,
                        2.0, 2.0, 11, 240.0);
  const net::Trace t = net::generate_lte_trace(5);
  auto cava = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  obs::MemoryTraceSink sink;
  obs::MetricsRegistry reg;
  sim::LiveSessionConfig cfg;
  cfg.trace = &sink;
  cfg.metrics = &reg;
  const sim::LiveSessionResult r =
      sim::run_live_session(v, t, *cava, est, cfg);
  check_stream_invariants(sink.events(), cfg.max_buffer_s);
  check_stream_against_result(sink.events(), r.session, v.num_chunks());
  check_metrics_against_stream(reg, sink.events());
}

TEST(TelemetryReplay, MultiClientStreamsAreTaggedAndConsistent) {
  const video::Video v = default_flat_video(40);
  const net::Trace t = flat_trace(6e6);
  std::vector<sim::ClientSpec> clients;
  for (int c = 0; c < 3; ++c) {
    sim::ClientSpec spec;
    spec.video = &v;
    spec.scheme = core::make_cava_p123();
    spec.estimator = std::make_unique<net::HarmonicMeanEstimator>(5);
    clients.push_back(std::move(spec));
  }
  obs::MemoryTraceSink sink;
  obs::MetricsRegistry reg;
  sim::SessionConfig cfg;
  cfg.trace = &sink;
  cfg.metrics = &reg;
  cfg.session_id = 100;
  const sim::MultiClientResult r =
      sim::run_multi_client(t, std::move(clients), cfg);
  ASSERT_EQ(r.sessions.size(), 3u);

  // 3 clients x 40 chunks, each event tagged with its client's session id.
  EXPECT_EQ(sink.events().size(), 120u);
  for (std::uint64_t c = 0; c < 3; ++c) {
    std::deque<obs::DecisionEvent> per_client;
    for (const obs::DecisionEvent& ev : sink.events()) {
      if (ev.session_id == 100 + c) {
        per_client.push_back(ev);
      }
    }
    SCOPED_TRACE("client " + std::to_string(c));
    ASSERT_EQ(per_client.size(), 40u);
    // Per-client seq is dense 0..39 in emission order.
    for (std::size_t k = 0; k < per_client.size(); ++k) {
      EXPECT_EQ(per_client[k].seq, k);
      EXPECT_EQ(per_client[k].chunk_index, r.sessions[c].chunks[k].index);
      EXPECT_EQ(per_client[k].track, r.sessions[c].chunks[k].track);
    }
    EXPECT_NEAR(per_client.back().cum_rebuffer_s,
                r.sessions[c].total_rebuffer_s, kTol);
  }

  // The shared registry holds the union across clients.
  double bits = 0.0;
  for (const sim::SessionResult& s : r.sessions) {
    bits += s.total_bits;
  }
  EXPECT_NEAR(reg.counter("bits_downloaded").value() +
                  reg.counter("bits_wasted").value(),
              bits, 1e-6 * std::max(1.0, bits));
  EXPECT_DOUBLE_EQ(reg.counter("chunks_total").value(), 120.0);
}

TEST(TelemetryReplay, CavaInternalsObeyControllerContracts) {
  const video::Video v =
      video::make_video("BBB", video::Genre::kAction, video::Codec::kH264,
                        2.0, 2.0, 17, 240.0);
  const net::Trace t = net::generate_fcc_trace(13);
  auto cava = core::make_cava_p123();
  net::HarmonicMeanEstimator est(5);
  obs::MemoryTraceSink sink;
  sim::SessionConfig cfg;
  cfg.trace = &sink;
  (void)sim::run_session(v, t, *cava, est, cfg);
  for (const obs::DecisionEvent& ev : sink.events()) {
    ASSERT_TRUE(ev.controller.has_value());
    const obs::ControllerInternals& c = *ev.controller;
    // The outer controller's target is a buffer level: positive and within
    // the session cap.
    EXPECT_GT(c.target_buffer_s, 0.0);
    EXPECT_LE(c.target_buffer_s, cfg.max_buffer_s + kTol);
    // error = target - current buffer, as recorded at decision time.
    EXPECT_NEAR(c.error_s, c.target_buffer_s - ev.buffer_before_s, 1e-6);
    // Classifier buckets are Q1..Q4.
    EXPECT_LT(c.complexity_class, 4u);
    EXPECT_TRUE(std::isfinite(c.u));
    EXPECT_TRUE(std::isfinite(c.integral));
  }
}

}  // namespace
