// Tests for the PID feedback block (Section 5.2).
#include "core/pid_controller.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using vbr::core::CavaConfig;
using vbr::core::PidController;

CavaConfig cfg() { return CavaConfig{}; }

TEST(Pid, BadConfigThrows) {
  CavaConfig c = cfg();
  c.kp = -1.0;
  EXPECT_THROW(PidController{c}, std::invalid_argument);
  c = cfg();
  c.u_min = 0.0;
  EXPECT_THROW(PidController{c}, std::invalid_argument);
  c = cfg();
  c.u_max = c.u_min;
  EXPECT_THROW(PidController{c}, std::invalid_argument);
}

TEST(Pid, BadInputsThrow) {
  PidController pid(cfg());
  EXPECT_THROW((void)pid.update(-1.0, 60.0, 0.0, 2.0),
               std::invalid_argument);
  EXPECT_THROW((void)pid.update(10.0, -1.0, 0.0, 2.0),
               std::invalid_argument);
  EXPECT_THROW((void)pid.update(10.0, 60.0, 0.0, 0.0),
               std::invalid_argument);
}

TEST(Pid, OnTargetGivesUnity) {
  // Buffer at target, above one chunk duration: u = indicator = 1
  // (proportional error zero, integral empty).
  PidController pid(cfg());
  EXPECT_DOUBLE_EQ(pid.update(60.0, 60.0, 0.0, 2.0), 1.0);
}

TEST(Pid, BelowTargetRaisesU) {
  // Buffer deficit -> u > 1 -> lower selected bitrate (R = C/u), which
  // refills the buffer.
  PidController pid(cfg());
  const double u = pid.update(30.0, 60.0, 0.0, 2.0);
  EXPECT_GT(u, 1.0);
  EXPECT_NEAR(u, 1.0 + cfg().kp * 30.0, 1e-12);
}

TEST(Pid, AboveTargetLowersU) {
  PidController pid(cfg());
  const double u = pid.update(90.0, 60.0, 0.0, 2.0);
  EXPECT_LT(u, 1.0);
  EXPECT_NEAR(u, 1.0 - cfg().kp * 30.0, 1e-12);
}

TEST(Pid, IndicatorDropsWhenBufferNearEmpty) {
  // Below one chunk duration the indicator term vanishes: the controller
  // output is small, i.e. the allowed bitrate C/u is large... but the
  // output clamp keeps u at u_min, preventing a divide-by-zero regime.
  PidController pid(cfg());
  const double u = pid.update(1.0, 60.0, 0.0, 2.0);
  EXPECT_GE(u, cfg().u_min);
  // Kp * 59 = 0.59, no +1 indicator: clamped against u_min = 0.3.
  EXPECT_NEAR(u, 0.59, 1e-12);
}

TEST(Pid, OutputClamped) {
  CavaConfig c = cfg();
  c.kp = 1.0;  // aggressive: huge proportional contribution
  PidController pid(c);
  EXPECT_DOUBLE_EQ(pid.update(0.0, 100.0, 0.0, 2.0), c.u_max);
  PidController pid2(c);
  EXPECT_DOUBLE_EQ(pid2.update(100.0, 0.0, 0.0, 2.0), c.u_min);
}

TEST(Pid, IntegralAccumulatesOverTime) {
  PidController pid(cfg());
  (void)pid.update(50.0, 60.0, 0.0, 2.0);
  EXPECT_DOUBLE_EQ(pid.integral(), 0.0);  // first call: no elapsed time
  (void)pid.update(50.0, 60.0, 10.0, 2.0);
  EXPECT_DOUBLE_EQ(pid.integral(), 100.0);  // 10 s * error 10
  (void)pid.update(50.0, 60.0, 15.0, 2.0);
  EXPECT_DOUBLE_EQ(pid.integral(), 150.0);
}

TEST(Pid, IntegralRaisesOutputOverSustainedDeficit) {
  PidController pid(cfg());
  const double u0 = pid.update(50.0, 60.0, 0.0, 2.0);
  double u = u0;
  for (int t = 1; t <= 50; ++t) {
    u = pid.update(50.0, 60.0, 2.0 * t, 2.0);
  }
  EXPECT_GT(u, u0);
}

TEST(Pid, AntiWindupClampsIntegralContribution) {
  CavaConfig c = cfg();
  PidController pid(c);
  for (int t = 0; t < 10000; ++t) {
    (void)pid.update(0.0, 100.0, 2.0 * t, 2.0);
  }
  EXPECT_LE(c.ki * pid.integral(), c.integral_clamp + 1e-9);
}

TEST(Pid, ResetClearsState) {
  PidController pid(cfg());
  (void)pid.update(50.0, 60.0, 0.0, 2.0);
  (void)pid.update(50.0, 60.0, 10.0, 2.0);
  pid.reset();
  EXPECT_DOUBLE_EQ(pid.integral(), 0.0);
  (void)pid.update(50.0, 60.0, 100.0, 2.0);
  EXPECT_DOUBLE_EQ(pid.integral(), 0.0);  // fresh: no elapsed time again
}

TEST(Pid, NonMonotoneTimeDoesNotIntegrate) {
  PidController pid(cfg());
  (void)pid.update(50.0, 60.0, 10.0, 2.0);
  const double before = pid.integral();
  (void)pid.update(50.0, 60.0, 5.0, 2.0);  // clock went backwards
  EXPECT_DOUBLE_EQ(pid.integral(), before);
}

}  // namespace
