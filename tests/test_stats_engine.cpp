// The statistics engine pinned against independently generated oracle
// fixtures (tools/gen_stats_fixtures.py: Gauss-Legendre quadrature of the
// Student-t density, a genuinely different algorithm from the library's
// continued-fraction path), plus closed-form anchors and property tests
// that hold for every fixture sample: p-values in [0, 1], sign symmetry,
// U1 + U2 = n1*n2, BH monotonicity/idempotence, and bit-exact bootstrap
// seed-determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <numbers>
#include <sstream>
#include <string>
#include <vector>

#include "stats/bootstrap.h"
#include "stats/inference.h"

namespace vbr {
namespace {

constexpr const char* kDataDir = VBR_TEST_DATA_DIR;
constexpr double kOracleTol = 1e-9;

struct TTestCase {
  std::string name;
  std::vector<double> a;
  std::vector<double> b;
  std::map<std::string, double> expect;  // welch_t/df/p, mwu_u1/z/p
};

std::vector<double> read_vec(std::istringstream& iss) {
  std::size_t n = 0;
  iss >> n;
  std::vector<double> v(n);
  for (double& x : v) {
    iss >> x;
  }
  return v;
}

std::vector<TTestCase> load_ttest_cases() {
  std::ifstream in(std::string(kDataDir) + "/stats/ttest_cases.txt");
  EXPECT_TRUE(in.is_open());
  std::vector<TTestCase> cases;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream iss(line);
    std::string tag;
    iss >> tag;
    if (tag == "case") {
      cases.emplace_back();
      iss >> cases.back().name;
    } else if (tag == "a") {
      cases.back().a = read_vec(iss);
    } else if (tag == "b") {
      cases.back().b = read_vec(iss);
    } else {
      double v = 0.0;
      iss >> v;
      cases.back().expect[tag] = v;
    }
  }
  return cases;
}

TEST(StatsEngine, WelchMatchesOracleFixtures) {
  const std::vector<TTestCase> cases = load_ttest_cases();
  ASSERT_GE(cases.size(), 6u);
  for (const TTestCase& c : cases) {
    const stats::TTestResult r = stats::welch_t_test(c.a, c.b);
    EXPECT_NEAR(r.t, c.expect.at("welch_t"), kOracleTol) << c.name;
    EXPECT_NEAR(r.df, c.expect.at("welch_df"), 1e-8) << c.name;
    EXPECT_NEAR(r.p, c.expect.at("welch_p"), kOracleTol) << c.name;
  }
}

TEST(StatsEngine, MannWhitneyMatchesOracleFixtures) {
  const std::vector<TTestCase> cases = load_ttest_cases();
  for (const TTestCase& c : cases) {
    const stats::MannWhitneyResult r = stats::mann_whitney_u(c.a, c.b);
    EXPECT_NEAR(r.u1, c.expect.at("mwu_u1"), 1e-9) << c.name;
    EXPECT_NEAR(r.z, c.expect.at("mwu_z"), 1e-9) << c.name;
    EXPECT_NEAR(r.p, c.expect.at("mwu_p"), kOracleTol) << c.name;
  }
}

// Symmetry and range properties over every fixture sample pair.
TEST(StatsEngine, TestProperties) {
  const std::vector<TTestCase> cases = load_ttest_cases();
  for (const TTestCase& c : cases) {
    const stats::TTestResult ab = stats::welch_t_test(c.a, c.b);
    const stats::TTestResult ba = stats::welch_t_test(c.b, c.a);
    EXPECT_GE(ab.p, 0.0);
    EXPECT_LE(ab.p, 1.0);
    EXPECT_NEAR(ab.t, -ba.t, 1e-12) << c.name;   // sign symmetry
    EXPECT_NEAR(ab.p, ba.p, 1e-12) << c.name;    // p symmetric
    EXPECT_NEAR(ab.df, ba.df, 1e-12) << c.name;

    const stats::MannWhitneyResult mab = stats::mann_whitney_u(c.a, c.b);
    const stats::MannWhitneyResult mba = stats::mann_whitney_u(c.b, c.a);
    const double n1n2 =
        static_cast<double>(c.a.size()) * static_cast<double>(c.b.size());
    EXPECT_NEAR(mab.u1 + mba.u1, n1n2, 1e-9) << c.name;  // U1 + U2 = n1 n2
    EXPECT_NEAR(mab.p, mba.p, 1e-12) << c.name;
    EXPECT_GE(mab.p, 0.0);
    EXPECT_LE(mab.p, 1.0);
  }
}

TEST(StatsEngine, WelchClosedFormAnchors) {
  // Identical constant samples: degenerate, p = 1.
  const std::vector<double> c1 = {5.0, 5.0, 5.0};
  const std::vector<double> c2 = {5.0, 5.0, 5.0, 5.0};
  const stats::TTestResult same = stats::welch_t_test(c1, c2);
  EXPECT_EQ(same.t, 0.0);
  EXPECT_EQ(same.p, 1.0);
  // Distinct constants: infinitely significant.
  const std::vector<double> c3 = {6.0, 6.0, 6.0};
  EXPECT_EQ(stats::welch_t_test(c1, c3).p, 0.0);
  // n < 2 throws.
  const std::vector<double> single = {1.0};
  EXPECT_THROW((void)stats::welch_t_test(single, c1), std::invalid_argument);
}

TEST(StatsEngine, StudentTSpecialFixtures) {
  std::ifstream in(std::string(kDataDir) + "/stats/special_cases.txt");
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t checked = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream iss(line);
    std::string tag;
    iss >> tag;
    if (tag == "tsf") {
      double t = 0.0, df = 0.0, want = 0.0;
      iss >> t >> df >> want;
      EXPECT_NEAR(stats::student_t_sf(t, df), want,
                  std::max(kOracleTol, std::abs(want) * 1e-9))
          << "tsf(" << t << ", " << df << ")";
    } else if (tag == "ppf") {
      double p = 0.0, want = 0.0;
      iss >> p >> want;
      EXPECT_NEAR(stats::normal_ppf(p), want, 1e-9) << "ppf(" << p << ")";
    } else if (tag == "ibeta") {
      double a = 0.0, b = 0.0, x = 0.0, want = 0.0;
      iss >> a >> b >> x >> want;
      EXPECT_NEAR(stats::incomplete_beta(a, b, x), want, kOracleTol)
          << "ibeta(" << a << ", " << b << ", " << x << ")";
    }
    ++checked;
  }
  EXPECT_GE(checked, 10u);
}

TEST(StatsEngine, StudentTClosedForms) {
  // df = 1 is the Cauchy distribution: sf(t) = 1/2 - atan(t)/pi.
  for (const double t : {0.0, 0.5, 1.0, 2.5, -1.5}) {
    const double want = 0.5 - std::atan(t) / std::numbers::pi;
    EXPECT_NEAR(stats::student_t_sf(t, 1.0), want, 1e-13) << t;
  }
  // df = 2: sf(t) = 1/2 - t / (2 sqrt(t^2 + 2)).
  for (const double t : {0.0, 1.0, 2.0, -0.7}) {
    const double want = 0.5 - t / (2.0 * std::sqrt(t * t + 2.0));
    EXPECT_NEAR(stats::student_t_sf(t, 2.0), want, 1e-13) << t;
  }
  // Normal CDF / quantile round trip.
  for (const double p : {0.01, 0.25, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(stats::normal_cdf(stats::normal_ppf(p)), p, 1e-12) << p;
  }
  EXPECT_THROW((void)stats::normal_ppf(0.0), std::invalid_argument);
  EXPECT_THROW((void)stats::normal_ppf(1.0), std::invalid_argument);
}

TEST(StatsEngine, BenjaminiHochbergMatchesOracleFixtures) {
  std::ifstream in(std::string(kDataDir) + "/stats/bh_cases.txt");
  ASSERT_TRUE(in.is_open());
  std::string line, name;
  std::vector<double> p, adj;
  std::size_t cases = 0;
  auto check = [&] {
    if (p.empty()) {
      return;
    }
    const std::vector<double> got = stats::benjamini_hochberg(p);
    ASSERT_EQ(got.size(), adj.size()) << name;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], adj[i], kOracleTol) << name << "[" << i << "]";
    }
    ++cases;
  };
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream iss(line);
    std::string tag;
    iss >> tag;
    if (tag == "case") {
      check();
      p.clear();
      adj.clear();
      iss >> name;
    } else if (tag == "p") {
      p = read_vec(iss);
    } else if (tag == "adj") {
      adj = read_vec(iss);
    }
  }
  check();
  EXPECT_GE(cases, 4u);
}

TEST(StatsEngine, BenjaminiHochbergProperties) {
  const std::vector<double> p = {0.001, 0.2, 0.04, 0.9, 0.015, 0.5};
  const std::vector<double> adj = stats::benjamini_hochberg(p);
  ASSERT_EQ(adj.size(), p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    // Adjustment only raises p-values, never past 1.
    EXPECT_GE(adj[i], p[i]);
    EXPECT_LE(adj[i], 1.0);
    for (std::size_t j = 0; j < p.size(); ++j) {
      // Order-preserving: a smaller raw p never gets a larger adjusted p.
      if (p[i] < p[j]) {
        EXPECT_LE(adj[i], adj[j]);
      }
    }
  }
  // Idempotent on an already-flat vector; empty input stays empty.
  const std::vector<double> flat = {0.5, 0.5, 0.5};
  EXPECT_EQ(stats::benjamini_hochberg(flat), flat);
  EXPECT_TRUE(stats::benjamini_hochberg(std::vector<double>{}).empty());
  const std::vector<double> bad = {0.5, 1.5};
  EXPECT_THROW((void)stats::benjamini_hochberg(bad), std::invalid_argument);
}

TEST(StatsEngine, BootstrapSeedDeterminism) {
  std::vector<double> xs;
  for (int i = 0; i < 40; ++i) {
    xs.push_back(std::sin(0.7 * i) * 10.0 + i * 0.3);
  }
  stats::BootstrapConfig cfg;
  cfg.resamples = 500;
  const stats::BootstrapCi a = stats::bootstrap_mean_ci(xs, cfg);
  const stats::BootstrapCi b = stats::bootstrap_mean_ci(xs, cfg);
  // Counter-based resampling: bit-identical, not merely close.
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
  EXPECT_EQ(a.point, b.point);
  // A different seed moves the interval (extremely unlikely to collide).
  cfg.seed ^= 0xdeadbeef;
  const stats::BootstrapCi c = stats::bootstrap_mean_ci(xs, cfg);
  EXPECT_TRUE(c.lo != a.lo || c.hi != a.hi);
}

TEST(StatsEngine, BootstrapIntervalSanity) {
  std::vector<double> xs;
  for (int i = 0; i < 60; ++i) {
    xs.push_back(50.0 + 5.0 * std::cos(1.3 * i));
  }
  double mean = 0.0;
  for (const double v : xs) {
    mean += v;
  }
  mean /= static_cast<double>(xs.size());
  for (const stats::BootstrapKind kind :
       {stats::BootstrapKind::kPercentile, stats::BootstrapKind::kBca}) {
    stats::BootstrapConfig cfg;
    cfg.resamples = 1000;
    cfg.kind = kind;
    const stats::BootstrapCi ci = stats::bootstrap_mean_ci(xs, cfg);
    EXPECT_NEAR(ci.point, mean, 1e-12);
    EXPECT_LE(ci.lo, ci.point);
    EXPECT_GE(ci.hi, ci.point);
    EXPECT_LT(ci.hi - ci.lo, 6.0);  // not absurdly wide for sd ~3.5, n=60
    // Wider confidence -> wider interval.
    stats::BootstrapConfig wide = cfg;
    wide.confidence = 0.99;
    const stats::BootstrapCi w = stats::bootstrap_mean_ci(xs, wide);
    EXPECT_LE(w.lo, ci.lo + 1e-12);
    EXPECT_GE(w.hi, ci.hi - 1e-12);
  }
  // Degenerate inputs.
  const std::vector<double> one = {3.0};
  const stats::BootstrapCi s = stats::bootstrap_mean_ci(one);
  EXPECT_EQ(s.lo, 3.0);
  EXPECT_EQ(s.hi, 3.0);
  EXPECT_THROW((void)stats::bootstrap_mean_ci(std::vector<double>{}),
               std::invalid_argument);
}

TEST(StatsEngine, BootstrapDiffCoversTrueShift) {
  // b = a + 2: the difference CI must cover -2 (mean(a) - mean(b)) and the
  // one-sample CI arithmetic must be consistent with the point estimate.
  std::vector<double> a, b;
  for (int i = 0; i < 50; ++i) {
    const double base = 10.0 + 3.0 * std::sin(0.9 * i);
    a.push_back(base);
    b.push_back(base + 2.0);
  }
  const stats::BootstrapCi ci = stats::bootstrap_mean_diff_ci(a, b);
  EXPECT_NEAR(ci.point, -2.0, 1e-12);
  EXPECT_LE(ci.lo, -2.0);
  EXPECT_GE(ci.hi, -2.0);
  // Deterministic too.
  const stats::BootstrapCi ci2 = stats::bootstrap_mean_diff_ci(a, b);
  EXPECT_EQ(ci.lo, ci2.lo);
  EXPECT_EQ(ci.hi, ci2.hi);
}

}  // namespace
}  // namespace vbr
