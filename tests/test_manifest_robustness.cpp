// Malformed-manifest corpus: strict mode must refuse every damaged file
// with an error naming the line and field; lenient mode must repair the
// recoverable ones into a usable Video, reporting each repair, and still
// refuse structural damage it cannot repair soundly.
//
// Corpus files live in tests/data/manifests (VBR_TEST_DATA_DIR is supplied
// by the build).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "video/manifest.h"
#include "video/video.h"

namespace {

using namespace vbr;

std::string corpus_file(const std::string& name) {
  const std::string path =
      std::string(VBR_TEST_DATA_DIR) + "/manifests/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing corpus file " << path;
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

video::Video lenient_parse(const std::string& name,
                           video::ManifestReadReport* report) {
  return video::from_manifest_string(corpus_file(name), {.lenient = true},
                                     report);
}

// Every damaged file in the corpus, recoverable or not, must be refused in
// strict mode — and refused with a message that names the manifest line, so
// whoever produced the file can find the damage.
class StrictRejectionTest : public ::testing::TestWithParam<const char*> {};

TEST_P(StrictRejectionTest, ThrowsWithLineAndField) {
  const std::string text = corpus_file(GetParam());
  try {
    (void)video::from_manifest_string(text);
    FAIL() << GetParam() << " parsed strictly despite the damage";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("manifest:"), std::string::npos)
        << GetParam() << " error lacks the manifest: prefix: " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, StrictRejectionTest,
    ::testing::Values("bad_magic.txt", "bad_nan_size.txt",
                      "bad_negative_size.txt", "bad_garbage_size.txt",
                      "bad_truncated_sizes.txt", "bad_missing_sidecar.txt",
                      "bad_nonfinite_bitrate.txt", "bad_unknown_genre.txt",
                      "bad_truncated_sidecar.txt", "bad_huge_counts.txt",
                      "bad_zero_duration.txt", "bad_unsorted_ladder.txt"));

// The recoverable subset must come back as a usable 2-track, 3-chunk Video
// under lenient ingestion, with at least one diagnostic explaining what was
// repaired.
class LenientRecoveryTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LenientRecoveryTest, RepairsIntoUsableVideo) {
  video::ManifestReadReport report;
  const video::Video v = lenient_parse(GetParam(), &report);
  EXPECT_EQ(v.num_tracks(), 2u);
  EXPECT_EQ(v.num_chunks(), 3u);
  EXPECT_FALSE(report.clean()) << GetParam() << " reported no repairs";
  for (const video::ManifestDiagnostic& d : report.diagnostics) {
    EXPECT_GT(d.line, 0u);
    EXPECT_FALSE(d.field.empty());
    EXPECT_FALSE(d.message.empty());
  }
  // The repaired video must satisfy every Video invariant, including the
  // strictly ascending ladder and finite positive chunk sizes.
  for (std::size_t l = 0; l < v.num_tracks(); ++l) {
    for (std::size_t i = 0; i < v.num_chunks(); ++i) {
      EXPECT_GT(v.chunk_size_bits(l, i), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, LenientRecoveryTest,
    ::testing::Values("bad_nan_size.txt", "bad_negative_size.txt",
                      "bad_garbage_size.txt", "bad_truncated_sizes.txt",
                      "bad_missing_sidecar.txt", "bad_nonfinite_bitrate.txt",
                      "bad_unknown_genre.txt", "bad_truncated_sidecar.txt",
                      "bad_unsorted_ladder.txt"));

// Structural damage stays fatal even leniently: there is nothing sound to
// repair a bad magic, an implausible chunk count, or a zero chunk duration
// from.
class LenientStillFatalTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LenientStillFatalTest, UnrecoverableDamageThrows) {
  video::ManifestReadReport report;
  EXPECT_THROW((void)lenient_parse(GetParam(), &report), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(Corpus, LenientStillFatalTest,
                         ::testing::Values("bad_magic.txt",
                                           "bad_huge_counts.txt",
                                           "bad_zero_duration.txt"));

TEST(ManifestRobustness, CleanFileParsesCleanlyInBothModes) {
  const std::string text = corpus_file("good_tiny.txt");
  const video::Video strict = video::from_manifest_string(text);
  video::ManifestReadReport report;
  const video::Video lenient =
      video::from_manifest_string(text, {.lenient = true}, &report);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.repaired_sizes, 0u);
  EXPECT_FALSE(report.sidecar_missing);
  EXPECT_EQ(strict.num_tracks(), 2u);
  EXPECT_EQ(strict.num_chunks(), 3u);
  EXPECT_EQ(strict.genre(), video::Genre::kAnimation);
  EXPECT_DOUBLE_EQ(strict.chunk_size_bits(0, 1), 700000.0);
  for (std::size_t l = 0; l < strict.num_tracks(); ++l) {
    for (std::size_t i = 0; i < strict.num_chunks(); ++i) {
      EXPECT_EQ(lenient.chunk_size_bits(l, i), strict.chunk_size_bits(l, i));
    }
  }
}

TEST(ManifestRobustness, CorruptSizeCellFallsBackToDeclaredRate) {
  video::ManifestReadReport report;
  const video::Video v = lenient_parse("bad_nan_size.txt", &report);
  // Track 0 declares 300000 bps at 2 s chunks: the NaN cell becomes 600000.
  EXPECT_DOUBLE_EQ(v.chunk_size_bits(0, 1), 600000.0);
  EXPECT_DOUBLE_EQ(v.chunk_size_bits(0, 0), 500000.0);  // untouched
  EXPECT_EQ(report.repaired_sizes, 1u);
}

TEST(ManifestRobustness, TruncatedSizeRowFilledFromDeclaredRate) {
  video::ManifestReadReport report;
  const video::Video v = lenient_parse("bad_truncated_sizes.txt", &report);
  EXPECT_DOUBLE_EQ(v.chunk_size_bits(0, 0), 500000.0);
  EXPECT_DOUBLE_EQ(v.chunk_size_bits(0, 1), 600000.0);
  EXPECT_DOUBLE_EQ(v.chunk_size_bits(0, 2), 600000.0);
  EXPECT_EQ(report.repaired_sizes, 2u);
}

TEST(ManifestRobustness, MissingSidecarSynthesizesZeroQuality) {
  video::ManifestReadReport report;
  const video::Video v = lenient_parse("bad_missing_sidecar.txt", &report);
  EXPECT_TRUE(report.sidecar_missing);
  const video::ChunkQuality& q = v.track(0).chunk(0).quality;
  EXPECT_EQ(q.vmaf_tv, 0.0);
  EXPECT_EQ(q.vmaf_phone, 0.0);
}

TEST(ManifestRobustness, UnknownGenreDefaultsLeniently) {
  video::ManifestReadReport report;
  const video::Video v = lenient_parse("bad_unknown_genre.txt", &report);
  EXPECT_EQ(v.genre(), video::Genre::kNature);
}

TEST(ManifestRobustness, DescendingLadderIsResortedLeniently) {
  video::ManifestReadReport report;
  const video::Video v = lenient_parse("bad_unsorted_ladder.txt", &report);
  // The file lists the 1 Mbps track first; the repaired ladder must be
  // ascending with releveled tracks.
  EXPECT_LT(v.track(0).average_bitrate_bps(), v.track(1).average_bitrate_bps());
  EXPECT_DOUBLE_EQ(v.chunk_size_bits(0, 0), 500000.0);
  EXPECT_DOUBLE_EQ(v.chunk_size_bits(1, 0), 1800000.0);
}

TEST(ManifestRobustness, StrictErrorNamesTheOffendingLine) {
  // The NaN size sits on line 9 of bad_nan_size.txt.
  try {
    (void)video::from_manifest_string(corpus_file("bad_nan_size.txt"));
    FAIL() << "strict parse accepted a NaN size";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("manifest:9"), std::string::npos) << what;
    EXPECT_NE(what.find("segment size"), std::string::npos) << what;
  }
}

TEST(ManifestRobustness, DiagnosticToStringNamesLineAndField) {
  video::ManifestReadReport report;
  (void)lenient_parse("bad_nan_size.txt", &report);
  ASSERT_FALSE(report.diagnostics.empty());
  const std::string s = report.diagnostics.front().to_string();
  EXPECT_NE(s.find("9"), std::string::npos) << s;
  EXPECT_NE(s.find("segment size"), std::string::npos) << s;
}

TEST(ManifestRobustness, RoundTripOfProgrammaticVideoStaysClean) {
  // A Video written by our own writer must read back without diagnostics in
  // lenient mode — lenient must not "repair" healthy input.
  const video::Video v = video::from_manifest_string(corpus_file(
      "good_tiny.txt"));
  const std::string text = video::to_manifest_string(v);
  video::ManifestReadReport report;
  const video::Video back =
      video::from_manifest_string(text, {.lenient = true}, &report);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(back.num_chunks(), v.num_chunks());
}

}  // namespace
