// Feature/state layer of the learned ABR subsystem (learn/features.h):
// config validation with field-named errors, quantizer properties
// (monotonicity, bin/center inverses, state packing round trips), the
// decision-aligned derived axes on hand-built videos, and the central
// train/serve contract — the live StreamContext extractor and the offline
// DecisionEvent reconstruction produce bit-identical Signals, feature
// vectors, and state ids, including through a real session loop and a
// JSONL round trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "abr/mpc.h"
#include "learn/features.h"
#include "net/bandwidth_estimator.h"
#include "obs/jsonl_io.h"
#include "obs/trace_sink.h"
#include "sim/session.h"
#include "test_util.h"

namespace vbr {
namespace {

learn::FeatureConfig small_config(std::size_t num_tracks = 6) {
  learn::FeatureConfig cfg;
  cfg.num_tracks = num_tracks;
  return cfg;
}

TEST(LearnFeatureConfig, ValidationNamesTheField) {
  const auto expect_error = [](learn::FeatureConfig cfg,
                               const std::string& needle) {
    try {
      cfg.validate();
      FAIL() << "expected invalid_argument mentioning '" << needle << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "actual message: " << e.what();
    }
  };
  learn::FeatureConfig ok = small_config();
  EXPECT_NO_THROW(ok.validate());

  learn::FeatureConfig cfg = small_config();
  cfg.num_tracks = 0;
  expect_error(cfg, "FeatureConfig.num_tracks");
  cfg = small_config();
  cfg.lookahead = 0;
  expect_error(cfg, "FeatureConfig.lookahead");
  cfg = small_config();
  cfg.buffer_bins = 0;
  expect_error(cfg, "FeatureConfig.buffer_bins");
  cfg = small_config();
  cfg.buffer_cap_s = 0.0;
  expect_error(cfg, "FeatureConfig.buffer_cap_s");
  cfg = small_config();
  cfg.bw_hi_bps = cfg.bw_lo_bps;
  expect_error(cfg, "FeatureConfig.bw_hi_bps");
  cfg = small_config();
  cfg.ratio_hi = cfg.ratio_lo;
  expect_error(cfg, "FeatureConfig.ratio_hi");
  cfg = small_config();
  cfg.margin_bins = 0;
  expect_error(cfg, "FeatureConfig.margin_bins");
  cfg = small_config();
  cfg.margin_hi = cfg.margin_lo;
  expect_error(cfg, "FeatureConfig.margin_hi");
  cfg = small_config();
  cfg.deficit_bins = 0;
  expect_error(cfg, "FeatureConfig.deficit_bins");
  cfg = small_config();
  cfg.deficit_lo = -1.0;
  expect_error(cfg, "FeatureConfig.deficit_lo");
}

TEST(LearnFeatureConfig, StateSpaceDimensions) {
  const learn::FeatureConfig cfg = small_config(6);
  // buffer * (T+1 sustainable) * margin * deficit * (T+1 affordable)
  // * (T+1 prev) * 2 startup.
  EXPECT_EQ(cfg.num_states(), 16u * 7u * 4u * 6u * 7u * 7u * 2u);
  EXPECT_EQ(cfg.num_coarse_states(), 16u * 7u * 7u);
  EXPECT_EQ(cfg.vector_dim(), 8u + 6u);
}

TEST(LearnQuantizers, BufferBinMonotoneAndBounded) {
  const learn::FeatureConfig cfg = small_config();
  std::size_t prev = 0;
  for (double b = -5.0; b <= 200.0; b += 0.5) {
    const std::size_t bin = learn::buffer_bin(b, cfg);
    EXPECT_LT(bin, cfg.buffer_bins);
    EXPECT_GE(bin, prev);  // non-decreasing in the buffer level
    prev = bin;
  }
  EXPECT_EQ(learn::buffer_bin(0.0, cfg), 0u);
  EXPECT_EQ(learn::buffer_bin(1e9, cfg), cfg.buffer_bins - 1);
}

TEST(LearnQuantizers, BandwidthBinCenterInverts) {
  const learn::FeatureConfig cfg = small_config();
  for (std::size_t bin = 0; bin < cfg.bandwidth_bins; ++bin) {
    const double center = learn::bandwidth_bin_center_bps(bin, cfg);
    EXPECT_GT(center, cfg.bw_lo_bps);
    EXPECT_LT(center, cfg.bw_hi_bps);
    EXPECT_EQ(learn::bandwidth_bin(center, cfg), bin) << "bin " << bin;
  }
  // The norm is clamped to [0, 1] and monotone in log-bandwidth.
  EXPECT_EQ(learn::bandwidth_norm(1.0, cfg), 0.0);
  EXPECT_EQ(learn::bandwidth_norm(1e12, cfg), 1.0);
  double prev = -1.0;
  for (double bw = 1e5; bw < 4e7; bw *= 1.37) {
    const double u = learn::bandwidth_norm(bw, cfg);
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
    EXPECT_GE(u, prev);
    prev = u;
  }
}

TEST(LearnStatePacking, EveryStateDecodesConsistently) {
  // Inverse check over the whole state space of a small grid: the packed
  // axes must be recoverable in the documented order, and the coarse
  // projection must keep exactly (buffer, sustainable, prev).
  learn::FeatureConfig cfg = small_config(3);
  cfg.buffer_bins = 4;
  cfg.margin_bins = 2;
  cfg.deficit_bins = 3;
  const std::size_t T1 = cfg.num_tracks + 1;
  for (std::uint32_t s = 0; s < cfg.num_states(); ++s) {
    std::size_t id = s;
    const std::size_t startup = id % 2;
    id /= 2;
    const std::size_t prev = id % T1;
    id /= T1;
    id /= T1;  // affordable
    id /= cfg.deficit_bins;
    id /= cfg.margin_bins;
    const std::size_t sustainable = id % T1;
    id /= T1;
    const std::size_t buffer = id;
    ASSERT_LT(buffer, cfg.buffer_bins);
    (void)startup;
    ASSERT_EQ(learn::sustainable_from_state(s, cfg), sustainable);
    ASSERT_EQ(learn::coarse_from_state(s, cfg),
              (buffer * T1 + sustainable) * T1 + prev);
    ASSERT_LT(learn::coarse_from_state(s, cfg), cfg.num_coarse_states());
  }
}

TEST(LearnSignals, DerivedAxesMatchHandComputation) {
  // Flat 6-rung ladder at 0.2/0.4/0.8/1.6/3.2/6.4 Mbps, 2 s chunks. With
  // 2.0 Mbps of bandwidth and 6 s of buffer:
  //   sustainable = track 3 (1.6 <= 2.0 < 3.2)     -> encoded 4
  //   margin      = 2.0 / 1.6 = 1.25
  //   affordable: next chunk of track l costs (rate * 2 s) / 2 Mbps of
  //   download time; track 5 costs 6.4 s > 6 s buffer, track 4 costs 3.2 s
  //   -> affordable = track 4, encoded 5
  //   deficit: track above sustainable is 4 (3.2 Mbps); each chunk loses
  //   3.2*2/2.0 - 2 = 1.2 s of buffer -> 6 / 1.2 = 5 chunks
  const video::Video v = testutil::default_flat_video(60);
  const learn::FeatureConfig cfg = small_config(6);
  const abr::StreamContext ctx = testutil::make_context(v, 10, 6.0, 2.0e6, 3);
  learn::Signals sig;
  learn::signals_from_context(ctx, cfg, sig);
  EXPECT_EQ(sig.sustainable, 4u);
  EXPECT_DOUBLE_EQ(sig.margin, 1.25);
  EXPECT_EQ(sig.affordable, 5u);
  EXPECT_DOUBLE_EQ(sig.deficit_chunks, 5.0);
  EXPECT_EQ(sig.prev_track, 3);
  ASSERT_EQ(sig.inflation.size(), 6u);
  for (const double r : sig.inflation) {
    EXPECT_DOUBLE_EQ(r, 1.0);  // flat video: no VBR inflation
  }

  // Starved: 50 kbps sustains nothing (encoded 0), and nothing is
  // affordable within a 0.1 s buffer.
  const abr::StreamContext starved =
      testutil::make_context(v, 10, 0.1, 5.0e4);
  learn::signals_from_context(starved, cfg, sig);
  EXPECT_EQ(sig.sustainable, 0u);
  EXPECT_EQ(sig.affordable, 0u);
  EXPECT_DOUBLE_EQ(sig.margin, cfg.margin_lo);  // clamped from 0.25

  // Luxury: everything sustainable -> the track above is clamped to the
  // top rung, which is itself sustainable -> deficit saturates at the cap.
  const abr::StreamContext rich = testutil::make_context(v, 10, 30.0, 2.0e7);
  learn::signals_from_context(rich, cfg, sig);
  EXPECT_EQ(sig.sustainable, 6u);
  EXPECT_DOUBLE_EQ(sig.deficit_chunks, cfg.deficit_hi);
}

TEST(LearnSignals, VbrSpikesInflateTheWindow) {
  // Chunks 10..12 are 3x nominal on every track: the lookahead window
  // starting at 10 sees mean inflation (3+3+3+1+1)/5 = 2.2, clamped to
  // ratio_hi = 2.0; sustainability drops accordingly (2.0 Mbps only
  // sustains track 2's inflated 0.8 * 2.2 = 1.76 Mbps mean rate).
  const video::Video v = testutil::make_flat_video(
      {2e5, 4e5, 8e5, 1.6e6, 3.2e6, 6.4e6}, 60, 2.0,
      {{10, 3.0}, {11, 3.0}, {12, 3.0}});
  const learn::FeatureConfig cfg = small_config(6);
  learn::Signals sig;
  learn::signals_from_context(testutil::make_context(v, 10, 6.0, 2.0e6, 3),
                              cfg, sig);
  EXPECT_EQ(sig.sustainable, 3u);  // track 2, one below the flat case
  for (const double r : sig.inflation) {
    EXPECT_DOUBLE_EQ(r, 2.0);  // clamped at ratio_hi
  }
  // Outside the spike window the same video behaves like the flat one —
  // inflation is relative to the track's declared average bitrate, which
  // includes the spike bits (3 of 60 chunks at 3x -> nominal is 66/60 of a
  // flat chunk), so flat chunks sit slightly *below* 1.0.
  learn::signals_from_context(testutil::make_context(v, 20, 6.0, 2.0e6, 3),
                              cfg, sig);
  EXPECT_EQ(sig.sustainable, 4u);
  EXPECT_DOUBLE_EQ(sig.inflation[2], 60.0 / 66.0);
}

/// The equivalent DecisionEvent of a live context (what the session loop
/// records for this decision).
obs::DecisionEvent event_for(const abr::StreamContext& ctx) {
  obs::DecisionEvent e;
  e.chunk_index = ctx.next_chunk;
  e.buffer_before_s = ctx.buffer_s;
  e.est_bandwidth_bps = ctx.est_bandwidth_bps;
  e.in_startup = ctx.in_startup;
  return e;
}

void expect_signals_bit_identical(const learn::Signals& a,
                                  const learn::Signals& b) {
  // EXPECT_EQ on doubles is exact comparison — bit-identity, not epsilon.
  EXPECT_EQ(a.buffer_s, b.buffer_s);
  EXPECT_EQ(a.est_bandwidth_bps, b.est_bandwidth_bps);
  EXPECT_EQ(a.prev_track, b.prev_track);
  EXPECT_EQ(a.in_startup, b.in_startup);
  EXPECT_EQ(a.sustainable, b.sustainable);
  EXPECT_EQ(a.margin, b.margin);
  EXPECT_EQ(a.affordable, b.affordable);
  EXPECT_EQ(a.deficit_chunks, b.deficit_chunks);
  ASSERT_EQ(a.inflation.size(), b.inflation.size());
  for (std::size_t l = 0; l < a.inflation.size(); ++l) {
    EXPECT_EQ(a.inflation[l], b.inflation[l]) << "inflation[" << l << "]";
  }
}

TEST(LearnInvariance, LiveAndOfflineExtractorsAgreeBitExactly) {
  // The train/serve contract on crafted contexts: awkward buffers and
  // bandwidths, VBR spikes, window truncation at the end of the video,
  // startup, and every prev_track value.
  const video::Video v = testutil::make_flat_video(
      {2e5, 4e5, 8e5, 1.6e6, 3.2e6, 6.4e6}, 40, 2.0,
      {{5, 2.7}, {6, 0.4}, {37, 3.1}});
  const learn::FeatureConfig cfg = small_config(6);
  std::vector<double> live_fv;
  std::vector<double> off_fv;
  for (const std::size_t chunk : {0u, 5u, 17u, 36u, 39u}) {
    for (const double buffer : {0.0, 0.37, 6.000000000000001, 42.5}) {
      for (const double bw : {3.3e5, 1.9999999999e6, 8.08e6}) {
        for (int prev = -1; prev < 6; ++prev) {
          abr::StreamContext ctx =
              testutil::make_context(v, chunk, buffer, bw, prev);
          ctx.in_startup = buffer == 0.0;
          learn::Signals live;
          learn::signals_from_context(ctx, cfg, live);
          learn::Signals off;
          learn::signals_from_event(event_for(ctx), v, prev, cfg, off);
          expect_signals_bit_identical(live, off);
          learn::feature_vector(live, cfg, live_fv);
          learn::feature_vector(off, cfg, off_fv);
          EXPECT_EQ(live_fv, off_fv);
          EXPECT_EQ(learn::state_id(live, cfg), learn::state_id(off, cfg));
        }
      }
    }
  }
}

/// Wraps a real scheme and snapshots the live feature extraction at every
/// decide() — the serving-side half of the invariance pin.
class RecordingScheme final : public abr::AbrScheme {
 public:
  struct Snapshot {
    std::uint32_t state = 0;
    std::vector<double> features;
  };

  RecordingScheme(abr::AbrScheme& inner, const learn::FeatureConfig& cfg,
                  std::vector<Snapshot>& out)
      : inner_(inner), cfg_(cfg), out_(out) {}

  [[nodiscard]] abr::Decision decide(const abr::StreamContext& ctx) override {
    learn::Signals sig;
    learn::signals_from_context(ctx, cfg_, sig);
    Snapshot snap;
    snap.state = learn::state_id(sig, cfg_);
    learn::feature_vector(sig, cfg_, snap.features);
    out_.push_back(std::move(snap));
    return inner_.decide(ctx);
  }
  void on_chunk_downloaded(const abr::StreamContext& ctx, std::size_t track,
                           double download_s) override {
    inner_.on_chunk_downloaded(ctx, track, download_s);
  }
  void reset() override { inner_.reset(); }
  [[nodiscard]] std::string name() const override { return inner_.name(); }

 private:
  abr::AbrScheme& inner_;
  const learn::FeatureConfig& cfg_;
  std::vector<Snapshot>& out_;
};

TEST(LearnInvariance, SessionLoopEventsReconstructLiveFeatures) {
  // End to end: run a real MPC session over a VBR-spiked video while
  // snapshotting the live extraction, push every DecisionEvent through the
  // durable JSONL serializer and back, then rebuild the features offline
  // exactly the way build_dataset does (tracking the delivered prev track).
  // Every decision must reconstruct to the same state id and the same
  // feature bytes — the property that makes offline training sound.
  const video::Video v = testutil::make_flat_video(
      {2e5, 4e5, 8e5, 1.6e6, 3.2e6, 6.4e6}, 50, 2.0,
      {{7, 2.5}, {8, 2.5}, {23, 3.0}, {41, 0.5}});
  const net::Trace trace = testutil::flat_trace(2.4e6, 600.0);
  const learn::FeatureConfig cfg = small_config(6);

  abr::Mpc mpc(abr::mpc_config());
  std::vector<RecordingScheme::Snapshot> live;
  RecordingScheme recorder(mpc, cfg, live);
  net::HarmonicMeanEstimator estimator;
  obs::MemoryTraceSink sink;
  sim::SessionConfig sc;
  sc.trace = &sink;
  sc.session_id = 9;
  const sim::SessionResult result =
      sim::run_session(v, trace, recorder, estimator, sc);
  ASSERT_GT(result.chunks.size(), 0u);
  ASSERT_EQ(live.size(), sink.events().size());
  ASSERT_GE(live.size(), 40u);

  int prev = -1;
  std::size_t i = 0;
  std::vector<double> off_fv;
  for (const obs::DecisionEvent& original : sink.events()) {
    // JSONL round trip first: the offline trainer reads parsed lines, so
    // the invariance must hold *through* serialization.
    const obs::DecisionEvent ev = obs::parse_jsonl(obs::to_jsonl(original));
    learn::Signals off;
    learn::signals_from_event(ev, v, prev, cfg, off);
    EXPECT_EQ(learn::state_id(off, cfg), live[i].state) << "decision " << i;
    learn::feature_vector(off, cfg, off_fv);
    EXPECT_EQ(off_fv, live[i].features) << "decision " << i;
    if (!ev.skipped) {
      prev = static_cast<int>(ev.track);
    }
    ++i;
  }
}

}  // namespace
}  // namespace vbr
