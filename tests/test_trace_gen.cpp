// Tests for the synthetic LTE / FCC trace generators.
#include "net/trace_gen.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "metrics/stats.h"

namespace {

using namespace vbr::net;

TEST(TraceGen, LteDeterministic) {
  const Trace a = generate_lte_trace(123);
  const Trace b = generate_lte_trace(123);
  ASSERT_EQ(a.num_samples(), b.num_samples());
  for (std::size_t i = 0; i < a.num_samples(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples_bps()[i], b.samples_bps()[i]);
  }
}

TEST(TraceGen, LteSeedsDiffer) {
  const Trace a = generate_lte_trace(1);
  const Trace b = generate_lte_trace(2);
  EXPECT_NE(a.samples_bps(), b.samples_bps());
}

TEST(TraceGen, LteShape) {
  const Trace t = generate_lte_trace(5);
  EXPECT_DOUBLE_EQ(t.sample_period_s(), 1.0);
  EXPECT_GE(t.duration_s(), 1200.0);
  for (const double s : t.samples_bps()) {
    EXPECT_GT(s, 0.0);
  }
}

TEST(TraceGen, FccShape) {
  const Trace t = generate_fcc_trace(5);
  EXPECT_DOUBLE_EQ(t.sample_period_s(), 5.0);
  EXPECT_GE(t.duration_s(), 1200.0);
}

TEST(TraceGen, BadParamsThrow) {
  LteTraceParams lte;
  lte.duration_s = 0.0;
  EXPECT_THROW((void)generate_lte_trace(1, lte), std::invalid_argument);
  FccTraceParams fcc;
  fcc.max_base_mbps = 0.5;  // below min
  EXPECT_THROW((void)generate_fcc_trace(1, fcc), std::invalid_argument);
}

TEST(TraceGen, SetSizes) {
  EXPECT_EQ(make_lte_trace_set(7, 1).size(), 7u);
  EXPECT_EQ(make_fcc_trace_set(5, 1).size(), 5u);
}

TEST(TraceGen, SetTracesAreDistinct) {
  const auto set = make_lte_trace_set(5, 1);
  for (std::size_t i = 1; i < set.size(); ++i) {
    EXPECT_NE(set[i].samples_bps(), set[0].samples_bps());
    EXPECT_NE(set[i].name(), set[0].name());
  }
}

TEST(TraceGen, LteIsMoreVariableThanFcc) {
  // Section 6.3: FCC broadband profiles are smoother than LTE; rebuffering
  // drops across the board under FCC. Compare normalized variability.
  double lte_cov = 0.0;
  double fcc_cov = 0.0;
  const std::size_t n = 20;
  for (std::size_t i = 0; i < n; ++i) {
    lte_cov += vbr::stats::coefficient_of_variation(
        generate_lte_trace(100 + i).samples_bps());
    fcc_cov += vbr::stats::coefficient_of_variation(
        generate_fcc_trace(100 + i).samples_bps());
  }
  EXPECT_GT(lte_cov / n, 2.0 * (fcc_cov / n));
}

TEST(TraceGen, LteMeansAreChallengingForTheLadder) {
  // The trace population should make the upper rungs contested: most trace
  // means fall between the 2nd and ~2x the top rung average (~0.3-8 Mbps).
  const auto set = make_lte_trace_set(50, 7);
  std::size_t in_range = 0;
  for (const Trace& t : set) {
    const double mean = t.average_bandwidth_bps();
    if (mean > 3e5 && mean < 8e6) {
      ++in_range;
    }
  }
  EXPECT_GE(in_range, 45u);
}

TEST(TraceGen, FccBaseRatesSpanTiers) {
  const auto set = make_fcc_trace_set(50, 11);
  double lo = 1e18;
  double hi = 0.0;
  for (const Trace& t : set) {
    lo = std::min(lo, t.average_bandwidth_bps());
    hi = std::max(hi, t.average_bandwidth_bps());
  }
  EXPECT_LT(lo, 3e6);   // some slow households
  EXPECT_GT(hi, 7e6);   // some fast ones
}

TEST(TraceGen, LteAutocorrelated) {
  // Per-second throughput must be positively autocorrelated (drive traces
  // vary smoothly), or application-level estimators become useless.
  const Trace t = generate_lte_trace(42);
  const auto& s = t.samples_bps();
  std::vector<double> a(s.begin(), s.end() - 1);
  std::vector<double> b(s.begin() + 1, s.end());
  EXPECT_GT(vbr::stats::pearson(a, b), 0.5);
}

class LteSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LteSeedSweep, AlwaysValid) {
  const Trace t = generate_lte_trace(GetParam());
  EXPECT_GT(t.average_bandwidth_bps(), 0.0);
  for (const double s : t.samples_bps()) {
    EXPECT_GE(s, 1e4);  // floor at 0.01 Mbps
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LteSeedSweep,
                         ::testing::Values(0, 1, 17, 991, 123456789));

}  // namespace
