// Tests for the two myopic baselines, BBA-1 and RBA (paper Section 4).
#include <gtest/gtest.h>

#include <stdexcept>

#include "abr/bba.h"
#include "abr/rba.h"
#include "test_util.h"

namespace {

using namespace vbr;
using testutil::default_flat_video;
using testutil::make_context;
using testutil::make_flat_video;

TEST(Bba, LowBufferForcesLowestTrack) {
  const video::Video v = default_flat_video(10);
  abr::Bba bba;
  const abr::Decision d = bba.decide(make_context(v, 0, 5.0, 10e6));
  EXPECT_EQ(d.track, 0u);
}

TEST(Bba, HighBufferForcesTopTrack) {
  const video::Video v = default_flat_video(10);
  abr::Bba bba;
  const abr::Decision d = bba.decide(make_context(v, 0, 95.0, 1e5));
  EXPECT_EQ(d.track, v.num_tracks() - 1);
}

TEST(Bba, MidBufferMapsLinearly) {
  const video::Video v = default_flat_video(10);
  abr::Bba bba;
  // Halfway through the cushion (reservoir 10, cushion top 90): allowed size
  // midway between the extremes' average chunk sizes -> a middle track.
  const abr::Decision d = bba.decide(make_context(v, 0, 50.0, 1e6));
  EXPECT_GE(d.track, 2u);
  EXPECT_LE(d.track, 4u);
}

TEST(Bba, IgnoresBandwidthEstimate) {
  const video::Video v = default_flat_video(10);
  abr::Bba bba;
  const abr::Decision slow = bba.decide(make_context(v, 0, 50.0, 1e4));
  const abr::Decision fast = bba.decide(make_context(v, 0, 50.0, 1e9));
  EXPECT_EQ(slow.track, fast.track);  // purely buffer-based
}

TEST(Bba, MyopicOnSpikedChunk) {
  // The paper's Section 4 critique: a large (complex) chunk gets a *lower*
  // track than its neighbours at the same buffer level.
  const video::Video v = make_flat_video(
      {2e5, 4e5, 8e5, 1.6e6, 3.2e6, 6.4e6}, 10, 2.0, {{5, 2.5}});
  abr::Bba bba;
  const abr::Decision normal = bba.decide(make_context(v, 4, 50.0, 1e6));
  const abr::Decision spiked = bba.decide(make_context(v, 5, 50.0, 1e6));
  EXPECT_LT(spiked.track, normal.track);
}

TEST(Bba, BadConfigThrows) {
  abr::BbaConfig cfg;
  cfg.reservoir_s = 0.0;
  EXPECT_THROW(abr::Bba{cfg}, std::invalid_argument);
  cfg = {};
  cfg.cushion_fraction = 1.5;
  EXPECT_THROW(abr::Bba{cfg}, std::invalid_argument);
}

TEST(Rba, PicksHighestTrackKeepingFourChunks) {
  const video::Video v = default_flat_video(10);
  abr::Rba rba;
  // Buffer 20 s, bandwidth 3.2 Mbps. Track 5 chunk = 12.8 Mb -> 4 s download
  // -> buffer after = 20 - 4 + 2 = 18 >= 8: feasible, so track 5.
  const abr::Decision d = rba.decide(make_context(v, 0, 20.0, 3.2e6));
  EXPECT_EQ(d.track, 5u);
}

TEST(Rba, DropsWhenBufferThin) {
  const video::Video v = default_flat_video(10);
  abr::Rba rba;
  // Buffer 8 s: track 5 -> 8 - 4 + 2 = 6 < 8 infeasible; track 4 (6.4 Mb,
  // 2 s) -> 8 - 2 + 2 = 8 >= 8 feasible.
  const abr::Decision d = rba.decide(make_context(v, 0, 8.0, 3.2e6));
  EXPECT_EQ(d.track, 4u);
}

TEST(Rba, FallsToLowestWhenNothingFeasible) {
  const video::Video v = default_flat_video(10);
  abr::Rba rba;
  const abr::Decision d = rba.decide(make_context(v, 0, 0.5, 1e5));
  EXPECT_EQ(d.track, 0u);
}

TEST(Rba, MyopicOnSpikedChunk) {
  const video::Video v = make_flat_video(
      {2e5, 4e5, 8e5, 1.6e6, 3.2e6, 6.4e6}, 10, 2.0, {{5, 2.5}});
  abr::Rba rba;
  const abr::Decision normal = rba.decide(make_context(v, 4, 12.0, 2e6));
  const abr::Decision spiked = rba.decide(make_context(v, 5, 12.0, 2e6));
  EXPECT_LT(spiked.track, normal.track);
}

TEST(Rba, ScalesWithBandwidth) {
  const video::Video v = default_flat_video(10);
  abr::Rba rba;
  const abr::Decision slow = rba.decide(make_context(v, 0, 12.0, 5e5));
  const abr::Decision fast = rba.decide(make_context(v, 0, 12.0, 2e7));
  EXPECT_LT(slow.track, fast.track);
}

TEST(Rba, BadConfigThrows) {
  abr::RbaConfig cfg;
  cfg.min_chunks_after = -1;
  EXPECT_THROW(abr::Rba{cfg}, std::invalid_argument);
}

}  // namespace
