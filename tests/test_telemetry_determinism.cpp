// Thread-count determinism: the same ExperimentSpec must produce
// byte-identical merged telemetry (event stream and deterministic metrics
// fingerprint) at 1, 2, and 8 worker threads, because the harness folds
// per-trace sinks in trace-index order after the workers join. Also covers
// the spec-validation satellites: the kMaxThreads guard and the rejection
// of session-level sinks in run_experiment.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cava.h"
#include "net/bandwidth_estimator.h"
#include "net/trace_gen.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "sim/experiment.h"
#include "test_util.h"
#include "video/dataset.h"

namespace {

using namespace vbr;

struct MergedTelemetry {
  std::string serialized_events;  ///< Every merged event, via to_jsonl.
  std::string fingerprint;        ///< MetricsRegistry fingerprint.
  sim::ExperimentResult result;
};

MergedTelemetry run_at(const video::Video& video,
                       const std::vector<net::Trace>& traces,
                       unsigned threads) {
  obs::MemoryTraceSink sink;
  obs::MetricsRegistry registry;
  sim::ExperimentSpec spec;
  spec.video = &video;
  spec.traces = traces;
  spec.make_scheme = [] { return core::make_cava_p123(); };
  spec.threads = threads;
  spec.trace = &sink;
  spec.metrics = &registry;
  MergedTelemetry out{.serialized_events = {},
                      .fingerprint = {},
                      .result = sim::run_experiment(spec)};
  for (const obs::DecisionEvent& ev : sink.events()) {
    out.serialized_events += obs::to_jsonl(ev);
    out.serialized_events += '\n';
  }
  out.fingerprint = registry.deterministic_fingerprint();
  return out;
}

TEST(TelemetryDeterminism, MergedStreamsIdenticalAcrossThreadCounts) {
  const video::Video v =
      video::make_video("ED", video::Genre::kAnimation, video::Codec::kH264,
                        2.0, 2.0, 42, 120.0);
  const std::vector<net::Trace> traces = net::make_lte_trace_set(6, 7);

  const MergedTelemetry t1 = run_at(v, traces, 1);
  const MergedTelemetry t2 = run_at(v, traces, 2);
  const MergedTelemetry t8 = run_at(v, traces, 8);

  ASSERT_FALSE(t1.serialized_events.empty());
  EXPECT_EQ(t1.serialized_events, t2.serialized_events);
  EXPECT_EQ(t1.serialized_events, t8.serialized_events);
  EXPECT_EQ(t1.fingerprint, t2.fingerprint);
  EXPECT_EQ(t1.fingerprint, t8.fingerprint);

  // Repeat-run identity at a fixed thread count, for good measure.
  const MergedTelemetry again = run_at(v, traces, 8);
  EXPECT_EQ(t8.serialized_events, again.serialized_events);
  EXPECT_EQ(t8.fingerprint, again.fingerprint);
}

TEST(TelemetryDeterminism, MergedEventsOrderedByTraceIndex) {
  const video::Video v = testutil::default_flat_video(10);
  const std::vector<net::Trace> traces = {testutil::flat_trace(2e6),
                                          testutil::flat_trace(4e6),
                                          testutil::flat_trace(8e6)};
  obs::MemoryTraceSink sink;
  sim::ExperimentSpec spec;
  spec.video = &v;
  spec.traces = traces;
  spec.make_scheme = [] { return core::make_cava_p123(); };
  spec.threads = 3;
  spec.trace = &sink;
  (void)sim::run_experiment(spec);
  ASSERT_EQ(sink.events().size(), 30u);
  for (std::size_t k = 0; k < sink.events().size(); ++k) {
    const obs::DecisionEvent& ev = sink.events()[k];
    // Global seq renumbered over the merged stream; session id is the trace
    // index; all of trace 0 precedes all of trace 1, etc.
    EXPECT_EQ(ev.seq, k);
    EXPECT_EQ(ev.session_id, k / 10);
    EXPECT_EQ(ev.chunk_index, k % 10);
  }
}

TEST(TelemetryDeterminism, TelemetryDoesNotPerturbQoeResults) {
  const video::Video v = testutil::default_flat_video(20);
  const std::vector<net::Trace> traces = net::make_lte_trace_set(4, 21);
  sim::ExperimentSpec plain;
  plain.video = &v;
  plain.traces = traces;
  plain.make_scheme = [] { return core::make_cava_p123(); };
  plain.threads = 2;
  const sim::ExperimentResult base = sim::run_experiment(plain);
  const MergedTelemetry traced = run_at(v, traces, 2);
  ASSERT_EQ(base.per_trace.size(), traced.result.per_trace.size());
  for (std::size_t i = 0; i < base.per_trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(base.per_trace[i].rebuffer_s,
                     traced.result.per_trace[i].rebuffer_s);
    EXPECT_DOUBLE_EQ(base.per_trace[i].all_quality_mean,
                     traced.result.per_trace[i].all_quality_mean);
    EXPECT_DOUBLE_EQ(base.per_trace[i].data_usage_mb,
                     traced.result.per_trace[i].data_usage_mb);
  }
}

TEST(TelemetryDeterminism, AbsurdThreadCountRejected) {
  const video::Video v = testutil::default_flat_video(4);
  const std::vector<net::Trace> traces = {testutil::flat_trace(2e6)};
  sim::ExperimentSpec spec;
  spec.video = &v;
  spec.traces = traces;
  spec.make_scheme = [] { return core::make_cava_p123(); };
  spec.threads = sim::kMaxThreads + 1;
  EXPECT_THROW((void)sim::run_experiment(spec), std::invalid_argument);
  spec.threads = sim::kMaxThreads;  // the bound itself is legal
  EXPECT_NO_THROW((void)sim::run_experiment(spec));
}

TEST(TelemetryDeterminism, SessionLevelSinksRejected) {
  const video::Video v = testutil::default_flat_video(4);
  const std::vector<net::Trace> traces = {testutil::flat_trace(2e6)};
  sim::ExperimentSpec spec;
  spec.video = &v;
  spec.traces = traces;
  spec.make_scheme = [] { return core::make_cava_p123(); };

  obs::MemoryTraceSink sink;
  spec.session.trace = &sink;  // shared across workers: must be refused
  EXPECT_THROW((void)sim::run_experiment(spec), std::invalid_argument);
  spec.session.trace = nullptr;

  obs::MetricsRegistry reg;
  spec.session.metrics = &reg;
  EXPECT_THROW((void)sim::run_experiment(spec), std::invalid_argument);
  spec.session.metrics = nullptr;

  // The experiment-level slots are the supported path.
  spec.trace = &sink;
  spec.metrics = &reg;
  EXPECT_NO_THROW((void)sim::run_experiment(spec));
  EXPECT_EQ(sink.events().size(), 4u);
}

}  // namespace
