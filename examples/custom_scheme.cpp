// How to plug your own rate-adaptation logic into the simulator: implement
// abr::AbrScheme, then run it through the same sessions/experiments as the
// built-in schemes. The example scheme is a deliberately simple hybrid —
// throughput-based with a buffer safety floor — evaluated against CAVA.
//
//   $ ./custom_scheme [num_traces]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/cava.h"
#include "net/trace_gen.h"
#include "sim/experiment.h"
#include "video/dataset.h"

namespace {

using namespace vbr;

// A minimal custom scheme: pick the highest track whose *next chunk* can be
// downloaded within half the current buffer, assuming the estimate holds.
class HalfBufferRule final : public abr::AbrScheme {
 public:
  [[nodiscard]] abr::Decision decide(const abr::StreamContext& ctx) override {
    abr::validate_context(ctx);
    const video::Video& v = *ctx.video;
    std::size_t best = 0;
    for (std::size_t l = 0; l < v.num_tracks(); ++l) {
      const double dl_s = v.chunk_size_bits(l, ctx.next_chunk) /
                          ctx.est_bandwidth_bps;
      if (dl_s <= 0.5 * ctx.buffer_s) {
        best = l;
      }
    }
    return abr::Decision{.track = best};
  }
  [[nodiscard]] std::string name() const override {
    return "half-buffer-rule";
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_traces =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 30;

  const video::Video ed = video::make_video(
      "ED", video::Genre::kAnimation, video::Codec::kH264, 2.0, 2.0, 42);
  const auto traces = net::make_lte_trace_set(num_traces, 7);

  std::printf("%-18s %8s %8s %8s %8s %8s\n", "scheme", "Q4qual", "low%",
              "rebuf(s)", "change", "MB");
  const std::vector<std::pair<const char*, sim::SchemeFactory>> schemes = {
      {"half-buffer-rule",
       [] { return std::make_unique<HalfBufferRule>(); }},
      {"CAVA", [] { return core::make_cava_p123(); }},
  };
  for (const auto& [name, factory] : schemes) {
    sim::ExperimentSpec spec;
    spec.video = &ed;
    spec.traces = traces;
    spec.make_scheme = factory;
    const sim::ExperimentResult r = sim::run_experiment(spec);
    std::printf("%-18s %8.1f %8.1f %8.2f %8.2f %8.1f\n", name,
                r.mean_q4_quality, r.mean_low_quality_pct,
                r.mean_rebuffer_s, r.mean_quality_change,
                r.mean_data_usage_mb);
  }
  std::printf("\nImplementing AbrScheme gives you sessions, experiments, "
              "live mode and the full metric pipeline for free.\n");
  return 0;
}
