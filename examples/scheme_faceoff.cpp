// Scheme face-off: run CAVA and the baseline ABR schemes over a set of LTE
// traces on one video, and print the paper's five QoE metrics side by side
// (the Section 6.3 comparison in miniature).
//
//   $ ./scheme_faceoff [num_traces]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "abr/bba.h"
#include "abr/bola.h"
#include "abr/mpc.h"
#include "abr/panda_cq.h"
#include "abr/rba.h"
#include "core/cava.h"
#include "net/trace_gen.h"
#include "sim/experiment.h"
#include "video/dataset.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::size_t num_traces =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 50;

  const video::Video ed = video::make_video(
      "ED-ffmpeg-h264", video::Genre::kAnimation, video::Codec::kH264, 2.0,
      2.0, /*seed=*/42);
  const std::vector<net::Trace> traces =
      net::make_lte_trace_set(num_traces, /*seed=*/7);

  struct Entry {
    const char* name;
    sim::SchemeFactory factory;
  };
  const std::vector<Entry> schemes = {
      {"CAVA", [] { return core::make_cava_p123(); }},
      {"MPC",
       [] { return std::make_unique<abr::Mpc>(abr::mpc_config()); }},
      {"RobustMPC",
       [] { return std::make_unique<abr::Mpc>(abr::robust_mpc_config()); }},
      {"PANDA/CQ max-min",
       [] {
         abr::PandaCqConfig c;
         c.criterion = abr::PandaCriterion::kMaxMin;
         return std::make_unique<abr::PandaCq>(c);
       }},
      {"PANDA/CQ max-sum",
       [] {
         abr::PandaCqConfig c;
         c.criterion = abr::PandaCriterion::kMaxSum;
         return std::make_unique<abr::PandaCq>(c);
       }},
      {"BOLA-E (seg)",
       [] {
         abr::BolaConfig c;
         c.size_view = abr::BolaSizeView::kSegment;
         return std::make_unique<abr::Bola>(c);
       }},
      {"BBA-1", [] { return std::make_unique<abr::Bba>(); }},
      {"RBA", [] { return std::make_unique<abr::Rba>(); }},
  };

  std::printf("video %s over %zu LTE traces (VMAF phone model)\n",
              ed.name().c_str(), traces.size());
  std::printf("%-18s %8s %8s %8s %8s %8s %8s\n", "scheme", "Q4qual",
              "Q13qual", "low%", "rebuf(s)", "change", "MB");
  for (const Entry& e : schemes) {
    sim::ExperimentSpec spec;
    spec.video = &ed;
    spec.traces = traces;
    spec.make_scheme = e.factory;
    const sim::ExperimentResult r = sim::run_experiment(spec);
    std::printf("%-18s %8.1f %8.1f %8.1f %8.2f %8.2f %8.1f\n", e.name,
                r.mean_q4_quality, r.mean_q13_quality,
                r.mean_low_quality_pct, r.mean_rebuffer_s,
                r.mean_quality_change, r.mean_data_usage_mb);
  }
  return 0;
}
