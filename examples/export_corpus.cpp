// Exports the full synthetic corpus and trace sets to disk as DASH-like
// manifests (.mpd.txt) and trace files (.trace), so external tooling — or a
// future session of this library — can consume them without regenerating.
//
//   $ ./export_corpus [output_dir] [num_traces]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "net/trace_gen.h"
#include "net/trace_io.h"
#include "video/dataset.h"
#include "video/manifest.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const std::string out_dir = argc > 1 ? argv[1] : "corpus_export";
  const std::size_t num_traces =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 20;

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  std::size_t manifests = 0;
  for (const video::Video& v : video::make_full_corpus()) {
    const std::string path = out_dir + "/" + v.name() + ".mpd.txt";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    video::write_manifest(out, v);
    ++manifests;
  }
  std::printf("wrote %zu manifests to %s/\n", manifests, out_dir.c_str());

  const auto lte = net::make_lte_trace_set(num_traces, 7);
  const auto fcc = net::make_fcc_trace_set(num_traces, 11);
  const auto lte_paths = net::write_trace_set(out_dir, lte);
  const auto fcc_paths = net::write_trace_set(out_dir, fcc);
  std::printf("wrote %zu LTE and %zu FCC traces\n", lte_paths.size(),
              fcc_paths.size());

  // Round-trip check: parse one of each back.
  {
    std::ifstream in(out_dir + "/" + lte[0].name() + ".trace");
    const net::Trace t = net::read_trace(in);
    std::printf("verify: %s mean %.2f Mbps (original %.2f)\n",
                t.name().c_str(), t.average_bandwidth_bps() / 1e6,
                lte[0].average_bandwidth_bps() / 1e6);
  }
  {
    std::ifstream in(out_dir + "/ED-ffmpeg-h264.mpd.txt");
    const video::Video v = video::read_manifest(in);
    std::printf("verify: %s with %zu tracks x %zu chunks parsed back\n",
                v.name().c_str(), v.num_tracks(), v.num_chunks());
  }
  return 0;
}
