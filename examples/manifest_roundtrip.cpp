// Manifest round-trip: serialize a corpus video to a DASH-like manifest on
// disk, parse it back, verify the round-trip is lossless for the ABR logic,
// and stream from the parsed copy.
//
//   $ ./manifest_roundtrip [path]
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/cava.h"
#include "net/bandwidth_estimator.h"
#include "net/trace_gen.h"
#include "sim/session.h"
#include "video/dataset.h"
#include "video/manifest.h"

int main(int argc, char** argv) {
  using namespace vbr;
  const char* path = argc > 1 ? argv[1] : "ed_manifest.mpd.txt";

  const video::Video original = video::make_video(
      "ED", video::Genre::kAnimation, video::Codec::kH264, 2.0, 2.0, 42);

  {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", path);
      return 1;
    }
    video::write_manifest(out, original);
  }
  std::printf("wrote manifest to %s\n", path);

  std::ifstream in(path);
  const video::Video parsed = video::read_manifest(in);

  // The parsed copy must agree with the original wherever ABR logic looks.
  double max_rel_err = 0.0;
  for (std::size_t l = 0; l < original.num_tracks(); ++l) {
    for (std::size_t i = 0; i < original.num_chunks(); ++i) {
      const double a = original.chunk_size_bits(l, i);
      const double b = parsed.chunk_size_bits(l, i);
      max_rel_err = std::max(max_rel_err, std::abs(a - b) / a);
    }
  }
  std::printf("round-trip max relative segment-size error: %.2e\n",
              max_rel_err);
  if (max_rel_err > 1e-9) {
    std::fprintf(stderr, "round-trip mismatch!\n");
    return 1;
  }

  // Stream from the parsed manifest.
  core::Cava cava;
  net::HarmonicMeanEstimator est(5);
  const net::Trace trace = net::generate_lte_trace(3);
  const sim::SessionResult session =
      sim::run_session(parsed, trace, cava, est);
  std::printf("streamed parsed video: %zu chunks, %.2f s rebuffer, %.1f MB\n",
              session.chunks.size(), session.total_rebuffer_s,
              session.total_bits / 8e6);
  return 0;
}
