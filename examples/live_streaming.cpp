// Live VBR streaming (the paper's future-work setting): the player joins a
// stream in progress, chunks appear at the live edge as the encoder produces
// them, and every scheme's look-ahead is fenced at the edge.
//
//   $ ./live_streaming [join_latency_s]
#include <cstdio>
#include <cstdlib>

#include "core/cava.h"
#include "net/bandwidth_estimator.h"
#include "net/trace_gen.h"
#include "sim/live_session.h"
#include "video/dataset.h"

int main(int argc, char** argv) {
  using namespace vbr;

  sim::LiveSessionConfig cfg;
  if (argc > 1) {
    cfg.join_latency_s = std::atof(argv[1]);
  }

  const video::Video ed = video::make_video(
      "ED-live", video::Genre::kAnimation, video::Codec::kH264, 2.0, 2.0,
      42);
  const net::Trace trace = net::generate_lte_trace(5);
  std::printf("live stream: %s, join latency %.0f s, encoder delay %.0f s\n",
              ed.name().c_str(), cfg.join_latency_s, cfg.encoder_delay_s);
  std::printf("trace: %s, mean %.2f Mbps\n\n", trace.name().c_str(),
              trace.average_bandwidth_bps() / 1e6);

  core::Cava cava;
  net::HarmonicMeanEstimator est(5);
  const sim::LiveSessionResult r =
      sim::run_live_session(ed, trace, cava, est, cfg);

  std::printf("per-chunk trajectory (every 20th chunk):\n");
  std::printf("%-6s %-6s %10s %12s\n", "chunk", "track", "buffer(s)",
              "VMAF-phone");
  for (std::size_t i = 0; i < r.session.chunks.size(); i += 20) {
    const sim::ChunkRecord& c = r.session.chunks[i];
    std::printf("%-6zu %-6zu %10.1f %12.1f\n", c.index, c.track,
                c.buffer_after_s, c.quality.vmaf_phone);
  }

  std::printf("\nsession summary:\n");
  std::printf("  startup delay   : %.2f s\n", r.session.startup_delay_s);
  std::printf("  rebuffering     : %.2f s\n", r.session.total_rebuffer_s);
  std::printf("  mean latency    : %.1f s behind live\n", r.mean_latency_s);
  std::printf("  max latency     : %.1f s\n", r.max_latency_s);
  std::printf("  edge idle time  : %.1f s (waiting for the encoder)\n",
              r.edge_wait_s);
  std::printf("  data downloaded : %.1f MB\n", r.session.total_bits / 8e6);
  return 0;
}
