// Quickstart: build one VBR video and one LTE trace, stream it with CAVA,
// and print the per-session QoE — the smallest end-to-end use of the public
// API.
//
//   $ ./quickstart
#include <cstdio>

#include "core/cava.h"
#include "core/complexity_classifier.h"
#include "metrics/qoe.h"
#include "net/bandwidth_estimator.h"
#include "net/trace_gen.h"
#include "sim/session.h"
#include "video/dataset.h"

int main() {
  using namespace vbr;

  // 1. A ~10-minute VBR video: six tracks (144p..1080p), 2-second chunks,
  //    2x-capped, H.264 — the paper's FFmpeg-style encode of Elephant Dream.
  const video::Video ed = video::make_video(
      "ED", video::Genre::kAnimation, video::Codec::kH264,
      /*chunk_duration_s=*/2.0, /*cap_factor=*/2.0, /*seed=*/42);
  std::printf("video: %s, %zu tracks, %zu chunks of %.0f s\n",
              ed.name().c_str(), ed.num_tracks(), ed.num_chunks(),
              ed.chunk_duration_s());
  for (const video::Track& t : ed.tracks()) {
    std::printf("  track %d (%s): avg %.2f Mbps, peak/avg %.2fx\n",
                t.level(), t.resolution().label().c_str(),
                t.average_bitrate_bps() / 1e6, t.peak_to_average());
  }

  // 2. A synthetic LTE drive trace.
  const net::Trace trace = net::generate_lte_trace(/*seed=*/1);
  std::printf("trace: %s, %.0f s, mean %.2f Mbps\n", trace.name().c_str(),
              trace.duration_s(), trace.average_bandwidth_bps() / 1e6);

  // 3. Stream it with CAVA and the paper's default estimator.
  core::Cava cava;
  net::HarmonicMeanEstimator estimator(5);
  const sim::SessionResult session =
      sim::run_session(ed, trace, cava, estimator);

  // 4. QoE per the paper's five metrics (VMAF phone model on cellular).
  const core::ComplexityClassifier classifier(ed);
  const metrics::QoeSummary qoe = metrics::compute_qoe(
      session.to_played_chunks(video::QualityMetric::kVmafPhone,
                               classifier.classes()),
      session.total_rebuffer_s, session.startup_delay_s);

  std::printf("\nCAVA session results:\n");
  std::printf("  Q4 (complex-scene) quality : mean %.1f / median %.1f VMAF\n",
              qoe.q4_quality_mean, qoe.q4_quality_median);
  std::printf("  Q1-Q3 quality              : mean %.1f VMAF\n",
              qoe.q13_quality_mean);
  std::printf("  low-quality chunks (<40)   : %.1f%%\n", qoe.low_quality_pct);
  std::printf("  rebuffering                : %.2f s\n", qoe.rebuffer_s);
  std::printf("  startup delay              : %.2f s\n", qoe.startup_delay_s);
  std::printf("  avg quality change / chunk : %.2f VMAF\n",
              qoe.avg_quality_change);
  std::printf("  data usage                 : %.1f MB\n", qoe.data_usage_mb);
  return 0;
}
