// Dataset explorer: builds the 16-video corpus and prints the Section 2/3
// characterization — per-track bitrate statistics (coefficient of variation,
// peak-to-average ratio), cross-track size-rank consistency, and per-quartile
// encoding quality — the properties that motivate CAVA's design principles.
//
//   $ ./dataset_explorer
#include <cstdio>
#include <vector>

#include "core/complexity_classifier.h"
#include "metrics/stats.h"
#include "video/dataset.h"

namespace {

void characterize(const vbr::video::Video& v) {
  using namespace vbr;
  std::printf("\n%s (%s, %s, %.0f s chunks)\n", v.name().c_str(),
              to_string(v.genre()).c_str(), to_string(v.codec()).c_str(),
              v.chunk_duration_s());

  // Per-track bitrate statistics.
  std::printf("  %-6s %-10s %-10s %-9s %-9s\n", "track", "res", "avg Mbps",
              "CoV", "peak/avg");
  for (const video::Track& t : v.tracks()) {
    const std::vector<double> rates = t.chunk_bitrates_bps();
    std::printf("  %-6d %-10s %-10.2f %-9.2f %-9.2f\n", t.level(),
                t.resolution().label().c_str(),
                t.average_bitrate_bps() / 1e6,
                stats::coefficient_of_variation(rates), t.peak_to_average());
  }

  // Cross-track chunk-size rank correlation (paper: close to 1).
  const std::vector<double> mid =
      v.track(v.middle_track()).chunk_sizes_bits();
  double min_corr = 1.0;
  for (std::size_t l = 0; l < v.num_tracks(); ++l) {
    if (l == v.middle_track()) {
      continue;
    }
    min_corr = std::min(
        min_corr, stats::spearman(v.track(l).chunk_sizes_bits(), mid));
  }
  std::printf("  min cross-track size rank correlation vs middle: %.3f\n",
              min_corr);

  // Per-quartile quality on the middle (480p) track.
  const core::ComplexityClassifier cls(v);
  const video::Track& ref = v.track(v.middle_track());
  for (std::size_t q = 0; q < cls.num_classes(); ++q) {
    std::vector<double> vmaf;
    std::vector<double> bits;
    for (std::size_t i = 0; i < v.num_chunks(); ++i) {
      if (cls.class_of(i) == q) {
        vmaf.push_back(ref.chunk(i).quality.vmaf_phone);
        bits.push_back(ref.chunk(i).size_bits);
      }
    }
    if (vmaf.empty()) {
      continue;
    }
    std::printf(
        "  Q%zu chunks (480p): median size %7.0f bits, median VMAF-phone "
        "%5.1f\n",
        q + 1, stats::median(bits), stats::median(vmaf));
  }
}

}  // namespace

int main() {
  const std::vector<vbr::video::Video> corpus =
      vbr::video::make_full_corpus();
  std::printf("corpus: %zu videos\n", corpus.size());
  for (const vbr::video::Video& v : corpus) {
    characterize(v);
  }
  std::printf("\n-- 4x-capped variant (Sections 3.3 / 6.6) --\n");
  characterize(vbr::video::make_4x_capped_video());
  return 0;
}
