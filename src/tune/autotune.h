// Oboe-style parameter auto-tuning for CAVA (after Akhtar et al., SIGCOMM
// 2018, cited in the paper's related work): offline, simulate candidate
// configurations against a palette of network states (mean bandwidth x
// variability buckets) and record the best configuration per state; online,
// classify the current network state from the observed per-chunk
// throughputs and switch CAVA to that state's configuration.
//
// The tuned knobs are the ones the paper identifies as tradeoffs: the
// complex-scene inflation alpha+ (quality vs stall risk) and the base
// target buffer x_r (stall headroom vs reactivity).
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "abr/scheme.h"
#include "core/cava.h"
#include "video/video.h"
#include "core/config.h"
#include "net/trace.h"

namespace vbr::tune {

/// A bucket of network conditions.
struct NetworkState {
  double mean_bps_lo = 0.0;
  double mean_bps_hi = 0.0;
  double cov_lo = 0.0;  ///< Coefficient of variation bounds.
  double cov_hi = 0.0;

  [[nodiscard]] bool contains(double mean_bps, double cov) const {
    return mean_bps >= mean_bps_lo && mean_bps < mean_bps_hi &&
           cov >= cov_lo && cov < cov_hi;
  }
};

/// The offline-computed map: per state, the best configuration found.
struct TuningTable {
  std::vector<NetworkState> states;
  std::vector<core::CavaConfig> configs;  ///< Parallel to `states`.
  core::CavaConfig fallback;              ///< Used when no state matches.

  /// Configuration for the observed conditions.
  [[nodiscard]] const core::CavaConfig& lookup(double mean_bps, double cov) const;
};

/// Objective the offline tuner maximizes per (config, trace) simulation:
/// mean quality minus stall and low-quality penalties.
struct TuningObjective {
  double stall_penalty_per_s = 3.0;
  double low_quality_penalty = 1.0;  ///< Per percentage point.
};

/// Runs the offline tuning: for each network-state bucket, simulates every
/// candidate config over the calibration traces falling in that bucket and
/// keeps the best. States with no matching calibration trace get the
/// fallback config. Deterministic.
/// Throws std::invalid_argument on empty candidates or traces.
[[nodiscard]] TuningTable tune_offline(
    const video::Video& video, const std::vector<net::Trace>& calibration,
    const std::vector<core::CavaConfig>& candidates,
    const TuningObjective& objective = {});

/// A reasonable default candidate grid (alpha+ x base target buffer).
[[nodiscard]] std::vector<core::CavaConfig> default_candidate_grid();

/// Default network-state buckets (mean bandwidth tiers x variability).
[[nodiscard]] std::vector<NetworkState> default_state_grid();

/// Online wrapper: classifies the network from recent chunk throughputs and
/// delegates to a CAVA instance configured per the tuning table. Switching
/// configurations mid-session preserves no controller state (a new Cava is
/// bound), which mirrors Oboe's "reconfigure on state change".
class TunedCava final : public abr::AbrScheme {
 public:
  /// @param table   offline tuning result
  /// @param window  throughput samples used to classify the state
  explicit TunedCava(TuningTable table, std::size_t window = 10);

  [[nodiscard]] abr::Decision decide(const abr::StreamContext& ctx) override;
  void on_chunk_downloaded(const abr::StreamContext& ctx, std::size_t track,
                           double download_s) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "CAVA-tuned"; }

  /// The configuration currently in force (for tests/diagnostics).
  [[nodiscard]] const core::CavaConfig& active_config() const {
    return active_->config();
  }

 private:
  void maybe_switch(double est_bps);

  TuningTable table_;
  std::size_t window_;
  std::deque<double> throughputs_;
  std::unique_ptr<core::Cava> active_;
  const core::CavaConfig* active_entry_ = nullptr;
};

}  // namespace vbr::tune
