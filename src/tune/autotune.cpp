#include "tune/autotune.h"

#include <algorithm>
#include <stdexcept>

#include "core/complexity_classifier.h"
#include "metrics/qoe.h"
#include "metrics/stats.h"
#include "net/bandwidth_estimator.h"
#include "sim/session.h"

namespace vbr::tune {

const core::CavaConfig& TuningTable::lookup(double mean_bps,
                                            double cov) const {
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (states[i].contains(mean_bps, cov)) {
      return configs[i];
    }
  }
  return fallback;
}

std::vector<core::CavaConfig> default_candidate_grid() {
  std::vector<core::CavaConfig> grid;
  for (const double alpha : {1.1, 1.3, 1.5}) {
    for (const double xr : {40.0, 60.0, 80.0}) {
      core::CavaConfig c;
      c.alpha_complex = alpha;
      c.base_target_buffer_s = xr;
      grid.push_back(c);
    }
  }
  return grid;
}

std::vector<NetworkState> default_state_grid() {
  std::vector<NetworkState> states;
  const double mean_edges[] = {0.0, 1e6, 2.5e6, 5e6, 1e12};
  const double cov_edges[] = {0.0, 0.4, 0.8, 1e9};
  for (std::size_t m = 0; m + 1 < std::size(mean_edges); ++m) {
    for (std::size_t c = 0; c + 1 < std::size(cov_edges); ++c) {
      states.push_back(NetworkState{.mean_bps_lo = mean_edges[m],
                                    .mean_bps_hi = mean_edges[m + 1],
                                    .cov_lo = cov_edges[c],
                                    .cov_hi = cov_edges[c + 1]});
    }
  }
  return states;
}

namespace {

/// The objective score of one simulated session.
double score_session(const video::Video& video,
                     const core::ComplexityClassifier& cls,
                     const sim::SessionResult& session,
                     const TuningObjective& objective) {
  const metrics::QoeSummary qoe = metrics::compute_qoe(
      session.to_played_chunks(video::QualityMetric::kVmafPhone,
                               cls.classes()),
      session.total_rebuffer_s, session.startup_delay_s);
  (void)video;
  return qoe.all_quality_mean -
         objective.stall_penalty_per_s * qoe.rebuffer_s -
         objective.low_quality_penalty * qoe.low_quality_pct;
}

}  // namespace

TuningTable tune_offline(const video::Video& video,
                         const std::vector<net::Trace>& calibration,
                         const std::vector<core::CavaConfig>& candidates,
                         const TuningObjective& objective) {
  if (candidates.empty() || calibration.empty()) {
    throw std::invalid_argument("tune_offline: empty candidates or traces");
  }
  TuningTable table;
  table.states = default_state_grid();
  table.configs.assign(table.states.size(), candidates.front());
  table.fallback = core::CavaConfig{};

  const core::ComplexityClassifier cls(video);

  // Partition calibration traces into states.
  std::vector<std::vector<const net::Trace*>> per_state(table.states.size());
  for (const net::Trace& t : calibration) {
    const double mean = t.average_bandwidth_bps();
    const double cov =
        stats::coefficient_of_variation(t.samples_bps());
    for (std::size_t s = 0; s < table.states.size(); ++s) {
      if (table.states[s].contains(mean, cov)) {
        per_state[s].push_back(&t);
        break;
      }
    }
  }

  for (std::size_t s = 0; s < table.states.size(); ++s) {
    if (per_state[s].empty()) {
      continue;  // fallback config stays
    }
    double best_score = -1e300;
    for (const core::CavaConfig& cand : candidates) {
      double total = 0.0;
      for (const net::Trace* t : per_state[s]) {
        core::Cava cava(cand);
        net::HarmonicMeanEstimator est(5);
        const sim::SessionResult r = sim::run_session(video, *t, cava, est);
        total += score_session(video, cls, r, objective);
      }
      if (total > best_score) {
        best_score = total;
        table.configs[s] = cand;
      }
    }
  }
  return table;
}

TunedCava::TunedCava(TuningTable table, std::size_t window)
    : table_(std::move(table)),
      window_(window),
      active_(std::make_unique<core::Cava>(table_.fallback)),
      active_entry_(&table_.fallback) {
  if (window_ < 2) {
    throw std::invalid_argument("TunedCava: window must be >= 2");
  }
  if (table_.states.size() != table_.configs.size()) {
    throw std::invalid_argument("TunedCava: malformed table");
  }
}

void TunedCava::maybe_switch(double est_bps) {
  double mean = est_bps;
  double cov = 0.0;
  if (throughputs_.size() >= 3) {
    const std::vector<double> xs(throughputs_.begin(), throughputs_.end());
    mean = stats::mean(xs);
    cov = stats::coefficient_of_variation(xs);
  }
  const core::CavaConfig& wanted = table_.lookup(mean, cov);
  if (&wanted != active_entry_) {
    active_ = std::make_unique<core::Cava>(wanted);
    active_entry_ = &wanted;
  }
}

abr::Decision TunedCava::decide(const abr::StreamContext& ctx) {
  maybe_switch(ctx.est_bandwidth_bps);
  return active_->decide(ctx);
}

void TunedCava::on_chunk_downloaded(const abr::StreamContext& ctx,
                                    std::size_t track, double download_s) {
  const double tput =
      ctx.video->chunk_size_bits(track, ctx.next_chunk) / download_s;
  throughputs_.push_back(tput);
  if (throughputs_.size() > window_) {
    throughputs_.pop_front();
  }
  active_->on_chunk_downloaded(ctx, track, download_s);
}

void TunedCava::reset() {
  throughputs_.clear();
  active_ = std::make_unique<core::Cava>(table_.fallback);
  active_entry_ = &table_.fallback;
}

}  // namespace vbr::tune
