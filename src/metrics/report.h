// CSV reporting for experiment outputs: per-trace QoE rows, pooled
// per-chunk quality samples, and fault/retry aggregates, consumable by any
// plotting pipeline.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>

#include "metrics/qoe.h"

namespace vbr::metrics {

/// Per-session fault-injection and retry aggregates (filled by the sim
/// layer from its chunk records; all-zero when faults are disabled).
struct FaultSummary {
  std::size_t chunks = 0;            ///< Chunk positions in the session.
  std::size_t skipped = 0;           ///< Chunks that exhausted all attempts.
  std::size_t downgraded = 0;        ///< Chunks downgraded to the bottom track.
  std::size_t attempts = 0;          ///< Download attempts consumed in total.
  std::size_t connect_failures = 0;  ///< Hard pre-first-byte failures.
  std::size_t mid_drops = 0;         ///< Mid-transfer connection drops.
  std::size_t timeouts = 0;          ///< Response timeouts.
  double backoff_wait_s = 0.0;       ///< Total idle time between attempts.
  double resumed_mb = 0.0;           ///< Megabytes salvaged via byte-range resume.
  double wasted_mb = 0.0;            ///< Megabytes burned (drops + abandonment).

  /// Mean attempts per chunk (1.0 when nothing ever failed).
  [[nodiscard]] double attempts_per_chunk() const;
  /// Percent (0-100) of chunk positions skipped.
  [[nodiscard]] double skipped_pct() const;
};

/// Writes a CSV header + one row per session summary:
/// label,trace_index,q4_mean,q4_median,q13_mean,all_mean,low_pct,
/// rebuffer_s,startup_s,quality_change,data_mb
void write_qoe_csv(std::ostream& os, const std::string& label,
                   std::span<const QoeSummary> per_trace,
                   bool include_header = true);

/// Writes pooled per-chunk quality samples, one row per chunk:
/// label,kind,quality  (kind in {q4, q13}).
void write_quality_samples_csv(std::ostream& os, const std::string& label,
                               std::span<const QoeSummary> per_trace,
                               bool include_header = true);

/// Writes a CSV header + one row per session's fault/retry aggregates:
/// label,trace_index,chunks,skipped,downgraded,attempts,connect_failures,
/// mid_drops,timeouts,backoff_wait_s,resumed_mb,wasted_mb
void write_fault_csv(std::ostream& os, const std::string& label,
                     std::span<const FaultSummary> per_trace,
                     bool include_header = true);

/// Serializes to a string (convenience for tests and small exports).
[[nodiscard]] std::string qoe_csv_string(const std::string& label,
                                         std::span<const QoeSummary> rows);

/// Serializes fault rows to a string.
[[nodiscard]] std::string fault_csv_string(const std::string& label,
                                           std::span<const FaultSummary> rows);

}  // namespace vbr::metrics
