// CSV reporting for experiment outputs: per-trace QoE rows and pooled
// per-chunk quality samples, consumable by any plotting pipeline.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "metrics/qoe.h"

namespace vbr::metrics {

/// Writes a CSV header + one row per session summary:
/// label,trace_index,q4_mean,q4_median,q13_mean,all_mean,low_pct,
/// rebuffer_s,startup_s,quality_change,data_mb
void write_qoe_csv(std::ostream& os, const std::string& label,
                   std::span<const QoeSummary> per_trace,
                   bool include_header = true);

/// Writes pooled per-chunk quality samples, one row per chunk:
/// label,kind,quality  (kind in {q4, q13}).
void write_quality_samples_csv(std::ostream& os, const std::string& label,
                               std::span<const QoeSummary> per_trace,
                               bool include_header = true);

/// Serializes to a string (convenience for tests and small exports).
[[nodiscard]] std::string qoe_csv_string(const std::string& label,
                                         std::span<const QoeSummary> rows);

}  // namespace vbr::metrics
