#include "metrics/qoe.h"

#include <cmath>
#include <stdexcept>

#include "metrics/stats.h"

namespace vbr::metrics {

QoeSummary compute_qoe(std::span<const PlayedChunk> played, double rebuffer_s,
                       double startup_s, const QoeConfig& config) {
  if (played.empty()) {
    throw std::invalid_argument("compute_qoe: no played chunks");
  }
  QoeSummary s;
  s.rebuffer_s = rebuffer_s;
  s.startup_delay_s = startup_s;

  std::size_t low = 0;
  double bits = 0.0;
  for (const PlayedChunk& c : played) {
    s.all_qualities.push_back(c.quality);
    if (c.complexity_class == config.top_class) {
      s.q4_qualities.push_back(c.quality);
    } else {
      s.q13_qualities.push_back(c.quality);
    }
    if (c.quality < config.low_quality_threshold) {
      ++low;
    }
    bits += c.size_bits;
  }
  s.low_quality_pct =
      100.0 * static_cast<double>(low) / static_cast<double>(played.size());
  s.data_usage_mb = bits / 8.0 / 1e6;
  s.all_quality_mean = stats::mean(s.all_qualities);
  if (!s.q4_qualities.empty()) {
    s.q4_quality_mean = stats::mean(s.q4_qualities);
    s.q4_quality_median = stats::median(s.q4_qualities);
  }
  if (!s.q13_qualities.empty()) {
    s.q13_quality_mean = stats::mean(s.q13_qualities);
  }

  double change_sum = 0.0;
  for (std::size_t i = 1; i < played.size(); ++i) {
    change_sum += std::abs(played[i].quality - played[i - 1].quality);
  }
  s.avg_quality_change =
      played.size() > 1
          ? change_sum / static_cast<double>(played.size() - 1)
          : 0.0;
  return s;
}

}  // namespace vbr::metrics
