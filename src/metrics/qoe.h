// The paper's five evaluation metrics (Section 6.1), computed over the
// delivered video (the chunks actually downloaded and played back):
//
//  1. quality of Q4 chunks      — perceptual quality of the most complex
//                                 scenes (higher is better);
//  2. low-quality chunk %       — fraction of played chunks below a VMAF
//                                 threshold (40 = poor/unacceptable);
//  3. rebuffering duration      — total stall time;
//  4. average quality change    — mean |q_{i+1} - q_i| over consecutive
//                                 played chunks;
//  5. data usage                — total bits downloaded.
//
// Quality is a perceptual metric (VMAF phone for cellular viewing, VMAF TV
// for broadband/TV viewing), not bitrate — the paper explains why average
// bitrate is a particularly poor metric for VBR.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "video/chunk.h"

namespace vbr::metrics {

/// One played-back chunk, as the QoE layer sees it.
struct PlayedChunk {
  std::size_t index = 0;        ///< Playback position.
  double quality = 0.0;         ///< Score under the chosen metric.
  double size_bits = 0.0;       ///< Bits downloaded for this chunk.
  std::size_t complexity_class = 0;  ///< Q1..Qn class of this position.
};

struct QoeConfig {
  double low_quality_threshold = 40.0;  ///< VMAF below this is "low quality".
  std::size_t top_class = 3;            ///< Class index of "Q4" chunks.
};

/// Session-level QoE summary.
struct QoeSummary {
  double q4_quality_mean = 0.0;
  double q4_quality_median = 0.0;
  double q13_quality_mean = 0.0;   ///< Mean quality of non-Q4 chunks.
  double all_quality_mean = 0.0;
  double low_quality_pct = 0.0;    ///< Percent (0-100) of chunks below threshold.
  double rebuffer_s = 0.0;
  double startup_delay_s = 0.0;
  double avg_quality_change = 0.0; ///< Mean |q_{i+1} - q_i|.
  double data_usage_mb = 0.0;      ///< Megabytes downloaded.

  /// Per-chunk quality values, kept for CDF plots.
  std::vector<double> q4_qualities;
  std::vector<double> q13_qualities;
  std::vector<double> all_qualities;
};

/// Computes the summary for one session.
/// @param played      chunks in playback order
/// @param rebuffer_s  total stall time of the session
/// @param startup_s   startup delay of the session
/// Throws std::invalid_argument if `played` is empty.
[[nodiscard]] QoeSummary compute_qoe(std::span<const PlayedChunk> played,
                                     double rebuffer_s, double startup_s,
                                     const QoeConfig& config = {});

}  // namespace vbr::metrics
