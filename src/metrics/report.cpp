#include "metrics/report.h"

#include <ostream>
#include <sstream>

namespace vbr::metrics {

void write_qoe_csv(std::ostream& os, const std::string& label,
                   std::span<const QoeSummary> per_trace,
                   bool include_header) {
  if (include_header) {
    os << "label,trace_index,q4_mean,q4_median,q13_mean,all_mean,low_pct,"
          "rebuffer_s,startup_s,quality_change,data_mb\n";
  }
  for (std::size_t i = 0; i < per_trace.size(); ++i) {
    const QoeSummary& s = per_trace[i];
    os << label << ',' << i << ',' << s.q4_quality_mean << ','
       << s.q4_quality_median << ',' << s.q13_quality_mean << ','
       << s.all_quality_mean << ',' << s.low_quality_pct << ','
       << s.rebuffer_s << ',' << s.startup_delay_s << ','
       << s.avg_quality_change << ',' << s.data_usage_mb << '\n';
  }
}

void write_quality_samples_csv(std::ostream& os, const std::string& label,
                               std::span<const QoeSummary> per_trace,
                               bool include_header) {
  if (include_header) {
    os << "label,kind,quality\n";
  }
  for (const QoeSummary& s : per_trace) {
    for (const double q : s.q4_qualities) {
      os << label << ",q4," << q << '\n';
    }
    for (const double q : s.q13_qualities) {
      os << label << ",q13," << q << '\n';
    }
  }
}

double FaultSummary::attempts_per_chunk() const {
  return chunks == 0 ? 0.0
                     : static_cast<double>(attempts) /
                           static_cast<double>(chunks);
}

double FaultSummary::skipped_pct() const {
  return chunks == 0 ? 0.0
                     : 100.0 * static_cast<double>(skipped) /
                           static_cast<double>(chunks);
}

void write_fault_csv(std::ostream& os, const std::string& label,
                     std::span<const FaultSummary> per_trace,
                     bool include_header) {
  if (include_header) {
    os << "label,trace_index,chunks,skipped,downgraded,attempts,"
          "connect_failures,mid_drops,timeouts,backoff_wait_s,resumed_mb,"
          "wasted_mb\n";
  }
  for (std::size_t i = 0; i < per_trace.size(); ++i) {
    const FaultSummary& s = per_trace[i];
    os << label << ',' << i << ',' << s.chunks << ',' << s.skipped << ','
       << s.downgraded << ',' << s.attempts << ',' << s.connect_failures
       << ',' << s.mid_drops << ',' << s.timeouts << ',' << s.backoff_wait_s
       << ',' << s.resumed_mb << ',' << s.wasted_mb << '\n';
  }
}

std::string qoe_csv_string(const std::string& label,
                           std::span<const QoeSummary> rows) {
  std::ostringstream oss;
  write_qoe_csv(oss, label, rows);
  return oss.str();
}

std::string fault_csv_string(const std::string& label,
                             std::span<const FaultSummary> rows) {
  std::ostringstream oss;
  write_fault_csv(oss, label, rows);
  return oss.str();
}

}  // namespace vbr::metrics
