// Pluggable session-level QoE models, so experiment arms can be ranked under
// multiple QoE definitions in one run. Duanmu et al. (PAPERS.md) show ABR
// scheme rankings are not robust to the choice of QoE model: a linear
// mean-quality model, a model that weights late rebuffering more heavily,
// and a recency-weighted "memory effect" model can order the same schemes
// differently. Device classes come for free: every delivered chunk carries
// both VMAF-TV and VMAF-phone scores (video/quality_model), so one session
// can be scored under both without re-simulation.
//
// All models are stateless and score() is const — a single suite instance is
// shared read-only across fleet worker threads.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "video/chunk.h"

namespace vbr::metrics {

/// One played session under one device quality metric, in playback order.
/// Skipped chunks are excluded (they were never played).
struct QoeSessionView {
  std::vector<double> quality;  ///< Per played chunk, chosen-metric score.
  std::vector<double> stall_s;  ///< Rebuffering incurred fetching chunk i.
  double startup_delay_s = 0.0;
  double chunk_duration_s = 4.0;
};

/// Shared penalty weights. Quality units are the metric's (VMAF points for
/// the standard suite); penalties convert seconds into quality points.
struct QoeModelParams {
  double switch_penalty = 1.0;    ///< Per unit of |quality change|.
  double rebuffer_penalty = 25.0; ///< Per mean stall-second per chunk.
  double startup_penalty = 5.0;   ///< Per second of startup delay.
  /// Rebuffer-position-aware model: stall weight ramps linearly with
  /// playback progress from min (first chunk) to max (last chunk).
  double position_weight_min = 0.5;
  double position_weight_max = 2.0;
  /// Memory-effect model: exponential recency half-life, in chunks counted
  /// back from the end of the session.
  double memory_half_life_chunks = 12.0;
};

/// Interface: maps a session view to a scalar score (higher is better).
class QoeModel {
 public:
  virtual ~QoeModel() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual double score(const QoeSessionView& view) const = 0;
};

/// Linear QoE (Yin et al. / the paper's Section 6 metrics collapsed to one
/// scalar): mean quality - switch_penalty * mean |dq| - rebuffer_penalty *
/// mean stall - startup_penalty * startup. An empty view scores
/// -startup_penalty * startup.
class LinearQoe final : public QoeModel {
 public:
  explicit LinearQoe(QoeModelParams params = {}) : params_(params) {}
  [[nodiscard]] const char* name() const override { return "linear"; }
  [[nodiscard]] double score(const QoeSessionView& view) const override;

 private:
  QoeModelParams params_;
};

/// Rebuffer-position-aware QoE: like LinearQoe, but each stall's penalty is
/// scaled by w(i) = wmin + (wmax - wmin) * i / (n - 1) — a stall deep into
/// the session is more annoying than one right after startup (Duanmu et
/// al.). Startup delay is charged at weight wmin.
class RebufferPositionQoe final : public QoeModel {
 public:
  explicit RebufferPositionQoe(QoeModelParams params = {}) : params_(params) {}
  [[nodiscard]] const char* name() const override { return "pos_rebuffer"; }
  [[nodiscard]] double score(const QoeSessionView& view) const override;

 private:
  QoeModelParams params_;
};

/// Memory-effect (recency-weighted) QoE: chunk i gets weight
/// 2^-((n-1-i)/half_life), so the end of the session dominates the score —
/// viewers remember how it ended. Quality, switches, and stalls all use the
/// recency weights (normalized); startup delay decays by the same factor
/// with session length.
class MemoryEffectQoe final : public QoeModel {
 public:
  explicit MemoryEffectQoe(QoeModelParams params = {}) : params_(params) {}
  [[nodiscard]] const char* name() const override { return "memory"; }
  [[nodiscard]] double score(const QoeSessionView& view) const override;

 private:
  QoeModelParams params_;
};

/// One (model, device metric) pair in a suite; `id` is the stable key used
/// in reports and checkpoint fingerprints (e.g. "linear_tv").
struct QoeModelSpec {
  std::string id;
  video::QualityMetric metric = video::QualityMetric::kVmafTv;
  std::shared_ptr<const QoeModel> model;
};

/// An ordered, immutable set of scoring definitions applied to every arm.
class QoeModelSuite {
 public:
  QoeModelSuite() = default;
  explicit QoeModelSuite(std::vector<QoeModelSpec> specs)
      : specs_(std::move(specs)) {}

  /// The default suite: linear under both device classes, plus the
  /// position-aware and memory-effect variants on the phone metric.
  [[nodiscard]] static QoeModelSuite standard(const QoeModelParams& params = {});

  [[nodiscard]] std::size_t size() const { return specs_.size(); }
  [[nodiscard]] const QoeModelSpec& at(std::size_t i) const {
    return specs_.at(i);
  }
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::vector<QoeModelSpec> specs_;
};

}  // namespace vbr::metrics
