#include "metrics/qoe_model.h"

#include <cmath>
#include <cstddef>

namespace vbr::metrics {
namespace {

double mean_abs_switch(const std::vector<double>& q) {
  if (q.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < q.size(); ++i) {
    acc += std::fabs(q[i] - q[i - 1]);
  }
  return acc / static_cast<double>(q.size() - 1);
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

// Playback progress of chunk i in [0, 1]; a one-chunk session counts as 0.
double progress(std::size_t i, std::size_t n) {
  return n < 2 ? 0.0
               : static_cast<double>(i) / static_cast<double>(n - 1);
}

}  // namespace

double LinearQoe::score(const QoeSessionView& view) const {
  if (view.quality.empty()) {
    return -params_.startup_penalty * view.startup_delay_s;
  }
  return mean_of(view.quality) -
         params_.switch_penalty * mean_abs_switch(view.quality) -
         params_.rebuffer_penalty * mean_of(view.stall_s) -
         params_.startup_penalty * view.startup_delay_s;
}

double RebufferPositionQoe::score(const QoeSessionView& view) const {
  if (view.quality.empty()) {
    return -params_.startup_penalty * params_.position_weight_min *
           view.startup_delay_s;
  }
  const std::size_t n = view.quality.size();
  double weighted_stall = 0.0;
  for (std::size_t i = 0; i < view.stall_s.size(); ++i) {
    const double w = params_.position_weight_min +
                     (params_.position_weight_max -
                      params_.position_weight_min) *
                         progress(i, n);
    weighted_stall += w * view.stall_s[i];
  }
  weighted_stall /= static_cast<double>(n);
  return mean_of(view.quality) -
         params_.switch_penalty * mean_abs_switch(view.quality) -
         params_.rebuffer_penalty * weighted_stall -
         params_.startup_penalty * params_.position_weight_min *
             view.startup_delay_s;
}

double MemoryEffectQoe::score(const QoeSessionView& view) const {
  const double half_life = params_.memory_half_life_chunks;
  if (view.quality.empty()) {
    return -params_.startup_penalty * view.startup_delay_s;
  }
  const std::size_t n = view.quality.size();
  // w_i = 2^-((n-1-i)/h): the last chunk has weight 1, earlier chunks decay.
  double w_sum = 0.0;
  double q_acc = 0.0;
  double stall_acc = 0.0;
  double switch_acc = 0.0;
  double switch_w_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double age = static_cast<double>(n - 1 - i);
    const double w = std::exp2(-age / half_life);
    w_sum += w;
    q_acc += w * view.quality[i];
    if (i < view.stall_s.size()) stall_acc += w * view.stall_s[i];
    if (i >= 1) {
      switch_acc += w * std::fabs(view.quality[i] - view.quality[i - 1]);
      switch_w_sum += w;
    }
  }
  const double startup_decay =
      std::exp2(-static_cast<double>(n - 1) / half_life);
  return q_acc / w_sum -
         params_.switch_penalty *
             (switch_w_sum > 0.0 ? switch_acc / switch_w_sum : 0.0) -
         params_.rebuffer_penalty * stall_acc / w_sum -
         params_.startup_penalty * startup_decay * view.startup_delay_s;
}

QoeModelSuite QoeModelSuite::standard(const QoeModelParams& params) {
  std::vector<QoeModelSpec> specs;
  specs.push_back({"linear_tv", video::QualityMetric::kVmafTv,
                   std::make_shared<LinearQoe>(params)});
  specs.push_back({"linear_phone", video::QualityMetric::kVmafPhone,
                   std::make_shared<LinearQoe>(params)});
  specs.push_back({"pos_rebuffer_phone", video::QualityMetric::kVmafPhone,
                   std::make_shared<RebufferPositionQoe>(params)});
  specs.push_back({"memory_phone", video::QualityMetric::kVmafPhone,
                   std::make_shared<MemoryEffectQoe>(params)});
  return QoeModelSuite(std::move(specs));
}

std::vector<std::string> QoeModelSuite::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& s : specs_) out.push_back(s.id);
  return out;
}

}  // namespace vbr::metrics
