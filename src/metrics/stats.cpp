#include "metrics/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace vbr::stats {

namespace {

void require_nonempty(std::span<const double> xs, const char* what) {
  if (xs.empty()) {
    throw std::invalid_argument(std::string(what) + ": empty input");
  }
}

}  // namespace

double mean(std::span<const double> xs) {
  require_nonempty(xs, "mean");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  require_nonempty(xs, "stddev");
  const double m = mean(xs);
  double ss = 0.0;
  for (const double x : xs) {
    ss += (x - m) * (x - m);
  }
  return std::sqrt(ss / static_cast<double>(xs.size()));
}

double coefficient_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) {
    throw std::invalid_argument("coefficient_of_variation: zero mean");
  }
  return stddev(xs) / m;
}

double harmonic_mean(std::span<const double> xs) {
  require_nonempty(xs, "harmonic_mean");
  double inv_sum = 0.0;
  for (const double x : xs) {
    if (x <= 0.0) {
      throw std::invalid_argument("harmonic_mean: non-positive sample");
    }
    inv_sum += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / inv_sum;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  require_nonempty(xs, "percentile");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p out of [0, 100]");
  }
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) {
    return v.front();
  }
  const double pos = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("pearson: size mismatch");
  }
  require_nonempty(xs, "pearson");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    throw std::invalid_argument("pearson: zero variance");
  }
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> r(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[idx[j + 1]] == xs[idx[i]]) {
      ++j;
    }
    // Average rank for the tie group [i, j] (ranks are 1-based).
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) /
                                2.0 +
                            1.0;
    for (std::size_t k = i; k <= j; ++k) {
      r[idx[k]] = avg_rank;
    }
    i = j + 1;
  }
  return r;
}

double jain_index(std::span<const double> xs) {
  if (xs.empty()) {
    throw std::invalid_argument("jain_index: empty input");
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) {
    return 1.0;  // nothing allocated to anyone: perfectly even
  }
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("spearman: size mismatch");
  }
  const std::vector<double> rx = ranks(xs);
  const std::vector<double> ry = ranks(ys);
  return pearson(rx, ry);
}

Quartiles quartiles(std::span<const double> xs) {
  return Quartiles{.q25 = percentile(xs, 25.0),
                   .q50 = percentile(xs, 50.0),
                   .q75 = percentile(xs, 75.0)};
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  if (sorted_.empty()) {
    throw std::invalid_argument("EmpiricalCdf: empty sample set");
  }
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(std::distance(sorted_.begin(), it)) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (q <= 0.0 || q > 1.0) {
    throw std::invalid_argument("EmpiricalCdf::quantile: q out of (0, 1]");
  }
  const auto n = static_cast<double>(sorted_.size());
  const auto idx = static_cast<std::size_t>(std::ceil(q * n)) - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    std::size_t n) const {
  if (n < 2) {
    throw std::invalid_argument("EmpiricalCdf::curve: need n >= 2");
  }
  std::vector<std::pair<double, double>> pts;
  pts.reserve(n);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
    pts.emplace_back(x, at(x));
  }
  return pts;
}

}  // namespace vbr::stats
