// Basic statistics utilities used throughout the library: means, percentiles,
// coefficient of variation, empirical CDFs, and correlation coefficients.
//
// These back both the VBR dataset characterization (Section 2/3 of the paper:
// bitrate CoV, cross-track rank correlation) and the evaluation harness
// (Section 6: CDFs across network traces, percentile bands).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vbr::stats {

/// Arithmetic mean. Throws std::invalid_argument on empty input.
double mean(std::span<const double> xs);

/// Population standard deviation. Throws std::invalid_argument on empty input.
double stddev(std::span<const double> xs);

/// Coefficient of variation (stddev / mean). Requires a non-zero mean.
double coefficient_of_variation(std::span<const double> xs);

/// Harmonic mean. All samples must be strictly positive.
double harmonic_mean(std::span<const double> xs);

/// Median (linear-interpolated). Throws std::invalid_argument on empty input.
double median(std::span<const double> xs);

/// p-th percentile with linear interpolation, p in [0, 100].
double percentile(std::span<const double> xs, double p);

/// Pearson linear correlation coefficient. Both spans must have the same,
/// non-zero length and non-zero variance.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation coefficient (average ranks for ties).
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Ranks of the samples (1-based, average rank for ties).
std::vector<double> ranks(std::span<const double> xs);

/// Jain fairness index of a resource allocation, in [1/n, 1]:
/// (sum x)^2 / (n * sum x^2). 1 = perfectly even; 1/n = one sample holds
/// everything. All-zero allocations are defined as perfectly fair (1.0).
/// Throws std::invalid_argument on empty input.
double jain_index(std::span<const double> xs);

/// Quartile thresholds [q25, q50, q75] of the sample distribution.
struct Quartiles {
  double q25 = 0.0;
  double q50 = 0.0;
  double q75 = 0.0;
};
Quartiles quartiles(std::span<const double> xs);

/// An empirical CDF over a sample set: sorted values with evaluation helpers.
class EmpiricalCdf {
 public:
  /// Builds the CDF from samples. Throws std::invalid_argument on empty input.
  explicit EmpiricalCdf(std::vector<double> samples);

  /// Fraction of samples <= x.
  [[nodiscard]] double at(double x) const;

  /// Inverse CDF: smallest sample value v with at(v) >= q, q in (0, 1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted_samples() const {
    return sorted_;
  }

  /// Evaluation points for plotting: `n` (x, F(x)) pairs spanning the sample
  /// range.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      std::size_t n = 50) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace vbr::stats
