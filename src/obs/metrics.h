// MetricsRegistry: counters, gauges, and histograms for the session loops.
//
// Concurrency model: lock-free by construction, not by atomics. Each
// concurrently-running session owns a private registry; the harness merges
// them at the end in a *stable order* (trace index, never worker id), so
// counter/gauge/histogram-bucket values are bit-identical at any thread
// count. The one deliberate exception is wall-clock time accumulated by
// ScopedTimer (decision latency): those sums depend on the machine, so
// histograms created via scoped timers are flagged `wall_clock` and
// excluded from deterministic_fingerprint().
//
// Metric handles returned by counter()/gauge()/histogram() stay valid for
// the registry's lifetime (std::map node stability), so hot loops resolve
// names once and bump pointers thereafter.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace vbr::obs {

/// Monotonically-increasing sum (doubles: bits and seconds are counters
/// here, as in Prometheus).
class Counter {
 public:
  void add(double v) { value_ += v; }
  void increment() { value_ += 1.0; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Last-written value. Merge semantics: the later-merged registry wins if
/// it ever wrote the gauge — deterministic because merges happen in stable
/// trace order.
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    written_ = true;
  }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool written() const { return written_; }

 private:
  double value_ = 0.0;
  bool written_ = false;
};

/// Fixed-boundary histogram: counts[i] = observations <= bounds[i], plus an
/// overflow bucket; tracks sum/count/min/max.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds, bool wall_clock = false);

  void record(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  /// True when the recorded quantity is machine wall-clock time, i.e. not
  /// reproducible across runs (set by ScopedTimer's histogram factory).
  [[nodiscard]] bool wall_clock() const { return wall_clock_; }

  /// Adds another histogram's observations. Throws std::invalid_argument
  /// on mismatched bucket boundaries.
  void merge(const Histogram& other);

  /// Overwrites the accumulated state wholesale (checkpoint reload). The
  /// bucket boundaries are not part of the state — they come from the
  /// constructor — so `counts` must have bounds().size() + 1 entries;
  /// throws std::invalid_argument otherwise.
  void restore(const std::vector<std::uint64_t>& counts, std::uint64_t count,
               double sum, double min, double max);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 entries.
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  bool wall_clock_ = false;
};

class MetricsRegistry {
 public:
  /// Finds or creates. The returned reference is stable for the registry's
  /// lifetime. A name must keep one kind: re-requesting it as a different
  /// metric type throws std::invalid_argument.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` must be strictly increasing (validated on first creation; a
  /// later call with different bounds for the same name throws).
  Histogram& histogram(const std::string& name,
                       std::span<const double> bounds,
                       bool wall_clock = false);

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Folds `other` into this registry (sum counters, overwrite written
  /// gauges, merge histograms). Call in a stable order for reproducibility.
  void merge(const MetricsRegistry& other);

  /// Deterministic JSON object: counters, gauges, histograms sorted by
  /// name. Doubles serialize in shortest round-trip form.
  void write_json(std::ostream& out) const;

  /// The reproducible slice of write_json: wall-clock histograms keep their
  /// counts (how many decisions happened is deterministic) but drop their
  /// sum/min/max and per-bucket spread. Equal fingerprints <=> equal
  /// deterministic telemetry.
  [[nodiscard]] std::string deterministic_fingerprint() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// RAII wall-clock timer recording seconds into a wall-clock histogram on
/// destruction. Null histogram = fully inert (no clock read).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      const auto end = std::chrono::steady_clock::now();
      hist_->record(std::chrono::duration<double>(end - start_).count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_{};
};

/// Default bucket boundaries.
[[nodiscard]] std::span<const double> download_seconds_bounds();
[[nodiscard]] std::span<const double> decision_latency_bounds();

}  // namespace vbr::obs
