#include "obs/trace_sink.h"

#include <cerrno>
#include <system_error>

#include "obs/json_util.h"

namespace vbr::obs {

void MemoryTraceSink::on_decision(const DecisionEvent& event) {
  ++received_;
  events_.push_back(event);
  if (capacity_ > 0 && events_.size() > capacity_) {
    events_.pop_front();
  }
}

void MemoryTraceSink::clear() {
  events_.clear();
  received_ = 0;
}

std::string to_jsonl(const DecisionEvent& e) {
  using detail::append_double;
  using detail::append_json_string;
  using detail::append_uint;

  std::string s;
  s.reserve(384);
  s += "{\"session\":";
  append_uint(s, e.session_id);
  s += ",\"seq\":";
  append_uint(s, e.seq);
  s += ",\"chunk\":";
  append_uint(s, e.chunk_index);
  s += ",\"t_decide\":";
  append_double(s, e.decision_now_s);
  s += ",\"t\":";
  append_double(s, e.sim_now_s);
  s += ",\"scheme\":";
  append_json_string(s, e.scheme);
  s += ",\"size_mode\":";
  append_json_string(s, e.size_mode);
  s += ",\"track\":";
  append_uint(s, e.track);
  s += ",\"in_startup\":";
  s += e.in_startup ? "true" : "false";
  s += ",\"buffer_s\":";
  append_double(s, e.buffer_before_s);
  s += ",\"buffer_after_s\":";
  append_double(s, e.buffer_after_s);
  s += ",\"est_bw_bps\":";
  append_double(s, e.est_bandwidth_bps);
  s += ",\"size_bits\":";
  append_double(s, e.size_bits);
  s += ",\"wait_s\":";
  append_double(s, e.wait_s);
  s += ",\"download_s\":";
  append_double(s, e.download_s);
  s += ",\"stall_s\":";
  append_double(s, e.stall_s);
  s += ",\"cum_rebuffer_s\":";
  append_double(s, e.cum_rebuffer_s);
  s += ",\"attempts\":";
  append_uint(s, e.attempts);
  s += ",\"connect_failures\":";
  append_uint(s, e.connect_failures);
  s += ",\"mid_drops\":";
  append_uint(s, e.mid_drops);
  s += ",\"timeouts\":";
  append_uint(s, e.timeouts);
  s += ",\"backoff_s\":";
  append_double(s, e.backoff_wait_s);
  s += ",\"resumed_bits\":";
  append_double(s, e.resumed_bits);
  s += ",\"wasted_bits\":";
  append_double(s, e.wasted_bits);
  s += ",\"downgraded\":";
  s += e.downgraded ? "true" : "false";
  s += ",\"skipped\":";
  s += e.skipped ? "true" : "false";
  s += ",\"abandoned\":";
  s += e.abandoned_higher ? "true" : "false";
  if (e.controller.has_value()) {
    const ControllerInternals& c = *e.controller;
    s += ",\"cava\":{\"target_s\":";
    append_double(s, c.target_buffer_s);
    s += ",\"u\":";
    append_double(s, c.u);
    s += ",\"error_s\":";
    append_double(s, c.error_s);
    s += ",\"integral\":";
    append_double(s, c.integral);
    s += ",\"alpha\":";
    append_double(s, c.alpha);
    s += ",\"class\":";
    append_uint(s, c.complexity_class);
    s += ",\"complex\":";
    s += c.complex_chunk ? "true" : "false";
    s += "}";
  }
  if (e.edge.has_value()) {
    const DecisionEvent::EdgeInfo& g = *e.edge;
    s += ",\"edge\":{\"arrival_s\":";
    append_double(s, g.arrival_s);
    s += ",\"title\":";
    append_uint(s, g.title);
    s += ",\"hit\":";
    s += g.edge_hit ? "true" : "false";
    s += ",\"latency_s\":";
    append_double(s, g.edge_latency_s);
    if (g.tier != 0 || g.coalesced || g.shed) {
      // CDN-tier outcome: emitted only when non-default so flat edge-cache
      // streams serialize byte-identically to their pre-CDN form.
      s += ",\"tier\":";
      append_uint(s, g.tier);
      s += ",\"coalesced\":";
      s += g.coalesced ? "true" : "false";
      s += ",\"shed\":";
      s += g.shed ? "true" : "false";
    }
    s += "}";
  }
  if (e.arm.has_value()) {
    s += ",\"arm\":";
    append_uint(s, *e.arm);
  }
  if (e.policy.has_value()) {
    // Learned-policy provenance: emitted only when present so pre-learn
    // streams keep their bytes (same contract as "arm" and "cava").
    s += ",\"policy\":{\"id\":";
    append_json_string(s, e.policy->id);
    s += ",\"ver\":";
    append_uint(s, e.policy->version);
    s += "}";
  }
  s += "}";
  return s;
}

JsonlTraceSink::JsonlTraceSink(const std::string& path) {
  errno = 0;
  owned_.open(path, std::ios::out | std::ios::trunc);
  if (!owned_) {
    // Surface the OS reason (ENOENT, EACCES, EISDIR, ...) to the caller —
    // a telemetry run that silently logs nothing is worse than no run.
    throw std::system_error(errno != 0 ? errno : EIO,
                            std::generic_category(),
                            "JsonlTraceSink: cannot open '" + path + "'");
  }
  out_ = &owned_;
}

void JsonlTraceSink::on_decision(const DecisionEvent& event) {
  *out_ << to_jsonl(event) << '\n';
  ++lines_;
}

void JsonlTraceSink::flush() { out_->flush(); }

}  // namespace vbr::obs
