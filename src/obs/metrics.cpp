#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

#include "obs/json_util.h"

namespace vbr::obs {

Histogram::Histogram(std::vector<double> bounds, bool wall_clock)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1, 0),
      wall_clock_(wall_clock) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
    }
  }
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("Histogram::merge: mismatched bounds");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
  wall_clock_ = wall_clock_ || other.wall_clock_;
}

void Histogram::restore(const std::vector<std::uint64_t>& counts,
                        std::uint64_t count, double sum, double min,
                        double max) {
  if (counts.size() != counts_.size()) {
    throw std::invalid_argument(
        "Histogram::restore: counts size does not match bucket layout");
  }
  counts_ = counts;
  count_ = count;
  sum_ = sum;
  min_ = min;
  max_ = max;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as another kind");
  }
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  if (counters_.count(name) != 0 || histograms_.count(name) != 0) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as another kind");
  }
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::span<const double> bounds,
                                      bool wall_clock) {
  if (counters_.count(name) != 0 || gauges_.count(name) != 0) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as another kind");
  }
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (!std::equal(bounds.begin(), bounds.end(), it->second.bounds().begin(),
                    it->second.bounds().end())) {
      throw std::invalid_argument("MetricsRegistry: histogram '" + name +
                                  "' re-registered with different bounds");
    }
    return it->second;
  }
  return histograms_
      .emplace(name, Histogram(std::vector<double>(bounds.begin(),
                                                   bounds.end()),
                               wall_clock))
      .first->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).add(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    if (g.written()) {
      gauge(name).set(g.value());
    }
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h.bounds(), h.wall_clock()).merge(h);
  }
}

namespace {

void write_histogram_json(std::string& s, const Histogram& h,
                          bool deterministic_only) {
  using detail::append_double;
  using detail::append_uint;
  // A wall-clock histogram's only reproducible quantity is how many
  // observations it took; which bucket each landed in is machine noise, so
  // the fingerprint drops the bucket spread along with sum/min/max.
  const bool hide_values = deterministic_only && h.wall_clock();
  s += "{\"bounds\":[";
  for (std::size_t i = 0; i < h.bounds().size(); ++i) {
    if (i != 0) {
      s += ',';
    }
    append_double(s, h.bounds()[i]);
  }
  s += ']';
  if (!hide_values) {
    s += ",\"counts\":[";
    for (std::size_t i = 0; i < h.counts().size(); ++i) {
      if (i != 0) {
        s += ',';
      }
      append_uint(s, h.counts()[i]);
    }
    s += ']';
  }
  s += ",\"count\":";
  append_uint(s, h.count());
  if (!hide_values) {
    s += ",\"sum\":";
    append_double(s, h.sum());
    if (h.count() > 0) {
      s += ",\"min\":";
      append_double(s, h.min());
      s += ",\"max\":";
      append_double(s, h.max());
    }
  }
  if (h.wall_clock()) {
    s += ",\"wall_clock\":true";
  }
  s += '}';
}

std::string registry_json(const MetricsRegistry& reg,
                          bool deterministic_only) {
  using detail::append_double;
  using detail::append_json_string;
  std::string s;
  s += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : reg.counters()) {
    if (!first) {
      s += ',';
    }
    first = false;
    append_json_string(s, name);
    s += ':';
    append_double(s, c.value());
  }
  s += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : reg.gauges()) {
    if (!first) {
      s += ',';
    }
    first = false;
    append_json_string(s, name);
    s += ':';
    append_double(s, g.value());
  }
  s += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : reg.histograms()) {
    if (!first) {
      s += ',';
    }
    first = false;
    append_json_string(s, name);
    s += ':';
    write_histogram_json(s, h, deterministic_only);
  }
  s += "}}";
  return s;
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& out) const {
  out << registry_json(*this, /*deterministic_only=*/false);
}

std::string MetricsRegistry::deterministic_fingerprint() const {
  return registry_json(*this, /*deterministic_only=*/true);
}

namespace {
// Download durations span tens of ms (one small chunk on fast LTE) to tens
// of seconds (outage + retry); decisions are sub-millisecond in C++ (the
// paper's JS rule measured ~190 us).
constexpr std::array<double, 10> kDownloadBounds = {
    0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0};
constexpr std::array<double, 9> kDecisionBounds = {
    1e-7, 5e-7, 1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 1e-3, 1e-2};
}  // namespace

std::span<const double> download_seconds_bounds() { return kDownloadBounds; }
std::span<const double> decision_latency_bounds() { return kDecisionBounds; }

}  // namespace vbr::obs
