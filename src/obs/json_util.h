// Canonical JSON fragment writers shared by the telemetry serializers.
//
// Doubles use std::to_chars with no precision argument: the shortest
// decimal form that round-trips, which is uniquely defined and therefore
// byte-stable across runs — the property the golden-trace and determinism
// tests rely on. Never use printf %g here (its output is locale- and
// precision-policy dependent).
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <string>

namespace vbr::obs::detail {

inline void append_double(std::string& out, double v) {
  char buf[64];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), v);
  if (r.ec == std::errc()) {
    out.append(buf, r.ptr);
  } else {
    out += "null";  // unrepresentable (cannot happen for finite doubles)
  }
}

inline void append_uint(std::string& out, std::uint64_t v) {
  char buf[32];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, r.ptr);
}

inline void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace vbr::obs::detail
