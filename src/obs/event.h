// Typed per-decision telemetry events (observability layer).
//
// One DecisionEvent is emitted per chunk the session loop resolves — the
// structured record of *why* the player did what it did: the state the
// scheme saw, the track it picked, what the download cost, and (for CAVA)
// the controller internals behind the choice. The paper's Figs. 6–7 are
// exactly plots of these quantities; real deployments (Puffer's per-chunk
// server-side logs) instrument the same thing.
//
// Events carry only *simulation-deterministic* values: same-seed runs must
// serialize byte-identically at any thread count, so wall-clock data lives
// exclusively in the metrics layer (see obs/metrics.h), never in events.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace vbr::obs {

/// CAVA controller internals captured at decision time (absent for schemes
/// without a controller; populated via AbrScheme::annotate_event).
struct ControllerInternals {
  double target_buffer_s = 0.0;  ///< Outer-controller setpoint x_r(t).
  double u = 0.0;                ///< Inner PID output.
  double error_s = 0.0;          ///< PID proportional term input x_r - x.
  double integral = 0.0;         ///< PID integral state after the update.
  double alpha = 1.0;            ///< Differential-treatment bandwidth scale.
  std::size_t complexity_class = 0;  ///< Classifier bucket of the chunk.
  bool complex_chunk = false;        ///< Chunk in the top ("Q4") class.
};

/// One resolved chunk decision. Field semantics mirror sim::ChunkRecord,
/// plus the decision inputs (buffer, bandwidth estimate) and the running
/// rebuffer total that makes the stream self-auditing.
struct DecisionEvent {
  std::uint64_t session_id = 0;  ///< Trace index / client id within a run.
  std::uint64_t seq = 0;         ///< Emission order within the stream.
  std::size_t chunk_index = 0;
  double decision_now_s = 0.0;   ///< Sim clock when the scheme decided.
  double sim_now_s = 0.0;        ///< Sim clock when the chunk resolved.
  std::string scheme;            ///< Scheme name (AbrScheme::name()).
  std::string size_mode;         ///< Size-knowledge mode ("exact" or the
                                 ///< attached provider's name()).
  std::size_t track = 0;         ///< Track as delivered (post downgrade /
                                 ///< abandonment).
  bool in_startup = false;       ///< Decision taken before playback began.
  double buffer_before_s = 0.0;  ///< Buffer level the scheme saw.
  double buffer_after_s = 0.0;   ///< Buffer right after the chunk resolved.
  double est_bandwidth_bps = 0.0;
  double size_bits = 0.0;        ///< Bits of the delivered chunk (0 if
                                 ///< skipped).
  double wait_s = 0.0;
  double download_s = 0.0;
  double stall_s = 0.0;          ///< Rebuffering during this download.
  double cum_rebuffer_s = 0.0;   ///< Session rebuffer total so far.

  // Fault/retry outcome (all zero / false on the fault-free path).
  std::size_t attempts = 1;
  std::size_t connect_failures = 0;
  std::size_t mid_drops = 0;
  std::size_t timeouts = 0;
  double backoff_wait_s = 0.0;
  double resumed_bits = 0.0;
  double wasted_bits = 0.0;
  bool downgraded = false;
  bool skipped = false;
  bool abandoned_higher = false;

  std::optional<ControllerInternals> controller;

  /// Fleet / delivery-path context (absent outside fleet runs and
  /// edge-cache sessions, so pre-fleet streams serialize byte-identically).
  struct EdgeInfo {
    double arrival_s = 0.0;       ///< Session arrival time in the fleet run.
    std::uint64_t title = 0;      ///< Catalog title index.
    bool edge_hit = false;        ///< Chunk served from the edge cache.
    double edge_latency_s = 0.0;  ///< Delivery-path first-byte latency.
    /// CDN delivery outcome (fleet::CdnPath): tier 0 = edge, 1 = regional,
    /// 2 = origin. Serialized only when non-default, so flat edge-cache
    /// streams keep their pre-CDN bytes.
    std::uint32_t tier = 0;
    bool coalesced = false;  ///< Joined an in-flight upstream fetch.
    bool shed = false;       ///< Penalized by upstream admission control.
  };
  std::optional<EdgeInfo> edge;

  /// Experiment arm the session was assigned to (src/exp). Absent outside
  /// A/B runs — serialized only when present, so pre-experiment JSONL
  /// streams keep their bytes. Arm 0 is a real arm, hence the optional.
  std::optional<std::uint32_t> arm;

  /// Learned-policy provenance (src/learn): which serialized policy made
  /// this decision, stamped by LearnedScheme::annotate_event. Absent for
  /// rule-based schemes — serialized only when present, so pre-learn JSONL
  /// streams keep their bytes.
  struct PolicyInfo {
    std::string id;             ///< Policy id token from the policy file.
    std::uint32_t version = 0;  ///< Policy version from the policy file.
  };
  std::optional<PolicyInfo> policy;
};

}  // namespace vbr::obs
