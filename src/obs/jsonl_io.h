// Crash-safe JSONL: checksummed lines, torn-tail recovery, and the event
// parser that closes the serialization loop.
//
// A long-running trace can die mid-write (SIGKILL, power loss, disk full),
// leaving a torn final line — and a torn line silently corrupts every
// downstream consumer that trains on or replays the stream. The durable
// format appends a per-line checksum:
//
//     <canonical json>\t<8 lowercase hex chars of FNV-1a 32>\n
//
// The JSON payload never contains a raw TAB (append_json_string escapes
// control characters), so the last TAB on a line splits payload from
// checksum unambiguously. The recovery scanner classifies every line:
//   - valid        payload matches its checksum;
//   - torn tail    the final line is incomplete (no newline) or fails its
//                  checksum — the expected crash signature, safe to truncate;
//   - interior     a non-final line fails its checksum — NOT a crash
//     corruption  artifact but real damage; surfaced loudly (line numbers in
//                  the report) and never silently dropped.
//
// parse_jsonl() inverts to_jsonl() exactly: doubles are shortest-round-trip
// (std::to_chars), so parse(serialize(e)) reproduces e bit for bit. The
// fleet checkpoint relies on this to carry per-session telemetry across a
// crash.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.h"
#include "obs/trace_sink.h"

namespace vbr::obs {

/// FNV-1a 32-bit checksum of `payload` (the per-line integrity check).
[[nodiscard]] std::uint32_t line_checksum(std::string_view payload);

/// `payload` + TAB + 8 lowercase hex checksum chars (no trailing newline).
[[nodiscard]] std::string checksummed_line(std::string_view payload);

/// Splits a checksummed line and verifies it. Returns true and sets
/// `payload` on success; false on a missing separator, malformed checksum
/// field, or mismatch.
[[nodiscard]] bool verify_checksummed_line(std::string_view line,
                                           std::string_view& payload);

/// Parses one canonical to_jsonl() line back into a DecisionEvent.
/// Throws std::invalid_argument naming the offending field on any deviation
/// from the canonical form. Round-trip exact: for every event e,
/// parse_jsonl(to_jsonl(e)) serializes back to the same bytes.
[[nodiscard]] DecisionEvent parse_jsonl(std::string_view line);

/// What the recovery scanner found in one checksummed JSONL file.
struct JsonlScanReport {
  std::uint64_t total_lines = 0;  ///< Lines seen, torn tail included.
  std::uint64_t valid_lines = 0;  ///< Lines whose checksum verified.
  /// The file ends in a torn line: unterminated, or terminated but failing
  /// its checksum. Crash signature — recover_jsonl() truncates it.
  bool torn_tail = false;
  /// 1-based numbers of non-final lines that failed their checksum. Real
  /// corruption, not a crash artifact: surfaced, never auto-dropped.
  std::vector<std::uint64_t> corrupt_interior_lines;
  /// Byte length of the valid prefix (everything before the torn tail).
  std::uint64_t keep_bytes = 0;

  [[nodiscard]] bool clean() const {
    return !torn_tail && corrupt_interior_lines.empty();
  }
};

/// Scans a checksummed JSONL file without modifying it. Throws
/// std::system_error (carrying errno) when the file cannot be opened.
[[nodiscard]] JsonlScanReport scan_checksummed_jsonl(const std::string& path);

/// Scans and, if the file ends in a torn tail, truncates it to the valid
/// prefix. Interior corruption is returned in the report but never removed
/// — deciding what to do with damaged history is the caller's call. Throws
/// std::system_error on open/truncate failure.
JsonlScanReport recover_checksummed_jsonl(const std::string& path);

/// JSONL sink with per-line checksums and real durability: every line is
/// written via POSIX I/O, and flush() pushes it through the page cache with
/// fsync. Open, write, and sync failures all throw std::system_error
/// carrying errno (ENOSPC from a full disk surfaces at the failing write,
/// not as a silently empty trace).
class DurableJsonlTraceSink final : public TraceSink {
 public:
  /// Opens (truncates) `path`. Throws std::system_error on failure.
  explicit DurableJsonlTraceSink(const std::string& path);
  ~DurableJsonlTraceSink() override;

  DurableJsonlTraceSink(const DurableJsonlTraceSink&) = delete;
  DurableJsonlTraceSink& operator=(const DurableJsonlTraceSink&) = delete;

  void on_decision(const DecisionEvent& event) override;
  void flush() override;  ///< Drains the buffer and fsyncs.

  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }

 private:
  void write_all(const char* data, std::size_t len);

  int fd_ = -1;
  std::string path_;
  std::string buffer_;  ///< Batches lines between flushes.
  std::uint64_t lines_ = 0;
};

}  // namespace vbr::obs
