// TraceSink: where DecisionEvents go.
//
// The session loops accept a nullable TraceSink*; a null pointer is the
// "null sink" and costs one predictable branch per chunk — nothing is
// allocated, formatted, or copied (enforced by the overhead regression
// test). Three concrete sinks:
//
//   - MemoryTraceSink:  in-memory ring (bounded or unbounded) for tests and
//                       programmatic analysis;
//   - JsonlTraceSink:   one canonical JSON object per line, to a file or a
//                       caller-owned stream. Serialization is deterministic
//                       (std::to_chars shortest round-trip doubles, fixed
//                       field order), so same-seed runs diff byte-for-byte;
//   - NullTraceSink:    a discarding object, for call sites that need a
//                       non-null sink.
//
// Sinks are NOT thread-safe by design: each concurrent session owns its own
// sink and the harness merges afterwards in a stable order (see
// sim::run_experiment).
#pragma once

#include <cstddef>
#include <deque>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "obs/event.h"

namespace vbr::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_decision(const DecisionEvent& event) = 0;
  virtual void flush() {}
};

/// Discards everything (explicit-object variant of the null sink).
class NullTraceSink final : public TraceSink {
 public:
  void on_decision(const DecisionEvent& event) override { (void)event; }
};

/// Keeps the last `capacity` events in memory (0 = unbounded).
class MemoryTraceSink final : public TraceSink {
 public:
  explicit MemoryTraceSink(std::size_t capacity = 0) : capacity_(capacity) {}

  void on_decision(const DecisionEvent& event) override;

  [[nodiscard]] const std::deque<DecisionEvent>& events() const {
    return events_;
  }
  /// Total events ever received (>= events().size() once the ring wraps).
  [[nodiscard]] std::uint64_t total_received() const { return received_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  std::size_t capacity_;
  std::uint64_t received_ = 0;
  std::deque<DecisionEvent> events_;
};

/// Serializes one event as a canonical single-line JSON object (no trailing
/// newline). Field order is fixed; doubles use std::to_chars shortest
/// round-trip form, so equal event streams serialize byte-identically.
[[nodiscard]] std::string to_jsonl(const DecisionEvent& event);

/// Writes each event as one JSONL line.
class JsonlTraceSink final : public TraceSink {
 public:
  /// Opens (truncates) `path`. Throws std::system_error carrying errno when
  /// the file cannot be opened, so callers can surface the OS reason.
  explicit JsonlTraceSink(const std::string& path);
  /// Writes to a caller-owned stream (kept borrowed; must outlive the sink).
  explicit JsonlTraceSink(std::ostream& out) : out_(&out) {}

  void on_decision(const DecisionEvent& event) override;
  void flush() override;

  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }

 private:
  std::ofstream owned_;
  std::ostream* out_ = nullptr;
  std::uint64_t lines_ = 0;
};

}  // namespace vbr::obs
