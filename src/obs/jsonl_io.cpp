#include "obs/jsonl_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include "obs/json_util.h"

namespace vbr::obs {

std::uint32_t line_checksum(std::string_view payload) {
  // FNV-1a 32: tiny, table-free, and plenty for torn-line detection (this
  // is an integrity check against truncation and bit rot, not an adversary).
  std::uint32_t h = 0x811c9dc5u;
  for (const char c : payload) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x01000193u;
  }
  return h;
}

namespace {

constexpr char kSep = '\t';

void append_hex8(std::string& out, std::uint32_t v) {
  static const char* digits = "0123456789abcdef";
  for (int shift = 28; shift >= 0; shift -= 4) {
    out += digits[(v >> shift) & 0xFu];
  }
}

}  // namespace

std::string checksummed_line(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 10);
  out.append(payload);
  out += kSep;
  append_hex8(out, line_checksum(payload));
  return out;
}

bool verify_checksummed_line(std::string_view line,
                             std::string_view& payload) {
  const std::size_t sep = line.rfind(kSep);
  if (sep == std::string_view::npos || line.size() - sep - 1 != 8) {
    return false;
  }
  std::uint32_t stored = 0;
  for (std::size_t i = sep + 1; i < line.size(); ++i) {
    const char c = line[i];
    std::uint32_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint32_t>(c - 'a') + 10;
    } else {
      return false;
    }
    stored = (stored << 4) | nibble;
  }
  const std::string_view body = line.substr(0, sep);
  if (line_checksum(body) != stored) {
    return false;
  }
  payload = body;
  return true;
}

// ---------------------------------------------------------------------------
// Canonical JSONL parsing (exact inverse of to_jsonl).

namespace {

/// Strict sequential reader over one canonical event line. to_jsonl writes
/// a fixed field order, so the parser expects literal key text and never
/// needs a generic JSON tokenizer — any deviation throws with the position.
class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}

  void expect(std::string_view lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) {
      fail(std::string("expected '") + std::string(lit) + "'");
    }
    pos_ += lit.size();
  }

  [[nodiscard]] bool try_consume(std::string_view lit) {
    if (s_.compare(pos_, lit.size(), lit) == 0) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  [[nodiscard]] std::uint64_t read_uint() {
    std::uint64_t v = 0;
    const char* begin = s_.data() + pos_;
    const char* end = s_.data() + s_.size();
    const std::from_chars_result r = std::from_chars(begin, end, v);
    if (r.ec != std::errc()) {
      fail("expected unsigned integer");
    }
    pos_ += static_cast<std::size_t>(r.ptr - begin);
    return v;
  }

  [[nodiscard]] double read_double() {
    double v = 0.0;
    const char* begin = s_.data() + pos_;
    const char* end = s_.data() + s_.size();
    const std::from_chars_result r = std::from_chars(begin, end, v);
    if (r.ec != std::errc()) {
      fail("expected number");
    }
    pos_ += static_cast<std::size_t>(r.ptr - begin);
    return v;
  }

  [[nodiscard]] bool read_bool() {
    if (try_consume("true")) {
      return true;
    }
    if (try_consume("false")) {
      return false;
    }
    fail("expected boolean");
  }

  [[nodiscard]] std::string read_string() {
    expect("\"");
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) {
        break;
      }
      const char esc = s_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a') + 10;
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A') + 10;
            } else {
              fail("bad \\u escape digit");
            }
          }
          // The serializer only \u-escapes control bytes < 0x20.
          out += static_cast<char>(code);
          break;
        }
        default:
          fail("unknown string escape");
      }
    }
    fail("unterminated string");
  }

  [[nodiscard]] bool at_end() const { return pos_ == s_.size(); }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("parse_jsonl: " + what + " at byte " +
                                std::to_string(pos_));
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

DecisionEvent parse_jsonl(std::string_view line) {
  Cursor c(line);
  DecisionEvent e;
  c.expect("{\"session\":");
  e.session_id = c.read_uint();
  c.expect(",\"seq\":");
  e.seq = c.read_uint();
  c.expect(",\"chunk\":");
  e.chunk_index = static_cast<std::size_t>(c.read_uint());
  c.expect(",\"t_decide\":");
  e.decision_now_s = c.read_double();
  c.expect(",\"t\":");
  e.sim_now_s = c.read_double();
  c.expect(",\"scheme\":");
  e.scheme = c.read_string();
  c.expect(",\"size_mode\":");
  e.size_mode = c.read_string();
  c.expect(",\"track\":");
  e.track = static_cast<std::size_t>(c.read_uint());
  c.expect(",\"in_startup\":");
  e.in_startup = c.read_bool();
  c.expect(",\"buffer_s\":");
  e.buffer_before_s = c.read_double();
  c.expect(",\"buffer_after_s\":");
  e.buffer_after_s = c.read_double();
  c.expect(",\"est_bw_bps\":");
  e.est_bandwidth_bps = c.read_double();
  c.expect(",\"size_bits\":");
  e.size_bits = c.read_double();
  c.expect(",\"wait_s\":");
  e.wait_s = c.read_double();
  c.expect(",\"download_s\":");
  e.download_s = c.read_double();
  c.expect(",\"stall_s\":");
  e.stall_s = c.read_double();
  c.expect(",\"cum_rebuffer_s\":");
  e.cum_rebuffer_s = c.read_double();
  c.expect(",\"attempts\":");
  e.attempts = static_cast<std::size_t>(c.read_uint());
  c.expect(",\"connect_failures\":");
  e.connect_failures = static_cast<std::size_t>(c.read_uint());
  c.expect(",\"mid_drops\":");
  e.mid_drops = static_cast<std::size_t>(c.read_uint());
  c.expect(",\"timeouts\":");
  e.timeouts = static_cast<std::size_t>(c.read_uint());
  c.expect(",\"backoff_s\":");
  e.backoff_wait_s = c.read_double();
  c.expect(",\"resumed_bits\":");
  e.resumed_bits = c.read_double();
  c.expect(",\"wasted_bits\":");
  e.wasted_bits = c.read_double();
  c.expect(",\"downgraded\":");
  e.downgraded = c.read_bool();
  c.expect(",\"skipped\":");
  e.skipped = c.read_bool();
  c.expect(",\"abandoned\":");
  e.abandoned_higher = c.read_bool();
  if (c.try_consume(",\"cava\":{\"target_s\":")) {
    ControllerInternals ci;
    ci.target_buffer_s = c.read_double();
    c.expect(",\"u\":");
    ci.u = c.read_double();
    c.expect(",\"error_s\":");
    ci.error_s = c.read_double();
    c.expect(",\"integral\":");
    ci.integral = c.read_double();
    c.expect(",\"alpha\":");
    ci.alpha = c.read_double();
    c.expect(",\"class\":");
    ci.complexity_class = static_cast<std::size_t>(c.read_uint());
    c.expect(",\"complex\":");
    ci.complex_chunk = c.read_bool();
    c.expect("}");
    e.controller = ci;
  }
  if (c.try_consume(",\"edge\":{\"arrival_s\":")) {
    DecisionEvent::EdgeInfo g;
    g.arrival_s = c.read_double();
    c.expect(",\"title\":");
    g.title = c.read_uint();
    c.expect(",\"hit\":");
    g.edge_hit = c.read_bool();
    c.expect(",\"latency_s\":");
    g.edge_latency_s = c.read_double();
    if (c.try_consume(",\"tier\":")) {
      g.tier = static_cast<std::uint32_t>(c.read_uint());
      c.expect(",\"coalesced\":");
      g.coalesced = c.read_bool();
      c.expect(",\"shed\":");
      g.shed = c.read_bool();
    }
    c.expect("}");
    e.edge = g;
  }
  if (c.try_consume(",\"arm\":")) {
    e.arm = static_cast<std::uint32_t>(c.read_uint());
  }
  if (c.try_consume(",\"policy\":{\"id\":")) {
    DecisionEvent::PolicyInfo p;
    p.id = c.read_string();
    c.expect(",\"ver\":");
    p.version = static_cast<std::uint32_t>(c.read_uint());
    c.expect("}");
    e.policy = p;
  }
  c.expect("}");
  if (!c.at_end()) {
    c.fail("trailing bytes after event object");
  }
  return e;
}

// ---------------------------------------------------------------------------
// Recovery scanner.

namespace {

JsonlScanReport scan_stream(std::istream& in) {
  JsonlScanReport report;
  std::string line;
  std::uint64_t offset = 0;
  while (std::getline(in, line)) {
    // getline strips the '\n'; eof() with a non-empty line means the final
    // line had no terminator — the torn-write signature.
    const bool terminated = !in.eof();
    ++report.total_lines;
    std::string_view payload;
    const bool ok = verify_checksummed_line(line, payload);
    const std::uint64_t line_bytes =
        static_cast<std::uint64_t>(line.size()) + (terminated ? 1 : 0);
    if (ok && terminated) {
      ++report.valid_lines;
      offset += line_bytes;
      report.keep_bytes = offset;
    } else if (!terminated || (!ok && in.peek() == std::char_traits<char>::eof())) {
      // Unterminated, or a checksum-failing very last line.
      report.torn_tail = true;
      break;
    } else {
      // A checksum failure with more data behind it: interior damage.
      report.corrupt_interior_lines.push_back(report.total_lines);
      offset += line_bytes;
    }
  }
  return report;
}

}  // namespace

JsonlScanReport scan_checksummed_jsonl(const std::string& path) {
  errno = 0;
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in) {
    throw std::system_error(errno != 0 ? errno : EIO, std::generic_category(),
                            "scan_checksummed_jsonl: cannot open '" + path +
                                "'");
  }
  return scan_stream(in);
}

JsonlScanReport recover_checksummed_jsonl(const std::string& path) {
  const JsonlScanReport report = scan_checksummed_jsonl(path);
  if (!report.torn_tail) {
    return report;
  }
  // Interior damage stays in place: keep_bytes only ever trims the torn
  // tail, so no interior line — valid or corrupt — is silently dropped.
  std::uint64_t keep = report.keep_bytes;
  if (!report.corrupt_interior_lines.empty()) {
    // keep_bytes stops at the last *valid* line; extend it to cover the
    // interior region by rescanning byte offsets is unnecessary — interior
    // corrupt lines were already counted into the offset during the scan,
    // so keep_bytes includes them. (See scan_stream: corrupt interior lines
    // advance the kept offset.)
    keep = report.keep_bytes;
  }
  errno = 0;
  if (::truncate(path.c_str(), static_cast<off_t>(keep)) != 0) {
    throw std::system_error(errno, std::generic_category(),
                            "recover_checksummed_jsonl: cannot truncate '" +
                                path + "'");
  }
  return report;
}

// ---------------------------------------------------------------------------
// Durable sink.

DurableJsonlTraceSink::DurableJsonlTraceSink(const std::string& path)
    : path_(path) {
  errno = 0;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    throw std::system_error(errno != 0 ? errno : EIO, std::generic_category(),
                            "DurableJsonlTraceSink: cannot open '" + path +
                                "'");
  }
  buffer_.reserve(1 << 16);
}

DurableJsonlTraceSink::~DurableJsonlTraceSink() {
  // Destructors must not throw; best-effort drain. Callers that care about
  // the ENOSPC/EIO verdict call flush() explicitly first.
  if (fd_ >= 0) {
    if (!buffer_.empty()) {
      (void)::write(fd_, buffer_.data(), buffer_.size());
    }
    (void)::close(fd_);
  }
}

void DurableJsonlTraceSink::write_all(const char* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd_, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw std::system_error(errno, std::generic_category(),
                              "DurableJsonlTraceSink: write failed on '" +
                                  path_ + "'");
    }
    done += static_cast<std::size_t>(n);
  }
}

void DurableJsonlTraceSink::on_decision(const DecisionEvent& event) {
  buffer_ += checksummed_line(to_jsonl(event));
  buffer_ += '\n';
  ++lines_;
  if (buffer_.size() >= (1u << 16)) {
    write_all(buffer_.data(), buffer_.size());
    buffer_.clear();
  }
}

void DurableJsonlTraceSink::flush() {
  if (!buffer_.empty()) {
    write_all(buffer_.data(), buffer_.size());
    buffer_.clear();
  }
  if (::fsync(fd_) != 0) {
    throw std::system_error(errno, std::generic_category(),
                            "DurableJsonlTraceSink: fsync failed on '" +
                                path_ + "'");
  }
}

}  // namespace vbr::obs
