// Event-order-invariant fold buffer.
//
// The fleet's aggregation discipline is "fold in session-id order, never
// worker order" — that is what makes every output byte invariant to the
// thread schedule. The per-session stepper gets this for free by folding
// after the workers join; the shared-virtual-time event engine completes
// sessions in virtual-time order instead, so its streaming-aggregation
// mode routes completions through an OrderedDrain: items are put() under
// their session id in any completion order, and pop() releases them in
// strict ascending id order. The fold downstream of the drain therefore
// sees exactly the order the materializing path would have used.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>

namespace vbr::obs {

/// Reorder buffer keyed by a dense ascending sequence (e.g. session id).
/// put() accepts keys in any order; pop() yields items in strict key
/// order, returning std::nullopt while the next key has not arrived.
/// Memory is bounded by the completion skew (peak_pending()), not the
/// total item count — the property the 100k-session smoke test pins.
template <typename T>
class OrderedDrain {
 public:
  /// `first` is the first key pop() will release (default 0).
  explicit OrderedDrain(std::uint64_t first = 0) : next_(first) {}

  /// Buffers `item` under `seq`. Keys below next() or already buffered are
  /// a caller bug (each session completes exactly once).
  void put(std::uint64_t seq, T item) {
    if (seq < next_ || !buf_.emplace(seq, std::move(item)).second) {
      throw std::logic_error("OrderedDrain: duplicate or out-of-window key");
    }
    peak_ = std::max(peak_, buf_.size());
  }

  /// Moves out the item keyed next(), if it has arrived, and advances.
  [[nodiscard]] std::optional<T> pop() {
    const auto it = buf_.find(next_);
    if (it == buf_.end()) {
      return std::nullopt;
    }
    T out = std::move(it->second);
    buf_.erase(it);
    ++next_;
    return out;
  }

  /// Next key pop() will release.
  [[nodiscard]] std::uint64_t next() const { return next_; }
  /// Items buffered right now (waiting on a lower key).
  [[nodiscard]] std::size_t pending() const { return buf_.size(); }
  /// High-water mark of pending() over the drain's lifetime.
  [[nodiscard]] std::size_t peak_pending() const { return peak_; }

 private:
  std::uint64_t next_;
  std::map<std::uint64_t, T> buf_;
  std::size_t peak_ = 0;
};

}  // namespace vbr::obs
