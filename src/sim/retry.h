// Retry policy and failed-attempt accounting for fault-injected sessions.
//
// Graceful-degradation semantics (shared by the VoD, live, and multi-client
// loops):
//   - every failed attempt consumes wall-clock time exactly as a player
//     would experience it (connect delay, partial transfer, or timeout);
//     the buffer drains in real time throughout, and stalls are charged to
//     rebuffering;
//   - bytes of a dropped transfer are wasted (counted in data usage, like
//     abandonment) unless byte-range resume is enabled, in which case they
//     carry over into the next attempt;
//   - after `downgrade_after` failed attempts of a non-bottom track the
//     player refetches the lowest track instead (discarding any partial
//     higher-track bytes);
//   - a chunk that exhausts `max_attempts` is skipped: recorded explicitly,
//     never played, and the session moves on rather than aborting.
#pragma once

#include <cstddef>

#include "net/fault_model.h"
#include "net/trace.h"

namespace vbr::sim {

/// Client-side resilience knobs. Only consulted when the fault model is
/// enabled — the zero-fault path never reads them.
struct RetryPolicy {
  std::size_t max_attempts = 3;  ///< Total attempts per chunk (>= 1).
  /// Exponential backoff between attempts: wait
  /// min(base * factor^k, max) * jitter for the k-th retry (k = 0 first).
  double backoff_base_s = 0.5;
  double backoff_factor = 2.0;
  double backoff_max_s = 8.0;
  double backoff_jitter = 0.1;  ///< +/- fraction, deterministic, in [0, 1).
  /// Player-side no-progress timeout. When a timeout fault fires, the
  /// player waits this long before giving up; 0 falls back to the fault
  /// model's server-stall duration.
  double request_timeout_s = 0.0;
  /// Downgrade-to-lowest-track after repeated failure of a higher track.
  bool downgrade_on_failure = true;
  std::size_t downgrade_after = 2;  ///< Failed attempts before downgrading.
  /// Byte-range resume: partial bytes of a dropped transfer carry over.
  bool resume_partial = false;

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;
};

/// Time and bytes consumed by one failed download attempt starting at
/// wall-clock `t`.
struct FailedAttempt {
  double elapsed_s = 0.0;       ///< Wall-clock time the failure burned.
  double delivered_bits = 0.0;  ///< Bytes transferred before the failure.
};

/// Accounts a failed attempt of `bits_needed` bits. `outcome.kind` must not
/// be kNone. `rate_scale` is the delivery path's bandwidth fraction (see
/// sim::FetchPlan): it stretches the transfer time of a mid-drop's partial
/// bytes without changing the bytes themselves.
[[nodiscard]] FailedAttempt charge_failed_attempt(
    const net::Trace& trace, const net::FaultOutcome& outcome,
    const net::FaultConfig& fault, const RetryPolicy& policy, double t,
    double request_rtt_s, double bits_needed, double rate_scale = 1.0);

/// Deterministic backoff delay before retry number `retry_index` (0-based)
/// of chunk `chunk_index`.
[[nodiscard]] double backoff_delay_s(const RetryPolicy& policy,
                                     const net::FaultModel& model,
                                     std::size_t chunk_index,
                                     std::size_t retry_index);

}  // namespace vbr::sim
