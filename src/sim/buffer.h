// Playout buffer dynamics.
//
// The buffer holds seconds of downloaded-but-unplayed video. It fills by one
// chunk duration per completed download and drains in real time while
// playback is active; draining below empty is a stall. Capacity is bounded
// (the paper caps all schemes at 100 s) — the player must not fetch a chunk
// that would overflow it.
#pragma once

namespace vbr::sim {

class PlayoutBuffer {
 public:
  /// @param capacity_s maximum buffer level in seconds (> 0)
  explicit PlayoutBuffer(double capacity_s);

  /// Seconds of video currently buffered.
  [[nodiscard]] double level_s() const { return level_s_; }
  [[nodiscard]] double capacity_s() const { return capacity_s_; }

  /// Whether playback has started (set by the session after the startup
  /// latency is met).
  [[nodiscard]] bool playing() const { return playing_; }
  void start_playback() { playing_ = true; }

  /// Advances wall-clock time by dt while (possibly) playing. Returns the
  /// stall time incurred (time during which playback was active but the
  /// buffer was empty). When playback hasn't started, nothing drains and
  /// nothing stalls.
  double elapse(double dt);

  /// Adds one downloaded chunk's worth of content. Throws std::logic_error
  /// on overflow beyond capacity (the session must gate downloads).
  void add_chunk(double chunk_duration_s);

  /// Seconds until there is room for another chunk of the given duration
  /// (0 if it already fits). Only meaningful while playing.
  [[nodiscard]] double time_until_room_for(double chunk_duration_s) const;

 private:
  double capacity_s_;
  double level_s_ = 0.0;
  bool playing_ = false;
};

}  // namespace vbr::sim
