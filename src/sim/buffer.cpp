#include "sim/buffer.h"

#include <algorithm>
#include <stdexcept>

namespace vbr::sim {

PlayoutBuffer::PlayoutBuffer(double capacity_s) : capacity_s_(capacity_s) {
  if (capacity_s_ <= 0.0) {
    throw std::invalid_argument("PlayoutBuffer: non-positive capacity");
  }
}

double PlayoutBuffer::elapse(double dt) {
  if (dt < 0.0) {
    throw std::invalid_argument("PlayoutBuffer::elapse: negative dt");
  }
  if (!playing_) {
    return 0.0;
  }
  const double drained = std::min(level_s_, dt);
  level_s_ -= drained;
  return dt - drained;  // time spent with an empty buffer = stall
}

void PlayoutBuffer::add_chunk(double chunk_duration_s) {
  if (chunk_duration_s <= 0.0) {
    throw std::invalid_argument("PlayoutBuffer::add_chunk: bad duration");
  }
  // Tolerate tiny floating-point excess (event-driven simulations carry
  // sub-microsecond residue); anything more is a session bug.
  if (level_s_ + chunk_duration_s > capacity_s_ + 1e-6) {
    throw std::logic_error("PlayoutBuffer: overflow — session must gate");
  }
  level_s_ = std::min(level_s_ + chunk_duration_s, capacity_s_);
}

double PlayoutBuffer::time_until_room_for(double chunk_duration_s) const {
  return std::max(level_s_ + chunk_duration_s - capacity_s_, 0.0);
}

}  // namespace vbr::sim
