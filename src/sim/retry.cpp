#include "sim/retry.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vbr::sim {

void RetryPolicy::validate() const {
  if (max_attempts == 0) {
    throw std::invalid_argument("RetryPolicy: max_attempts must be >= 1");
  }
  if (backoff_base_s < 0.0 || backoff_max_s < 0.0 ||
      backoff_factor < 1.0) {
    throw std::invalid_argument("RetryPolicy: bad backoff parameters");
  }
  if (backoff_jitter < 0.0 || backoff_jitter >= 1.0) {
    throw std::invalid_argument("RetryPolicy: jitter must lie in [0, 1)");
  }
  if (request_timeout_s < 0.0) {
    throw std::invalid_argument("RetryPolicy: negative request timeout");
  }
}

FailedAttempt charge_failed_attempt(const net::Trace& trace,
                                    const net::FaultOutcome& outcome,
                                    const net::FaultConfig& fault,
                                    const RetryPolicy& policy, double t,
                                    double request_rtt_s, double bits_needed,
                                    double rate_scale) {
  FailedAttempt out;
  switch (outcome.kind) {
    case net::FaultKind::kConnectFail:
      out.elapsed_s = fault.connect_fail_delay_s;
      break;
    case net::FaultKind::kTimeout:
      // The server stalls; the player aborts after its own timeout when it
      // has one, otherwise it sits out the full server stall.
      out.elapsed_s = request_rtt_s + (policy.request_timeout_s > 0.0
                                           ? policy.request_timeout_s
                                           : fault.timeout_s);
      break;
    case net::FaultKind::kMidDrop:
      out.delivered_bits = outcome.drop_fraction * bits_needed;
      out.elapsed_s = request_rtt_s +
                      trace.download_duration_s(t + request_rtt_s,
                                                out.delivered_bits / rate_scale);
      break;
    case net::FaultKind::kNone:
      throw std::logic_error("charge_failed_attempt: attempt did not fail");
  }
  return out;
}

double backoff_delay_s(const RetryPolicy& policy, const net::FaultModel& model,
                       std::size_t chunk_index, std::size_t retry_index) {
  const double nominal = std::min(
      policy.backoff_base_s *
          std::pow(policy.backoff_factor, static_cast<double>(retry_index)),
      policy.backoff_max_s);
  return nominal * model.jitter_multiplier(chunk_index, retry_index,
                                           policy.backoff_jitter);
}

}  // namespace vbr::sim
