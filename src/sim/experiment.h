// Experiment harness: sweep a scheme over a trace set and aggregate the
// paper's five QoE metrics, the way every Section 6 table and figure is
// produced (one session per trace, CDFs/means across traces).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "abr/scheme.h"
#include "metrics/qoe.h"
#include "net/bandwidth_estimator.h"
#include "net/trace.h"
#include "sim/session.h"
#include "video/video.h"

namespace vbr::sim {

/// Builds a scheme instance. Schemes are stateful, but run_session resets
/// scheme state up front, so each worker builds ONE instance and reuses it
/// across the sessions it runs: the factory is called O(threads), not
/// O(sessions). Back-to-back reuse is pinned byte-identical to fresh
/// instances by regression tests (tests/test_mpc_differential.cpp,
/// tests/test_experiment.cpp).
using SchemeFactory = std::function<std::unique_ptr<abr::AbrScheme>()>;

/// Builds a fresh estimator per session; receives the trace so oracle
/// estimators (Section 6.7) can bind to it.
using EstimatorFactory =
    std::function<std::unique_ptr<net::BandwidthEstimator>(const net::Trace&)>;

/// Builds a fresh chunk-size provider per session. Providers carry learned
/// per-session state (online correction), and sessions run in parallel
/// across worker threads, so a shared instance is never safe here.
using SizeProviderFactory =
    std::function<std::unique_ptr<video::ChunkSizeProvider>()>;

/// The paper's default: harmonic mean of the last 5 chunk throughputs.
[[nodiscard]] EstimatorFactory default_estimator_factory();

struct ExperimentSpec {
  const video::Video* video = nullptr;
  std::span<const net::Trace> traces;
  SchemeFactory make_scheme;
  EstimatorFactory make_estimator;  ///< Empty = default harmonic mean.
  /// Empty = exact size knowledge. When set, session.size_provider must be
  /// null (run_experiment throws otherwise): the factory exists precisely
  /// because one provider instance cannot serve concurrent sessions.
  SizeProviderFactory make_size_provider;
  SessionConfig session;
  video::QualityMetric metric = video::QualityMetric::kVmafPhone;
  metrics::QoeConfig qoe;
  /// Worker threads; 0 = hardware concurrency. Validated: run_experiment
  /// rejects values above kMaxThreads (a mistyped thread count should fail
  /// loudly, not fork-bomb the host).
  unsigned threads = 0;

  /// Merged telemetry destinations (optional, not owned). Sessions never
  /// touch these concurrently: each trace runs with a private in-memory
  /// sink and registry, and the harness folds them into `trace`/`metrics`
  /// in *trace-index order* after the workers join. Same-seed experiments
  /// therefore produce byte-identical merged event streams and identical
  /// deterministic metrics at any thread count. Because of this discipline,
  /// run_experiment rejects sinks wired through `session` (they would be
  /// shared across worker threads).
  obs::TraceSink* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Upper bound on ExperimentSpec::threads (sanity guard, not a tuning
/// knob).
inline constexpr unsigned kMaxThreads = 1024;

/// Aggregate over all traces of one experiment.
struct ExperimentResult {
  std::string scheme_name;
  std::vector<metrics::QoeSummary> per_trace;  ///< Ordered like the traces.
  /// Fault/retry aggregates, ordered like the traces (all-zero counters
  /// when fault injection is off).
  std::vector<metrics::FaultSummary> per_trace_faults;

  // Means across traces.
  double mean_q4_quality = 0.0;
  double mean_q13_quality = 0.0;
  double mean_all_quality = 0.0;
  double mean_low_quality_pct = 0.0;
  double mean_rebuffer_s = 0.0;
  double mean_quality_change = 0.0;
  double mean_data_usage_mb = 0.0;
  double mean_attempts_per_chunk = 0.0;  ///< 1.0 when nothing ever fails.
  double mean_skipped_pct = 0.0;         ///< Percent of chunks skipped.

  /// Per-trace vectors of one metric, for CDFs.
  [[nodiscard]] std::vector<double> rebuffer_values() const;
  [[nodiscard]] std::vector<double> low_quality_pct_values() const;
  [[nodiscard]] std::vector<double> quality_change_values() const;
  [[nodiscard]] std::vector<double> data_usage_values() const;
  /// Pooled per-chunk Q4 / Q1-Q3 / all-chunk qualities across traces.
  [[nodiscard]] std::vector<double> pooled_q4_qualities() const;
  [[nodiscard]] std::vector<double> pooled_q13_qualities() const;
  [[nodiscard]] std::vector<double> pooled_all_qualities() const;
};

/// Runs one scheme over every trace (parallel across traces).
/// Throws std::invalid_argument on a malformed spec.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentSpec& spec);

}  // namespace vbr::sim
