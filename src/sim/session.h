// Trace-driven streaming session simulator.
//
// Replays one (video, network trace, ABR scheme) combination at chunk
// granularity, the same methodology as the paper's simulation experiments:
// the ABR logic sees application-level state only, and the network appears
// solely through per-chunk download durations integrated from the trace.
//
// Session life cycle:
//   - chunks are fetched strictly in order, one at a time;
//   - playback starts once `startup_latency_s` seconds are buffered;
//   - while a download is in flight the buffer drains in real time; running
//     dry during playback is a stall (rebuffering), and playback resumes
//     when the in-flight chunk lands;
//   - a download never starts while the buffer lacks room for the chunk
//     (max buffer 100 s by default), and schemes may additionally ask to
//     idle (BOLA-E's pause behaviour).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "abr/scheme.h"
#include "metrics/qoe.h"
#include "metrics/qoe_model.h"
#include "metrics/report.h"
#include "net/bandwidth_estimator.h"
#include "net/fault_model.h"
#include "net/trace.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "sim/retry.h"
#include "video/size_provider.h"
#include "video/video.h"

namespace vbr::sim {

/// How one chunk will be delivered, decided by the download-path hook
/// before the transfer starts. The default-constructed plan is the
/// identity: zero added latency and a rate scale of 1 reproduce the
/// hook-free arithmetic bit for bit.
struct FetchPlan {
  double added_latency_s = 0.0;  ///< Extra first-byte latency (cache/origin).
  /// Fraction of the path bandwidth the transfer sustains, in (0, 1]. An
  /// origin-served chunk behind a congested backhaul gets < 1.
  double rate_scale = 1.0;
  bool edge_hit = false;         ///< Served from the edge cache (bookkeeping).
  /// Delivery tier the chunk was served from: 0 = edge, 1 = regional,
  /// 2 = origin (fleet::CdnPath; the flat edge model only uses 0).
  unsigned tier = 0;
  bool coalesced = false;  ///< Joined an in-flight upstream fetch.
  bool shed = false;       ///< Penalized by upstream admission control.
};

/// Delivery-infrastructure hook in the chunk-download path (edge cache /
/// origin model; see fleet::EdgeCachePath). Consulted once per fetched
/// object — re-consulted when abandonment or downgrade switches the fetch
/// to a different track — and notified when the chunk lands so caches can
/// admit it. Not owned and not thread-safe: concurrent sessions need
/// private hooks (run_experiment rejects a shared one; run_fleet shards
/// per title).
class DownloadPathHook {
 public:
  virtual ~DownloadPathHook() = default;
  [[nodiscard]] virtual FetchPlan on_chunk_request(const video::Video& video,
                                                   std::size_t track,
                                                   std::size_t index,
                                                   double size_bits,
                                                   double now_s) = 0;
  virtual void on_chunk_delivered(const video::Video& video,
                                  std::size_t track, std::size_t index,
                                  double size_bits, double now_s) {
    (void)video;
    (void)track;
    (void)index;
    (void)size_bits;
    (void)now_s;
  }
};

struct SessionConfig {
  double startup_latency_s = 10.0;  ///< Paper's reported setting.
  double max_buffer_s = 100.0;      ///< Paper's apple-to-apple buffer cap.
  /// Per-request round-trip latency before the first byte arrives (HTTP
  /// GET + server think time). 0 = the paper's idealized replay; a few tens
  /// of ms penalizes small (low-track) chunks disproportionately. The
  /// estimator sees throughput over the full request (RTT included), as an
  /// application-level measurement would.
  double request_rtt_s = 0.0;

  /// Segment abandonment (dash.js AbandonRequestsRule): if, part-way into a
  /// download, the time still needed exceeds the remaining buffer and the
  /// chunk is not from the lowest track, abort and refetch the lowest
  /// track. Bytes already transferred are wasted (counted in data usage),
  /// exactly as in a real player.
  bool enable_abandonment = false;
  /// Fraction of the (estimated) download that must have elapsed before an
  /// abandonment decision is taken (dash.js samples progress similarly).
  double abandon_check_fraction = 0.25;

  /// Network fault injection (all probabilities 0 = off; when off, the
  /// session byte-for-byte reproduces the fault-free simulator and `retry`
  /// is never consulted).
  net::FaultConfig fault;
  /// Resilience knobs applied when `fault` is enabled (see sim/retry.h for
  /// the graceful-degradation semantics).
  RetryPolicy retry;

  /// Chunk-size knowledge the *scheme* sees (degraded-metadata operation).
  /// null = the scheme reads exact manifest sizes, today's behaviour. The
  /// network always transfers the true chunk size — only the scheme's
  /// beliefs degrade. Not owned; reset() at session start; fed every
  /// delivered chunk's actual size so correcting providers can learn.
  video::ChunkSizeProvider* size_provider = nullptr;

  /// Session watch duration in seconds: the viewer leaves once this much
  /// content has played, so the session only fetches the chunks covering
  /// it. 0 (default) = watch to the end. Fleet runs draw per-session watch
  /// durations from an early-abandon distribution and set this.
  double watch_duration_s = 0.0;

  /// Delivery-infrastructure hook (edge cache / origin model) in the chunk
  /// download path. Null = direct delivery, today's behaviour, with
  /// byte-identical arithmetic. Not owned; not thread-safe (see
  /// DownloadPathHook).
  DownloadPathHook* download_hook = nullptr;

  /// Per-session watchdog budgets (0 = off). A pathological combination of
  /// scheme, trace, and fault model (endless waits, unbounded retries) must
  /// not pin a fleet worker forever: when either budget is exceeded the
  /// session stops fetching, keeps everything resolved so far, and flags
  /// `SessionResult::watchdog_aborted`. Both budgets are measured in
  /// simulation state (decision count, sim clock), never wall time, so an
  /// aborted session aborts identically on every run at any thread count.
  std::uint64_t watchdog_max_decisions = 0;  ///< Max chunk decisions taken.
  double watchdog_max_sim_s = 0.0;           ///< Max simulated clock time.

  /// Fleet workload context stamped into telemetry events (run_fleet sets
  /// these; standalone sessions leave fleet_session false and their events
  /// omit the block).
  bool fleet_session = false;
  double fleet_arrival_s = 0.0;   ///< Session arrival time in the fleet run.
  std::uint64_t fleet_title = 0;  ///< Catalog title index.
  /// Experiment arm index (src/exp), stamped onto every DecisionEvent when
  /// >= 0. Negative = not part of an A/B run (events omit the field).
  std::int64_t fleet_arm = -1;

  /// Telemetry (observability layer, src/obs). Both null = off, which costs
  /// one branch per chunk and nothing else (the null-sink guarantee). Not
  /// owned; the sink receives one obs::DecisionEvent per resolved chunk and
  /// the registry the session-loop counters/histograms. Neither is
  /// thread-safe — concurrent sessions need private instances, merged
  /// afterwards (run_experiment does this for you; it rejects sinks set
  /// here for exactly that reason).
  obs::TraceSink* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Stamped into every event this session emits (trace index, client id).
  std::uint64_t session_id = 0;
};

/// Per-chunk record of what the session did.
struct ChunkRecord {
  std::size_t index = 0;         ///< Playback position.
  std::size_t track = 0;         ///< Track selected by the scheme.
  double size_bits = 0.0;
  double download_start_s = 0.0;
  double download_s = 0.0;       ///< Wall-clock download duration.
  double wait_s = 0.0;           ///< Scheme-requested idle before download.
  double stall_s = 0.0;          ///< Rebuffering incurred during download.
  double buffer_after_s = 0.0;   ///< Buffer right after the chunk landed.
  video::ChunkQuality quality;   ///< Quality of the chunk as delivered.
  bool abandoned_higher = false; ///< True if a higher-track fetch was
                                 ///< aborted and replaced by this chunk.
  double wasted_bits = 0.0;      ///< Bits burned on aborted/dropped fetches.

  // Fault-injection / retry outcome (defaults describe the fault-free path).
  std::size_t attempts = 1;          ///< Download attempts consumed.
  std::size_t connect_failures = 0;  ///< Hard failures before the first byte.
  std::size_t mid_drops = 0;         ///< Mid-transfer connection drops.
  std::size_t timeouts = 0;          ///< Response timeouts.
  double backoff_wait_s = 0.0;       ///< Idle time spent backing off.
  double resumed_bits = 0.0;         ///< Bits salvaged via byte-range resume.
  bool downgraded = false;  ///< Dropped to the lowest track after failures.
  bool skipped = false;     ///< All attempts exhausted; chunk never played.

  // Delivery-path outcome (identity defaults when no hook is attached).
  bool edge_hit = false;        ///< Served from the edge cache.
  double edge_latency_s = 0.0;  ///< Hook-added first-byte latency.
  unsigned delivery_tier = 0;   ///< 0 = edge, 1 = regional, 2 = origin.
  bool coalesced = false;       ///< Joined an in-flight upstream fetch.
  bool shed = false;            ///< Penalized by upstream admission control.
};

/// Complete session outcome.
struct SessionResult {
  std::vector<ChunkRecord> chunks;
  double startup_delay_s = 0.0;  ///< Wall-clock time until playback started.
  double total_rebuffer_s = 0.0;
  double total_bits = 0.0;
  double end_time_s = 0.0;       ///< Wall-clock time of the last download.
  /// The session hit a watchdog budget and stopped fetching early; the
  /// chunks resolved before the abort are all present and final.
  bool watchdog_aborted = false;

  /// Converts to the QoE layer's view using the given quality metric and
  /// per-position complexity classes. Skipped chunks were never played and
  /// are excluded.
  [[nodiscard]] std::vector<metrics::PlayedChunk> to_played_chunks(
      video::QualityMetric metric,
      const std::vector<std::size_t>& chunk_classes) const;

  /// Aggregates the per-chunk fault/retry outcomes (all-zero counters and
  /// attempts == chunks on a fault-free run).
  [[nodiscard]] metrics::FaultSummary fault_summary() const;
};

/// The QoE-model seam: projects a finished session onto one device metric
/// as a metrics::QoeSessionView (played chunks only, playback order), so
/// pluggable QoE models (metrics/qoe_model.h) can score it without
/// re-simulation.
[[nodiscard]] metrics::QoeSessionView qoe_session_view(
    const SessionResult& result, video::QualityMetric metric,
    double chunk_duration_s);

/// Validates the shared SessionConfig invariants (positive buffer/startup,
/// non-negative RTT and watch duration, abandon fraction in (0, 1],
/// fault/retry configs); throws std::invalid_argument with messages
/// prefixed by `caller`.
void validate_session_config(const SessionConfig& config, const char* caller);

/// Number of chunks a session with the given watch duration fetches:
/// ceil(watch / chunk_duration), clamped to [1, num_chunks]; the full video
/// when watch_duration_s <= 0.
[[nodiscard]] std::size_t effective_chunk_count(const video::Video& video,
                                                double watch_duration_s);

/// Runs one full session. The scheme and estimator are reset() first, so
/// instances can be reused across traces.
/// Throws std::invalid_argument on inconsistent inputs.
[[nodiscard]] SessionResult run_session(const video::Video& video,
                                        const net::Trace& trace,
                                        abr::AbrScheme& scheme,
                                        net::BandwidthEstimator& estimator,
                                        const SessionConfig& config = {});

}  // namespace vbr::sim
