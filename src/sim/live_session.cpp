#include "sim/live_session.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/buffer.h"
#include "sim/telemetry.h"

namespace vbr::sim {

namespace {

/// Wall-clock time chunk i becomes downloadable.
double announce_time(std::size_t i, double chunk_s, double encoder_delay_s) {
  return static_cast<double>(i + 1) * chunk_s + encoder_delay_s;
}

}  // namespace

LiveSessionResult run_live_session(const video::Video& video,
                                   const net::Trace& trace,
                                   abr::AbrScheme& scheme,
                                   net::BandwidthEstimator& estimator,
                                   const LiveSessionConfig& config) {
  const double chunk_s = video.chunk_duration_s();
  if (config.startup_latency_s <= 0.0 ||
      config.startup_latency_s > config.max_buffer_s) {
    throw std::invalid_argument(
        "run_live_session: startup latency must be in (0, max_buffer]");
  }
  if (config.join_latency_s < chunk_s + config.encoder_delay_s) {
    throw std::invalid_argument(
        "run_live_session: join latency below one chunk + encoder delay");
  }
  if (config.encoder_delay_s < 0.0) {
    throw std::invalid_argument("run_live_session: negative encoder delay");
  }
  config.fault.validate();
  if (config.fault.any()) {
    config.retry.validate();
  }
  const net::FaultModel fault_model(config.fault);

  scheme.reset();
  estimator.reset();
  if (config.size_provider != nullptr) {
    config.size_provider->reset();
  }
  detail::SessionTelemetry telemetry;
  telemetry.bind(config.trace, config.metrics, config.session_id, scheme,
                 config.size_provider);

  PlayoutBuffer buffer(config.max_buffer_s);
  LiveSessionResult result;
  result.session.chunks.reserve(video.num_chunks());

  // The player joins `join_latency_s` after the stream origin and starts
  // fetching from chunk 0.
  double t = config.join_latency_s;
  int prev_track = -1;

  for (std::size_t i = 0; i < video.num_chunks(); ++i) {
    // Gate 1: the chunk must exist.
    const double available_at =
        announce_time(i, chunk_s, config.encoder_delay_s);
    if (t < available_at) {
      const double wait = available_at - t;
      result.session.total_rebuffer_s += buffer.elapse(wait);
      result.edge_wait_s += wait;
      t = available_at;
    }
    // Gate 2: buffer room (rare in live, the edge gate binds first).
    const double room_wait = buffer.time_until_room_for(chunk_s);
    if (room_wait > 0.0) {
      result.session.total_rebuffer_s += buffer.elapse(room_wait);
      t += room_wait;
    }

    // Chunks announced so far fence every scheme's look-ahead.
    const auto visible = static_cast<std::size_t>(std::max(
        1.0,
        std::floor((t - config.encoder_delay_s) / chunk_s)));

    abr::StreamContext ctx;
    ctx.video = &video;
    ctx.next_chunk = i;
    ctx.buffer_s = buffer.level_s();
    ctx.est_bandwidth_bps = estimator.estimate_bps(t);
    ctx.prev_track = prev_track;
    ctx.now_s = t;
    ctx.max_buffer_s = config.max_buffer_s;
    ctx.startup_latency_s = config.startup_latency_s;
    ctx.in_startup = !buffer.playing();
    ctx.visible_chunks = std::min(visible, video.num_chunks());
    ctx.sizes = config.size_provider;

    const abr::Decision decision = detail::timed_decide(telemetry, scheme,
                                                        ctx);
    if (decision.track >= video.num_tracks()) {
      throw std::logic_error("run_live_session: scheme chose invalid track");
    }
    if (decision.wait_s > 0.0) {
      result.session.total_rebuffer_s += buffer.elapse(decision.wait_s);
      t += decision.wait_s;
    }

    ChunkRecord rec;
    rec.index = i;
    rec.track = decision.track;
    rec.download_start_s = t;
    rec.size_bits = video.chunk_size_bits(decision.track, i);
    double final_bits = rec.size_bits;

    if (!fault_model.enabled()) {
      // Fault-free path: identical arithmetic to the pre-fault simulator.
      rec.download_s = trace.download_duration_s(t, rec.size_bits);
      rec.stall_s = buffer.elapse(rec.download_s);
      result.session.total_rebuffer_s += rec.stall_s;
      t += rec.download_s;
    } else {
      // Resilient fetch (same semantics as run_session; live has no RTT
      // model and no abandonment rule).
      double remaining_bits = rec.size_bits;
      std::size_t failures = 0;
      bool delivered = false;
      while (true) {
        const net::FaultOutcome outcome = fault_model.outcome(i, failures);
        if (outcome.kind == net::FaultKind::kNone) {
          const double dl = trace.download_duration_s(t, remaining_bits);
          rec.download_s = dl;
          const double stalled = buffer.elapse(dl);
          rec.stall_s += stalled;
          result.session.total_rebuffer_s += stalled;
          t += dl;
          final_bits = remaining_bits;
          delivered = true;
          break;
        }
        switch (outcome.kind) {
          case net::FaultKind::kConnectFail:
            ++rec.connect_failures;
            break;
          case net::FaultKind::kMidDrop:
            ++rec.mid_drops;
            break;
          case net::FaultKind::kTimeout:
            ++rec.timeouts;
            break;
          case net::FaultKind::kNone:
            break;
        }
        const FailedAttempt fa = charge_failed_attempt(
            trace, outcome, config.fault, config.retry, t, 0.0,
            remaining_bits);
        const double stalled = buffer.elapse(fa.elapsed_s);
        rec.stall_s += stalled;
        result.session.total_rebuffer_s += stalled;
        t += fa.elapsed_s;
        if (fa.delivered_bits > 0.0) {
          if (config.retry.resume_partial) {
            rec.resumed_bits += fa.delivered_bits;
            remaining_bits =
                std::max(remaining_bits - fa.delivered_bits, 1.0);
          } else {
            rec.wasted_bits += fa.delivered_bits;
            result.session.total_bits += fa.delivered_bits;
          }
        }
        ++failures;
        if (failures >= config.retry.max_attempts) {
          rec.skipped = true;
          break;
        }
        if (config.retry.downgrade_on_failure && rec.track > 0 &&
            failures >= config.retry.downgrade_after) {
          rec.track = 0;
          rec.downgraded = true;
          rec.size_bits = video.chunk_size_bits(0, i);
          if (rec.resumed_bits > 0.0) {
            rec.wasted_bits += rec.resumed_bits;
            result.session.total_bits += rec.resumed_bits;
            rec.resumed_bits = 0.0;
          }
          remaining_bits = rec.size_bits;
        }
        const double backoff =
            backoff_delay_s(config.retry, fault_model, i, failures - 1);
        if (backoff > 0.0) {
          rec.backoff_wait_s += backoff;
          result.session.total_rebuffer_s += buffer.elapse(backoff);
          t += backoff;
        }
      }
      rec.attempts = failures + (delivered ? 1 : 0);
      if (rec.skipped) {
        rec.download_s = 0.0;
        rec.size_bits = 0.0;
      }
    }

    if (!rec.skipped) {
      buffer.add_chunk(chunk_s);
      rec.buffer_after_s = buffer.level_s();
      rec.quality = video.track(rec.track).chunk(i).quality;

      estimator.on_chunk_downloaded(final_bits, rec.download_s, t);
      scheme.on_chunk_downloaded(ctx, rec.track, rec.download_s);
      if (config.size_provider != nullptr) {
        config.size_provider->on_actual_size(
            video, rec.track, i, video.chunk_size_bits(rec.track, i));
      }
    } else {
      rec.buffer_after_s = buffer.level_s();
    }

    if (!buffer.playing() &&
        (buffer.level_s() >= config.startup_latency_s ||
         i + 1 == video.num_chunks())) {
      buffer.start_playback();
      result.session.startup_delay_s = t - config.join_latency_s;
    }

    result.session.total_bits += rec.size_bits;
    result.session.chunks.push_back(rec);
    telemetry.on_chunk(rec, ctx, scheme, result.session.total_rebuffer_s, t);
    if (!rec.skipped) {
      prev_track = static_cast<int>(rec.track);
    }
  }
  result.session.end_time_s = t;
  if (config.trace != nullptr) {
    config.trace->flush();
  }

  // Latency accounting: chunk i starts playing at
  //   P(0) = playback start, P(i) = max(P(i-1) + chunk_s, F(i)),
  // where F(i) is its download-finish time; its live latency is P(i) minus
  // its content timestamp i * chunk_s. A skipped chunk is jumped over: its
  // content time passes without the playhead waiting on a download.
  double play = config.join_latency_s + result.session.startup_delay_s;
  double lat_sum = 0.0;
  std::size_t delivered = 0;
  bool first = true;
  for (std::size_t i = 0; i < result.session.chunks.size(); ++i) {
    const ChunkRecord& rec = result.session.chunks[i];
    if (rec.skipped) {
      if (!first) {
        play += chunk_s;
      }
      continue;
    }
    const double finish = rec.download_start_s + rec.download_s;
    play = first ? std::max(play, finish)
                 : std::max(play + chunk_s, finish);
    first = false;
    const double latency = play - static_cast<double>(i) * chunk_s;
    lat_sum += latency;
    result.max_latency_s = std::max(result.max_latency_s, latency);
    ++delivered;
  }
  if (delivered > 0) {
    result.mean_latency_s = lat_sum / static_cast<double>(delivered);
  }
  return result;
}

}  // namespace vbr::sim
