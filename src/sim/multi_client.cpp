#include "sim/multi_client.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "sim/buffer.h"

namespace vbr::sim {

double MultiClientResult::jain_index(const std::vector<double>& xs) {
  if (xs.empty()) {
    throw std::invalid_argument("jain_index: empty input");
  }
  double sum = 0.0;
  double sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq == 0.0) {
    return 1.0;  // all zero: trivially fair
  }
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

std::vector<double> MultiClientResult::mean_qualities(
    video::QualityMetric metric) const {
  std::vector<double> out;
  out.reserve(sessions.size());
  for (const SessionResult& s : sessions) {
    double q = 0.0;
    for (const ChunkRecord& c : s.chunks) {
      q += c.quality.get(metric);
    }
    out.push_back(s.chunks.empty()
                      ? 0.0
                      : q / static_cast<double>(s.chunks.size()));
  }
  return out;
}

std::vector<double> MultiClientResult::total_bits() const {
  std::vector<double> out;
  out.reserve(sessions.size());
  for (const SessionResult& s : sessions) {
    out.push_back(s.total_bits);
  }
  return out;
}

namespace {

constexpr double kEps = 1e-7;

enum class Phase {
  kIdle,         ///< Waiting (join offset, scheme wait, or buffer room).
  kLatency,      ///< Request issued; RTT elapsing, no bytes yet.
  kDownloading,  ///< Receiving bytes (fair share of the bottleneck).
  kDone,
};

struct ClientState {
  ClientSpec spec;
  PlayoutBuffer buffer;
  SessionResult result;
  Phase phase = Phase::kIdle;
  double phase_until = 0.0;      ///< kIdle/kLatency: wake-up time.
  double remaining_bits = 0.0;   ///< kDownloading.
  std::size_t next_chunk = 0;
  int prev_track = -1;
  bool room_checked = false;     ///< Room gate applied for the current chunk.
  ChunkRecord rec;               ///< In-flight chunk bookkeeping.
  abr::StreamContext last_ctx;   ///< Context used for the in-flight decide.

  explicit ClientState(ClientSpec s, double max_buffer)
      : spec(std::move(s)), buffer(max_buffer) {}
};

}  // namespace

MultiClientResult run_multi_client(const net::Trace& trace,
                                   std::vector<ClientSpec> clients,
                                   const SessionConfig& config) {
  if (clients.empty()) {
    throw std::invalid_argument("run_multi_client: no clients");
  }
  if (config.startup_latency_s <= 0.0 ||
      config.startup_latency_s > config.max_buffer_s ||
      config.request_rtt_s < 0.0) {
    throw std::invalid_argument("run_multi_client: bad session config");
  }
  if (config.enable_abandonment) {
    throw std::invalid_argument(
        "run_multi_client: abandonment is not modeled for shared "
        "bottlenecks");
  }

  std::vector<ClientState> state;
  state.reserve(clients.size());
  for (ClientSpec& spec : clients) {
    if (spec.video == nullptr || !spec.scheme || !spec.estimator ||
        spec.start_offset_s < 0.0) {
      throw std::invalid_argument("run_multi_client: malformed client spec");
    }
    spec.scheme->reset();
    spec.estimator->reset();
    ClientState cs(std::move(spec), config.max_buffer_s);
    cs.phase_until = cs.spec.start_offset_s;
    state.push_back(std::move(cs));
  }

  double t = 0.0;

  // Issues the next action for a client whose idle period has elapsed:
  // decide -> (scheme wait) -> (buffer-room wait) -> request in flight.
  auto activate = [&](ClientState& c) {
    const video::Video& v = *c.spec.video;
    if (c.next_chunk >= v.num_chunks()) {
      c.phase = Phase::kDone;
      c.result.end_time_s = t;
      return;
    }
    if (!c.room_checked) {
      // Fresh chunk: take the scheme's decision first.
      abr::StreamContext ctx;
      ctx.video = &v;
      ctx.next_chunk = c.next_chunk;
      ctx.buffer_s = c.buffer.level_s();
      ctx.est_bandwidth_bps = c.spec.estimator->estimate_bps(t);
      ctx.prev_track = c.prev_track;
      ctx.now_s = t;
      ctx.max_buffer_s = config.max_buffer_s;
      ctx.startup_latency_s = config.startup_latency_s;
      ctx.in_startup = !c.buffer.playing();
      const abr::Decision d = c.spec.scheme->decide(ctx);
      if (d.track >= v.num_tracks()) {
        throw std::logic_error("run_multi_client: invalid track");
      }
      c.last_ctx = ctx;
      c.rec = ChunkRecord{};
      c.rec.index = c.next_chunk;
      c.rec.track = d.track;
      c.room_checked = true;
      const double room_wait =
          c.buffer.time_until_room_for(v.chunk_duration_s());
      const double wait = std::max(d.wait_s, 0.0) + room_wait;
      // Sub-epsilon waits are float residue; treating them as real waits
      // would spin the activation loop without advancing time.
      if (wait > kEps) {
        c.rec.wait_s = wait;
        c.phase = Phase::kIdle;
        c.phase_until = t + wait;
        return;
      }
    } else {
      // Waking from a wait: re-check the room gate (drain may be needed).
      const double room_wait =
          c.buffer.time_until_room_for(c.spec.video->chunk_duration_s());
      if (room_wait > kEps) {
        c.rec.wait_s += room_wait;
        c.phase = Phase::kIdle;
        c.phase_until = t + room_wait;
        return;
      }
    }
    // Issue the request.
    c.rec.download_start_s = t;
    c.rec.size_bits = c.spec.video->chunk_size_bits(c.rec.track,
                                                    c.rec.index);
    c.remaining_bits = c.rec.size_bits;
    if (config.request_rtt_s > 0.0) {
      c.phase = Phase::kLatency;
      c.phase_until = t + config.request_rtt_s;
    } else {
      c.phase = Phase::kDownloading;
    }
  };

  auto complete_chunk = [&](ClientState& c) {
    const video::Video& v = *c.spec.video;
    c.rec.download_s = t - c.rec.download_start_s;
    c.buffer.add_chunk(v.chunk_duration_s());
    c.rec.buffer_after_s = c.buffer.level_s();
    c.rec.quality = v.track(c.rec.track).chunk(c.rec.index).quality;
    c.spec.estimator->on_chunk_downloaded(c.rec.size_bits, c.rec.download_s,
                                          t);
    c.spec.scheme->on_chunk_downloaded(c.last_ctx, c.rec.track,
                                       c.rec.download_s);
    if (!c.buffer.playing() &&
        (c.buffer.level_s() >= config.startup_latency_s ||
         c.rec.index + 1 == v.num_chunks())) {
      c.buffer.start_playback();
      c.result.startup_delay_s = t - c.spec.start_offset_s;
    }
    c.result.total_bits += c.rec.size_bits;
    c.result.chunks.push_back(c.rec);
    c.prev_track = static_cast<int>(c.rec.track);
    ++c.next_chunk;
    c.room_checked = false;
    if (c.next_chunk >= v.num_chunks()) {
      c.phase = Phase::kDone;
      c.result.end_time_s = t;
    } else {
      c.phase = Phase::kIdle;
      c.phase_until = t;  // immediately eligible
    }
  };

  while (true) {
    // Activate every client whose idle/latency period has elapsed.
    bool progress = true;
    while (progress) {
      progress = false;
      for (ClientState& c : state) {
        if (c.phase == Phase::kIdle && c.phase_until <= t + kEps) {
          activate(c);
          progress = true;
        } else if (c.phase == Phase::kLatency &&
                   c.phase_until <= t + kEps) {
          c.phase = Phase::kDownloading;
          progress = true;
        }
      }
    }

    // Count active downloads for the fair share.
    std::size_t downloading = 0;
    bool all_done = true;
    for (const ClientState& c : state) {
      downloading += c.phase == Phase::kDownloading ? 1 : 0;
      all_done &= c.phase == Phase::kDone;
    }
    if (all_done) {
      break;
    }

    const double bw = trace.bandwidth_at(t);
    const double share =
        downloading > 0 ? bw / static_cast<double>(downloading) : 0.0;

    // Next event: a wake-up, a download completion, or a trace boundary.
    const double wrapped = std::fmod(t, trace.duration_s());
    const double boundary =
        t + ((std::floor(wrapped / trace.sample_period_s()) + 1.0) *
                 trace.sample_period_s() -
             wrapped);
    double next_t = boundary;
    for (const ClientState& c : state) {
      if (c.phase == Phase::kIdle || c.phase == Phase::kLatency) {
        next_t = std::min(next_t, std::max(c.phase_until, t + kEps));
      } else if (c.phase == Phase::kDownloading && share > 0.0) {
        next_t = std::min(next_t, t + c.remaining_bits / share);
      }
    }
    const double dt = std::max(next_t - t, kEps);

    // Advance: transfer bytes, drain buffers, account stalls.
    for (ClientState& c : state) {
      if (c.phase == Phase::kDone) {
        continue;
      }
      const double stalled = c.buffer.elapse(dt);
      if (c.phase == Phase::kDownloading) {
        c.remaining_bits -= share * dt;
        c.rec.stall_s += stalled;
      }
      c.result.total_rebuffer_s += stalled;
    }
    t += dt;

    // Handle completions.
    for (ClientState& c : state) {
      if (c.phase == Phase::kDownloading && c.remaining_bits <= 1e-3) {
        complete_chunk(c);
      }
    }
  }

  MultiClientResult result;
  result.sessions.reserve(state.size());
  for (ClientState& c : state) {
    result.sessions.push_back(std::move(c.result));
  }
  return result;
}

}  // namespace vbr::sim
