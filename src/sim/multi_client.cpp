#include "sim/multi_client.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "metrics/stats.h"
#include "sim/buffer.h"
#include "sim/telemetry.h"

namespace vbr::sim {

double MultiClientResult::jain_index(const std::vector<double>& xs) {
  return stats::jain_index(xs);
}

std::vector<double> MultiClientResult::mean_qualities(
    video::QualityMetric metric) const {
  std::vector<double> out;
  out.reserve(sessions.size());
  for (const SessionResult& s : sessions) {
    double q = 0.0;
    std::size_t played = 0;
    for (const ChunkRecord& c : s.chunks) {
      if (c.skipped) {
        continue;
      }
      q += c.quality.get(metric);
      ++played;
    }
    out.push_back(played == 0 ? 0.0 : q / static_cast<double>(played));
  }
  return out;
}

std::vector<double> MultiClientResult::total_bits() const {
  std::vector<double> out;
  out.reserve(sessions.size());
  for (const SessionResult& s : sessions) {
    out.push_back(s.total_bits);
  }
  return out;
}

namespace {

constexpr double kEps = 1e-7;

enum class Phase {
  kIdle,         ///< Waiting (join offset, scheme wait, buffer room,
                 ///< connect-fail delay, timeout, or retry backoff).
  kLatency,      ///< Request issued; RTT elapsing, no bytes yet.
  kDownloading,  ///< Receiving bytes (fair share of the bottleneck).
  kDone,
};

struct ClientState {
  ClientSpec spec;
  PlayoutBuffer buffer;
  SessionResult result;
  net::FaultModel fault;         ///< Per-client deterministic fault stream.
  Phase phase = Phase::kIdle;
  double phase_until = 0.0;      ///< kIdle/kLatency: wake-up time.
  double remaining_bits = 0.0;   ///< kDownloading: bits this attempt delivers.
  std::size_t next_chunk = 0;
  int prev_track = -1;
  bool room_checked = false;     ///< Room gate applied for the current chunk.
  ChunkRecord rec;               ///< In-flight chunk bookkeeping.
  abr::StreamContext last_ctx;   ///< Context used for the in-flight decide.
  std::size_t total_chunks = 0;  ///< Watch-duration-truncated chunk bound.

  // Retry state for the in-flight chunk.
  bool fetch_started = false;    ///< First attempt of this chunk was issued.
  std::size_t failures = 0;      ///< Failed attempts so far.
  double need_bits = 0.0;        ///< Bits still required to land the chunk.
  double attempt_start_s = 0.0;  ///< Issue time of the current attempt.
  double attempt_bits = 0.0;     ///< Bits the current attempt transfers.
  bool attempt_failing = false;  ///< Current transfer ends in a mid-drop.
  bool pending_failure = false;  ///< A no-byte failure's delay is elapsing.
  detail::SessionTelemetry telemetry;  ///< Bound per client (single-threaded
                                       ///< loop, so one shared sink is safe).

  explicit ClientState(ClientSpec s, double max_buffer,
                       const net::FaultConfig& fc, std::uint64_t stream)
      : spec(std::move(s)), buffer(max_buffer), fault(fc, stream) {}
};

}  // namespace

MultiClientResult run_multi_client(const net::Trace& trace,
                                   std::vector<ClientSpec> clients,
                                   const SessionConfig& config) {
  if (clients.empty()) {
    throw std::invalid_argument("run_multi_client: no clients");
  }
  validate_session_config(config, "run_multi_client");
  if (config.enable_abandonment) {
    // Documented constraint (unit-tested): mid-download abandonment needs a
    // progress model for the aborted request, and under a shared bottleneck
    // aborting one client's transfer retroactively changes every other
    // client's fair share over the same interval — the event loop would
    // have to rewind. Early-leaving viewers are modeled instead through
    // watch-duration truncation (ClientSpec::watch_duration_s), which
    // composes cleanly with the shared-bottleneck semantics.
    throw std::invalid_argument(
        "run_multi_client: segment abandonment is not modeled for shared "
        "bottlenecks; model early-leaving viewers with "
        "ClientSpec::watch_duration_s instead");
  }
  if (config.size_provider != nullptr) {
    throw std::invalid_argument(
        "run_multi_client: use ClientSpec::size_provider — a shared "
        "provider would cross-contaminate per-client learned state");
  }
  if (config.download_hook != nullptr) {
    throw std::invalid_argument(
        "run_multi_client: download hooks are not supported — a shared "
        "stateful hook would make cache state depend on event-loop "
        "interleaving; use run_fleet's per-title shards instead");
  }

  std::vector<ClientState> state;
  state.reserve(clients.size());
  for (std::size_t ci = 0; ci < clients.size(); ++ci) {
    ClientSpec& spec = clients[ci];
    if (spec.video == nullptr || !spec.scheme || !spec.estimator ||
        spec.start_offset_s < 0.0) {
      throw std::invalid_argument("run_multi_client: malformed client spec");
    }
    spec.scheme->reset();
    spec.estimator->reset();
    if (spec.size_provider) {
      spec.size_provider->reset();
    }
    if (spec.watch_duration_s < 0.0) {
      throw std::invalid_argument(
          "run_multi_client: negative client watch duration");
    }
    ClientState cs(std::move(spec), config.max_buffer_s, config.fault, ci);
    cs.phase_until = cs.spec.start_offset_s;
    const double watch_s = cs.spec.watch_duration_s > 0.0
                               ? cs.spec.watch_duration_s
                               : config.watch_duration_s;
    cs.total_chunks = effective_chunk_count(*cs.spec.video, watch_s);
    cs.telemetry.bind(config.trace, config.metrics, config.session_id + ci,
                      *cs.spec.scheme, cs.spec.size_provider.get());
    state.push_back(std::move(cs));
  }

  double t = 0.0;

  // Finishes the current chunk as skipped: recorded, never delivered.
  auto skip_chunk = [&](ClientState& c) {
    c.rec.skipped = true;
    c.rec.attempts = c.failures;
    c.rec.download_s = 0.0;
    c.rec.size_bits = 0.0;
    c.rec.buffer_after_s = c.buffer.level_s();
    if (!c.buffer.playing() &&
        (c.buffer.level_s() >= config.startup_latency_s ||
         c.rec.index + 1 == c.total_chunks)) {
      c.buffer.start_playback();
      c.result.startup_delay_s = t - c.spec.start_offset_s;
    }
    c.result.chunks.push_back(c.rec);
    c.telemetry.on_chunk(c.rec, c.last_ctx, *c.spec.scheme,
                         c.result.total_rebuffer_s, t);
    ++c.next_chunk;
    c.room_checked = false;
    c.fetch_started = false;
    c.failures = 0;
    if (c.next_chunk >= c.total_chunks) {
      c.phase = Phase::kDone;
      c.result.end_time_s = t;
    } else {
      c.phase = Phase::kIdle;
      c.phase_until = t;  // immediately eligible
    }
  };

  // Books one failed attempt (bytes already accounted by the caller) and
  // schedules the next step: skip, downgrade, and/or backoff.
  auto handle_failure = [&](ClientState& c) {
    const video::Video& v = *c.spec.video;
    ++c.failures;
    if (c.failures >= config.retry.max_attempts) {
      skip_chunk(c);
      return;
    }
    if (config.retry.downgrade_on_failure && c.rec.track > 0 &&
        c.failures >= config.retry.downgrade_after) {
      c.rec.track = 0;
      c.rec.downgraded = true;
      c.rec.size_bits = v.chunk_size_bits(0, c.rec.index);
      if (c.rec.resumed_bits > 0.0) {
        // Partial higher-track bytes are useless to the new URL.
        c.rec.wasted_bits += c.rec.resumed_bits;
        c.result.total_bits += c.rec.resumed_bits;
        c.rec.resumed_bits = 0.0;
      }
      c.need_bits = c.rec.size_bits;
    }
    const double backoff = backoff_delay_s(config.retry, c.fault,
                                           c.rec.index, c.failures - 1);
    c.rec.backoff_wait_s += backoff;
    c.phase = Phase::kIdle;
    c.phase_until = t + backoff;
  };

  // A mid-drop transfer finished delivering its partial bytes and died.
  auto fail_transfer = [&](ClientState& c) {
    c.attempt_failing = false;
    if (config.retry.resume_partial) {
      c.rec.resumed_bits += c.attempt_bits;
      c.need_bits = std::max(c.need_bits - c.attempt_bits, 1.0);
    } else {
      c.rec.wasted_bits += c.attempt_bits;
      c.result.total_bits += c.attempt_bits;
    }
    handle_failure(c);
  };

  // Issues the next action for a client whose idle period has elapsed:
  // decide -> (scheme wait) -> (buffer-room wait) -> request in flight,
  // consulting the fault model per attempt.
  auto activate = [&](ClientState& c) {
    const video::Video& v = *c.spec.video;
    if (c.next_chunk >= c.total_chunks) {
      c.phase = Phase::kDone;
      c.result.end_time_s = t;
      return;
    }
    if (c.pending_failure) {
      // A connect-failure or timeout just finished burning its wall-clock
      // time; book it and let handle_failure schedule what follows.
      c.pending_failure = false;
      handle_failure(c);
      return;
    }
    if (!c.room_checked) {
      // Fresh chunk: take the scheme's decision first.
      abr::StreamContext ctx;
      ctx.video = &v;
      ctx.next_chunk = c.next_chunk;
      ctx.buffer_s = c.buffer.level_s();
      ctx.est_bandwidth_bps = c.spec.estimator->estimate_bps(t);
      ctx.prev_track = c.prev_track;
      ctx.now_s = t;
      ctx.max_buffer_s = config.max_buffer_s;
      ctx.startup_latency_s = config.startup_latency_s;
      ctx.in_startup = !c.buffer.playing();
      ctx.sizes = c.spec.size_provider.get();
      const abr::Decision d =
          detail::timed_decide(c.telemetry, *c.spec.scheme, ctx);
      if (d.track >= v.num_tracks()) {
        throw std::logic_error("run_multi_client: invalid track");
      }
      c.last_ctx = ctx;
      c.rec = ChunkRecord{};
      c.rec.index = c.next_chunk;
      c.rec.track = d.track;
      c.room_checked = true;
      const double room_wait =
          c.buffer.time_until_room_for(v.chunk_duration_s());
      const double wait = std::max(d.wait_s, 0.0) + room_wait;
      // Sub-epsilon waits are float residue; treating them as real waits
      // would spin the activation loop without advancing time.
      if (wait > kEps) {
        c.rec.wait_s = wait;
        c.phase = Phase::kIdle;
        c.phase_until = t + wait;
        return;
      }
    } else {
      // Waking from a wait: re-check the room gate (drain may be needed).
      const double room_wait =
          c.buffer.time_until_room_for(c.spec.video->chunk_duration_s());
      if (room_wait > kEps) {
        c.rec.wait_s += room_wait;
        c.phase = Phase::kIdle;
        c.phase_until = t + room_wait;
        return;
      }
    }
    // Issue one attempt of the current chunk.
    if (!c.fetch_started) {
      c.fetch_started = true;
      c.rec.download_start_s = t;
      c.rec.size_bits = c.spec.video->chunk_size_bits(c.rec.track,
                                                      c.rec.index);
      c.need_bits = c.rec.size_bits;
      c.failures = 0;
    }
    c.attempt_start_s = t;
    c.attempt_failing = false;
    const net::FaultOutcome outcome =
        c.fault.outcome(c.rec.index, c.failures);
    if (outcome.kind == net::FaultKind::kConnectFail ||
        outcome.kind == net::FaultKind::kTimeout) {
      // No bytes will flow; the failure's wall-clock cost elapses first.
      double delay = 0.0;
      if (outcome.kind == net::FaultKind::kConnectFail) {
        ++c.rec.connect_failures;
        delay = config.fault.connect_fail_delay_s;
      } else {
        ++c.rec.timeouts;
        delay = config.request_rtt_s +
                (config.retry.request_timeout_s > 0.0
                     ? config.retry.request_timeout_s
                     : config.fault.timeout_s);
      }
      c.pending_failure = true;
      c.phase = Phase::kIdle;
      c.phase_until = t + delay;
      return;
    }
    if (outcome.kind == net::FaultKind::kMidDrop) {
      ++c.rec.mid_drops;
      c.attempt_failing = true;
      c.attempt_bits = outcome.drop_fraction * c.need_bits;
    } else {
      c.attempt_bits = c.need_bits;
    }
    c.remaining_bits = c.attempt_bits;
    if (config.request_rtt_s > 0.0) {
      c.phase = Phase::kLatency;
      c.phase_until = t + config.request_rtt_s;
    } else {
      c.phase = Phase::kDownloading;
    }
  };

  auto complete_chunk = [&](ClientState& c) {
    const video::Video& v = *c.spec.video;
    c.rec.download_s = t - c.attempt_start_s;
    c.rec.attempts = c.failures + 1;
    c.buffer.add_chunk(v.chunk_duration_s());
    c.rec.buffer_after_s = c.buffer.level_s();
    c.rec.quality = v.track(c.rec.track).chunk(c.rec.index).quality;
    c.spec.estimator->on_chunk_downloaded(c.attempt_bits, c.rec.download_s,
                                          t);
    c.spec.scheme->on_chunk_downloaded(c.last_ctx, c.rec.track,
                                       c.rec.download_s);
    if (c.spec.size_provider) {
      c.spec.size_provider->on_actual_size(
          v, c.rec.track, c.rec.index,
          v.chunk_size_bits(c.rec.track, c.rec.index));
    }
    if (!c.buffer.playing() &&
        (c.buffer.level_s() >= config.startup_latency_s ||
         c.rec.index + 1 == c.total_chunks)) {
      c.buffer.start_playback();
      c.result.startup_delay_s = t - c.spec.start_offset_s;
    }
    c.result.total_bits += c.rec.size_bits;
    c.result.chunks.push_back(c.rec);
    c.telemetry.on_chunk(c.rec, c.last_ctx, *c.spec.scheme,
                         c.result.total_rebuffer_s, t);
    c.prev_track = static_cast<int>(c.rec.track);
    ++c.next_chunk;
    c.room_checked = false;
    c.fetch_started = false;
    c.failures = 0;
    if (c.next_chunk >= c.total_chunks) {
      c.phase = Phase::kDone;
      c.result.end_time_s = t;
    } else {
      c.phase = Phase::kIdle;
      c.phase_until = t;  // immediately eligible
    }
  };

  while (true) {
    // Activate every client whose idle/latency period has elapsed.
    bool progress = true;
    while (progress) {
      progress = false;
      for (ClientState& c : state) {
        if (c.phase == Phase::kIdle && c.phase_until <= t + kEps) {
          activate(c);
          progress = true;
        } else if (c.phase == Phase::kLatency &&
                   c.phase_until <= t + kEps) {
          c.phase = Phase::kDownloading;
          progress = true;
        }
      }
    }

    // Count active downloads for the fair share.
    std::size_t downloading = 0;
    bool all_done = true;
    for (const ClientState& c : state) {
      downloading += c.phase == Phase::kDownloading ? 1 : 0;
      all_done &= c.phase == Phase::kDone;
    }
    if (all_done) {
      break;
    }

    const double bw = trace.bandwidth_at(t);
    const double share =
        downloading > 0 ? bw / static_cast<double>(downloading) : 0.0;

    // Next event: a wake-up, a download completion, or a trace boundary.
    const double wrapped = std::fmod(t, trace.duration_s());
    const double boundary =
        t + ((std::floor(wrapped / trace.sample_period_s()) + 1.0) *
                 trace.sample_period_s() -
             wrapped);
    double next_t = boundary;
    for (const ClientState& c : state) {
      if (c.phase == Phase::kIdle || c.phase == Phase::kLatency) {
        next_t = std::min(next_t, std::max(c.phase_until, t + kEps));
      } else if (c.phase == Phase::kDownloading && share > 0.0) {
        next_t = std::min(next_t, t + c.remaining_bits / share);
      }
    }
    const double dt = std::max(next_t - t, kEps);

    // Advance: transfer bytes, drain buffers, account stalls.
    for (ClientState& c : state) {
      if (c.phase == Phase::kDone) {
        continue;
      }
      const double stalled = c.buffer.elapse(dt);
      if (c.phase == Phase::kDownloading) {
        c.remaining_bits -= share * dt;
        c.rec.stall_s += stalled;
      }
      c.result.total_rebuffer_s += stalled;
    }
    t += dt;

    // Handle completions (a failing transfer completes into its drop).
    for (ClientState& c : state) {
      if (c.phase == Phase::kDownloading && c.remaining_bits <= 1e-3) {
        if (c.attempt_failing) {
          fail_transfer(c);
        } else {
          complete_chunk(c);
        }
      }
    }
  }

  if (config.trace != nullptr) {
    config.trace->flush();
  }

  MultiClientResult result;
  result.sessions.reserve(state.size());
  for (ClientState& c : state) {
    result.sessions.push_back(std::move(c.result));
  }
  return result;
}

}  // namespace vbr::sim
