// Session-loop telemetry plumbing shared by run_session, run_live_session,
// and run_multi_client.
//
// SessionTelemetry is bound once per session (caching the scheme name, the
// size-knowledge mode, and the metric handles) and then fed one call per
// resolved chunk. When neither a sink nor a registry is attached the whole
// layer collapses to a single `active()` branch per chunk — the null-sink
// zero-cost guarantee the overhead regression test enforces.
#pragma once

#include <cstdint>
#include <string>

#include "abr/scheme.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "sim/session.h"

namespace vbr::sim::detail {

struct SessionTelemetry {
  obs::TraceSink* sink = nullptr;
  obs::MetricsRegistry* reg = nullptr;
  std::uint64_t session_id = 0;
  std::uint64_t seq = 0;
  double prev_rebuffer_s = 0.0;
  std::string scheme_name;
  std::string size_mode;

  // Metric handles, resolved once at bind time.
  obs::Counter* chunks_total = nullptr;
  obs::Counter* chunks_downloaded = nullptr;
  obs::Counter* chunks_skipped = nullptr;
  obs::Counter* chunks_downgraded = nullptr;
  obs::Counter* chunks_abandoned = nullptr;
  obs::Counter* download_attempts = nullptr;
  obs::Counter* connect_failures = nullptr;
  obs::Counter* mid_drops = nullptr;
  obs::Counter* timeouts = nullptr;
  obs::Counter* retry_exhaustions = nullptr;
  obs::Counter* rebuffer_events = nullptr;
  obs::Counter* rebuffer_seconds = nullptr;
  obs::Counter* bits_downloaded = nullptr;
  obs::Counter* bits_wasted = nullptr;
  obs::Histogram* download_seconds = nullptr;
  obs::Histogram* decision_latency = nullptr;

  // Fleet / delivery-path context. Only edge-path sessions register the
  // edge counters (keeps pre-fleet registry fingerprints stable), and only
  // fleet or edge-path sessions stamp the optional edge block on events
  // (keeps pre-fleet JSONL streams byte-identical).
  bool edge_path = false;
  bool fleet = false;
  double fleet_arrival_s = 0.0;
  std::uint64_t fleet_title = 0;
  std::int64_t fleet_arm = -1;  ///< Experiment arm; < 0 = not an A/B run.
  obs::Counter* edge_hits = nullptr;
  obs::Counter* edge_misses = nullptr;
  obs::Counter* edge_hit_bits = nullptr;
  obs::Counter* edge_origin_bits = nullptr;

  [[nodiscard]] bool active() const {
    return sink != nullptr || reg != nullptr;
  }

  void bind(obs::TraceSink* trace_sink, obs::MetricsRegistry* registry,
            std::uint64_t id, const abr::AbrScheme& scheme,
            const video::ChunkSizeProvider* sizes,
            bool edge_path_session = false, bool fleet_session = false,
            double arrival_s = 0.0, std::uint64_t title = 0,
            std::int64_t arm = -1) {
    sink = trace_sink;
    reg = registry;
    session_id = id;
    seq = 0;
    prev_rebuffer_s = 0.0;
    edge_path = edge_path_session;
    fleet = fleet_session;
    fleet_arrival_s = arrival_s;
    fleet_title = title;
    fleet_arm = arm;
    if (!active()) {
      return;
    }
    scheme_name = scheme.name();
    size_mode = sizes != nullptr ? sizes->name() : "exact";
    if (reg != nullptr) {
      chunks_total = &reg->counter("chunks_total");
      chunks_downloaded = &reg->counter("chunks_downloaded");
      chunks_skipped = &reg->counter("chunks_skipped");
      chunks_downgraded = &reg->counter("chunks_downgraded");
      chunks_abandoned = &reg->counter("chunks_abandoned");
      download_attempts = &reg->counter("download_attempts");
      connect_failures = &reg->counter("connect_failures");
      mid_drops = &reg->counter("mid_drops");
      timeouts = &reg->counter("timeouts");
      retry_exhaustions = &reg->counter("retry_exhaustions");
      rebuffer_events = &reg->counter("rebuffer_events");
      rebuffer_seconds = &reg->counter("rebuffer_seconds");
      bits_downloaded = &reg->counter("bits_downloaded");
      bits_wasted = &reg->counter("bits_wasted");
      download_seconds = &reg->histogram("download_seconds",
                                         obs::download_seconds_bounds());
      decision_latency =
          &reg->histogram("decision_latency_seconds",
                          obs::decision_latency_bounds(),
                          /*wall_clock=*/true);
      if (edge_path) {
        edge_hits = &reg->counter("edge_hits");
        edge_misses = &reg->counter("edge_misses");
        edge_hit_bits = &reg->counter("edge_hit_bits");
        edge_origin_bits = &reg->counter("edge_origin_bits");
      }
    }
  }

  /// One call per resolved chunk (delivered or skipped), after the record
  /// is final. `total_rebuffer_s` is the session's running total and
  /// `now_s` the sim clock at resolution time.
  void on_chunk(const ChunkRecord& rec, const abr::StreamContext& ctx,
                const abr::AbrScheme& scheme, double total_rebuffer_s,
                double now_s) {
    if (!active()) {
      return;
    }
    const double rebuffer_delta = total_rebuffer_s - prev_rebuffer_s;
    prev_rebuffer_s = total_rebuffer_s;
    if (reg != nullptr) {
      chunks_total->increment();
      if (rec.skipped) {
        chunks_skipped->increment();
        retry_exhaustions->increment();
      } else {
        chunks_downloaded->increment();
        download_seconds->record(rec.download_s);
      }
      if (rec.downgraded) {
        chunks_downgraded->increment();
      }
      if (rec.abandoned_higher) {
        chunks_abandoned->increment();
      }
      download_attempts->add(static_cast<double>(rec.attempts));
      connect_failures->add(static_cast<double>(rec.connect_failures));
      mid_drops->add(static_cast<double>(rec.mid_drops));
      timeouts->add(static_cast<double>(rec.timeouts));
      if (rec.stall_s > 0.0) {
        rebuffer_events->increment();
      }
      rebuffer_seconds->add(rebuffer_delta);
      bits_downloaded->add(rec.size_bits);
      bits_wasted->add(rec.wasted_bits);
      if (edge_path && !rec.skipped) {
        if (rec.edge_hit) {
          edge_hits->increment();
          edge_hit_bits->add(rec.size_bits);
        } else {
          edge_misses->increment();
          edge_origin_bits->add(rec.size_bits);
        }
      }
    }
    if (sink != nullptr) {
      obs::DecisionEvent ev;
      ev.session_id = session_id;
      ev.seq = seq;
      ev.chunk_index = rec.index;
      ev.decision_now_s = ctx.now_s;
      ev.sim_now_s = now_s;
      ev.scheme = scheme_name;
      ev.size_mode = size_mode;
      ev.track = rec.track;
      ev.in_startup = ctx.in_startup;
      ev.buffer_before_s = ctx.buffer_s;
      ev.buffer_after_s = rec.buffer_after_s;
      ev.est_bandwidth_bps = ctx.est_bandwidth_bps;
      ev.size_bits = rec.size_bits;
      ev.wait_s = rec.wait_s;
      ev.download_s = rec.download_s;
      ev.stall_s = rec.stall_s;
      ev.cum_rebuffer_s = total_rebuffer_s;
      ev.attempts = rec.attempts;
      ev.connect_failures = rec.connect_failures;
      ev.mid_drops = rec.mid_drops;
      ev.timeouts = rec.timeouts;
      ev.backoff_wait_s = rec.backoff_wait_s;
      ev.resumed_bits = rec.resumed_bits;
      ev.wasted_bits = rec.wasted_bits;
      ev.downgraded = rec.downgraded;
      ev.skipped = rec.skipped;
      ev.abandoned_higher = rec.abandoned_higher;
      if (fleet || edge_path) {
        obs::DecisionEvent::EdgeInfo info;
        info.arrival_s = fleet_arrival_s;
        info.title = fleet_title;
        info.edge_hit = rec.edge_hit;
        info.edge_latency_s = rec.edge_latency_s;
        info.tier = rec.delivery_tier;
        info.coalesced = rec.coalesced;
        info.shed = rec.shed;
        ev.edge = info;
      }
      if (fleet_arm >= 0) {
        ev.arm = static_cast<std::uint32_t>(fleet_arm);
      }
      scheme.annotate_event(ev);
      sink->on_decision(ev);
    }
    ++seq;
  }
};

/// scheme.decide(ctx), timed into the decision-latency histogram when a
/// registry is attached; plain dispatch otherwise (no clock read).
[[nodiscard]] inline abr::Decision timed_decide(
    const SessionTelemetry& telemetry, abr::AbrScheme& scheme,
    const abr::StreamContext& ctx) {
  if (telemetry.decision_latency != nullptr) {
    obs::ScopedTimer timer(telemetry.decision_latency);
    return scheme.decide(ctx);
  }
  return scheme.decide(ctx);
}

}  // namespace vbr::sim::detail
