#include "sim/session.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/buffer.h"
#include "sim/telemetry.h"

namespace vbr::sim {

std::vector<metrics::PlayedChunk> SessionResult::to_played_chunks(
    video::QualityMetric metric,
    const std::vector<std::size_t>& chunk_classes) const {
  std::vector<metrics::PlayedChunk> out;
  out.reserve(chunks.size());
  for (const ChunkRecord& r : chunks) {
    if (r.skipped) {
      continue;  // never delivered, never played
    }
    metrics::PlayedChunk p;
    p.index = r.index;
    p.quality = r.quality.get(metric);
    p.size_bits = r.size_bits;
    p.complexity_class = chunk_classes.at(r.index);
    out.push_back(p);
  }
  return out;
}

metrics::QoeSessionView qoe_session_view(const SessionResult& result,
                                         video::QualityMetric metric,
                                         double chunk_duration_s) {
  metrics::QoeSessionView view;
  view.startup_delay_s = result.startup_delay_s;
  view.chunk_duration_s = chunk_duration_s;
  view.quality.reserve(result.chunks.size());
  view.stall_s.reserve(result.chunks.size());
  for (const ChunkRecord& r : result.chunks) {
    if (r.skipped) {
      continue;  // never delivered, never played
    }
    view.quality.push_back(r.quality.get(metric));
    view.stall_s.push_back(r.stall_s);
  }
  return view;
}

metrics::FaultSummary SessionResult::fault_summary() const {
  metrics::FaultSummary s;
  s.chunks = chunks.size();
  for (const ChunkRecord& r : chunks) {
    s.skipped += r.skipped ? 1 : 0;
    s.downgraded += r.downgraded ? 1 : 0;
    s.attempts += r.attempts;
    s.connect_failures += r.connect_failures;
    s.mid_drops += r.mid_drops;
    s.timeouts += r.timeouts;
    s.backoff_wait_s += r.backoff_wait_s;
    s.resumed_mb += r.resumed_bits / 8.0 / 1e6;
    s.wasted_mb += r.wasted_bits / 8.0 / 1e6;
  }
  return s;
}

void validate_session_config(const SessionConfig& config,
                             const char* caller) {
  const std::string who(caller);
  if (config.max_buffer_s <= 0.0) {
    throw std::invalid_argument(who + ": non-positive max buffer");
  }
  if (config.startup_latency_s <= 0.0 ||
      config.startup_latency_s > config.max_buffer_s) {
    throw std::invalid_argument(
        who + ": startup latency must be in (0, max_buffer]");
  }
  if (config.request_rtt_s < 0.0) {
    throw std::invalid_argument(who + ": negative request RTT");
  }
  if (config.abandon_check_fraction <= 0.0 ||
      config.abandon_check_fraction > 1.0) {
    throw std::invalid_argument(
        who + ": abandon check fraction must be in (0, 1]");
  }
  if (config.watch_duration_s < 0.0) {
    throw std::invalid_argument(who + ": negative watch duration");
  }
  if (config.watchdog_max_sim_s < 0.0) {
    throw std::invalid_argument(who + ": negative watchdog sim-time budget");
  }
  config.fault.validate();
  if (config.fault.any()) {
    config.retry.validate();
  }
}

std::size_t effective_chunk_count(const video::Video& video,
                                  double watch_duration_s) {
  if (watch_duration_s <= 0.0) {
    return video.num_chunks();
  }
  // The epsilon keeps an exact multiple of the chunk duration from rounding
  // up to one extra chunk through float residue.
  const std::size_t wanted = static_cast<std::size_t>(
      std::ceil(watch_duration_s / video.chunk_duration_s() - 1e-9));
  return std::min(video.num_chunks(), std::max<std::size_t>(wanted, 1));
}

SessionResult run_session(const video::Video& video, const net::Trace& trace,
                          abr::AbrScheme& scheme,
                          net::BandwidthEstimator& estimator,
                          const SessionConfig& config) {
  validate_session_config(config, "run_session");
  const net::FaultModel fault_model(config.fault);

  // Reuse contract: run_experiment and run_fleet hand the same scheme /
  // estimator / provider instances to many sessions back-to-back. These
  // resets are the only barrier between sessions — any cross-chunk state a
  // scheme keeps (error windows, controllers, search scratch) must either
  // be cleared by reset() or be overwritten before it is read. The
  // back-to-back regression tests pin that a reused instance reproduces a
  // fresh instance byte-for-byte.
  scheme.reset();
  estimator.reset();
  if (config.size_provider != nullptr) {
    config.size_provider->reset();
  }
  detail::SessionTelemetry telemetry;
  telemetry.bind(config.trace, config.metrics, config.session_id, scheme,
                 config.size_provider,
                 /*edge_path_session=*/config.download_hook != nullptr,
                 config.fleet_session, config.fleet_arrival_s,
                 config.fleet_title, config.fleet_arm);

  PlayoutBuffer buffer(config.max_buffer_s);
  SessionResult result;
  // Watch-duration truncation: a viewer who leaves early only ever fetches
  // the chunks covering what they watch.
  const std::size_t total_chunks =
      effective_chunk_count(video, config.watch_duration_s);
  result.chunks.reserve(total_chunks);

  double t = 0.0;
  int prev_track = -1;
  const double chunk_s = video.chunk_duration_s();

  for (std::size_t i = 0; i < total_chunks; ++i) {
    // Watchdog: both budgets are pure functions of simulation state, so an
    // over-budget session aborts at the same chunk on every replay.
    if ((config.watchdog_max_decisions > 0 &&
         static_cast<std::uint64_t>(i) >= config.watchdog_max_decisions) ||
        (config.watchdog_max_sim_s > 0.0 && t >= config.watchdog_max_sim_s)) {
      result.watchdog_aborted = true;
      break;
    }
    abr::StreamContext ctx;
    ctx.video = &video;
    ctx.next_chunk = i;
    ctx.buffer_s = buffer.level_s();
    ctx.est_bandwidth_bps = estimator.estimate_bps(t);
    ctx.prev_track = prev_track;
    ctx.now_s = t;
    ctx.max_buffer_s = config.max_buffer_s;
    ctx.startup_latency_s = config.startup_latency_s;
    ctx.in_startup = !buffer.playing();
    ctx.sizes = config.size_provider;

    const abr::Decision decision = detail::timed_decide(telemetry, scheme,
                                                        ctx);
    if (decision.track >= video.num_tracks()) {
      throw std::logic_error("run_session: scheme chose an invalid track");
    }
    if (decision.wait_s < 0.0) {
      throw std::logic_error("run_session: scheme requested negative wait");
    }

    ChunkRecord rec;
    rec.index = i;
    rec.track = decision.track;

    // Scheme-requested idle (e.g. BOLA above its buffer target).
    if (decision.wait_s > 0.0) {
      result.total_rebuffer_s += buffer.elapse(decision.wait_s);
      t += decision.wait_s;
      rec.wait_s = decision.wait_s;
    }
    // Gate: never start a download the buffer has no room for.
    const double room_wait = buffer.time_until_room_for(chunk_s);
    if (room_wait > 0.0) {
      result.total_rebuffer_s += buffer.elapse(room_wait);
      t += room_wait;
      rec.wait_s += room_wait;
    }

    rec.download_start_s = t;
    rec.size_bits = video.chunk_size_bits(decision.track, i);
    double final_bits = rec.size_bits;  ///< Bits of the delivering attempt.

    // Delivery-path plan. The identity default (no hook) adds 0 latency and
    // divides bits by 1.0, both exact, so the hook-free arithmetic is
    // byte-for-byte what it was before the hook existed. Re-drawn whenever
    // abandonment or downgrade switches the fetch to a different track —
    // a different object as far as the edge cache is concerned.
    FetchPlan plan;
    const auto draw_plan = [&]() {
      if (config.download_hook != nullptr) {
        plan = config.download_hook->on_chunk_request(video, rec.track, i,
                                                      rec.size_bits, t);
        if (!(plan.rate_scale > 0.0) || plan.rate_scale > 1.0 ||
            plan.added_latency_s < 0.0 || plan.tier > 2) {
          throw std::logic_error(
              "run_session: download hook returned an invalid fetch plan");
        }
        rec.edge_hit = plan.edge_hit;
        rec.edge_latency_s = plan.added_latency_s;
        rec.delivery_tier = plan.tier;
        rec.coalesced = plan.coalesced;
        rec.shed = plan.shed;
      }
    };
    draw_plan();
    // First-byte lead time of every attempt that reaches the wire.
    double lead = config.request_rtt_s + plan.added_latency_s;

    if (!fault_model.enabled()) {
      // Fault-free path: identical arithmetic to the pre-fault simulator.
      rec.download_s =
          lead +
          trace.download_duration_s(t + lead, rec.size_bits / plan.rate_scale);

      // Segment abandonment: part-way through a too-slow fetch of a
      // non-bottom track, abort it and refetch the lowest track (dash.js
      // AbandonRequestsRule behaviour).
      if (config.enable_abandonment && decision.track > 0) {
        const double check_at = config.abandon_check_fraction * rec.download_s;
        const double remaining = rec.download_s - check_at;
        if (remaining > buffer.level_s() + chunk_s) {
          // Time + bytes burned on the aborted request.
          rec.wasted_bits =
              trace.average_bandwidth_bps(t, std::max(check_at, 1e-9)) *
              check_at * plan.rate_scale;
          result.total_rebuffer_s += buffer.elapse(check_at);
          t += check_at;
          rec.abandoned_higher = true;
          rec.track = 0;
          rec.size_bits = video.chunk_size_bits(0, i);
          draw_plan();
          lead = config.request_rtt_s + plan.added_latency_s;
          rec.download_s =
              lead + trace.download_duration_s(
                         t + lead, rec.size_bits / plan.rate_scale);
          result.total_bits += rec.wasted_bits;
          final_bits = rec.size_bits;
        }
      }

      rec.stall_s = buffer.elapse(rec.download_s);
      result.total_rebuffer_s += rec.stall_s;
      t += rec.download_s;
    } else {
      // Resilient fetch: retry with backoff until the chunk lands, the
      // track is downgraded, or the attempt budget is exhausted (skip).
      double remaining_bits = rec.size_bits;
      std::size_t failures = 0;
      bool delivered = false;
      while (true) {
        const net::FaultOutcome outcome = fault_model.outcome(i, failures);
        if (outcome.kind == net::FaultKind::kNone) {
          double dl = lead + trace.download_duration_s(
                                 t + lead, remaining_bits / plan.rate_scale);
          // Abandonment applies to clean full-chunk attempts only; resumed
          // or downgraded fetches are already the recovery path.
          if (config.enable_abandonment && rec.track > 0 &&
              !rec.downgraded && remaining_bits == rec.size_bits) {
            const double check_at = config.abandon_check_fraction * dl;
            if (dl - check_at > buffer.level_s() + chunk_s) {
              const double waste =
                  trace.average_bandwidth_bps(t, std::max(check_at, 1e-9)) *
                  check_at * plan.rate_scale;
              rec.wasted_bits += waste;
              result.total_bits += waste;
              result.total_rebuffer_s += buffer.elapse(check_at);
              t += check_at;
              rec.abandoned_higher = true;
              rec.track = 0;
              rec.size_bits = video.chunk_size_bits(0, i);
              remaining_bits = rec.size_bits;
              draw_plan();
              lead = config.request_rtt_s + plan.added_latency_s;
              dl = lead + trace.download_duration_s(
                              t + lead, remaining_bits / plan.rate_scale);
            }
          }
          rec.download_s = dl;
          const double stalled = buffer.elapse(dl);
          rec.stall_s += stalled;
          result.total_rebuffer_s += stalled;
          t += dl;
          final_bits = remaining_bits;
          delivered = true;
          break;
        }

        // Failed attempt: its time drains the buffer in real time; its
        // bytes are wasted unless byte-range resume salvages them.
        switch (outcome.kind) {
          case net::FaultKind::kConnectFail:
            ++rec.connect_failures;
            break;
          case net::FaultKind::kMidDrop:
            ++rec.mid_drops;
            break;
          case net::FaultKind::kTimeout:
            ++rec.timeouts;
            break;
          case net::FaultKind::kNone:
            break;
        }
        const FailedAttempt fa =
            charge_failed_attempt(trace, outcome, config.fault, config.retry,
                                  t, lead, remaining_bits, plan.rate_scale);
        const double stalled = buffer.elapse(fa.elapsed_s);
        rec.stall_s += stalled;
        result.total_rebuffer_s += stalled;
        t += fa.elapsed_s;
        if (fa.delivered_bits > 0.0) {
          if (config.retry.resume_partial) {
            rec.resumed_bits += fa.delivered_bits;
            remaining_bits =
                std::max(remaining_bits - fa.delivered_bits, 1.0);
          } else {
            rec.wasted_bits += fa.delivered_bits;
            result.total_bits += fa.delivered_bits;
          }
        }

        ++failures;
        if (failures >= config.retry.max_attempts) {
          rec.skipped = true;
          break;
        }
        // Repeated failure of a higher track: fall back to the lowest
        // track, discarding any partial higher-track bytes.
        if (config.retry.downgrade_on_failure && rec.track > 0 &&
            failures >= config.retry.downgrade_after) {
          rec.track = 0;
          rec.downgraded = true;
          rec.size_bits = video.chunk_size_bits(0, i);
          if (rec.resumed_bits > 0.0) {
            rec.wasted_bits += rec.resumed_bits;
            result.total_bits += rec.resumed_bits;
            rec.resumed_bits = 0.0;
          }
          remaining_bits = rec.size_bits;
          draw_plan();
          lead = config.request_rtt_s + plan.added_latency_s;
        }
        const double backoff =
            backoff_delay_s(config.retry, fault_model, i, failures - 1);
        if (backoff > 0.0) {
          rec.backoff_wait_s += backoff;
          result.total_rebuffer_s += buffer.elapse(backoff);
          t += backoff;
        }
      }
      rec.attempts = failures + (delivered ? 1 : 0);
      if (rec.skipped) {
        // Bytes already burned stay in wasted_bits; the chunk itself never
        // arrives and contributes no playable content or data usage.
        rec.download_s = 0.0;
        rec.size_bits = 0.0;
      }
    }

    if (!rec.skipped) {
      buffer.add_chunk(chunk_s);
      rec.buffer_after_s = buffer.level_s();
      rec.quality = video.track(rec.track).chunk(i).quality;

      estimator.on_chunk_downloaded(final_bits, rec.download_s, t);
      scheme.on_chunk_downloaded(ctx, rec.track, rec.download_s);
      if (config.download_hook != nullptr) {
        config.download_hook->on_chunk_delivered(video, rec.track, i,
                                                 rec.size_bits, t);
      }
      if (config.size_provider != nullptr) {
        // The wire delivered the true size; correcting providers learn from
        // it even when their estimate was wrong.
        config.size_provider->on_actual_size(
            video, rec.track, i, video.chunk_size_bits(rec.track, i));
      }
    } else {
      rec.buffer_after_s = buffer.level_s();
    }

    // Playback begins once the startup latency worth of video is buffered
    // (or the video has been fully downloaded first).
    if (!buffer.playing() &&
        (buffer.level_s() >= config.startup_latency_s ||
         i + 1 == total_chunks)) {
      buffer.start_playback();
      result.startup_delay_s = t;
    }

    result.total_bits += rec.size_bits;
    result.chunks.push_back(rec);
    telemetry.on_chunk(rec, ctx, scheme, result.total_rebuffer_s, t);
    if (!rec.skipped) {
      prev_track = static_cast<int>(rec.track);
    }
  }
  result.end_time_s = t;
  if (config.trace != nullptr) {
    config.trace->flush();
  }
  return result;
}

}  // namespace vbr::sim
