#include "sim/session.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/stepper.h"

namespace vbr::sim {

std::vector<metrics::PlayedChunk> SessionResult::to_played_chunks(
    video::QualityMetric metric,
    const std::vector<std::size_t>& chunk_classes) const {
  std::vector<metrics::PlayedChunk> out;
  out.reserve(chunks.size());
  for (const ChunkRecord& r : chunks) {
    if (r.skipped) {
      continue;  // never delivered, never played
    }
    metrics::PlayedChunk p;
    p.index = r.index;
    p.quality = r.quality.get(metric);
    p.size_bits = r.size_bits;
    p.complexity_class = chunk_classes.at(r.index);
    out.push_back(p);
  }
  return out;
}

metrics::QoeSessionView qoe_session_view(const SessionResult& result,
                                         video::QualityMetric metric,
                                         double chunk_duration_s) {
  metrics::QoeSessionView view;
  view.startup_delay_s = result.startup_delay_s;
  view.chunk_duration_s = chunk_duration_s;
  view.quality.reserve(result.chunks.size());
  view.stall_s.reserve(result.chunks.size());
  for (const ChunkRecord& r : result.chunks) {
    if (r.skipped) {
      continue;  // never delivered, never played
    }
    view.quality.push_back(r.quality.get(metric));
    view.stall_s.push_back(r.stall_s);
  }
  return view;
}

metrics::FaultSummary SessionResult::fault_summary() const {
  metrics::FaultSummary s;
  s.chunks = chunks.size();
  for (const ChunkRecord& r : chunks) {
    s.skipped += r.skipped ? 1 : 0;
    s.downgraded += r.downgraded ? 1 : 0;
    s.attempts += r.attempts;
    s.connect_failures += r.connect_failures;
    s.mid_drops += r.mid_drops;
    s.timeouts += r.timeouts;
    s.backoff_wait_s += r.backoff_wait_s;
    s.resumed_mb += r.resumed_bits / 8.0 / 1e6;
    s.wasted_mb += r.wasted_bits / 8.0 / 1e6;
  }
  return s;
}

void validate_session_config(const SessionConfig& config,
                             const char* caller) {
  const std::string who(caller);
  if (config.max_buffer_s <= 0.0) {
    throw std::invalid_argument(who + ": non-positive max buffer");
  }
  if (config.startup_latency_s <= 0.0 ||
      config.startup_latency_s > config.max_buffer_s) {
    throw std::invalid_argument(
        who + ": startup latency must be in (0, max_buffer]");
  }
  if (config.request_rtt_s < 0.0) {
    throw std::invalid_argument(who + ": negative request RTT");
  }
  if (config.abandon_check_fraction <= 0.0 ||
      config.abandon_check_fraction > 1.0) {
    throw std::invalid_argument(
        who + ": abandon check fraction must be in (0, 1]");
  }
  if (config.watch_duration_s < 0.0) {
    throw std::invalid_argument(who + ": negative watch duration");
  }
  if (config.watchdog_max_sim_s < 0.0) {
    throw std::invalid_argument(who + ": negative watchdog sim-time budget");
  }
  config.fault.validate();
  if (config.fault.any()) {
    config.retry.validate();
  }
}

std::size_t effective_chunk_count(const video::Video& video,
                                  double watch_duration_s) {
  if (watch_duration_s <= 0.0) {
    return video.num_chunks();
  }
  // The epsilon keeps an exact multiple of the chunk duration from rounding
  // up to one extra chunk through float residue.
  const std::size_t wanted = static_cast<std::size_t>(
      std::ceil(watch_duration_s / video.chunk_duration_s() - 1e-9));
  return std::min(video.num_chunks(), std::max<std::size_t>(wanted, 1));
}

SessionResult run_session(const video::Video& video, const net::Trace& trace,
                          abr::AbrScheme& scheme,
                          net::BandwidthEstimator& estimator,
                          const SessionConfig& config) {
  // The per-chunk loop lives in SessionStepper (sim/stepper.h) so the fleet
  // engine can interleave sessions; stepping to completion here is the same
  // code path, byte for byte.
  SessionStepper stepper(video, trace, scheme, estimator, config);
  while (stepper.step()) {
  }
  return stepper.finish();
}

}  // namespace vbr::sim
