#include "sim/session.h"

#include <stdexcept>

#include "sim/buffer.h"

namespace vbr::sim {

std::vector<metrics::PlayedChunk> SessionResult::to_played_chunks(
    video::QualityMetric metric,
    const std::vector<std::size_t>& chunk_classes) const {
  std::vector<metrics::PlayedChunk> out;
  out.reserve(chunks.size());
  for (const ChunkRecord& r : chunks) {
    metrics::PlayedChunk p;
    p.index = r.index;
    p.quality = r.quality.get(metric);
    p.size_bits = r.size_bits;
    p.complexity_class = chunk_classes.at(r.index);
    out.push_back(p);
  }
  return out;
}

SessionResult run_session(const video::Video& video, const net::Trace& trace,
                          abr::AbrScheme& scheme,
                          net::BandwidthEstimator& estimator,
                          const SessionConfig& config) {
  if (config.startup_latency_s <= 0.0 ||
      config.startup_latency_s > config.max_buffer_s) {
    throw std::invalid_argument(
        "run_session: startup latency must be in (0, max_buffer]");
  }
  if (config.request_rtt_s < 0.0) {
    throw std::invalid_argument("run_session: negative request RTT");
  }

  scheme.reset();
  estimator.reset();

  PlayoutBuffer buffer(config.max_buffer_s);
  SessionResult result;
  result.chunks.reserve(video.num_chunks());

  double t = 0.0;
  int prev_track = -1;
  const double chunk_s = video.chunk_duration_s();

  for (std::size_t i = 0; i < video.num_chunks(); ++i) {
    abr::StreamContext ctx;
    ctx.video = &video;
    ctx.next_chunk = i;
    ctx.buffer_s = buffer.level_s();
    ctx.est_bandwidth_bps = estimator.estimate_bps(t);
    ctx.prev_track = prev_track;
    ctx.now_s = t;
    ctx.max_buffer_s = config.max_buffer_s;
    ctx.startup_latency_s = config.startup_latency_s;
    ctx.in_startup = !buffer.playing();

    const abr::Decision decision = scheme.decide(ctx);
    if (decision.track >= video.num_tracks()) {
      throw std::logic_error("run_session: scheme chose an invalid track");
    }
    if (decision.wait_s < 0.0) {
      throw std::logic_error("run_session: scheme requested negative wait");
    }

    ChunkRecord rec;
    rec.index = i;
    rec.track = decision.track;

    // Scheme-requested idle (e.g. BOLA above its buffer target).
    if (decision.wait_s > 0.0) {
      result.total_rebuffer_s += buffer.elapse(decision.wait_s);
      t += decision.wait_s;
      rec.wait_s = decision.wait_s;
    }
    // Gate: never start a download the buffer has no room for.
    const double room_wait = buffer.time_until_room_for(chunk_s);
    if (room_wait > 0.0) {
      result.total_rebuffer_s += buffer.elapse(room_wait);
      t += room_wait;
      rec.wait_s += room_wait;
    }

    rec.download_start_s = t;
    rec.size_bits = video.chunk_size_bits(decision.track, i);
    rec.download_s =
        config.request_rtt_s +
        trace.download_duration_s(t + config.request_rtt_s, rec.size_bits);

    // Segment abandonment: part-way through a too-slow fetch of a non-bottom
    // track, abort it and refetch the lowest track (dash.js
    // AbandonRequestsRule behaviour).
    if (config.enable_abandonment && decision.track > 0) {
      const double check_at = config.abandon_check_fraction * rec.download_s;
      const double remaining = rec.download_s - check_at;
      if (remaining > buffer.level_s() + chunk_s) {
        // Time + bytes burned on the aborted request.
        rec.wasted_bits =
            trace.average_bandwidth_bps(t, std::max(check_at, 1e-9)) *
            check_at;
        result.total_rebuffer_s += buffer.elapse(check_at);
        t += check_at;
        rec.abandoned_higher = true;
        rec.track = 0;
        rec.size_bits = video.chunk_size_bits(0, i);
        rec.download_s =
            config.request_rtt_s +
            trace.download_duration_s(t + config.request_rtt_s,
                                      rec.size_bits);
        result.total_bits += rec.wasted_bits;
      }
    }

    rec.stall_s = buffer.elapse(rec.download_s);
    result.total_rebuffer_s += rec.stall_s;
    t += rec.download_s;
    buffer.add_chunk(chunk_s);
    rec.buffer_after_s = buffer.level_s();
    rec.quality = video.track(rec.track).chunk(i).quality;

    estimator.on_chunk_downloaded(rec.size_bits, rec.download_s, t);
    scheme.on_chunk_downloaded(ctx, rec.track, rec.download_s);

    // Playback begins once the startup latency worth of video is buffered
    // (or the video has been fully downloaded first).
    if (!buffer.playing() &&
        (buffer.level_s() >= config.startup_latency_s ||
         i + 1 == video.num_chunks())) {
      buffer.start_playback();
      result.startup_delay_s = t;
    }

    result.total_bits += rec.size_bits;
    result.chunks.push_back(rec);
    prev_track = static_cast<int>(rec.track);
  }
  result.end_time_s = t;
  return result;
}

}  // namespace vbr::sim
