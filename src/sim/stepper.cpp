#include "sim/stepper.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace vbr::sim {

namespace {

/// Validation runs before any member that depends on the config is built,
/// preserving run_session's error-before-side-effects ordering and its
/// exact "run_session: ..." messages.
const SessionConfig& checked(const SessionConfig& config) {
  validate_session_config(config, "run_session");
  return config;
}

}  // namespace

SessionStepper::SessionStepper(const video::Video& video,
                               const net::Trace& trace, abr::AbrScheme& scheme,
                               net::BandwidthEstimator& estimator,
                               const SessionConfig& config)
    : video_(&video),
      trace_(&trace),
      scheme_(&scheme),
      estimator_(&estimator),
      config_(checked(config)),
      fault_model_(config_.fault),
      buffer_(config_.max_buffer_s),
      // Watch-duration truncation: a viewer who leaves early only ever
      // fetches the chunks covering what they watch.
      total_chunks_(effective_chunk_count(video, config_.watch_duration_s)),
      chunk_s_(video.chunk_duration_s()) {
  // Reuse contract: run_experiment and run_fleet hand the same scheme /
  // estimator / provider instances to many sessions back-to-back. These
  // resets are the only barrier between sessions — any cross-chunk state a
  // scheme keeps (error windows, controllers, search scratch) must either
  // be cleared by reset() or be overwritten before it is read. The
  // back-to-back regression tests pin that a reused instance reproduces a
  // fresh instance byte-for-byte.
  scheme_->reset();
  estimator_->reset();
  if (config_.size_provider != nullptr) {
    config_.size_provider->reset();
  }
  telemetry_.bind(config_.trace, config_.metrics, config_.session_id,
                  *scheme_, config_.size_provider,
                  /*edge_path_session=*/config_.download_hook != nullptr,
                  config_.fleet_session, config_.fleet_arrival_s,
                  config_.fleet_title, config_.fleet_arm);
  result_.chunks.reserve(total_chunks_);
  done_ = total_chunks_ == 0;
}

bool SessionStepper::step() {
  if (done_) {
    return false;
  }
  const std::size_t i = i_;
  double& t = t_;
  const double chunk_s = chunk_s_;
  const video::Video& video = *video_;
  const net::Trace& trace = *trace_;
  abr::AbrScheme& scheme = *scheme_;
  net::BandwidthEstimator& estimator = *estimator_;
  const SessionConfig& config = config_;
  const net::FaultModel& fault_model = fault_model_;
  detail::SessionTelemetry& telemetry = telemetry_;
  PlayoutBuffer& buffer = buffer_;
  SessionResult& result = result_;

  // Watchdog: both budgets are pure functions of simulation state, so an
  // over-budget session aborts at the same chunk on every replay.
  if ((config.watchdog_max_decisions > 0 &&
       static_cast<std::uint64_t>(i) >= config.watchdog_max_decisions) ||
      (config.watchdog_max_sim_s > 0.0 && t >= config.watchdog_max_sim_s)) {
    result.watchdog_aborted = true;
    done_ = true;
    return false;
  }
  abr::StreamContext ctx;
  ctx.video = &video;
  ctx.next_chunk = i;
  ctx.buffer_s = buffer.level_s();
  ctx.est_bandwidth_bps = estimator.estimate_bps(t);
  ctx.prev_track = prev_track_;
  ctx.now_s = t;
  ctx.max_buffer_s = config.max_buffer_s;
  ctx.startup_latency_s = config.startup_latency_s;
  ctx.in_startup = !buffer.playing();
  ctx.sizes = config.size_provider;

  const abr::Decision decision = detail::timed_decide(telemetry, scheme, ctx);
  if (decision.track >= video.num_tracks()) {
    throw std::logic_error("run_session: scheme chose an invalid track");
  }
  if (decision.wait_s < 0.0) {
    throw std::logic_error("run_session: scheme requested negative wait");
  }

  ChunkRecord rec;
  rec.index = i;
  rec.track = decision.track;

  // Scheme-requested idle (e.g. BOLA above its buffer target).
  if (decision.wait_s > 0.0) {
    result.total_rebuffer_s += buffer.elapse(decision.wait_s);
    t += decision.wait_s;
    rec.wait_s = decision.wait_s;
  }
  // Gate: never start a download the buffer has no room for.
  const double room_wait = buffer.time_until_room_for(chunk_s);
  if (room_wait > 0.0) {
    result.total_rebuffer_s += buffer.elapse(room_wait);
    t += room_wait;
    rec.wait_s += room_wait;
  }

  rec.download_start_s = t;
  rec.size_bits = video.chunk_size_bits(decision.track, i);
  double final_bits = rec.size_bits;  ///< Bits of the delivering attempt.

  // Delivery-path plan. The identity default (no hook) adds 0 latency and
  // divides bits by 1.0, both exact, so the hook-free arithmetic is
  // byte-for-byte what it was before the hook existed. Re-drawn whenever
  // abandonment or downgrade switches the fetch to a different track —
  // a different object as far as the edge cache is concerned.
  FetchPlan plan;
  const auto draw_plan = [&]() {
    if (config.download_hook != nullptr) {
      plan = config.download_hook->on_chunk_request(video, rec.track, i,
                                                    rec.size_bits, t);
      if (!(plan.rate_scale > 0.0) || plan.rate_scale > 1.0 ||
          plan.added_latency_s < 0.0 || plan.tier > 2) {
        throw std::logic_error(
            "run_session: download hook returned an invalid fetch plan");
      }
      rec.edge_hit = plan.edge_hit;
      rec.edge_latency_s = plan.added_latency_s;
      rec.delivery_tier = plan.tier;
      rec.coalesced = plan.coalesced;
      rec.shed = plan.shed;
    }
  };
  draw_plan();
  // First-byte lead time of every attempt that reaches the wire.
  double lead = config.request_rtt_s + plan.added_latency_s;

  if (!fault_model.enabled()) {
    // Fault-free path: identical arithmetic to the pre-fault simulator.
    rec.download_s =
        lead +
        trace.download_duration_s(t + lead, rec.size_bits / plan.rate_scale);

    // Segment abandonment: part-way through a too-slow fetch of a
    // non-bottom track, abort it and refetch the lowest track (dash.js
    // AbandonRequestsRule behaviour).
    if (config.enable_abandonment && decision.track > 0) {
      const double check_at = config.abandon_check_fraction * rec.download_s;
      const double remaining = rec.download_s - check_at;
      if (remaining > buffer.level_s() + chunk_s) {
        // Time + bytes burned on the aborted request.
        rec.wasted_bits =
            trace.average_bandwidth_bps(t, std::max(check_at, 1e-9)) *
            check_at * plan.rate_scale;
        result.total_rebuffer_s += buffer.elapse(check_at);
        t += check_at;
        rec.abandoned_higher = true;
        rec.track = 0;
        rec.size_bits = video.chunk_size_bits(0, i);
        draw_plan();
        lead = config.request_rtt_s + plan.added_latency_s;
        rec.download_s =
            lead + trace.download_duration_s(t + lead,
                                             rec.size_bits / plan.rate_scale);
        result.total_bits += rec.wasted_bits;
        final_bits = rec.size_bits;
      }
    }

    rec.stall_s = buffer.elapse(rec.download_s);
    result.total_rebuffer_s += rec.stall_s;
    t += rec.download_s;
  } else {
    // Resilient fetch: retry with backoff until the chunk lands, the
    // track is downgraded, or the attempt budget is exhausted (skip).
    double remaining_bits = rec.size_bits;
    std::size_t failures = 0;
    bool delivered = false;
    while (true) {
      const net::FaultOutcome outcome = fault_model.outcome(i, failures);
      if (outcome.kind == net::FaultKind::kNone) {
        double dl = lead + trace.download_duration_s(
                               t + lead, remaining_bits / plan.rate_scale);
        // Abandonment applies to clean full-chunk attempts only; resumed
        // or downgraded fetches are already the recovery path.
        if (config.enable_abandonment && rec.track > 0 && !rec.downgraded &&
            remaining_bits == rec.size_bits) {
          const double check_at = config.abandon_check_fraction * dl;
          if (dl - check_at > buffer.level_s() + chunk_s) {
            const double waste =
                trace.average_bandwidth_bps(t, std::max(check_at, 1e-9)) *
                check_at * plan.rate_scale;
            rec.wasted_bits += waste;
            result.total_bits += waste;
            result.total_rebuffer_s += buffer.elapse(check_at);
            t += check_at;
            rec.abandoned_higher = true;
            rec.track = 0;
            rec.size_bits = video.chunk_size_bits(0, i);
            remaining_bits = rec.size_bits;
            draw_plan();
            lead = config.request_rtt_s + plan.added_latency_s;
            dl = lead + trace.download_duration_s(
                            t + lead, remaining_bits / plan.rate_scale);
          }
        }
        rec.download_s = dl;
        const double stalled = buffer.elapse(dl);
        rec.stall_s += stalled;
        result.total_rebuffer_s += stalled;
        t += dl;
        final_bits = remaining_bits;
        delivered = true;
        break;
      }

      // Failed attempt: its time drains the buffer in real time; its
      // bytes are wasted unless byte-range resume salvages them.
      switch (outcome.kind) {
        case net::FaultKind::kConnectFail:
          ++rec.connect_failures;
          break;
        case net::FaultKind::kMidDrop:
          ++rec.mid_drops;
          break;
        case net::FaultKind::kTimeout:
          ++rec.timeouts;
          break;
        case net::FaultKind::kNone:
          break;
      }
      const FailedAttempt fa =
          charge_failed_attempt(trace, outcome, config.fault, config.retry, t,
                                lead, remaining_bits, plan.rate_scale);
      const double stalled = buffer.elapse(fa.elapsed_s);
      rec.stall_s += stalled;
      result.total_rebuffer_s += stalled;
      t += fa.elapsed_s;
      if (fa.delivered_bits > 0.0) {
        if (config.retry.resume_partial) {
          rec.resumed_bits += fa.delivered_bits;
          remaining_bits = std::max(remaining_bits - fa.delivered_bits, 1.0);
        } else {
          rec.wasted_bits += fa.delivered_bits;
          result.total_bits += fa.delivered_bits;
        }
      }

      ++failures;
      if (failures >= config.retry.max_attempts) {
        rec.skipped = true;
        break;
      }
      // Repeated failure of a higher track: fall back to the lowest
      // track, discarding any partial higher-track bytes.
      if (config.retry.downgrade_on_failure && rec.track > 0 &&
          failures >= config.retry.downgrade_after) {
        rec.track = 0;
        rec.downgraded = true;
        rec.size_bits = video.chunk_size_bits(0, i);
        if (rec.resumed_bits > 0.0) {
          rec.wasted_bits += rec.resumed_bits;
          result.total_bits += rec.resumed_bits;
          rec.resumed_bits = 0.0;
        }
        remaining_bits = rec.size_bits;
        draw_plan();
        lead = config.request_rtt_s + plan.added_latency_s;
      }
      const double backoff =
          backoff_delay_s(config.retry, fault_model, i, failures - 1);
      if (backoff > 0.0) {
        rec.backoff_wait_s += backoff;
        result.total_rebuffer_s += buffer.elapse(backoff);
        t += backoff;
      }
    }
    rec.attempts = failures + (delivered ? 1 : 0);
    if (rec.skipped) {
      // Bytes already burned stay in wasted_bits; the chunk itself never
      // arrives and contributes no playable content or data usage.
      rec.download_s = 0.0;
      rec.size_bits = 0.0;
    }
  }

  if (!rec.skipped) {
    buffer.add_chunk(chunk_s);
    rec.buffer_after_s = buffer.level_s();
    rec.quality = video.track(rec.track).chunk(i).quality;

    estimator.on_chunk_downloaded(final_bits, rec.download_s, t);
    scheme.on_chunk_downloaded(ctx, rec.track, rec.download_s);
    if (config.download_hook != nullptr) {
      config.download_hook->on_chunk_delivered(video, rec.track, i,
                                               rec.size_bits, t);
    }
    if (config.size_provider != nullptr) {
      // The wire delivered the true size; correcting providers learn from
      // it even when their estimate was wrong.
      config.size_provider->on_actual_size(
          video, rec.track, i, video.chunk_size_bits(rec.track, i));
    }
  } else {
    rec.buffer_after_s = buffer.level_s();
  }

  // Playback begins once the startup latency worth of video is buffered
  // (or the video has been fully downloaded first).
  if (!buffer.playing() && (buffer.level_s() >= config.startup_latency_s ||
                            i + 1 == total_chunks_)) {
    buffer.start_playback();
    result.startup_delay_s = t;
  }

  result.total_bits += rec.size_bits;
  result.chunks.push_back(rec);
  telemetry.on_chunk(rec, ctx, scheme, result.total_rebuffer_s, t);
  if (!rec.skipped) {
    prev_track_ = static_cast<int>(rec.track);
  }

  ++i_;
  if (i_ >= total_chunks_) {
    done_ = true;
  }
  return !done_;
}

SessionResult SessionStepper::finish() {
  result_.end_time_s = t_;
  if (config_.trace != nullptr) {
    config_.trace->flush();
  }
  done_ = true;
  return std::move(result_);
}

}  // namespace vbr::sim
