// Multi-client shared-bottleneck simulation.
//
// Several players stream concurrently through one bottleneck whose capacity
// is the replayed trace; while k downloads are in flight each receives a
// 1/k share (the TCP fair-share approximation used throughout the ABR
// fairness literature, e.g. FESTIVE). Lets the library answer questions the
// single-session harness cannot: do CAVA clients share fairly with each
// other and with other schemes?
//
// Semantics per client are identical to run_session (same startup, buffer
// cap, wait handling); with a single client the results match run_session
// exactly (unit-tested).
#pragma once

#include <memory>
#include <vector>

#include "abr/scheme.h"
#include "net/bandwidth_estimator.h"
#include "net/trace.h"
#include "sim/session.h"

namespace vbr::sim {

/// One participant in a shared-bottleneck run. The caller owns the video;
/// scheme and estimator are owned by the spec.
struct ClientSpec {
  const video::Video* video = nullptr;
  std::unique_ptr<abr::AbrScheme> scheme;
  std::unique_ptr<net::BandwidthEstimator> estimator;
  double start_offset_s = 0.0;  ///< Join time relative to the run start.
  /// Per-client size knowledge (null = exact manifest sizes). Owned by the
  /// spec: correcting providers carry per-client learned state, and sharing
  /// one across clients would cross-contaminate their beliefs — which is
  /// why run_multi_client rejects SessionConfig::size_provider.
  std::unique_ptr<video::ChunkSizeProvider> size_provider;
  /// Per-client watch duration (seconds of content; see
  /// SessionConfig::watch_duration_s). 0 falls back to the shared config
  /// value; both 0 = watch to the end. Fleet-style populations mix viewers
  /// who leave at different times, which changes the bottleneck share for
  /// everyone still watching.
  double watch_duration_s = 0.0;
};

struct MultiClientResult {
  std::vector<SessionResult> sessions;  ///< One per client, same order.

  /// Jain fairness index of a per-client statistic in [1/n, 1]. Thin
  /// wrapper over stats::jain_index (src/metrics/stats.h), kept for source
  /// compatibility.
  [[nodiscard]] static double jain_index(const std::vector<double>& xs);

  /// Per-client mean delivered quality under `metric`.
  [[nodiscard]] std::vector<double> mean_qualities(
      video::QualityMetric metric) const;

  /// Per-client total downloaded bits.
  [[nodiscard]] std::vector<double> total_bits() const;
};

/// Runs every client to completion over the shared trace.
/// Throws std::invalid_argument on empty/malformed specs.
[[nodiscard]] MultiClientResult run_multi_client(
    const net::Trace& trace, std::vector<ClientSpec> clients,
    const SessionConfig& config = {});

}  // namespace vbr::sim
