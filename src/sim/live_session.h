// Live-streaming session simulator (the paper's stated future work,
// Section 8: "extending CAVA and its concepts to ABR streaming of live VBR
// encoded videos").
//
// Differences from the VoD session:
//   - chunk i only exists once the encoder has produced it, at wall-clock
//     time (i+1) * chunk_duration + encoder_delay; the player idles at the
//     live edge until the next chunk is announced;
//   - schemes see a fenced manifest (StreamContext::visible_chunks), so
//     look-ahead windows (CAVA's W/W', MPC's and PANDA's horizons) truncate
//     at the live edge — there is no future to preview;
//   - the buffer is naturally bounded by the end-to-end latency budget: a
//     player `join_latency_s` behind the live edge can never hold more than
//     that much content.
//
// The result adds latency accounting on top of the usual session metrics.
#pragma once

#include "sim/session.h"

namespace vbr::sim {

struct LiveSessionConfig {
  /// How far behind the live edge the player joins (its latency budget).
  double join_latency_s = 30.0;
  /// Encoder/packager delay: chunk i is announced at
  /// (i+1) * chunk_duration + encoder_delay_s.
  double encoder_delay_s = 2.0;
  double startup_latency_s = 10.0;
  double max_buffer_s = 100.0;  ///< Player cap (latency budget binds first).

  /// Network fault injection + resilience, same semantics as the VoD
  /// session (all probabilities 0 = off, strict no-op). A skipped chunk is
  /// jumped over: the playhead stays on the live timeline.
  net::FaultConfig fault;
  RetryPolicy retry;

  /// Scheme-visible chunk-size knowledge (see SessionConfig::size_provider;
  /// same null-means-exact semantics). Degraded metadata is *more* likely
  /// live: segment size tables are only published as segments are encoded.
  video::ChunkSizeProvider* size_provider = nullptr;

  /// Telemetry, same semantics as SessionConfig (both null = off and
  /// zero-cost; not owned; not thread-safe).
  obs::TraceSink* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  std::uint64_t session_id = 0;
};

struct LiveSessionResult {
  SessionResult session;       ///< Chunk records, rebuffering, bits.
  double mean_latency_s = 0.0; ///< Mean playhead lag behind the live edge.
  double max_latency_s = 0.0;
  double edge_wait_s = 0.0;    ///< Total time idling for chunk production.
};

/// Runs one live session. The scheme and estimator are reset() first.
/// Throws std::invalid_argument on inconsistent configuration.
[[nodiscard]] LiveSessionResult run_live_session(
    const video::Video& video, const net::Trace& trace,
    abr::AbrScheme& scheme, net::BandwidthEstimator& estimator,
    const LiveSessionConfig& config = {});

}  // namespace vbr::sim
