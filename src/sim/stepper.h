// Resumable per-chunk session stepper.
//
// Extracted from run_session() so the shared-virtual-time fleet engine
// (src/fleet/engine.h) can interleave many sessions on one timeline: each
// step() resolves exactly one chunk decision (scheme decide, waits, fetch /
// retry ladder, delivery bookkeeping, telemetry) and leaves the session
// paused right before the next decision. run_session() is a thin wrapper
// that steps to completion, so the stepped and whole-session paths run the
// same code and stay byte-identical by construction.
#pragma once

#include <cstddef>

#include "abr/scheme.h"
#include "net/bandwidth_estimator.h"
#include "net/fault_model.h"
#include "net/trace.h"
#include "sim/buffer.h"
#include "sim/session.h"
#include "sim/telemetry.h"
#include "video/video.h"

namespace vbr::sim {

class SessionStepper {
 public:
  /// Validates `config` (same "run_session: ..." messages as the wrapper)
  /// and binds the session. The scheme / estimator / size provider are
  /// reset() here, exactly as run_session did, so pooled instances stay
  /// reusable under the documented reuse contract. All referenced objects
  /// (video, trace, scheme, estimator, and everything `config` points at)
  /// must outlive the stepper; the config itself is copied.
  SessionStepper(const video::Video& video, const net::Trace& trace,
                 abr::AbrScheme& scheme, net::BandwidthEstimator& estimator,
                 const SessionConfig& config);

  /// Resolves the next chunk decision (or the watchdog abort). Returns
  /// true while the session still has work left after this call; false
  /// once the session is complete and finish() may be called. Calling
  /// step() on a completed session is a no-op returning false.
  bool step();

  /// True once the session has no more chunks to fetch.
  [[nodiscard]] bool done() const { return done_; }

  /// Session-local clock: seconds since this session started.
  [[nodiscard]] double now_s() const { return t_; }

  /// Index of the next chunk decision (== chunks resolved so far).
  [[nodiscard]] std::size_t next_chunk() const { return i_; }

  [[nodiscard]] std::size_t total_chunks() const { return total_chunks_; }

  /// Finalizes (end-of-session clock + trace flush) and moves the result
  /// out. Call exactly once, after step() has returned false.
  [[nodiscard]] SessionResult finish();

 private:
  const video::Video* video_;
  const net::Trace* trace_;
  abr::AbrScheme* scheme_;
  net::BandwidthEstimator* estimator_;
  SessionConfig config_;  ///< Copied: fleet callers build it per session.
  net::FaultModel fault_model_;
  detail::SessionTelemetry telemetry_;
  PlayoutBuffer buffer_;
  SessionResult result_;
  std::size_t total_chunks_;
  double chunk_s_;
  double t_ = 0.0;
  int prev_track_ = -1;
  std::size_t i_ = 0;
  bool done_ = false;
};

}  // namespace vbr::sim
