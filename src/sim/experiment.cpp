#include "sim/experiment.h"

#include <atomic>
#include <stdexcept>
#include <thread>

#include "core/complexity_classifier.h"
#include "metrics/stats.h"

namespace vbr::sim {

EstimatorFactory default_estimator_factory() {
  return [](const net::Trace&) { return net::make_default_estimator(); };
}

namespace {

template <typename Getter>
std::vector<double> collect(const std::vector<metrics::QoeSummary>& xs,
                            Getter get) {
  std::vector<double> v;
  v.reserve(xs.size());
  for (const metrics::QoeSummary& s : xs) {
    v.push_back(get(s));
  }
  return v;
}

template <typename Getter>
std::vector<double> pool(const std::vector<metrics::QoeSummary>& xs,
                         Getter get) {
  std::vector<double> v;
  for (const metrics::QoeSummary& s : xs) {
    const std::vector<double>& part = get(s);
    v.insert(v.end(), part.begin(), part.end());
  }
  return v;
}

}  // namespace

std::vector<double> ExperimentResult::rebuffer_values() const {
  return collect(per_trace,
                 [](const metrics::QoeSummary& s) { return s.rebuffer_s; });
}

std::vector<double> ExperimentResult::low_quality_pct_values() const {
  return collect(per_trace, [](const metrics::QoeSummary& s) {
    return s.low_quality_pct;
  });
}

std::vector<double> ExperimentResult::quality_change_values() const {
  return collect(per_trace, [](const metrics::QoeSummary& s) {
    return s.avg_quality_change;
  });
}

std::vector<double> ExperimentResult::data_usage_values() const {
  return collect(per_trace, [](const metrics::QoeSummary& s) {
    return s.data_usage_mb;
  });
}

std::vector<double> ExperimentResult::pooled_q4_qualities() const {
  return pool(per_trace, [](const metrics::QoeSummary& s)
                  -> const std::vector<double>& { return s.q4_qualities; });
}

std::vector<double> ExperimentResult::pooled_q13_qualities() const {
  return pool(per_trace, [](const metrics::QoeSummary& s)
                  -> const std::vector<double>& { return s.q13_qualities; });
}

std::vector<double> ExperimentResult::pooled_all_qualities() const {
  return pool(per_trace, [](const metrics::QoeSummary& s)
                  -> const std::vector<double>& { return s.all_qualities; });
}

ExperimentResult run_experiment(const ExperimentSpec& spec) {
  if (spec.video == nullptr || spec.traces.empty() || !spec.make_scheme) {
    throw std::invalid_argument("run_experiment: malformed spec");
  }
  if (spec.make_size_provider && spec.session.size_provider != nullptr) {
    throw std::invalid_argument(
        "run_experiment: set make_size_provider or session.size_provider, "
        "not both");
  }
  if (spec.threads > kMaxThreads) {
    throw std::invalid_argument(
        "run_experiment: threads exceeds kMaxThreads (" +
        std::to_string(kMaxThreads) + ")");
  }
  if (spec.session.trace != nullptr || spec.session.metrics != nullptr) {
    // A sink on the per-session config would be shared by every worker
    // thread at once; the spec-level sinks exist precisely to avoid that.
    throw std::invalid_argument(
        "run_experiment: wire telemetry through ExperimentSpec::trace/"
        "metrics, not SessionConfig — session sinks are not thread-safe");
  }
  if (spec.session.download_hook != nullptr) {
    // Same reasoning as the sinks: one stateful hook shared across worker
    // threads would make cache state depend on scheduling. run_fleet owns
    // the threading story for delivery-path models (per-title shards).
    throw std::invalid_argument(
        "run_experiment: download hooks are not supported here — "
        "delivery-path models belong to fleet::run_fleet, which shards "
        "them deterministically");
  }
  const bool telemetry_on =
      spec.trace != nullptr || spec.metrics != nullptr;
  const EstimatorFactory make_estimator =
      spec.make_estimator ? spec.make_estimator : default_estimator_factory();

  // Complexity classes of this video (for the Q4-centric QoE metrics).
  const core::ComplexityClassifier classifier(*spec.video);
  const std::vector<std::size_t>& classes = classifier.classes();
  metrics::QoeConfig qoe = spec.qoe;
  qoe.top_class = classifier.num_classes() - 1;

  ExperimentResult result;
  result.per_trace.resize(spec.traces.size());
  result.per_trace_faults.resize(spec.traces.size());
  result.scheme_name = spec.make_scheme()->name();

  // Per-trace telemetry slots: each worker writes only the slot of the
  // trace it owns (lock-free), and the fold below reads them in index
  // order — the merged stream is invariant under the worker schedule.
  std::vector<std::unique_ptr<obs::MemoryTraceSink>> trace_sinks;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> registries;
  if (telemetry_on) {
    trace_sinks.resize(spec.traces.size());
    registries.resize(spec.traces.size());
  }

  const unsigned threads =
      spec.threads > 0
          ? spec.threads
          : std::max(1u, std::thread::hardware_concurrency());
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  std::atomic<bool> failed{false};
  for (unsigned w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      try {
        // Worker-owned reusable actors: run_session resets scheme and
        // provider state before each session, so one instance per worker
        // serves every trace it claims with no cross-trace leakage (the
        // back-to-back regression tests pin this) and no per-trace
        // allocation bill. Providers stay worker-private so learned
        // correction state never crosses concurrently-running sessions.
        const std::unique_ptr<abr::AbrScheme> scheme = spec.make_scheme();
        const std::unique_ptr<video::ChunkSizeProvider> sizes =
            spec.make_size_provider ? spec.make_size_provider() : nullptr;
        while (true) {
          const std::size_t i = next.fetch_add(1);
          if (i >= spec.traces.size() || failed.load()) {
            return;
          }
          const std::unique_ptr<net::BandwidthEstimator> estimator =
              make_estimator(spec.traces[i]);
          SessionConfig session_config = spec.session;
          if (sizes) {
            session_config.size_provider = sizes.get();
          }
          if (telemetry_on) {
            session_config.session_id = i;
            if (spec.trace != nullptr) {
              trace_sinks[i] = std::make_unique<obs::MemoryTraceSink>();
              session_config.trace = trace_sinks[i].get();
            }
            if (spec.metrics != nullptr) {
              registries[i] = std::make_unique<obs::MetricsRegistry>();
              session_config.metrics = registries[i].get();
            }
          }
          const SessionResult session =
              run_session(*spec.video, spec.traces[i], *scheme, *estimator,
                          session_config);
          result.per_trace_faults[i] = session.fault_summary();
          const std::vector<metrics::PlayedChunk> played =
              session.to_played_chunks(spec.metric, classes);
          if (played.empty()) {
            // Every chunk was skipped (total outage + retry exhaustion):
            // nothing watchable, but the session still has timing metrics.
            metrics::QoeSummary s;
            s.rebuffer_s = session.total_rebuffer_s;
            s.startup_delay_s = session.startup_delay_s;
            s.low_quality_pct = 100.0;
            result.per_trace[i] = std::move(s);
          } else {
            result.per_trace[i] =
                metrics::compute_qoe(played, session.total_rebuffer_s,
                                     session.startup_delay_s, qoe);
          }
        }
      } catch (...) {
        failed.store(true);
        throw;  // surfaces via std::terminate: experiment bugs are fatal
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }

  // Stable-order telemetry fold: trace index, never worker id. Events are
  // re-sequenced globally so the merged stream has one monotone `seq`.
  if (spec.trace != nullptr) {
    std::uint64_t global_seq = 0;
    for (const std::unique_ptr<obs::MemoryTraceSink>& sink : trace_sinks) {
      if (!sink) {
        continue;
      }
      for (const obs::DecisionEvent& ev : sink->events()) {
        obs::DecisionEvent merged = ev;
        merged.seq = global_seq++;
        spec.trace->on_decision(merged);
      }
    }
    spec.trace->flush();
  }
  if (spec.metrics != nullptr) {
    for (const std::unique_ptr<obs::MetricsRegistry>& reg : registries) {
      if (reg) {
        spec.metrics->merge(*reg);
      }
    }
  }

  const auto& pt = result.per_trace;
  result.mean_q4_quality = stats::mean(collect(
      pt, [](const metrics::QoeSummary& s) { return s.q4_quality_mean; }));
  result.mean_q13_quality = stats::mean(collect(
      pt, [](const metrics::QoeSummary& s) { return s.q13_quality_mean; }));
  result.mean_all_quality = stats::mean(collect(
      pt, [](const metrics::QoeSummary& s) { return s.all_quality_mean; }));
  result.mean_low_quality_pct = stats::mean(result.low_quality_pct_values());
  result.mean_rebuffer_s = stats::mean(result.rebuffer_values());
  result.mean_quality_change = stats::mean(result.quality_change_values());
  result.mean_data_usage_mb = stats::mean(result.data_usage_values());
  {
    std::vector<double> attempts;
    std::vector<double> skipped;
    attempts.reserve(result.per_trace_faults.size());
    skipped.reserve(result.per_trace_faults.size());
    for (const metrics::FaultSummary& f : result.per_trace_faults) {
      attempts.push_back(f.attempts_per_chunk());
      skipped.push_back(f.skipped_pct());
    }
    result.mean_attempts_per_chunk = stats::mean(attempts);
    result.mean_skipped_pct = stats::mean(skipped);
  }
  return result;
}

}  // namespace vbr::sim
