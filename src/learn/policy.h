// Deterministic serialized policy format for the learned ABR schemes.
//
// Same discipline as the fleet checkpoint (`VBRFLEETCKPT`): versioned text
// magic, canonical number formatting (std::to_chars shortest round-trip, so
// serialize(parse(s)) == s byte-for-byte), an FNV-1a trailer over everything
// before it, field-named load errors, and temp+rename atomic writes. A
// policy file is the *only* artifact that crosses the train/serve boundary,
// so the format carries the full FeatureConfig: a policy can never be served
// against a quantization grid it was not trained with.
//
//   VBRPOLICY 1
//   meta kind=tabular id=<token> version=<u32> seed=<u64>
//   features num_tracks=... lookahead=... (every FeatureConfig field)
//   --- tabular payload ---
//   tabular states=<N> coarse=<M> default=<track>
//   table <start> v v v ...        (rows of <= 64 entries; 'x' = unseen)
//   coarse <start> v v v ...
//   --- mlp payload ---
//   mlp in=<I> hidden=<H> out=<O>
//   w1 <row> <I doubles> | b1 <H doubles> | w2 <row> <H doubles> | b2 <O...>
//   --- trailer ---
//   end <8 lowercase hex FNV-1a 32 over all preceding bytes>
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "learn/features.h"

namespace vbr::learn {

/// Raised on any malformed policy file; the message names the field, e.g.
/// "PolicyFile.checksum: mismatch (expected deadbeef, found 00000000)".
class PolicyError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class PolicyKind { kTabular, kMlp };

[[nodiscard]] std::string to_string(PolicyKind k);

/// Sentinel for "no training data reached this state" in tabular tables.
inline constexpr std::uint16_t kUnseen = 0xFFFF;

/// Quantized-state lookup policy: exact state -> coarse (buffer, bandwidth)
/// fallback -> global default, first hit wins.
struct TabularPolicy {
  std::vector<std::uint16_t> table;   ///< cfg.num_states() entries.
  std::vector<std::uint16_t> coarse;  ///< cfg.num_coarse_states() entries.
  std::uint16_t default_track = 0;
};

/// Fixed-topology two-layer perceptron: tanh hidden layer, linear output,
/// argmax over tracks (ties break to the lowest index). Row-major weights.
struct MlpPolicy {
  std::size_t in = 0;
  std::size_t hidden = 0;
  std::size_t out = 0;
  std::vector<double> w1;  ///< hidden x in.
  std::vector<double> b1;  ///< hidden.
  std::vector<double> w2;  ///< out x hidden.
  std::vector<double> b2;  ///< out.
};

/// A complete serializable policy: metadata + feature grid + one backend.
struct Policy {
  PolicyKind kind = PolicyKind::kTabular;
  std::string id = "policy";    ///< Token [A-Za-z0-9._-]+, stamped into
                                ///< DecisionEvents by LearnedScheme.
  std::uint32_t version = 1;    ///< Caller-owned model version.
  std::uint64_t seed = 0;       ///< Training seed (provenance).
  FeatureConfig features;
  TabularPolicy tabular;        ///< Populated when kind == kTabular.
  MlpPolicy mlp;                ///< Populated when kind == kMlp.

  /// Structural validation with field-named errors (sizes consistent with
  /// `features`, track labels in range, weights finite). Load always
  /// validates; trainers validate before save.
  void validate() const;
};

/// Inference shared verbatim by LearnedScheme::decide and the trainer's
/// held-out agreement evaluation — the single definition of "what the
/// policy answers" for a (state, feature-vector) pair. `scratch` is the
/// caller-owned hidden-activation buffer (unused for tabular).
[[nodiscard]] std::size_t policy_select(const Policy& policy,
                                        std::uint32_t state,
                                        const std::vector<double>& features,
                                        std::vector<double>& scratch);

/// Canonical serialization; parse_policy(serialize_policy(p)) is identity
/// and serialize_policy(parse_policy(s)) == s for any valid file.
[[nodiscard]] std::string serialize_policy(const Policy& policy);

/// Parses and fully validates; throws PolicyError naming the field.
[[nodiscard]] Policy parse_policy(const std::string& text);

/// Atomic save: serialize to `path + ".tmp"`, flush, rename over `path`.
/// Throws PolicyError on I/O failure.
void save_policy_file(const std::string& path, const Policy& policy);

/// Loads and validates; throws PolicyError (missing file, truncation, bad
/// checksum, version/field errors, non-finite weights).
[[nodiscard]] Policy load_policy_file(const std::string& path);

}  // namespace vbr::learn
