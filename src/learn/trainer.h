// Offline imitation trainer: fits the tabular and MLP policies to teacher
// rollouts (MPC with oracle size knowledge) replayed from DecisionEvent
// streams.
//
// Everything here is single-threaded and counter-deterministic: weight
// init and epoch shuffles are pure functions of (seed, counters) through
// the splitmix64 finalizer, updates are applied in a fixed order, and
// serialization is canonical — so the same rollout data + seed produces a
// byte-identical policy file on every run (the abrtrain retrain check and
// CI learn-smoke job pin this).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "learn/features.h"
#include "learn/policy.h"
#include "obs/event.h"
#include "video/video.h"

namespace vbr::learn {

/// One supervised example: the quantized state + feature vector the scheme
/// would have seen, labeled with the teacher's delivered track.
struct TrainExample {
  std::uint64_t session_id = 0;
  std::uint32_t state = 0;
  std::vector<double> features;
  std::uint16_t label = 0;
};

struct Dataset {
  std::vector<TrainExample> examples;
  /// Events dropped because no manifest was found or the delivered track is
  /// not the teacher's choice (skipped / downgraded / abandoned / retried).
  std::size_t dropped_events = 0;
};

/// Resolves the manifest a DecisionEvent was recorded against (fleet
/// rollouts: event.edge->title -> Catalog::title). Returning nullptr drops
/// the event (counted in Dataset::dropped_events).
using VideoLookup =
    std::function<const video::Video*(const obs::DecisionEvent&)>;

/// Replays `events` (per-session seq order, as fleet JSONL folds them) into
/// labeled examples, tracking each session's previously delivered
/// (non-skipped) track exactly like sim::run_session does.
[[nodiscard]] Dataset build_dataset(
    const std::vector<obs::DecisionEvent>& events, const FeatureConfig& cfg,
    const VideoLookup& lookup);

/// Deterministic holdout split: sessions with id % holdout_k == 0 are held
/// out (holdout_k == 0 keeps everything in train).
struct DatasetSplit {
  Dataset train;
  Dataset holdout;
};
[[nodiscard]] DatasetSplit split_dataset(const Dataset& dataset,
                                         std::uint64_t holdout_k);

struct TrainerConfig {
  std::uint64_t seed = 1;     ///< Master seed (weight init + shuffles).
  std::size_t hidden = 16;    ///< MLP hidden width.
  std::size_t epochs = 40;    ///< MLP SGD passes.
  double learning_rate = 0.05;  ///< Initial rate; decays 1/(1+0.1*epoch).

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Per-state majority vote (ties to the lowest track), with a coarse
/// (buffer, sustainable, prev-track) majority fallback and a
/// global-majority default.
[[nodiscard]] Policy train_tabular(const Dataset& train,
                                   const FeatureConfig& cfg,
                                   const TrainerConfig& tc,
                                   const std::string& id,
                                   std::uint32_t version);

/// Seeded SGD behavior cloning (softmax cross-entropy, tanh hidden layer).
[[nodiscard]] Policy train_mlp(const Dataset& train, const FeatureConfig& cfg,
                               const TrainerConfig& tc, const std::string& id,
                               std::uint32_t version);

/// Fraction of examples where policy_select matches the teacher label
/// (0.0 on an empty set). Uses the same inference path as LearnedScheme.
[[nodiscard]] double evaluate_agreement(const Policy& policy,
                                        const Dataset& dataset);

/// Rule-seeded tabular policy (no training data): every state answers its
/// own sustainable-track axis (track 0 when none is sustainable). Used by
/// benches that need a structurally real policy without a rollout corpus.
[[nodiscard]] Policy make_rate_rule_tabular(const FeatureConfig& cfg,
                                            const std::string& id,
                                            std::uint32_t version);

/// Seeded random-weight MLP policy (benches / robustness tests).
[[nodiscard]] Policy make_random_mlp(const FeatureConfig& cfg,
                                     std::size_t hidden, std::uint64_t seed,
                                     const std::string& id,
                                     std::uint32_t version);

}  // namespace vbr::learn
