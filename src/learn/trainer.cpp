#include "learn/trainer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "fleet/rng.h"

namespace vbr::learn {

namespace {

using fleet::detail::keyed_u01;
using fleet::detail::mix64;

// Salts for the independent deterministic draw streams.
constexpr std::uint64_t kSaltW1 = 0x5731;
constexpr std::uint64_t kSaltW2 = 0x5732;
constexpr std::uint64_t kSaltShuffle = 0x73687566;

/// Majority track of a per-track count row; kUnseen when empty. Ties break
/// to the lowest track (a fixed, data-independent rule).
std::uint16_t majority(const std::uint32_t* counts, std::size_t num_tracks) {
  std::uint32_t best_count = 0;
  std::size_t best = 0;
  for (std::size_t t = 0; t < num_tracks; ++t) {
    if (counts[t] > best_count) {
      best_count = counts[t];
      best = t;
    }
  }
  return best_count == 0 ? kUnseen : static_cast<std::uint16_t>(best);
}

void init_uniform(std::vector<double>& w, std::uint64_t seed,
                  std::uint64_t salt, double scale) {
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = (keyed_u01(seed, i, 0, salt) - 0.5) * 2.0 * scale;
  }
}

}  // namespace

Dataset build_dataset(const std::vector<obs::DecisionEvent>& events,
                      const FeatureConfig& cfg, const VideoLookup& lookup) {
  cfg.validate();
  Dataset out;
  out.examples.reserve(events.size());
  std::unordered_map<std::uint64_t, int> prev_track;
  Signals sig;
  for (const obs::DecisionEvent& ev : events) {
    const auto it = prev_track.try_emplace(ev.session_id, -1).first;
    const int prev = it->second;
    // A usable label requires the delivered track to be the scheme's own
    // choice: no skip, no fault downgrade, no abandonment, first attempt.
    const bool usable = !ev.skipped && !ev.downgraded &&
                        !ev.abandoned_higher && ev.attempts == 1;
    const video::Video* video = usable ? lookup(ev) : nullptr;
    if (video != nullptr && video->num_tracks() == cfg.num_tracks &&
        ev.track < cfg.num_tracks && ev.chunk_index < video->num_chunks()) {
      signals_from_event(ev, *video, prev, cfg, sig);
      TrainExample ex;
      ex.session_id = ev.session_id;
      ex.state = state_id(sig, cfg);
      feature_vector(sig, cfg, ex.features);
      ex.label = static_cast<std::uint16_t>(ev.track);
      out.examples.push_back(std::move(ex));
    } else {
      ++out.dropped_events;
    }
    if (!ev.skipped) {
      it->second = static_cast<int>(ev.track);
    }
  }
  return out;
}

DatasetSplit split_dataset(const Dataset& dataset, std::uint64_t holdout_k) {
  DatasetSplit out;
  out.train.dropped_events = dataset.dropped_events;
  for (const TrainExample& ex : dataset.examples) {
    if (holdout_k != 0 && ex.session_id % holdout_k == 0) {
      out.holdout.examples.push_back(ex);
    } else {
      out.train.examples.push_back(ex);
    }
  }
  return out;
}

void TrainerConfig::validate() const {
  if (hidden < 1 || hidden > 1024) {
    throw std::invalid_argument("TrainerConfig.hidden: must be in [1, 1024]");
  }
  if (epochs < 1 || epochs > 10000) {
    throw std::invalid_argument(
        "TrainerConfig.epochs: must be in [1, 10000]");
  }
  if (!std::isfinite(learning_rate) || learning_rate <= 0.0) {
    throw std::invalid_argument(
        "TrainerConfig.learning_rate: must be finite and positive");
  }
}

Policy train_tabular(const Dataset& train, const FeatureConfig& cfg,
                     const TrainerConfig& tc, const std::string& id,
                     std::uint32_t version) {
  cfg.validate();
  tc.validate();
  const std::size_t num_states = cfg.num_states();
  const std::size_t num_coarse = cfg.num_coarse_states();
  const std::size_t T = cfg.num_tracks;
  std::vector<std::uint32_t> counts(num_states * T, 0);
  std::vector<std::uint32_t> coarse_counts(num_coarse * T, 0);
  std::vector<std::uint32_t> global_counts(T, 0);
  for (const TrainExample& ex : train.examples) {
    counts[ex.state * T + ex.label] += 1;
    coarse_counts[coarse_from_state(ex.state, cfg) * T + ex.label] += 1;
    global_counts[ex.label] += 1;
  }

  Policy policy;
  policy.kind = PolicyKind::kTabular;
  policy.id = id;
  policy.version = version;
  policy.seed = tc.seed;
  policy.features = cfg;
  policy.tabular.table.resize(num_states);
  policy.tabular.coarse.resize(num_coarse);
  for (std::size_t s = 0; s < num_states; ++s) {
    policy.tabular.table[s] = majority(&counts[s * T], T);
  }
  for (std::size_t c = 0; c < num_coarse; ++c) {
    policy.tabular.coarse[c] = majority(&coarse_counts[c * T], T);
  }
  const std::uint16_t global = majority(global_counts.data(), T);
  policy.tabular.default_track = global == kUnseen ? 0 : global;
  return policy;
}

Policy train_mlp(const Dataset& train, const FeatureConfig& cfg,
                 const TrainerConfig& tc, const std::string& id,
                 std::uint32_t version) {
  cfg.validate();
  tc.validate();
  Policy policy;
  policy.kind = PolicyKind::kMlp;
  policy.id = id;
  policy.version = version;
  policy.seed = tc.seed;
  policy.features = cfg;
  MlpPolicy& m = policy.mlp;
  m.in = cfg.vector_dim();
  m.hidden = tc.hidden;
  m.out = cfg.num_tracks;
  m.w1.resize(m.hidden * m.in);
  m.b1.assign(m.hidden, 0.0);
  m.w2.resize(m.out * m.hidden);
  m.b2.assign(m.out, 0.0);
  init_uniform(m.w1, tc.seed, kSaltW1,
               1.0 / std::sqrt(static_cast<double>(m.in)));
  init_uniform(m.w2, tc.seed, kSaltW2,
               1.0 / std::sqrt(static_cast<double>(m.hidden)));

  const std::size_t n = train.examples.size();
  if (n == 0) {
    return policy;
  }

  std::vector<std::size_t> order(n);
  std::vector<double> hidden(m.hidden);
  std::vector<double> logits(m.out);
  std::vector<double> dlogits(m.out);
  std::vector<double> dhidden(m.hidden);
  for (std::size_t epoch = 0; epoch < tc.epochs; ++epoch) {
    const double lr =
        tc.learning_rate / (1.0 + 0.1 * static_cast<double>(epoch));
    // Deterministic Fisher-Yates keyed on (seed, epoch, position).
    for (std::size_t i = 0; i < n; ++i) {
      order[i] = i;
    }
    for (std::size_t i = n - 1; i > 0; --i) {
      const std::uint64_t h =
          mix64(tc.seed ^ mix64(epoch * 0x9e37ULL + i) ^ kSaltShuffle);
      std::swap(order[i], order[h % (i + 1)]);
    }
    for (std::size_t step = 0; step < n; ++step) {
      const TrainExample& ex = train.examples[order[step]];
      // Forward: tanh hidden, softmax output.
      for (std::size_t h = 0; h < m.hidden; ++h) {
        double acc = m.b1[h];
        const double* row = m.w1.data() + h * m.in;
        for (std::size_t i = 0; i < m.in; ++i) {
          acc += row[i] * ex.features[i];
        }
        hidden[h] = std::tanh(acc);
      }
      double max_logit = 0.0;
      for (std::size_t o = 0; o < m.out; ++o) {
        double acc = m.b2[o];
        const double* row = m.w2.data() + o * m.hidden;
        for (std::size_t h = 0; h < m.hidden; ++h) {
          acc += row[h] * hidden[h];
        }
        logits[o] = acc;
        if (o == 0 || acc > max_logit) {
          max_logit = acc;
        }
      }
      double z = 0.0;
      for (std::size_t o = 0; o < m.out; ++o) {
        dlogits[o] = std::exp(logits[o] - max_logit);
        z += dlogits[o];
      }
      // Backward: dlogits = softmax - onehot(label).
      for (std::size_t o = 0; o < m.out; ++o) {
        dlogits[o] = dlogits[o] / z - (o == ex.label ? 1.0 : 0.0);
      }
      for (std::size_t h = 0; h < m.hidden; ++h) {
        double acc = 0.0;
        for (std::size_t o = 0; o < m.out; ++o) {
          acc += dlogits[o] * m.w2[o * m.hidden + h];
        }
        dhidden[h] = acc * (1.0 - hidden[h] * hidden[h]);
      }
      for (std::size_t o = 0; o < m.out; ++o) {
        double* row = m.w2.data() + o * m.hidden;
        for (std::size_t h = 0; h < m.hidden; ++h) {
          row[h] -= lr * dlogits[o] * hidden[h];
        }
        m.b2[o] -= lr * dlogits[o];
      }
      for (std::size_t h = 0; h < m.hidden; ++h) {
        double* row = m.w1.data() + h * m.in;
        for (std::size_t i = 0; i < m.in; ++i) {
          row[i] -= lr * dhidden[h] * ex.features[i];
        }
        m.b1[h] -= lr * dhidden[h];
      }
    }
  }
  return policy;
}

double evaluate_agreement(const Policy& policy, const Dataset& dataset) {
  if (dataset.examples.empty()) {
    return 0.0;
  }
  std::vector<double> scratch;
  std::size_t hits = 0;
  for (const TrainExample& ex : dataset.examples) {
    if (policy_select(policy, ex.state, ex.features, scratch) == ex.label) {
      ++hits;
    }
  }
  return static_cast<double>(hits) /
         static_cast<double>(dataset.examples.size());
}

Policy make_rate_rule_tabular(const FeatureConfig& cfg, const std::string& id,
                              std::uint32_t version) {
  cfg.validate();
  // The sustainable-track axis value IS the rule's answer: 0 = nothing
  // sustainable -> lowest track, u -> track u-1.
  const auto pick = [](std::size_t sustainable) {
    return static_cast<std::uint16_t>(sustainable == 0 ? 0 : sustainable - 1);
  };
  Policy policy;
  policy.kind = PolicyKind::kTabular;
  policy.id = id;
  policy.version = version;
  policy.features = cfg;
  policy.tabular.table.resize(cfg.num_states());
  for (std::size_t s = 0; s < cfg.num_states(); ++s) {
    policy.tabular.table[s] =
        pick(sustainable_from_state(static_cast<std::uint32_t>(s), cfg));
  }
  policy.tabular.coarse.resize(cfg.num_coarse_states());
  for (std::size_t c = 0; c < cfg.num_coarse_states(); ++c) {
    // Coarse index layout: (b * (T+1) + sustainable) * (T+1) + prev.
    policy.tabular.coarse[c] =
        pick((c / (cfg.num_tracks + 1)) % (cfg.num_tracks + 1));
  }
  policy.tabular.default_track = 0;
  return policy;
}

Policy make_random_mlp(const FeatureConfig& cfg, std::size_t hidden,
                       std::uint64_t seed, const std::string& id,
                       std::uint32_t version) {
  Dataset empty;
  TrainerConfig tc;
  tc.seed = seed;
  tc.hidden = hidden;
  tc.epochs = 1;
  return train_mlp(empty, cfg, tc, id, version);
}

}  // namespace vbr::learn
