// LearnedScheme: serves a trained policy (tabular or MLP) behind the
// standard AbrScheme interface.
//
// The policy is immutable and shared (shared_ptr<const Policy>), so fleet
// workers can reuse one loaded policy across threads; per-decision scratch
// buffers live in the scheme instance (one per worker) and are reused
// across decisions — the hot path allocates nothing after the first call.
// Inference goes through policy_select(), the same function the trainer's
// held-out agreement evaluation uses, so serving is bit-identical to
// training-time evaluation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "abr/scheme.h"
#include "learn/features.h"
#include "learn/policy.h"

namespace vbr::learn {

class LearnedScheme final : public abr::AbrScheme {
 public:
  /// Throws std::invalid_argument if `policy` is null or fails validation.
  explicit LearnedScheme(std::shared_ptr<const Policy> policy);

  /// Decides the next track. Throws std::invalid_argument when the context
  /// ladder height disagrees with the policy's FeatureConfig (a policy is
  /// bound to one ladder shape).
  [[nodiscard]] abr::Decision decide(const abr::StreamContext& ctx) override;

  void reset() override {}

  /// Stamps the policy id/version into the event (train/serve provenance).
  void annotate_event(obs::DecisionEvent& event) const override;

  /// "learned-tabular" or "learned-mlp".
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const Policy& policy() const { return *policy_; }

 private:
  std::shared_ptr<const Policy> policy_;
  // Reused per-decision scratch (signals, feature vector, MLP hidden).
  Signals signals_;
  std::vector<double> features_;
  std::vector<double> hidden_;
};

}  // namespace vbr::learn
