#include "learn/features.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace vbr::learn {

namespace {

void require(bool ok, const std::string& field, const std::string& what) {
  if (!ok) {
    throw std::invalid_argument("FeatureConfig." + field + ": " + what);
  }
}

double clamp_ratio(double r, const FeatureConfig& cfg) {
  return std::min(cfg.ratio_hi, std::max(cfg.ratio_lo, r));
}

std::size_t margin_bin(double margin, const FeatureConfig& cfg) {
  const double u = std::log(margin / cfg.margin_lo) /
                   std::log(cfg.margin_hi / cfg.margin_lo);
  const auto bin = static_cast<std::size_t>(
      std::min(1.0, std::max(0.0, u)) *
      static_cast<double>(cfg.margin_bins));
  return std::min(bin, cfg.margin_bins - 1);
}

std::size_t deficit_bin(double deficit_chunks, const FeatureConfig& cfg) {
  const double u = std::log(deficit_chunks / cfg.deficit_lo) /
                   std::log(cfg.deficit_hi / cfg.deficit_lo);
  const auto bin = static_cast<std::size_t>(
      std::min(1.0, std::max(0.0, u)) *
      static_cast<double>(cfg.deficit_bins));
  return std::min(bin, cfg.deficit_bins - 1);
}

/// The shared core of both Signals extractors: reads the upcoming size
/// window per track through `read`, then derives every size-dependent
/// signal with identical arithmetic, so the two paths cannot diverge by
/// even one ULP. `mean_bits`/`first_bits` scratch must hold num_tracks.
template <typename ReadSizes>
void extract_signals(const video::Video& video, std::size_t next_chunk,
                     std::size_t limit, const FeatureConfig& cfg,
                     const ReadSizes& read, Signals& out) {
  const double chunk_s = video.chunk_duration_s();
  const std::size_t begin = std::min(next_chunk, limit);
  const std::size_t end = std::min(begin + cfg.lookahead, limit);
  out.inflation.resize(cfg.num_tracks);

  double sizes[32];
  double mean_bits[64];
  double first_bits[64];
  if (end <= begin) {
    // Past the visible edge (cannot happen for a valid decision, but keep
    // the function total): every track at its nominal size.
    for (std::size_t l = 0; l < cfg.num_tracks; ++l) {
      const double nominal =
          video.track(l).average_bitrate_bps() * chunk_s;
      mean_bits[l] = nominal;
      first_bits[l] = nominal;
      out.inflation[l] = clamp_ratio(1.0, cfg);
    }
  } else {
    const std::size_t n = end - begin;
    for (std::size_t l = 0; l < cfg.num_tracks; ++l) {
      read(l, begin, end, sizes);
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        sum += sizes[i];
      }
      mean_bits[l] = sum / static_cast<double>(n);
      first_bits[l] = sizes[0];
      const double nominal =
          video.track(l).average_bitrate_bps() * chunk_s;
      out.inflation[l] = clamp_ratio(mean_bits[l] / nominal, cfg);
    }
  }

  // Sustainable: highest track whose mean upcoming rate fits the estimate.
  int sustainable = -1;
  for (std::size_t l = 0; l < cfg.num_tracks; ++l) {
    if (mean_bits[l] / chunk_s <= out.est_bandwidth_bps) {
      sustainable = static_cast<int>(l);
    }
  }
  out.sustainable = static_cast<std::size_t>(sustainable + 1);

  // Margin above the sustainable track's mean rate (track 0 when none).
  const std::size_t anchor =
      sustainable < 0 ? 0 : static_cast<std::size_t>(sustainable);
  out.margin = std::min(
      cfg.margin_hi,
      std::max(cfg.margin_lo,
               out.est_bandwidth_bps / (mean_bits[anchor] / chunk_s)));

  // Affordable: highest track whose next chunk downloads within the
  // current buffer at the estimated bandwidth (no rebuffer if the
  // estimate is exact).
  int affordable = -1;
  for (std::size_t l = 0; l < cfg.num_tracks; ++l) {
    if (first_bits[l] / out.est_bandwidth_bps <= out.buffer_s) {
      affordable = static_cast<int>(l);
    }
  }
  out.affordable = static_cast<std::size_t>(affordable + 1);

  // Deficit absorption of the track just above the sustainable one: each
  // of its chunks costs (download time - playout gain) of buffer; how many
  // such chunks does the current buffer cover? deficit_hi when that track
  // is itself sustainable (a free upgrade).
  const std::size_t above = std::min(out.sustainable, cfg.num_tracks - 1);
  const double over_s =
      mean_bits[above] / out.est_bandwidth_bps - chunk_s;
  out.deficit_chunks =
      over_s <= 0.0
          ? cfg.deficit_hi
          : std::min(cfg.deficit_hi,
                     std::max(cfg.deficit_lo, out.buffer_s / over_s));
}

}  // namespace

void FeatureConfig::validate() const {
  require(num_tracks >= 1 && num_tracks <= 64, "num_tracks",
          "must be in [1, 64]");
  require(lookahead >= 1 && lookahead <= 32, "lookahead",
          "must be in [1, 32]");
  require(buffer_bins >= 1 && buffer_bins <= 256, "buffer_bins",
          "must be in [1, 256]");
  require(std::isfinite(buffer_cap_s) && buffer_cap_s > 0.0, "buffer_cap_s",
          "must be finite and positive");
  require(bandwidth_bins >= 1 && bandwidth_bins <= 256, "bandwidth_bins",
          "must be in [1, 256]");
  require(std::isfinite(bw_lo_bps) && bw_lo_bps > 0.0, "bw_lo_bps",
          "must be finite and positive");
  require(std::isfinite(bw_hi_bps) && bw_hi_bps > bw_lo_bps, "bw_hi_bps",
          "must be finite and greater than bw_lo_bps");
  require(std::isfinite(ratio_lo) && ratio_lo > 0.0, "ratio_lo",
          "must be finite and positive");
  require(std::isfinite(ratio_hi) && ratio_hi > ratio_lo, "ratio_hi",
          "must be finite and greater than ratio_lo");
  require(margin_bins >= 1 && margin_bins <= 64, "margin_bins",
          "must be in [1, 64]");
  require(std::isfinite(margin_lo) && margin_lo > 0.0, "margin_lo",
          "must be finite and positive");
  require(std::isfinite(margin_hi) && margin_hi > margin_lo, "margin_hi",
          "must be finite and greater than margin_lo");
  require(deficit_bins >= 1 && deficit_bins <= 64, "deficit_bins",
          "must be in [1, 64]");
  require(std::isfinite(deficit_lo) && deficit_lo > 0.0, "deficit_lo",
          "must be finite and positive");
  require(std::isfinite(deficit_hi) && deficit_hi > deficit_lo,
          "deficit_hi", "must be finite and greater than deficit_lo");
}

std::size_t FeatureConfig::num_states() const {
  return buffer_bins * (num_tracks + 1) * margin_bins * deficit_bins *
         (num_tracks + 1) * (num_tracks + 1) * 2;
}

std::size_t buffer_bin(double buffer_s, const FeatureConfig& cfg) {
  if (!(buffer_s > 0.0)) {
    return 0;
  }
  const double u = buffer_s / cfg.buffer_cap_s;
  const auto bin = static_cast<std::size_t>(
      std::min(u, 1.0) * static_cast<double>(cfg.buffer_bins));
  return std::min(bin, cfg.buffer_bins - 1);
}

double bandwidth_norm(double bw_bps, const FeatureConfig& cfg) {
  if (!(bw_bps > cfg.bw_lo_bps)) {
    return 0.0;
  }
  if (bw_bps >= cfg.bw_hi_bps) {
    return 1.0;
  }
  const double u = (std::log(bw_bps) - std::log(cfg.bw_lo_bps)) /
                   (std::log(cfg.bw_hi_bps) - std::log(cfg.bw_lo_bps));
  return std::min(1.0, std::max(0.0, u));
}

std::size_t bandwidth_bin(double bw_bps, const FeatureConfig& cfg) {
  const double u = bandwidth_norm(bw_bps, cfg);
  const auto bin = static_cast<std::size_t>(
      u * static_cast<double>(cfg.bandwidth_bins));
  return std::min(bin, cfg.bandwidth_bins - 1);
}

double bandwidth_bin_center_bps(std::size_t bin, const FeatureConfig& cfg) {
  const double u = (static_cast<double>(bin) + 0.5) /
                   static_cast<double>(cfg.bandwidth_bins);
  return std::exp(std::log(cfg.bw_lo_bps) +
                  u * (std::log(cfg.bw_hi_bps) - std::log(cfg.bw_lo_bps)));
}

void signals_from_context(const abr::StreamContext& ctx,
                          const FeatureConfig& cfg, Signals& out) {
  out.buffer_s = ctx.buffer_s;
  out.est_bandwidth_bps = ctx.est_bandwidth_bps;
  out.prev_track = ctx.prev_track;
  out.in_startup = ctx.in_startup;
  extract_signals(
      *ctx.video, ctx.next_chunk, ctx.lookahead_limit(), cfg,
      [&ctx](std::size_t level, std::size_t begin, std::size_t end,
             double* sizes) {
        ctx.fill_chunk_sizes(level, begin, end, sizes);
      },
      out);
}

void signals_from_event(const obs::DecisionEvent& event,
                        const video::Video& video, int prev_track,
                        const FeatureConfig& cfg, Signals& out) {
  out.buffer_s = event.buffer_before_s;
  out.est_bandwidth_bps = event.est_bandwidth_bps;
  out.prev_track = prev_track;
  out.in_startup = event.in_startup;
  extract_signals(
      video, event.chunk_index, video.num_chunks(), cfg,
      [&video](std::size_t level, std::size_t begin, std::size_t end,
               double* sizes) {
        for (std::size_t i = begin; i < end; ++i) {
          sizes[i - begin] = video.chunk_size_bits(level, i);
        }
      },
      out);
}

void feature_vector(const Signals& sig, const FeatureConfig& cfg,
                    std::vector<double>& out) {
  out.resize(cfg.vector_dim());
  out[0] = std::min(1.0, std::max(0.0, sig.buffer_s / cfg.buffer_cap_s));
  out[1] = bandwidth_norm(sig.est_bandwidth_bps, cfg);
  out[2] = static_cast<double>(sig.prev_track + 1) /
           static_cast<double>(cfg.num_tracks);
  out[3] = sig.in_startup ? 1.0 : 0.0;
  out[4] = static_cast<double>(sig.sustainable) /
           static_cast<double>(cfg.num_tracks);
  out[5] = (sig.margin - cfg.margin_lo) / (cfg.margin_hi - cfg.margin_lo);
  out[6] = static_cast<double>(sig.affordable) /
           static_cast<double>(cfg.num_tracks);
  out[7] = std::log(sig.deficit_chunks / cfg.deficit_lo) /
           std::log(cfg.deficit_hi / cfg.deficit_lo);
  for (std::size_t level = 0; level < cfg.num_tracks; ++level) {
    out[8 + level] = (sig.inflation[level] - cfg.ratio_lo) /
                     (cfg.ratio_hi - cfg.ratio_lo);
  }
}

std::uint32_t state_id(const Signals& sig, const FeatureConfig& cfg) {
  const std::size_t b = buffer_bin(sig.buffer_s, cfg);
  const std::size_t u = std::min(sig.sustainable, cfg.num_tracks);
  const std::size_t m = margin_bin(sig.margin, cfg);
  const std::size_t d = deficit_bin(sig.deficit_chunks, cfg);
  const std::size_t a = std::min(sig.affordable, cfg.num_tracks);
  const std::size_t prev = static_cast<std::size_t>(
      std::min<int>(sig.prev_track + 1, static_cast<int>(cfg.num_tracks)));
  const std::size_t s = sig.in_startup ? 1 : 0;
  std::size_t id = b;
  id = id * (cfg.num_tracks + 1) + u;
  id = id * cfg.margin_bins + m;
  id = id * cfg.deficit_bins + d;
  id = id * (cfg.num_tracks + 1) + a;
  id = id * (cfg.num_tracks + 1) + prev;
  id = id * 2 + s;
  return static_cast<std::uint32_t>(id);
}

std::uint32_t coarse_from_state(std::uint32_t state,
                                const FeatureConfig& cfg) {
  std::size_t id = state;
  id /= 2;  // Drop the startup axis.
  const std::size_t prev = id % (cfg.num_tracks + 1);
  id /= cfg.num_tracks + 1;
  id /= cfg.num_tracks + 1;  // Drop the affordable axis.
  id /= cfg.deficit_bins;    // Drop the deficit axis.
  id /= cfg.margin_bins;     // Drop the margin axis.
  // id == b * (num_tracks + 1) + sustainable; re-append prev_track.
  return static_cast<std::uint32_t>(id * (cfg.num_tracks + 1) + prev);
}

std::size_t sustainable_from_state(std::uint32_t state,
                                   const FeatureConfig& cfg) {
  std::size_t id = state;
  id /= 2;
  id /= cfg.num_tracks + 1;
  id /= cfg.num_tracks + 1;
  id /= cfg.deficit_bins;
  id /= cfg.margin_bins;
  return id % (cfg.num_tracks + 1);
}

}  // namespace vbr::learn
