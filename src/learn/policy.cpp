#include "learn/policy.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string_view>

#include "obs/json_util.h"
#include "obs/jsonl_io.h"

namespace vbr::learn {

namespace {

constexpr std::string_view kMagic = "VBRPOLICY";
constexpr int kFormatVersion = 1;
constexpr std::size_t kEntriesPerLine = 64;

[[noreturn]] void fail(const std::string& field, const std::string& what) {
  throw PolicyError("PolicyFile." + field + ": " + what);
}

bool valid_id_token(const std::string& id) {
  if (id.empty() || id.size() > 128) {
    return false;
  }
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) {
      return false;
    }
  }
  return true;
}

void append_size(std::string& out, std::size_t v) {
  obs::detail::append_uint(out, static_cast<std::uint64_t>(v));
}

// ---------------------------------------------------------------------------
// Tokenizing reader with field-named errors.

class Lines {
 public:
  explicit Lines(const std::string& text) : text_(text) {}

  /// Next line, or fails naming `field` on EOF (truncation).
  std::string_view next(const std::string& field) {
    if (pos_ >= text_.size()) {
      fail(field, "unexpected end of file (truncated?)");
    }
    const std::size_t nl = text_.find('\n', pos_);
    if (nl == std::string::npos) {
      fail(field, "missing trailing newline (truncated?)");
    }
    std::string_view line(text_.data() + pos_, nl - pos_);
    pos_ = nl + 1;
    ++line_no_;
    return line;
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  /// Byte offset of the start of the line that next() would return.
  [[nodiscard]] std::size_t offset() const { return pos_; }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_no_ = 0;
};

std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') {
      ++i;
    }
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ') {
      ++i;
    }
    if (i > start) {
      out.push_back(line.substr(start, i - start));
    }
  }
  return out;
}

/// "key=value" token -> value, failing with the dotted field name.
std::string_view kv_value(std::string_view token, std::string_view key,
                          const std::string& field) {
  if (token.size() <= key.size() + 1 ||
      token.substr(0, key.size()) != key || token[key.size()] != '=') {
    fail(field, "expected " + std::string(key) + "=<value>, found '" +
                    std::string(token) + "'");
  }
  return token.substr(key.size() + 1);
}

std::uint64_t parse_u64(std::string_view s, const std::string& field) {
  std::uint64_t v = 0;
  const auto r = std::from_chars(s.data(), s.data() + s.size(), v);
  if (r.ec != std::errc() || r.ptr != s.data() + s.size()) {
    fail(field, "invalid unsigned integer '" + std::string(s) + "'");
  }
  return v;
}

double parse_double(std::string_view s, const std::string& field) {
  double v = 0.0;
  const auto r = std::from_chars(s.data(), s.data() + s.size(), v);
  if (r.ec != std::errc() || r.ptr != s.data() + s.size()) {
    fail(field, "invalid number '" + std::string(s) + "'");
  }
  return v;
}

/// One table/coarse entry: a track number or 'x' for unseen.
std::uint16_t parse_entry(std::string_view s, const std::string& field) {
  if (s == "x") {
    return kUnseen;
  }
  const std::uint64_t v = parse_u64(s, field);
  if (v >= kUnseen) {
    fail(field, "track value out of range: " + std::string(s));
  }
  return static_cast<std::uint16_t>(v);
}

void serialize_entry_table(std::string& out, std::string_view label,
                           const std::vector<std::uint16_t>& table) {
  for (std::size_t start = 0; start < table.size();
       start += kEntriesPerLine) {
    out += label;
    out += ' ';
    append_size(out, start);
    const std::size_t end =
        std::min(table.size(), start + kEntriesPerLine);
    for (std::size_t i = start; i < end; ++i) {
      out += ' ';
      if (table[i] == kUnseen) {
        out += 'x';
      } else {
        append_size(out, table[i]);
      }
    }
    out += '\n';
  }
}

void parse_entry_table(Lines& lines, std::string_view label,
                       std::size_t expected, const std::string& field,
                       std::vector<std::uint16_t>& out) {
  out.clear();
  out.reserve(expected);
  while (out.size() < expected) {
    const std::vector<std::string_view> toks =
        split_tokens(lines.next(field));
    if (toks.size() < 3 || toks[0] != label) {
      fail(field, "expected '" + std::string(label) + " <start> ...' row");
    }
    const std::uint64_t start = parse_u64(toks[1], field + ".start");
    if (start != out.size()) {
      fail(field + ".start",
           "rows out of order (expected " + std::to_string(out.size()) +
               ", found " + std::to_string(start) + ")");
    }
    for (std::size_t i = 2; i < toks.size(); ++i) {
      if (out.size() >= expected) {
        fail(field, "more entries than declared");
      }
      out.push_back(parse_entry(toks[i], field));
    }
  }
}

void serialize_double_rows(std::string& out, std::string_view label,
                           const std::vector<double>& values,
                           std::size_t row_len, bool numbered_rows) {
  for (std::size_t start = 0; start < values.size(); start += row_len) {
    out += label;
    if (numbered_rows) {
      out += ' ';
      append_size(out, start / row_len);
    }
    const std::size_t end = std::min(values.size(), start + row_len);
    for (std::size_t i = start; i < end; ++i) {
      out += ' ';
      obs::detail::append_double(out, values[i]);
    }
    out += '\n';
  }
}

void parse_double_rows(Lines& lines, std::string_view label,
                       std::size_t rows, std::size_t row_len,
                       bool numbered_rows, const std::string& field,
                       std::vector<double>& out) {
  out.clear();
  out.reserve(rows * row_len);
  for (std::size_t row = 0; row < rows; ++row) {
    const std::vector<std::string_view> toks =
        split_tokens(lines.next(field));
    const std::size_t header = numbered_rows ? 2 : 1;
    if (toks.size() != header + row_len || toks[0] != label) {
      fail(field, "expected '" + std::string(label) + "' row with " +
                      std::to_string(row_len) + " values");
    }
    if (numbered_rows) {
      const std::uint64_t r = parse_u64(toks[1], field + ".row");
      if (r != row) {
        fail(field + ".row", "rows out of order (expected " +
                                 std::to_string(row) + ", found " +
                                 std::to_string(r) + ")");
      }
    }
    for (std::size_t i = header; i < toks.size(); ++i) {
      out.push_back(parse_double(
          toks[i], field + "[" + std::to_string(row) + "][" +
                       std::to_string(i - header) + "]"));
    }
  }
}

void check_finite(const std::vector<double>& values,
                  const std::string& field) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) {
      fail(field, "non-finite weight at index " + std::to_string(i));
    }
  }
}

}  // namespace

std::string to_string(PolicyKind k) {
  return k == PolicyKind::kTabular ? "tabular" : "mlp";
}

void Policy::validate() const {
  try {
    features.validate();
  } catch (const std::invalid_argument& e) {
    throw PolicyError(std::string("PolicyFile.features: ") + e.what());
  }
  if (!valid_id_token(id)) {
    fail("meta.id",
         "must match [A-Za-z0-9._-]{1,128}, found '" + id + "'");
  }
  if (kind == PolicyKind::kTabular) {
    if (tabular.table.size() != features.num_states()) {
      fail("tabular.table",
           "expected " + std::to_string(features.num_states()) +
               " entries, found " + std::to_string(tabular.table.size()));
    }
    if (tabular.coarse.size() != features.num_coarse_states()) {
      fail("tabular.coarse",
           "expected " + std::to_string(features.num_coarse_states()) +
               " entries, found " + std::to_string(tabular.coarse.size()));
    }
    if (tabular.default_track >= features.num_tracks) {
      fail("tabular.default", "track out of range");
    }
    for (std::size_t i = 0; i < tabular.table.size(); ++i) {
      if (tabular.table[i] != kUnseen &&
          tabular.table[i] >= features.num_tracks) {
        fail("tabular.table",
             "track out of range at state " + std::to_string(i));
      }
    }
    for (std::size_t i = 0; i < tabular.coarse.size(); ++i) {
      if (tabular.coarse[i] != kUnseen &&
          tabular.coarse[i] >= features.num_tracks) {
        fail("tabular.coarse",
             "track out of range at index " + std::to_string(i));
      }
    }
  } else {
    if (mlp.in != features.vector_dim()) {
      fail("mlp.in", "expected " + std::to_string(features.vector_dim()) +
                         " (the feature vector width), found " +
                         std::to_string(mlp.in));
    }
    if (mlp.out != features.num_tracks) {
      fail("mlp.out", "expected " + std::to_string(features.num_tracks) +
                          " (the ladder height), found " +
                          std::to_string(mlp.out));
    }
    if (mlp.hidden < 1 || mlp.hidden > 1024) {
      fail("mlp.hidden", "must be in [1, 1024]");
    }
    if (mlp.w1.size() != mlp.hidden * mlp.in) {
      fail("mlp.w1", "size mismatch");
    }
    if (mlp.b1.size() != mlp.hidden) {
      fail("mlp.b1", "size mismatch");
    }
    if (mlp.w2.size() != mlp.out * mlp.hidden) {
      fail("mlp.w2", "size mismatch");
    }
    if (mlp.b2.size() != mlp.out) {
      fail("mlp.b2", "size mismatch");
    }
    check_finite(mlp.w1, "w1");
    check_finite(mlp.b1, "b1");
    check_finite(mlp.w2, "w2");
    check_finite(mlp.b2, "b2");
  }
}

std::size_t policy_select(const Policy& policy, std::uint32_t state,
                          const std::vector<double>& features,
                          std::vector<double>& scratch) {
  if (policy.kind == PolicyKind::kTabular) {
    std::uint16_t t = policy.tabular.table[state];
    if (t == kUnseen) {
      t = policy.tabular.coarse[coarse_from_state(state, policy.features)];
    }
    if (t == kUnseen) {
      t = policy.tabular.default_track;
    }
    return t;
  }
  const MlpPolicy& m = policy.mlp;
  scratch.resize(m.hidden);
  for (std::size_t h = 0; h < m.hidden; ++h) {
    double acc = m.b1[h];
    const double* row = m.w1.data() + h * m.in;
    for (std::size_t i = 0; i < m.in; ++i) {
      acc += row[i] * features[i];
    }
    scratch[h] = std::tanh(acc);
  }
  std::size_t best = 0;
  double best_v = 0.0;
  for (std::size_t o = 0; o < m.out; ++o) {
    double acc = m.b2[o];
    const double* row = m.w2.data() + o * m.hidden;
    for (std::size_t h = 0; h < m.hidden; ++h) {
      acc += row[h] * scratch[h];
    }
    if (o == 0 || acc > best_v) {  // Strict '>': ties go to the lowest track.
      best = o;
      best_v = acc;
    }
  }
  return best;
}

std::string serialize_policy(const Policy& policy) {
  policy.validate();
  std::string out;
  out += kMagic;
  out += ' ';
  append_size(out, kFormatVersion);
  out += '\n';

  out += "meta kind=";
  out += to_string(policy.kind);
  out += " id=";
  out += policy.id;
  out += " version=";
  append_size(out, policy.version);
  out += " seed=";
  obs::detail::append_uint(out, policy.seed);
  out += '\n';

  const FeatureConfig& f = policy.features;
  out += "features num_tracks=";
  append_size(out, f.num_tracks);
  out += " lookahead=";
  append_size(out, f.lookahead);
  out += " buffer_bins=";
  append_size(out, f.buffer_bins);
  out += " buffer_cap_s=";
  obs::detail::append_double(out, f.buffer_cap_s);
  out += " bandwidth_bins=";
  append_size(out, f.bandwidth_bins);
  out += " bw_lo_bps=";
  obs::detail::append_double(out, f.bw_lo_bps);
  out += " bw_hi_bps=";
  obs::detail::append_double(out, f.bw_hi_bps);
  out += " ratio_lo=";
  obs::detail::append_double(out, f.ratio_lo);
  out += " ratio_hi=";
  obs::detail::append_double(out, f.ratio_hi);
  out += " margin_bins=";
  append_size(out, f.margin_bins);
  out += " margin_lo=";
  obs::detail::append_double(out, f.margin_lo);
  out += " margin_hi=";
  obs::detail::append_double(out, f.margin_hi);
  out += " deficit_bins=";
  append_size(out, f.deficit_bins);
  out += " deficit_lo=";
  obs::detail::append_double(out, f.deficit_lo);
  out += " deficit_hi=";
  obs::detail::append_double(out, f.deficit_hi);
  out += '\n';

  if (policy.kind == PolicyKind::kTabular) {
    out += "tabular states=";
    append_size(out, policy.tabular.table.size());
    out += " coarse=";
    append_size(out, policy.tabular.coarse.size());
    out += " default=";
    append_size(out, policy.tabular.default_track);
    out += '\n';
    serialize_entry_table(out, "table", policy.tabular.table);
    serialize_entry_table(out, "coarse", policy.tabular.coarse);
  } else {
    const MlpPolicy& m = policy.mlp;
    out += "mlp in=";
    append_size(out, m.in);
    out += " hidden=";
    append_size(out, m.hidden);
    out += " out=";
    append_size(out, m.out);
    out += '\n';
    serialize_double_rows(out, "w1", m.w1, m.in, /*numbered_rows=*/true);
    serialize_double_rows(out, "b1", m.b1, m.b1.size(), false);
    serialize_double_rows(out, "w2", m.w2, m.hidden, /*numbered_rows=*/true);
    serialize_double_rows(out, "b2", m.b2, m.b2.size(), false);
  }

  char trailer[16];
  std::snprintf(trailer, sizeof(trailer), "end %08x",
                obs::line_checksum(out));
  out += trailer;
  out += '\n';
  return out;
}

Policy parse_policy(const std::string& text) {
  Lines lines(text);

  // Magic + format version.
  {
    const std::vector<std::string_view> toks =
        split_tokens(lines.next("magic"));
    if (toks.size() != 2 || toks[0] != kMagic) {
      fail("magic", "expected '" + std::string(kMagic) +
                        " <version>' header");
    }
    const std::uint64_t v = parse_u64(toks[1], "magic.version");
    if (v != static_cast<std::uint64_t>(kFormatVersion)) {
      fail("magic.version",
           "unsupported format version " + std::to_string(v) +
               " (this build reads version " +
               std::to_string(kFormatVersion) + ")");
    }
  }

  Policy policy;

  // meta line.
  {
    const std::vector<std::string_view> toks =
        split_tokens(lines.next("meta"));
    if (toks.size() != 5 || toks[0] != "meta") {
      fail("meta", "expected 'meta kind=... id=... version=... seed=...'");
    }
    const std::string_view kind = kv_value(toks[1], "kind", "meta.kind");
    if (kind == "tabular") {
      policy.kind = PolicyKind::kTabular;
    } else if (kind == "mlp") {
      policy.kind = PolicyKind::kMlp;
    } else {
      fail("meta.kind",
           "expected 'tabular' or 'mlp', found '" + std::string(kind) + "'");
    }
    policy.id = std::string(kv_value(toks[2], "id", "meta.id"));
    policy.version = static_cast<std::uint32_t>(parse_u64(
        kv_value(toks[3], "version", "meta.version"), "meta.version"));
    policy.seed =
        parse_u64(kv_value(toks[4], "seed", "meta.seed"), "meta.seed");
  }

  // features line.
  {
    const std::vector<std::string_view> toks =
        split_tokens(lines.next("features"));
    if (toks.size() != 16 || toks[0] != "features") {
      fail("features", "expected the 15-field features line");
    }
    FeatureConfig& f = policy.features;
    f.num_tracks = parse_u64(
        kv_value(toks[1], "num_tracks", "features.num_tracks"),
        "features.num_tracks");
    f.lookahead =
        parse_u64(kv_value(toks[2], "lookahead", "features.lookahead"),
                  "features.lookahead");
    f.buffer_bins =
        parse_u64(kv_value(toks[3], "buffer_bins", "features.buffer_bins"),
                  "features.buffer_bins");
    f.buffer_cap_s = parse_double(
        kv_value(toks[4], "buffer_cap_s", "features.buffer_cap_s"),
        "features.buffer_cap_s");
    f.bandwidth_bins = parse_u64(
        kv_value(toks[5], "bandwidth_bins", "features.bandwidth_bins"),
        "features.bandwidth_bins");
    f.bw_lo_bps =
        parse_double(kv_value(toks[6], "bw_lo_bps", "features.bw_lo_bps"),
                     "features.bw_lo_bps");
    f.bw_hi_bps =
        parse_double(kv_value(toks[7], "bw_hi_bps", "features.bw_hi_bps"),
                     "features.bw_hi_bps");
    f.ratio_lo =
        parse_double(kv_value(toks[8], "ratio_lo", "features.ratio_lo"),
                     "features.ratio_lo");
    f.ratio_hi =
        parse_double(kv_value(toks[9], "ratio_hi", "features.ratio_hi"),
                     "features.ratio_hi");
    f.margin_bins =
        parse_u64(kv_value(toks[10], "margin_bins", "features.margin_bins"),
                  "features.margin_bins");
    f.margin_lo =
        parse_double(kv_value(toks[11], "margin_lo", "features.margin_lo"),
                     "features.margin_lo");
    f.margin_hi =
        parse_double(kv_value(toks[12], "margin_hi", "features.margin_hi"),
                     "features.margin_hi");
    f.deficit_bins = parse_u64(
        kv_value(toks[13], "deficit_bins", "features.deficit_bins"),
        "features.deficit_bins");
    f.deficit_lo = parse_double(
        kv_value(toks[14], "deficit_lo", "features.deficit_lo"),
        "features.deficit_lo");
    f.deficit_hi = parse_double(
        kv_value(toks[15], "deficit_hi", "features.deficit_hi"),
        "features.deficit_hi");
    try {
      f.validate();
    } catch (const std::invalid_argument& e) {
      throw PolicyError(std::string("PolicyFile.features: ") + e.what());
    }
  }

  if (policy.kind == PolicyKind::kTabular) {
    const std::vector<std::string_view> toks =
        split_tokens(lines.next("tabular"));
    if (toks.size() != 4 || toks[0] != "tabular") {
      fail("tabular",
           "expected 'tabular states=... coarse=... default=...'");
    }
    const std::uint64_t states = parse_u64(
        kv_value(toks[1], "states", "tabular.states"), "tabular.states");
    const std::uint64_t coarse = parse_u64(
        kv_value(toks[2], "coarse", "tabular.coarse"), "tabular.coarse");
    if (states != policy.features.num_states()) {
      fail("tabular.states",
           "disagrees with the features line (expected " +
               std::to_string(policy.features.num_states()) + ", found " +
               std::to_string(states) + ")");
    }
    if (coarse != policy.features.num_coarse_states()) {
      fail("tabular.coarse", "disagrees with the features line");
    }
    policy.tabular.default_track = parse_entry(
        kv_value(toks[3], "default", "tabular.default"), "tabular.default");
    parse_entry_table(lines, "table", states, "tabular.table",
                      policy.tabular.table);
    parse_entry_table(lines, "coarse", coarse, "tabular.coarse",
                      policy.tabular.coarse);
  } else {
    const std::vector<std::string_view> toks = split_tokens(lines.next("mlp"));
    if (toks.size() != 4 || toks[0] != "mlp") {
      fail("mlp", "expected 'mlp in=... hidden=... out=...'");
    }
    MlpPolicy& m = policy.mlp;
    m.in = parse_u64(kv_value(toks[1], "in", "mlp.in"), "mlp.in");
    m.hidden =
        parse_u64(kv_value(toks[2], "hidden", "mlp.hidden"), "mlp.hidden");
    m.out = parse_u64(kv_value(toks[3], "out", "mlp.out"), "mlp.out");
    if (m.hidden < 1 || m.hidden > 1024 || m.in < 1 || m.in > 4096 ||
        m.out < 1 || m.out > 4096) {
      fail("mlp", "dimensions out of range");
    }
    parse_double_rows(lines, "w1", m.hidden, m.in, true, "w1", m.w1);
    parse_double_rows(lines, "b1", 1, m.hidden, false, "b1", m.b1);
    parse_double_rows(lines, "w2", m.out, m.hidden, true, "w2", m.w2);
    parse_double_rows(lines, "b2", 1, m.out, false, "b2", m.b2);
  }

  // Trailer: checksum over every byte before the "end" line.
  {
    const std::size_t payload_end = lines.offset();
    const std::vector<std::string_view> toks =
        split_tokens(lines.next("checksum"));
    if (toks.size() != 2 || toks[0] != "end" || toks[1].size() != 8) {
      fail("checksum", "expected trailing 'end <8 hex chars>' line");
    }
    std::uint32_t declared = 0;
    const auto r = std::from_chars(
        toks[1].data(), toks[1].data() + toks[1].size(), declared, 16);
    if (r.ec != std::errc() || r.ptr != toks[1].data() + toks[1].size()) {
      fail("checksum", "invalid hex '" + std::string(toks[1]) + "'");
    }
    const std::uint32_t actual = obs::line_checksum(
        std::string_view(text.data(), payload_end));
    if (declared != actual) {
      char msg[80];
      std::snprintf(msg, sizeof(msg),
                    "mismatch (declared %08x, computed %08x)", declared,
                    actual);
      fail("checksum", msg);
    }
    if (!lines.eof()) {
      fail("checksum", "trailing data after the 'end' line");
    }
  }

  policy.validate();
  return policy;
}

void save_policy_file(const std::string& path, const Policy& policy) {
  const std::string body = serialize_policy(policy);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw PolicyError("PolicyFile.io: cannot open '" + tmp +
                        "' for writing");
    }
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.flush();
    if (!out) {
      throw PolicyError("PolicyFile.io: write to '" + tmp + "' failed");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw PolicyError("PolicyFile.io: rename to '" + path +
                      "' failed: " + ec.message());
  }
}

Policy load_policy_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw PolicyError("PolicyFile.io: cannot open '" + path + "'");
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (text.empty()) {
    fail("magic", "empty file");
  }
  return parse_policy(text);
}

}  // namespace vbr::learn
