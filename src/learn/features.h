// Feature/state layer for the learned ABR schemes (src/learn).
//
// One quantization, two consumers: LearnedScheme at decision time and the
// offline trainer (tools/abrtrain) on replayed DecisionEvent streams. Both
// paths funnel through the same `Signals` intermediate and the same pure
// functions below, so the feature vector and state id a policy was trained
// on are bit-identical to the ones it sees when serving — train/serve skew
// is ruled out structurally, not by convention (and pinned by the
// feature-invariance test).
//
// The tabular state is built around the *decision-aligned* axes an MPC
// teacher actually thresholds on: the highest sustainable track under the
// VBR-inflated upcoming rates (plus the bandwidth margin above it), the
// highest affordable track under the current buffer, how many chunks of
// the next track up the buffer could absorb (the overshoot boundary), the
// buffer level, the previously delivered track (switching cost), and the
// startup flag. Raw bandwidth/buffer bins alone plateau well below 90%
// teacher agreement; these derived axes put the bin edges where the
// teacher's decision boundaries are.
//
// Features deliberately use only quantities that a DecisionEvent plus the
// manifest can reconstruct exactly: the buffer level and bandwidth estimate
// the scheme saw, startup phase, the previously *delivered* (non-skipped)
// track, and the upcoming chunk sizes read through the context's
// size-knowledge view. Anything richer (raw throughput samples, wall-clock)
// would reintroduce train/serve skew.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "abr/scheme.h"
#include "obs/event.h"
#include "video/video.h"

namespace vbr::learn {

/// Quantization grid shared bit-exactly between training and inference.
/// Serialized into every policy file; a policy only loads against the exact
/// grid it was trained with.
struct FeatureConfig {
  std::size_t num_tracks = 0;    ///< Ladder height the policy is bound to.
  std::size_t lookahead = 5;     ///< Upcoming chunks in the size window
                                 ///< (matches the MPC teacher's horizon).
  std::size_t buffer_bins = 16;  ///< Tabular buffer-level bins.
  /// Buffer normalization cap (its own constant, *not* ctx.max_buffer_s:
  /// the player capacity is a session knob and must not change features).
  double buffer_cap_s = 60.0;
  std::size_t bandwidth_bins = 12;  ///< Log-bandwidth bins (MLP feature
                                    ///< resolution; not a state axis).
  double bw_lo_bps = 2e5;           ///< Bottom of the log bandwidth range.
  double bw_hi_bps = 2e7;           ///< Top of the log bandwidth range.
  double ratio_lo = 0.5;            ///< Inflation clamp, lower edge.
  double ratio_hi = 2.0;            ///< Inflation clamp, upper edge.
  std::size_t margin_bins = 4;      ///< Bandwidth-margin bins (log scale).
  double margin_lo = 1.0;           ///< Margin clamp, lower edge.
  double margin_hi = 4.0;           ///< Margin clamp, upper edge.
  std::size_t deficit_bins = 6;     ///< Deficit-absorption bins (log scale).
  double deficit_lo = 0.5;          ///< Deficit-chunks clamp, lower edge.
  double deficit_hi = 32.0;         ///< Deficit-chunks clamp, upper edge.

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;

  /// Tabular state-space size: buffer_bins * (num_tracks+1) * margin_bins
  /// * deficit_bins * (num_tracks+1) * (num_tracks+1) * 2 (buffer x
  /// sustainable x margin x deficit-absorption x affordable x prev-track x
  /// startup).
  [[nodiscard]] std::size_t num_states() const;

  /// MLP input width: 8 scalars + one inflation ratio per track.
  [[nodiscard]] std::size_t vector_dim() const { return 8 + num_tracks; }

  /// Coarse fallback table size: the exact state marginalized over the
  /// margin and startup axes — (buffer, sustainable, prev) survives, since
  /// those carry the teacher's decision structure.
  [[nodiscard]] std::size_t num_coarse_states() const {
    return buffer_bins * (num_tracks + 1) * (num_tracks + 1);
  }

  friend bool operator==(const FeatureConfig&, const FeatureConfig&) = default;
};

/// The raw decision-time signals both feature forms are derived from.
/// Extracted either from a live StreamContext or from a replayed
/// DecisionEvent + manifest; identical Signals in, identical features out.
struct Signals {
  double buffer_s = 0.0;
  double est_bandwidth_bps = 0.0;
  int prev_track = -1;  ///< Last *delivered* (non-skipped) track; -1 if none.
  bool in_startup = false;
  /// Per-track mean upcoming size over the lookahead window, divided by the
  /// track's nominal chunk size (average bitrate * chunk duration), clamped
  /// to [ratio_lo, ratio_hi]. VBR inflation > 1 means the next chunks are
  /// fatter than the ladder advertises — the paper's core hazard.
  std::vector<double> inflation;
  /// Highest track whose mean upcoming rate over the window fits the
  /// bandwidth estimate, encoded 0 = none, t+1 = track t. This is the axis
  /// an oracle-size MPC teacher's decision boundary actually lives on.
  std::size_t sustainable = 0;
  /// est_bandwidth / mean upcoming rate of the sustainable track (of track
  /// 0 when none is sustainable), clamped to [margin_lo, margin_hi].
  double margin = 0.0;
  /// Highest track whose *next-chunk* download at est_bandwidth fits the
  /// current buffer (no rebuffer even if bandwidth estimate is exact),
  /// encoded 0 = none, t+1 = track t.
  std::size_t affordable = 0;
  /// How many chunks of the track just above `sustainable` the buffer can
  /// absorb: buffer_s / (per-chunk download time minus playout gain),
  /// clamped to [deficit_lo, deficit_hi] (deficit_hi when that track is
  /// itself sustainable). MPC overshoots the sustainable track exactly
  /// when this is large relative to its horizon.
  double deficit_chunks = 0.0;
};

/// Extracts Signals from a live decision context. Sizes are read through
/// ctx.chunk_size_bits / fill_chunk_sizes (the size-knowledge view), and the
/// window is truncated at ctx.lookahead_limit() exactly like the built-in
/// look-ahead schemes.
void signals_from_context(const abr::StreamContext& ctx,
                          const FeatureConfig& cfg, Signals& out);

/// Reconstructs the same Signals offline from a DecisionEvent and the
/// manifest it was recorded against. `prev_track` is the delivered track of
/// the session's latest earlier non-skipped event (-1 at session start) —
/// the caller tracks it per session, mirroring sim::run_session. Exact for
/// size_mode == "exact" VoD sessions (the teacher-rollout setting).
void signals_from_event(const obs::DecisionEvent& event,
                        const video::Video& video, int prev_track,
                        const FeatureConfig& cfg, Signals& out);

/// Writes the MLP feature vector (cfg.vector_dim() entries, fixed order:
/// buffer, log-bandwidth, prev-track, startup flag, sustainable-track,
/// margin, affordable-track, deficit-absorption, then per-track inflation;
/// all normalized into [0, 1]) into `out`.
void feature_vector(const Signals& sig, const FeatureConfig& cfg,
                    std::vector<double>& out);

/// Packs Signals into the tabular state id, in [0, cfg.num_states()).
[[nodiscard]] std::uint32_t state_id(const Signals& sig,
                                     const FeatureConfig& cfg);

/// The (buffer, sustainable, prev_track) coarse-fallback index of a state
/// id, in [0, cfg.num_coarse_states()).
[[nodiscard]] std::uint32_t coarse_from_state(std::uint32_t state,
                                              const FeatureConfig& cfg);

/// The sustainable-track axis value of a state id (0 = none, t+1 = track
/// t) — lets rule-based seeding answer each state's own sustainability.
[[nodiscard]] std::size_t sustainable_from_state(std::uint32_t state,
                                                 const FeatureConfig& cfg);

/// Quantization primitives (exposed for tests; same expressions the
/// packers use).
[[nodiscard]] std::size_t buffer_bin(double buffer_s,
                                     const FeatureConfig& cfg);
[[nodiscard]] std::size_t bandwidth_bin(double bw_bps,
                                        const FeatureConfig& cfg);
/// Normalized log-scale bandwidth position in [0, 1].
[[nodiscard]] double bandwidth_norm(double bw_bps, const FeatureConfig& cfg);
/// Geometric center (bps) of a bandwidth bin — inverse of bandwidth_bin.
[[nodiscard]] double bandwidth_bin_center_bps(std::size_t bin,
                                              const FeatureConfig& cfg);

}  // namespace vbr::learn
