#include "learn/learned_scheme.h"

#include <stdexcept>
#include <string>

namespace vbr::learn {

LearnedScheme::LearnedScheme(std::shared_ptr<const Policy> policy)
    : policy_(std::move(policy)) {
  if (policy_ == nullptr) {
    throw std::invalid_argument("LearnedScheme: policy must not be null");
  }
  try {
    policy_->validate();
  } catch (const PolicyError& e) {
    throw std::invalid_argument(std::string("LearnedScheme: ") + e.what());
  }
}

abr::Decision LearnedScheme::decide(const abr::StreamContext& ctx) {
  abr::validate_context(ctx);
  if (ctx.video->num_tracks() != policy_->features.num_tracks) {
    throw std::invalid_argument(
        "LearnedScheme: policy trained for " +
        std::to_string(policy_->features.num_tracks) +
        " tracks, context has " + std::to_string(ctx.video->num_tracks()));
  }
  signals_from_context(ctx, policy_->features, signals_);
  std::uint32_t state = 0;
  if (policy_->kind == PolicyKind::kTabular) {
    state = state_id(signals_, policy_->features);
  } else {
    feature_vector(signals_, policy_->features, features_);
  }
  return {policy_select(*policy_, state, features_, hidden_), 0.0};
}

void LearnedScheme::annotate_event(obs::DecisionEvent& event) const {
  event.policy = obs::DecisionEvent::PolicyInfo{
      .id = policy_->id, .version = policy_->version};
}

std::string LearnedScheme::name() const {
  return policy_->kind == PolicyKind::kTabular ? "learned-tabular"
                                               : "learned-mlp";
}

}  // namespace vbr::learn
