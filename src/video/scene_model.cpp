#include "video/scene_model.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace vbr::video {

GenreProfile profile_for(Genre g) {
  switch (g) {
    case Genre::kAnimation:
      return {.mean_scene_len_chunks = 7.0,
              .complexity_mid = 0.38,
              .complexity_spread = 0.20,
              .high_action_prob = 0.14,
              .within_scene_jitter = 0.035};
    case Genre::kSciFi:
      return {.mean_scene_len_chunks = 6.0,
              .complexity_mid = 0.45,
              .complexity_spread = 0.20,
              .high_action_prob = 0.18,
              .within_scene_jitter = 0.045};
    case Genre::kSports:
      return {.mean_scene_len_chunks = 4.0,
              .complexity_mid = 0.58,
              .complexity_spread = 0.18,
              .high_action_prob = 0.30,
              .within_scene_jitter = 0.06};
    case Genre::kAnimal:
      return {.mean_scene_len_chunks = 8.0,
              .complexity_mid = 0.42,
              .complexity_spread = 0.18,
              .high_action_prob = 0.12,
              .within_scene_jitter = 0.04};
    case Genre::kNature:
      return {.mean_scene_len_chunks = 9.0,
              .complexity_mid = 0.40,
              .complexity_spread = 0.16,
              .high_action_prob = 0.10,
              .within_scene_jitter = 0.03};
    case Genre::kAction:
      return {.mean_scene_len_chunks = 4.5,
              .complexity_mid = 0.55,
              .complexity_spread = 0.20,
              .high_action_prob = 0.28,
              .within_scene_jitter = 0.055};
  }
  throw std::invalid_argument("profile_for: unknown genre");
}

std::vector<SceneChunk> generate_scene_trace(Genre genre,
                                             std::size_t num_chunks,
                                             std::uint64_t seed) {
  return generate_scene_trace(profile_for(genre), num_chunks, seed);
}

std::vector<SceneChunk> generate_scene_trace(const GenreProfile& profile,
                                             std::size_t num_chunks,
                                             std::uint64_t seed) {
  if (num_chunks == 0) {
    throw std::invalid_argument("generate_scene_trace: zero chunks");
  }
  if (profile.mean_scene_len_chunks < 1.0) {
    throw std::invalid_argument(
        "generate_scene_trace: mean scene length must be >= 1 chunk");
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::normal_distribution<double> gauss(0.0, 1.0);
  // Geometric scene length with the requested mean.
  std::geometric_distribution<int> scene_len_dist(
      1.0 / profile.mean_scene_len_chunks);

  std::vector<SceneChunk> out;
  out.reserve(num_chunks);

  while (out.size() < num_chunks) {
    const std::size_t scene_len = static_cast<std::size_t>(
        1 + scene_len_dist(rng));
    // Scene baseline complexity: usually near complexity_mid, occasionally a
    // high-action burst near the top of the range.
    double base;
    if (uni(rng) < profile.high_action_prob) {
      base = 0.72 + 0.20 * uni(rng);
    } else {
      base = profile.complexity_mid + profile.complexity_spread * gauss(rng);
    }
    base = std::clamp(base, 0.05, 0.98);

    // The temporal/spatial split of the complexity varies per scene: a chase
    // scene is mostly temporal, an intricate wide shot mostly spatial.
    const double temporal_share = std::clamp(0.4 + 0.35 * gauss(rng), 0.1, 0.9);

    double c = base;
    for (std::size_t k = 0; k < scene_len && out.size() < num_chunks; ++k) {
      // AR(1) jitter pulls back toward the scene baseline.
      c = base + 0.6 * (c - base) + profile.within_scene_jitter * gauss(rng);
      c = std::clamp(c, 0.02, 1.0);

      const double spatial = c * (1.0 - temporal_share) * 2.0;
      const double temporal = c * temporal_share * 2.0;
      SceneChunk sc;
      sc.complexity = c;
      // Map to SI/TI ranges comparable with Fig. 2 of the paper
      // (SI roughly 0-100, TI roughly 0-60), with measurement noise.
      sc.info.si = std::clamp(12.0 + 75.0 * spatial + 2.5 * gauss(rng), 0.0,
                              100.0);
      sc.info.ti = std::clamp(1.5 + 48.0 * temporal + 1.5 * gauss(rng), 0.0,
                              60.0);
      out.push_back(sc);
    }
  }
  return out;
}

}  // namespace vbr::video
