// A multi-track ABR video: the unit a streaming session plays.
//
// All tracks describe the same content, chunk-aligned: chunk i of every track
// covers the same playback interval. The Video also carries the per-chunk
// scene-complexity ground truth (SI/TI) of the source footage, which the
// characterization experiments (Fig. 2) compare against chunk sizes; the ABR
// logic itself never sees it.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "video/track.h"

namespace vbr::video {

/// Content genre, used by the synthetic scene model to pick motion/complexity
/// statistics (paper Section 2: animation, sci-fi, sports, animal, nature,
/// action).
enum class Genre {
  kAnimation,
  kSciFi,
  kSports,
  kAnimal,
  kNature,
  kAction,
};

[[nodiscard]] std::string to_string(Genre g);

/// Per-chunk spatial information (SI) and temporal information (TI) of the
/// source footage, per ITU-T P.910. Computed from the raw video, so it is
/// unaffected by encoding distortion.
struct SceneInfo {
  double si = 0.0;
  double ti = 0.0;
};

/// A complete ABR video: N tracks in ascending average-bitrate order, plus
/// source scene statistics.
class Video {
 public:
  /// Throws std::invalid_argument if tracks is empty, tracks disagree on the
  /// chunk count, tracks are not in ascending average-bitrate order, or
  /// scene_info does not match the chunk count.
  Video(std::string name, Genre genre, std::vector<Track> tracks,
        std::vector<SceneInfo> scene_info);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Genre genre() const { return genre_; }
  [[nodiscard]] Codec codec() const { return tracks_.front().codec(); }

  [[nodiscard]] std::size_t num_tracks() const { return tracks_.size(); }
  [[nodiscard]] const Track& track(std::size_t level) const {
    return tracks_.at(level);
  }
  [[nodiscard]] const std::vector<Track>& tracks() const { return tracks_; }

  [[nodiscard]] std::size_t num_chunks() const {
    return tracks_.front().num_chunks();
  }
  /// Nominal chunk playback duration (uniform across the video).
  [[nodiscard]] double chunk_duration_s() const {
    return tracks_.front().chunk(0).duration_s;
  }
  /// Total playback duration in seconds.
  [[nodiscard]] double duration_s() const {
    return tracks_.front().duration_s();
  }

  /// Scene complexity ground truth for chunk i.
  [[nodiscard]] const SceneInfo& scene_info(std::size_t i) const {
    return scene_info_.at(i);
  }
  [[nodiscard]] const std::vector<SceneInfo>& scene_infos() const {
    return scene_info_;
  }

  /// Convenience: size in bits of chunk `i` of track `level`.
  [[nodiscard]] double chunk_size_bits(std::size_t level,
                                       std::size_t i) const {
    return tracks_.at(level).chunk(i).size_bits;
  }

  /// Index of the middle track, the paper's default reference track for the
  /// chunk-size-based complexity classification.
  [[nodiscard]] std::size_t middle_track() const { return tracks_.size() / 2; }

 private:
  std::string name_;
  Genre genre_;
  std::vector<Track> tracks_;
  std::vector<SceneInfo> scene_info_;
};

}  // namespace vbr::video
